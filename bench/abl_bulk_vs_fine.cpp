// Ablation: fine-grained vs bulk-synchronous communication in the
// distributed SpMSpV. The paper's Listing 8 moves vector elements one at
// a time; its discussion (Section IV) argues that "bulk-synchronous
// execution and batched communication" would mitigate the cost. This
// bench runs all four gather/scatter combinations.
#include "bench_common.hpp"

#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"

using namespace pgb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  cli.finish();

  const Index n = bench::scaled(1000000, scale);
  bench::print_preamble(
      "Ablation", "SpMSpV: fine-grained vs bulk gather/scatter", scale);

  const auto sr = arithmetic_semiring<std::int64_t>();
  Table t({"nodes", "fine/fine (paper)", "bulk gather", "bulk scatter",
           "bulk/bulk", "paper vs bulk"});
  for (int nodes : bench::node_sweep()) {
    auto grid = LocaleGrid::square(nodes, 24);
    auto a = erdos_renyi_dist<std::int64_t>(grid, n, 16.0, 5);
    auto x = random_dist_sparse_vec<std::int64_t>(grid, n, n / 50, 6);
    double times[4];
    int i = 0;
    for (bool bulk_gather : {false, true}) {
      for (bool bulk_scatter : {false, true}) {
        SpmspvOptions opt;
        opt.bulk_gather = bulk_gather;
        opt.bulk_scatter = bulk_scatter;
        grid.reset();
        spmspv_dist(a, x, sr, opt);
        times[i++] = grid.time();
      }
    }
    // order: fine/fine, fine-g+bulk-s, bulk-g+fine-s, bulk/bulk
    t.row({Table::count(nodes), Table::time(times[0]),
           Table::time(times[2]), Table::time(times[1]),
           Table::time(times[3]), Table::num(times[0] / times[3])});
  }
  csv ? t.print_csv() : t.print("ER matrix (n=1M, d=16, f=2%)");
  return 0;
}
