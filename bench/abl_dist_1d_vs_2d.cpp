// Ablation: matrix distribution shape for SpMSpV. The paper uses 2-D
// block distributions "since they have been shown to be more scalable
// than 1-D block distributions" (Section II-B). This bench runs the same
// SpMSpV on a near-square grid, a 1-D row distribution (L x 1) and a 1-D
// column distribution (1 x L), with the paper's fine-grained
// communication and with bulk transfers.
//
// The interesting structure: 1-D rows need NO input gather (each locale
// already owns its row-block's x) but funnel the entire output scatter
// into every destination (pr = L senders per owner); 1-D columns are the
// mirror image (full gather, trivial scatter). Only the 2-D grid bounds
// *both* phases by sqrt(p).
#include "bench_common.hpp"

#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"

using namespace pgb;

namespace {

double run(GridConfig cfg, Index n, double f, bool bulk) {
  LocaleGrid grid(cfg);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 16.0, 5);
  auto x = random_dist_sparse_vec<std::int64_t>(
      grid, n, static_cast<Index>(f * static_cast<double>(n)), 6);
  SpmspvOptions opt;
  opt.bulk_gather = bulk;
  opt.bulk_scatter = bulk;
  grid.reset();
  spmspv_dist(a, x, arithmetic_semiring<std::int64_t>(), opt);
  return grid.time();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  cli.finish();

  const Index n = bench::scaled(1000000, scale);
  bench::print_preamble("Ablation",
                        "SpMSpV: 2-D vs 1-D block distributions", scale);

  for (double f : {0.02, 0.2}) {
    for (bool bulk : {false, true}) {
      Table t({"nodes", "2-D (sqrt x sqrt)", "1-D rows (L x 1)",
               "1-D cols (1 x L)"});
      for (int nodes : {4, 16, 64}) {
        auto sq = LocaleGrid::square(nodes, 24);
        const double t2d = run(GridConfig{.rows = sq.rows(),
                                          .cols = sq.cols(),
                                          .threads_per_locale = 24},
                               n, f, bulk);
        const double t1dr =
            run(GridConfig{.rows = nodes, .cols = 1, .threads_per_locale = 24},
                n, f, bulk);
        const double t1dc =
            run(GridConfig{.rows = 1, .cols = nodes, .threads_per_locale = 24},
                n, f, bulk);
        t.row({Table::count(nodes), Table::time(t2d), Table::time(t1dr),
               Table::time(t1dc)});
      }
      char title[96];
      std::snprintf(title, sizeof title,
                    "ER (n=1M, d=16, f=%g%%), %s communication", f * 100,
                    bulk ? "bulk" : "fine-grained");
      csv ? t.print_csv() : t.print(title);
    }
  }
  return 0;
}
