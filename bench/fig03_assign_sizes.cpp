// Figure 3: distributed-memory Assign2 at two input sizes (1M and 100M
// nonzeros), 24 threads per node — small inputs stop scaling once the
// coforall fork overhead rivals the per-locale work.
#include "bench_common.hpp"

#include "core/assign.hpp"
#include "gen/random_vec.hpp"

using namespace pgb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  cli.finish();

  const Index small_nnz = bench::scaled(1000000, scale);    // paper: 1M
  const Index large_nnz = bench::scaled(100000000, scale);  // paper: 100M
  bench::print_preamble("Figure 3", "Assign2 distributed, 1M vs 100M",
                        scale);

  Table t({"nodes", "nnz=1M", "nnz=100M"});
  for (int nodes : bench::node_sweep()) {
    auto grid = LocaleGrid::square(nodes, 24);
    double times[2];
    const Index sizes[2] = {small_nnz, large_nnz};
    for (int i = 0; i < 2; ++i) {
      auto b = random_dist_sparse_vec<double>(grid, 2 * sizes[i], sizes[i],
                                              1);
      DistSparseVec<double> a(grid, 2 * sizes[i]);
      grid.reset();
      assign_v2(a, b);
      times[i] = grid.time();
    }
    t.row({Table::count(nodes), Table::time(times[0]),
           Table::time(times[1])});
  }
  csv ? t.print_csv() : t.print("Assign2, 24 threads/node");
  return 0;
}
