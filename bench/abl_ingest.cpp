// Ablation: incremental recompute over the ingest stream vs full
// recompute per published epoch.
//
// A symmetric seeded graph takes insert-only mutation batches through
// the crash-consistent ingest pipeline (route -> delta log -> buddy
// mirror -> publish), sweeping the per-epoch delta fraction. At each
// published epoch two maintained algorithms race their full-recompute
// twins:
//
//   cc-inc    union-find over the inserted edges, seeded from the
//             previous epoch's component labels, vs min-label CC from
//             scratch on the new graph;
//   pr-warm   pagerank warm-restarted from the previous epoch's rank
//             vector, vs a cold solve on the new graph.
//
// Both must produce the same answer as their full twin (labels equal;
// ranks within 1e-6). The expected shape: incremental wins by orders of
// magnitude at small delta fractions and the gap narrows as the batch
// grows — the crossover is what the committed baseline records. Gates
// at 64 locales on the smallest fraction: incremental CC at least 10x
// cheaper in modeled time, warm pagerank strictly fewer iterations.
// --json=PATH emits the machine-readable baseline (BENCH_ingest.json).
#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algo/cc_incremental.hpp"
#include "algo/connected_components.hpp"
#include "algo/pagerank.hpp"
#include "ingest/ingest.hpp"

using namespace pgb;

namespace {

struct Sample {
  int nodes = 0;
  double frac = 0.0;          ///< deltas / base nnz
  std::int64_t deltas = 0;    ///< mutations in the epoch's batch
  double t_ingest = 0.0;      ///< apply + publish modeled seconds
  double t_full_cc = 0.0;
  double t_inc_cc = 0.0;
  double t_cold_pr = 0.0;
  double t_warm_pr = 0.0;
  int cold_iters = 0;
  int warm_iters = 0;
  std::int64_t log_bytes = 0;  ///< mirrored frame bytes for the epoch
  bool identical = true;       ///< incremental answers match full
};

/// Symmetric seeded base graph: a ring for connectivity texture plus
/// random chords, both directions of every edge.
Coo<double> symmetric_base(Index n, std::uint64_t seed) {
  Coo<double> coo(n, n);
  for (Index v = 0; v < n; ++v) {
    const Index w = (v + 1) % n;
    coo.add(v, w, 1.0);
    coo.add(w, v, 1.0);
  }
  MutationRng rng{seed};
  const Index chords = 4 * n;
  for (Index i = 0; i < chords; ++i) {
    const Index r = static_cast<Index>(rng.next() % static_cast<std::uint64_t>(n));
    const Index c = static_cast<Index>(rng.next() % static_cast<std::uint64_t>(n));
    if (r == c) continue;
    coo.add(r, c, 1.0);
    coo.add(c, r, 1.0);
  }
  return coo;
}

double max_rank_diff(const std::vector<double>& a,
                     const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

void emit_json(const std::string& path, Index n, std::uint64_t seed,
               const std::vector<Sample>& samples) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  PGB_REQUIRE(out != nullptr, "cannot open --json path: " + path);
  std::fprintf(out,
               "{\n  \"bench\": \"abl_ingest\",\n"
               "  \"workload\": {\"kind\": \"symmetric ring+chords, "
               "insert-only ingest\", \"n\": %lld, \"seed\": %llu},\n"
               "  \"machine\": \"edison\",\n  \"samples\": [\n",
               static_cast<long long>(n),
               static_cast<unsigned long long>(seed));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(
        out,
        "    {\"nodes\": %d, \"delta_frac\": %.6f, \"deltas\": %lld, "
        "\"ingest_time_s\": %.6e, \"full_cc_s\": %.6e, "
        "\"inc_cc_s\": %.6e, \"cc_speedup\": %.2f, "
        "\"cold_pr_s\": %.6e, \"warm_pr_s\": %.6e, "
        "\"cold_iters\": %d, \"warm_iters\": %d, \"pr_speedup\": %.2f, "
        "\"log_bytes\": %lld, \"identical\": %s}%s\n",
        s.nodes, s.frac, static_cast<long long>(s.deltas), s.t_ingest,
        s.t_full_cc, s.t_inc_cc,
        s.t_inc_cc > 0.0 ? s.t_full_cc / s.t_inc_cc : 0.0, s.t_cold_pr,
        s.t_warm_pr, s.cold_iters, s.warm_iters,
        s.t_warm_pr > 0.0 ? s.t_cold_pr / s.t_warm_pr : 0.0,
        static_cast<long long>(s.log_bytes),
        s.identical ? "true" : "false",
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s (%zu samples)\n", path.c_str(), samples.size());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const std::string json =
      cli.get("json", "", "write a machine-readable baseline to this path");
  const std::uint64_t seed = bench::seed_flag(cli);
  cli.finish();

  const Index n = bench::scaled(100000, scale);
  bench::print_preamble(
      "Ablation", "incremental CC / warm pagerank over the ingest stream "
      "vs full recompute per epoch", scale);

  const double damping = 0.85, tol = 1e-8;
  const int max_iters = 100;

  std::vector<Sample> samples;
  bool all_identical = true;
  Table t({"nodes", "frac", "deltas", "ingest ms", "full-cc ms",
           "inc-cc ms", "cc x", "cold it", "warm it", "pr x",
           "identical"});
  for (int nodes : {16, 64}) {
    auto grid = LocaleGrid::square(nodes, 24);
    const Coo<double> coo = symmetric_base(n, seed);
    auto a = DistCsr<double>::from_coo(grid, coo);
    const std::int64_t base_nnz = a.nnz();

    GraphStore store;
    const auto h = store.load(std::make_shared<DistCsr<double>>(a));
    IngestStream stream(grid, store, h, a);
    MutationRng mut{seed * 0x9e3779b97f4a7c15ull + 1};

    CcResult full_cc = connected_components(a);
    IncrementalCc inc(full_cc);
    PagerankResult prev_pr = pagerank(a, damping, tol, max_iters);

    // One published epoch per delta fraction; the stream (and both
    // maintained states) carry forward across epochs, like a live feed.
    std::int64_t seq = 0;
    for (const std::int64_t deltas : {100, 1000, 10000}) {
      Sample s;
      s.nodes = nodes;
      s.deltas = 2 * deltas;  // symmetric: both directions logged
      s.frac = static_cast<double>(2 * deltas) /
               static_cast<double>(base_nnz);

      const std::int64_t log_before = stream.stats().log_bytes;
      double t0 = grid.time();
      const MutationBatch b = make_mutation_batch(
          mut, n, static_cast<int>(deltas), IngestMix{}, ++seq,
          /*symmetric=*/true);
      stream.apply(b);
      stream.publish();
      s.t_ingest = grid.time() - t0;
      s.log_bytes = stream.stats().log_bytes - log_before;
      const GraphSnapshot snap = store.snapshot(h);

      // CC: full recompute vs union-find over the batch's inserts.
      t0 = grid.time();
      const CcResult cc_full = connected_components(*snap.graph);
      s.t_full_cc = grid.time() - t0;
      std::vector<std::pair<Index, Index>> inserted;
      inserted.reserve(b.deltas.size());
      for (const EdgeDelta& d : b.deltas) inserted.push_back({d.row, d.col});
      t0 = grid.time();
      PGB_REQUIRE(cc_incremental_apply(grid, &inc, inserted, 0),
                  "abl_ingest: insert-only stream must stay incremental");
      const CcResult cc_inc = inc.labels();
      s.t_inc_cc = grid.time() - t0;

      // Pagerank: cold solve vs warm restart from the previous epoch.
      t0 = grid.time();
      const PagerankResult cold =
          pagerank(*snap.graph, damping, tol, max_iters);
      s.t_cold_pr = grid.time() - t0;
      t0 = grid.time();
      const PagerankResult warm =
          pagerank_warm(*snap.graph, prev_pr.rank, damping, tol, max_iters);
      s.t_warm_pr = grid.time() - t0;
      s.cold_iters = cold.iterations;
      s.warm_iters = warm.iterations;
      prev_pr = cold;

      s.identical = cc_inc.label == cc_full.label &&
                    cc_inc.num_components == cc_full.num_components &&
                    max_rank_diff(warm.rank, cold.rank) < 1e-6;
      all_identical = all_identical && s.identical;
      samples.push_back(s);
      t.row({Table::count(nodes), Table::num(s.frac),
             Table::count(s.deltas), Table::num(s.t_ingest * 1e3),
             Table::num(s.t_full_cc * 1e3), Table::num(s.t_inc_cc * 1e3),
             Table::num(s.t_inc_cc > 0.0 ? s.t_full_cc / s.t_inc_cc : 0.0),
             Table::count(s.cold_iters), Table::count(s.warm_iters),
             Table::num(s.t_warm_pr > 0.0 ? s.t_cold_pr / s.t_warm_pr
                                          : 0.0),
             s.identical ? "yes" : "NO"});
    }
  }
  t.print();

  PGB_REQUIRE(all_identical,
              "abl_ingest: incremental answers diverged from full "
              "recompute");
  // Gates at 64 locales, smallest delta fraction (first 64-node sample).
  const Sample& gate = samples[3];
  PGB_REQUIRE(gate.nodes == 64, "abl_ingest: unexpected sample order");
  PGB_REQUIRE(gate.t_inc_cc * 10.0 < gate.t_full_cc,
              "abl_ingest gate: incremental CC must be >= 10x cheaper "
              "than full recompute at a 64-locale small-delta epoch");
  PGB_REQUIRE(gate.warm_iters < gate.cold_iters,
              "abl_ingest gate: warm pagerank must converge in fewer "
              "iterations than a cold solve");
  std::printf("\ngates hold: inc-cc %.1fx cheaper, warm pagerank %d vs %d "
              "iterations (64 locales, %.4f%% delta)\n",
              gate.t_full_cc / gate.t_inc_cc, gate.warm_iters,
              gate.cold_iters, gate.frac * 100.0);

  if (!json.empty()) emit_json(json, n, seed, samples);
  return 0;
}
