// Figure 8: distributed SpMSpV component breakdown (Gather input / Local
// multiply / Scatter output) for n=1M Erdős–Rényi matrices, 24 threads
// per node, three configurations.
#include "bench_common.hpp"
#include "spmspv_dist_fig.hpp"

#include "util/cli.hpp"

int main(int argc, char** argv) {
  pgb::Cli cli(argc, argv);
  const double scale =
      cli.get_double("scale", 1.0, "fraction of the paper's n=1M");
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  const std::string profile = pgb::bench::profile_flag(cli);
  const bool profile_only = cli.get_bool(
      "profile-only", false, "write profile reports only, skip the sweep");
  cli.finish();
  pgb::bench::run_spmspv_dist_fig(pgb::bench::scaled(1000000, scale), scale,
                                  csv, "Figure 8", profile, profile_only);
  return 0;
}
