// Figure 7: shared-memory SpMSpV component breakdown (SPA / Sort /
// Output) on one node, for three Erdős–Rényi configurations:
//   (n=1M, d=16, f=2%), (n=1M, d=4, f=2%), (n=1M, d=16, f=20%).
#include "bench_common.hpp"

#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"

using namespace pgb;

namespace {

struct Config {
  double d;
  double f;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  const bool radix =
      cli.get_bool("radix", false, "use radix sort instead of merge sort");
  cli.finish();

  const Index n = bench::scaled(1000000, scale);  // paper: 1M rows/cols
  bench::print_preamble("Figure 7", "SpMSpV shared-memory components",
                        scale);

  const Config configs[3] = {{16.0, 0.02}, {4.0, 0.02}, {16.0, 0.20}};
  const auto sr = arithmetic_semiring<std::int64_t>();
  SpmspvOptions opt;
  opt.sort = radix ? SortAlgo::kRadix : SortAlgo::kMerge;

  for (const auto& cfg : configs) {
    auto a = erdos_renyi_csr<std::int64_t>(n, cfg.d, 5);
    auto x = random_sparse_vec<std::int64_t>(
        n, static_cast<Index>(cfg.f * static_cast<double>(n)), 6);

    Table t({"threads", "SPA", "Sorting", "Output", "total"});
    auto grid = LocaleGrid::single(1);
    for (int threads : bench::thread_sweep()) {
      grid.set_threads(threads);
      grid.reset();
      Trace trace;
      LocaleCtx ctx(grid, 0);
      spmspv_shm(ctx, a, 0, x, 0, n, sr, opt, &trace);
      t.row({Table::count(threads), Table::time(trace.get("spa")),
             Table::time(trace.get("sort")),
             Table::time(trace.get("output")), Table::time(grid.time())});
    }
    char title[128];
    std::snprintf(title, sizeof title, "ER matrix (n=%lldM-ish, d=%g, f=%g%%)",
                  static_cast<long long>(n / 1000000), cfg.d, cfg.f * 100);
    csv ? t.print_csv() : t.print(title);
  }
  return 0;
}
