// Ablation: eWiseMult output collection via the paper's atomic counter
// (Listing 6) vs the thread-private + prefix-sum merge the paper suggests
// ("In practice, we can avoid the atomic variable ... via a prefix sum").
#include "bench_common.hpp"

#include "core/ewise_mult.hpp"
#include "core/ops.hpp"
#include "gen/random_vec.hpp"

using namespace pgb;

namespace {
struct KeepTrue {
  bool operator()(std::uint8_t b) const { return b != 0; }
};
}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  cli.finish();

  bench::print_preamble("Ablation", "eWiseMult: atomic counter vs prefix sum",
                        scale);

  for (Index base : {Index{1000000}, Index{100000000}}) {
    const Index nnz = bench::scaled(base, scale);
    auto grid = LocaleGrid::single(1);
    auto x = random_dist_sparse_vec<double>(grid, 2 * nnz, nnz, 1);
    auto y = random_dist_bool_vec(grid, 2 * nnz, 0.5, 2);
    Table t({"threads", "atomic", "prefix-sum", "speedup"});
    for (int threads : bench::thread_sweep()) {
      grid.set_threads(threads);
      grid.reset();
      ewise_mult_sd(x, y, FirstOp{}, KeepTrue{}, EwiseVariant::kAtomic);
      const double ta = grid.time();
      grid.reset();
      ewise_mult_sd(x, y, FirstOp{}, KeepTrue{}, EwiseVariant::kScan);
      const double ts = grid.time();
      t.row({Table::count(threads), Table::time(ta), Table::time(ts),
             Table::num(ta / ts)});
    }
    char title[64];
    std::snprintf(title, sizeof title, "nnz=%lld",
                  static_cast<long long>(nnz));
    csv ? t.print_csv() : t.print(title);
  }
  return 0;
}
