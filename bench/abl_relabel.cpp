// Ablation: random vertex relabeling on skewed graphs. 2-D block
// distributions of R-MAT matrices overload the blocks holding the hubs;
// relabeling (as CombBLAS and the paper's reference [11] do before
// distribution) evens the load. Reports the imbalance metric and the
// modeled SpMSpV/BFS impact.
#include "bench_common.hpp"

#include "algo/bfs.hpp"
#include "core/permute.hpp"
#include "gen/random_vec.hpp"
#include "gen/rmat.hpp"

using namespace pgb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int sc = static_cast<int>(
      cli.get_int("rmat-scale", 16, "R-MAT scale (2^s vertices)"));
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  cli.finish();

  bench::print_preamble("Ablation",
                        "random vertex relabeling on R-MAT graphs", 1.0);
  RmatParams p;
  p.scale = sc;
  p.edge_factor = 8;

  SpmspvOptions bulk;
  bulk.bulk_gather = true;
  bulk.bulk_scatter = true;

  Table t({"nodes", "imbalance before", "imbalance after", "BFS before",
           "BFS after"});
  for (int nodes : {4, 16, 64}) {
    auto grid = LocaleGrid::square(nodes, 24);
    auto a = rmat_dist(grid, p);
    const double imb_before = load_imbalance(a);
    auto b = permute_matrix(a, random_relabeling(a.nrows(), 5));
    const double imb_after = load_imbalance(b);

    grid.reset();
    bfs(a, 0, bulk);
    const double t_before = grid.time();
    grid.reset();
    bfs(b, 0, bulk);
    const double t_after = grid.time();

    t.row({Table::count(nodes), Table::num(imb_before),
           Table::num(imb_after), Table::time(t_before),
           Table::time(t_after)});
  }
  csv ? t.print_csv() : t.print("2^" + std::to_string(sc) +
                                " vertices, ef=8, bulk communication");
  return 0;
}
