// Figure 10: both Assign implementations with 1-32 locales co-located on
// a single node, 1 thread per locale, 10K-nonzero input — the experiment
// behind the paper's finding that placing multiple locales on one node
// performs poorly.
#include "bench_common.hpp"

#include "core/assign.hpp"
#include "gen/random_vec.hpp"

using namespace pgb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  cli.finish();

  const Index nnz = bench::scaled(10000, scale);  // paper: 10,000
  bench::print_preamble("Figure 10",
                        "Assign with multiple locales on one node", scale);

  Table t({"locales", "Assign1", "Assign2"});
  for (int nloc : {1, 2, 4, 8, 16, 32}) {
    auto grid = LocaleGrid::square(nloc, /*threads=*/1,
                                   /*locales_per_node=*/nloc);
    auto b = random_dist_sparse_vec<double>(grid, 2 * nnz, nnz, 1);
    DistSparseVec<double> a(grid, 2 * nnz);
    grid.reset();
    assign_v1(a, b);
    const double t1 = grid.time();
    grid.reset();
    assign_v2(a, b);
    const double t2 = grid.time();
    t.row({Table::count(nloc), Table::time(t1), Table::time(t2)});
  }
  csv ? t.print_csv()
      : t.print("single node, 1 thread per locale, nnz=10K");
  return 0;
}
