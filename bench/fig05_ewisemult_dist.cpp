// Figure 5: distributed-memory eWiseMult with (a) 1 thread per node and
// (b) 24 threads per node, for 1M and 100M nonzeros.
#include "bench_common.hpp"

#include "core/ewise_mult.hpp"
#include "core/ops.hpp"
#include "gen/random_vec.hpp"

using namespace pgb;

namespace {
struct KeepTrue {
  bool operator()(std::uint8_t b) const { return b != 0; }
};
}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  cli.finish();

  bench::print_preamble("Figure 5", "eWiseMult distributed, 1M vs 100M",
                        scale);
  const Index sizes[2] = {bench::scaled(1000000, scale),
                          bench::scaled(100000000, scale)};
  const int thread_cfgs[2] = {1, 24};

  // times[threads_cfg][size][node_cfg]
  const auto nodes_sweep = bench::node_sweep();
  double times[2][2][8] = {};

  int ncol = 0;
  for (int nodes : nodes_sweep) {
    auto grid = LocaleGrid::square(nodes, 1);
    for (int i = 0; i < 2; ++i) {
      auto x =
          random_dist_sparse_vec<double>(grid, 2 * sizes[i], sizes[i], 1);
      auto y = random_dist_bool_vec(grid, 2 * sizes[i], 0.5, 2);
      for (int tc = 0; tc < 2; ++tc) {
        grid.set_threads(thread_cfgs[tc]);
        grid.reset();
        ewise_mult_sd(x, y, FirstOp{}, KeepTrue{});
        times[tc][i][ncol] = grid.time();
      }
    }
    ++ncol;
  }

  for (int tc = 0; tc < 2; ++tc) {
    Table t({"nodes", "nnz=1M", "nnz=100M"});
    for (std::size_t c = 0; c < nodes_sweep.size(); ++c) {
      t.row({Table::count(nodes_sweep[c]), Table::time(times[tc][0][c]),
             Table::time(times[tc][1][c])});
    }
    const std::string title =
        std::to_string(thread_cfgs[tc]) + " thread(s) per node";
    csv ? t.print_csv() : t.print(title);
  }
  return 0;
}
