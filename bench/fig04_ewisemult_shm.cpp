// Figure 4: shared-memory eWiseMult (sparse x dense Boolean vector) on
// one node, for 10K / 1M / 100M nonzeros. About half the entries survive.
#include "bench_common.hpp"

#include "core/ewise_mult.hpp"
#include "core/ops.hpp"
#include "gen/random_vec.hpp"

using namespace pgb;

namespace {
struct KeepTrue {
  bool operator()(std::uint8_t b) const { return b != 0; }
};
}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  cli.finish();

  bench::print_preamble("Figure 4", "eWiseMult shared memory, 3 sizes",
                        scale);

  const Index sizes[3] = {bench::scaled(10000, scale),
                          bench::scaled(1000000, scale),
                          bench::scaled(100000000, scale)};
  std::vector<std::vector<double>> times(
      3, std::vector<double>(bench::thread_sweep().size()));

  for (int i = 0; i < 3; ++i) {
    auto grid = LocaleGrid::single(1);
    auto x = random_dist_sparse_vec<double>(grid, 2 * sizes[i], sizes[i], 1);
    auto y = random_dist_bool_vec(grid, 2 * sizes[i], 0.5, 2);
    int col = 0;
    for (int threads : bench::thread_sweep()) {
      grid.set_threads(threads);
      grid.reset();
      ewise_mult_sd(x, y, FirstOp{}, KeepTrue{});
      times[i][col++] = grid.time();
    }
  }

  Table t({"threads", "nnz=10K", "nnz=1M", "nnz=100M"});
  int col = 0;
  for (int threads : bench::thread_sweep()) {
    t.row({Table::count(threads), Table::time(times[0][col]),
           Table::time(times[1][col]), Table::time(times[2][col])});
    ++col;
  }
  csv ? t.print_csv() : t.print("eWiseMult, single node (atomic variant)");
  return 0;
}
