// Ablation: when does fine-grained asynchronous communication WIN?
//
// The paper's Section IV, after advocating bulk-synchronous batching,
// notes the counter-example from its matching work [12]: "traversing a
// small number of long paths in a bipartite graph matching algorithm
// benefits from fine-grained asynchronous communication". This bench
// reproduces that tradeoff directly: chase k vertex-disjoint paths of
// length L across the locale grid,
//
//   - asynchronously: each path is a chain of fine-grained remote hops
//     (one round trip per hop, k chains progress independently);
//   - bulk-synchronously: one coforall + barrier per *level*, all paths
//     advancing in lockstep (the BSP fork/barrier burden is paid L
//     times, however few paths remain).
//
// For few long paths the async traversal wins by an order of magnitude;
// for many short frontiers (BFS-like) BSP wins — both regimes printed.
#include "bench_common.hpp"

#include "runtime/locale_grid.hpp"

using namespace pgb;

namespace {

/// k independent chains of `length` hops; each hop lands on the next
/// locale (round-robin), so every hop is remote.
double async_chase(LocaleGrid& grid, int k, Index length) {
  grid.reset();
  // Chains run concurrently: charge each chain's hops to the clock of
  // its starting locale; the makespan is the max (chains overlap).
  for (int chain = 0; chain < k; ++chain) {
    LocaleCtx ctx(grid, chain % grid.num_locales());
    const int peer = (chain + 1) % grid.num_locales();
    if (peer != ctx.locale()) {
      ctx.remote_chain(peer, length, /*rts_per_elem=*/1.0,
                       /*bytes_each=*/16);
    }
  }
  return grid.barrier_all();
}

/// The same traversal as L bulk-synchronous levels: per level, a
/// coforall over all locales moves every live chain one hop (bulk
/// messages), then a barrier.
double bsp_chase(LocaleGrid& grid, int k, Index length) {
  grid.reset();
  for (Index level = 0; level < length; ++level) {
    grid.coforall_locales([&](LocaleCtx& ctx) {
      // Each locale forwards its share of the k live chains.
      const int share =
          (k + grid.num_locales() - 1) / grid.num_locales();
      const int peer = (ctx.locale() + 1) % grid.num_locales();
      if (share > 0 && peer != ctx.locale()) {
        ctx.remote_bulk(peer, 16 * share);
      }
    });
  }
  return grid.time();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  const int nodes = static_cast<int>(cli.get_int("nodes", 16, "locales"));
  cli.finish();

  bench::print_preamble(
      "Ablation", "fine-grained async vs bulk-synchronous path traversal",
      1.0);

  Table t({"paths k", "length L", "async (fine-grained)", "BSP (bulk)",
           "winner"});
  struct Case {
    int k;
    Index len;
  };
  const Case cases[] = {
      {4, 10000}, {16, 2000}, {64, 500},      // few long paths
      {10000, 16}, {100000, 8}, {1000000, 4}  // wide shallow frontiers
  };
  for (const auto& c : cases) {
    auto g1 = LocaleGrid::square(nodes, 24);
    const double ta = async_chase(g1, c.k, c.len);
    auto g2 = LocaleGrid::square(nodes, 24);
    const double tb = bsp_chase(g2, c.k, c.len);
    t.row({Table::count(c.k), Table::count(c.len), Table::time(ta),
           Table::time(tb), ta < tb ? "async" : "BSP"});
  }
  csv ? t.print_csv()
      : t.print("k vertex-disjoint chains of L remote hops, " +
                std::to_string(nodes) + " locales");
  return 0;
}
