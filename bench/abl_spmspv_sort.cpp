// Ablation: the sorting bottleneck in shared-memory SpMSpV.
//
// The paper finds Chapel's merge sort dominating (Fig 7) and expects "a
// less expensive integer sorting algorithm (e.g., radix sort)" to cut
// the cost, citing its own work-efficient SpMSpV [9]. Three strategies:
//   - SPA + merge sort  (the paper's Listing 7),
//   - SPA + radix sort  (the paper's suggested fix),
//   - bucket algorithm  (reference [9]: no global sort at all).
#include "bench_common.hpp"

#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"

using namespace pgb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  cli.finish();

  const Index n = bench::scaled(1000000, scale);
  bench::print_preamble(
      "Ablation", "SpMSpV: merge sort vs radix sort vs bucket [9]", scale);

  auto a = erdos_renyi_csr<std::int64_t>(n, 16.0, 5);
  auto x = random_sparse_vec<std::int64_t>(n, n / 50, 6);
  const auto sr = arithmetic_semiring<std::int64_t>();

  Table t({"threads", "merge total", "merge sort-step", "radix total",
           "radix sort-step", "bucket total", "best vs paper"});
  auto grid = LocaleGrid::single(1);
  for (int threads : bench::thread_sweep()) {
    grid.set_threads(threads);
    double totals[3], sorts[3];
    SpmspvOptions opts[3];
    opts[0].sort = SortAlgo::kMerge;
    opts[1].sort = SortAlgo::kRadix;
    opts[2].algo = SpmspvAlgo::kBucket;
    for (int i = 0; i < 3; ++i) {
      grid.reset();
      Trace trace;
      LocaleCtx ctx(grid, 0);
      spmspv_shm(ctx, a, 0, x, 0, n, sr, opts[i], &trace);
      totals[i] = grid.time();
      sorts[i] = trace.get("sort");
    }
    const double best = std::min(totals[1], totals[2]);
    t.row({Table::count(threads), Table::time(totals[0]),
           Table::time(sorts[0]), Table::time(totals[1]),
           Table::time(sorts[1]), Table::time(totals[2]),
           Table::num(totals[0] / best)});
  }
  csv ? t.print_csv() : t.print("ER matrix (n=1M, d=16, f=2%)");
  return 0;
}
