// Ablation: team collectives, the facility the paper's Section IV asks
// Chapel to provide ("Support for collective communication might improve
// the productivity and performance"). Compares distributed SpMSpV under
// its three communication modes — the paper's element-wise transfers,
// hand-rolled bulk point-to-point, and MPI-style tree collectives — and
// shows the raw collective schedules underneath.
#include "bench_common.hpp"

#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"
#include "runtime/collectives.hpp"

using namespace pgb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  cli.finish();

  bench::print_preamble("Ablation", "collectives vs point-to-point", scale);

  // ---- raw schedules: serial sends vs binomial/recursive-doubling ----
  {
    Table t({"members", "bcast serial", "bcast tree", "allgather serial",
             "allgather tree"});
    for (int nloc : {4, 16, 64}) {
      std::vector<int> all(static_cast<std::size_t>(nloc));
      for (int i = 0; i < nloc; ++i) all[static_cast<std::size_t>(i)] = i;
      double times[4];
      int k = 0;
      for (auto algo :
           {CollectiveAlgo::kSerialSends, CollectiveAlgo::kTree}) {
        auto g = LocaleGrid::square(nloc, 24);
        broadcast(g, all, 0, 1 << 20, algo);
        times[k] = g.time();
        g.reset();
        allgather(g, all, 1 << 14, algo);
        times[k + 2] = g.time();
        ++k;
      }
      t.row({Table::count(nloc), Table::time(times[0]),
             Table::time(times[1]), Table::time(times[2]),
             Table::time(times[3])});
    }
    csv ? t.print_csv() : t.print("1 MB broadcast / 16 KB-per-rank allgather");
  }

  // ---- SpMSpV end-to-end under the three communication modes ----
  const Index n = bench::scaled(1000000, scale);
  auto run = [&](LocaleGrid& grid, const DistCsr<std::int64_t>& a,
                 const DistSparseVec<std::int64_t>& x,
                 const SpmspvOptions& opt, double* gather, double* scatter) {
    grid.reset();
    spmspv_dist(a, x, arithmetic_semiring<std::int64_t>(), opt);
    *gather = grid.trace().get("gather");
    *scatter = grid.trace().get("scatter");
    return grid.time();
  };

  Table t({"nodes", "fine-grained (paper)", "bulk p2p", "collectives",
           "coll gather", "coll scatter"});
  for (int nodes : bench::node_sweep()) {
    auto grid = LocaleGrid::square(nodes, 24);
    auto a = erdos_renyi_dist<std::int64_t>(grid, n, 16.0, 5);
    auto x = random_dist_sparse_vec<std::int64_t>(grid, n, n / 50, 6);
    double g0, s0, g1, s1, g2, s2;
    SpmspvOptions fine;
    const double t_fine = run(grid, a, x, fine, &g0, &s0);
    SpmspvOptions bulk;
    bulk.bulk_gather = true;
    bulk.bulk_scatter = true;
    const double t_bulk = run(grid, a, x, bulk, &g1, &s1);
    SpmspvOptions coll;
    coll.use_collectives = true;
    const double t_coll = run(grid, a, x, coll, &g2, &s2);
    t.row({Table::count(nodes), Table::time(t_fine), Table::time(t_bulk),
           Table::time(t_coll), Table::time(g2), Table::time(s2)});
  }
  csv ? t.print_csv() : t.print("SpMSpV, ER (n=1M, d=16, f=2%)");
  return 0;
}
