// Ablation: what fault tolerance costs in modeled time and traffic.
//
// One BFS workload (the Fig 8 Erdős–Rényi matrix), four regimes:
//   baseline   plain BFS, no fault plan, no checkpoints;
//   ckpt-K     fault-free BFS under the recovery driver, checkpointing
//              every K rounds — isolates the pure snapshot overhead;
//   chaos      message faults (drop/dup/corrupt/stall) with retries —
//              isolates the retry/timeout overhead; results must stay
//              bit-identical to baseline;
//   kill       a locale killed mid-run, recovered from the last
//              checkpoint — the full restart + replay cost.
//
// Reports modeled time, wire vs logical messages, retries, checkpoint
// bytes, and restart counts; --json=PATH emits a machine-readable
// baseline.
#include "bench_common.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "algo/algo_recovery.hpp"
#include "algo/bfs.hpp"
#include "gen/erdos_renyi.hpp"

using namespace pgb;

namespace {

struct Sample {
  int nodes = 0;
  std::string regime;
  double time = 0.0;
  std::int64_t messages = 0;
  std::int64_t logical = 0;
  std::int64_t retries = 0;
  std::int64_t ckpt_bytes = 0;
  std::int64_t restarts = 0;
  bool identical = true;  ///< result matches the baseline bit-for-bit
};

bool same_result(const BfsResult& a, const BfsResult& b) {
  return a.parent == b.parent && a.level_sizes == b.level_sizes;
}

void emit_json(const std::string& path, Index n, double d,
               std::uint64_t seed, const std::vector<Sample>& samples) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  PGB_REQUIRE(out != nullptr, "cannot open --json path: " + path);
  std::fprintf(out,
               "{\n  \"bench\": \"abl_fault_overhead\",\n"
               "  \"workload\": {\"kind\": \"erdos-renyi bfs\", "
               "\"n\": %lld, \"d\": %g, \"seed\": %llu},\n"
               "  \"machine\": \"edison\",\n  \"samples\": [\n",
               static_cast<long long>(n), d,
               static_cast<unsigned long long>(seed));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "    {\"nodes\": %d, \"regime\": \"%s\", "
                 "\"modeled_time_s\": %.6e, \"messages\": %lld, "
                 "\"logical_messages\": %lld, \"retries\": %lld, "
                 "\"ckpt_bytes\": %lld, \"restarts\": %lld, "
                 "\"identical\": %s}%s\n",
                 s.nodes, s.regime.c_str(), s.time,
                 static_cast<long long>(s.messages),
                 static_cast<long long>(s.logical),
                 static_cast<long long>(s.retries),
                 static_cast<long long>(s.ckpt_bytes),
                 static_cast<long long>(s.restarts),
                 s.identical ? "true" : "false",
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s (%zu samples)\n", path.c_str(), samples.size());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const std::string json =
      cli.get("json", "", "write a machine-readable baseline to this path");
  const std::uint64_t seed = bench::seed_flag(cli);
  const std::uint64_t fault_seed = static_cast<std::uint64_t>(
      cli.get_int("fault-seed", 7, "seed of the fault plan RNG"));
  cli.finish();

  const Index n = bench::scaled(1000000, scale);
  const double d = 16.0;
  bench::print_preamble(
      "Ablation", "fault-tolerance overhead on BFS (checkpoints, retries, "
      "kill + recovery)", scale);

  std::vector<Sample> samples;
  bool all_identical = true;
  Table t({"nodes", "regime", "time", "vs base", "messages", "retries",
           "ckpt MB", "restarts", "identical"});
  for (int nodes : {16, 64}) {
    auto grid = LocaleGrid::square(nodes, 24);
    auto a = erdos_renyi_dist<double>(grid, n, d, seed);

    auto record = [&](const std::string& regime, const BfsResult& res,
                      const BfsResult& base_res, double base_time,
                      const RecoveryReport* rs) {
      Sample s;
      s.nodes = nodes;
      s.regime = regime;
      s.time = grid.time();
      s.messages = grid.hot().messages->value;
      s.logical = grid.hot().logical_messages->value;
      s.retries = grid.hot().retries->value;
      if (rs != nullptr) {
        s.ckpt_bytes = rs->checkpoint_bytes;
        s.restarts = rs->restarts;
      }
      s.identical = same_result(res, base_res);
      all_identical = all_identical && s.identical;
      samples.push_back(s);
      t.row({Table::count(nodes), regime, Table::time(s.time),
             Table::num(base_time > 0.0 ? s.time / base_time : 1.0),
             Table::count(s.messages), Table::count(s.retries),
             Table::num(static_cast<double>(s.ckpt_bytes) / 1e6),
             Table::count(s.restarts), s.identical ? "yes" : "NO"});
    };

    // Baseline: no plan, no driver.
    grid.reset();
    const BfsResult base = bfs(a, 0, {});
    const double base_time = grid.time();
    record("baseline", base, base, base_time, nullptr);

    // Checkpoint cadence sweep, fault-free: pure snapshot overhead.
    for (int k : {8, 4, 2, 1}) {
      grid.reset();
      RecoveryOptions ropt;
      ropt.checkpoint_every = k;
      RecoveryReport rs;
      const BfsResult res = bfs_with_recovery(a, 0, {}, nullptr, ropt, &rs);
      record("ckpt-" + std::to_string(k), res, base, base_time, &rs);
    }

    // Message chaos with retries; no kill, so no driver needed.
    {
      grid.reset();
      FaultPlan plan(
          FaultSpec::parse(
              "drop:p=0.01;dup:p=0.005;corrupt:p=0.002;stall:p=0.001,ms=0.1"),
          fault_seed);
      grid.set_fault_plan(&plan);
      const BfsResult res = bfs(a, 0, {});
      grid.set_fault_plan(nullptr);
      record("chaos", res, base, base_time, nullptr);
    }

    // Kill one locale halfway through; recover from the last checkpoint.
    {
      grid.reset();
      FaultPlan plan(FaultSpec::parse("kill:locale=1,at=" +
                                      std::to_string(base_time * 0.5)),
                     fault_seed);
      RecoveryOptions ropt;
      ropt.checkpoint_every = 4;
      RecoveryReport rs;
      const BfsResult res = bfs_with_recovery(a, 0, {}, &plan, ropt, &rs);
      record("kill+recover", res, base, base_time, &rs);
    }
  }
  t.print();

  std::printf("\nall regimes bit-identical to baseline: %s\n",
              all_identical ? "yes" : "NO");
  PGB_REQUIRE(all_identical,
              "fault-tolerance regimes diverged from the baseline result");
  if (!json.empty()) emit_json(json, n, d, seed, samples);
  return 0;
}
