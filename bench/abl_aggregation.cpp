// Ablation: conveyor-style aggregation vs fine-grained vs hand-rolled
// bulk communication in the distributed SpMSpV (the Fig 8 workload).
//
// Sweeps the aggregator buffer capacity, reports modeled time and the
// grid-wide message count for every schedule, verifies that all
// schedules produce byte-identical outputs, and checks the layer's
// acceptance shape at 64 locales: >= 10x fewer messages than fine and
// modeled time within 10% of the hand-rolled bulk path.
//
// --json=PATH additionally emits the numbers as a machine-readable
// baseline (see BENCH_aggregation.json at the repo root).
#include "bench_common.hpp"

#include <cstdio>
#include <tuple>

#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"

using namespace pgb;

namespace {

struct Sample {
  int nodes = 0;
  std::string schedule;
  std::int64_t capacity = 0;  ///< 0 for the non-aggregated schedules
  double time = 0.0;
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  std::int64_t flushes = 0;
};

template <typename T>
bool identical(const SparseVec<T>& a, const SparseVec<T>& b) {
  if (a.nnz() != b.nnz()) return false;
  for (Index p = 0; p < a.nnz(); ++p) {
    if (a.index_at(p) != b.index_at(p)) return false;
    if (a.value_at(p) != b.value_at(p)) return false;
  }
  return true;
}

void emit_json(const std::string& path, Index n, double d, double f,
               std::uint64_t seed, const std::vector<Sample>& samples) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  PGB_REQUIRE(out != nullptr, "cannot open --json path: " + path);
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"bench\": \"abl_aggregation\",\n"
               "  \"workload\": {\"kind\": \"erdos-renyi spmspv\", "
               "\"n\": %lld, \"d\": %g, \"f\": %g, \"seed\": %llu},\n"
               "  \"machine\": \"edison\",\n  \"samples\": [\n",
               static_cast<long long>(n), d, f,
               static_cast<unsigned long long>(seed));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "    {\"nodes\": %d, \"schedule\": \"%s\", "
                 "\"capacity\": %lld, \"modeled_time_s\": %.6e, "
                 "\"messages\": %lld, \"bytes\": %lld, \"flushes\": %lld}%s\n",
                 s.nodes, s.schedule.c_str(),
                 static_cast<long long>(s.capacity), s.time,
                 static_cast<long long>(s.messages),
                 static_cast<long long>(s.bytes),
                 static_cast<long long>(s.flushes),
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s (%zu samples)\n", path.c_str(), samples.size());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  const std::string json =
      cli.get("json", "", "write a machine-readable baseline to this path");
  const std::uint64_t seed = bench::seed_flag(cli);
  cli.finish();

  const Index n = bench::scaled(1000000, scale);
  const double d = 16.0;
  const double f = 0.02;
  bench::print_preamble(
      "Ablation", "SpMSpV: conveyor aggregation vs fine / bulk schedules",
      scale);

  const auto sr = arithmetic_semiring<std::int64_t>();
  const std::vector<std::int64_t> capacities{256, 1024, 4096, 16384};
  std::vector<Sample> samples;
  bool all_identical = true;
  double accept_fine_over_agg = 0.0;   // message ratio at the largest grid
  double accept_agg_over_bulk = 0.0;   // time ratio at the largest grid

  Table t({"nodes", "schedule", "capacity", "time", "messages", "flushes",
           "vs fine"});
  for (int nodes : {4, 16, 64}) {
    auto grid = LocaleGrid::square(nodes, 24);
    auto a = erdos_renyi_dist<std::int64_t>(grid, n, d, seed);
    auto x = random_dist_sparse_vec<std::int64_t>(
        grid, n, static_cast<Index>(f * static_cast<double>(n)), seed + 1);

    auto run = [&](const SpmspvOptions& opt) {
      grid.reset();
      auto y = spmspv_dist(a, x, sr, opt);
      return std::make_tuple(grid.time(), grid.comm_stats(), y.to_local());
    };

    SpmspvOptions base;
    auto [t_fine, cs_fine, y_fine] = run(base.with_comm(CommMode::kFine));
    samples.push_back({nodes, "fine", 0, t_fine, cs_fine.messages,
                       cs_fine.bytes, cs_fine.agg_flushes});
    t.row({Table::count(nodes), "fine", "-", Table::time(t_fine),
           Table::count(cs_fine.messages), "-", Table::num(1.0)});

    auto [t_bulk, cs_bulk, y_bulk] = run(base.with_comm(CommMode::kBulk));
    samples.push_back({nodes, "bulk", 0, t_bulk, cs_bulk.messages,
                       cs_bulk.bytes, cs_bulk.agg_flushes});
    all_identical = all_identical && identical(y_fine, y_bulk);
    t.row({Table::count(nodes), "bulk", "-", Table::time(t_bulk),
           Table::count(cs_bulk.messages), "-",
           Table::num(t_fine / t_bulk)});

    double best_agg_time = 0.0;
    std::int64_t best_agg_msgs = 0;
    for (std::int64_t cap : capacities) {
      SpmspvOptions opt = base.with_comm(CommMode::kAggregated);
      opt.agg.capacity = cap;
      auto [t_agg, cs_agg, y_agg] = run(opt);
      samples.push_back({nodes, "agg", cap, t_agg, cs_agg.messages,
                         cs_agg.bytes, cs_agg.agg_flushes});
      all_identical = all_identical && identical(y_fine, y_agg);
      t.row({Table::count(nodes), "agg", Table::count(cap),
             Table::time(t_agg), Table::count(cs_agg.messages),
             Table::count(cs_agg.agg_flushes), Table::num(t_fine / t_agg)});
      if (best_agg_time == 0.0 || t_agg < best_agg_time) {
        best_agg_time = t_agg;
        best_agg_msgs = cs_agg.messages;
      }
    }
    if (nodes == 64) {
      accept_fine_over_agg = static_cast<double>(cs_fine.messages) /
                             static_cast<double>(best_agg_msgs);
      accept_agg_over_bulk = best_agg_time / t_bulk;
    }
  }
  csv ? t.print_csv()
      : t.print("ER matrix (n=1M, d=16, f=2%), capacity sweep");

  std::printf("\noutputs byte-identical across schedules: %s\n",
              all_identical ? "yes" : "NO — BUG");
  std::printf("acceptance @64 locales: fine/agg messages = %.1fx (need "
              ">= 10x): %s\n",
              accept_fine_over_agg,
              accept_fine_over_agg >= 10.0 ? "PASS" : "FAIL");
  std::printf("acceptance @64 locales: agg/bulk time = %.3f (need <= "
              "1.10): %s\n",
              accept_agg_over_bulk,
              accept_agg_over_bulk <= 1.10 ? "PASS" : "FAIL");

  if (!json.empty()) emit_json(json, n, d, f, seed, samples);
  return (all_identical && accept_fine_over_agg >= 10.0 &&
          accept_agg_over_bulk <= 1.10)
             ? 0
             : 1;
}
