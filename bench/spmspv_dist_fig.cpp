#include "spmspv_dist_fig.hpp"

#include "bench_common.hpp"

#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"

namespace pgb::bench {

namespace {
struct Config {
  double d;
  double f;
};
}  // namespace

namespace {

// One traced run per comm schedule of the headline configuration at the
// largest sweep point, each folded into `<prefix><mode>.json`. These
// are the profiles the pgb_diff regression gate compares against the
// committed BENCH_profiles/ baselines.
void write_fig_profiles(Index n, const Config& cfg,
                        const std::string& prefix) {
  const auto sr = arithmetic_semiring<std::int64_t>();
  const int nodes = node_sweep().back();
  auto grid = LocaleGrid::square(nodes, 24);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, cfg.d, 5);
  auto x = random_dist_sparse_vec<std::int64_t>(
      grid, n, static_cast<Index>(cfg.f * static_cast<double>(n)), 6);
  char workload[128];
  std::snprintf(workload, sizeof workload, "spmspv er n=%lld d=%g f=%g",
                static_cast<long long>(n), cfg.d, cfg.f);
  obs::TraceSession session;
  grid.set_trace_session(&session);
  for (CommMode mode :
       {CommMode::kFine, CommMode::kBulk, CommMode::kAggregated}) {
    grid.reset();  // also clears the attached session
    SpmspvOptions opt;
    opt.comm = mode;
    spmspv_dist(a, x, sr, opt);
    write_bench_profile(prefix, to_string(mode), grid, session, workload,
                        to_string(mode), 5);
  }
  grid.set_trace_session(nullptr);
}

}  // namespace

void run_spmspv_dist_fig(Index n, double scale, bool csv,
                         const char* figure,
                         const std::string& profile_prefix,
                         bool profile_only) {
  print_preamble(figure, "SpMSpV distributed components", scale);
  const Config configs[3] = {{16.0, 0.02}, {4.0, 0.02}, {16.0, 0.20}};
  const auto sr = arithmetic_semiring<std::int64_t>();

  if (!profile_prefix.empty() && profile_only) {
    write_fig_profiles(n, configs[0], profile_prefix);
    return;
  }

  for (const auto& cfg : configs) {
    Table t({"nodes", "Gather input", "Local multiply", "Scatter output",
             "total", "gather msgs", "scatter msgs", "gather MB",
             "scatter MB"});
    for (int nodes : node_sweep()) {
      auto grid = LocaleGrid::square(nodes, 24);
      auto a = erdos_renyi_dist<std::int64_t>(grid, n, cfg.d, 5);
      auto x = random_dist_sparse_vec<std::int64_t>(
          grid, n, static_cast<Index>(cfg.f * static_cast<double>(n)), 6);
      grid.reset();
      spmspv_dist(a, x, sr);
      // Per-phase traffic attribution, published by the kernel into the
      // grid's metrics registry.
      const auto snap = grid.metrics().snapshot();
      t.row({Table::count(nodes), Table::time(grid.trace().get("gather")),
             Table::time(grid.trace().get("local")),
             Table::time(grid.trace().get("scatter")),
             Table::time(grid.time()),
             Table::count(snap.counter("spmspv.messages{phase=gather}")),
             Table::count(snap.counter("spmspv.messages{phase=scatter}")),
             Table::num(static_cast<double>(
                            snap.counter("spmspv.bytes{phase=gather}")) /
                        1e6),
             Table::num(static_cast<double>(
                            snap.counter("spmspv.bytes{phase=scatter}")) /
                        1e6)});
    }
    char title[128];
    std::snprintf(title, sizeof title, "ER matrix (n=%lld, d=%g, f=%g%%)",
                  static_cast<long long>(n), cfg.d, cfg.f * 100);
    csv ? t.print_csv() : t.print(title);
  }

  if (!profile_prefix.empty()) write_fig_profiles(n, configs[0], profile_prefix);
}

}  // namespace pgb::bench
