// Shared driver for Figures 8 and 9 (distributed SpMSpV component
// breakdown at n=1M and n=10M).
#pragma once

#include "runtime/dist.hpp"

namespace pgb::bench {

/// Prints the three-configuration component tables for matrices with n
/// rows/columns. `scale` is only echoed in the preamble.
void run_spmspv_dist_fig(Index n, double scale, bool csv,
                         const char* figure);

}  // namespace pgb::bench
