// Shared driver for Figures 8 and 9 (distributed SpMSpV component
// breakdown at n=1M and n=10M).
#pragma once

#include <string>

#include "runtime/dist.hpp"

namespace pgb::bench {

/// Prints the three-configuration component tables for matrices with n
/// rows/columns. `scale` is only echoed in the preamble.
///
/// When `profile_prefix` is non-empty, additionally re-runs the
/// headline configuration (d=16, f=2%) at the largest sweep point under
/// a trace session — once per comm schedule — and writes profile
/// reports to `<profile_prefix>{fine,bulk,agg}.json` (the
/// `BENCH_profiles/` baselines; see bench/regen_profiles.sh).
/// `profile_only` skips the sweep tables so CI can regenerate
/// candidates cheaply.
void run_spmspv_dist_fig(Index n, double scale, bool csv,
                         const char* figure,
                         const std::string& profile_prefix = "",
                         bool profile_only = false);

}  // namespace pgb::bench
