#!/usr/bin/env bash
# Regenerates the committed profile baselines under BENCH_profiles/.
#
# The pgb_diff regression gate (CI job `profile-regression`) compares
# freshly generated profiles against these files; regenerate and commit
# them whenever a deliberate model/kernel change shifts the modeled
# times or traffic:
#
#   cmake --build build -j
#   bench/regen_profiles.sh              # writes BENCH_profiles/*.json
#   git add BENCH_profiles && git commit
#
# Environment: BUILD (build dir, default "build"), OUT (output dir,
# default "BENCH_profiles"). Baselines are deterministic — counts are
# exact on any platform; modeled times are gated within pgb_diff's
# relative band.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
OUT=${OUT:-BENCH_profiles}
mkdir -p "$OUT"

# Figure 8: n=1M ER SpMSpV, d=16 f=2%, 64 locales, all three schedules.
"$BUILD/bench/fig08_spmspv_dist_n1m" --profile="$OUT/fig8_spmspv_" \
    --profile-only

# Figure 9 at the bench's default 1/5 scale (n=2M): the full n=10M
# instance costs ~3 GB and minutes of generation, too heavy for CI.
"$BUILD/bench/fig09_spmspv_dist_n10m" --profile="$OUT/fig9_spmspv_" \
    --profile-only

# BFS on the paper's R-MAT scale-18 graph, 64 locales.
"$BUILD/bench/bench_bfs" --profile="$OUT/bfs_rmat18_" --profile-only

# SSSP via pgb (no dedicated figure bench).
"$BUILD/tools/pgb" --gen=er --n=1000000 --d=8 --op=sssp --nodes=64 \
    --comm=agg --seed=5 --profile="$OUT/sssp_er1m_agg.json"

echo "baselines written to $OUT/"
