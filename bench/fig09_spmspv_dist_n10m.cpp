// Figure 9: distributed SpMSpV component breakdown for n=10M Erdős–Rényi
// matrices, 24 threads per node, three configurations.
//
// Default runs at 1/5 of the paper's n (2M) to keep the suite quick on a
// laptop; --scale=1 reproduces the full 10M-row instance (~3 GB, minutes
// of generation). Modeled times depend on the charged work, so the
// scaled run shows the same component shapes at proportionally smaller
// absolute values.
#include "bench_common.hpp"
#include "spmspv_dist_fig.hpp"

#include "util/cli.hpp"

int main(int argc, char** argv) {
  pgb::Cli cli(argc, argv);
  const double scale =
      cli.get_double("scale", 0.2, "fraction of the paper's n=10M");
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  const std::string profile = pgb::bench::profile_flag(cli);
  const bool profile_only = cli.get_bool(
      "profile-only", false, "write profile reports only, skip the sweep");
  cli.finish();
  pgb::bench::run_spmspv_dist_fig(pgb::bench::scaled(10000000, scale),
                                  scale, csv, "Figure 9", profile,
                                  profile_only);
  return 0;
}
