// Shared helpers for the figure benches: standard sweeps, headers, and
// the scale flag that shrinks paper-sized workloads for quick runs.
//
// Every fig*_ binary regenerates one figure of the paper: it prints the
// same series (one column per curve / stacked component) over the same
// x-axis (threads, nodes, or locales), in modeled seconds on the Edison
// machine model. EXPERIMENTS.md records the comparison against the paper.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "runtime/dist.hpp"
#include "runtime/locale_grid.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace pgb::bench {

/// The paper's shared-memory x-axis: threads on one node.
inline std::vector<int> thread_sweep() { return {1, 2, 4, 8, 16, 32}; }

/// The paper's distributed x-axis: nodes with 24 threads each.
inline std::vector<int> node_sweep(int max_nodes = 64) {
  std::vector<int> s;
  for (int n = 1; n <= max_nodes; n *= 2) s.push_back(n);
  return s;
}

/// Reads the shared --seed flag: benches derive every generator seed
/// from it (matrix = seed, vector = seed + 1, ...), so a run with the
/// default regenerates the checked-in baselines bit-for-bit and a
/// different seed gives an independent but reproducible instance.
inline std::uint64_t seed_flag(Cli& cli, std::uint64_t def = 5) {
  return static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(def),
                  "base seed for the workload generators"));
}

/// Reads the shared --profile flag: a path prefix under which a bench
/// writes one profile report per captured configuration (see
/// write_bench_profile); empty means off. `bench/regen_profiles.sh`
/// drives this to regenerate the committed `BENCH_profiles/` baselines.
inline std::string profile_flag(Cli& cli) {
  return cli.get("profile", "",
                 "profile report path prefix (one <prefix><label>.json "
                 "per configuration; empty = off)");
}

/// Folds a traced run into a profile report at `<prefix><label>.json`.
/// The grid must still hold the run's clocks/metrics (i.e. call this
/// before the next `grid.reset()`), with `session` attached for the
/// duration of the run.
inline void write_bench_profile(const std::string& prefix,
                                const std::string& label, LocaleGrid& grid,
                                const obs::TraceSession& session,
                                const std::string& workload,
                                const std::string& comm,
                                std::uint64_t seed) {
  obs::Profile p = obs::build_profile(session, grid.metrics().snapshot());
  p.workload = workload;
  p.comm = comm;
  p.seed = seed;
  p.locales = grid.num_locales();
  p.threads = grid.threads();
  p.machine = "edison";
  const std::string path = prefix + label + ".json";
  p.write(path);
  std::printf("profile -> %s\n", path.c_str());
}

/// Applies --scale to a paper-sized count (rounding to at least 1).
inline Index scaled(Index paper_size, double scale) {
  const double v = static_cast<double>(paper_size) * scale;
  return v < 1.0 ? 1 : static_cast<Index>(v);
}

inline void print_preamble(const std::string& figure,
                           const std::string& what, double scale) {
  std::printf("%s — %s\n", figure.c_str(), what.c_str());
  std::printf(
      "modeled machine: Edison (Cray XC30), 24-core IvB nodes, Aries\n");
  if (scale != 1.0) {
    std::printf("NOTE: workload scaled by %.3g of the paper's size "
                "(use --scale=1 for full size)\n",
                scale);
  }
}

}  // namespace pgb::bench
