// Analysis bench (no direct paper figure): how shared-memory SpMSpV
// behaves across input-vector density f, from the sparse BFS-frontier
// regime (f << 1 %) to nearly-dense frontiers. Shows where each
// algorithm wins and where SpMSpV should hand over to SpMV — the kind of
// crossover a GraphBLAS runtime's MXV dispatcher (paper Section III)
// must know about.
#include "bench_common.hpp"

#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"

using namespace pgb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  cli.finish();

  const Index n = bench::scaled(1000000, scale);
  bench::print_preamble("Density sweep",
                        "SpMSpV across input densities (24 threads)", scale);

  auto a = erdos_renyi_csr<std::int64_t>(n, 16.0, 5);
  const auto sr = arithmetic_semiring<std::int64_t>();

  Table t({"f", "nnz(x)", "SPA+merge", "SPA+radix", "bucket",
           "out density"});
  auto grid = LocaleGrid::single(24);
  for (double f : {0.0001, 0.001, 0.01, 0.05, 0.2, 0.5, 0.9}) {
    const Index fnnz =
        std::max<Index>(1, static_cast<Index>(f * static_cast<double>(n)));
    auto x = random_sparse_vec<std::int64_t>(n, fnnz, 6);
    double times[3];
    Index out_nnz = 0;
    SpmspvOptions opts[3];
    opts[0].sort = SortAlgo::kMerge;
    opts[1].sort = SortAlgo::kRadix;
    opts[2].algo = SpmspvAlgo::kBucket;
    for (int i = 0; i < 3; ++i) {
      grid.reset();
      LocaleCtx ctx(grid, 0);
      auto y = spmspv_shm(ctx, a, 0, x, 0, n, sr, opts[i]);
      times[i] = grid.time();
      out_nnz = y.nnz();
    }
    t.row({Table::num(f), Table::count(fnnz), Table::time(times[0]),
           Table::time(times[1]), Table::time(times[2]),
           Table::num(static_cast<double>(out_nnz) /
                      static_cast<double>(n))});
  }
  csv ? t.print_csv() : t.print("ER matrix (n=1M, d=16)");
  return 0;
}
