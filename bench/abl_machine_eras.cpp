// Ablation: do the paper's findings survive a hardware generation?
// Re-runs the core comparisons on MachineModel::modern() (2020s node +
// Slingshot-class network) next to the paper's Edison. Compute grew much
// faster than network latency, so the fine-grained-vs-SPMD gap *widens*;
// task spawns got cheaper, so the small-input scaling cliffs soften.
#include "bench_common.hpp"

#include "core/apply.hpp"
#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"

using namespace pgb;

namespace {

struct Era {
  const char* name;
  MachineModel model;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  cli.finish();

  bench::print_preamble("Ablation", "Edison (2013) vs modern (2020s) node",
                        scale);
  const Era eras[2] = {{"edison", MachineModel::edison()},
                       {"modern", MachineModel::modern()}};

  // --- Apply1 vs Apply2 across nodes: the SPMD-vs-forall verdict ---
  {
    const Index nnz = bench::scaled(10000000, scale);
    Table t({"nodes", "edison v1/v2", "modern v1/v2"});
    for (int nodes : {2, 16, 64}) {
      std::vector<std::string> row{Table::count(nodes)};
      for (const auto& era : eras) {
        auto grid = LocaleGrid::square(nodes, era.model.node.cores, 1,
                                       era.model);
        auto x = random_dist_sparse_vec<double>(grid, 2 * nnz, nnz, 1);
        grid.reset();
        apply_v1(x, NegateOp{});
        const double t1 = grid.time();
        grid.reset();
        apply_v2(x, NegateOp{});
        row.push_back(Table::num(t1 / grid.time()));
      }
      t.row(row);
    }
    csv ? t.print_csv()
        : t.print("Apply fine-grained penalty (v1 time / v2 time)");
  }

  // --- distributed SpMSpV: does gather still dominate? ---
  {
    const Index n = bench::scaled(1000000, scale);
    Table t({"nodes", "edison gather%", "modern gather%", "edison total",
             "modern total"});
    for (int nodes : {4, 16, 64}) {
      std::vector<std::string> frac, total;
      for (const auto& era : eras) {
        auto grid = LocaleGrid::square(nodes, era.model.node.cores, 1,
                                       era.model);
        auto a = erdos_renyi_dist<std::int64_t>(grid, n, 16.0, 5);
        auto x = random_dist_sparse_vec<std::int64_t>(grid, n, n / 50, 6);
        grid.reset();
        spmspv_dist(a, x, arithmetic_semiring<std::int64_t>());
        frac.push_back(
            Table::num(100.0 * grid.trace().get("gather") / grid.time()));
        total.push_back(Table::time(grid.time()));
      }
      t.row({Table::count(nodes), frac[0], frac[1], total[0], total[1]});
    }
    csv ? t.print_csv() : t.print("SpMSpV gather share of total time");
  }

  // --- small-input eWise-style scaling: spawn-cost cliffs ---
  {
    const Index nnz = bench::scaled(10000, scale);
    Table t({"era", "1 thread", "max threads", "speedup"});
    for (const auto& era : eras) {
      auto grid = LocaleGrid::single(1, era.model);
      auto x = random_dist_sparse_vec<double>(grid, 2 * nnz, nnz, 1);
      grid.reset();
      apply_v2(x, NegateOp{});
      const double t1 = grid.time();
      grid.set_threads(era.model.node.cores);
      grid.reset();
      apply_v2(x, NegateOp{});
      const double tp = grid.time();
      t.row({era.name, Table::time(t1), Table::time(tp),
             Table::num(t1 / tp)});
    }
    csv ? t.print_csv() : t.print("10K-nonzero Apply on one node");
  }
  return 0;
}
