// Ablation: inspector–executor schedule selection (--comm=auto) against
// every fixed schedule.
//
// Two workloads, each swept over fine / bulk / agg / auto:
//
//   fig8    the paper's Fig 8 SpMSpV (Erdős–Rényi n=1M, d=16, 2% dense
//           frontier). One phase (the gather) is won by bulk and the
//           other (the scatter) by aggregation, but the margins are
//           small; the gate here is that auto lands within 5% of the
//           best fixed schedule.
//
//   mixed   a smaller instance (n=100k) at the same locale count, where
//           the per-destination packing floor dominates the scatter and
//           the gather stays bulk-friendly: no fixed schedule can win
//           both phases, so auto's per-site binding must be *strictly*
//           faster than every fixed schedule.
//
// Every mode must produce a byte-identical result vector, and two
// same-seed auto runs must be indistinguishable (result, modeled time,
// message count) — the inspector's decisions are pure functions of the
// footprint, never of wall clock or pointer identity.
//
// The gates are enforced at 64 locales; --json=PATH emits the baseline
// committed as BENCH_inspector.json.
#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"
#include "runtime/inspector.hpp"

using namespace pgb;

namespace {

struct Sample {
  int nodes = 0;
  std::string workload;
  std::string mode;
  double time = 0.0;
  double vs_best = 1.0;  ///< vs the best *fixed* schedule
  std::int64_t messages = 0;
  bool identical = true;  ///< result matches the fine-schedule result
};

struct ModeRun {
  double time = 0.0;
  std::int64_t messages = 0;
  SparseVec<double> y;
};

ModeRun run_mode(LocaleGrid& grid, const DistCsr<double>& a,
                 const DistSparseVec<double>& x, CommMode mode) {
  grid.reset();
  SpmspvOptions opt;
  opt.comm = mode;
  ModeRun r;
  r.y = spmspv_dist(a, x, arithmetic_semiring<double>(), opt).to_local();
  r.time = grid.time();
  r.messages = grid.comm_stats().messages;
  return r;
}

void emit_json(const std::string& path, std::uint64_t seed,
               const std::vector<Sample>& samples) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  PGB_REQUIRE(out != nullptr, "cannot open --json path: " + path);
  std::fprintf(out,
               "{\n  \"bench\": \"abl_inspector\",\n"
               "  \"workloads\": {\"fig8\": \"er n=1m d=16 f=0.02\", "
               "\"mixed\": \"er n=100k d=16 f=0.02\"},\n"
               "  \"machine\": \"edison\",\n  \"seed\": %llu,\n"
               "  \"samples\": [\n",
               static_cast<unsigned long long>(seed));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "    {\"nodes\": %d, \"workload\": \"%s\", "
                 "\"mode\": \"%s\", \"modeled_time_s\": %.6e, "
                 "\"vs_best_fixed\": %.4f, \"messages\": %lld, "
                 "\"identical\": %s}%s\n",
                 s.nodes, s.workload.c_str(), s.mode.c_str(), s.time,
                 s.vs_best, static_cast<long long>(s.messages),
                 s.identical ? "true" : "false",
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s (%zu samples)\n", path.c_str(), samples.size());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const std::string json =
      cli.get("json", "", "write a machine-readable baseline to this path");
  const std::uint64_t seed = bench::seed_flag(cli);
  cli.finish();

  bench::print_preamble(
      "Ablation", "inspector-executor schedule selection: --comm=auto vs "
      "every fixed schedule (byte-identical, within 5% of best, strictly "
      "fastest on the mixed workload)", scale);

  const char* kModeNames[] = {"fine", "bulk", "agg", "auto"};
  const CommMode kModes[] = {CommMode::kFine, CommMode::kBulk,
                             CommMode::kAggregated, CommMode::kAuto};

  std::vector<Sample> samples;
  bool all_identical = true;
  bool all_deterministic = true;
  bool gates_hold = true;
  Table t({"nodes", "workload", "mode", "time", "vs best fixed", "messages",
           "identical"});
  for (int nodes : {16, 64}) {
    auto grid = LocaleGrid::square(nodes, 24);

    struct Workload {
      std::string name;
      Index n;
    };
    for (const Workload& w :
         {Workload{"fig8", bench::scaled(1000000, scale)},
          Workload{"mixed", bench::scaled(100000, scale)}}) {
      auto a = erdos_renyi_dist<double>(grid, w.n, 16.0, seed);
      auto x = random_dist_sparse_vec<double>(grid, w.n, w.n / 50, seed + 1);

      ModeRun runs[4];
      for (int m = 0; m < 4; ++m) runs[m] = run_mode(grid, a, x, kModes[m]);
      const double best_fixed =
          std::min({runs[0].time, runs[1].time, runs[2].time});

      for (int m = 0; m < 4; ++m) {
        Sample s;
        s.nodes = nodes;
        s.workload = w.name;
        s.mode = kModeNames[m];
        s.time = runs[m].time;
        s.vs_best = best_fixed > 0.0 ? s.time / best_fixed : 1.0;
        s.messages = runs[m].messages;
        s.identical = runs[m].y == runs[0].y;
        all_identical = all_identical && s.identical;
        samples.push_back(s);
        t.row({Table::count(nodes), w.name, s.mode, Table::time(s.time),
               Table::num(s.vs_best), Table::count(s.messages),
               s.identical ? "yes" : "NO"});
      }

      // Determinism: a second same-seed auto run must be
      // indistinguishable from the first — result, clock, and traffic.
      const ModeRun rerun = run_mode(grid, a, x, CommMode::kAuto);
      const bool deterministic = rerun.y == runs[3].y &&
                                 rerun.time == runs[3].time &&
                                 rerun.messages == runs[3].messages;
      all_deterministic = all_deterministic && deterministic;
      if (!deterministic) {
        std::printf("NONDETERMINISM: %s auto rerun diverged at %d locales\n",
                    w.name.c_str(), nodes);
      }

      // Acceptance gates at the paper's 64-locale point.
      if (nodes == 64) {
        const double autov = runs[3].time;
        if (w.name == "fig8" && autov > 1.05 * best_fixed) {
          gates_hold = false;
          std::printf("GATE FAILED: fig8 auto %.3f ms > 1.05x best fixed "
                      "%.3f ms\n", autov * 1e3, best_fixed * 1e3);
        }
        if (w.name == "mixed" &&
            !(autov < runs[0].time && autov < runs[1].time &&
              autov < runs[2].time)) {
          gates_hold = false;
          std::printf("GATE FAILED: mixed auto %.3f ms is not strictly "
                      "faster than every fixed schedule\n", autov * 1e3);
        }

        // The per-site bindings behind the auto number, for the record.
        std::printf("\n%d locales, %s: inspector bound\n", nodes,
                    w.name.c_str());
        for (const SiteReport& r : grid.inspector().report()) {
          std::printf("  %-16s -> %-10s (%lld calls)\n", r.site.c_str(),
                      to_string(r.last_strategy),
                      static_cast<long long>(r.calls));
        }
      }
    }
  }
  t.print();

  std::printf("\nall modes byte-identical: %s; same-seed auto runs "
              "indistinguishable: %s\n",
              all_identical ? "yes" : "NO", all_deterministic ? "yes" : "NO");
  PGB_REQUIRE(all_identical, "comm schedules diverged in result bytes");
  PGB_REQUIRE(all_deterministic, "same-seed auto runs diverged");
  PGB_REQUIRE(gates_hold, "inspector acceptance gates failed at 64 locales");
  if (!json.empty()) emit_json(json, seed, samples);
  return 0;
}
