// Ablation: batched multi-source query fusion against sequential
// serving.
//
// The serving front end's core bet is that k compatible single-source
// queries fused into one multi-frontier wave cost less than k solo
// runs: the per-level comm schedule (request round trips, bulk
// latencies, aggregator flushes) is priced and paid once for the whole
// batch instead of once per user, while the per-lane compute is the
// same solo code path — so each query's answer is byte-identical to
// its solo run.
//
// This bench runs k-source BFS batches (k in {4, 16}) against k
// sequential solo runs at 16 and 64 locales, on the aggregated and
// inspector-chosen schedules. Gates, enforced at the 64-locale k=16
// point on the aggregated schedule:
//   - fused total simulated time <= seq / 1.5 (the >=1.5x speedup the
//     serving SLO budget assumes);
//   - strictly fewer messages;
//   - every lane's parents/levels byte-identical to its solo run;
//   - two same-seed fused runs indistinguishable (time + messages).
//
// --json=PATH emits the baseline committed as BENCH_service.json.
#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "algo/bfs.hpp"
#include "gen/erdos_renyi.hpp"

using namespace pgb;

namespace {

struct Sample {
  int nodes = 0;
  int k = 0;
  std::string mode;  ///< "seq" | "fused"
  std::string comm;
  double time = 0.0;
  double speedup = 1.0;  ///< seq time / fused time (on fused rows)
  std::int64_t messages = 0;
  bool identical = true;  ///< fused lanes match solo runs
};

void emit_json(const std::string& path, std::uint64_t seed,
               const std::vector<Sample>& samples) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  PGB_REQUIRE(out != nullptr, "cannot open --json path: " + path);
  std::fprintf(out,
               "{\n  \"bench\": \"abl_service\",\n"
               "  \"workload\": \"er n=100k d=16, k-source bfs batch vs "
               "k sequential solo runs\",\n"
               "  \"machine\": \"edison\",\n  \"seed\": %llu,\n"
               "  \"samples\": [\n",
               static_cast<unsigned long long>(seed));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "    {\"nodes\": %d, \"k\": %d, \"mode\": \"%s\", "
                 "\"comm\": \"%s\", \"modeled_time_s\": %.6e, "
                 "\"speedup_vs_seq\": %.4f, \"messages\": %lld, "
                 "\"identical\": %s}%s\n",
                 s.nodes, s.k, s.mode.c_str(), s.comm.c_str(), s.time,
                 s.speedup, static_cast<long long>(s.messages),
                 s.identical ? "true" : "false",
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s (%zu samples)\n", path.c_str(), samples.size());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const std::string json =
      cli.get("json", "", "write a machine-readable baseline to this path");
  const std::uint64_t seed = bench::seed_flag(cli);
  cli.finish();

  bench::print_preamble(
      "Ablation", "batched multi-source fusion: k-source BFS batch vs k "
      "sequential solo runs (byte-identical lanes, >=1.5x at 64 locales "
      "k=16)", scale);

  const Index n = bench::scaled(100000, scale);
  const char* kCommNames[] = {"agg", "auto"};
  const CommMode kComms[] = {CommMode::kAggregated, CommMode::kAuto};

  std::vector<Sample> samples;
  bool all_identical = true;
  bool all_deterministic = true;
  bool gates_hold = true;
  Table t({"nodes", "k", "mode", "comm", "time", "speedup", "messages",
           "identical"});
  for (int nodes : {16, 64}) {
    auto grid = LocaleGrid::square(nodes, 24);
    auto a = erdos_renyi_dist<double>(grid, n, 16.0, seed);

    for (const int k : {4, 16}) {
      std::vector<Index> sources;
      for (int i = 0; i < k; ++i) {
        sources.push_back((static_cast<Index>(i) * n) /
                          static_cast<Index>(k));
      }
      for (int c = 0; c < 2; ++c) {
        SpmspvOptions opt;
        opt.comm = kComms[c];

        // k sequential solo runs: total simulated time and traffic.
        grid.reset();
        std::vector<BfsResult> solo;
        for (const Index s : sources) solo.push_back(bfs(a, s, opt));
        const double seq_time = grid.time();
        const std::int64_t seq_msgs = grid.comm_stats().messages;

        // One fused k-wide batch.
        grid.reset();
        const std::vector<BfsResult> fused = bfs_batch(a, sources, opt);
        const double fused_time = grid.time();
        const std::int64_t fused_msgs = grid.comm_stats().messages;

        bool identical = fused.size() == solo.size();
        for (std::size_t i = 0; identical && i < solo.size(); ++i) {
          identical = fused[i].parent == solo[i].parent &&
                      fused[i].level_sizes == solo[i].level_sizes;
        }
        all_identical = all_identical && identical;

        // Same-seed fused rerun must be indistinguishable.
        grid.reset();
        const std::vector<BfsResult> rerun = bfs_batch(a, sources, opt);
        const bool deterministic = grid.time() == fused_time &&
                                   grid.comm_stats().messages == fused_msgs;
        all_deterministic = all_deterministic && deterministic;
        if (!deterministic) {
          std::printf("NONDETERMINISM: fused rerun diverged at %d locales "
                      "k=%d comm=%s\n", nodes, k, kCommNames[c]);
        }

        const double speedup =
            fused_time > 0.0 ? seq_time / fused_time : 1.0;
        Sample seq{nodes, k, "seq", kCommNames[c], seq_time, 1.0,
                   seq_msgs, true};
        Sample fus{nodes, k, "fused", kCommNames[c], fused_time, speedup,
                   fused_msgs, identical};
        samples.push_back(seq);
        samples.push_back(fus);
        t.row({Table::count(nodes), Table::count(k), "seq", kCommNames[c],
               Table::time(seq_time), Table::num(1.0),
               Table::count(seq_msgs), "yes"});
        t.row({Table::count(nodes), Table::count(k), "fused", kCommNames[c],
               Table::time(fused_time), Table::num(speedup),
               Table::count(fused_msgs), identical ? "yes" : "NO"});

        // Acceptance gates at the 64-locale k=16 aggregated point; the
        // fused wave must also never lose time or traffic anywhere.
        if (fused_time >= seq_time || fused_msgs >= seq_msgs) {
          gates_hold = false;
          std::printf("GATE FAILED: fused not strictly cheaper at %d "
                      "locales k=%d comm=%s (%.3f ms vs %.3f ms, %lld vs "
                      "%lld msgs)\n",
                      nodes, k, kCommNames[c], fused_time * 1e3,
                      seq_time * 1e3, static_cast<long long>(fused_msgs),
                      static_cast<long long>(seq_msgs));
        }
        if (nodes == 64 && k == 16 && c == 0 && speedup < 1.5) {
          gates_hold = false;
          std::printf("GATE FAILED: 64-locale k=16 fused speedup %.2fx "
                      "< 1.5x\n", speedup);
        }
      }
    }
  }
  t.print();

  std::printf("\nall fused lanes byte-identical to solo: %s; same-seed "
              "fused runs indistinguishable: %s\n",
              all_identical ? "yes" : "NO",
              all_deterministic ? "yes" : "NO");
  PGB_REQUIRE(all_identical, "fused lanes diverged from solo results");
  PGB_REQUIRE(all_deterministic, "same-seed fused runs diverged");
  PGB_REQUIRE(gates_hold, "service fusion acceptance gates failed");
  if (!json.empty()) emit_json(json, seed, samples);
  return 0;
}
