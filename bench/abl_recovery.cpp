// Ablation: rollback vs localized rebuild when a locale dies.
//
// Two workloads over the Fig 8 Erdős–Rényi matrix:
//
// BFS (iterated SpMSpV) prices steady-state replication — its rounds
// are wildly uneven (one peak-frontier round dominates), so it is the
// honest workload for the overhead gate but a degenerate one for
// recovery granularity (the interrupted round is replayed by rollback
// and rebuild alike):
//   baseline     plain BFS — no fault plan, no protection;
//   replication  fault-free BFS under the rebuild driver — isolates the
//                cost of buddy replication (incremental update-log
//                flushes at every phase boundary).
//
// Pagerank has uniform rounds, which is where recovery granularity
// shows: rollback discards up to checkpoint_every rounds of work plus a
// global restore, a localized rebuild discards at most the interrupted
// round plus a 1/N-sized restore:
//   pr-baseline  plain pagerank;
//   rollback     a locale killed mid-run, recovered by global restart
//                from the last stable checkpoint (ckpt every 8 rounds);
//   spare        the same kill, recovered by rebuilding only the dead
//                locale's blocks from its buddy mirror onto a spare;
//   degraded     the same kill, the dead locale's blocks remapped onto
//                its surviving buddy host (N-1 hosts carry N locales);
//   degraded-par the same, but parity-group replicas (XOR of 4) instead
//                of full buddy mirrors — less memory, pricier rebuild.
//
// Every regime must produce a bit-identical result.  Two gates are
// enforced at 64 locales: localized rebuild loses < 0.5x the simulated
// time rollback loses, and steady-state replication costs < 10% of the
// unprotected run.  --json=PATH emits a machine-readable baseline.
#include "bench_common.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "algo/algo_recovery.hpp"
#include "algo/bfs.hpp"
#include "algo/pagerank.hpp"
#include "gen/erdos_renyi.hpp"

using namespace pgb;

namespace {

struct Sample {
  int nodes = 0;
  std::string regime;
  double time = 0.0;
  double vs_base = 1.0;
  std::int64_t messages = 0;
  std::int64_t replica_bytes = 0;
  std::int64_t bytes_restored = 0;
  std::int64_t replayed = 0;
  int rebuilds = 0;
  int restarts = 0;
  double time_lost = 0.0;
  bool identical = true;  ///< result matches the baseline bit-for-bit
};

bool same_result(const BfsResult& a, const BfsResult& b) {
  return a.parent == b.parent && a.level_sizes == b.level_sizes;
}

bool same_result(const PagerankResult& a, const PagerankResult& b) {
  return a.rank == b.rank && a.iterations == b.iterations;
}

void emit_json(const std::string& path, Index n, double d,
               std::uint64_t seed, const std::vector<Sample>& samples) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  PGB_REQUIRE(out != nullptr, "cannot open --json path: " + path);
  std::fprintf(out,
               "{\n  \"bench\": \"abl_recovery\",\n"
               "  \"workload\": {\"kind\": \"erdos-renyi bfs\", "
               "\"n\": %lld, \"d\": %g, \"seed\": %llu},\n"
               "  \"machine\": \"edison\",\n  \"samples\": [\n",
               static_cast<long long>(n), d,
               static_cast<unsigned long long>(seed));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(out,
                 "    {\"nodes\": %d, \"regime\": \"%s\", "
                 "\"modeled_time_s\": %.6e, \"vs_base\": %.4f, "
                 "\"messages\": %lld, \"replica_bytes\": %lld, "
                 "\"bytes_restored\": %lld, \"rounds_replayed\": %lld, "
                 "\"rebuilds\": %d, \"restarts\": %d, "
                 "\"sim_time_lost_s\": %.6e, \"identical\": %s}%s\n",
                 s.nodes, s.regime.c_str(), s.time, s.vs_base,
                 static_cast<long long>(s.messages),
                 static_cast<long long>(s.replica_bytes),
                 static_cast<long long>(s.bytes_restored),
                 static_cast<long long>(s.replayed), s.rebuilds, s.restarts,
                 s.time_lost, s.identical ? "true" : "false",
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s (%zu samples)\n", path.c_str(), samples.size());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const std::string json =
      cli.get("json", "", "write a machine-readable baseline to this path");
  const std::uint64_t seed = bench::seed_flag(cli);
  const std::uint64_t fault_seed = static_cast<std::uint64_t>(
      cli.get_int("fault-seed", 7, "seed of the fault plan RNG"));
  cli.finish();

  const Index n = bench::scaled(1000000, scale);
  const double d = 16.0;
  bench::print_preamble(
      "Ablation", "locale-kill recovery: checkpoint rollback vs localized "
      "rebuild from in-memory replicas (spare and degraded)", scale);

  std::vector<Sample> samples;
  bool all_identical = true;
  bool gates_hold = true;
  Table t({"nodes", "regime", "time", "vs base", "rebuilds", "restarts",
           "replayed", "lost ms", "repl MB", "identical"});
  for (int nodes : {16, 64}) {
    auto grid = LocaleGrid::square(nodes, 24);
    auto a = erdos_renyi_dist<double>(grid, n, d, seed);

    auto record = [&](const std::string& regime, bool identical,
                      double base_time, const RecoveryReport* rs) {
      Sample s;
      s.nodes = nodes;
      s.regime = regime;
      s.time = grid.time();
      s.vs_base = base_time > 0.0 ? s.time / base_time : 1.0;
      s.messages = grid.hot().messages->value;
      if (rs != nullptr) {
        s.replica_bytes = rs->replica_bytes;
        s.bytes_restored = rs->bytes_restored;
        s.replayed = rs->rounds_replayed;
        s.rebuilds = rs->rebuilds;
        s.restarts = rs->restarts;
        s.time_lost = rs->sim_time_lost;
      }
      s.identical = identical;
      all_identical = all_identical && s.identical;
      samples.push_back(s);
      t.row({Table::count(nodes), regime, Table::time(s.time),
             Table::num(s.vs_base), Table::count(s.rebuilds),
             Table::count(s.restarts), Table::count(s.replayed),
             Table::num(s.time_lost * 1e3),
             Table::num(static_cast<double>(s.replica_bytes) / 1e6),
             s.identical ? "yes" : "NO"});
      return s;
    };

    // BFS leg: the replication-overhead gate on the Fig 8 workload.
    grid.reset();
    const BfsResult bfs_base = bfs(a, 0, {});
    const double bfs_time = grid.time();
    record("baseline", true, bfs_time, nullptr);

    Sample repl;
    {
      grid.reset();
      RecoveryReport rs;
      const BfsResult res = bfs_with_rebuild(a, 0, {}, nullptr, {}, &rs);
      repl = record("replication", same_result(res, bfs_base), bfs_time, &rs);
    }

    // Pagerank leg: uniform rounds expose recovery granularity.
    const double damping = 0.85, tol = 1e-8;
    const int max_iters = 40;
    grid.reset();
    const PagerankResult pr_base = pagerank(a, damping, tol, max_iters);
    const double pr_time = grid.time();
    record("pr-baseline", true, pr_time, nullptr);
    const double kill_at = pr_time * 0.6;
    auto kill_spec = [&] {
      return FaultSpec::parse("kill:locale=1,at=" + std::to_string(kill_at));
    };

    // Kill one locale 60% in; global rollback to the last checkpoint
    // (up to 8 rounds of work discarded, full-state restore).
    Sample rollback;
    {
      grid.reset();
      FaultPlan plan(kill_spec(), fault_seed);
      RecoveryOptions ropt;
      ropt.checkpoint_every = 8;
      RecoveryReport rs;
      const PagerankResult res =
          pagerank_with_recovery(a, &plan, damping, tol, max_iters, ropt, &rs);
      rollback = record("rollback", same_result(res, pr_base), pr_time, &rs);
    }

    // The same kill, recovered by localized rebuild from buddy mirrors:
    // onto a spare host, then degraded onto the surviving N-1.
    Sample spare, degraded;
    {
      grid.reset();
      FaultPlan plan(kill_spec(), fault_seed);
      RebuildOptions bopt;
      bopt.mode = RebuildMode::kSpare;
      RecoveryReport rs;
      const PagerankResult res =
          pagerank_with_rebuild(a, &plan, damping, tol, max_iters, bopt, &rs);
      spare = record("spare", same_result(res, pr_base), pr_time, &rs);
    }
    {
      grid.reset();
      FaultPlan plan(kill_spec(), fault_seed);
      RebuildOptions bopt;
      bopt.mode = RebuildMode::kDegraded;
      RecoveryReport rs;
      const PagerankResult res =
          pagerank_with_rebuild(a, &plan, damping, tol, max_iters, bopt, &rs);
      degraded = record("degraded", same_result(res, pr_base), pr_time, &rs);
    }
    {
      grid.reset();
      FaultPlan plan(kill_spec(), fault_seed);
      RebuildOptions bopt;
      bopt.mode = RebuildMode::kDegraded;
      bopt.replica.scheme = ReplicaScheme::kParity;
      bopt.replica.parity_group = 4;
      RecoveryReport rs;
      const PagerankResult res =
          pagerank_with_rebuild(a, &plan, damping, tol, max_iters, bopt, &rs);
      record("degraded-par", same_result(res, pr_base), pr_time, &rs);
    }

    // Acceptance gates, checked at the paper's 64-locale point.
    if (nodes == 64) {
      const double repl_overhead = repl.vs_base;
      std::printf(
          "\n64 locales: replication overhead %.1f%%, time lost "
          "rollback %.3f ms, spare %.3f ms, degraded %.3f ms\n",
          (repl_overhead - 1.0) * 100.0, rollback.time_lost * 1e3,
          spare.time_lost * 1e3, degraded.time_lost * 1e3);
      if (repl_overhead >= 1.10) {
        gates_hold = false;
        std::printf("GATE FAILED: replication overhead >= 10%%\n");
      }
      if (spare.time_lost >= 0.5 * rollback.time_lost ||
          degraded.time_lost >= 0.5 * rollback.time_lost) {
        gates_hold = false;
        std::printf("GATE FAILED: localized rebuild lost >= 0.5x the "
                    "simulated time rollback lost\n");
      }
    }
  }
  t.print();

  std::printf("\nall regimes bit-identical to baseline: %s\n",
              all_identical ? "yes" : "NO");
  PGB_REQUIRE(all_identical,
              "recovery regimes diverged from the baseline result");
  PGB_REQUIRE(gates_hold, "recovery acceptance gates failed at 64 locales");
  if (!json.empty()) emit_json(json, n, d, seed, samples);
  return 0;
}
