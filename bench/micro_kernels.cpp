// Host-side microbenchmarks (google-benchmark) of the *real* kernels the
// simulator executes: sorting, SPA accumulation, sparse-domain search and
// merge. These measure actual wall time on the machine running the
// bench — they validate that the library's real data structures are
// sound, independent of the Edison cost model.
#include <benchmark/benchmark.h>

#include "sparse/spa.hpp"
#include "sparse/sparse_domain.hpp"
#include "util/rng.hpp"
#include "util/sorting.hpp"

namespace pgb {
namespace {

std::vector<Index> random_keys(std::int64_t n, std::uint64_t bound) {
  Xoshiro256 rng(42);
  std::vector<Index> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<Index>(rng.next_below(bound));
  return v;
}

void BM_MergeSort(benchmark::State& state) {
  const auto base = random_keys(state.range(0), 1 << 20);
  for (auto _ : state) {
    auto v = base;
    merge_sort(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MergeSort)->Range(1 << 10, 1 << 20);

void BM_RadixSort(benchmark::State& state) {
  const auto base = random_keys(state.range(0), 1 << 20);
  for (auto _ : state) {
    auto v = base;
    radix_sort(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RadixSort)->Range(1 << 10, 1 << 20);

void BM_SpaAccumulate(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const auto keys = random_keys(n, static_cast<std::uint64_t>(n));
  Spa<double> spa(0, n);
  const auto add = [](double a, double b) { return a + b; };
  for (auto _ : state) {
    for (Index k : keys) spa.accumulate(k, 1.0, add);
    benchmark::DoNotOptimize(spa.nzinds().data());
    spa.reset();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SpaAccumulate)->Range(1 << 10, 1 << 20);

void BM_DomainFind(benchmark::State& state) {
  auto keys = random_keys(state.range(0), 1 << 24);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  const auto dom = SparseDomain::from_sorted(keys);
  Xoshiro256 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dom.find(static_cast<Index>(rng.next_below(1 << 24))));
  }
}
BENCHMARK(BM_DomainFind)->Range(1 << 10, 1 << 20);

void BM_DomainBulkAdd(benchmark::State& state) {
  auto a = random_keys(state.range(0), 1 << 24);
  auto b = random_keys(state.range(0), 1 << 24);
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  for (auto _ : state) {
    auto dom = SparseDomain::from_sorted(a);
    dom.add_sorted(b);
    benchmark::DoNotOptimize(dom.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DomainBulkAdd)->Range(1 << 10, 1 << 18);

}  // namespace
}  // namespace pgb

BENCHMARK_MAIN();
