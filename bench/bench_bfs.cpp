// End-to-end BFS bench: the "hello world" the paper's operations were
// chosen to compose into. Runs BFS on an R-MAT graph across node counts,
// with the paper's fine-grained communication and with bulk transfers.
#include "bench_common.hpp"

#include "algo/bfs.hpp"
#include "algo/bfs_hybrid.hpp"
#include "gen/rmat.hpp"

using namespace pgb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int sc =
      static_cast<int>(cli.get_int("rmat-scale", 18, "R-MAT scale (2^s vertices)"));
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  const std::string profile = bench::profile_flag(cli);
  const bool profile_only = cli.get_bool(
      "profile-only", false, "write profile reports only, skip the sweep");
  cli.finish();

  RmatParams p;
  p.scale = sc;
  p.edge_factor = 8;
  bench::print_preamble("BFS", "R-MAT graph, GraphBLAS-composed BFS", 1.0);
  std::printf("graph: 2^%d vertices, edge factor %lld (symmetrized)\n",
              p.scale, static_cast<long long>(p.edge_factor));

  // Traced 64-node runs folded into profile reports, one per comm
  // schedule (the BFS baselines under BENCH_profiles/).
  if (!profile.empty()) {
    auto grid = LocaleGrid::square(64, 24);
    auto a = rmat_dist(grid, p);
    char workload[96];
    std::snprintf(workload, sizeof workload,
                  "bfs rmat scale=%d ef=%lld source=0", p.scale,
                  static_cast<long long>(p.edge_factor));
    obs::TraceSession session;
    grid.set_trace_session(&session);
    for (CommMode mode :
         {CommMode::kFine, CommMode::kBulk, CommMode::kAggregated}) {
      grid.reset();  // also clears the attached session
      SpmspvOptions opt;
      opt.comm = mode;
      bfs(a, /*source=*/0, opt);
      bench::write_bench_profile(profile, to_string(mode), grid, session,
                                 workload, to_string(mode), 1);
    }
    grid.set_trace_session(nullptr);
    if (profile_only) return 0;
  }

  Table t({"nodes", "fine-grained (paper)", "bulk comm",
           "hybrid dir-opt", "levels", "reached"});
  for (int nodes : {1, 4, 16, 64}) {
    auto grid = LocaleGrid::square(nodes, 24);
    auto a = rmat_dist(grid, p);

    grid.reset();
    auto fine = bfs(a, /*source=*/0);
    const double t_fine = grid.time();

    SpmspvOptions bulk;
    bulk.bulk_gather = true;
    bulk.bulk_scatter = true;
    grid.reset();
    auto fast = bfs(a, /*source=*/0, bulk);
    const double t_bulk = grid.time();

    HybridBfsOptions hopt;
    hopt.spmspv = bulk;
    grid.reset();
    auto hybrid = bfs_hybrid(a, /*source=*/0, hopt);
    const double t_hybrid = grid.time();
    (void)hybrid;

    Index reached = 0;
    for (Index s : fine.level_sizes) reached += s;
    t.row({Table::count(nodes), Table::time(t_fine), Table::time(t_bulk),
           Table::time(t_hybrid),
           Table::count(static_cast<std::int64_t>(fine.level_sizes.size())),
           Table::count(reached)});
  }
  csv ? t.print_csv() : t.print("BFS, 24 threads/node");
  return 0;
}
