// End-to-end BFS bench: the "hello world" the paper's operations were
// chosen to compose into. Runs BFS on an R-MAT graph across node counts,
// with the paper's fine-grained communication and with bulk transfers.
#include "bench_common.hpp"

#include "algo/bfs.hpp"
#include "algo/bfs_hybrid.hpp"
#include "gen/rmat.hpp"

using namespace pgb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int sc =
      static_cast<int>(cli.get_int("rmat-scale", 18, "R-MAT scale (2^s vertices)"));
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  cli.finish();

  RmatParams p;
  p.scale = sc;
  p.edge_factor = 8;
  bench::print_preamble("BFS", "R-MAT graph, GraphBLAS-composed BFS", 1.0);
  std::printf("graph: 2^%d vertices, edge factor %lld (symmetrized)\n",
              p.scale, static_cast<long long>(p.edge_factor));

  Table t({"nodes", "fine-grained (paper)", "bulk comm",
           "hybrid dir-opt", "levels", "reached"});
  for (int nodes : {1, 4, 16, 64}) {
    auto grid = LocaleGrid::square(nodes, 24);
    auto a = rmat_dist(grid, p);

    grid.reset();
    auto fine = bfs(a, /*source=*/0);
    const double t_fine = grid.time();

    SpmspvOptions bulk;
    bulk.bulk_gather = true;
    bulk.bulk_scatter = true;
    grid.reset();
    auto fast = bfs(a, /*source=*/0, bulk);
    const double t_bulk = grid.time();

    HybridBfsOptions hopt;
    hopt.spmspv = bulk;
    grid.reset();
    auto hybrid = bfs_hybrid(a, /*source=*/0, hopt);
    const double t_hybrid = grid.time();
    (void)hybrid;

    Index reached = 0;
    for (Index s : fine.level_sizes) reached += s;
    t.row({Table::count(nodes), Table::time(t_fine), Table::time(t_bulk),
           Table::time(t_hybrid),
           Table::count(static_cast<std::int64_t>(fine.level_sizes.size())),
           Table::count(reached)});
  }
  csv ? t.print_csv() : t.print("BFS, 24 threads/node");
  return 0;
}
