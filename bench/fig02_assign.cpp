// Figure 2: shared-memory (left) and distributed-memory (right)
// performance of the two Assign implementations. Input: random sparse
// vector with 1M nonzeros.
#include "bench_common.hpp"

#include "core/assign.hpp"
#include "gen/random_vec.hpp"

using namespace pgb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  cli.finish();

  const Index nnz = bench::scaled(1000000, scale);  // paper: 1M
  bench::print_preamble("Figure 2", "Assign1 vs Assign2, 1M-nonzero vector",
                        scale);

  {
    auto grid = LocaleGrid::single(1);
    auto b = random_dist_sparse_vec<double>(grid, 2 * nnz, nnz, 1);
    DistSparseVec<double> a(grid, 2 * nnz);
    Table t({"threads", "Assign1", "Assign2"});
    for (int threads : bench::thread_sweep()) {
      grid.set_threads(threads);
      grid.reset();
      assign_v1(a, b);
      const double t1 = grid.time();
      grid.reset();
      assign_v2(a, b);
      const double t2 = grid.time();
      t.row({Table::count(threads), Table::time(t1), Table::time(t2)});
    }
    csv ? t.print_csv() : t.print("shared memory (single node)");
  }

  {
    Table t({"nodes", "Assign1", "Assign2"});
    for (int nodes : bench::node_sweep()) {
      auto grid = LocaleGrid::square(nodes, 24);
      auto b = random_dist_sparse_vec<double>(grid, 2 * nnz, nnz, 1);
      DistSparseVec<double> a(grid, 2 * nnz);
      grid.reset();
      assign_v1(a, b);
      const double t1 = grid.time();
      grid.reset();
      assign_v2(a, b);
      const double t2 = grid.time();
      t.row({Table::count(nodes), Table::time(t1), Table::time(t2)});
    }
    csv ? t.print_csv() : t.print("distributed memory (24 threads/node)");
  }
  return 0;
}
