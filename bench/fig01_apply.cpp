// Figure 1: shared-memory (left) and distributed-memory (right)
// performance of the two Apply implementations. Input: random sparse
// vector with 10M nonzeros.
#include "bench_common.hpp"

#include "core/apply.hpp"
#include "core/ops.hpp"
#include "gen/random_vec.hpp"

using namespace pgb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const bool csv = cli.get_bool("csv", false, "emit CSV instead of tables");
  cli.finish();

  const Index nnz = bench::scaled(10000000, scale);  // paper: 10M
  bench::print_preamble("Figure 1", "Apply1 vs Apply2, 10M-nonzero vector",
                        scale);

  // ---- left subfigure: single node, thread sweep ----
  {
    auto grid = LocaleGrid::single(1);
    auto x = random_dist_sparse_vec<double>(grid, 2 * nnz, nnz, 1);
    Table t({"threads", "Apply1", "Apply2"});
    for (int threads : bench::thread_sweep()) {
      grid.set_threads(threads);
      grid.reset();
      apply_v1(x, NegateOp{});
      const double t1 = grid.time();
      grid.reset();
      apply_v2(x, NegateOp{});
      const double t2 = grid.time();
      t.row({Table::count(threads), Table::time(t1), Table::time(t2)});
    }
    csv ? t.print_csv() : t.print("shared memory (single node)");
  }

  // ---- right subfigure: node sweep, 24 threads per node ----
  {
    Table t({"nodes", "Apply1", "Apply2"});
    for (int nodes : bench::node_sweep()) {
      auto grid = LocaleGrid::square(nodes, 24);
      auto x = random_dist_sparse_vec<double>(grid, 2 * nnz, nnz, 1);
      grid.reset();
      apply_v1(x, NegateOp{});
      const double t1 = grid.time();
      grid.reset();
      apply_v2(x, NegateOp{});
      const double t2 = grid.time();
      t.row({Table::count(nodes), Table::time(t1), Table::time(t2)});
    }
    csv ? t.print_csv() : t.print("distributed memory (24 threads/node)");
  }
  return 0;
}
