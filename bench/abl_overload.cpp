// Ablation: serving under overload — goodput, latency, and the deadline
// contract as offered load sweeps past capacity.
//
// The resilience layer's bet is that a saturated service degrades
// *sideways*, not down: past capacity the admission queue sheds the
// excess with typed retry-after rejections while goodput plateaus at
// the service rate, admitted-query latency stays bounded by the queue
// depth, and no client ever sees a result past its deadline. A chaos
// leg re-runs the at-capacity point with a mid-traffic locale kill and
// must keep serving degraded on N-1 hosts.
//
// Method: calibrate the fused-batch service rate with a warm-up drain,
// then replay an open-loop arrival trace at {0.5x, 1x, 2x, 4x} of that
// capacity. Gates:
//   - goodput at 4x >= 90% of goodput at 1x (the plateau);
//   - served p95 end-to-end latency at 4x bounded by the worst-case
//     queue drain (3 * queue_depth / capacity);
//   - zero late results at every point (kDone implies completion <=
//     deadline) and every offered query terminal;
//   - the 4x leg re-run same-seed is bit-identical (served count, sim
//     time, completion-time checksum);
//   - chaos leg: >=1 rebuild, degraded health, goodput >= 50% of 1x.
//
// --json=PATH emits the baseline committed as BENCH_overload.json.
#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "gen/erdos_renyi.hpp"
#include "service/service.hpp"

using namespace pgb;

namespace {

constexpr int kNodes = 64;
constexpr int kQueueDepth = 64;
constexpr int kBatchMax = 8;
constexpr int kQueries = 240;
constexpr int kTenants = 4;

struct RunStats {
  double mult = 0.0;       ///< offered load as a multiple of capacity
  std::string leg;         ///< "sweep" | "chaos"
  double offered_qps = 0.0;
  double goodput_qps = 0.0;  ///< served / simulated makespan
  int served = 0;
  int shed = 0;      ///< queue-full rejections (excess load)
  int expired = 0;   ///< deadline expiries (any stage)
  int late = 0;      ///< kDone past deadline — must stay 0
  double p95_us = 0.0;  ///< served end-to-end latency, simulated us
  double sim_time = 0.0;
  double checksum = 0.0;  ///< sum of completion times (determinism probe)
  int rebuilds = 0;
  std::string mode = "normal";
};

/// Replays `kQueries` arrivals at `offered_qps` against a fresh service
/// on a fresh grid; every query carries the same generous deadline and
/// queue-full sheds are final (the bench is open-loop — retry behavior
/// is pgb_serve's business).
RunStats run_leg(int nodes, Index n, std::uint64_t seed, double offered_qps,
                 double deadline_s, FaultPlan* plan) {
  auto grid = LocaleGrid::square(nodes, 24);
  auto g = std::make_shared<DistCsr<double>>(
      erdos_renyi_dist<double>(grid, n, 8.0, seed));
  if (plan != nullptr) grid.set_fault_plan(plan);
  RecoveryReport report;
  ServiceConfig cfg;
  cfg.queue_depth = kQueueDepth;
  cfg.batch_max = kBatchMax;
  cfg.spmspv.comm = CommMode::kAggregated;
  if (plan != nullptr) {
    cfg.plan = plan;
    cfg.rebuild.mode = RebuildMode::kDegraded;
    cfg.rebuild.keep_membership = true;
    cfg.report = &report;
  }
  GraphService svc(grid, cfg);
  const auto h = svc.store().load(g);

  const double dt = 1.0 / offered_qps;
  RunStats st;
  st.offered_qps = offered_qps;
  int next = 0;
  while (next < kQueries || svc.queue_size() > 0) {
    // Admit everything due; if the queue is idle, jump to the next
    // arrival instead of spinning.
    if (next < kQueries) {
      const double due = next * dt;
      if (svc.queue_size() == 0 && grid.time() < due) {
        for (int l = 0; l < grid.num_locales(); ++l) {
          grid.clock(l).advance_to(due);
        }
      }
      while (next < kQueries &&
             static_cast<double>(next) * dt <= grid.time()) {
        QuerySpec spec;
        spec.kind = QueryKind::kBfs;
        spec.source = static_cast<Index>(
            (static_cast<Index>(next) * 7919) % n);
        spec.tenant = next % kTenants;
        spec.deadline_s = deadline_s;
        const auto s =
            svc.submit(h, spec, static_cast<double>(next) * dt);
        if (s.code == AdmitCode::kQueueFull) ++st.shed;
        ++next;
      }
    }
    svc.step();
  }
  st.sim_time = grid.time();

  std::vector<double> lat_us;
  for (const auto& rec : svc.records()) {
    st.checksum += rec.completion;
    if (rec.state == QueryState::kDone) {
      ++st.served;
      lat_us.push_back((rec.completion - rec.arrival) * 1e6);
      if (rec.completion > rec.deadline) ++st.late;
    } else if (rec.state == QueryState::kDeadlineExpired) {
      ++st.expired;
    }
  }
  if (!lat_us.empty()) {
    std::sort(lat_us.begin(), lat_us.end());
    st.p95_us = lat_us[(lat_us.size() * 95) / 100 == lat_us.size()
                           ? lat_us.size() - 1
                           : (lat_us.size() * 95) / 100];
  }
  st.goodput_qps = st.sim_time > 0.0 ? st.served / st.sim_time : 0.0;
  st.rebuilds = plan != nullptr ? report.rebuilds : 0;
  st.mode = svc.health().mode;
  return st;
}

void emit_json(const std::string& path, std::uint64_t seed, Index n,
               double capacity, const std::vector<RunStats>& samples) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  PGB_REQUIRE(out != nullptr, "cannot open --json path: " + path);
  std::fprintf(out,
               "{\n  \"bench\": \"abl_overload\",\n"
               "  \"workload\": \"er n=%lld d=8, %d bfs queries open-loop "
               "at 0.5x-4x of calibrated capacity, %d locales\",\n"
               "  \"machine\": \"edison\",\n  \"seed\": %llu,\n"
               "  \"capacity_qps\": %.6e,\n  \"samples\": [\n",
               static_cast<long long>(n), kQueries, kNodes,
               static_cast<unsigned long long>(seed), capacity);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const RunStats& s = samples[i];
    std::fprintf(out,
                 "    {\"leg\": \"%s\", \"load_mult\": %.2f, "
                 "\"offered_qps\": %.6e, \"goodput_qps\": %.6e, "
                 "\"served\": %d, \"shed\": %d, \"expired\": %d, "
                 "\"late\": %d, \"p95_us\": %.3f, "
                 "\"modeled_time_s\": %.6e, \"rebuilds\": %d, "
                 "\"mode\": \"%s\"}%s\n",
                 s.leg.c_str(), s.mult, s.offered_qps, s.goodput_qps,
                 s.served, s.shed, s.expired, s.late, s.p95_us, s.sim_time,
                 s.rebuilds, s.mode.c_str(),
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s (%zu samples)\n", path.c_str(), samples.size());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "fraction of paper size");
  const std::string json =
      cli.get("json", "", "write a machine-readable baseline to this path");
  const std::uint64_t seed = bench::seed_flag(cli);
  cli.finish();

  bench::print_preamble(
      "Ablation", "serving under overload: goodput plateau, bounded p95, "
      "zero late results, chaos leg on N-1 hosts", scale);

  const Index n = bench::scaled(20000, scale);

  // Calibrate: serve a few full-width batches and read the service rate
  // off the same EWMA the retry-after hint uses.
  double capacity = 0.0;
  {
    auto grid = LocaleGrid::square(kNodes, 24);
    auto g = std::make_shared<DistCsr<double>>(
        erdos_renyi_dist<double>(grid, n, 8.0, seed));
    ServiceConfig cfg;
    cfg.queue_depth = kQueueDepth;
    cfg.batch_max = kBatchMax;
    cfg.spmspv.comm = CommMode::kAggregated;
    GraphService svc(grid, cfg);
    const auto h = svc.store().load(g);
    for (int i = 0; i < 4 * kBatchMax; ++i) {
      QuerySpec spec;
      spec.kind = QueryKind::kBfs;
      spec.source = static_cast<Index>((static_cast<Index>(i) * 7919) % n);
      spec.tenant = i % kTenants;
      svc.submit(h, spec, grid.time());
    }
    svc.drain();
    capacity = svc.cost_model().service_rate();
  }
  PGB_REQUIRE(capacity > 0.0, "calibration produced no service rate");
  // Generous per-query budget: a full queue drain plus slack.
  const double deadline_s = 3.0 * kQueueDepth / capacity;
  std::printf("calibrated capacity: %.1f q/s (deadline budget %.3f ms)\n\n",
              capacity, deadline_s * 1e3);

  std::vector<RunStats> samples;
  Table t({"leg", "load", "offered q/s", "goodput q/s", "served", "shed",
           "expired", "late", "p95", "mode"});
  for (const double mult : {0.5, 1.0, 2.0, 4.0}) {
    RunStats st = run_leg(kNodes, n, seed, mult * capacity, deadline_s, nullptr);
    st.mult = mult;
    st.leg = "sweep";
    samples.push_back(st);
    t.row({"sweep", Table::num(mult), Table::num(st.offered_qps),
           Table::num(st.goodput_qps), Table::count(st.served),
           Table::count(st.shed), Table::count(st.expired),
           Table::count(st.late), Table::time(st.p95_us * 1e-6), st.mode});
  }

  // Chaos leg: the at-capacity point with a mid-traffic locale kill.
  const double kill_at = samples[1].sim_time * 0.4;
  FaultPlan plan(FaultSpec::parse("kill:locale=3,at=" +
                                  std::to_string(kill_at)),
                 seed + 37);
  RunStats chaos = run_leg(kNodes, n, seed, capacity, deadline_s, &plan);
  chaos.mult = 1.0;
  chaos.leg = "chaos";
  samples.push_back(chaos);
  t.row({"chaos", Table::num(1.0), Table::num(chaos.offered_qps),
         Table::num(chaos.goodput_qps), Table::count(chaos.served),
         Table::count(chaos.shed), Table::count(chaos.expired),
         Table::count(chaos.late), Table::time(chaos.p95_us * 1e-6),
         chaos.mode});
  t.print();

  // Same-seed determinism probe on the heaviest leg.
  const RunStats& x4 = samples[3];
  RunStats rerun = run_leg(kNodes, n, seed, 4.0 * capacity, deadline_s, nullptr);
  const bool deterministic = rerun.served == x4.served &&
                             rerun.sim_time == x4.sim_time &&
                             rerun.checksum == x4.checksum;
  std::printf("\nsame-seed 4x rerun bit-identical: %s\n",
              deterministic ? "yes" : "NO");

  bool gates_hold = true;
  const RunStats& x1 = samples[1];
  if (x4.goodput_qps < 0.9 * x1.goodput_qps) {
    gates_hold = false;
    std::printf("GATE FAILED: 4x goodput %.1f q/s < 90%% of 1x %.1f q/s\n",
                x4.goodput_qps, x1.goodput_qps);
  }
  const double p95_bound_us = 3.0 * kQueueDepth / capacity * 1e6;
  if (x4.p95_us > p95_bound_us) {
    gates_hold = false;
    std::printf("GATE FAILED: 4x p95 %.0f us exceeds queue-drain bound "
                "%.0f us\n", x4.p95_us, p95_bound_us);
  }
  for (const RunStats& s : samples) {
    if (s.late != 0) {
      gates_hold = false;
      std::printf("GATE FAILED: %d late results at %s %.1fx\n", s.late,
                  s.leg.c_str(), s.mult);
    }
    if (s.served + s.expired + s.shed != kQueries) {
      gates_hold = false;
      std::printf("GATE FAILED: %s %.1fx lost queries (%d + %d + %d != "
                  "%d)\n", s.leg.c_str(), s.mult, s.served, s.expired,
                  s.shed, kQueries);
    }
  }
  if (chaos.rebuilds < 1 || chaos.mode != "degraded") {
    gates_hold = false;
    std::printf("GATE FAILED: chaos leg did not rebuild+degrade "
                "(rebuilds=%d mode=%s)\n", chaos.rebuilds,
                chaos.mode.c_str());
  }
  if (chaos.goodput_qps < 0.5 * x1.goodput_qps) {
    gates_hold = false;
    std::printf("GATE FAILED: chaos goodput %.1f q/s < 50%% of 1x\n",
                chaos.goodput_qps);
  }
  PGB_REQUIRE(deterministic, "same-seed 4x rerun diverged");
  PGB_REQUIRE(gates_hold, "overload acceptance gates failed");
  if (!json.empty()) emit_json(json, seed, n, capacity, samples);
  return 0;
}
