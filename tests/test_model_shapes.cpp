// End-to-end figure-shape assertions: each test pins one qualitative
// claim of a paper figure that the benches print quantitatively. These
// are the regression guards for the calibration constants.
#include <gtest/gtest.h>

#include "core/apply.hpp"
#include "core/assign.hpp"
#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"

namespace pgb {
namespace {

double assign2_time(int nloc, Index nnz, int threads) {
  auto g = LocaleGrid::square(nloc, threads);
  auto b = random_dist_sparse_vec<double>(g, 2 * nnz, nnz, 1);
  DistSparseVec<double> a(g, 2 * nnz);
  g.reset();
  assign_v2(a, b);
  return g.time();
}

TEST(Fig3Shape, SmallAssignStopsScalingLargeKeepsGoing) {
  // Fig 3: nnz=1M flattens after a few nodes; nnz=100M keeps scaling.
  // (Scaled 10x down here to keep the test fast; the bench runs full
  // size.)
  const Index small = 100000, large = 10000000;
  const double s1 = assign2_time(1, small, 24);
  const double s16 = assign2_time(16, small, 24);
  const double s64 = assign2_time(64, small, 24);
  const double l1 = assign2_time(1, large, 24);
  const double l64 = assign2_time(64, large, 24);

  EXPECT_LT(s16 / s64, 2.0);        // small: flat beyond 16 nodes
  EXPECT_LT(s1 / s64, 24.0);        // small: far from ideal 64x
  EXPECT_GT(l1 / l64, 20.0);        // large: strong scaling persists
}

TEST(Fig9Shape, LocalMultiplySpeedsUpButTotalStaysFlat) {
  // Fig 9: local multiply gains ~43x from 1 to 64 nodes, while gather
  // keeps the total roughly flat. Needs enough per-locale work at 64
  // locales for spawn overhead to amortize, hence the larger instance.
  const Index n = 4000000;
  const double d = 16.0;
  const Index fnnz = n / 50;

  auto run = [&](int nloc, double* local_t, double* total_t) {
    auto g = LocaleGrid::square(nloc, 24);
    auto a = erdos_renyi_dist<std::int64_t>(g, n, d, 5);
    auto x = random_dist_sparse_vec<std::int64_t>(g, n, fnnz, 6);
    g.reset();
    spmspv_dist(a, x, arithmetic_semiring<std::int64_t>());
    *local_t = g.trace().get("local");
    *total_t = g.time();
  };

  double local1, total1, local64, total64;
  run(1, &local1, &total1);
  run(64, &local64, &total64);

  EXPECT_GT(local1 / local64, 15.0);  // local multiply scales strongly
  EXPECT_LT(local1 / local64, 120.0);
  EXPECT_LT(total1 / total64, 8.0);   // total does not scale like that
}

TEST(Fig8Shape, GatherGrowsToDominateWithNodeCount) {
  const Index n = 1000000;
  const Index fnnz = n / 50;
  auto gather_frac = [&](int nloc) {
    auto g = LocaleGrid::square(nloc, 24);
    auto a = erdos_renyi_dist<std::int64_t>(g, n, 16.0, 5);
    auto x = random_dist_sparse_vec<std::int64_t>(g, n, fnnz, 6);
    g.reset();
    spmspv_dist(a, x, arithmetic_semiring<std::int64_t>());
    return g.trace().get("gather") / g.time();
  };
  EXPECT_LT(gather_frac(1), 0.05);   // all local at 1 node
  EXPECT_GT(gather_frac(16), 0.5);   // dominates at scale
}

TEST(Fig1Shape, Apply1JumpsByOrdersOfMagnitudeLeavingOneNode) {
  const Index nnz = 1000000;
  auto run = [&](int nloc) {
    auto g = LocaleGrid::square(nloc, 24);
    auto x = random_dist_sparse_vec<double>(g, 2 * nnz, nnz, 1);
    g.reset();
    apply_v1(x, NegateOp{});
    return g.time();
  };
  const double t1 = run(1);
  const double t2 = run(2);
  EXPECT_GT(t2 / t1, 100.0);  // the cliff between 1 and 2 nodes
  EXPECT_LT(run(64) / t2, 10.0);  // then a slow climb, not another cliff
}

TEST(Fig10Shape, ColocationDegradesBeyondAFewLocales) {
  // Fig 10: with a tiny input and all locales on one node, extra locales
  // only add fork serialization and handler contention. A small dip at
  // 2-4 locales (work still splits) is fine; past that the curve climbs,
  // and 32 locales are much worse than 1.
  const Index nnz = 10000;
  auto run = [&](int nloc) {
    auto g = LocaleGrid::square(nloc, 1, /*locales_per_node=*/nloc);
    auto b = random_dist_sparse_vec<double>(g, 2 * nnz, nnz, 1);
    DistSparseVec<double> a(g, 2 * nnz);
    g.reset();
    assign_v2(a, b);
    return g.time();
  };
  const double t1 = run(1);
  double prev = run(4);
  for (int nloc : {8, 16, 32}) {
    const double t = run(nloc);
    EXPECT_GT(t, prev) << nloc << " locales";
    prev = t;
  }
  EXPECT_GT(prev, 2.0 * t1);  // 32 locales clearly worse than 1
}

TEST(BurdenedParallelism, SpmdBeatsForallOnlyWhenWorkAmortizes) {
  // The paper's central finding: SPMD wins in distributed memory, and
  // the margin shrinks as per-locale work grows (spawn costs amortize).
  auto ratio = [&](Index nnz) {
    auto g = LocaleGrid::square(4, 24);
    auto x = random_dist_sparse_vec<double>(g, 2 * nnz, nnz, 1);
    g.reset();
    apply_v1(x, NegateOp{});
    const double t1 = g.time();
    g.reset();
    apply_v2(x, NegateOp{});
    return t1 / g.time();
  };
  EXPECT_GT(ratio(10000), 10.0);
  EXPECT_GT(ratio(1000000), ratio(10000));  // v1's deficit grows with nnz
}

}  // namespace
}  // namespace pgb
