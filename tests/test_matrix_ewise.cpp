// Tests for matrix-level eWiseMult/eWiseAdd/Assign/Extract and the
// distributed SUMMA SpGEMM.
#include <gtest/gtest.h>

#include "core/matrix_ewise.hpp"
#include "core/mxm.hpp"
#include "core/mxm_dist.hpp"
#include "core/ops.hpp"
#include "gen/erdos_renyi.hpp"

namespace pgb {
namespace {

class MatGrids : public ::testing::TestWithParam<int> {};

TEST_P(MatGrids, EwiseMultMatchesPatternIntersection) {
  const Index n = 200;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = erdos_renyi_dist<double>(grid, n, 6.0, 1);
  auto b = erdos_renyi_dist<double>(grid, n, 6.0, 2);
  auto c = ewise_mult_matrix(a, b, PlusOp{});
  EXPECT_TRUE(c.check_invariants());

  auto la = a.to_local();
  auto lb = b.to_local();
  auto lc = c.to_local();
  Index expected = 0;
  for (Index r = 0; r < n; ++r) {
    for (Index col : la.row_colids(r)) {
      const double* av = la.find(r, col);
      const double* bv = lb.find(r, col);
      const double* cv = lc.find(r, col);
      if (bv) {
        ++expected;
        ASSERT_NE(cv, nullptr);
        EXPECT_DOUBLE_EQ(*cv, *av + *bv);
      } else {
        EXPECT_EQ(cv, nullptr);
      }
    }
  }
  EXPECT_EQ(lc.nnz(), expected);
}

TEST_P(MatGrids, EwiseAddMatchesPatternUnion) {
  const Index n = 150;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = erdos_renyi_dist<double>(grid, n, 4.0, 3);
  auto b = erdos_renyi_dist<double>(grid, n, 4.0, 4);
  auto c = ewise_add_matrix(a, b, PlusOp{});
  EXPECT_TRUE(c.check_invariants());

  auto la = a.to_local();
  auto lb = b.to_local();
  auto lc = c.to_local();
  for (Index r = 0; r < n; ++r) {
    for (Index col = 0; col < n; ++col) {
      const double* av = la.find(r, col);
      const double* bv = lb.find(r, col);
      const double* cv = lc.find(r, col);
      const double expect = (av ? *av : 0.0) + (bv ? *bv : 0.0);
      if (av || bv) {
        ASSERT_NE(cv, nullptr);
        EXPECT_DOUBLE_EQ(*cv, expect);
      } else {
        EXPECT_EQ(cv, nullptr);
      }
    }
  }
}

TEST_P(MatGrids, AssignMatrixCopiesBlocks) {
  const Index n = 100;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto b = erdos_renyi_dist<double>(grid, n, 5.0, 5);
  DistCsr<double> a(grid, n, n);
  assign_matrix(a, b);
  EXPECT_EQ(a.nnz(), b.nnz());
  auto la = a.to_local();
  auto lb = b.to_local();
  for (Index r = 0; r < n; ++r) {
    auto x = la.row_colids(r);
    auto y = lb.row_colids(r);
    ASSERT_EQ(x.size(), y.size());
    for (std::size_t k = 0; k < x.size(); ++k) EXPECT_EQ(x[k], y[k]);
  }
}

TEST_P(MatGrids, ExtractSubmatrixWindows) {
  const Index n = 120;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = erdos_renyi_dist<double>(grid, n, 8.0, 6);
  auto z = extract_submatrix(a, 20, 80, 30, 90);
  EXPECT_TRUE(z.check_invariants());
  auto la = a.to_local();
  auto lz = z.to_local();
  Index expected = 0;
  for (Index r = 0; r < n; ++r) {
    for (Index col : la.row_colids(r)) {
      const bool inside = r >= 20 && r < 80 && col >= 30 && col < 90;
      if (inside) ++expected;
      EXPECT_EQ(lz.find(r, col) != nullptr, inside)
          << "(" << r << "," << col << ")";
    }
  }
  EXPECT_EQ(lz.nnz(), expected);
}

INSTANTIATE_TEST_SUITE_P(Grids, MatGrids, ::testing::Values(1, 4, 6, 9));

TEST(MatrixEwise, MismatchThrows) {
  auto grid = LocaleGrid::square(4, 1);
  DistCsr<double> a(grid, 10, 10), b(grid, 10, 11);
  EXPECT_THROW(ewise_mult_matrix(a, b, PlusOp{}), DimensionMismatch);
  EXPECT_THROW(ewise_add_matrix(a, b, PlusOp{}), DimensionMismatch);
  EXPECT_THROW(assign_matrix(a, b), DimensionMismatch);
  EXPECT_THROW(extract_submatrix(a, 0, 11, 0, 5), InvalidArgument);
}

class SummaGrids : public ::testing::TestWithParam<int> {};

TEST_P(SummaGrids, MatchesLocalGustavson) {
  const Index n = 120;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = erdos_renyi_dist<double>(grid, n, 5.0, 7);
  auto b = erdos_renyi_dist<double>(grid, n, 5.0, 8);
  auto c = mxm_dist(a, b, arithmetic_semiring<double>());
  EXPECT_TRUE(c.check_invariants());

  auto gridl = LocaleGrid::single(1);
  LocaleCtx ctx(gridl, 0);
  auto ref = mxm_local(ctx, a.to_local(), b.to_local(),
                       arithmetic_semiring<double>());
  auto lc = c.to_local();
  ASSERT_EQ(lc.nnz(), ref.nnz());
  for (Index r = 0; r < n; ++r) {
    auto rc = ref.row_colids(r);
    auto cc = lc.row_colids(r);
    ASSERT_EQ(rc.size(), cc.size()) << "row " << r;
    for (std::size_t k = 0; k < rc.size(); ++k) {
      EXPECT_EQ(cc[k], rc[k]);
      EXPECT_NEAR(lc.row_values(r)[k], ref.row_values(r)[k], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SquareGrids, SummaGrids,
                         ::testing::Values(1, 4, 9, 16));

TEST(Summa, MinPlusSemiring) {
  // One step of min-plus matrix squaring = length-2 shortest paths.
  const Index n = 60;
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<double>(grid, n, 4.0, 9);
  auto c = mxm_dist(a, a, min_plus_semiring<double>());
  auto la = a.to_local();
  auto lc = c.to_local();
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      double best = std::numeric_limits<double>::max();
      for (Index k = 0; k < n; ++k) {
        const double* x = la.find(i, k);
        const double* y = la.find(k, j);
        if (x && y) best = std::min(best, *x + *y);
      }
      const double* got = lc.find(i, j);
      if (best < std::numeric_limits<double>::max()) {
        ASSERT_NE(got, nullptr) << i << "," << j;
        EXPECT_NEAR(*got, best, 1e-9);
      } else {
        EXPECT_EQ(got, nullptr);
      }
    }
  }
}

TEST(Summa, NonSquareGridRejected) {
  auto grid = LocaleGrid::square(8, 1);  // 2x4
  DistCsr<double> a(grid, 10, 10), b(grid, 10, 10);
  EXPECT_THROW(mxm_dist(a, b, arithmetic_semiring<double>()),
               InvalidArgument);
}

TEST(SummaModel, CommunicationGrowsWithStages) {
  // SUMMA moves O(nnz * sqrt(p)) words total; per-locale comm time rises
  // slowly with grid size while compute shrinks.
  const Index n = 100000;  // large enough that spawn overhead amortizes
  auto time_for = [&](int nloc) {
    auto grid = LocaleGrid::square(nloc, 24);
    auto a = erdos_renyi_dist<double>(grid, n, 8.0, 1);
    auto b = erdos_renyi_dist<double>(grid, n, 8.0, 2);
    grid.reset();
    mxm_dist(a, b, arithmetic_semiring<double>());
    return grid.time();
  };
  // Scaling holds but is clearly sublinear (broadcast + per-stage spawn
  // overheads grow with sqrt(p)).
  const double t1 = time_for(1);
  const double t16 = time_for(16);
  EXPECT_GT(t1 / t16, 2.0);
  EXPECT_LT(t1 / t16, 12.0);
}

}  // namespace
}  // namespace pgb
