// Property tests for the algebraic layer: monoid and semiring laws over
// random samples, and the behaviour of the standard instances. These are
// the invariants the GraphBLAS operations rely on (e.g. the scatter
// accumulation assumes the add monoid is associative & commutative).
#include <gtest/gtest.h>

#include "core/ops.hpp"
#include "machine/machine_model.hpp"
#include "util/rng.hpp"

namespace pgb {
namespace {

template <typename M, typename Gen>
void check_monoid_laws(const M& m, Gen gen, int samples = 200) {
  Xoshiro256 rng(7);
  for (int i = 0; i < samples; ++i) {
    const auto a = gen(rng);
    const auto b = gen(rng);
    const auto c = gen(rng);
    // identity
    EXPECT_EQ(m(a, m.identity), a);
    EXPECT_EQ(m(m.identity, a), a);
    // associativity
    EXPECT_EQ(m(m(a, b), c), m(a, m(b, c)));
    // commutativity (all standard GraphBLAS add monoids are commutative)
    EXPECT_EQ(m(a, b), m(b, a));
  }
}

std::int64_t gen_int(Xoshiro256& rng) {
  return static_cast<std::int64_t>(rng.next_below(2000)) - 1000;
}

TEST(MonoidLaws, PlusInt) {
  check_monoid_laws(plus_monoid<std::int64_t>(), gen_int);
}

TEST(MonoidLaws, TimesInt) {
  // Smaller operands to avoid overflow in the associativity check.
  check_monoid_laws(times_monoid<std::int64_t>(), [](Xoshiro256& rng) {
    return static_cast<std::int64_t>(rng.next_below(20)) - 10;
  });
}

TEST(MonoidLaws, MinMaxInt) {
  check_monoid_laws(min_monoid<std::int64_t>(), gen_int);
  check_monoid_laws(max_monoid<std::int64_t>(), gen_int);
}

TEST(MonoidLaws, LogicalOr) {
  check_monoid_laws(lor_monoid<std::int64_t>(), [](Xoshiro256& rng) {
    return static_cast<std::int64_t>(rng.next_below(2));
  });
}

template <typename SR, typename Gen>
void check_semiring_laws(const SR& sr, Gen gen, int samples = 200) {
  Xoshiro256 rng(13);
  for (int i = 0; i < samples; ++i) {
    const auto a = gen(rng);
    const auto b = gen(rng);
    const auto c = gen(rng);
    // multiply distributes over add (left and right)
    EXPECT_EQ(sr.multiply(a, sr.combine(b, c)),
              sr.combine(sr.multiply(a, b), sr.multiply(a, c)));
    EXPECT_EQ(sr.multiply(sr.combine(a, b), c),
              sr.combine(sr.multiply(a, c), sr.multiply(b, c)));
    // additive identity annihilates nothing for combine
    EXPECT_EQ(sr.combine(a, sr.zero()), a);
  }
}

TEST(SemiringLaws, ArithmeticDistributes) {
  check_semiring_laws(arithmetic_semiring<std::int64_t>(),
                      [](Xoshiro256& rng) {
                        return static_cast<std::int64_t>(rng.next_below(30)) -
                               15;
                      });
}

TEST(SemiringLaws, MinPlusDistributes) {
  // (min, +) is a semiring: a + min(b, c) == min(a+b, a+c).
  check_semiring_laws(min_plus_semiring<std::int64_t>(), gen_int);
}

TEST(SemiringLaws, BooleanDistributes) {
  check_semiring_laws(boolean_semiring<std::int64_t>(), [](Xoshiro256& rng) {
    return static_cast<std::int64_t>(rng.next_below(2));
  });
}

TEST(Semirings, MinFirstPropagatesLeftOperand) {
  const auto sr = min_first_semiring<std::int64_t>();
  EXPECT_EQ(sr.multiply(42, 7), 42);
  EXPECT_EQ(sr.combine(42, 7), 7);
  EXPECT_EQ(sr.zero(), std::numeric_limits<std::int64_t>::max());
}

TEST(UnaryOps, Basics) {
  EXPECT_EQ(IdentityOp{}(5), 5);
  EXPECT_EQ(NegateOp{}(5), -5);
  EXPECT_EQ((ScaleOp<int>{3})(5), 15);
  EXPECT_EQ((IncrementOp<int>{3})(5), 8);
}

TEST(BinaryOps, Selectors) {
  EXPECT_EQ(FirstOp{}(1, 2), 1);
  EXPECT_EQ(SecondOp{}(1, 2), 2);
  EXPECT_EQ(LogicalOrOp{}(0, 3), 1);
  EXPECT_EQ(LogicalOrOp{}(0, 0), 0);
  EXPECT_EQ(LogicalAndOp{}(2, 3), 1);
  EXPECT_EQ(LogicalAndOp{}(2, 0), 0);
}

TEST(Semirings, UserDefinedSemiringWorks) {
  // max-times over non-negative doubles (a legitimate semiring on
  // [0, inf): used for widest-path style problems).
  struct MaxOp2 {
    double operator()(double a, double b) const { return std::max(a, b); }
  };
  Semiring<double, MaxOp2, TimesOp> sr{{MaxOp2{}, 0.0}, TimesOp{}};
  EXPECT_EQ(sr.combine(0.5, 0.7), 0.7);
  EXPECT_EQ(sr.multiply(0.5, 0.5), 0.25);
  check_semiring_laws(sr, [](Xoshiro256& rng) {
    return rng.next_double();
  });
}

TEST(MachineModels, ModernRelations) {
  const auto edison = MachineModel::edison();
  const auto modern = MachineModel::modern();
  // Compute and bandwidth grew much more than network latency shrank —
  // the premise of the era ablation.
  const double compute_gain = (modern.node.cores * modern.node.ops_per_sec) /
                              (edison.node.cores * edison.node.ops_per_sec);
  const double latency_gain = edison.net.alpha / modern.net.alpha;
  EXPECT_GT(compute_gain, 1.5 * latency_gain);
  EXPECT_GT(edison.node.tau_task, modern.node.tau_task);
  EXPECT_GT(modern.node.bw_node, edison.node.bw_node);
}

}  // namespace
}  // namespace pgb
