// Tests for SpMSpV: the shared-memory SPA algorithm against a dense
// reference, the distributed version against the shared-memory one across
// grid shapes and option combinations, and the Fig 7-9 modeled shapes.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"

namespace pgb {
namespace {

/// Dense reference for y <- x A on a semiring.
template <typename T, typename SR>
std::vector<T> dense_reference(const Csr<T>& a, const SparseVec<T>& x,
                               const SR& sr) {
  std::vector<T> y(static_cast<std::size_t>(a.ncols()), sr.zero());
  for (Index p = 0; p < x.nnz(); ++p) {
    const Index r = x.index_at(p);
    auto cols = a.row_colids(r);
    auto vals = a.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      auto& slot = y[static_cast<std::size_t>(cols[k])];
      slot = sr.combine(slot, sr.multiply(x.value_at(p), vals[k]));
    }
  }
  return y;
}

template <typename T>
void expect_matches_dense(const SparseVec<T>& got, const std::vector<T>& ref,
                          T zero) {
  Index nnz_ref = 0;
  for (std::size_t c = 0; c < ref.size(); ++c) {
    if (ref[c] != zero) {
      ++nnz_ref;
      const T* v = got.find(static_cast<Index>(c));
      ASSERT_NE(v, nullptr) << "missing output at " << c;
      EXPECT_EQ(*v, ref[c]) << "wrong value at " << c;
    }
  }
  EXPECT_EQ(got.nnz(), nnz_ref);
}

using ShmParam = std::tuple<Index, double, double, SortAlgo>;

class SpmspvShm : public ::testing::TestWithParam<ShmParam> {};

TEST_P(SpmspvShm, MatchesDenseReferenceArithmetic) {
  const auto [n, d, f, sort] = GetParam();
  auto a = erdos_renyi_csr<std::int64_t>(n, d, 7);
  auto x = random_sparse_vec<std::int64_t>(
      n, static_cast<Index>(f * static_cast<double>(n)), 8);
  const auto sr = arithmetic_semiring<std::int64_t>();

  auto grid = LocaleGrid::single(4);
  LocaleCtx ctx(grid, 0);
  SpmspvOptions opt;
  opt.sort = sort;
  auto y = spmspv_shm(ctx, a, 0, x, 0, n, sr, opt);
  expect_matches_dense(y, dense_reference(a, x, sr), sr.zero());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpmspvShm,
    ::testing::Combine(::testing::Values<Index>(64, 500, 2000),
                       ::testing::Values(2.0, 8.0),
                       ::testing::Values(0.02, 0.2, 0.8),
                       ::testing::Values(SortAlgo::kMerge,
                                         SortAlgo::kRadix)));

TEST(SpmspvShmSemirings, MinPlusMatchesReference) {
  const Index n = 400;
  auto a = erdos_renyi_csr<std::int64_t>(n, 6.0, 3);
  auto x = random_sparse_vec<std::int64_t>(n, 40, 4);
  const auto sr = min_plus_semiring<std::int64_t>();
  auto grid = LocaleGrid::single(1);
  LocaleCtx ctx(grid, 0);
  auto y = spmspv_shm(ctx, a, 0, x, 0, n, sr);
  expect_matches_dense(y, dense_reference(a, x, sr), sr.zero());
}

TEST(SpmspvShm, EmptyVectorGivesEmptyResult) {
  auto a = erdos_renyi_csr<std::int64_t>(100, 4.0, 1);
  SparseVec<std::int64_t> x(100);
  auto grid = LocaleGrid::single(1);
  LocaleCtx ctx(grid, 0);
  auto y = spmspv_shm(ctx, a, 0, x, 0, 100, arithmetic_semiring<std::int64_t>());
  EXPECT_EQ(y.nnz(), 0);
}

TEST(SpmspvShm, OutputSortedAndInRange) {
  const Index n = 1000;
  auto a = erdos_renyi_csr<std::int64_t>(n, 10.0, 2);
  auto x = random_sparse_vec<std::int64_t>(n, 100, 5);
  auto grid = LocaleGrid::single(2);
  LocaleCtx ctx(grid, 0);
  auto y = spmspv_shm(ctx, a, 0, x, 0, n, arithmetic_semiring<std::int64_t>());
  EXPECT_TRUE(is_sorted_ascending(y.domain().indices()));
  for (Index p = 0; p < y.nnz(); ++p) {
    EXPECT_GE(y.index_at(p), 0);
    EXPECT_LT(y.index_at(p), n);
  }
}

TEST(SpmspvShm, RecordsPhaseTrace) {
  const Index n = 500;
  auto a = erdos_renyi_csr<std::int64_t>(n, 8.0, 2);
  auto x = random_sparse_vec<std::int64_t>(n, 50, 3);
  auto grid = LocaleGrid::single(4);
  LocaleCtx ctx(grid, 0);
  Trace trace;
  spmspv_shm(ctx, a, 0, x, 0, n, arithmetic_semiring<std::int64_t>(), {},
             &trace);
  EXPECT_GT(trace.get("spa"), 0.0);
  EXPECT_GT(trace.get("sort"), 0.0);
  EXPECT_GT(trace.get("output"), 0.0);
  EXPECT_NEAR(trace.get("spa") + trace.get("sort") + trace.get("output"),
              grid.time(), 1e-12);
}

using DistParam = std::tuple<int, bool, bool>;

class SpmspvDist : public ::testing::TestWithParam<DistParam> {};

TEST_P(SpmspvDist, MatchesLocalReference) {
  const auto [nloc, bulk_gather, bulk_scatter] = GetParam();
  const Index n = 600;
  auto grid = LocaleGrid::square(nloc, 4);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 6.0, 11);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, 80, 12);
  const auto sr = arithmetic_semiring<std::int64_t>();

  SpmspvOptions opt;
  opt.bulk_gather = bulk_gather;
  opt.bulk_scatter = bulk_scatter;
  auto y = spmspv_dist(a, x, sr, opt);
  EXPECT_TRUE(y.check_invariants());

  auto ref = dense_reference(a.to_local(), x.to_local(), sr);
  expect_matches_dense(y.to_local(), ref, sr.zero());
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndModes, SpmspvDist,
    ::testing::Combine(::testing::Values(1, 2, 4, 6, 9, 16),
                       ::testing::Bool(), ::testing::Bool()));

TEST(SpmspvDist, MinFirstSemiringParentStyle) {
  // BFS-style: x carries vertex ids, result holds min discovering row.
  const Index n = 300;
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 5.0, 21);
  std::vector<Index> fidx{10, 50, 200};
  std::vector<std::int64_t> fval{10, 50, 200};
  auto x = DistSparseVec<std::int64_t>::from_sorted(grid, n, fidx, fval);
  const auto sr = min_first_semiring<std::int64_t>();
  auto y = spmspv_dist(a, x, sr);
  auto ref = dense_reference(a.to_local(), x.to_local(), sr);
  expect_matches_dense(y.to_local(), ref, sr.zero());
}

TEST(SpmspvDist, RecordsDistPhases) {
  const Index n = 400;
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 6.0, 2);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, 60, 3);
  grid.reset();
  spmspv_dist(a, x, arithmetic_semiring<std::int64_t>());
  EXPECT_GT(grid.trace().get("gather"), 0.0);
  EXPECT_GT(grid.trace().get("local"), 0.0);
  EXPECT_GT(grid.trace().get("scatter"), 0.0);
}

// ---- modeled-performance shapes (Figs 7-9) ----

TEST(SpmspvModel, SortDominatesSharedMemory) {
  // Fig 7: with merge sort, sorting is the most expensive component.
  const Index n = 100000;
  auto a = erdos_renyi_csr<std::int64_t>(n, 16.0, 5);
  auto x = random_sparse_vec<std::int64_t>(n, n / 50, 6);
  auto grid = LocaleGrid::single(1);
  LocaleCtx ctx(grid, 0);
  Trace trace;
  spmspv_shm(ctx, a, 0, x, 0, n, arithmetic_semiring<std::int64_t>(), {},
             &trace);
  EXPECT_GT(trace.get("sort"), trace.get("spa"));
  EXPECT_GT(trace.get("sort"), trace.get("output"));
}

TEST(SpmspvModel, SharedMemorySpeedupAroundTen) {
  // Paper: 9-11x going from 1 to 24 threads.
  const Index n = 200000;
  auto a = erdos_renyi_csr<std::int64_t>(n, 16.0, 5);
  auto x = random_sparse_vec<std::int64_t>(n, n / 50, 6);
  auto run = [&](int threads) {
    auto grid = LocaleGrid::single(threads);
    LocaleCtx ctx(grid, 0);
    spmspv_shm(ctx, a, 0, x, 0, n, arithmetic_semiring<std::int64_t>());
    return grid.time();
  };
  const double speedup = run(1) / run(24);
  EXPECT_GT(speedup, 6.0);
  EXPECT_LT(speedup, 16.0);
}

TEST(SpmspvModel, RadixSortCutsTheSortCost) {
  const Index n = 200000;
  auto a = erdos_renyi_csr<std::int64_t>(n, 16.0, 5);
  auto x = random_sparse_vec<std::int64_t>(n, n / 50, 6);
  auto run = [&](SortAlgo s) {
    auto grid = LocaleGrid::single(24);
    LocaleCtx ctx(grid, 0);
    SpmspvOptions opt;
    opt.sort = s;
    Trace t;
    spmspv_shm(ctx, a, 0, x, 0, n, arithmetic_semiring<std::int64_t>(), opt,
               &t);
    return t.get("sort");
  };
  EXPECT_GT(run(SortAlgo::kMerge), 2.0 * run(SortAlgo::kRadix));
}

TEST(SpmspvModel, GatherDominatesDistributedRuns) {
  // Figs 8-9: communication (gather) swamps the local multiply at scale.
  const Index n = 200000;
  auto grid = LocaleGrid::square(16, 24);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 16.0, 5);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, n / 50, 6);
  grid.reset();
  spmspv_dist(a, x, arithmetic_semiring<std::int64_t>());
  EXPECT_GT(grid.trace().get("gather"), grid.trace().get("local"));
}

TEST(SpmspvDist, CommModesProduceIdenticalResults) {
  const Index n = 600;
  auto grid = LocaleGrid::square(9, 4);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 6.0, 11);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, 80, 12);
  const auto sr = arithmetic_semiring<std::int64_t>();
  auto ref = dense_reference(a.to_local(), x.to_local(), sr);

  for (CommMode m :
       {CommMode::kFine, CommMode::kBulk, CommMode::kAggregated}) {
    SpmspvOptions opt;
    opt.comm = m;
    opt.agg.capacity = 64;  // small enough for mid-stream flushes
    auto y = spmspv_dist(a, x, sr, opt);
    EXPECT_TRUE(y.check_invariants());
    expect_matches_dense(y.to_local(), ref, sr.zero());
  }
}

TEST(SpmspvModel, AggregationCutsMessagesByOrderOfMagnitude) {
  // The aggregation layer's reason to exist: identical output, ~10x+
  // fewer modeled messages than the fine-grained schedule.
  const Index n = 200000;
  auto grid = LocaleGrid::square(16, 24);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 16.0, 5);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, n / 50, 6);
  const auto sr = arithmetic_semiring<std::int64_t>();

  SpmspvOptions opt;
  grid.reset();
  auto y_fine = spmspv_dist(a, x, sr, opt.with_comm(CommMode::kFine));
  const auto m_fine = grid.comm_stats().messages;
  grid.reset();
  auto y_agg = spmspv_dist(a, x, sr, opt.with_comm(CommMode::kAggregated));
  const auto m_agg = grid.comm_stats().messages;

  EXPECT_GE(m_fine, 10 * m_agg);
  auto lf = y_fine.to_local();
  auto la = y_agg.to_local();
  ASSERT_EQ(lf.nnz(), la.nnz());
  for (Index p = 0; p < lf.nnz(); ++p) {
    EXPECT_EQ(lf.index_at(p), la.index_at(p));
    EXPECT_EQ(lf.value_at(p), la.value_at(p));
  }
}

TEST(SpmspvModel, BulkGatherBeatsFineGrained) {
  const Index n = 200000;
  auto grid = LocaleGrid::square(16, 24);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 16.0, 5);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, n / 50, 6);

  grid.reset();
  SpmspvOptions fine;
  spmspv_dist(a, x, arithmetic_semiring<std::int64_t>(), fine);
  const double t_fine = grid.trace().get("gather");

  grid.reset();
  SpmspvOptions bulk;
  bulk.bulk_gather = true;
  spmspv_dist(a, x, arithmetic_semiring<std::int64_t>(), bulk);
  const double t_bulk = grid.trace().get("gather");
  EXPECT_GT(t_fine, 10.0 * t_bulk);
}

}  // namespace
}  // namespace pgb
