// Tests for symmetric vertex relabeling and load-balance metrics.
#include <gtest/gtest.h>

#include "algo/bfs.hpp"
#include "core/permute.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"

namespace pgb {
namespace {

TEST(Relabeling, ProducesAPermutation) {
  auto p = random_relabeling(1000, 5);
  std::vector<bool> seen(1000, false);
  for (Index v : p) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 1000);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
  EXPECT_EQ(random_relabeling(1000, 5), p);  // deterministic
  EXPECT_NE(random_relabeling(1000, 6), p);
}

class PermuteGrids : public ::testing::TestWithParam<int> {};

TEST_P(PermuteGrids, EntriesLandAtRelabeledCoordinates) {
  const Index n = 300;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = erdos_renyi_dist<double>(grid, n, 5.0, 3);
  auto perm = random_relabeling(n, 7);
  auto b = permute_matrix(a, perm);
  EXPECT_TRUE(b.check_invariants());
  EXPECT_EQ(b.nnz(), a.nnz());

  auto la = a.to_local();
  auto lb = b.to_local();
  for (Index r = 0; r < n; ++r) {
    auto cols = la.row_colids(r);
    auto vals = la.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const double* v =
          lb.find(perm[static_cast<std::size_t>(r)],
                  perm[static_cast<std::size_t>(cols[k])]);
      ASSERT_NE(v, nullptr);
      EXPECT_DOUBLE_EQ(*v, vals[k]);
    }
  }
}

TEST_P(PermuteGrids, GraphStructurePreserved) {
  // BFS level sizes are invariant under relabeling (modulo the source).
  RmatParams p;
  p.scale = 9;
  p.edge_factor = 8;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = rmat_dist(grid, p);
  auto perm = random_relabeling(a.nrows(), 11);
  auto b = permute_matrix(a, perm);

  auto ra = bfs(a, /*source=*/0);
  auto rb = bfs(b, /*source=*/perm[0]);
  ASSERT_EQ(rb.level_sizes.size(), ra.level_sizes.size());
  for (std::size_t i = 0; i < ra.level_sizes.size(); ++i) {
    EXPECT_EQ(rb.level_sizes[i], ra.level_sizes[i]) << "level " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, PermuteGrids, ::testing::Values(1, 4, 9));

TEST(LoadBalance, ErdosRenyiIsNearlyBalanced) {
  auto grid = LocaleGrid::square(16, 1);
  auto a = erdos_renyi_dist<double>(grid, 20000, 8.0, 3);
  EXPECT_LT(load_imbalance(a), 1.15);
}

TEST(LoadBalance, RelabelingFixesRmatSkew) {
  RmatParams p;
  p.scale = 13;
  p.edge_factor = 8;
  auto grid = LocaleGrid::square(16, 1);
  auto a = rmat_dist(grid, p);
  const double before = load_imbalance(a);
  auto b = permute_matrix(a, random_relabeling(a.nrows(), 5));
  const double after = load_imbalance(b);
  EXPECT_GT(before, 1.8);          // R-MAT hubs overload the (0,0) block
  EXPECT_LT(after, before * 0.7);  // relabeling spreads them out
  EXPECT_LT(after, 1.5);
}

TEST(LoadBalance, EmptyMatrixIsBalanced) {
  auto grid = LocaleGrid::square(4, 1);
  DistCsr<double> a(grid, 10, 10);
  EXPECT_DOUBLE_EQ(load_imbalance(a), 1.0);
}

TEST(Permute, ValidationErrors) {
  auto grid = LocaleGrid::square(4, 1);
  DistCsr<double> rect(grid, 10, 12);
  std::vector<Index> p10(10);
  EXPECT_THROW(permute_matrix(rect, p10), DimensionMismatch);
  DistCsr<double> sq(grid, 10, 10);
  std::vector<Index> wrong(9);
  EXPECT_THROW(permute_matrix(sq, wrong), InvalidArgument);
}

}  // namespace
}  // namespace pgb
