// Tests for greedy maximal bipartite matching: validity (each side
// matched at most once, only along edges) and maximality (no edge left
// between two unmatched vertices).
#include <gtest/gtest.h>

#include "algo/bipartite_matching.hpp"
#include "gen/erdos_renyi.hpp"

namespace pgb {
namespace {

template <typename T>
void check_matching(const Csr<T>& local, const MatchingResult& res) {
  // Validity: matches are symmetric and along edges.
  Index count = 0;
  for (Index r = 0; r < local.nrows(); ++r) {
    const Index c = res.match_row[static_cast<std::size_t>(r)];
    if (c < 0) continue;
    ++count;
    EXPECT_EQ(res.match_col[static_cast<std::size_t>(c)], r);
    EXPECT_NE(local.find(r, c), nullptr)
        << "match " << r << "-" << c << " is not an edge";
  }
  EXPECT_EQ(count, res.size);
  // Maximality: every edge has a matched endpoint.
  for (Index r = 0; r < local.nrows(); ++r) {
    if (res.match_row[static_cast<std::size_t>(r)] >= 0) continue;
    for (Index c : local.row_colids(r)) {
      EXPECT_GE(res.match_col[static_cast<std::size_t>(c)], 0)
          << "edge " << r << "-" << c << " joins two unmatched vertices";
    }
  }
}

class MatchingGrids : public ::testing::TestWithParam<int> {};

TEST_P(MatchingGrids, ValidAndMaximalOnRandomBipartite) {
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = erdos_renyi_dist<std::int64_t>(grid, 400, 3.0, 17);
  auto res = bipartite_matching(a);
  EXPECT_GT(res.size, 0);
  check_matching(a.to_local(), res);
}

TEST_P(MatchingGrids, CommModesAgreeOnValidity) {
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = erdos_renyi_dist<std::int64_t>(grid, 300, 4.0, 23);
  SpmspvOptions bulk;
  bulk.bulk_gather = true;
  bulk.bulk_scatter = true;
  auto res = bipartite_matching(a, bulk);
  check_matching(a.to_local(), res);
}

INSTANTIATE_TEST_SUITE_P(Grids, MatchingGrids, ::testing::Values(1, 4, 9));

TEST(Matching, PerfectMatchingOnDiagonal) {
  // Row r connects only to column r: the greedy matching is perfect in
  // one round.
  const Index n = 50;
  auto grid = LocaleGrid::square(4, 1);
  Coo<std::int64_t> coo(n, n);
  for (Index r = 0; r < n; ++r) coo.add(r, r, 1);
  auto a = DistCsr<std::int64_t>::from_coo(grid, coo);
  auto res = bipartite_matching(a);
  EXPECT_EQ(res.size, n);
  EXPECT_EQ(res.rounds, 1);
  check_matching(a.to_local(), res);
}

TEST(Matching, NearPerfectOnDiagonalBand) {
  // Row r connects to columns {r, r+1}. A perfect matching exists, but
  // min-id greedy shifts everything down and strands the last row —
  // a maximal (not maximum) matching of size n-1. (Closing that gap is
  // what the augmenting-path phase of the paper's reference [12] does.)
  const Index n = 50;
  auto grid = LocaleGrid::square(4, 1);
  Coo<std::int64_t> coo(n, n);
  for (Index r = 0; r < n; ++r) {
    coo.add(r, r, 1);
    if (r + 1 < n) coo.add(r, r + 1, 1);
  }
  auto a = DistCsr<std::int64_t>::from_coo(grid, coo);
  auto res = bipartite_matching(a);
  EXPECT_EQ(res.size, n - 1);
  check_matching(a.to_local(), res);
}

TEST(Matching, StarContentionMatchesExactlyOne) {
  // All rows propose to the single column 0.
  const Index n = 20;
  auto grid = LocaleGrid::square(2, 1);
  Coo<std::int64_t> coo(n, n);
  for (Index r = 0; r < n; ++r) coo.add(r, 0, 1);
  auto a = DistCsr<std::int64_t>::from_coo(grid, coo);
  auto res = bipartite_matching(a);
  EXPECT_EQ(res.size, 1);
  EXPECT_EQ(res.match_col[0], 0);  // min proposer wins
  check_matching(a.to_local(), res);
}

TEST(Matching, EmptyGraph) {
  auto grid = LocaleGrid::square(2, 1);
  DistCsr<std::int64_t> a(grid, 10, 10);
  auto res = bipartite_matching(a);
  EXPECT_EQ(res.size, 0);
  EXPECT_EQ(res.rounds, 1);
}

}  // namespace
}  // namespace pgb
