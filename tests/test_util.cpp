// Unit tests for src/util: RNG determinism, sorting kernels, prefix sums,
// bit vectors, the CLI parser and the table printer.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "util/bitvector.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/prefix_sum.hpp"
#include "util/rng.hpp"
#include "util/sorting.hpp"
#include "util/table.hpp"

namespace pgb {
namespace {

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroStreamsDifferByShard) {
  Xoshiro256 a(7, 0), b(7, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 r(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 r(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliFrequencyRoughlyMatches) {
  Xoshiro256 r(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.next_bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

class SortingParam : public ::testing::TestWithParam<int> {};

TEST_P(SortingParam, MergeSortMatchesStdSort) {
  const int n = GetParam();
  std::mt19937_64 g(n);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(g() % (3 * n + 1));
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  merge_sort(v);
  EXPECT_EQ(v, ref);
}

TEST_P(SortingParam, RadixSortMatchesStdSort) {
  const int n = GetParam();
  std::mt19937_64 g(n + 1);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(g() % (1ull << 40));
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  radix_sort(v);
  EXPECT_EQ(v, ref);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortingParam,
                         ::testing::Values(0, 1, 2, 3, 7, 8, 100, 1000,
                                           4096, 65537));

TEST(Sorting, MergeSortHandlesAllEqual) {
  std::vector<std::int64_t> v(100, 5);
  merge_sort(v);
  EXPECT_TRUE(is_sorted_ascending(v));
}

TEST(Sorting, RadixSortHandlesZeroMax) {
  std::vector<std::int64_t> v(10, 0);
  radix_sort(v);
  EXPECT_TRUE(is_sorted_ascending(v));
}

TEST(Sorting, IsSortedDetectsDescent) {
  std::vector<std::int64_t> v{1, 2, 2, 3};
  EXPECT_TRUE(is_sorted_ascending(v));
  v.push_back(0);
  EXPECT_FALSE(is_sorted_ascending(v));
}

TEST(Sorting, SortPairsKeepsAlignment) {
  std::vector<std::int64_t> idx{5, 1, 3, 2, 4};
  std::vector<double> val{50, 10, 30, 20, 40};
  sort_pairs_by_index(idx, val);
  EXPECT_EQ(idx, (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(val, (std::vector<double>{10, 20, 30, 40, 50}));
}

TEST(Sorting, SortPairsIsStable) {
  std::vector<std::int64_t> idx{2, 1, 2, 1};
  std::vector<int> val{0, 1, 2, 3};
  sort_pairs_by_index(idx, val);
  EXPECT_EQ(val, (std::vector<int>{1, 3, 0, 2}));
}

TEST(Sorting, SortedUnionMergesWithoutDuplicates) {
  std::vector<std::int64_t> a{1, 3, 5};
  std::vector<std::int64_t> b{2, 3, 6};
  EXPECT_EQ(sorted_union(a, b), (std::vector<std::int64_t>{1, 2, 3, 5, 6}));
}

TEST(Sorting, SortedIntersection) {
  std::vector<std::int64_t> a{1, 3, 5, 7};
  std::vector<std::int64_t> b{3, 4, 7};
  EXPECT_EQ(sorted_intersection(a, b), (std::vector<std::int64_t>{3, 7}));
}

TEST(Sorting, UnionWithEmpty) {
  std::vector<std::int64_t> a{1, 2};
  std::vector<std::int64_t> none;
  EXPECT_EQ(sorted_union(a, none), a);
  EXPECT_EQ(sorted_union(none, a), a);
  EXPECT_TRUE(sorted_intersection(none, a).empty());
}

TEST(PrefixSum, ExclusiveScanBasics) {
  std::vector<std::int64_t> v{1, 2, 3, 4};
  std::vector<std::int64_t> out(4);
  EXPECT_EQ(exclusive_scan(v, out), 10);
  EXPECT_EQ(out, (std::vector<std::int64_t>{0, 1, 3, 6}));
}

TEST(PrefixSum, ExclusiveScanAliasesInput) {
  std::vector<std::int64_t> v{5, 5, 5};
  EXPECT_EQ(exclusive_scan(v, v), 15);
  EXPECT_EQ(v, (std::vector<std::int64_t>{0, 5, 10}));
}

TEST(PrefixSum, InclusiveScanInPlace) {
  std::vector<std::int64_t> v{1, 1, 1, 1};
  EXPECT_EQ(inclusive_scan_inplace(v), 4);
  EXPECT_EQ(v, (std::vector<std::int64_t>{1, 2, 3, 4}));
}

TEST(PrefixSum, EmptyInput) {
  std::vector<std::int64_t> v;
  EXPECT_EQ(inclusive_scan_inplace(v), 0);
}

TEST(BitVector, SetGetClear) {
  BitVector b(200);
  EXPECT_FALSE(b.get(63));
  b.set(63);
  b.set(64);
  b.set(199);
  EXPECT_TRUE(b.get(63));
  EXPECT_TRUE(b.get(64));
  EXPECT_TRUE(b.get(199));
  EXPECT_EQ(b.popcount(), 3);
  b.clear(64);
  EXPECT_FALSE(b.get(64));
  EXPECT_EQ(b.popcount(), 2);
}

TEST(BitVector, TestAndSetReportsFirstTouch) {
  BitVector b(10);
  EXPECT_TRUE(b.test_and_set(3));
  EXPECT_FALSE(b.test_and_set(3));
}

TEST(BitVector, ResetAllClearsEverything) {
  BitVector b(130);
  for (std::int64_t i = 0; i < 130; i += 7) b.set(i);
  b.reset_all();
  EXPECT_EQ(b.popcount(), 0);
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--n=100", "--d", "16", "--flag"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 100);
  EXPECT_EQ(cli.get_int("d", 0), 16);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_double("f", 0.25), 0.25);
  cli.finish();
}

TEST(Cli, UnknownFlagThrows) {
  const char* argv[] = {"prog", "--typo=1"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_THROW(cli.finish(), InvalidArgument);
}

TEST(Cli, BadIntThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_THROW(cli.get_int("n", 0), InvalidArgument);
}

TEST(Table, TimeFormatting) {
  EXPECT_EQ(Table::time(2.0), "2.000 s");
  EXPECT_EQ(Table::time(0.002), "2.000 ms");
  EXPECT_EQ(Table::time(2e-6), "2.000 us");
  EXPECT_EQ(Table::time(2e-9), "2.0 ns");
}

TEST(Table, RowWidthValidation) {
  Table t({"a", "b"});
  t.row({"1", "2"});
  EXPECT_THROW(t.row({"1"}), InvalidArgument);
}

TEST(ErrorMacros, RequireThrows) {
  EXPECT_THROW(PGB_REQUIRE(false, "nope"), InvalidArgument);
  EXPECT_THROW(PGB_REQUIRE_SHAPE(false, "shape"), DimensionMismatch);
  EXPECT_NO_THROW(PGB_REQUIRE(true, "ok"));
}

}  // namespace
}  // namespace pgb
