// Tests for the GraphBLAS-naming wrappers (vxm/mxv with transpose
// descriptor and masks) and the dense BLAS-1 helpers.
#include <gtest/gtest.h>

#include "core/dense_ops.hpp"
#include "core/mask.hpp"
#include "core/ops.hpp"
#include "core/vxm.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"

namespace pgb {
namespace {

class VxmGrids : public ::testing::TestWithParam<int> {};

TEST_P(VxmGrids, VxmEqualsSpmspv) {
  const Index n = 300;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 5.0, 3);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, 40, 4);
  const auto sr = arithmetic_semiring<std::int64_t>();
  auto y1 = vxm(x, a, sr);
  auto y2 = spmspv_dist(a, x, sr);
  EXPECT_TRUE(y1.to_local() == y2.to_local());
}

TEST_P(VxmGrids, MxvEqualsVxmOverTranspose) {
  const Index n = 250;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 5.0, 7);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, 30, 8);
  const auto sr = arithmetic_semiring<std::int64_t>();

  auto got = mxv(a, x, sr);
  // Reference: y[r] = sum over c of A[r,c] * x[c].
  auto la = a.to_local();
  auto lx = x.to_local();
  std::vector<std::int64_t> ref(static_cast<std::size_t>(n), 0);
  for (Index r = 0; r < n; ++r) {
    auto cols = la.row_colids(r);
    auto vals = la.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const std::int64_t* xv = lx.find(cols[k]);
      if (xv) ref[static_cast<std::size_t>(r)] += *xv * vals[k];
    }
  }
  auto lg = got.to_local();
  for (Index r = 0; r < n; ++r) {
    const std::int64_t* v = lg.find(r);
    EXPECT_EQ(v ? *v : 0, ref[static_cast<std::size_t>(r)]) << r;
  }
}

TEST_P(VxmGrids, MaskedVxmMatchesSeparatePass) {
  const Index n = 300;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 5.0, 9);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, 50, 10);
  DistDenseVec<std::uint8_t> mask(grid, n, 0);
  for (Index i = 0; i < n; i += 2) mask.at(i) = 1;
  const auto sr = arithmetic_semiring<std::int64_t>();
  auto fused = vxm(x, a, mask, MaskMode::kMask, sr);
  auto separate = apply_mask(vxm(x, a, sr), mask, MaskMode::kMask);
  EXPECT_TRUE(fused.to_local() == separate.to_local());
}

INSTANTIATE_TEST_SUITE_P(Grids, VxmGrids, ::testing::Values(1, 4, 9));

TEST(DenseOps, TransformAppliesEverywhere) {
  auto grid = LocaleGrid::square(4, 2);
  DistDenseVec<double> y(grid, 101, 2.0);
  transform(y, [](double v) { return v * v + 1; });
  for (Index i = 0; i < 101; ++i) EXPECT_DOUBLE_EQ(y.at(i), 5.0);
}

TEST(DenseOps, Axpy) {
  auto grid = LocaleGrid::square(4, 2);
  DistDenseVec<double> x(grid, 50, 2.0), y(grid, 50, 1.0);
  axpy(3.0, x, y);
  for (Index i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(y.at(i), 7.0);
  DistDenseVec<double> bad(grid, 49);
  EXPECT_THROW(axpy(1.0, bad, y), DimensionMismatch);
}

TEST(DenseOps, DotAndSum) {
  auto grid = LocaleGrid::square(2, 1);
  DistDenseVec<double> x(grid, 10, 0.0), y(grid, 10, 2.0);
  for (Index i = 0; i < 10; ++i) x.at(i) = static_cast<double>(i);
  EXPECT_DOUBLE_EQ(dot(x, y), 2.0 * 45.0);
  EXPECT_DOUBLE_EQ(sum(x), 45.0);
}

TEST(DenseOps, DiffNorm) {
  auto grid = LocaleGrid::square(4, 1);
  DistDenseVec<double> x(grid, 20, 1.0), y(grid, 20, 1.0);
  EXPECT_DOUBLE_EQ(diff_norm1(x, y), 0.0);
  y.at(3) = 4.0;
  y.at(17) = -1.0;
  EXPECT_DOUBLE_EQ(diff_norm1(x, y), 3.0 + 2.0);
}

TEST(DenseOps, ChargesAdvanceClock) {
  auto grid = LocaleGrid::square(4, 4);
  DistDenseVec<double> x(grid, 100000, 1.0);
  grid.reset();
  transform(x, [](double v) { return v + 1; });
  EXPECT_GT(grid.time(), 0.0);
}

}  // namespace
}  // namespace pgb
