// Tests for the remaining GraphBLAS surface: SpMV, transpose, mxm
// (SpGEMM), reduce, extract, and masks.
#include <gtest/gtest.h>

#include "core/extract.hpp"
#include "core/ops.hpp"
#include "core/mask.hpp"
#include "core/mxm.hpp"
#include "core/reduce.hpp"
#include "core/spmv.hpp"
#include "core/transpose.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"

namespace pgb {
namespace {

class SpmvGrids : public ::testing::TestWithParam<int> {};

TEST_P(SpmvGrids, MatchesDenseReference) {
  const Index n = 500;
  auto grid = LocaleGrid::square(GetParam(), 4);
  auto a = erdos_renyi_dist<double>(grid, n, 6.0, 13);
  DistDenseVec<double> x(grid, n);
  for (int l = 0; l < grid.num_locales(); ++l) {
    auto& lv = x.local(l);
    for (Index i = lv.lo(); i < lv.hi(); ++i) {
      lv[i] = static_cast<double>((i % 7) + 1);
    }
  }
  auto y = spmv(a, x, arithmetic_semiring<double>());

  auto local = a.to_local();
  std::vector<double> ref(static_cast<std::size_t>(n), 0.0);
  for (Index r = 0; r < n; ++r) {
    for (std::size_t k = 0; k < local.row_colids(r).size(); ++k) {
      const Index c = local.row_colids(r)[k];
      ref[static_cast<std::size_t>(c)] +=
          static_cast<double>((r % 7) + 1) * local.row_values(r)[k];
    }
  }
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(y.at(i), ref[static_cast<std::size_t>(i)], 1e-9) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, SpmvGrids, ::testing::Values(1, 2, 4, 9));

TEST(Spmv, MixedValueTypes) {
  // int64 adjacency with double vector (the PageRank pattern).
  const Index n = 200;
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 4.0, 3);
  DistDenseVec<double> x(grid, n, 0.5);
  auto y = spmv(a, x, arithmetic_semiring<double>());
  auto local = a.to_local();
  for (Index c = 0; c < n; ++c) {
    // Column sums * 0.5.
    double ref = 0;
    for (Index r = 0; r < n; ++r) {
      if (local.find(r, c)) ref += 0.5;
    }
    EXPECT_NEAR(y.at(c), ref, 1e-9);
  }
}

TEST(Transpose, LocalRoundTrip) {
  auto a = erdos_renyi_csr<double>(300, 5.0, 17);
  auto t = transpose_local(a);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(t.nnz(), a.nnz());
  EXPECT_EQ(t.nrows(), a.ncols());
  auto tt = transpose_local(t);
  ASSERT_EQ(tt.nnz(), a.nnz());
  for (Index r = 0; r < a.nrows(); ++r) {
    auto ar = a.row_colids(r);
    auto br = tt.row_colids(r);
    ASSERT_EQ(ar.size(), br.size());
    for (std::size_t k = 0; k < ar.size(); ++k) EXPECT_EQ(ar[k], br[k]);
  }
}

TEST(Transpose, EntriesSwapped) {
  Coo<int> coo(3, 4);
  coo.add(0, 3, 7);
  coo.add(2, 1, 9);
  auto t = transpose_local(coo.to_csr());
  EXPECT_EQ(*t.find(3, 0), 7);
  EXPECT_EQ(*t.find(1, 2), 9);
  EXPECT_EQ(t.find(0, 3), nullptr);
}

class TransposeGrids : public ::testing::TestWithParam<int> {};

TEST_P(TransposeGrids, DistMatchesLocalTranspose) {
  const Index n = 240;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = erdos_renyi_dist<double>(grid, n, 4.0, 19);
  auto t = transpose_dist(a);
  EXPECT_TRUE(t.check_invariants());
  auto ref = transpose_local(a.to_local());
  auto got = t.to_local();
  ASSERT_EQ(got.nnz(), ref.nnz());
  for (Index r = 0; r < n; ++r) {
    auto gr = got.row_colids(r);
    auto rr = ref.row_colids(r);
    ASSERT_EQ(gr.size(), rr.size());
    for (std::size_t k = 0; k < gr.size(); ++k) EXPECT_EQ(gr[k], rr[k]);
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, TransposeGrids,
                         ::testing::Values(1, 4, 9, 16));

TEST(Mxm, SmallKnownProduct) {
  // A = [[1,2],[0,3]], B = [[4,0],[5,6]] -> C = [[14,12],[15,18]]
  Coo<double> ca(2, 2), cb(2, 2);
  ca.add(0, 0, 1);
  ca.add(0, 1, 2);
  ca.add(1, 1, 3);
  cb.add(0, 0, 4);
  cb.add(1, 0, 5);
  cb.add(1, 1, 6);
  auto grid = LocaleGrid::single(1);
  LocaleCtx ctx(grid, 0);
  auto c = mxm_local(ctx, ca.to_csr(), cb.to_csr(),
                     arithmetic_semiring<double>());
  EXPECT_EQ(*c.find(0, 0), 14);
  EXPECT_EQ(*c.find(0, 1), 12);
  EXPECT_EQ(*c.find(1, 0), 15);
  EXPECT_EQ(*c.find(1, 1), 18);
}

TEST(Mxm, MatchesDenseReferenceOnRandom) {
  const Index n = 60;
  auto a = erdos_renyi_csr<double>(n, 4.0, 23);
  auto b = erdos_renyi_csr<double>(n, 4.0, 29);
  auto grid = LocaleGrid::single(2);
  LocaleCtx ctx(grid, 0);
  auto c = mxm_local(ctx, a, b, arithmetic_semiring<double>());
  EXPECT_TRUE(c.check_invariants());
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      double ref = 0;
      for (Index k = 0; k < n; ++k) {
        const double* av = a.find(i, k);
        const double* bv = b.find(k, j);
        if (av && bv) ref += *av * *bv;
      }
      const double* cv = c.find(i, j);
      EXPECT_NEAR(cv ? *cv : 0.0, ref, 1e-9) << i << "," << j;
    }
  }
}

TEST(Mxm, DimensionMismatchThrows) {
  auto grid = LocaleGrid::single(1);
  LocaleCtx ctx(grid, 0);
  Csr<double> a(3, 4), b(5, 3);
  EXPECT_THROW(mxm_local(ctx, a, b, arithmetic_semiring<double>()),
               DimensionMismatch);
}

TEST(Reduce, SumAndMaxOverDistributedVector) {
  auto grid = LocaleGrid::square(4, 2);
  auto x = DistSparseVec<std::int64_t>::from_sorted(
      grid, 100, {3, 30, 60, 99}, {5, 7, 1, 10});
  EXPECT_EQ(reduce(x, plus_monoid<std::int64_t>()), 23);
  EXPECT_EQ(reduce(x, max_monoid<std::int64_t>()), 10);
  EXPECT_EQ(reduce(x, min_monoid<std::int64_t>()), 1);
}

TEST(Reduce, EmptyVectorGivesIdentity) {
  auto grid = LocaleGrid::square(2, 1);
  DistSparseVec<std::int64_t> x(grid, 10);
  EXPECT_EQ(reduce(x, plus_monoid<std::int64_t>()), 0);
}

TEST(ReduceRows, ComputesOutDegrees) {
  const Index n = 150;
  auto grid = LocaleGrid::square(4, 1);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 5.0, 31);
  auto deg = reduce_rows(a, plus_monoid<std::int64_t>());
  auto local = a.to_local();
  for (Index r = 0; r < n; ++r) {
    EXPECT_EQ(deg.at(r), local.row_nnz(r)) << r;
  }
}

TEST(Extract, RangeKeepsGlobalIndices) {
  auto grid = LocaleGrid::square(4, 1);
  auto x = DistSparseVec<double>::from_sorted(grid, 100, {5, 25, 50, 75},
                                              {1, 2, 3, 4});
  auto z = extract_range(x, 20, 60);
  auto lz = z.to_local();
  ASSERT_EQ(lz.nnz(), 2);
  EXPECT_EQ(lz.index_at(0), 25);
  EXPECT_DOUBLE_EQ(lz.value_at(0), 2.0);
  EXPECT_EQ(lz.index_at(1), 50);
}

TEST(Extract, BadRangeThrows) {
  auto grid = LocaleGrid::single(1);
  DistSparseVec<double> x(grid, 10);
  EXPECT_THROW(extract_range(x, -1, 5), InvalidArgument);
  EXPECT_THROW(extract_range(x, 5, 11), InvalidArgument);
}

TEST(Mask, NormalAndComplement) {
  auto grid = LocaleGrid::square(4, 1);
  auto x = DistSparseVec<double>::from_sorted(grid, 40, {1, 10, 20, 30},
                                              {1, 2, 3, 4});
  DistDenseVec<std::uint8_t> m(grid, 40, 0);
  m.at(10) = 1;
  m.at(30) = 1;

  auto kept = apply_mask(x, m, MaskMode::kMask);
  ASSERT_EQ(kept.nnz(), 2);
  EXPECT_NE(kept.to_local().find(10), nullptr);
  EXPECT_NE(kept.to_local().find(30), nullptr);

  auto comp = apply_mask(x, m, MaskMode::kComplement);
  ASSERT_EQ(comp.nnz(), 2);
  EXPECT_NE(comp.to_local().find(1), nullptr);
  EXPECT_NE(comp.to_local().find(20), nullptr);

  auto none = apply_mask(x, m, MaskMode::kNone);
  EXPECT_EQ(none.nnz(), 4);
}

TEST(Mask, UnionScattersPattern) {
  auto grid = LocaleGrid::square(2, 1);
  auto x = DistSparseVec<double>::from_sorted(grid, 20, {2, 15}, {1, 1});
  DistDenseVec<std::uint8_t> m(grid, 20, 0);
  m.at(3) = 1;
  mask_union(m, x);
  EXPECT_EQ(m.at(2), 1);
  EXPECT_EQ(m.at(15), 1);
  EXPECT_EQ(m.at(3), 1);
  EXPECT_EQ(m.at(4), 0);
}

}  // namespace
}  // namespace pgb
