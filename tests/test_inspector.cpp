// Tests for the inspector–executor comm optimizer: decision pricing
// (including the node-side bulk per-pair region floor and the observed
// hit-rate replication model), replica-cache lifecycle (content
// fingerprint eviction, membership-epoch flush), byte-identity of
// --comm=auto against every manual schedule, the within-5%-of-best and
// strictly-faster-on-mixed-workload performance gates, and bit-identical
// recovery when a locale is killed and degraded-remapped mid-run.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "algo/algo_recovery.hpp"
#include "algo/bfs.hpp"
#include "core/assign_general.hpp"
#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "fault/rebuild.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"
#include "runtime/dist.hpp"
#include "runtime/inspector.hpp"

namespace pgb {
namespace {

// ---- decision pricing -------------------------------------------------

TEST(InspectorDecide, ReplicationTreeDepth) {
  EXPECT_EQ(replication_tree_depth(1.0), 1);
  EXPECT_EQ(replication_tree_depth(2.0), 1);
  EXPECT_EQ(replication_tree_depth(4.0), 2);
  EXPECT_EQ(replication_tree_depth(63.0), 6);
  EXPECT_EQ(replication_tree_depth(64.0), 6);
}

SiteFootprint scatter_footprint(std::int64_t per_elems, std::int64_t pairs) {
  SiteFootprint fp;
  fp.pairs = pairs;
  fp.elements = per_elems * pairs;
  fp.max_initiator_elements = per_elems;
  fp.max_initiator_pairs = pairs;
  fp.bytes_each = 16;
  fp.gather = false;
  fp.read_only = false;
  return fp;
}

TEST(InspectorDecide, BulkPairOverheadFlipsBulkToAgg) {
  // At modest batch sizes the wire favors one bulk per peer; the SpMSpV
  // scatter's per-destination packing region (the task-spawn floor) is
  // what actually makes bulk lose to aggregation there. The inspector
  // must reproduce that flip when the kernel reports the overhead.
  auto grid = LocaleGrid::square(16, 24);
  Inspector& insp = grid.inspector();

  SiteFootprint fp = scatter_footprint(400, 15);
  const SiteDecision without = insp.decide("test.scatter.wire_only", fp);
  EXPECT_EQ(without.strategy, SiteStrategy::kBulk);

  fp.bulk_pair_overhead = grid.region_floor();
  ASSERT_GT(fp.bulk_pair_overhead, 1e-5);  // the floor is real money
  const SiteDecision with = insp.decide("test.scatter.with_floor", fp);
  EXPECT_EQ(with.strategy, SiteStrategy::kAggregated);
  EXPECT_LT(with.predicted, without.predicted + 15.0 * fp.bulk_pair_overhead);
}

TEST(InspectorDecide, AggCapacityIsTunedPowerOfTwo) {
  auto grid = LocaleGrid::square(16, 24);
  SiteFootprint fp = scatter_footprint(20000, 15);
  fp.bulk_pair_overhead = grid.region_floor();
  const SiteDecision d = grid.inspector().decide("test.scatter.cap", fp);
  ASSERT_EQ(d.strategy, SiteStrategy::kAggregated);
  EXPECT_GE(d.agg_capacity, 512);
  EXPECT_LE(d.agg_capacity, 8192);
  EXPECT_EQ(d.agg_capacity & (d.agg_capacity - 1), 0);
}

TEST(InspectorDecide, ScattersNeverReplicate) {
  auto grid = LocaleGrid::square(16, 24);
  SiteFootprint fp = scatter_footprint(64, 15);
  fp.read_only = true;  // read-only alone is not enough: gathers only
  for (int i = 0; i < 12; ++i) {
    const SiteDecision d = grid.inspector().decide("test.scatter.ro", fp);
    EXPECT_NE(d.strategy, SiteStrategy::kReplicate);
  }
}

TEST(InspectorDecide, RepeatStreakUnlocksReplicateThenHitsSustainIt) {
  // A read-only gather whose block is small relative to the pull volume:
  // the first wave prices replication at the full ship cost (no history),
  // so bulk wins; an identical footprint repeating amortizes the ship
  // until replicate takes over.
  auto grid = LocaleGrid::square(4, 2);
  Inspector& insp = grid.inspector();
  SiteFootprint fp;
  fp.pairs = 3;
  fp.elements = 2000;
  fp.max_initiator_elements = 2000;
  fp.max_initiator_pairs = 3;
  fp.bytes_each = 24;
  fp.block_bytes = 9600;  // whole source block: cheap to ship once
  fp.chain_rts = 4.0;     // fine pulls are dependent binary searches
  fp.read_only = true;
  fp.gather = true;

  const SiteDecision first = insp.decide("test.gather.reuse", fp);
  EXPECT_NE(first.strategy, SiteStrategy::kReplicate);

  SiteStrategy last = first.strategy;
  for (int i = 0; i < 10; ++i) last = insp.decide("test.gather.reuse", fp).strategy;
  EXPECT_EQ(last, SiteStrategy::kReplicate);

  // Once the executor reports near-perfect cache reuse, replication stays
  // priced at the miss-fraction floor and keeps winning.
  for (int i = 0; i < 50; ++i) {
    insp.cache_lookup("test.gather.reuse", 1, 0, 42);
    insp.cache_install("test.gather.reuse", 1, 0, 42, fp.block_bytes);
    insp.cache_lookup("test.gather.reuse", 1, 0, 42);
  }
  EXPECT_EQ(insp.decide("test.gather.reuse", fp).strategy,
            SiteStrategy::kReplicate);
}

TEST(InspectorDecide, ContentChurnDriftsAwayFromReplicate) {
  // PageRank-shaped trap: the footprint signature repeats every wave
  // (same sizes) but the source content changes every wave, so every
  // cache probe misses. The observed hit rate must drag the replicate
  // price back to the full ship cost so the site returns to bulk/agg.
  auto grid = LocaleGrid::square(4, 2);
  Inspector& insp = grid.inspector();
  SiteFootprint fp;
  fp.pairs = 3;
  fp.elements = 2000;
  fp.max_initiator_elements = 2000;
  fp.max_initiator_pairs = 3;
  fp.bytes_each = 24;
  fp.block_bytes = 9600;
  fp.chain_rts = 4.0;
  fp.read_only = true;
  fp.gather = true;

  SiteStrategy s = SiteStrategy::kBulk;
  for (int i = 0; i < 10; ++i) s = insp.decide("test.gather.churn", fp).strategy;
  ASSERT_EQ(s, SiteStrategy::kReplicate);

  // Every wave ships a new fingerprint: all misses.
  for (std::uint64_t tag = 1; tag <= 40; ++tag) {
    insp.cache_lookup("test.gather.churn", 1, 0, tag);
    insp.cache_install("test.gather.churn", 1, 0, tag, fp.block_bytes);
  }
  EXPECT_NE(insp.decide("test.gather.churn", fp).strategy,
            SiteStrategy::kReplicate);
}

// ---- replica cache lifecycle ------------------------------------------

std::vector<Index> pull_map(Index zcap, Index n) {
  std::vector<Index> m(static_cast<std::size_t>(zcap));
  for (Index k = 0; k < zcap; ++k) {
    m[static_cast<std::size_t>(k)] = (k * 37 + 11) % n;
  }
  return m;
}

TEST(InspectorCache, RepeatedExtractHitsReplicaCache) {
  const Index n = 4000;
  auto grid = LocaleGrid::square(4, 2);
  auto a = random_dist_sparse_vec<double>(grid, n, 400, 9);
  const auto idx = pull_map(8000, n);

  const auto ref = extract_indexed(a, idx, CommMode::kBulk).to_local();
  auto& mx = grid.metrics();
  for (int i = 0; i < 8; ++i) {
    const auto z = extract_indexed(a, idx, CommMode::kAuto).to_local();
    EXPECT_TRUE(z == ref) << "auto diverged from bulk on pass " << i;
  }
  // The site settled on replication and later passes were served from
  // resident blocks.
  EXPECT_GT(mx.counter("inspector.cache.installs").value, 0);
  EXPECT_GT(mx.counter("inspector.cache.hits").value, 0);
  EXPECT_GT(mx.counter("inspector.replicated_bytes").value, 0);
  EXPECT_GT(grid.inspector().cached_blocks(), 0);
}

TEST(InspectorCache, ContentChangeEvictsAndReships) {
  const Index n = 4000;
  auto grid = LocaleGrid::square(4, 2);
  auto a = random_dist_sparse_vec<double>(grid, n, 400, 9);
  const auto idx = pull_map(8000, n);

  for (int i = 0; i < 8; ++i) extract_indexed(a, idx, CommMode::kAuto);
  const auto installs0 =
      grid.metrics().counter("inspector.cache.installs").value;
  ASSERT_GT(grid.inspector().cached_blocks(), 0);

  // Rewrite every block's values: fingerprints change, resident replicas
  // are stale and must be evicted and re-shipped on the next pull.
  for (int o = 0; o < grid.num_locales(); ++o) {
    auto& lv = a.local(o);
    std::vector<Index> li;
    std::vector<double> lval;
    for (Index p = 0; p < lv.nnz(); ++p) {
      li.push_back(lv.index_at(p));
      lval.push_back(lv.value_at(p) + 1.0);
    }
    lv = SparseVec<double>::from_sorted(lv.capacity(), std::move(li),
                                        std::move(lval));
  }
  const auto ref = extract_indexed(a, idx, CommMode::kBulk).to_local();
  const auto z = extract_indexed(a, idx, CommMode::kAuto).to_local();
  EXPECT_TRUE(z == ref);  // fresh values, never stale replicas
  EXPECT_GT(grid.metrics().counter("inspector.cache.installs").value,
            installs0);
}

TEST(InspectorCache, MembershipRemapFlushesEverything) {
  const Index n = 4000;
  auto grid = LocaleGrid::square(4, 2);
  auto a = random_dist_sparse_vec<double>(grid, n, 400, 9);
  const auto idx = pull_map(8000, n);

  for (int i = 0; i < 8; ++i) extract_indexed(a, idx, CommMode::kAuto);
  ASSERT_GT(grid.inspector().cached_blocks(), 0);
  const auto inval0 =
      grid.metrics().counter("inspector.cache.invalidations").value;

  // The degraded-mode primitive: logical 2 moves onto host 0.
  grid.remap_locale(2, 0);
  const auto ref = extract_indexed(a, idx, CommMode::kBulk).to_local();
  const auto z = extract_indexed(a, idx, CommMode::kAuto).to_local();
  EXPECT_TRUE(z == ref);
  EXPECT_GT(grid.metrics().counter("inspector.cache.invalidations").value,
            inval0);
  grid.restore_membership();
}

TEST(InspectorCache, MidStreamRemapIsBitIdenticalToFaultFree) {
  // The epoch-invalidation end-to-end check: a stream of auto extracts
  // with a degraded remap in the middle must produce exactly the values
  // of the fault-free stream — the flush forces re-ships, never stale
  // reads — and must count the flush.
  const Index n = 4000;
  const auto idx = pull_map(8000, n);
  auto run = [&](bool remap_midway) {
    auto grid = LocaleGrid::square(4, 2);
    auto a = random_dist_sparse_vec<double>(grid, n, 400, 9);
    std::vector<SparseVec<double>> outs;
    std::int64_t flushed = 0;
    for (int i = 0; i < 6; ++i) {
      if (remap_midway && i == 3) {
        const auto before =
            grid.metrics().counter("inspector.cache.invalidations").value;
        grid.remap_locale(1, 3);
        outs.push_back(extract_indexed(a, idx, CommMode::kAuto).to_local());
        flushed =
            grid.metrics().counter("inspector.cache.invalidations").value -
            before;
        continue;
      }
      outs.push_back(extract_indexed(a, idx, CommMode::kAuto).to_local());
    }
    return std::make_pair(outs, flushed);
  };

  const auto [base, f0] = run(false);
  const auto [faulted, f1] = run(true);
  EXPECT_EQ(f0, 0);
  EXPECT_GT(f1, 0);  // the remap flushed live replicas
  ASSERT_EQ(base.size(), faulted.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_TRUE(base[i] == faulted[i]) << "pass " << i;
  }
}

// ---- auto vs manual: byte identity and the performance gates ----------

TEST(InspectorAuto, SpmspvByteIdenticalToEveryManualSchedule) {
  const Index n = 50000;
  auto grid = LocaleGrid::square(16, 24);
  auto a = erdos_renyi_dist<double>(grid, n, 8.0, 5);
  auto x = random_dist_sparse_vec<double>(grid, n, 1000, 6);
  const auto sr = arithmetic_semiring<double>();

  SpmspvOptions opt;
  opt.comm = CommMode::kAuto;
  auto y_auto = spmspv_dist(a, x, sr, opt);
  for (const CommMode mode :
       {CommMode::kFine, CommMode::kBulk, CommMode::kAggregated}) {
    grid.reset();
    opt.comm = mode;
    auto y = spmspv_dist(a, x, sr, opt);
    for (int l = 0; l < grid.num_locales(); ++l) {
      EXPECT_TRUE(y_auto.local(l) == y.local(l))
          << "locale " << l << " vs " << to_string(mode);
    }
  }
}

struct TimedRun {
  double time = 0.0;
  std::int64_t messages = 0;
  SparseVec<double> y;
};

TimedRun timed_spmspv(LocaleGrid& grid, const DistCsr<double>& a,
                      const DistSparseVec<double>& x, CommMode mode) {
  grid.reset();
  SpmspvOptions opt;
  opt.comm = mode;
  TimedRun r;
  r.y = spmspv_dist(a, x, arithmetic_semiring<double>(), opt).to_local();
  r.time = grid.time();
  r.messages = grid.comm_stats().messages;
  return r;
}

TEST(InspectorAuto, WithinFivePercentOfBestAndBeatsEveryFixedOnMixed) {
  // The calibration workload: at 64 locales the gather phase is won by
  // bulk and the scatter phase by aggregation, so every fixed schedule
  // leaves time on the table and auto's mixed binding must strictly win.
  const Index n = 100000;
  auto grid = LocaleGrid::square(64, 24);
  auto a = erdos_renyi_dist<double>(grid, n, 16.0, 5);
  auto x = random_dist_sparse_vec<double>(grid, n, 2000, 6);

  const TimedRun fine = timed_spmspv(grid, a, x, CommMode::kFine);
  const TimedRun bulk = timed_spmspv(grid, a, x, CommMode::kBulk);
  const TimedRun agg = timed_spmspv(grid, a, x, CommMode::kAggregated);
  const TimedRun autorun = timed_spmspv(grid, a, x, CommMode::kAuto);

  EXPECT_TRUE(autorun.y == fine.y);
  EXPECT_TRUE(autorun.y == bulk.y);
  EXPECT_TRUE(autorun.y == agg.y);

  const double best = std::min({fine.time, bulk.time, agg.time});
  EXPECT_LE(autorun.time, 1.05 * best);
  // Mixed workload: strictly faster than every fixed schedule.
  EXPECT_LT(autorun.time, fine.time);
  EXPECT_LT(autorun.time, bulk.time);
  EXPECT_LT(autorun.time, agg.time);
}

TEST(InspectorAuto, SameSeedRunsAreIndistinguishable) {
  const Index n = 50000;
  auto run = [&] {
    auto grid = LocaleGrid::square(16, 24);
    auto a = erdos_renyi_dist<double>(grid, n, 8.0, 5);
    auto x = random_dist_sparse_vec<double>(grid, n, 1000, 6);
    return timed_spmspv(grid, a, x, CommMode::kAuto);
  };
  const TimedRun r1 = run();
  const TimedRun r2 = run();
  EXPECT_TRUE(r1.y == r2.y);
  EXPECT_DOUBLE_EQ(r1.time, r2.time);
  EXPECT_EQ(r1.messages, r2.messages);
}

TEST(InspectorAuto, PublishesPerSiteDecisionCounters) {
  const Index n = 50000;
  auto grid = LocaleGrid::square(16, 24);
  auto a = erdos_renyi_dist<double>(grid, n, 8.0, 5);
  auto x = random_dist_sparse_vec<double>(grid, n, 1000, 6);
  SpmspvOptions opt;
  opt.comm = CommMode::kAuto;
  spmspv_dist(a, x, arithmetic_semiring<double>(), opt);

  EXPECT_GE(grid.inspector().num_sites(), 2);  // gather + scatter
  const auto reports = grid.inspector().report();
  bool saw_gather = false, saw_scatter = false;
  for (const auto& r : reports) {
    if (r.site == "spmspv.gather") saw_gather = true;
    if (r.site == "spmspv.scatter") saw_scatter = true;
    EXPECT_GT(r.calls, 0);
  }
  EXPECT_TRUE(saw_gather);
  EXPECT_TRUE(saw_scatter);
  EXPECT_EQ(grid.metrics().counter("inspector.sites").value,
            grid.inspector().num_sites());
  // The per-site strategy counters feed pgb --profile so pgb_diff can
  // flag a silent strategy flip between runs.
  std::int64_t site_decisions = 0;
  for (const auto& r : reports) {
    for (int s = 0; s < 4; ++s) {
      site_decisions += r.decisions[s];
      const auto* c = grid.metrics().find_counter(
          "inspector.site.decisions",
          {{"site", r.site},
           {"strategy", to_string(static_cast<SiteStrategy>(s))}});
      if (r.decisions[s] > 0) {
        ASSERT_NE(c, nullptr) << r.site;
        EXPECT_EQ(c->value, r.decisions[s]);
      }
    }
  }
  EXPECT_GT(site_decisions, 0);
}

// ---- kill + degraded rebuild under --comm=auto (satellite) ------------

TEST(InspectorRecovery, KillDegradedRemapBitIdenticalUnderAuto) {
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<double>(grid, 600, 8.0, 11);
  SpmspvOptions opt;
  opt.comm = CommMode::kAuto;

  grid.reset();
  const BfsResult base = bfs(a, 0, opt);
  const double total = grid.time();
  ASSERT_GT(total, 0.0);
  const std::string faults = "kill:locale=1,at=" + std::to_string(total * 0.4);

  auto chaos = [&] {
    grid.reset();
    FaultPlan plan(FaultSpec::parse(faults), 21);
    RebuildOptions bopt;  // degraded by default
    RecoveryReport report;
    auto res = bfs_with_rebuild(a, 0, opt, &plan, bopt, &report);
    return std::make_tuple(res, grid.time(), report.rebuilds);
  };
  const auto [r1, t1, n1] = chaos();
  const auto [r2, t2, n2] = chaos();
  EXPECT_EQ(r1.parent, base.parent);
  EXPECT_EQ(r1.level_sizes, base.level_sizes);
  EXPECT_EQ(r1.parent, r2.parent);
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_GE(n1, 1);
  EXPECT_EQ(n1, n2);
  EXPECT_FALSE(grid.membership().remapped());
}

}  // namespace
}  // namespace pgb
