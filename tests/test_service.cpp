// Tests for the graph-as-a-service front end: epoch-versioned handles,
// bounded fair admission, batch formation, fused multi-source waves
// (byte-identical to solo runs, strictly cheaper than sequential),
// kill-mid-batch recovery, and same-seed served-trace determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "algo/algo_recovery.hpp"
#include "algo/bfs.hpp"
#include "algo/sssp.hpp"
#include "gen/erdos_renyi.hpp"
#include "service/service.hpp"

namespace pgb {
namespace {

std::shared_ptr<const DistCsr<double>> make_graph(LocaleGrid& grid, Index n,
                                                  double d,
                                                  std::uint64_t seed) {
  return std::make_shared<DistCsr<double>>(
      erdos_renyi_dist<double>(grid, n, d, seed));
}

PendingQuery make_query(int tenant, QueryKind kind = QueryKind::kBfs,
                        Index source = 0) {
  PendingQuery q;
  q.spec.tenant = tenant;
  q.spec.kind = kind;
  q.spec.source = source;
  return q;
}

// ---------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------

TEST(GraphStoreTest, EpochStartsAtOneAndPublishBumps) {
  auto grid = LocaleGrid::square(4, 2);
  GraphStore store;
  const auto h = store.load(make_graph(grid, 200, 4.0, 1));
  EXPECT_EQ(store.epoch(h), 1u);
  EXPECT_EQ(store.publish(h, make_graph(grid, 200, 4.0, 2)), 2u);
  EXPECT_EQ(store.epoch(h), 2u);
  EXPECT_EQ(store.publish(h, make_graph(grid, 200, 4.0, 3)), 3u);
}

TEST(GraphStoreTest, SnapshotPinsVersionAcrossPublishAndClose) {
  auto grid = LocaleGrid::square(4, 2);
  GraphStore store;
  auto g1 = make_graph(grid, 200, 4.0, 1);
  const auto h = store.load(g1);
  const GraphSnapshot snap = store.snapshot(h);
  EXPECT_EQ(snap.epoch, 1u);
  EXPECT_EQ(snap.graph.get(), g1.get());

  store.publish(h, make_graph(grid, 200, 4.0, 2));
  const GraphSnapshot snap2 = store.snapshot(h);
  EXPECT_EQ(snap2.epoch, 2u);
  EXPECT_NE(snap2.graph.get(), snap.graph.get());
  // The old snapshot still pins the old version.
  EXPECT_EQ(snap.graph.get(), g1.get());
  EXPECT_EQ(snap.epoch, 1u);

  store.close(h);
  EXPECT_FALSE(store.is_open(h));
  // Pinned snapshots outlive the close.
  EXPECT_EQ(snap2.graph->nrows(), 200);
  EXPECT_THROW(store.snapshot(h), InvalidHandleError);
  EXPECT_THROW(store.epoch(h), InvalidHandleError);
}

TEST(GraphStoreTest, RapidPublishesRetireVersionsSafely) {
  auto grid = LocaleGrid::square(4, 2);
  GraphStore store;
  const auto h = store.load(make_graph(grid, 200, 4.0, 1));

  // In-flight readers pin a snapshot at each epoch while publishes race
  // ahead: three bumps with every prior version still held live.
  std::vector<GraphSnapshot> inflight;
  inflight.push_back(store.snapshot(h));
  for (std::uint64_t s = 2; s <= 4; ++s) {
    store.publish(h, make_graph(grid, 200, 4.0, s));
    inflight.push_back(store.snapshot(h));
  }
  EXPECT_EQ(store.retired_live(), 3);
  for (std::size_t i = 0; i < inflight.size(); ++i) {
    // Each pinned version is intact and distinct — no use-after-free of
    // a retired epoch, no aliasing between epochs.
    EXPECT_EQ(inflight[i].epoch, i + 1);
    EXPECT_EQ(inflight[i].graph->nrows(), 200);
    for (std::size_t j = i + 1; j < inflight.size(); ++j) {
      EXPECT_NE(inflight[i].graph.get(), inflight[j].graph.get());
    }
  }
  // Releasing the readers lets the retired registry drain.
  inflight.clear();
  EXPECT_EQ(store.prune_retired(), 3);
  EXPECT_EQ(store.retired_live(), 0);
}

TEST(GraphStoreTest, CloseWithLiveSnapshotsDefersTeardown) {
  auto grid = LocaleGrid::square(4, 2);
  GraphStore store;
  const auto h = store.load(make_graph(grid, 200, 4.0, 1));
  store.publish(h, make_graph(grid, 200, 4.0, 2));
  GraphSnapshot held = store.snapshot(h);
  store.close(h);
  // The final version is retired, not destroyed: the live snapshot
  // keeps it readable after close.
  EXPECT_GE(store.retired_live(), 1);
  EXPECT_EQ(held.graph->nrows(), 200);
  EXPECT_EQ(held.epoch, 2u);
  held.graph.reset();
  store.prune_retired();
  EXPECT_EQ(store.retired_live(), 0);
}

TEST(GraphStoreTest, UnknownHandleThrows) {
  GraphStore store;
  EXPECT_THROW(store.snapshot(0), InvalidHandleError);
  EXPECT_THROW(store.snapshot(-1), InvalidHandleError);
  EXPECT_THROW(store.publish(7, nullptr), InvalidHandleError);
  EXPECT_FALSE(store.is_open(3));
}

// ---------------------------------------------------------------------
// Admission queue
// ---------------------------------------------------------------------

TEST(AdmissionQueueTest, BoundedDepthRejectsTyped) {
  AdmissionQueue q(3);
  EXPECT_EQ(q.offer(make_query(0)), AdmitCode::kAdmitted);
  EXPECT_EQ(q.offer(make_query(1)), AdmitCode::kAdmitted);
  EXPECT_EQ(q.offer(make_query(0)), AdmitCode::kAdmitted);
  EXPECT_EQ(q.offer(make_query(2)), AdmitCode::kQueueFull);
  EXPECT_EQ(q.size(), 3u);
  q.pop_fair();
  EXPECT_EQ(q.offer(make_query(2)), AdmitCode::kAdmitted);
}

TEST(AdmissionQueueTest, FairDequeueRoundRobinsTenants) {
  AdmissionQueue q(16);
  // Tenant 0 floods; tenants 1 and 2 each queue one.
  for (int i = 0; i < 4; ++i) {
    auto p = make_query(0);
    p.spec.source = i;  // tag FIFO order within the lane
    ASSERT_EQ(q.offer(std::move(p)), AdmitCode::kAdmitted);
  }
  ASSERT_EQ(q.offer(make_query(1, QueryKind::kBfs, 100)),
            AdmitCode::kAdmitted);
  ASSERT_EQ(q.offer(make_query(2, QueryKind::kBfs, 200)),
            AdmitCode::kAdmitted);

  std::vector<int> tenant_order;
  std::vector<Index> t0_sources;
  while (!q.empty()) {
    PendingQuery p = q.pop_fair();
    tenant_order.push_back(p.spec.tenant);
    if (p.spec.tenant == 0) t0_sources.push_back(p.spec.source);
  }
  // Round-robin: the flood delays only tenant 0's own lane.
  EXPECT_EQ(tenant_order, (std::vector<int>{0, 1, 2, 0, 0, 0}));
  // Per-tenant FIFO preserved.
  EXPECT_EQ(t0_sources, (std::vector<Index>{0, 1, 2, 3}));
}

TEST(AdmissionQueueTest, QueueDepthGaugeTracksSize) {
  obs::MetricsRegistry mx;
  AdmissionQueue q(4, &mx);
  EXPECT_EQ(mx.gauge("service.queue.depth").value, 0.0);
  q.offer(make_query(0));
  q.offer(make_query(1));
  EXPECT_EQ(mx.gauge("service.queue.depth").value, 2.0);
  q.pop_fair();
  EXPECT_EQ(mx.gauge("service.queue.depth").value, 1.0);
}

// ---------------------------------------------------------------------
// Batch formation
// ---------------------------------------------------------------------

TEST(BatcherTest, FusesCompatibleHeadsAcrossTenants) {
  auto grid = LocaleGrid::square(4, 2);
  auto g = make_graph(grid, 200, 4.0, 1);
  GraphSnapshot snap{g, 1};
  AdmissionQueue q(16);
  for (int t = 0; t < 3; ++t) {
    for (int i = 0; i < 2; ++i) {
      auto p = make_query(t, QueryKind::kBfs, t * 10 + i);
      p.snap = snap;
      ASSERT_EQ(q.offer(std::move(p)), AdmitCode::kAdmitted);
    }
  }
  auto batch = form_batch(q, 16);
  EXPECT_EQ(batch.size(), 6u);
  // Seed is tenant 0's head, then round-robin across lanes.
  EXPECT_EQ(batch[0].spec.tenant, 0);
  EXPECT_EQ(batch[1].spec.tenant, 1);
  EXPECT_EQ(batch[2].spec.tenant, 2);
  EXPECT_TRUE(q.empty());
}

TEST(BatcherTest, RespectsBatchMaxAndKindBoundary) {
  auto grid = LocaleGrid::square(4, 2);
  auto g = make_graph(grid, 200, 4.0, 1);
  GraphSnapshot snap{g, 1};
  AdmissionQueue q(16);
  // Tenant 0: bfs, then sssp behind it (only heads may be taken).
  auto p0 = make_query(0, QueryKind::kBfs, 1);
  p0.snap = snap;
  q.offer(std::move(p0));
  auto p1 = make_query(0, QueryKind::kSssp, 2);
  p1.snap = snap;
  q.offer(std::move(p1));
  auto p2 = make_query(1, QueryKind::kBfs, 3);
  p2.snap = snap;
  q.offer(std::move(p2));

  auto batch = form_batch(q, 16);
  ASSERT_EQ(batch.size(), 2u);  // the two BFS heads; the sssp stays
  EXPECT_EQ(batch[0].spec.kind, QueryKind::kBfs);
  EXPECT_EQ(batch[1].spec.kind, QueryKind::kBfs);
  EXPECT_EQ(q.size(), 1u);

  auto rest = form_batch(q, 16);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].spec.kind, QueryKind::kSssp);
}

TEST(BatcherTest, EpochMismatchDoesNotFuse) {
  auto grid = LocaleGrid::square(4, 2);
  auto g = make_graph(grid, 200, 4.0, 1);
  AdmissionQueue q(16);
  auto p0 = make_query(0, QueryKind::kBfs, 1);
  p0.snap = GraphSnapshot{g, 1};
  q.offer(std::move(p0));
  auto p1 = make_query(1, QueryKind::kBfs, 2);
  p1.snap = GraphSnapshot{g, 2};  // same graph object, later epoch
  q.offer(std::move(p1));
  auto batch = form_batch(q, 16);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(BatcherTest, SubgraphKindsRunSolo) {
  auto grid = LocaleGrid::square(4, 2);
  auto g = make_graph(grid, 200, 4.0, 1);
  GraphSnapshot snap{g, 1};
  AdmissionQueue q(16);
  for (int i = 0; i < 3; ++i) {
    auto p = make_query(0, QueryKind::kEgoNet, i);
    p.snap = snap;
    q.offer(std::move(p));
  }
  auto batch = form_batch(q, 16);
  EXPECT_EQ(batch.size(), 1u);
}

// ---------------------------------------------------------------------
// Fused waves: byte identity + strictly cheaper
// ---------------------------------------------------------------------

TEST(BatchFusionTest, BfsBatchByteIdenticalToSoloAcrossCommModes) {
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<double>(grid, 1500, 6.0, 5);
  const std::vector<Index> sources = {0, 17, 400, 1499};
  for (const CommMode mode : {CommMode::kFine, CommMode::kBulk,
                              CommMode::kAggregated, CommMode::kAuto}) {
    SpmspvOptions opt;
    opt.comm = mode;
    std::vector<BfsResult> solo;
    for (const Index s : sources) {
      grid.reset();
      solo.push_back(bfs(a, s, opt));
    }
    grid.reset();
    const std::vector<BfsResult> batch = bfs_batch(a, sources, opt);
    ASSERT_EQ(batch.size(), sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(batch[i].parent, solo[i].parent)
          << "mode=" << static_cast<int>(mode) << " lane " << i;
      EXPECT_EQ(batch[i].level_sizes, solo[i].level_sizes);
    }
  }
}

TEST(BatchFusionTest, SsspBatchByteIdenticalToSolo) {
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<double>(grid, 1200, 6.0, 9);
  const std::vector<Index> sources = {3, 250, 1100};
  for (const CommMode mode :
       {CommMode::kFine, CommMode::kAggregated, CommMode::kAuto}) {
    SpmspvOptions opt;
    opt.comm = mode;
    std::vector<SsspResult> solo;
    for (const Index s : sources) {
      grid.reset();
      solo.push_back(sssp(a, s, opt));
    }
    grid.reset();
    const std::vector<SsspResult> batch = sssp_batch(a, sources, opt);
    ASSERT_EQ(batch.size(), sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(batch[i].dist, solo[i].dist)
          << "mode=" << static_cast<int>(mode) << " lane " << i;
    }
  }
}

TEST(BatchFusionTest, FusedBatchCheaperThanSequentialSolo) {
  auto grid = LocaleGrid::square(16, 4);
  auto a = erdos_renyi_dist<double>(grid, 20000, 8.0, 3);
  std::vector<Index> sources;
  for (int i = 0; i < 8; ++i) sources.push_back(static_cast<Index>(i * 2311));
  SpmspvOptions opt;
  opt.comm = CommMode::kAggregated;

  grid.reset();
  for (const Index s : sources) bfs(a, s, opt);
  const double seq_time = grid.time();
  const std::int64_t seq_msgs = grid.comm_stats().messages;

  grid.reset();
  bfs_batch(a, sources, opt);
  const double batch_time = grid.time();
  const std::int64_t batch_msgs = grid.comm_stats().messages;

  EXPECT_LT(batch_time, seq_time);
  EXPECT_LT(batch_msgs, seq_msgs);
}

// ---------------------------------------------------------------------
// Kill mid-batch: the degraded path replays the wave bit-identical
// ---------------------------------------------------------------------

TEST(BatchRecoveryTest, KillMidBatchRecoversBitIdentical) {
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<double>(grid, 800, 8.0, 11);
  const std::vector<Index> sources = {0, 99, 500};
  SpmspvOptions opt;
  opt.comm = CommMode::kAggregated;

  grid.reset();
  const std::vector<BfsResult> base = bfs_batch(a, sources, opt);
  const double total = grid.time();
  ASSERT_GT(total, 0.0);

  grid.reset();
  FaultPlan plan(
      FaultSpec::parse("kill:locale=1,at=" + std::to_string(total * 0.4)),
      21);
  RebuildOptions bopt;  // degraded by default
  RecoveryReport report;
  const std::vector<BfsResult> rec =
      bfs_batch_with_rebuild(a, sources, opt, &plan, bopt, &report);
  EXPECT_GE(report.rebuilds, 1);
  ASSERT_EQ(rec.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(rec[i].parent, base[i].parent) << "lane " << i;
    EXPECT_EQ(rec[i].level_sizes, base[i].level_sizes);
  }
}

// ---------------------------------------------------------------------
// Service facade
// ---------------------------------------------------------------------

TEST(GraphServiceTest, SubmitValidatesAndServes) {
  auto grid = LocaleGrid::square(4, 2);
  ServiceConfig cfg;
  cfg.queue_depth = 8;
  cfg.batch_max = 4;
  GraphService svc(grid, cfg);
  const auto h = svc.store().load(make_graph(grid, 500, 6.0, 1));

  QuerySpec spec;
  spec.kind = QueryKind::kBfs;
  spec.source = 3;
  spec.tenant = 0;
  const auto s = svc.submit(h, spec, 0.0);
  EXPECT_EQ(s.code, AdmitCode::kAdmitted);
  ASSERT_GE(s.id, 0);

  QuerySpec bad = spec;
  bad.source = 5000;  // out of range
  EXPECT_EQ(svc.submit(h, bad, 0.0).code, AdmitCode::kBadQuery);
  EXPECT_THROW(svc.submit(99, spec, 0.0), InvalidHandleError);

  svc.drain();
  const QueryRecord& rec = svc.record(s.id);
  EXPECT_TRUE(rec.done);
  EXPECT_EQ(rec.result.kind, QueryKind::kBfs);
  EXPECT_EQ(rec.result.bfs.parent[3], 3);
  EXPECT_GE(rec.completion, rec.arrival);
}

TEST(GraphServiceTest, StaleEpochAndOverloadAreTyped) {
  auto grid = LocaleGrid::square(4, 2);
  ServiceConfig cfg;
  cfg.queue_depth = 2;
  GraphService svc(grid, cfg);
  const auto h = svc.store().load(make_graph(grid, 300, 4.0, 1));

  QuerySpec spec;
  spec.tenant = 1;
  // Pin epoch 1, publish epoch 2, then the pin is stale.
  svc.store().publish(h, make_graph(grid, 300, 4.0, 2));
  EXPECT_EQ(svc.submit(h, spec, 0.0, 1).code, AdmitCode::kStaleHandle);
  EXPECT_THROW(svc.submit_strict(h, spec, 0.0, 1), InvalidHandleError);
  EXPECT_EQ(svc.submit(h, spec, 0.0, 2).code, AdmitCode::kAdmitted);

  // Fill the depth-2 queue; the third offer is shed.
  EXPECT_EQ(svc.submit(h, spec, 0.0).code, AdmitCode::kAdmitted);
  EXPECT_EQ(svc.submit(h, spec, 0.0).code, AdmitCode::kQueueFull);
  EXPECT_THROW(svc.submit_strict(h, spec, 0.0), ServiceOverloaded);
  EXPECT_EQ(
      grid.metrics()
          .counter("service.rejected",
                   {{"tenant", "1"}, {"reason", "queue_full"}})
          .value,
      2);
}

TEST(GraphServiceTest, BatchesFuseAndResultsMatchSolo) {
  const std::vector<Index> sources = {1, 77, 300, 640};
  SpmspvOptions opt;
  opt.comm = CommMode::kAggregated;

  // Solo reference on a fresh grid.
  auto refgrid = LocaleGrid::square(4, 2);
  auto refg = erdos_renyi_dist<double>(refgrid, 900, 6.0, 4);
  std::vector<BfsResult> solo;
  for (const Index s : sources) {
    refgrid.reset();
    solo.push_back(bfs(refg, s, opt));
  }

  auto grid = LocaleGrid::square(4, 2);
  ServiceConfig cfg;
  cfg.batch_max = 8;
  cfg.spmspv = opt;
  GraphService svc(grid, cfg);
  const auto h = svc.store().load(make_graph(grid, 900, 6.0, 4));
  std::vector<std::int64_t> ids;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    QuerySpec spec;
    spec.kind = QueryKind::kBfs;
    spec.source = sources[i];
    spec.tenant = static_cast<int>(i % 2);
    ids.push_back(svc.submit(h, spec, 0.0).id);
  }
  svc.drain();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const QueryRecord& rec = svc.record(ids[i]);
    ASSERT_TRUE(rec.done);
    EXPECT_EQ(rec.batch_width, 4) << "query " << i;
    EXPECT_EQ(rec.result.bfs.parent, solo[i].parent) << "query " << i;
  }
  EXPECT_EQ(grid.metrics().counter("service.batches").value, 1);
  EXPECT_EQ(grid.metrics().counter("service.batched_queries").value, 4);
}

TEST(GraphServiceTest, ServedTraceDeterministicAcrossRuns) {
  auto run_once = [](std::vector<double>* completions,
                     std::vector<int>* widths, double* final_time) {
    auto grid = LocaleGrid::square(4, 2);
    ServiceConfig cfg;
    cfg.batch_max = 4;
    cfg.spmspv.comm = CommMode::kAuto;
    GraphService svc(grid, cfg);
    const auto h = svc.store().load(make_graph(grid, 700, 6.0, 8));
    const QueryKind kinds[] = {QueryKind::kBfs, QueryKind::kBfs,
                               QueryKind::kSssp, QueryKind::kEgoNet,
                               QueryKind::kBfs};
    for (int i = 0; i < 5; ++i) {
      QuerySpec spec;
      spec.kind = kinds[i];
      spec.source = static_cast<Index>(i * 131);
      spec.tenant = i % 3;
      svc.submit(h, spec, 1e-5 * i);
    }
    svc.drain();
    for (const auto& rec : svc.records()) {
      completions->push_back(rec.completion);
      widths->push_back(rec.batch_width);
    }
    *final_time = grid.time();
  };
  std::vector<double> c1, c2;
  std::vector<int> w1, w2;
  double t1 = 0.0, t2 = 0.0;
  run_once(&c1, &w1, &t1);
  run_once(&c2, &w2, &t2);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(t1, t2);
}

TEST(GraphServiceTest, PagerankSubgraphAndEgoNetServe) {
  auto grid = LocaleGrid::square(4, 2);
  ServiceConfig cfg;
  GraphService svc(grid, cfg);
  const auto h = svc.store().load(make_graph(grid, 400, 6.0, 2));

  QuerySpec ego;
  ego.kind = QueryKind::kEgoNet;
  ego.source = 10;
  ego.depth = 2;
  const auto e = svc.submit(h, ego, 0.0);

  QuerySpec pr;
  pr.kind = QueryKind::kPagerankSubgraph;
  pr.source = 10;
  pr.depth = 2;
  const auto p = svc.submit(h, pr, 0.0);
  svc.drain();

  const auto& erec = svc.record(e.id);
  ASSERT_TRUE(erec.done);
  ASSERT_FALSE(erec.result.ego.empty());
  // The source belongs to its own ego net.
  EXPECT_TRUE(std::find(erec.result.ego.begin(), erec.result.ego.end(),
                        Index{10}) != erec.result.ego.end());

  const auto& prec = svc.record(p.id);
  ASSERT_TRUE(prec.done);
  EXPECT_EQ(prec.result.ego, erec.result.ego);
  ASSERT_EQ(prec.result.rank.size(), prec.result.ego.size());
  double sum = 0.0;
  for (const double r : prec.result.rank) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

// ---------------------------------------------------------------------
// Resilience: deadlines, backpressure, quotas, breakers, compaction
// ---------------------------------------------------------------------

namespace {
void advance_all(LocaleGrid& grid, double t) {
  for (int l = 0; l < grid.num_locales(); ++l) grid.clock(l).advance_to(t);
}
}  // namespace

TEST(ResilienceTest, DeadlineExpiresWhileQueuedNeverServes) {
  auto grid = LocaleGrid::square(4, 2);
  ServiceConfig cfg;
  GraphService svc(grid, cfg);
  const auto h = svc.store().load(make_graph(grid, 300, 4.0, 1));

  QuerySpec spec;
  spec.source = 2;
  spec.tenant = 3;
  spec.deadline_s = 0.01;
  const auto s = svc.submit(h, spec, 0.0);
  ASSERT_EQ(s.code, AdmitCode::kAdmitted);

  // The deadline passes while the query sits queued: the next round
  // evicts it (stage=queue) instead of serving late.
  advance_all(grid, 0.02);
  EXPECT_TRUE(svc.step());  // a round that only expires still returns true
  const QueryRecord& rec = svc.record(s.id);
  EXPECT_EQ(rec.state, QueryState::kDeadlineExpired);
  EXPECT_FALSE(rec.done);
  EXPECT_GE(rec.completion, 0.02);
  EXPECT_EQ(grid.metrics()
                .counter("service.expired",
                         {{"tenant", "3"}, {"stage", "queue"}})
                .value,
            1);
  EXPECT_FALSE(svc.step());  // queue drained, nothing left
}

TEST(ResilienceTest, AdmissionGateRefusesUnserviceableDeadline) {
  auto grid = LocaleGrid::square(4, 2);
  ServiceConfig cfg;
  GraphService svc(grid, cfg);
  const auto h = svc.store().load(make_graph(grid, 600, 6.0, 3));

  // Calibrate the cost model with one real BFS batch.
  QuerySpec warm;
  warm.source = 0;
  svc.submit(h, warm, 0.0);
  svc.drain();
  ASSERT_TRUE(svc.cost_model().calibrated(QueryKind::kBfs));
  const double est = svc.cost_model().estimate(QueryKind::kBfs, 1);
  ASSERT_GT(est, 0.0);

  // A deadline at half the calibrated estimate cannot be met: the fuse
  // gate refuses it at admission rather than serving it late. The
  // deadline is still in the future, so queue eviction does NOT fire —
  // this exercises the admission stage specifically.
  const double now = grid.time();
  QuerySpec tight;
  tight.source = 5;
  tight.tenant = 1;
  tight.deadline_s = est * 0.5;
  const auto s = svc.submit(h, tight, now);
  ASSERT_EQ(s.code, AdmitCode::kAdmitted);
  EXPECT_TRUE(svc.step());
  const QueryRecord& rec = svc.record(s.id);
  EXPECT_EQ(rec.state, QueryState::kDeadlineExpired);
  EXPECT_EQ(grid.metrics()
                .counter("service.expired",
                         {{"tenant", "1"}, {"stage", "admission"}})
                .value,
            1);

  // A generous deadline sails through the same gate.
  QuerySpec loose;
  loose.source = 5;
  loose.tenant = 1;
  loose.deadline_s = est * 100.0;
  const auto ok = svc.submit(h, loose, grid.time());
  svc.drain();
  EXPECT_EQ(svc.record(ok.id).state, QueryState::kDone);
}

TEST(ResilienceTest, NoResultEverReturnedPastItsDeadline) {
  auto grid = LocaleGrid::square(4, 2);
  ServiceConfig cfg;
  cfg.batch_max = 4;
  GraphService svc(grid, cfg);
  const auto h = svc.store().load(make_graph(grid, 500, 6.0, 7));

  // A spread of deadlines from hopeless to generous, across tenants.
  const double deadlines[] = {1e-9, 1e-6, 1e-4, 1e-2, 0.0, 1.0};
  for (int i = 0; i < 30; ++i) {
    QuerySpec spec;
    spec.kind = i % 2 == 0 ? QueryKind::kBfs : QueryKind::kSssp;
    spec.source = static_cast<Index>((i * 17) % 500);
    spec.tenant = i % 3;
    spec.deadline_s = deadlines[i % 6];
    svc.submit(h, spec, grid.time());
    if (i % 7 == 0) svc.step();
  }
  svc.drain();

  // The contract: every record is terminal, and a kDone record finished
  // inside its deadline. Late completions must read kDeadlineExpired.
  for (const auto& rec : svc.records()) {
    EXPECT_NE(rec.state, QueryState::kQueued) << "id " << rec.id;
    if (rec.state == QueryState::kDone) {
      EXPECT_LE(rec.completion, rec.deadline) << "id " << rec.id;
    } else {
      EXPECT_FALSE(rec.done) << "id " << rec.id;
    }
  }
}

TEST(ResilienceTest, QueueFullCarriesRetryAfterHint) {
  auto grid = LocaleGrid::square(4, 2);
  ServiceConfig cfg;
  cfg.queue_depth = 2;
  cfg.retry_floor_s = 2e-3;
  GraphService svc(grid, cfg);
  const auto h = svc.store().load(make_graph(grid, 300, 4.0, 1));

  QuerySpec spec;
  spec.tenant = 0;
  ASSERT_EQ(svc.submit(h, spec, 0.0).code, AdmitCode::kAdmitted);
  ASSERT_EQ(svc.submit(h, spec, 0.0).code, AdmitCode::kAdmitted);
  // Uncalibrated service rate: the hint falls back to the floor.
  const auto shed = svc.submit(h, spec, 0.0);
  EXPECT_EQ(shed.code, AdmitCode::kQueueFull);
  EXPECT_DOUBLE_EQ(shed.retry_after_s, 2e-3);
  EXPECT_DOUBLE_EQ(grid.metrics().gauge("service.retry_after.s").value, 2e-3);

  // Once calibrated, the hint prices draining the backlog at the
  // observed rate: queued / rate, never below the floor.
  svc.drain();
  ASSERT_GT(svc.cost_model().service_rate(), 0.0);
  const double now = grid.time();
  ASSERT_EQ(svc.submit(h, spec, now).code, AdmitCode::kAdmitted);
  ASSERT_EQ(svc.submit(h, spec, now).code, AdmitCode::kAdmitted);
  const auto shed2 = svc.submit(h, spec, now);
  EXPECT_EQ(shed2.code, AdmitCode::kQueueFull);
  const double expect =
      std::max(2e-3, 2.0 / svc.cost_model().service_rate());
  EXPECT_DOUBLE_EQ(shed2.retry_after_s, expect);
}

TEST(ResilienceTest, TokenBucketQuotaThrottlesAndRefills) {
  auto grid = LocaleGrid::square(4, 2);
  ServiceConfig cfg;
  cfg.tenant_quota_qps = 10.0;
  cfg.tenant_quota_burst = 2.0;
  GraphService svc(grid, cfg);
  const auto h = svc.store().load(make_graph(grid, 300, 4.0, 1));

  QuerySpec spec;
  spec.tenant = 4;
  // Burst of 2 admitted, the third is over quota.
  EXPECT_EQ(svc.submit(h, spec, 0.0).code, AdmitCode::kAdmitted);
  EXPECT_EQ(svc.submit(h, spec, 0.0).code, AdmitCode::kAdmitted);
  EXPECT_EQ(svc.submit(h, spec, 0.0).code, AdmitCode::kTenantThrottled);
  EXPECT_THROW(svc.submit_strict(h, spec, 0.0), TenantThrottled);
  EXPECT_EQ(grid.metrics()
                .counter("service.rejected",
                         {{"tenant", "4"}, {"reason", "tenant_quota"}})
                .value,
            2);  // kTenantThrottled submit + the strict throw both count
  // Another tenant is unaffected — quotas are per-lane.
  QuerySpec other = spec;
  other.tenant = 5;
  EXPECT_EQ(svc.submit(h, other, 0.0).code, AdmitCode::kAdmitted);
  // 0.1 simulated seconds refills one token at 10 qps.
  EXPECT_EQ(svc.submit(h, spec, 0.1).code, AdmitCode::kAdmitted);
  EXPECT_EQ(svc.submit(h, spec, 0.1).code, AdmitCode::kTenantThrottled);
}

TEST(ResilienceTest, BreakerTripsOpensThenHalfOpenProbeCloses) {
  auto grid = LocaleGrid::square(4, 2);
  ServiceConfig cfg;
  cfg.queue_depth = 1;
  cfg.breaker_k = 2;
  cfg.breaker_cooldown_s = 0.05;
  GraphService svc(grid, cfg);
  const auto h = svc.store().load(make_graph(grid, 300, 4.0, 1));

  // Park a tenant-0 query so the depth-1 queue stays full, then feed
  // tenant 7 two consecutive queue-full failures: trip at K=2.
  QuerySpec parked;
  parked.tenant = 0;
  ASSERT_EQ(svc.submit(h, parked, 0.0).code, AdmitCode::kAdmitted);
  QuerySpec spec;
  spec.tenant = 7;
  EXPECT_EQ(svc.submit(h, spec, 0.0).code, AdmitCode::kQueueFull);
  EXPECT_EQ(svc.governor().state(7, 0.0), BreakerState::kClosed);
  EXPECT_EQ(svc.submit(h, spec, 0.0).code, AdmitCode::kQueueFull);
  EXPECT_EQ(svc.governor().state(7, 0.0), BreakerState::kOpen);
  EXPECT_EQ(svc.governor().trips(7), 1);
  EXPECT_EQ(grid.metrics()
                .counter("service.breaker.trips", {{"tenant", "7"}})
                .value,
            1);

  // While open the tenant is shed cheaply — no queue interaction at all.
  svc.drain();  // queue now has room; the breaker still answers first
  EXPECT_EQ(svc.submit(h, spec, 0.01).code, AdmitCode::kTenantThrottled);
  EXPECT_EQ(grid.metrics()
                .counter("service.rejected",
                         {{"tenant", "7"}, {"reason", "breaker_open"}})
                .value,
            1);

  // After the cooldown the breaker half-opens; one successful probe
  // closes it for good.
  EXPECT_EQ(svc.governor().state(7, 0.06), BreakerState::kHalfOpen);
  const auto probe = svc.submit(h, spec, 0.06);
  ASSERT_EQ(probe.code, AdmitCode::kAdmitted);
  svc.drain();
  ASSERT_EQ(svc.record(probe.id).state, QueryState::kDone);
  EXPECT_EQ(svc.governor().state(7, grid.time()), BreakerState::kClosed);
  EXPECT_EQ(svc.submit(h, spec, grid.time()).code, AdmitCode::kAdmitted);
}

TEST(ResilienceTest, ExpiredOnlyLaneDoesNotStallFairDequeue) {
  auto grid = LocaleGrid::square(4, 2);
  AdmissionQueue q(8, &grid.metrics());

  // Tenant 0's only query is already expired; tenants 1 and 2 are live.
  PendingQuery dead = make_query(0);
  dead.id = 10;
  dead.deadline = 0.5;
  ASSERT_EQ(q.offer(std::move(dead)), AdmitCode::kAdmitted);
  PendingQuery live1 = make_query(1);
  live1.id = 11;
  ASSERT_EQ(q.offer(std::move(live1)), AdmitCode::kAdmitted);
  PendingQuery live2 = make_query(2);
  live2.id = 12;
  ASSERT_EQ(q.offer(std::move(live2)), AdmitCode::kAdmitted);
  EXPECT_DOUBLE_EQ(grid.metrics().gauge("service.queue.depth").value, 3.0);

  // Eviction removes exactly the expired query, keeps FIFO order for
  // the rest, and the depth gauge stays coherent through it.
  std::vector<PendingQuery> evicted = q.take_expired(1.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].id, 10);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(grid.metrics().gauge("service.queue.depth").value, 2.0);

  // Round-robin must skip the emptied lane instead of stalling on it.
  EXPECT_EQ(q.head(0), nullptr);
  EXPECT_EQ(q.pop_fair().spec.tenant, 1);
  EXPECT_EQ(q.pop_fair().spec.tenant, 2);
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(grid.metrics().gauge("service.queue.depth").value, 0.0);
  EXPECT_TRUE(q.take_expired(2.0).empty());
}

TEST(ResilienceTest, RecordBookStaysMemorySteadyOver10kQueries) {
  auto grid = LocaleGrid::square(4, 2);
  ServiceConfig cfg;
  cfg.queue_depth = 64;
  cfg.compact_watermark = 128;
  GraphService svc(grid, cfg);
  const auto h = svc.store().load(make_graph(grid, 200, 3.0, 5));

  // Sustained traffic: 10k queries across tenants, every terminal
  // record released as its client would. A tight deadline expires most
  // at the queue stage (cheap), a sprinkling runs for real — either way
  // the released prefix compacts and the book never grows unbounded.
  constexpr int kTotal = 10000;
  constexpr int kRound = 50;
  std::int64_t released = 0;
  std::int64_t max_live = 0;
  std::int64_t next = 0;
  for (int round = 0; round < kTotal / kRound; ++round) {
    const double now = grid.time();
    for (int i = 0; i < kRound; ++i) {
      QuerySpec spec;
      spec.source = static_cast<Index>((round * kRound + i) % 200);
      spec.tenant = i % 4;
      spec.deadline_s = i == 0 ? 0.0 : 1e-7;  // lane 0 actually serves
      const auto s = svc.submit(h, spec, now);
      ASSERT_EQ(s.code, AdmitCode::kAdmitted);
    }
    advance_all(grid, now + 1e-6);
    svc.drain();
    // Release everything terminal that we have not released yet.
    const std::int64_t upto = svc.records_retired() + svc.records_live();
    for (; next < upto; ++next) {
      svc.release(next);
      ++released;
    }
    max_live = std::max(max_live, svc.records_live());
  }
  EXPECT_EQ(released, kTotal);
  EXPECT_EQ(svc.records_retired() + svc.records_live(), kTotal);
  // Memory-steady: the live window is bounded by watermark + one round,
  // nowhere near the 10k offered.
  EXPECT_LE(max_live, cfg.compact_watermark + kRound);
  EXPECT_LE(svc.records_live(), cfg.compact_watermark);
  EXPECT_GE(svc.records_retired(), kTotal - cfg.compact_watermark);
  EXPECT_DOUBLE_EQ(grid.metrics().gauge("service.records.live").value,
                   static_cast<double>(svc.records_live()));
  EXPECT_EQ(grid.metrics().counter("service.records.retired").value,
            svc.records_retired());
  // Retired ids are gone for good; live ids still resolve.
  EXPECT_THROW(svc.record(0), Error);
}

TEST(ResilienceTest, ReleaseOfQueuedQueryIsRejected) {
  auto grid = LocaleGrid::square(4, 2);
  GraphService svc(grid, ServiceConfig{});
  const auto h = svc.store().load(make_graph(grid, 200, 3.0, 5));
  QuerySpec spec;
  const auto s = svc.submit(h, spec, 0.0);
  EXPECT_THROW(svc.release(s.id), Error);
  svc.drain();
  svc.release(s.id);  // terminal now: fine
}

TEST(ResilienceTest, HealthReportsDegradedServingAfterMidTrafficKill) {
  const std::vector<Index> sources = {0, 99, 500};
  SpmspvOptions opt;
  opt.comm = CommMode::kAggregated;

  // Fault-free reference for the bit-identical check + kill timing.
  auto refgrid = LocaleGrid::square(4, 2);
  auto refg = erdos_renyi_dist<double>(refgrid, 800, 8.0, 11);
  refgrid.reset();
  const std::vector<BfsResult> base = bfs_batch(refg, sources, opt);
  const double total = refgrid.time();

  auto serve_once = [&](std::vector<double>* completions, double* tend,
                        std::string* mode) {
    auto grid = LocaleGrid::square(4, 2);
    FaultPlan plan(
        FaultSpec::parse("kill:locale=1,at=" + std::to_string(total * 0.4)),
        21);
    grid.set_fault_plan(&plan);
    RecoveryReport report;
    ServiceConfig cfg;
    cfg.batch_max = 4;
    cfg.spmspv = opt;
    cfg.plan = &plan;
    cfg.rebuild.keep_membership = true;
    cfg.report = &report;
    GraphService svc(grid, cfg);
    const auto h = svc.store().load(make_graph(grid, 800, 8.0, 11));
    std::vector<std::int64_t> ids;
    for (const Index s : sources) {
      QuerySpec spec;
      spec.source = s;
      ids.push_back(svc.submit(h, spec, 0.0).id);
    }
    svc.drain();
    EXPECT_GE(report.rebuilds, 1);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const QueryRecord& rec = svc.record(ids[i]);
      ASSERT_EQ(rec.state, QueryState::kDone);
      EXPECT_EQ(rec.result.bfs.parent, base[i].parent) << "lane " << i;
      completions->push_back(rec.completion);
    }
    // A follow-up query after the kill serves on the surviving hosts
    // (keep_membership holds the remap between driver calls).
    QuerySpec after;
    after.source = 7;
    const auto a = svc.submit(h, after, grid.time());
    svc.drain();
    EXPECT_EQ(svc.record(a.id).state, QueryState::kDone);
    const ServiceHealth hh = svc.health();
    *mode = hh.mode;
    EXPECT_EQ(hh.degraded_locales, 1);
    EXPECT_EQ(hh.active_hosts, grid.num_locales() - 1);
    EXPECT_EQ(hh.open_breakers(), 0);
    EXPECT_DOUBLE_EQ(
        grid.metrics().gauge("service.health.mode_degraded").value, 1.0);
    EXPECT_DOUBLE_EQ(
        grid.metrics().gauge("service.health.degraded_locales").value, 1.0);
    *tend = grid.time();
  };

  std::vector<double> c1, c2;
  double t1 = 0.0, t2 = 0.0;
  std::string m1, m2;
  serve_once(&c1, &t1, &m1);
  serve_once(&c2, &t2, &m2);
  EXPECT_EQ(m1, "degraded");
  // Chaos serving is bit-deterministic: same seed, same kill, same trace.
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(t1, t2);
}

TEST(ResilienceTest, HealthSummaryFormatsBreakersAndMode) {
  auto grid = LocaleGrid::square(4, 2);
  ServiceConfig cfg;
  GraphService svc(grid, cfg);
  const auto h = svc.store().load(make_graph(grid, 200, 3.0, 5));
  QuerySpec spec;
  spec.tenant = 2;
  svc.submit(h, spec, 0.0);
  svc.drain();
  const ServiceHealth hh = svc.health();
  const std::string s = hh.summary();
  EXPECT_NE(s.find("mode=normal"), std::string::npos) << s;
  EXPECT_NE(s.find("breakers{2:closed}"), std::string::npos) << s;
  EXPECT_NE(s.find("live_records="), std::string::npos) << s;
}

}  // namespace
}  // namespace pgb
