// Tests for the locale-grid runtime: grid construction, block
// distributions, clock semantics of coforall/barrier, and the
// communication-charging helpers.
#include <gtest/gtest.h>

#include "runtime/dist.hpp"
#include "runtime/locale_grid.hpp"

namespace pgb {
namespace {

TEST(LocaleGrid, SingleGrid) {
  auto g = LocaleGrid::single(24);
  EXPECT_EQ(g.num_locales(), 1);
  EXPECT_EQ(g.threads(), 24);
  EXPECT_EQ(g.colocated(), 1);
}

TEST(LocaleGrid, SquareFactorsNearSquare) {
  auto g16 = LocaleGrid::square(16, 24);
  EXPECT_EQ(g16.rows(), 4);
  EXPECT_EQ(g16.cols(), 4);
  auto g8 = LocaleGrid::square(8, 24);
  EXPECT_EQ(g8.rows(), 2);
  EXPECT_EQ(g8.cols(), 4);
  auto g2 = LocaleGrid::square(2, 24);
  EXPECT_EQ(g2.rows(), 1);
  EXPECT_EQ(g2.cols(), 2);
}

TEST(LocaleGrid, RowMajorCoordinates) {
  auto g = LocaleGrid::square(8, 1);  // 2 x 4
  EXPECT_EQ(g.locale(5).row, 1);
  EXPECT_EQ(g.locale(5).col, 1);
  EXPECT_EQ(g.locale(3).row, 0);
  EXPECT_EQ(g.locale(3).col, 3);
}

TEST(LocaleGrid, NodePlacement) {
  auto g = LocaleGrid::square(8, 1, /*locales_per_node=*/4);
  EXPECT_TRUE(g.same_node(0, 3));
  EXPECT_FALSE(g.same_node(3, 4));
  EXPECT_TRUE(g.same_node(4, 7));
}

TEST(LocaleGrid, RejectsBadConfig) {
  EXPECT_THROW(LocaleGrid(GridConfig{.rows = 0}), InvalidArgument);
  EXPECT_THROW(LocaleGrid(GridConfig{.threads_per_locale = 0}),
               InvalidArgument);
}

TEST(LocaleGrid, CoforallRunsBodyOncePerLocale) {
  auto g = LocaleGrid::square(6, 4);
  std::vector<int> seen;
  g.coforall_locales([&](LocaleCtx& ctx) { seen.push_back(ctx.locale()); });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(LocaleGrid, CoforallChargesForkAndBarrier) {
  auto g = LocaleGrid::square(8, 4);
  g.coforall_locales([](LocaleCtx&) {});
  // Even an empty body costs 7 remote forks + a barrier.
  const double expected_min = 7 * g.net().params().tau_fork;
  EXPECT_GE(g.time(), expected_min);
  EXPECT_LT(g.time(), expected_min * 3);
}

TEST(LocaleGrid, BarrierSynchronizesClocks) {
  auto g = LocaleGrid::square(4, 1);
  g.clock(2).advance(1.0);
  g.barrier_all();
  for (int l = 0; l < 4; ++l) EXPECT_GE(g.clock(l).now(), 1.0);
  EXPECT_DOUBLE_EQ(g.clock(0).now(), g.clock(3).now());
}

TEST(LocaleGrid, ResetClearsClocksAndTrace) {
  auto g = LocaleGrid::single(1);
  g.clock(0).advance(5.0);
  g.trace().add("x", 1.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.time(), 0.0);
  EXPECT_TRUE(g.trace().phases().empty());
}

TEST(LocaleCtx, LocalPeerChargesNothing) {
  auto g = LocaleGrid::square(4, 1);
  LocaleCtx ctx(g, 1);
  ctx.remote_chain(1, 1000, 3.0, 8);
  ctx.remote_msgs(1, 1000, 8);
  ctx.remote_bulk(1, 1 << 20);
  ctx.remote_rt(1, 8);
  EXPECT_DOUBLE_EQ(g.clock(1).now(), 0.0);
}

TEST(LocaleCtx, RemotePeerAdvancesOnlyIssuerClock) {
  auto g = LocaleGrid::square(4, 1);
  LocaleCtx ctx(g, 1);
  ctx.remote_bulk(2, 1 << 20);
  EXPECT_GT(g.clock(1).now(), 0.0);
  EXPECT_DOUBLE_EQ(g.clock(2).now(), 0.0);
}

TEST(LocaleCtx, ContentionMultipliesCost) {
  auto g = LocaleGrid::square(4, 1);
  LocaleCtx a(g, 0), b(g, 1);
  a.remote_chain(2, 100, 2.0, 8, 1.0);
  b.remote_chain(2, 100, 2.0, 8, 4.0);
  EXPECT_NEAR(g.clock(1).now(), 4.0 * g.clock(0).now(), 1e-12);
}

TEST(LocaleCtx, ParallelRegionIncludesSpawnBurden) {
  auto g = LocaleGrid::single(24);
  LocaleCtx ctx(g, 0);
  ctx.parallel_region(CostVector{});  // no work, only spawn
  EXPECT_NEAR(g.clock(0).now(), 24 * g.model().node.tau_task, 1e-12);
}

TEST(LocaleCtx, SerialRegionHasNoSpawnBurden) {
  auto g = LocaleGrid::single(24);
  LocaleCtx ctx(g, 0);
  ctx.serial_region(CostVector{});
  EXPECT_DOUBLE_EQ(g.clock(0).now(), 0.0);
}

// ---- distributions ----

class Dist1DParam
    : public ::testing::TestWithParam<std::pair<Index, int>> {};

TEST_P(Dist1DParam, BlocksPartitionTheRange) {
  const auto [n, parts] = GetParam();
  BlockDist1D d(n, parts);
  Index covered = 0;
  for (int p = 0; p < parts; ++p) {
    EXPECT_EQ(d.hi(p) - d.lo(p), d.local_size(p));
    covered += d.local_size(p);
    if (p > 0) EXPECT_EQ(d.lo(p), d.hi(p - 1));
  }
  EXPECT_EQ(covered, n);
}

TEST_P(Dist1DParam, OwnerIsConsistentWithBlocks) {
  const auto [n, parts] = GetParam();
  BlockDist1D d(n, parts);
  const Index step = std::max<Index>(1, n / 137);
  for (Index i = 0; i < n; i += step) {
    const int p = d.owner(i);
    EXPECT_GE(i, d.lo(p));
    EXPECT_LT(i, d.hi(p));
  }
  if (n >= parts) {
    // With fewer items than parts, leading/trailing blocks may be empty
    // and the boundary items belong to interior parts.
    EXPECT_EQ(d.owner(0), 0);
    EXPECT_EQ(d.owner(n - 1), parts - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Dist1DParam,
    ::testing::Values(std::pair<Index, int>{100, 1},
                      std::pair<Index, int>{100, 7},
                      std::pair<Index, int>{7, 7},
                      std::pair<Index, int>{5, 8},  // more parts than items
                      std::pair<Index, int>{1000003, 64},
                      std::pair<Index, int>{0, 4}));

TEST(Dist2D, LocaleOfMatchesRowMajorGrid) {
  BlockDist2D d(100, 100, 2, 4);
  EXPECT_EQ(d.locale_of(0, 0), 0);
  EXPECT_EQ(d.locale_of(0, 99), 3);
  EXPECT_EQ(d.locale_of(99, 0), 4);
  EXPECT_EQ(d.locale_of(99, 99), 7);
  EXPECT_EQ(d.prow_of(6), 1);
  EXPECT_EQ(d.pcol_of(6), 2);
}

TEST(LocaleGridThreads, SetThreadsClampsToOversubscriptionCap) {
  auto grid = LocaleGrid::square(4, 1);
  const int cap = grid.max_threads();
  // cap = kOversubscribeCap x the locale's core share; well above the
  // bench sweeps (1..32 threads on the default model).
  EXPECT_GE(cap, 32);
  grid.set_threads(cap);  // at the cap: accepted verbatim
  EXPECT_EQ(grid.threads(), cap);
  grid.set_threads(cap + 1);  // beyond: clamped, not honored
  EXPECT_EQ(grid.threads(), cap);
  grid.set_threads(1000000);
  EXPECT_EQ(grid.threads(), cap);
  grid.set_threads(2);  // back under the cap: exact again
  EXPECT_EQ(grid.threads(), 2);
  EXPECT_THROW(grid.set_threads(0), InvalidArgument);
}

TEST(Dist2D, EveryCellOwnedByExactlyOneLocale) {
  BlockDist2D d(31, 17, 3, 2);
  for (Index r = 0; r < 31; ++r) {
    for (Index c = 0; c < 17; ++c) {
      const int l = d.locale_of(r, c);
      EXPECT_GE(l, 0);
      EXPECT_LT(l, 6);
      EXPECT_GE(r, d.rowd().lo(d.prow_of(l)));
      EXPECT_LT(r, d.rowd().hi(d.prow_of(l)));
      EXPECT_GE(c, d.cold().lo(d.pcol_of(l)));
      EXPECT_LT(c, d.cold().hi(d.pcol_of(l)));
    }
  }
}

}  // namespace
}  // namespace pgb
