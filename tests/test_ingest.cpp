// Tests for crash-consistent streaming ingestion (src/ingest/): the
// checksummed delta log and its torn-tail replay, the write-ahead
// mirror contract, atomic epoch publish with pinned readers, compaction,
// kill-mid-stream recovery bit-identity, and the incremental recompute
// paths (union-find CC, warm-restart pagerank).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algo/cc_incremental.hpp"
#include "algo/connected_components.hpp"
#include "algo/pagerank.hpp"
#include "fault/fault.hpp"
#include "ingest/ingest.hpp"
#include "service/event_log.hpp"
#include "sparse/coo.hpp"

namespace pgb {
namespace {

constexpr Index kN = 400;  ///< vertices of the small test graphs

/// A deterministic base graph: ring + a few chords, symmetric, values
/// quantized like the mutation stream's.
Coo<double> base_coo(Index n) {
  Coo<double> coo(n, n);
  for (Index v = 0; v < n; ++v) {
    const Index w = (v + 1) % n;
    coo.add(v, w, 0.5);
    coo.add(w, v, 0.5);
  }
  for (Index v = 0; v < n; v += 17) {
    const Index w = (v * 7 + 3) % n;
    if (w != v && w != (v + 1) % n && v != (w + 1) % n) {
      coo.add(v, w, 0.25);
      coo.add(w, v, 0.25);
    }
  }
  return coo;
}

/// Reference model of the mutated graph: coordinate map with
/// last-write-wins inserts and erase-if-present deletes.
using EdgeModel = std::map<std::pair<Index, Index>, double>;

EdgeModel model_of(const Coo<double>& coo) {
  EdgeModel m;
  for (const auto& e : coo.triples()) m[{e.row, e.col}] = e.val;
  return m;
}

void model_apply(EdgeModel& m, const MutationBatch& b) {
  for (const EdgeDelta& d : b.deltas) {
    if (d.op == DeltaOp::kInsert) {
      m[{d.row, d.col}] = d.val;
    } else {
      m.erase({d.row, d.col});
    }
  }
}

std::uint64_t model_hash(LocaleGrid& grid, const EdgeModel& m, Index n) {
  Coo<double> coo(n, n);
  for (const auto& [rc, v] : m) coo.add(rc.first, rc.second, v);
  const auto g = DistCsr<double>::from_coo(grid, coo);
  return ingest_graph_hash(g);
}

// ---------------------------------------------------------------------
// Checksums and pages
// ---------------------------------------------------------------------

TEST(DeltaLogTest, BatchChecksumDetectsTamper) {
  MutationRng rng{7};
  MutationBatch b = make_mutation_batch(rng, kN, 16, IngestMix{}, 1);
  EXPECT_TRUE(b.valid());
  b.deltas[3].val += 1.0;
  EXPECT_FALSE(b.valid());
  b.stamp();
  EXPECT_TRUE(b.valid());
  b.seq = 2;  // the checksum covers the sequence number too
  EXPECT_FALSE(b.valid());
}

TEST(DeltaLogTest, PageEncodeDecodeRoundTrip) {
  MutationRng rng{7};
  IngestMix mix;
  mix.erase = 1;
  const MutationBatch b = make_mutation_batch(rng, kN, 9, mix, 4);
  DeltaLogPage p = DeltaLogPage::encode(4, b.deltas);
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.frame_bytes(),
            kPageHeaderBytes +
                static_cast<std::int64_t>(b.deltas.size()) * kEdgeDeltaBytes);
  const auto back = p.decode();
  ASSERT_EQ(back.size(), b.deltas.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].row, b.deltas[i].row);
    EXPECT_EQ(back[i].col, b.deltas[i].col);
    EXPECT_EQ(back[i].val, b.deltas[i].val);
    EXPECT_EQ(back[i].op, b.deltas[i].op);
  }
  p.payload[5] ^= 0xff;
  EXPECT_FALSE(p.valid());
}

TEST(DeltaLogTest, AppendRequiresIncreasingSeqAndTruncatesBothEnds) {
  MutationRng rng{3};
  DeltaLog log;
  for (std::int64_t s = 1; s <= 4; ++s) {
    log.append(DeltaLogPage::encode(
        s, make_mutation_batch(rng, kN, 4, IngestMix{}, s).deltas));
  }
  EXPECT_EQ(log.size(), 4);
  EXPECT_EQ(log.last_seq(), 4);
  EXPECT_THROW(log.append(DeltaLogPage::encode(4, {})), Error);
  log.truncate_after(2);  // rollback of the unacked suffix
  EXPECT_EQ(log.last_seq(), 2);
  EXPECT_EQ(log.size(), 2);
  log.truncate_through(1);  // compaction of the folded prefix
  EXPECT_EQ(log.size(), 1);
  EXPECT_EQ(log.pages().front().seq, 2);
  EXPECT_EQ(log.bytes(),
            static_cast<std::int64_t>(log.serialize().size()));
}

// ---------------------------------------------------------------------
// Torn-tail replay: table-driven over every truncation and corruption
// offset of a mirrored stream
// ---------------------------------------------------------------------

TEST(DeltaLogTest, ReplayDiscardsExactlyTheUnackedSuffix) {
  MutationRng rng{11};
  std::vector<unsigned char> bytes;
  for (std::int64_t s = 1; s <= 5; ++s) {
    frame_append(bytes, DeltaLogPage::encode(
        s, make_mutation_batch(rng, kN, 3 + static_cast<int>(s),
                               IngestMix{}, s).deltas));
  }
  // durable = 3: pages 1..3 replay; the intact 4..5 suffix was never
  // acked, so it drops wholesale without being torn.
  const ReplayResult r =
      replay_log_bytes(bytes.data(), bytes.size(), 3);
  ASSERT_EQ(r.pages.size(), 3u);
  EXPECT_EQ(r.last_seq, 3);
  EXPECT_FALSE(r.torn_tail);
  EXPECT_GE(r.pages_discarded, 1);
  EXPECT_EQ(r.bytes_consumed + r.bytes_discarded,
            static_cast<std::int64_t>(bytes.size()));
  // durable = 5: everything replays, nothing dropped.
  const ReplayResult all =
      replay_log_bytes(bytes.data(), bytes.size(), 5);
  EXPECT_EQ(all.pages.size(), 5u);
  EXPECT_EQ(all.bytes_discarded, 0);
  EXPECT_FALSE(all.torn_tail);
}

TEST(DeltaLogTest, ReplayTruncationTableEveryByteOffset) {
  MutationRng rng{13};
  std::vector<unsigned char> bytes;
  std::vector<std::size_t> boundary = {0};
  for (std::int64_t s = 1; s <= 4; ++s) {
    frame_append(bytes, DeltaLogPage::encode(
        s, make_mutation_batch(rng, kN, 2 + static_cast<int>(s),
                               IngestMix{}, s).deltas));
    boundary.push_back(bytes.size());
  }
  // Truncate the mirror at *every* byte offset — page boundaries and
  // every mid-header/mid-payload cut. Replay must keep exactly the
  // whole frames before the cut and flag everything else torn.
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    const ReplayResult r = replay_log_bytes(bytes.data(), cut, 4);
    std::size_t whole = 0;
    while (whole + 1 < boundary.size() && boundary[whole + 1] <= cut) {
      ++whole;
    }
    ASSERT_EQ(r.pages.size(), whole) << "cut at " << cut;
    EXPECT_EQ(r.bytes_consumed,
              static_cast<std::int64_t>(boundary[whole]))
        << "cut at " << cut;
    EXPECT_EQ(r.torn_tail, cut != boundary[whole]) << "cut at " << cut;
    EXPECT_EQ(r.bytes_discarded,
              static_cast<std::int64_t>(cut - boundary[whole]));
    for (std::size_t i = 0; i < r.pages.size(); ++i) {
      EXPECT_EQ(r.pages[i].seq, static_cast<std::int64_t>(i + 1));
    }
  }
}

TEST(DeltaLogTest, ReplayCorruptionTableEveryByteOffset) {
  MutationRng rng{17};
  std::vector<unsigned char> bytes;
  std::vector<std::size_t> boundary = {0};
  for (std::int64_t s = 1; s <= 3; ++s) {
    frame_append(bytes, DeltaLogPage::encode(
        s, make_mutation_batch(rng, kN, 3, IngestMix{}, s).deltas));
    boundary.push_back(bytes.size());
  }
  // Flip one byte at every offset: replay must stop at (or before) the
  // page containing the flip, never crash, and keep the intact prefix.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<unsigned char> corrupt = bytes;
    corrupt[i] ^= 0x5a;
    const ReplayResult r =
        replay_log_bytes(corrupt.data(), corrupt.size(), 3);
    std::size_t page_of = 0;
    while (boundary[page_of + 1] <= i) ++page_of;
    EXPECT_LE(r.pages.size(), page_of) << "flip at " << i;
    EXPECT_TRUE(r.torn_tail) << "flip at " << i;
    for (std::size_t k = 0; k < r.pages.size(); ++k) {
      EXPECT_EQ(r.pages[k].seq, static_cast<std::int64_t>(k + 1));
      EXPECT_TRUE(r.pages[k].valid());
    }
  }
}

// ---------------------------------------------------------------------
// Apply / publish semantics
// ---------------------------------------------------------------------

TEST(IngestStreamTest, PublishedGraphMatchesReferenceModel) {
  auto grid = LocaleGrid::square(8, 2);
  const Coo<double> coo = base_coo(kN);
  auto a = DistCsr<double>::from_coo(grid, coo);
  GraphStore store;
  const auto h = store.load(std::make_shared<DistCsr<double>>(a));
  IngestStream stream(grid, store, h, a);

  EdgeModel model = model_of(coo);
  MutationRng rng{23};
  IngestMix mix;
  mix.insert = 3;
  mix.erase = 1;  // deletes exercised too (incl. deletes of absent edges)
  for (std::int64_t s = 1; s <= 6; ++s) {
    const MutationBatch b = make_mutation_batch(rng, kN, 40, mix, s);
    stream.apply(b);
    model_apply(model, b);
    stream.publish();
    const GraphSnapshot snap = store.snapshot(h);
    EXPECT_EQ(ingest_graph_hash(*snap.graph), model_hash(grid, model, kN))
        << "after batch " << s;
  }
  EXPECT_EQ(stream.stats().batches, 6);
  EXPECT_EQ(stream.stats().publishes, 6);
}

TEST(IngestStreamTest, AckImpliesMirrored) {
  auto grid = LocaleGrid::square(4, 2);
  const Coo<double> coo = base_coo(kN);
  auto a = DistCsr<double>::from_coo(grid, coo);
  GraphStore store;
  const auto h = store.load(std::make_shared<DistCsr<double>>(a));
  IngestStream stream(grid, store, h, a);
  MutationRng rng{29};
  for (std::int64_t s = 1; s <= 3; ++s) {
    stream.apply(make_mutation_batch(rng, kN, 24, IngestMix{}, s));
  }
  // Write-ahead contract: after the ack, every locale's mirror replays
  // all acked pages with nothing discarded.
  for (int l = 0; l < grid.num_locales(); ++l) {
    const auto& m = stream.mirror_bytes_for_test(l);
    const ReplayResult r =
        replay_log_bytes(m.data(), m.size(), stream.acked_seq());
    EXPECT_EQ(static_cast<std::int64_t>(r.pages.size()),
              stream.log(l).size());
    EXPECT_EQ(r.bytes_discarded, 0);
    EXPECT_FALSE(r.torn_tail);
  }
}

TEST(IngestStreamTest, OutOfOrderOrTamperedBatchRejected) {
  auto grid = LocaleGrid::square(4, 2);
  const Coo<double> coo = base_coo(kN);
  auto a = DistCsr<double>::from_coo(grid, coo);
  GraphStore store;
  const auto h = store.load(std::make_shared<DistCsr<double>>(a));
  IngestStream stream(grid, store, h, a);
  MutationRng rng{31};
  MutationBatch skip = make_mutation_batch(rng, kN, 8, IngestMix{}, 2);
  EXPECT_THROW(stream.apply(skip), Error);  // expects seq 1
  MutationBatch tampered = make_mutation_batch(rng, kN, 8, IngestMix{}, 1);
  tampered.deltas[0].val += 0.5;  // checksum now stale
  EXPECT_THROW(stream.apply(tampered), Error);
  EXPECT_EQ(stream.acked_seq(), 0);
}

TEST(IngestStreamTest, ReadersStayPinnedAcrossPublishes) {
  auto grid = LocaleGrid::square(4, 2);
  const Coo<double> coo = base_coo(kN);
  auto a = DistCsr<double>::from_coo(grid, coo);
  GraphStore store;
  const auto h = store.load(std::make_shared<DistCsr<double>>(a));
  IngestStream stream(grid, store, h, a);

  const GraphSnapshot pinned = store.snapshot(h);
  const std::uint64_t hash_before = ingest_graph_hash(*pinned.graph);
  MutationRng rng{37};
  for (std::int64_t s = 1; s <= 3; ++s) {
    stream.apply(make_mutation_batch(rng, kN, 32, IngestMix{}, s));
    stream.publish();
    // The pinned snapshot still reads the exact pre-ingest bytes.
    EXPECT_EQ(ingest_graph_hash(*pinned.graph), hash_before);
    EXPECT_EQ(pinned.epoch, 1u);
  }
  const GraphSnapshot fresh = store.snapshot(h);
  EXPECT_EQ(fresh.epoch, 4u);
  EXPECT_NE(ingest_graph_hash(*fresh.graph), hash_before);
  EXPECT_GE(store.retired_live(), 1);
}

TEST(IngestStreamTest, CompactionPreservesContentAndTruncatesLogs) {
  auto grid1 = LocaleGrid::square(4, 2);
  auto grid2 = LocaleGrid::square(4, 2);
  const Coo<double> coo = base_coo(kN);
  auto a1 = DistCsr<double>::from_coo(grid1, coo);
  auto a2 = DistCsr<double>::from_coo(grid2, coo);
  GraphStore st1, st2;
  const auto h1 = st1.load(std::make_shared<DistCsr<double>>(a1));
  const auto h2 = st2.load(std::make_shared<DistCsr<double>>(a2));
  IngestOptions eager;
  eager.compact_every = 1;  // compact at every publish
  IngestOptions lazy;
  lazy.compact_every = 1 << 30;  // never compact
  IngestStream s1(grid1, st1, h1, a1, eager);
  IngestStream s2(grid2, st2, h2, a2, lazy);

  MutationRng r1{41}, r2{41};
  IngestMix mix;
  mix.erase = 1;
  for (std::int64_t s = 1; s <= 5; ++s) {
    s1.apply(make_mutation_batch(r1, kN, 48, mix, s));
    s2.apply(make_mutation_batch(r2, kN, 48, mix, s));
    s1.publish();
    s2.publish();
    EXPECT_EQ(ingest_graph_hash(*st1.snapshot(h1).graph),
              ingest_graph_hash(*st2.snapshot(h2).graph))
        << "epoch diverged at batch " << s;
  }
  EXPECT_EQ(s1.stats().compactions, 5);
  EXPECT_EQ(s2.stats().compactions, 0);
  // Compaction truncated the folded prefix everywhere; the lazy stream
  // still carries every page.
  EXPECT_EQ(s1.log_bytes(), 0);
  EXPECT_GT(s2.log_bytes(), 0);
  EXPECT_EQ(s1.pending_deltas(), 0);
}

// ---------------------------------------------------------------------
// Kill-mid-stream recovery
// ---------------------------------------------------------------------

struct StreamRun {
  std::vector<std::uint64_t> epoch_hashes;
  std::uint64_t final_hash = 0;
  double sim_time = 0.0;
  IngestStats stats;
  std::int64_t replay_events = 0;
};

/// One scripted ingest run: `batches` seeded batches applied and
/// published against the ring graph, optionally under a fault plan.
StreamRun run_stream(FaultPlan* plan, int batches,
                     std::int64_t compact_every = 1 << 30) {
  auto grid = LocaleGrid::square(8, 2);
  const Coo<double> coo = base_coo(kN);
  auto a = DistCsr<double>::from_coo(grid, coo);
  GraphStore store;
  const auto h = store.load(std::make_shared<DistCsr<double>>(a));
  if (plan != nullptr) grid.set_fault_plan(plan);
  ServiceEventLog elog;
  IngestOptions opt;
  opt.compact_every = compact_every;
  IngestStream stream(grid, store, h, a, opt, &elog);
  MutationRng rng{43};
  IngestMix mix;
  mix.erase = 1;
  StreamRun out;
  for (std::int64_t s = 1; s <= batches; ++s) {
    stream.apply(make_mutation_batch(rng, kN, 64, mix, s));
    stream.publish();
    out.epoch_hashes.push_back(
        ingest_graph_hash(*store.snapshot(h).graph));
  }
  out.final_hash = out.epoch_hashes.back();
  out.sim_time = grid.time();
  out.stats = stream.stats();
  out.replay_events = elog.count("ingest.replay");
  return out;
}

TEST(IngestRecoveryTest, KillMidStreamRecoversBitIdentical) {
  // Fault-free reference fixes both the hashes and the kill timing.
  const StreamRun base = run_stream(nullptr, 8);
  ASSERT_GT(base.sim_time, 0.0);
  EXPECT_EQ(base.stats.replays, 0);

  for (const double frac : {0.3, 0.6, 0.9}) {
    FaultPlan plan(
        FaultSpec::parse("kill:locale=2,at=" +
                         std::to_string(base.sim_time * frac)),
        5);
    const StreamRun killed = run_stream(&plan, 8);
    // Bit-identity: every published epoch, not just the last one.
    EXPECT_EQ(killed.epoch_hashes, base.epoch_hashes) << "frac " << frac;
    EXPECT_EQ(killed.final_hash, base.final_hash);
    EXPECT_GE(killed.stats.replays, 1) << "frac " << frac;
    EXPECT_EQ(killed.replay_events, killed.stats.replays);
    // Recovery costs only modeled time, never content.
    EXPECT_GT(killed.sim_time, base.sim_time);
  }
}

TEST(IngestRecoveryTest, KillDuringCompactionRecoversBitIdentical) {
  const StreamRun base = run_stream(nullptr, 6, /*compact_every=*/1);
  EXPECT_EQ(base.stats.compactions, 6);
  FaultPlan plan(
      FaultSpec::parse("kill:locale=5,at=" +
                       std::to_string(base.sim_time * 0.5)),
      5);
  const StreamRun killed = run_stream(&plan, 6, /*compact_every=*/1);
  EXPECT_EQ(killed.epoch_hashes, base.epoch_hashes);
  EXPECT_GE(killed.stats.replays, 1);
}

TEST(IngestRecoveryTest, RecoveryReadsReplicasNotThePrimary) {
  auto grid = LocaleGrid::square(4, 2);
  const Coo<double> coo = base_coo(kN);
  auto a = DistCsr<double>::from_coo(grid, coo);
  GraphStore store;
  const auto h = store.load(std::make_shared<DistCsr<double>>(a));
  IngestStream stream(grid, store, h, a);
  MutationRng rng{47};
  for (std::int64_t s = 1; s <= 3; ++s) {
    stream.apply(make_mutation_batch(rng, kN, 32, IngestMix{}, s));
  }
  const std::uint64_t want = [&] {
    // What a fault-free twin publishes from the same state.
    auto grid2 = LocaleGrid::square(4, 2);
    auto a2 = DistCsr<double>::from_coo(grid2, coo);
    GraphStore st2;
    const auto h2 = st2.load(std::make_shared<DistCsr<double>>(a2));
    IngestStream s2(grid2, st2, h2, a2);
    MutationRng rng2{47};
    for (std::int64_t s = 1; s <= 3; ++s) {
      s2.apply(make_mutation_batch(rng2, kN, 32, IngestMix{}, s));
    }
    s2.publish();
    return ingest_graph_hash(*st2.snapshot(h2).graph);
  }();

  // Trash locale 1's primary state — base block and log — the way a
  // kill loses it, then recover from the buddy's copies.
  stream.base_block_for_test(1) = Csr<double>();
  const ReplayResult before = replay_log_bytes(
      stream.mirror_bytes_for_test(1).data(),
      stream.mirror_bytes_for_test(1).size(), stream.acked_seq());
  ASSERT_EQ(before.pages.size(), 3u);
  stream.recover_after_rebuild(1);
  EXPECT_EQ(stream.stats().pages_replayed, 3);
  stream.publish();
  EXPECT_EQ(ingest_graph_hash(*store.snapshot(h).graph), want);
}

TEST(IngestRecoveryTest, GarbageMirrorTailDiscardedOnReplay) {
  auto grid = LocaleGrid::square(4, 2);
  const Coo<double> coo = base_coo(kN);
  auto a = DistCsr<double>::from_coo(grid, coo);
  GraphStore store;
  const auto h = store.load(std::make_shared<DistCsr<double>>(a));
  IngestStream stream(grid, store, h, a);
  MutationRng rng{53};
  for (std::int64_t s = 1; s <= 2; ++s) {
    stream.apply(make_mutation_batch(rng, kN, 16, IngestMix{}, s));
  }
  // A torn partial frame lands after the durable pages (the shape a
  // kill mid-append leaves behind). Recovery keeps exactly the durable
  // prefix and drops the garbage — and says so in the stats.
  auto& mirror = stream.mirror_bytes_for_test(2);
  const std::size_t durable = mirror.size();
  mirror.insert(mirror.end(), {0x13, 0x37, 0xde, 0xad, 0xbe, 0xef});
  stream.recover_after_rebuild(2);
  EXPECT_EQ(stream.mirror_bytes_for_test(2).size(), durable);
  EXPECT_EQ(stream.log(2).last_seq(), stream.acked_seq());
  EXPECT_EQ(stream.stats().replays, 1);
}

// ---------------------------------------------------------------------
// Incremental recompute
// ---------------------------------------------------------------------

TEST(IncrementalCcTest, InsertStreamMatchesFullRecompute) {
  auto grid = LocaleGrid::square(4, 2);
  // Sparse symmetric base: disjoint 2-cliques, so inserts actually
  // merge components.
  Coo<double> coo(kN, kN);
  for (Index v = 0; v + 1 < kN; v += 2) {
    coo.add(v, v + 1, 1.0);
    coo.add(v + 1, v, 1.0);
  }
  auto a = DistCsr<double>::from_coo(grid, coo);
  const CcResult full = connected_components(a);
  IncrementalCc inc(full);

  GraphStore store;
  const auto h = store.load(std::make_shared<DistCsr<double>>(a));
  IngestStream stream(grid, store, h, a);
  MutationRng rng{59};
  EdgeModel model = model_of(coo);
  for (std::int64_t s = 1; s <= 4; ++s) {
    const MutationBatch b =
        make_mutation_batch(rng, kN, 20, IngestMix{}, s, /*symmetric=*/true);
    stream.apply(b);
    model_apply(model, b);
    std::vector<std::pair<Index, Index>> inserted;
    for (const EdgeDelta& d : b.deltas) inserted.push_back({d.row, d.col});
    EXPECT_TRUE(cc_incremental_apply(grid, &inc, inserted, 0));
  }
  stream.publish();
  const CcResult refull = connected_components(*store.snapshot(h).graph);
  CcResult maintained = inc.labels();
  EXPECT_EQ(maintained.label, refull.label);
  EXPECT_EQ(maintained.num_components, refull.num_components);
}

TEST(IncrementalCcTest, DeleteInvalidatesAndFallsBack) {
  auto grid = LocaleGrid::square(4, 2);
  IncrementalCc inc(CcResult{{0, 0, 2, 2}, 0, 2});
  EXPECT_TRUE(cc_incremental_apply(grid, &inc, {{1, 2}}, 0));
  EXPECT_FALSE(cc_incremental_apply(grid, &inc, {}, 1));
  EXPECT_FALSE(inc.valid());
}

TEST(WarmPagerankTest, WarmRestartConvergesFasterToSameRanks) {
  auto grid = LocaleGrid::square(4, 2);
  const Coo<double> coo = base_coo(kN);
  auto a = DistCsr<double>::from_coo(grid, coo);
  const PagerankResult cold_base = pagerank(a, 0.85, 1e-10, 200);

  // A small mutation, then compare a cold solve on the new graph with a
  // warm restart from the previous epoch's vector.
  GraphStore store;
  const auto h = store.load(std::make_shared<DistCsr<double>>(a));
  IngestStream stream(grid, store, h, a);
  MutationRng rng{61};
  stream.apply(
      make_mutation_batch(rng, kN, 8, IngestMix{}, 1, /*symmetric=*/true));
  stream.publish();
  const auto snap = store.snapshot(h);

  const PagerankResult cold = pagerank(*snap.graph, 0.85, 1e-10, 200);
  const PagerankResult warm =
      pagerank_warm(*snap.graph, cold_base.rank, 0.85, 1e-10, 200);
  EXPECT_LT(warm.iterations, cold.iterations);
  ASSERT_EQ(warm.rank.size(), cold.rank.size());
  for (std::size_t i = 0; i < cold.rank.size(); ++i) {
    EXPECT_NEAR(warm.rank[i], cold.rank[i], 1e-7) << "vertex " << i;
  }
}

// ---------------------------------------------------------------------
// Event log records
// ---------------------------------------------------------------------

TEST(IngestEventLogTest, BatchAndPublishRecordsEmitted) {
  auto grid = LocaleGrid::square(4, 2);
  const Coo<double> coo = base_coo(kN);
  auto a = DistCsr<double>::from_coo(grid, coo);
  GraphStore store;
  const auto h = store.load(std::make_shared<DistCsr<double>>(a));
  ServiceEventLog elog;
  IngestStream stream(grid, store, h, a, IngestOptions{}, &elog);
  MutationRng rng{67};
  stream.apply(make_mutation_batch(rng, kN, 16, IngestMix{}, 1));
  stream.publish();
  stream.apply(make_mutation_batch(rng, kN, 16, IngestMix{}, 2));
  stream.publish();
  EXPECT_EQ(elog.count("ingest.batch"), 2);
  EXPECT_EQ(elog.count("ingest.publish"), 2);
  EXPECT_EQ(elog.count("ingest.replay"), 0);
  // Spot-check the batch record carries the sequence number.
  bool saw_seq = false;
  for (const auto& line : elog.lines()) {
    saw_seq |= line.find("\"type\":\"ingest.batch\"") != std::string::npos &&
               line.find("\"seq\":1") != std::string::npos;
  }
  EXPECT_TRUE(saw_seq);
}

}  // namespace
}  // namespace pgb
