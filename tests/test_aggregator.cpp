// Tests for the conveyor-style aggregation layer: buffer mechanics
// (capacity-triggered / explicit / destructor flushes), stat counters,
// the double-buffered overlap model, grid-wide communication accounting,
// and — most importantly — that every kernel wired to CommMode produces
// byte-identical results across the fine / bulk / aggregated schedules.
#include <gtest/gtest.h>

#include <vector>

#include "algo/bfs.hpp"
#include "algo/sssp.hpp"
#include "core/assign_general.hpp"
#include "core/extract.hpp"
#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"
#include "runtime/aggregator.hpp"

namespace pgb {
namespace {

TEST(CommMode, ParseAndPrintRoundTrip) {
  EXPECT_EQ(parse_comm_mode("fine"), CommMode::kFine);
  EXPECT_EQ(parse_comm_mode("bulk"), CommMode::kBulk);
  EXPECT_EQ(parse_comm_mode("agg"), CommMode::kAggregated);
  EXPECT_EQ(parse_comm_mode("aggregated"), CommMode::kAggregated);
  EXPECT_THROW(parse_comm_mode("broadcast"), InvalidArgument);
  EXPECT_STREQ(to_string(CommMode::kFine), "fine");
  EXPECT_STREQ(to_string(CommMode::kBulk), "bulk");
  EXPECT_STREQ(to_string(CommMode::kAggregated), "agg");
}

TEST(AggChannel, RejectsBadConfig) {
  auto g = LocaleGrid::square(4, 1);
  LocaleCtx ctx(g, 0);
  AggConfig bad_cap;
  bad_cap.capacity = 0;
  EXPECT_THROW(AggChannel(ctx, bad_cap), InvalidArgument);
  AggConfig bad_cont;
  bad_cont.contention = 0.5;
  EXPECT_THROW(AggChannel(ctx, bad_cont), InvalidArgument);
}

TEST(DstAggregator, CapacityTriggersFlushesOfFullBuffers) {
  auto g = LocaleGrid::square(4, 1);
  LocaleCtx ctx(g, 0);
  AggConfig cfg;
  cfg.capacity = 4;
  std::vector<std::size_t> batch_sizes;
  std::vector<int> received;
  DstAggregator<int> agg(
      ctx,
      [&](int /*peer*/, std::vector<int>& batch) {
        batch_sizes.push_back(batch.size());
        for (int v : batch) received.push_back(v);
      },
      cfg);
  for (int i = 0; i < 10; ++i) agg.push(1, i);
  // Two capacity-triggered flushes so far; two elements still buffered.
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{4, 4}));
  agg.flush_all();
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{4, 4, 2}));
  // FIFO delivery: elements arrive in push order.
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(agg.stats().pushed, 10);
  EXPECT_EQ(agg.stats().flushes, 3);
  EXPECT_EQ(agg.stats().local_flushes, 0);
}

TEST(DstAggregator, ExplicitFlushShipsPartialBuffer) {
  auto g = LocaleGrid::square(4, 1);
  LocaleCtx ctx(g, 0);
  int delivered = 0;
  DstAggregator<int> agg(
      ctx, [&](int, std::vector<int>& b) { delivered += static_cast<int>(b.size()); });
  agg.push(2, 7);
  EXPECT_EQ(delivered, 0);  // still buffered
  agg.flush(2);
  EXPECT_EQ(delivered, 1);
  agg.flush(2);  // empty buffer: no-op
  EXPECT_EQ(agg.stats().flushes, 1);
}

TEST(DstAggregator, DestructorFlushesRemainingBuffers) {
  auto g = LocaleGrid::square(4, 1);
  std::vector<int> sink;
  {
    LocaleCtx ctx(g, 0);
    DstAggregator<int> agg(
        ctx, [&](int, std::vector<int>& b) {
          sink.insert(sink.end(), b.begin(), b.end());
        });
    agg.push(1, 11);
    agg.push(3, 33);
    EXPECT_TRUE(sink.empty());
  }
  EXPECT_EQ(sink, (std::vector<int>{11, 33}));
  EXPECT_GT(g.clock(0).now(), 0.0);  // the flushes charged the model
}

TEST(DstAggregator, SelfPeerFlushesAreFreeAndCountedSeparately) {
  auto g = LocaleGrid::square(4, 1);
  LocaleCtx ctx(g, 2);
  int delivered = 0;
  DstAggregator<int> agg(
      ctx, [&](int, std::vector<int>& b) { delivered += static_cast<int>(b.size()); });
  for (int i = 0; i < 5; ++i) agg.push(2, i);
  agg.flush_all();
  EXPECT_EQ(delivered, 5);  // data still moves
  EXPECT_EQ(agg.stats().local_flushes, 1);
  EXPECT_EQ(agg.stats().flushes, 0);
  EXPECT_EQ(agg.stats().messages, 0);
  EXPECT_DOUBLE_EQ(g.clock(2).now(), 0.0);  // but no comm is charged
  EXPECT_EQ(g.comm_stats().agg_flushes, 0);
}

TEST(DstAggregator, StatsCountMessagesAndBytes) {
  auto g = LocaleGrid::square(4, 1);
  LocaleCtx ctx(g, 0);
  AggConfig cfg;
  cfg.capacity = 8;
  DstAggregator<std::int64_t> agg(ctx, [](int, std::vector<std::int64_t>&) {},
                                  cfg);
  for (int i = 0; i < 16; ++i) agg.push(1, i);  // exactly two full flushes
  agg.flush_all();
  const auto& s = agg.stats();
  EXPECT_EQ(s.pushed, 16);
  EXPECT_EQ(s.flushes, 2);
  // Each put flush: header round trip (2 one-way messages) + payload bulk.
  EXPECT_EQ(s.messages, 6);
  EXPECT_EQ(s.bytes, 16 * static_cast<std::int64_t>(sizeof(std::int64_t)));
  // Grid-wide accounting mirrors the per-aggregator stats.
  EXPECT_EQ(g.comm_stats().agg_flushes, 2);
  EXPECT_EQ(g.comm_stats().messages, 6);
}

TEST(SrcAggregator, BufferedGetsResolveAgainstPeerData) {
  auto g = LocaleGrid::square(4, 1);
  LocaleCtx ctx(g, 0);
  // "Remote" table on peer 1: value = 10 * key.
  AggConfig cfg;
  cfg.capacity = 3;
  cfg.resp_bytes_each = 8;
  std::vector<int> results;
  SrcAggregator<int> agg(
      ctx,
      [&](int /*peer*/, std::vector<int>& batch) {
        for (int k : batch) results.push_back(10 * k);
      },
      cfg);
  for (int k = 0; k < 7; ++k) agg.get(1, k);
  agg.flush_all();
  EXPECT_EQ(results, (std::vector<int>{0, 10, 20, 30, 40, 50, 60}));
  const auto& s = agg.stats();
  EXPECT_EQ(s.pushed, 7);
  EXPECT_EQ(s.flushes, 3);  // 3 + 3 + 1
  // Each get flush: header RT (2) + request bulk + response bulk = 4.
  EXPECT_EQ(s.messages, 12);
  EXPECT_EQ(s.bytes, 7 * static_cast<std::int64_t>(sizeof(int)) + 7 * 8);
}

TEST(AggChannel, GetElemsChunksByCapacity) {
  auto g = LocaleGrid::square(4, 1);
  LocaleCtx ctx(g, 0);
  AggConfig cfg;
  cfg.capacity = 100;
  AggChannel chan(ctx, cfg);
  chan.get_elems(1, 250, 16);
  chan.drain();
  EXPECT_EQ(chan.stats().pushed, 250);
  EXPECT_EQ(chan.stats().flushes, 3);  // 100 + 100 + 50
  // Range gets carry no request payload: 3 messages per flush.
  EXPECT_EQ(chan.stats().messages, 9);
  EXPECT_EQ(chan.stats().bytes, 250 * 16);
  chan.get_elems(0, 1000, 16);  // self peer: free
  EXPECT_EQ(chan.stats().flushes, 3);
}

TEST(AggChannel, DoubleBufferingOverlapsTransferWithCompute) {
  // Two flushes with compute in between: synchronous flushes pay
  // transfer + compute serially; double buffering hides the compute
  // behind the in-flight transfer.
  const std::int64_t bytes = 1 << 20;
  auto run = [&](bool db) {
    auto g = LocaleGrid::square(4, 1);
    LocaleCtx ctx(g, 0);
    AggConfig cfg;
    cfg.double_buffer = db;
    AggChannel chan(ctx, cfg);
    const double compute =
        0.25 * g.net().bulk(bytes, false, g.colocated());
    chan.flush_put(1, bytes);
    ctx.clock().advance(compute);
    chan.flush_put(1, bytes);
    ctx.clock().advance(compute);
    chan.drain();
    return g.clock(0).now();
  };
  const double t_sync = run(false);
  const double t_overlap = run(true);
  EXPECT_LT(t_overlap, t_sync);
  // Overlap can hide the compute but not the transfers themselves.
  auto g = LocaleGrid::square(4, 1);
  const double two_transfers =
      2.0 * g.net().bulk(bytes, false, g.colocated());
  EXPECT_GE(t_overlap, two_transfers);
}

TEST(AggChannel, DrainIsIdempotentAndJoinsTheTail) {
  auto g = LocaleGrid::square(4, 1);
  LocaleCtx ctx(g, 0);
  AggChannel chan(ctx, AggConfig{});
  chan.flush_put(1, 1 << 20);
  const double before = g.clock(0).now();
  chan.drain();
  const double after = g.clock(0).now();
  EXPECT_GT(after, before);  // the tail of the transfer was outstanding
  chan.drain();
  EXPECT_DOUBLE_EQ(g.clock(0).now(), after);
}

TEST(CommStats, RemoteHelpersFillGridCounters) {
  auto g = LocaleGrid::square(4, 1);
  LocaleCtx ctx(g, 0);
  ctx.remote_bulk(1, 4096);
  EXPECT_EQ(g.comm_stats().messages, 1);
  EXPECT_EQ(g.comm_stats().bulks, 1);
  EXPECT_EQ(g.comm_stats().bytes, 4096);
  ctx.remote_rt(1, 8);
  EXPECT_EQ(g.comm_stats().messages, 3);
  ctx.remote_msgs(1, 10, 16);
  EXPECT_EQ(g.comm_stats().messages, 13);
  EXPECT_EQ(g.comm_stats().bytes, 4096 + 8 + 160);
  // remote_chain: count elements, each with rts_per_elem round trips.
  ctx.remote_chain(1, 10, 2.0, 8);
  EXPECT_EQ(g.comm_stats().messages, 13 + 10 + 40);
  // Self-peer helpers charge nothing and count nothing.
  ctx.remote_bulk(0, 1 << 20);
  EXPECT_EQ(g.comm_stats().bulks, 1);
  g.reset();
  EXPECT_EQ(g.comm_stats().messages, 0);
  EXPECT_EQ(g.comm_stats().bytes, 0);
}

// ---- cross-schedule equivalence of the wired kernels ----

template <typename T>
void expect_identical(const SparseVec<T>& a, const SparseVec<T>& b) {
  ASSERT_EQ(a.nnz(), b.nnz());
  for (Index p = 0; p < a.nnz(); ++p) {
    EXPECT_EQ(a.index_at(p), b.index_at(p)) << "slot " << p;
    EXPECT_EQ(a.value_at(p), b.value_at(p)) << "slot " << p;
  }
}

TEST(CommModeEquivalence, SpmspvBitIdenticalAcrossSchedules) {
  // Floating-point values: identical bits require identical per-slot
  // accumulation order, the strongest equivalence the aggregators claim.
  const Index n = 600;
  auto grid = LocaleGrid::square(9, 4);
  auto a = erdos_renyi_dist<double>(grid, n, 6.0, 11);
  auto x = random_dist_sparse_vec<double>(grid, n, 90, 12);
  const auto sr = arithmetic_semiring<double>();

  SpmspvOptions opt;
  opt.agg.capacity = 32;  // force many mid-stream flushes
  auto y_fine = spmspv_dist(a, x, sr, opt.with_comm(CommMode::kFine));
  auto y_bulk = spmspv_dist(a, x, sr, opt.with_comm(CommMode::kBulk));
  auto y_agg = spmspv_dist(a, x, sr, opt.with_comm(CommMode::kAggregated));
  expect_identical(y_fine.to_local(), y_bulk.to_local());
  expect_identical(y_fine.to_local(), y_agg.to_local());
}

TEST(CommModeEquivalence, AssignIndexedIdenticalAcrossSchedules) {
  const Index n = 500;
  auto grid = LocaleGrid::square(6, 2);
  auto b = random_dist_sparse_vec<double>(grid, n, 120, 3);
  std::vector<Index> map(static_cast<std::size_t>(n));
  for (Index k = 0; k < n; ++k) map[static_cast<std::size_t>(k)] = n - 1 - k;

  auto run = [&](CommMode m) {
    auto a = random_dist_sparse_vec<double>(grid, n, 60, 4);
    AggConfig cfg;
    cfg.capacity = 16;
    assign_indexed(a, map, b, OutputMode::kMerge, m, cfg);
    return a.to_local();
  };
  auto fine = run(CommMode::kFine);
  expect_identical(fine, run(CommMode::kBulk));
  expect_identical(fine, run(CommMode::kAggregated));
}

TEST(CommModeEquivalence, ExtractIndexedIdenticalAcrossSchedules) {
  const Index n = 400;
  auto grid = LocaleGrid::square(4, 2);
  auto a = random_dist_sparse_vec<double>(grid, n, 150, 9);
  std::vector<Index> map(300);
  for (std::size_t k = 0; k < map.size(); ++k) {
    map[k] = static_cast<Index>((k * 131 + 17) % n);
  }
  AggConfig cfg;
  cfg.capacity = 16;
  auto fine = extract_indexed(a, map, CommMode::kFine, cfg);
  auto bulk = extract_indexed(a, map, CommMode::kBulk, cfg);
  auto agg = extract_indexed(a, map, CommMode::kAggregated, cfg);
  expect_identical(fine.to_local(), bulk.to_local());
  expect_identical(fine.to_local(), agg.to_local());
}

TEST(CommModeEquivalence, ExtractCompactIdenticalAcrossSchedules) {
  const Index n = 800;
  auto grid = LocaleGrid::square(6, 2);
  auto x = random_dist_sparse_vec<double>(grid, n, 200, 5);
  AggConfig cfg;
  cfg.capacity = 8;
  auto fine = extract_compact(x, 100, 700, CommMode::kFine, cfg);
  auto bulk = extract_compact(x, 100, 700, CommMode::kBulk, cfg);
  auto agg = extract_compact(x, 100, 700, CommMode::kAggregated, cfg);
  EXPECT_EQ(fine.capacity(), 600);
  expect_identical(fine.to_local(), bulk.to_local());
  expect_identical(fine.to_local(), agg.to_local());
}

TEST(CommModeEquivalence, BfsIdenticalAcrossSchedules) {
  const Index n = 500;
  auto grid = LocaleGrid::square(4, 4);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 4.0, 21);
  auto run = [&](CommMode m) {
    SpmspvOptions opt;
    opt.comm = m;
    opt.agg.capacity = 32;
    return bfs(a, 0, opt);
  };
  auto fine = run(CommMode::kFine);
  auto agg = run(CommMode::kAggregated);
  EXPECT_EQ(fine.parent, agg.parent);
  EXPECT_EQ(fine.level_sizes, agg.level_sizes);
}

TEST(CommModeEquivalence, SsspIdenticalAcrossSchedules) {
  const Index n = 400;
  auto grid = LocaleGrid::square(4, 4);
  auto a = erdos_renyi_dist<double>(grid, n, 5.0, 31);
  auto run = [&](CommMode m) {
    SpmspvOptions opt;
    opt.comm = m;
    opt.agg.capacity = 32;
    return sssp(a, 0, opt);
  };
  auto fine = run(CommMode::kFine);
  auto agg = run(CommMode::kAggregated);
  EXPECT_EQ(fine.rounds, agg.rounds);
  ASSERT_EQ(fine.dist.size(), agg.dist.size());
  for (std::size_t v = 0; v < fine.dist.size(); ++v) {
    EXPECT_EQ(fine.dist[v], agg.dist[v]) << "vertex " << v;
  }
}

// ---- modeled-performance shape ----

TEST(AggModel, AggregationBeatsFineAndApproachesBulk) {
  // The acceptance shape of the aggregation layer on a distributed
  // SpMSpV: an order of magnitude fewer messages than fine-grained, and
  // modeled time competitive with the hand-rolled bulk path.
  const Index n = 100000;
  auto grid = LocaleGrid::square(16, 24);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 16.0, 5);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, n / 50, 6);
  const auto sr = arithmetic_semiring<std::int64_t>();

  SpmspvOptions opt;
  auto run = [&](CommMode m) {
    grid.reset();
    auto y = spmspv_dist(a, x, sr, opt.with_comm(m));
    return std::make_tuple(grid.time(), grid.comm_stats().messages,
                           y.to_local());
  };
  auto [t_fine, m_fine, y_fine] = run(CommMode::kFine);
  auto [t_bulk, m_bulk, y_bulk] = run(CommMode::kBulk);
  auto [t_agg, m_agg, y_agg] = run(CommMode::kAggregated);

  expect_identical(y_fine, y_bulk);
  expect_identical(y_fine, y_agg);
  EXPECT_GE(m_fine, 10 * m_agg);
  EXPECT_LT(t_agg, t_fine);
  EXPECT_LE(t_agg, 1.10 * t_bulk);
}

}  // namespace
}  // namespace pgb
