// Tests for the distributed containers: block-distributed sparse/dense
// vectors and the 2-D distributed CSR, including their invariants and
// round trips between local and distributed representations.
#include <gtest/gtest.h>

#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/dist_dense_vec.hpp"
#include "sparse/dist_sparse_vec.hpp"

namespace pgb {
namespace {

class GridSizes : public ::testing::TestWithParam<int> {};

TEST_P(GridSizes, DistSparseVecPartitionRoundTrips) {
  auto grid = LocaleGrid::square(GetParam(), 4);
  const Index n = 1000;
  auto x = random_dist_sparse_vec<double>(grid, n, 137, /*seed=*/3);
  EXPECT_TRUE(x.check_invariants());
  EXPECT_EQ(x.nnz(), 137);

  auto local = x.to_local();
  EXPECT_EQ(local.nnz(), 137);
  // Same content as a directly generated local vector.
  auto ref = random_sparse_vec<double>(n, 137, /*seed=*/3);
  EXPECT_EQ(local.domain().indices().size(), ref.domain().indices().size());
  for (Index p = 0; p < ref.nnz(); ++p) {
    EXPECT_EQ(local.index_at(p), ref.index_at(p));
    EXPECT_EQ(local.value_at(p), ref.value_at(p));
  }
}

TEST_P(GridSizes, EveryIndexOwnedByExactlyOneLocale) {
  auto grid = LocaleGrid::square(GetParam(), 1);
  DistSparseVec<int> x(grid, 100);
  Index total = 0;
  for (int l = 0; l < grid.num_locales(); ++l) {
    total += x.dist().local_size(l);
    for (Index i = x.dist().lo(l); i < x.dist().hi(l); ++i) {
      EXPECT_EQ(x.owner(i), l);
    }
  }
  EXPECT_EQ(total, 100);
}

INSTANTIATE_TEST_SUITE_P(Grids, GridSizes, ::testing::Values(1, 2, 4, 6, 9));

TEST(DistSparseVec, FromSortedRejectsOutOfRange) {
  auto grid = LocaleGrid::single(1);
  EXPECT_THROW(
      DistSparseVec<int>::from_sorted(grid, 10, {5, 12}, {1, 2}),
      InvalidArgument);
}

TEST(DistSparseVec, EmptyVector) {
  auto grid = LocaleGrid::square(4, 1);
  DistSparseVec<double> x(grid, 50);
  EXPECT_EQ(x.nnz(), 0);
  EXPECT_TRUE(x.check_invariants());
  EXPECT_EQ(x.to_local().nnz(), 0);
}

TEST(DistDenseVec, GlobalAccessHitsRightLocale) {
  auto grid = LocaleGrid::square(4, 1);
  DistDenseVec<int> y(grid, 100, 7);
  EXPECT_EQ(y.at(0), 7);
  y.at(99) = 42;
  EXPECT_EQ(y.local(3)[99], 42);
  y.fill(1);
  EXPECT_EQ(y.at(99), 1);
}

TEST(DistDenseVec, LocalBlocksCoverRange) {
  auto grid = LocaleGrid::square(6, 1);
  DistDenseVec<double> y(grid, 101);
  Index covered = 0;
  for (int l = 0; l < 6; ++l) covered += y.local(l).size();
  EXPECT_EQ(covered, 101);
}

class DistCsrGrids : public ::testing::TestWithParam<int> {};

TEST_P(DistCsrGrids, DistributedMatrixMatchesLocal) {
  auto grid = LocaleGrid::square(GetParam(), 2);
  const Index n = 200;
  auto dist = erdos_renyi_dist<double>(grid, n, 6.0, /*seed=*/11);
  auto local = erdos_renyi_csr<double>(n, 6.0, /*seed=*/11);
  EXPECT_TRUE(dist.check_invariants());
  EXPECT_EQ(dist.nnz(), local.nnz());

  auto gathered = dist.to_local();
  ASSERT_EQ(gathered.nnz(), local.nnz());
  for (Index r = 0; r < n; ++r) {
    auto a = gathered.row_colids(r);
    auto b = local.row_colids(r);
    ASSERT_EQ(a.size(), b.size()) << "row " << r;
    for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
}

TEST_P(DistCsrGrids, BlocksTileTheMatrix) {
  auto grid = LocaleGrid::square(GetParam(), 1);
  DistCsr<int> m(grid, 57, 91);
  Index rows_covered = 0, cols_covered = 0;
  for (int pr = 0; pr < grid.rows(); ++pr) {
    rows_covered += m.block(pr * grid.cols()).rhi -
                    m.block(pr * grid.cols()).rlo;
  }
  for (int pcix = 0; pcix < grid.cols(); ++pcix) {
    cols_covered += m.block(pcix).chi - m.block(pcix).clo;
  }
  EXPECT_EQ(rows_covered, 57);
  EXPECT_EQ(cols_covered, 91);
}

INSTANTIATE_TEST_SUITE_P(Grids, DistCsrGrids, ::testing::Values(1, 2, 4, 9));

TEST(DistCsr, FromCooRoutesTriples) {
  auto grid = LocaleGrid::square(4, 1);  // 2x2
  Coo<int> coo(10, 10);
  coo.add(0, 0, 1);    // block (0,0)
  coo.add(0, 9, 2);    // block (0,1)
  coo.add(9, 0, 3);    // block (1,0)
  coo.add(9, 9, 4);    // block (1,1)
  auto m = DistCsr<int>::from_coo(grid, coo);
  EXPECT_EQ(m.block(0).csr.nnz(), 1);
  EXPECT_EQ(m.block(1).csr.nnz(), 1);
  EXPECT_EQ(m.block(2).csr.nnz(), 1);
  EXPECT_EQ(m.block(3).csr.nnz(), 1);
  EXPECT_EQ(*m.to_local().find(9, 9), 4);
}

}  // namespace
}  // namespace pgb
