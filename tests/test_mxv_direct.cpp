// Tests for the transpose-free distributed mxv over CSC block mirrors.
#include <gtest/gtest.h>

#include "core/mxv_direct.hpp"
#include "core/ops.hpp"
#include "core/vxm.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"

namespace pgb {
namespace {

class MxvDirectGrids : public ::testing::TestWithParam<int> {};

TEST_P(MxvDirectGrids, MatchesTransposeBasedMxv) {
  const Index n = 500;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 6.0, 3);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, 70, 4);
  const auto sr = arithmetic_semiring<std::int64_t>();

  auto mirror = make_csc_mirror(a);
  auto direct = mxv_direct(a, mirror, x, sr);
  auto viaT = mxv(a, x, sr);
  EXPECT_TRUE(direct.check_invariants());
  EXPECT_TRUE(direct.to_local() == viaT.to_local());
}

TEST_P(MxvDirectGrids, AllCommModesAgree) {
  const Index n = 400;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 5.0, 7);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, 50, 8);
  const auto sr = min_plus_semiring<std::int64_t>();
  auto mirror = make_csc_mirror(a);

  SpmspvOptions fine, bulk;
  bulk.bulk_gather = true;
  bulk.bulk_scatter = true;
  auto y1 = mxv_direct(a, mirror, x, sr, fine);
  auto y2 = mxv_direct(a, mirror, x, sr, bulk);
  EXPECT_TRUE(y1.to_local() == y2.to_local());
}

INSTANTIATE_TEST_SUITE_P(Grids, MxvDirectGrids,
                         ::testing::Values(1, 2, 4, 6, 9, 16));

TEST(MxvDirect, MirrorMismatchThrows) {
  auto g1 = LocaleGrid::square(4, 1);
  auto g2 = LocaleGrid::square(9, 1);
  auto a4 = erdos_renyi_dist<std::int64_t>(g1, 50, 3.0, 1);
  auto a9 = erdos_renyi_dist<std::int64_t>(g2, 50, 3.0, 1);
  auto mirror9 = make_csc_mirror(a9);
  DistSparseVec<std::int64_t> x(g1, 50);
  EXPECT_THROW(
      mxv_direct(a4, mirror9, x, arithmetic_semiring<std::int64_t>()),
      InvalidArgument);
}

TEST(MxvDirectModel, AmortizedDirectBeatsTransposePerCall) {
  // Once the mirror exists, each mxv_direct call avoids the full
  // transpose; iterating algorithms win after a few calls.
  const Index n = 200000;
  auto grid = LocaleGrid::square(16, 24);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 8.0, 3);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, n / 50, 4);
  const auto sr = arithmetic_semiring<std::int64_t>();
  SpmspvOptions bulk;
  bulk.bulk_gather = true;
  bulk.bulk_scatter = true;

  grid.reset();
  auto mirror = make_csc_mirror(a);
  const double t_mirror = grid.time();
  grid.reset();
  mxv_direct(a, mirror, x, sr, bulk);
  const double t_direct = grid.time();

  grid.reset();
  mxv(a, x, sr, bulk);  // transposes every call
  const double t_viaT = grid.time();

  EXPECT_LT(t_direct, t_viaT);
  // The mirror pays for itself within a handful of calls.
  EXPECT_LT(t_mirror + 5 * t_direct, 5 * t_viaT);
}

}  // namespace
}  // namespace pgb
