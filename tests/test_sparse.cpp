// Tests for the local sparse containers: SparseDomain, SparseVec,
// DenseVec, CSR, COO->CSR construction, and the sparse accumulator.
#include <gtest/gtest.h>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense_vec.hpp"
#include "sparse/spa.hpp"
#include "sparse/sparse_domain.hpp"
#include "sparse/sparse_vec.hpp"

namespace pgb {
namespace {

TEST(SparseDomain, FromUnsortedSortsAndDedupes) {
  auto d = SparseDomain::from_unsorted({5, 1, 3, 1, 5});
  EXPECT_EQ(d.size(), 3);
  EXPECT_EQ(d[0], 1);
  EXPECT_EQ(d[1], 3);
  EXPECT_EQ(d[2], 5);
}

TEST(SparseDomain, FindReturnsPositionOrMinusOne) {
  auto d = SparseDomain::from_sorted({2, 4, 8, 16});
  EXPECT_EQ(d.find(2), 0);
  EXPECT_EQ(d.find(16), 3);
  EXPECT_EQ(d.find(3), -1);
  EXPECT_EQ(d.find(100), -1);
  EXPECT_TRUE(d.contains(8));
  EXPECT_FALSE(d.contains(9));
}

TEST(SparseDomain, AddSortedMergesLikeChapelPlusEquals) {
  auto d = SparseDomain::from_sorted({1, 5, 9});
  std::vector<Index> more{2, 5, 10};
  d.add_sorted(more);
  EXPECT_EQ(d.size(), 5);
  EXPECT_EQ(d.indices()[1], 2);
  EXPECT_EQ(d.indices()[4], 10);
}

TEST(SparseDomain, AddIntoEmpty) {
  SparseDomain d;
  std::vector<Index> idx{3, 7};
  d.add_sorted(idx);
  EXPECT_EQ(d.size(), 2);
  d.clear();
  EXPECT_TRUE(d.empty());
}

TEST(SparseVec, FromSortedAlignsValues) {
  auto v = SparseVec<double>::from_sorted(100, {10, 20}, {1.5, 2.5});
  EXPECT_EQ(v.capacity(), 100);
  EXPECT_EQ(v.nnz(), 2);
  EXPECT_EQ(*v.find(20), 2.5);
  EXPECT_EQ(v.find(15), nullptr);
}

TEST(SparseVec, FromUnsortedSortsPairs) {
  auto v = SparseVec<int>::from_unsorted(10, {7, 2, 5}, {70, 20, 50});
  EXPECT_EQ(v.index_at(0), 2);
  EXPECT_EQ(v.value_at(0), 20);
  EXPECT_EQ(v.index_at(2), 7);
  EXPECT_EQ(v.value_at(2), 70);
}

TEST(SparseVec, LengthMismatchThrows) {
  EXPECT_THROW(SparseVec<int>::from_sorted(10, {1, 2}, {1}),
               InvalidArgument);
}

TEST(SparseVec, SetValuesValidatesSize) {
  auto v = SparseVec<int>::from_sorted(10, {1, 2}, {1, 2});
  EXPECT_THROW(v.set_values({1}), InvalidArgument);
  v.set_values({9, 8});
  EXPECT_EQ(v.value_at(0), 9);
}

TEST(DenseVec, RangeIndexing) {
  DenseVec<double> v(10, 20, 1.0);
  EXPECT_EQ(v.lo(), 10);
  EXPECT_EQ(v.hi(), 20);
  EXPECT_EQ(v.size(), 10);
  v[15] = 3.0;
  EXPECT_EQ(v[15], 3.0);
  EXPECT_EQ(v[10], 1.0);
  v.fill(0.0);
  EXPECT_EQ(v[15], 0.0);
}

TEST(Csr, FromPartsAndAccessors) {
  // 3x4: row0 {1:10, 3:30}, row1 {}, row2 {0:5}
  auto m = Csr<int>::from_parts(3, 4, {0, 2, 2, 3}, {1, 3, 0}, {10, 30, 5});
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.row_nnz(0), 2);
  EXPECT_EQ(m.row_nnz(1), 0);
  EXPECT_EQ(m.row_start(2), 2);
  EXPECT_EQ(m.row_end(2), 3);
  EXPECT_EQ(*m.find(0, 3), 30);
  EXPECT_EQ(m.find(0, 2), nullptr);
  EXPECT_EQ(m.find(1, 0), nullptr);
  EXPECT_TRUE(m.check_invariants());
}

TEST(Csr, RowSpansMatchArrays) {
  auto m = Csr<int>::from_parts(2, 5, {0, 3, 4}, {0, 2, 4, 1}, {1, 2, 3, 4});
  auto cols = m.row_colids(0);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[2], 4);
  auto vals = m.row_values(1);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0], 4);
}

TEST(Csr, FromPartsRejectsBadRowptr) {
  EXPECT_THROW(Csr<int>::from_parts(2, 2, {0, 1}, {0}, {1}),
               InvalidArgument);
  EXPECT_THROW(Csr<int>::from_parts(2, 2, {0, 1, 3}, {0, 1}, {1, 2}),
               InvalidArgument);
}

TEST(Csr, EmptyMatrix) {
  Csr<double> m(0, 0);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_TRUE(m.check_invariants());
}

TEST(Coo, ToCsrSortsRowsAndColumns) {
  Coo<int> coo(3, 3);
  coo.add(2, 1, 21);
  coo.add(0, 2, 2);
  coo.add(0, 0, 0);
  coo.add(1, 1, 11);
  auto m = coo.to_csr();
  EXPECT_TRUE(m.check_invariants());
  EXPECT_EQ(*m.find(2, 1), 21);
  EXPECT_EQ(m.row_colids(0)[0], 0);
  EXPECT_EQ(m.row_colids(0)[1], 2);
}

TEST(Coo, DuplicatesCombined) {
  Coo<int> coo(2, 2);
  coo.add(0, 0, 1);
  coo.add(0, 0, 2);
  coo.add(0, 0, 4);
  auto last = coo.to_csr();
  EXPECT_EQ(*last.find(0, 0), 4);  // default keeps last
  auto sum = coo.to_csr([](int a, int b) { return a + b; });
  EXPECT_EQ(*sum.find(0, 0), 7);
  EXPECT_EQ(sum.nnz(), 1);
}

TEST(Spa, AccumulateCombinesOnRevisit) {
  Spa<double> spa(10, 20);
  auto add = [](double a, double b) { return a + b; };
  spa.accumulate(12, 1.0, add);
  spa.accumulate(15, 2.0, add);
  spa.accumulate(12, 3.0, add);
  EXPECT_EQ(spa.nnz(), 2);
  EXPECT_TRUE(spa.has(12));
  EXPECT_EQ(spa.value(12), 4.0);
  EXPECT_EQ(spa.value(15), 2.0);
}

TEST(Spa, SetIfAbsentKeepsFirst) {
  Spa<int> spa(0, 5);
  EXPECT_TRUE(spa.set_if_absent(3, 30));
  EXPECT_FALSE(spa.set_if_absent(3, 99));
  EXPECT_EQ(spa.value(3), 30);
}

TEST(Spa, ResetOnlyClearsTouched) {
  Spa<int> spa(0, 100);
  auto add = [](int a, int b) { return a + b; };
  spa.accumulate(7, 1, add);
  spa.accumulate(42, 1, add);
  spa.reset();
  EXPECT_EQ(spa.nnz(), 0);
  EXPECT_FALSE(spa.has(7));
  EXPECT_FALSE(spa.has(42));
  // Reusable after reset.
  spa.accumulate(7, 5, add);
  EXPECT_EQ(spa.value(7), 5);
}

}  // namespace
}  // namespace pgb
