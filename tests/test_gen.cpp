// Tests for the workload generators: determinism, statistical shape, and
// local/distributed structural equality.
#include <gtest/gtest.h>

#include <set>

#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"
#include "gen/rmat.hpp"

namespace pgb {
namespace {

TEST(SampleIndices, ExactCountSortedDistinct) {
  auto idx = sample_sorted_indices(1000, 100, 42);
  ASSERT_EQ(idx.size(), 100u);
  for (std::size_t i = 1; i < idx.size(); ++i) {
    EXPECT_LT(idx[i - 1], idx[i]);
  }
  EXPECT_GE(idx.front(), 0);
  EXPECT_LT(idx.back(), 1000);
}

TEST(SampleIndices, Deterministic) {
  EXPECT_EQ(sample_sorted_indices(5000, 500, 7),
            sample_sorted_indices(5000, 500, 7));
  EXPECT_NE(sample_sorted_indices(5000, 500, 7),
            sample_sorted_indices(5000, 500, 8));
}

TEST(SampleIndices, EdgeCases) {
  EXPECT_TRUE(sample_sorted_indices(10, 0, 1).empty());
  auto all = sample_sorted_indices(10, 10, 1);
  ASSERT_EQ(all.size(), 10u);
  EXPECT_EQ(all[9], 9);
  EXPECT_THROW(sample_sorted_indices(10, 11, 1), InvalidArgument);
}

TEST(SampleIndices, RoughlyUniform) {
  // Mean of 2000 samples from [0, 10000) should be near 5000.
  auto idx = sample_sorted_indices(10000, 2000, 99);
  double mean = 0;
  for (auto i : idx) mean += static_cast<double>(i);
  mean /= static_cast<double>(idx.size());
  EXPECT_NEAR(mean, 5000.0, 200.0);
}

TEST(RandomVec, ValuesDeterministic) {
  auto a = random_sparse_vec<double>(1000, 50, 3);
  auto b = random_sparse_vec<double>(1000, 50, 3);
  EXPECT_TRUE(a == b);
}

TEST(RandomBoolVec, DensityApproximatelyP) {
  auto grid = LocaleGrid::square(4, 1);
  auto y = random_dist_bool_vec(grid, 20000, 0.5, 17);
  Index trues = 0;
  for (int l = 0; l < 4; ++l) {
    for (auto v : y.local(l).raw()) trues += v;
  }
  EXPECT_NEAR(static_cast<double>(trues) / 20000.0, 0.5, 0.03);
}

TEST(ErdosRenyi, RowColumnsSortedDistinctInRange) {
  for (Index r = 0; r < 50; ++r) {
    auto cols = er_row_columns(1000, 8.0, 5, r);
    std::set<Index> s(cols.begin(), cols.end());
    EXPECT_EQ(s.size(), cols.size());
    for (std::size_t i = 1; i < cols.size(); ++i) {
      EXPECT_LT(cols[i - 1], cols[i]);
    }
    for (Index c : cols) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, 1000);
    }
  }
}

TEST(ErdosRenyi, MeanDegreeApproximatesD) {
  const Index n = 2000;
  auto m = erdos_renyi_csr<double>(n, 16.0, 21);
  const double mean =
      static_cast<double>(m.nnz()) / static_cast<double>(n);
  EXPECT_NEAR(mean, 16.0, 0.6);
  EXPECT_TRUE(m.check_invariants());
}

TEST(ErdosRenyi, DistStructureEqualsLocalAcrossGrids) {
  auto local = erdos_renyi_csr<int>(300, 4.0, 9);
  for (int nloc : {2, 4, 6}) {
    auto grid = LocaleGrid::square(nloc, 1);
    auto dist = erdos_renyi_dist<int>(grid, 300, 4.0, 9);
    EXPECT_EQ(dist.nnz(), local.nnz()) << nloc << " locales";
    auto gathered = dist.to_local();
    for (Index r = 0; r < 300; ++r) {
      auto a = gathered.row_colids(r);
      auto b = local.row_colids(r);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
    }
  }
}

TEST(Rmat, ProducesExpectedShape) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  auto m = rmat_csr(p);
  EXPECT_EQ(m.nrows(), 1024);
  EXPECT_TRUE(m.check_invariants());
  // Symmetric generation with dedup: nnz <= 2 * ef * n, and self-loops
  // are dropped.
  EXPECT_LE(m.nnz(), 2 * 8 * 1024);
  EXPECT_GT(m.nnz(), 1024);
  for (Index r = 0; r < m.nrows(); ++r) {
    for (Index c : m.row_colids(r)) EXPECT_NE(c, r);
  }
}

TEST(Rmat, SymmetricWhenRequested) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 4;
  auto m = rmat_csr(p);
  for (Index r = 0; r < m.nrows(); ++r) {
    for (Index c : m.row_colids(r)) {
      EXPECT_NE(m.find(c, r), nullptr) << "missing reverse of " << r
                                       << "->" << c;
    }
  }
}

TEST(Rmat, SkewedDegreesVsErdosRenyi) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  auto m = rmat_csr(p);
  Index dmax = 0;
  for (Index r = 0; r < m.nrows(); ++r) dmax = std::max(dmax, m.row_nnz(r));
  const double mean = static_cast<double>(m.nnz()) /
                      static_cast<double>(m.nrows());
  EXPECT_GT(static_cast<double>(dmax), 6.0 * mean);  // power-law-ish skew
}

TEST(Rmat, DistMatchesLocal) {
  RmatParams p;
  p.scale = 8;
  auto grid = LocaleGrid::square(4, 1);
  auto dist = rmat_dist(grid, p);
  auto local = rmat_csr(p);
  EXPECT_EQ(dist.nnz(), local.nnz());
  EXPECT_TRUE(dist.check_invariants());
}

}  // namespace
}  // namespace pgb
