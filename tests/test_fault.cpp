// Tests for the fault-injection plane: spec parsing, the deterministic
// fault plan, retry/timeout accounting in the comm layer (all three comm
// schedules), checkpoint round-trips and checksum detection, and
// checkpoint/restart recovery producing bit-identical results after a
// locale kill.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "algo/algo_recovery.hpp"
#include "algo/bfs.hpp"
#include "algo/pagerank.hpp"
#include "algo/sssp.hpp"
#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "fault/checkpoint.hpp"
#include "fault/fault.hpp"
#include "fault/recovery.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"
#include "runtime/aggregator.hpp"

namespace pgb {
namespace {

TEST(FaultSpec, ParsesEveryKind) {
  const FaultSpec s = FaultSpec::parse(
      "drop:p=0.1;dup:p=0.2,peer=3;corrupt:p=0.05;stall:p=0.01,ms=0.5;"
      "kill:locale=2,at=0.002");
  ASSERT_EQ(s.rules.size(), 5u);
  EXPECT_EQ(s.rules[0].kind, FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(s.rules[0].probability, 0.1);
  EXPECT_EQ(s.rules[0].locale, -1);
  EXPECT_EQ(s.rules[1].kind, FaultKind::kDuplicate);
  EXPECT_EQ(s.rules[1].locale, 3);
  EXPECT_EQ(s.rules[2].kind, FaultKind::kCorrupt);
  EXPECT_EQ(s.rules[3].kind, FaultKind::kStall);
  EXPECT_DOUBLE_EQ(s.rules[3].stall_seconds, 0.5e-3);
  EXPECT_EQ(s.rules[4].kind, FaultKind::kLocaleFail);
  EXPECT_EQ(s.rules[4].locale, 2);
  EXPECT_DOUBLE_EQ(s.rules[4].at_time, 0.002);
}

TEST(FaultSpec, RoundTripsThroughToString) {
  const std::string spec =
      "drop:p=0.25,peer=1;stall:p=0.5,ms=2;kill:locale=0,at=1";
  const FaultSpec a = FaultSpec::parse(spec);
  const FaultSpec b = FaultSpec::parse(a.to_string());
  ASSERT_EQ(a.rules.size(), b.rules.size());
  for (std::size_t i = 0; i < a.rules.size(); ++i) {
    EXPECT_EQ(a.rules[i].kind, b.rules[i].kind);
    EXPECT_DOUBLE_EQ(a.rules[i].probability, b.rules[i].probability);
    EXPECT_EQ(a.rules[i].locale, b.rules[i].locale);
    EXPECT_DOUBLE_EQ(a.rules[i].stall_seconds, b.rules[i].stall_seconds);
    EXPECT_DOUBLE_EQ(a.rules[i].at_time, b.rules[i].at_time);
  }
}

TEST(FaultSpec, RejectsMalformedInput) {
  EXPECT_THROW(FaultSpec::parse(""), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("explode:p=0.5"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("drop"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("drop:p=1.5"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("drop:p=-0.1"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("drop:p=abc"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("drop:p=0.1,ms=3"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("drop:p=0.1,volume=11"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("stall:p=0.1"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("kill:locale=1"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("kill:at=0.5"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("kill:locale=1,at=0.5,p=1"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("drop:p=0.1;;dup:p=0.1"), InvalidArgument);
}

TEST(FaultSpec, ParsesSourceTargetedStall) {
  const FaultSpec s = FaultSpec::parse("stall:locale=7,ms=0.5");
  ASSERT_EQ(s.rules.size(), 1u);
  EXPECT_EQ(s.rules[0].kind, FaultKind::kStall);
  EXPECT_EQ(s.rules[0].src_locale, 7);
  EXPECT_DOUBLE_EQ(s.rules[0].probability, 0.0);  // deterministic, no draw
  EXPECT_DOUBLE_EQ(s.rules[0].stall_seconds, 0.5e-3);
}

TEST(FaultSpec, SourceTargetedStallRoundTripsThroughToString) {
  const FaultSpec a = FaultSpec::parse("stall:locale=3,ms=2;drop:p=0.1");
  const FaultSpec b = FaultSpec::parse(a.to_string());
  ASSERT_EQ(b.rules.size(), 2u);
  EXPECT_EQ(b.rules[0].kind, FaultKind::kStall);
  EXPECT_EQ(b.rules[0].src_locale, 3);
  EXPECT_DOUBLE_EQ(b.rules[0].stall_seconds, 2e-3);
}

TEST(FaultSpec, RejectsMalformedSourceTargetedStall) {
  // The deterministic form is strict: locale= requires ms= and forbids
  // the probabilistic keys.
  EXPECT_THROW(FaultSpec::parse("stall:locale=2"), InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("stall:locale=2,p=0.5,ms=1"),
               InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("stall:locale=2,peer=1,ms=1"),
               InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("stall:locale=2,at=0.5,ms=1"),
               InvalidArgument);
  EXPECT_THROW(FaultSpec::parse("stall:locale=-1,ms=1"), InvalidArgument);
}

TEST(FaultPlan, SourceTargetedStallIsDeterministicAndAlignsRngStream) {
  // The targeted stall fires on every message from its source — no RNG
  // draw — so adding it must not perturb the fate stream of the
  // probabilistic rules (chaos runs stay reproducible when a stall
  // clause is appended).
  FaultPlan with(FaultSpec::parse("drop:p=0.3;stall:locale=1,ms=2"), 11);
  FaultPlan without(FaultSpec::parse("drop:p=0.3"), 11);
  for (int i = 0; i < 200; ++i) {
    const auto fw = with.attempt_fate(1, 2);
    const auto fo = without.attempt_fate(1, 2);
    EXPECT_EQ(fw.drop, fo.drop);
    EXPECT_DOUBLE_EQ(fw.stall, fo.stall + 2e-3);  // fires every time
  }
  // Messages from any other source are untouched.
  const auto other = with.attempt_fate(0, 1);
  EXPECT_DOUBLE_EQ(other.stall, 0.0);
}

TEST(RetryPolicy, ValidateRejectsNonsense) {
  RetryPolicy ok;
  EXPECT_NO_THROW(ok.validate());
  RetryPolicy zero_attempts;
  zero_attempts.max_attempts = 0;
  EXPECT_THROW(zero_attempts.validate(), InvalidArgument);
  RetryPolicy neg_timeout;
  neg_timeout.timeout = -1.0;
  EXPECT_THROW(neg_timeout.validate(), InvalidArgument);
  RetryPolicy shrinking_backoff;
  shrinking_backoff.backoff_mult = 0.5;
  EXPECT_THROW(shrinking_backoff.validate(), InvalidArgument);
}

TEST(FaultPlan, FateStreamIsDeterministicInSeed) {
  const FaultSpec s = FaultSpec::parse("drop:p=0.3;dup:p=0.2");
  FaultPlan p1(s, 9), p2(s, 9), p3(s, 10);
  bool any_differs_from_p3 = false;
  for (int i = 0; i < 500; ++i) {
    const auto f1 = p1.attempt_fate(0, 1);
    const auto f2 = p2.attempt_fate(0, 1);
    const auto f3 = p3.attempt_fate(0, 1);
    EXPECT_EQ(f1.drop, f2.drop);
    EXPECT_EQ(f1.duplicate, f2.duplicate);
    if (f1.drop != f3.drop || f1.duplicate != f3.duplicate) {
      any_differs_from_p3 = true;
    }
  }
  EXPECT_EQ(p1.decisions(), 500);
  EXPECT_TRUE(any_differs_from_p3);  // different seed, different stream
}

TEST(FaultPlan, KillScheduleRespectsTimeAndRecovery) {
  FaultPlan plan(FaultSpec::parse("kill:locale=2,at=1.5"), 1);
  EXPECT_FALSE(plan.has_message_faults());
  EXPECT_FALSE(plan.is_down(2, 1.0));
  EXPECT_TRUE(plan.is_down(2, 1.5));
  EXPECT_TRUE(plan.is_down(2, 99.0));
  EXPECT_FALSE(plan.is_down(1, 99.0));
  EXPECT_DOUBLE_EQ(plan.kill_time(2), 1.5);
  EXPECT_TRUE(std::isinf(plan.kill_time(0)));
  plan.mark_recovered(2);
  EXPECT_FALSE(plan.is_down(2, 99.0));
}

TEST(PlanDelivery, DropStormTimesOutEveryAttempt) {
  FaultPlan plan(FaultSpec::parse("drop:p=1"), 1);
  RetryPolicy rp;
  rp.max_attempts = 3;
  rp.jitter = 0.0;  // deterministic wait arithmetic
  const DeliveryOutcome out = plan_delivery(plan, rp, 0, 1, 0.0);
  EXPECT_EQ(out.attempts, 3);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.drops, 3);
  EXPECT_EQ(out.timeouts, 3);
  // Three ack timeouts plus two exponential backoffs (20us, 40us).
  EXPECT_DOUBLE_EQ(out.wait_time, 3 * rp.timeout + rp.backoff * 3.0);
}

TEST(PlanDelivery, CorruptNaksImmediatelyWithoutTimeout) {
  FaultPlan plan(FaultSpec::parse("corrupt:p=1"), 1);
  RetryPolicy rp;
  rp.max_attempts = 2;
  rp.jitter = 0.0;
  const DeliveryOutcome out = plan_delivery(plan, rp, 0, 1, 0.0);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.corrupts, 2);
  EXPECT_EQ(out.timeouts, 0);
  EXPECT_DOUBLE_EQ(out.wait_time, rp.backoff);  // one backoff, no timeout
}

TEST(PlanDelivery, DeadPeerExhaustsAttempts) {
  FaultPlan plan(FaultSpec::parse("kill:locale=1,at=0"), 1);
  RetryPolicy rp;
  const DeliveryOutcome out = plan_delivery(plan, rp, 0, 1, 0.5);
  EXPECT_EQ(out.attempts, rp.max_attempts);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.timeouts, rp.max_attempts);
  EXPECT_EQ(out.drops, 0);  // the peer is dead, not the wire
}

TEST(PlanDelivery, StallAndDuplicateDeliverFirstTry) {
  FaultPlan stall_plan(FaultSpec::parse("stall:p=1,ms=2"), 1);
  RetryPolicy rp;
  const DeliveryOutcome s = plan_delivery(stall_plan, rp, 0, 1, 0.0);
  EXPECT_TRUE(s.delivered);
  EXPECT_EQ(s.attempts, 1);
  EXPECT_EQ(s.stalls, 1);
  EXPECT_DOUBLE_EQ(s.stall_time, 2e-3);

  FaultPlan dup_plan(FaultSpec::parse("dup:p=1"), 1);
  const DeliveryOutcome d = plan_delivery(dup_plan, rp, 0, 1, 0.0);
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.attempts, 1);
  EXPECT_EQ(d.duplicates, 1);
  EXPECT_DOUBLE_EQ(d.wait_time, 0.0);
}

// A drop storm with A max attempts makes every logical transfer cost
// exactly A wire messages — across all three comm schedules — and the
// comm.messages per-path family stays coherent with the total.
TEST(Transfer, WireMessagesAreAttemptsTimesLogicalAcrossCommModes) {
  for (const CommMode mode :
       {CommMode::kFine, CommMode::kBulk, CommMode::kAggregated}) {
    auto grid = LocaleGrid::square(4, 1);
    auto a = erdos_renyi_dist<double>(grid, 300, 5.0, 3);
    auto x = random_dist_sparse_vec<double>(grid, 300, 40, 7);
    grid.reset();
    FaultPlan plan(FaultSpec::parse("drop:p=1"), 1);
    RetryPolicy rp;
    rp.max_attempts = 3;
    grid.set_fault_plan(&plan);
    grid.set_retry_policy(rp);
    SpmspvOptions opt;
    opt.comm = mode;
    spmspv_dist(a, x, arithmetic_semiring<double>(), opt);
    const auto& hot = grid.hot();
    ASSERT_GT(hot.logical_messages->value, 0) << to_string(mode);
    EXPECT_EQ(hot.messages->value, 3 * hot.logical_messages->value)
        << to_string(mode);
    EXPECT_GT(hot.retries->value, 0) << to_string(mode);
    EXPECT_EQ(hot.timeouts->value, 3 * (hot.retries->value / 2))
        << to_string(mode);  // every attempt of every transfer timed out
    // Per-path family sums to the total even under retries.
    const auto snap = grid.metrics().snapshot();
    std::int64_t family = 0;
    for (const auto& [key, val] : snap.values) {
      if (key.rfind("comm.messages{", 0) == 0) family += val.counter;
    }
    EXPECT_EQ(family, hot.messages->value) << to_string(mode);
    grid.set_fault_plan(nullptr);
  }
}

TEST(Transfer, DuplicatesAddWireTrafficButNoTime) {
  auto grid = LocaleGrid::square(4, 1);
  auto a = erdos_renyi_dist<double>(grid, 300, 5.0, 3);
  auto x = random_dist_sparse_vec<double>(grid, 300, 40, 7);
  grid.reset();
  auto clean = spmspv_dist(a, x, arithmetic_semiring<double>(), {});
  const double clean_time = grid.time();
  const std::int64_t clean_logical = grid.hot().logical_messages->value;

  grid.reset();
  FaultPlan plan(FaultSpec::parse("dup:p=1"), 1);
  grid.set_fault_plan(&plan);
  auto dup = spmspv_dist(a, x, arithmetic_semiring<double>(), {});
  const auto& hot = grid.hot();
  EXPECT_EQ(hot.logical_messages->value, clean_logical);
  EXPECT_EQ(hot.messages->value, 2 * clean_logical);  // every send doubled
  EXPECT_GT(hot.injected_dup->value, 0);  // one fate draw per transfer
  EXPECT_EQ(grid.time(), clean_time);  // duplicates overlap the original
  EXPECT_EQ(clean.to_local(), dup.to_local());
  grid.set_fault_plan(nullptr);
}

TEST(Transfer, StallsAddLatency) {
  auto grid = LocaleGrid::square(4, 1);
  auto a = erdos_renyi_dist<double>(grid, 300, 5.0, 3);
  auto x = random_dist_sparse_vec<double>(grid, 300, 40, 7);
  grid.reset();
  spmspv_dist(a, x, arithmetic_semiring<double>(), {});
  const double clean_time = grid.time();

  grid.reset();
  FaultPlan plan(FaultSpec::parse("stall:p=1,ms=0.05"), 1);
  grid.set_fault_plan(&plan);
  spmspv_dist(a, x, arithmetic_semiring<double>(), {});
  EXPECT_GT(grid.hot().injected_stall->value, 0);
  EXPECT_GT(grid.time(), clean_time);
  grid.set_fault_plan(nullptr);
}

TEST(Transfer, MessageFaultsPreserveResultsBitForBit) {
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<double>(grid, 400, 6.0, 5);
  auto x = random_dist_sparse_vec<double>(grid, 400, 50, 9);
  grid.reset();
  const auto clean = spmspv_dist(a, x, arithmetic_semiring<double>(), {});

  grid.reset();
  FaultPlan plan(FaultSpec::parse(
                     "drop:p=0.05;dup:p=0.03;corrupt:p=0.01;stall:p=0.01,ms=0.1"),
                 17);
  grid.set_fault_plan(&plan);
  const auto chaotic = spmspv_dist(a, x, arithmetic_semiring<double>(), {});
  EXPECT_GT(grid.hot().retries->value, 0);
  EXPECT_EQ(clean.to_local(), chaotic.to_local());
  grid.set_fault_plan(nullptr);
}

TEST(Chaos, SameSpecAndSeedGiveIdenticalMetricsAndResults) {
  auto run = [](std::string* metrics_json, double* time, BfsResult* out) {
    auto grid = LocaleGrid::square(4, 2);
    auto a = erdos_renyi_dist<double>(grid, 400, 6.0, 5);
    grid.reset();
    FaultPlan plan(FaultSpec::parse(
                       "drop:p=0.02;dup:p=0.01;corrupt:p=0.005;"
                       "stall:p=0.002,ms=0.1"),
                   99);
    grid.set_fault_plan(&plan);
    *out = bfs(a, 0, {});
    *metrics_json = grid.metrics().json();
    *time = grid.time();
    grid.set_fault_plan(nullptr);
  };
  std::string j1, j2;
  double t1 = 0.0, t2 = 0.0;
  BfsResult r1, r2;
  run(&j1, &t1, &r1);
  run(&j2, &t2, &r2);
  EXPECT_EQ(j1, j2);
  EXPECT_EQ(t1, t2);  // bit-identical simulated time
  EXPECT_EQ(r1.parent, r2.parent);
  EXPECT_EQ(r1.level_sizes, r2.level_sizes);
}

TEST(Checkpoint, DenseSparseHostScalarRoundTrip) {
  auto grid = LocaleGrid::square(4, 1);
  const Index n = 100;
  DistDenseVec<double> dense(grid, n, 0.0);
  for (Index i = 0; i < n; ++i) dense.at(i) = 0.5 * static_cast<double>(i);
  auto sparse = DistSparseVec<double>::from_sorted(
      grid, n, {3, 40, 77, 99}, {1.5, -2.0, 8.25, 0.125});
  const std::vector<Index> host{5, -1, 42};

  Checkpoint c;
  c.put_dense("dense", dense);
  c.put_sparse("sparse", sparse);
  c.put_host("host", host);
  c.put_scalar("level", Index{7});
  c.put_scalar("done", false);
  c.round = 4;
  EXPECT_TRUE(c.verify());
  EXPECT_GT(c.total_bytes(), 0);
  EXPECT_TRUE(c.has("dense"));
  EXPECT_FALSE(c.has("nope"));

  DistDenseVec<double> dense2(grid, n, -1.0);
  DistSparseVec<double> sparse2(grid, n);
  c.get_dense("dense", dense2);
  c.get_sparse("sparse", sparse2);
  for (Index i = 0; i < n; ++i) EXPECT_EQ(dense2.at(i), dense.at(i));
  EXPECT_EQ(sparse2.to_local(), sparse.to_local());
  EXPECT_TRUE(sparse2.check_invariants());
  EXPECT_EQ(c.get_host<Index>("host"), host);
  EXPECT_EQ(c.get_scalar<Index>("level"), 7);
  EXPECT_EQ(c.get_scalar<bool>("done"), false);
}

TEST(Checkpoint, OverwritingKeyReplacesEntry) {
  Checkpoint c;
  c.put_scalar("x", std::int64_t{1});
  c.put_scalar("x", std::int64_t{2});
  EXPECT_EQ(c.get_scalar<std::int64_t>("x"), 2);
  EXPECT_EQ(c.total_bytes(), static_cast<std::int64_t>(sizeof(std::int64_t)));
}

TEST(Checkpoint, ChecksumCatchesCorruption) {
  auto grid = LocaleGrid::square(4, 1);
  DistDenseVec<double> dense(grid, 64, 1.0);
  Checkpoint c;
  c.put_dense("dense", dense);
  ASSERT_TRUE(c.verify());
  c.find_mutable("dense")->blocks[1].bytes[0] ^= 0xFF;
  EXPECT_FALSE(c.verify());
  DistDenseVec<double> out(grid, 64, 0.0);
  EXPECT_THROW(c.get_dense("dense", out), Error);
}

TEST(Checkpoint, MissingKeyThrows) {
  Checkpoint c;
  EXPECT_THROW(c.get_scalar<int>("nope"), Error);
  auto grid = LocaleGrid::square(4, 1);
  DistDenseVec<double> out(grid, 10, 0.0);
  EXPECT_THROW(c.get_dense("nope", out), Error);
}

TEST(Checkpoint, SaveAndRestoreChargeSimulatedTime) {
  auto grid = LocaleGrid::square(4, 1);
  DistDenseVec<double> dense(grid, 4096, 1.0);
  Checkpoint c;
  c.put_dense("dense", dense);
  c.round = 1;
  const double t0 = grid.time();
  charge_checkpoint_save(grid, c, 5e9);
  const double t1 = grid.time();
  EXPECT_GT(t1, t0);
  EXPECT_EQ(grid.metrics().counter("ckpt.saves").value, 1);
  EXPECT_EQ(grid.metrics().counter("ckpt.bytes").value, c.total_bytes());
  charge_checkpoint_restore(grid, c, 5e9, 1 << 20);
  EXPECT_GT(grid.time(), t1);
  EXPECT_EQ(grid.metrics().counter("ckpt.restores").value, 1);
}

TEST(Kill, CoforallThrowsLocaleFailedOnce) {
  auto grid = LocaleGrid::square(4, 1);
  FaultPlan plan(FaultSpec::parse("kill:locale=2,at=0"), 1);
  grid.set_fault_plan(&plan);
  int ran = 0;
  try {
    grid.coforall_locales([&](LocaleCtx&) { ++ran; });
    FAIL() << "expected LocaleFailed";
  } catch (const LocaleFailed& e) {
    EXPECT_EQ(e.locale(), 2);
  }
  EXPECT_EQ(ran, 2);  // locales 0 and 1 dispatched before the dead one
  EXPECT_EQ(
      grid.metrics().counter("fault.injected", {{"kind", "kill"}}).value, 1);
  grid.set_fault_plan(nullptr);
}

TEST(Recovery, BfsRecoversBitIdenticalFromCheckpoint) {
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<double>(grid, 500, 8.0, 11);
  grid.reset();
  const BfsResult base = bfs(a, 0, {});
  const double total = grid.time();
  ASSERT_GT(total, 0.0);

  grid.reset();
  FaultPlan plan(
      FaultSpec::parse("kill:locale=1,at=" + std::to_string(total * 0.4)), 3);
  RecoveryOptions ropt;
  ropt.checkpoint_every = 2;
  RecoveryReport stats;
  const BfsResult rec = bfs_with_recovery(a, 0, {}, &plan, ropt, &stats);
  EXPECT_EQ(rec.parent, base.parent);
  EXPECT_EQ(rec.level_sizes, base.level_sizes);
  EXPECT_GE(stats.restarts, 1);
  EXPECT_GE(stats.checkpoints, 1);
  EXPECT_GE(grid.metrics().counter("recovery.restarts").value, 1);
  EXPECT_EQ(
      grid.metrics().counter("fault.injected", {{"kind", "kill"}}).value, 1);
  // The grid's previous (null) plan is restored by the driver.
  EXPECT_EQ(grid.fault_plan(), nullptr);
}

TEST(Recovery, SsspRecoversBitIdenticalFromCheckpoint) {
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<double>(grid, 400, 6.0, 13);
  grid.reset();
  const SsspResult base = sssp(a, 0, {});
  const double total = grid.time();
  ASSERT_GT(total, 0.0);

  grid.reset();
  FaultPlan plan(
      FaultSpec::parse("kill:locale=2,at=" + std::to_string(total * 0.5)), 3);
  RecoveryOptions ropt;
  ropt.checkpoint_every = 2;
  RecoveryReport stats;
  const SsspResult rec = sssp_with_recovery(a, 0, {}, &plan, ropt, &stats);
  EXPECT_EQ(rec.dist, base.dist);  // exact double equality
  EXPECT_EQ(rec.rounds, base.rounds);
  EXPECT_GE(stats.restarts, 1);
}

TEST(Recovery, PagerankRecoversBitIdenticalFromCheckpoint) {
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<double>(grid, 300, 6.0, 17);
  grid.reset();
  const PagerankResult base = pagerank(a, 0.85, 1e-8, 50);
  const double total = grid.time();
  ASSERT_GT(total, 0.0);

  grid.reset();
  FaultPlan plan(
      FaultSpec::parse("kill:locale=3,at=" + std::to_string(total * 0.5)), 3);
  RecoveryOptions ropt;
  ropt.checkpoint_every = 4;
  RecoveryReport stats;
  const PagerankResult rec =
      pagerank_with_recovery(a, &plan, 0.85, 1e-8, 50, ropt, &stats);
  EXPECT_EQ(rec.rank, base.rank);  // exact double equality
  EXPECT_EQ(rec.iterations, base.iterations);
  EXPECT_EQ(rec.residual, base.residual);
  EXPECT_GE(stats.restarts, 1);
}

TEST(Recovery, WithoutCheckpointsRestartsFromScratch) {
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<double>(grid, 400, 6.0, 11);
  grid.reset();
  const BfsResult base = bfs(a, 0, {});
  const double total = grid.time();

  grid.reset();
  FaultPlan plan(
      FaultSpec::parse("kill:locale=1,at=" + std::to_string(total * 0.4)), 3);
  RecoveryOptions ropt;
  ropt.checkpoint_every = 0;  // no snapshots: recovery = full re-run
  RecoveryReport stats;
  const BfsResult rec = bfs_with_recovery(a, 0, {}, &plan, ropt, &stats);
  EXPECT_EQ(rec.parent, base.parent);
  EXPECT_EQ(rec.level_sizes, base.level_sizes);
  EXPECT_GE(stats.restarts, 1);
  EXPECT_EQ(stats.checkpoints, 0);
  EXPECT_EQ(grid.metrics().counter("ckpt.saves").value, 0);
  EXPECT_EQ(grid.metrics().counter("ckpt.restores").value, 0);
}

TEST(Recovery, FaultFreeRunUnderDriverMatchesPlainRun) {
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<double>(grid, 400, 6.0, 11);
  grid.reset();
  const BfsResult base = bfs(a, 0, {});

  grid.reset();
  RecoveryOptions ropt;
  ropt.checkpoint_every = 2;
  RecoveryReport stats;
  const BfsResult rec = bfs_with_recovery(a, 0, {}, nullptr, ropt, &stats);
  EXPECT_EQ(rec.parent, base.parent);
  EXPECT_EQ(rec.level_sizes, base.level_sizes);
  EXPECT_EQ(stats.restarts, 0);
  EXPECT_GE(stats.checkpoints, 1);  // cadence still paid, for the ablation
}

TEST(AggChannel, DroppedFlushIsResentAndDeliveredExactlyOnce) {
  auto grid = LocaleGrid::square(4, 1);
  FaultPlan plan(FaultSpec::parse("drop:p=1"), 5);
  RetryPolicy rp;
  rp.max_attempts = 2;
  grid.set_fault_plan(&plan);
  grid.set_retry_policy(rp);
  LocaleCtx ctx(grid, 0);
  int delivers = 0;
  {
    DstAggregator<int> agg(ctx,
                           [&](int, std::vector<int>& b) {
                             delivers += static_cast<int>(b.size());
                           });
    agg.push(1, 42);
    agg.flush_all();
    EXPECT_EQ(delivers, 1);  // re-sent on the wire, delivered once
    EXPECT_EQ(agg.stats().resends, 1);
  }
  EXPECT_EQ(grid.metrics().counter("agg.resends").value, 1);
  // flush_put models 3 one-way messages; both wire attempts pay them.
  EXPECT_EQ(grid.hot().logical_messages->value, 3);
  EXPECT_EQ(grid.hot().messages->value, 6);
  EXPECT_EQ(grid.metrics()
                .counter("comm.undeliverable", {{"path", "agg"}})
                .value,
            1);
  grid.set_fault_plan(nullptr);
}

}  // namespace
}  // namespace pgb
