// Tests for Apply (paper Listings 2-3): both versions must compute the
// same result on any grid; their *modeled* performance must differ the
// way Fig 1 shows.
#include <gtest/gtest.h>

#include "core/apply.hpp"
#include "core/ops.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"

namespace pgb {
namespace {

class ApplyGrids : public ::testing::TestWithParam<int> {};

TEST_P(ApplyGrids, V1AndV2ComputeSameResult) {
  const int nloc = GetParam();
  auto g1 = LocaleGrid::square(nloc, 4);
  auto g2 = LocaleGrid::square(nloc, 4);
  auto x1 = random_dist_sparse_vec<double>(g1, 5000, 777, 1);
  auto x2 = random_dist_sparse_vec<double>(g2, 5000, 777, 1);

  apply_v1(x1, [](double v) { return 2 * v + 1; });
  apply_v2(x2, [](double v) { return 2 * v + 1; });

  auto a = x1.to_local();
  auto b = x2.to_local();
  ASSERT_EQ(a.nnz(), b.nnz());
  for (Index p = 0; p < a.nnz(); ++p) {
    EXPECT_EQ(a.index_at(p), b.index_at(p));
    EXPECT_DOUBLE_EQ(a.value_at(p), b.value_at(p));
  }
}

TEST_P(ApplyGrids, ValuesActuallyTransformed) {
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto x = random_dist_sparse_vec<double>(grid, 2000, 300, 5);
  auto before = x.to_local();
  apply_v2(x, NegateOp{});
  auto after = x.to_local();
  for (Index p = 0; p < before.nnz(); ++p) {
    EXPECT_DOUBLE_EQ(after.value_at(p), -before.value_at(p));
  }
  EXPECT_TRUE(x.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Grids, ApplyGrids, ::testing::Values(1, 2, 4, 9));

TEST(Apply, PreservesPattern) {
  auto grid = LocaleGrid::square(4, 2);
  auto x = random_dist_sparse_vec<double>(grid, 1000, 100, 2);
  const Index before = x.nnz();
  apply_v1(x, ScaleOp<double>{3.0});
  EXPECT_EQ(x.nnz(), before);
}

TEST(Apply, EmptyVectorIsFine) {
  auto grid = LocaleGrid::square(4, 2);
  DistSparseVec<double> x(grid, 100);
  apply_v1(x, NegateOp{});
  apply_v2(x, NegateOp{});
  EXPECT_EQ(x.nnz(), 0);
}

TEST(Apply, MatrixApplyTransformsAllBlocks) {
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<double>(grid, 100, 4.0, 3);
  apply_matrix(a, ScaleOp<double>{10.0});
  auto local = a.to_local();
  for (double v : local.values()) EXPECT_DOUBLE_EQ(v, 10.0);
}

// ---- modeled-performance shape (Fig 1) ----

TEST(ApplyModel, SharedMemoryBothVersionsScale) {
  // 1 locale: both implementations are local parallel loops. Paper size
  // (10M nonzeros) so spawn overhead amortizes as in Fig 1 left.
  const Index nnz = 10000000;
  auto t = [&](int threads, auto fn) {
    auto g = LocaleGrid::single(threads);
    auto x = random_dist_sparse_vec<double>(g, 2 * nnz, nnz, 1);
    g.reset();
    fn(x);
    return g.time();
  };
  auto v1 = [](auto& x) { apply_v1(x, NegateOp{}); };
  auto v2 = [](auto& x) { apply_v2(x, NegateOp{}); };
  const double s1 = t(1, v1) / t(24, v1);
  const double s2 = t(1, v2) / t(24, v2);
  EXPECT_GT(s1, 10.0);  // near-perfect scaling in the paper (~20x)
  EXPECT_GT(s2, 10.0);
}

TEST(ApplyModel, DistributedV1OrdersOfMagnitudeSlower) {
  auto g = LocaleGrid::square(16, 24);
  const Index nnz = 100000;
  auto x = random_dist_sparse_vec<double>(g, 2 * nnz, nnz, 1);

  g.reset();
  apply_v2(x, NegateOp{});
  const double t2 = g.time();

  g.reset();
  apply_v1(x, NegateOp{});
  const double t1 = g.time();

  EXPECT_GT(t1 / t2, 100.0);  // Fig 1 right: ~3-4 orders of magnitude
}

TEST(ApplyModel, V2GetsFasterWithMoreLocales) {
  const Index nnz = 10000000;
  double prev = 1e30;
  for (int nloc : {1, 4, 16}) {
    auto g = LocaleGrid::square(nloc, 24);
    auto x = random_dist_sparse_vec<double>(g, 2 * nnz, nnz, 1);
    g.reset();
    apply_v2(x, NegateOp{});
    EXPECT_LT(g.time(), prev) << nloc << " locales";
    prev = g.time();
  }
}

}  // namespace
}  // namespace pgb
