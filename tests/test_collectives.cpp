// Tests for the modeled collectives (broadcast / allgather /
// reduce-scatter) and the collective communication mode of the
// distributed SpMSpV.
#include <gtest/gtest.h>

#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"
#include "runtime/collectives.hpp"

namespace pgb {
namespace {

TEST(Collectives, RowAndColMembers) {
  auto g = LocaleGrid::square(8, 1);  // 2x4
  EXPECT_EQ(row_members(g, 0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(row_members(g, 1), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(col_members(g, 2), (std::vector<int>{2, 6}));
  EXPECT_THROW(row_members(g, 2), InvalidArgument);
  EXPECT_THROW(col_members(g, 4), InvalidArgument);
}

TEST(Collectives, BroadcastSynchronizesMembers) {
  auto g = LocaleGrid::square(16, 1);
  auto members = row_members(g, 0);
  g.clock(members[1]).advance(1e-3);  // a straggler
  broadcast(g, members, 0, 1 << 20, CollectiveAlgo::kTree);
  // All members end at the same time, at or after the straggler.
  const double t = g.clock(members[0]).now();
  EXPECT_GE(t, 1e-3);
  for (int m : members) EXPECT_DOUBLE_EQ(g.clock(m).now(), t);
  // Non-members untouched.
  EXPECT_DOUBLE_EQ(g.clock(15).now(), 0.0);
}

TEST(Collectives, TreeBeatsSerialSends) {
  for (int nloc : {4, 16, 64}) {
    auto g1 = LocaleGrid::square(nloc, 1);
    auto g2 = LocaleGrid::square(nloc, 1);
    std::vector<int> all1(static_cast<std::size_t>(nloc));
    for (int i = 0; i < nloc; ++i) all1[static_cast<std::size_t>(i)] = i;
    auto all2 = all1;

    broadcast(g1, all1, 0, 1 << 20, CollectiveAlgo::kSerialSends);
    broadcast(g2, all2, 0, 1 << 20, CollectiveAlgo::kTree);
    EXPECT_LT(g2.time(), g1.time()) << nloc << " members (broadcast)";

    g1.reset();
    g2.reset();
    allgather(g1, all1, 1 << 16, CollectiveAlgo::kSerialSends);
    allgather(g2, all2, 1 << 16, CollectiveAlgo::kTree);
    EXPECT_LT(g2.time(), g1.time()) << nloc << " members (allgather)";

    g1.reset();
    g2.reset();
    reduce_scatter(g1, all1, 1 << 20, CollectiveAlgo::kSerialSends);
    reduce_scatter(g2, all2, 1 << 20, CollectiveAlgo::kTree);
    EXPECT_LT(g2.time(), g1.time()) << nloc << " members (reduce_scatter)";
  }
}

TEST(Collectives, SingletonGroupIsFree) {
  auto g = LocaleGrid::single(1);
  broadcast(g, {0}, 0, 1 << 20, CollectiveAlgo::kTree);
  allgather(g, {0}, 1 << 20, CollectiveAlgo::kTree);
  reduce_scatter(g, {0}, 1 << 20, CollectiveAlgo::kTree);
  EXPECT_DOUBLE_EQ(g.time(), 0.0);
}

TEST(Collectives, BroadcastScalesLogarithmically) {
  auto run = [](int nloc) {
    auto g = LocaleGrid::square(nloc, 1);
    std::vector<int> all(static_cast<std::size_t>(nloc));
    for (int i = 0; i < nloc; ++i) all[static_cast<std::size_t>(i)] = i;
    broadcast(g, all, 0, 1 << 22, CollectiveAlgo::kTree);
    return g.time();
  };
  // 64 members: 6 rounds; 4 members: 2 rounds.
  EXPECT_NEAR(run(64) / run(4), 3.0, 0.2);
}

class CollectiveSpmspv : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSpmspv, SameResultAsFineGrained) {
  const Index n = 500;
  auto grid = LocaleGrid::square(GetParam(), 4);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 6.0, 11);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, 80, 12);
  const auto sr = arithmetic_semiring<std::int64_t>();

  auto fine = spmspv_dist(a, x, sr);
  SpmspvOptions copt;
  copt.use_collectives = true;
  auto coll = spmspv_dist(a, x, sr, copt);
  auto f = fine.to_local();
  auto c = coll.to_local();
  ASSERT_EQ(f.nnz(), c.nnz());
  for (Index p = 0; p < f.nnz(); ++p) {
    EXPECT_EQ(f.index_at(p), c.index_at(p));
    EXPECT_EQ(f.value_at(p), c.value_at(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, CollectiveSpmspv,
                         ::testing::Values(1, 4, 6, 9, 16));

TEST(CollectiveSpmspvModel, CollectivesBeatEvenBulk) {
  const Index n = 1000000;
  auto grid = LocaleGrid::square(64, 24);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 16.0, 5);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, n / 50, 6);
  const auto sr = arithmetic_semiring<std::int64_t>();

  grid.reset();
  spmspv_dist(a, x, sr);
  const double fine = grid.time();

  SpmspvOptions bulk;
  bulk.bulk_gather = true;
  bulk.bulk_scatter = true;
  grid.reset();
  spmspv_dist(a, x, sr, bulk);
  const double t_bulk = grid.time();

  SpmspvOptions coll;
  coll.use_collectives = true;
  grid.reset();
  spmspv_dist(a, x, sr, coll);
  const double t_coll = grid.time();

  EXPECT_LT(t_bulk, fine);
  EXPECT_LT(t_coll, t_bulk);
}

}  // namespace
}  // namespace pgb
