// Tests for the observability subsystem (src/obs): the metrics registry
// units, snapshot algebra, the simulated-time trace session and its
// Chrome trace exporter, the RAII span scopes, and the contract that the
// registry is the runtime's single bookkeeping path — CommStats is a
// view over it, phase spans tile each locale's modeled timeline, and a
// grid reset leaves every layer (clocks, stats, trace, late aggregator
// flushes) coherently in the new epoch.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "runtime/aggregator.hpp"
#include "runtime/locale_grid.hpp"

namespace pgb {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::TraceSession;

// ---------------------------------------------------------------------
// Metrics units
// ---------------------------------------------------------------------

TEST(Metrics, MetricKeySortsLabels) {
  EXPECT_EQ(obs::metric_key("comm.messages", {}), "comm.messages");
  EXPECT_EQ(obs::metric_key("comm.messages", {{"path", "bulk"}}),
            "comm.messages{path=bulk}");
  EXPECT_EQ(obs::metric_key("x", {{"b", "2"}, {"a", "1"}}), "x{a=1,b=2}");
}

TEST(Metrics, CounterHandlesAreStableAcrossRegistrations) {
  MetricsRegistry reg;
  obs::Counter& a = reg.counter("a");
  a.inc(3);
  // Registering more metrics must not invalidate the handle.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler", {{"i", std::to_string(i)}});
  }
  a.inc(4);
  EXPECT_EQ(reg.snapshot().counter("a"), 7);
  // Same name+labels resolves to the same counter.
  EXPECT_EQ(&reg.counter("a"), &a);
}

TEST(Metrics, HistogramBucketsByPowerOfTwo) {
  Histogram h;
  h.observe(0);   // bucket 0
  h.observe(1);   // bucket 1
  h.observe(3);   // bucket 2 (bound 3)
  h.observe(100); // bucket 7 (bound 127)
  EXPECT_EQ(h.count, 4);
  EXPECT_EQ(h.sum, 104);
  EXPECT_DOUBLE_EQ(h.mean(), 26.0);
  EXPECT_EQ(h.buckets[0], 1);
  EXPECT_EQ(h.buckets[1], 1);
  EXPECT_EQ(h.buckets[2], 1);
  EXPECT_EQ(h.buckets[7], 1);
  EXPECT_EQ(h.quantile_bound(0.25), 0);
  EXPECT_EQ(h.quantile_bound(0.5), 1);
  EXPECT_EQ(h.quantile_bound(1.0), 127);
}

TEST(Metrics, SnapshotDiffAndMerge) {
  MetricsRegistry reg;
  reg.counter("c").inc(10);
  reg.gauge("g").set(1.5);
  reg.histogram("h").observe(4);
  const MetricsSnapshot before = reg.snapshot();

  reg.counter("c").inc(5);
  reg.gauge("g").set(2.5);
  reg.histogram("h").observe(8);
  const MetricsSnapshot after = reg.snapshot();

  const MetricsSnapshot d = MetricsSnapshot::diff(after, before);
  EXPECT_EQ(d.counter("c"), 5);
  EXPECT_DOUBLE_EQ(d.values.at("g").gauge, 2.5);  // gauges keep `after`
  EXPECT_EQ(d.values.at("h").hist_count, 1);

  MetricsSnapshot m = before;
  m.merge(d);
  EXPECT_EQ(m.counter("c"), 15);
  EXPECT_EQ(m.values.at("h").hist_count, 2);
}

TEST(Metrics, ResetZeroesButKeepsHandles) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  c.inc(42);
  reg.reset();
  EXPECT_EQ(c.value, 0);
  c.inc(1);
  EXPECT_EQ(reg.snapshot().counter("c"), 1);
}

TEST(Metrics, JsonEscapesAndRendersKinds) {
  MetricsRegistry reg;
  reg.counter("weird\"name\\").inc(1);
  reg.gauge("g").set(0.5);
  reg.histogram("h").observe(2);
  const std::string j = reg.json();
  EXPECT_NE(j.find("\"weird\\\"name\\\\\""), std::string::npos);
  EXPECT_NE(j.find("\"kind\": \"gauge\""), std::string::npos);
  EXPECT_NE(j.find("\"kind\": \"histogram\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Trace session + exporter
// ---------------------------------------------------------------------

TEST(TraceSession, SpansNestLifoPerTrack) {
  TraceSession s;
  s.begin_span(0, "outer", 0.0);
  EXPECT_EQ(s.open_depth(0), 1);
  s.begin_span(0, "inner", 1.0);
  EXPECT_EQ(s.open_depth(0), 2);
  s.end_span(0, 2.0);
  s.end_span(0, 3.0);
  EXPECT_EQ(s.open_depth(0), 0);
  ASSERT_EQ(s.spans().size(), 2u);
  // Inner closes first, at depth 1; outer closes second, at depth 0.
  EXPECT_EQ(s.spans()[0].name, "inner");
  EXPECT_EQ(s.spans()[0].depth, 1);
  EXPECT_EQ(s.spans()[1].name, "outer");
  EXPECT_EQ(s.spans()[1].depth, 0);
  EXPECT_DOUBLE_EQ(s.spans()[1].sim_begin, 0.0);
  EXPECT_DOUBLE_EQ(s.spans()[1].sim_end, 3.0);
}

TEST(TraceSession, EndSpanAfterClearIsIgnored) {
  TraceSession s;
  s.begin_span(0, "phase", 0.0);
  s.clear();
  s.end_span(0, 1.0);  // no open span: must not crash or record
  EXPECT_TRUE(s.spans().empty());
  EXPECT_EQ(s.open_depth(0), 0);
}

TEST(TraceSession, TrackCoverageMeasuresTopLevelSpans) {
  TraceSession s;
  s.begin_span(0, "a", 0.0);
  s.end_span(0, 4.0);
  s.begin_span(0, "b", 6.0);
  s.end_span(0, 10.0);
  EXPECT_DOUBLE_EQ(s.track_end(0), 10.0);
  EXPECT_DOUBLE_EQ(s.track_coverage(0), 0.8);  // [0,4) + [6,10) of [0,10]
}

TEST(TraceSession, ChromeTraceJsonShape) {
  TraceSession s;
  s.begin_span(1, "phase \"q\"", 0.5, {{"k", "v"}});
  s.end_span(1, 1.5);
  s.instant(0, "tick", 0.25);
  const std::string j = s.chrome_trace_json();
  // Metadata: process name and one thread_name entry per track.
  EXPECT_NE(j.find("\"process_name\""), std::string::npos);
  EXPECT_NE(j.find("\"locale 0\""), std::string::npos);
  EXPECT_NE(j.find("\"locale 1\""), std::string::npos);
  // The complete event: ts in simulated µs, escaped name, user arg.
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j.find("\"phase \\\"q\\\"\""), std::string::npos);
  EXPECT_NE(j.find("\"ts\":500000.000000"), std::string::npos);
  EXPECT_NE(j.find("\"dur\":1000000.000000"), std::string::npos);
  EXPECT_NE(j.find("\"k\":\"v\""), std::string::npos);
  // The instant event.
  EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos);
  // Balanced braces/brackets — cheap structural validity check.
  std::int64_t braces = 0, brackets = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < j.size(); ++i) {
    const char ch = j[i];
    if (in_str) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_str = false;
      continue;
    }
    if (ch == '"') in_str = true;
    else if (ch == '{') ++braces;
    else if (ch == '}') --braces;
    else if (ch == '[') ++brackets;
    else if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceSession, WriteChromeTraceRoundTrips) {
  TraceSession s;
  s.begin_span(0, "a", 0.0);
  s.end_span(0, 1.0);
  const std::string path = "test_obs_trace_out.json";
  s.write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), s.chrome_trace_json());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// RAII scopes over the grid
// ---------------------------------------------------------------------

TEST(Spans, NoSessionMeansNoRecording) {
  auto g = LocaleGrid::square(4, 1);
  {
    PGB_TRACE_SPAN(g, "phase");
    LocaleCtx ctx(g, 0);
    PGB_TRACE_CTX_SPAN(ctx, "step");
    obs::trace_instant(ctx, "tick");
  }
  // Nothing to assert beyond "does not crash": with no session attached
  // every scope is a null check.
  SUCCEED();
}

TEST(Spans, GridSpanRecordsOneSpanPerLocaleWithCommDelta) {
  auto g = LocaleGrid::square(4, 1);
  TraceSession s;
  g.set_trace_session(&s);
  {
    obs::GridSpan span(g, "phase");
    LocaleCtx ctx(g, 0);
    ctx.remote_bulk(1, 1000);
  }
  ASSERT_EQ(s.spans().size(), 4u);
  for (const auto& sp : s.spans()) {
    EXPECT_EQ(sp.name, "phase");
    EXPECT_GE(sp.sim_end, sp.sim_begin);
    // The comm delta of the phase rides on the span args.
    std::string d_msgs, d_bytes;
    for (const auto& a : sp.args) {
      if (a.key == "d_messages") d_msgs = a.value;
      if (a.key == "d_bytes") d_bytes = a.value;
    }
    EXPECT_EQ(d_msgs, "1");
    EXPECT_EQ(d_bytes, "1000");
  }
}

TEST(Spans, ScopeSurvivingResetClosesSilently) {
  auto g = LocaleGrid::square(4, 1);
  TraceSession s;
  g.set_trace_session(&s);
  {
    obs::GridSpan span(g, "phase");
    g.reset();  // clears the session and bumps the epoch mid-span
  }
  EXPECT_TRUE(s.spans().empty());
  // The new epoch is untouched: no half-open spans, fresh recording works.
  for (int l = 0; l < g.num_locales(); ++l) EXPECT_EQ(s.open_depth(l), 0);
  {
    obs::GridSpan span(g, "fresh");
  }
  EXPECT_EQ(s.spans().size(), 4u);
}

// ---------------------------------------------------------------------
// Grid reset coherence (clocks, stats, metrics, trace, aggregators)
// ---------------------------------------------------------------------

TEST(GridReset, ClearsClocksStatsMetricsAndTraceTogether) {
  auto g = LocaleGrid::square(4, 1);
  TraceSession s;
  g.set_trace_session(&s);
  const std::uint64_t e0 = g.epoch();
  {
    obs::GridSpan span(g, "phase");
    LocaleCtx ctx(g, 0);
    ctx.remote_bulk(1, 512);
    ctx.remote_rt(2, 8);
  }
  EXPECT_GT(g.time(), 0.0);
  EXPECT_EQ(g.comm_stats().messages, 3);
  EXPECT_FALSE(s.spans().empty());

  g.reset();
  EXPECT_EQ(g.epoch(), e0 + 1);
  EXPECT_DOUBLE_EQ(g.time(), 0.0);
  EXPECT_EQ(g.comm_stats().messages, 0);
  EXPECT_EQ(g.comm_stats().bytes, 0);
  EXPECT_EQ(g.metrics().snapshot().counter("comm.messages"), 0);
  EXPECT_TRUE(s.spans().empty());
  EXPECT_TRUE(g.trace().phases().empty());
}

TEST(GridReset, LateAggregatorFlushDoesNotChargeNewEpoch) {
  auto g = LocaleGrid::square(4, 1);
  std::vector<int> sink;
  {
    LocaleCtx ctx(g, 0);
    DstAggregator<int> agg(ctx, [&](int, std::vector<int>& b) {
      sink.insert(sink.end(), b.begin(), b.end());
    });
    agg.push(1, 7);
    agg.push(3, 9);
    g.reset();  // epoch bump while the aggregator still holds data
  }             // destructor flush fires here, in the old epoch
  // Data delivery is a correctness matter and still happens...
  EXPECT_EQ(sink, (std::vector<int>{7, 9}));
  // ...but no modeled time or stats leak into the fresh epoch.
  EXPECT_DOUBLE_EQ(g.time(), 0.0);
  EXPECT_EQ(g.comm_stats().messages, 0);
  EXPECT_EQ(g.comm_stats().agg_flushes, 0);
  EXPECT_EQ(g.metrics().snapshot().counter("agg.flushes"), 0);
}

// ---------------------------------------------------------------------
// Registry as the single bookkeeping path
// ---------------------------------------------------------------------

/// comm.messages{path=*} family must sum to the comm.messages total.
void expect_path_family_sums_to_total(const MetricsSnapshot& snap) {
  std::int64_t family = 0;
  for (const auto& [key, val] : snap.values) {
    if (key.rfind("comm.messages{", 0) == 0) family += val.counter;
  }
  EXPECT_EQ(family, snap.counter("comm.messages"));
}

TEST(MetricsWiring, CommStatsEqualsRegistryAcrossSchedules) {
  const Index n = 4000;
  for (CommMode mode :
       {CommMode::kFine, CommMode::kBulk, CommMode::kAggregated}) {
    auto g = LocaleGrid::square(16, 4);
    auto a = erdos_renyi_dist<double>(g, n, 8.0, 5);
    auto x = random_dist_sparse_vec<double>(g, n, n / 20, 6);
    g.reset();
    SpmspvOptions opt;
    opt.comm = mode;
    auto y = spmspv_dist(a, x, arithmetic_semiring<double>(), opt);
    EXPECT_GT(y.nnz(), 0);

    const CommStats cs = g.comm_stats();
    const MetricsSnapshot snap = g.metrics().snapshot();
    EXPECT_EQ(cs.messages, snap.counter("comm.messages"));
    EXPECT_EQ(cs.bytes, snap.counter("comm.bytes"));
    EXPECT_EQ(cs.bulks, snap.counter("comm.bulks"));
    EXPECT_EQ(cs.agg_flushes, snap.counter("agg.flushes"));
    EXPECT_GT(cs.messages, 0);
    expect_path_family_sums_to_total(snap);

    // Per-phase attribution partitions the kernel's total.
    EXPECT_EQ(snap.counter("spmspv.messages{phase=gather}") +
                  snap.counter("spmspv.messages{phase=scatter}"),
              cs.messages);
    EXPECT_EQ(snap.counter("spmspv.bytes{phase=gather}") +
                  snap.counter("spmspv.bytes{phase=scatter}"),
              cs.bytes);
    EXPECT_EQ(snap.counter("kernel.calls{kernel=spmspv_dist}"), 1);
    if (mode == CommMode::kAggregated) {
      EXPECT_GT(cs.agg_flushes, 0);
      EXPECT_GT(snap.counter("agg.messages"), 0);
      EXPECT_LE(snap.counter("agg.messages"), cs.messages);
      EXPECT_EQ(snap.counter("comm.messages{path=agg}"),
                snap.counter("agg.messages"));
      const auto& occ = snap.values.at("agg.occupancy{dir=put}");
      EXPECT_GT(occ.hist_count, 0);
    }
  }
}

TEST(MetricsWiring, AggregatorPublishesOccupancyAndBytes) {
  auto g = LocaleGrid::square(4, 1);
  LocaleCtx ctx(g, 0);
  AggConfig cfg;
  cfg.capacity = 8;
  DstAggregator<std::int64_t> agg(ctx, [](int, std::vector<std::int64_t>&) {},
                                  cfg);
  for (int i = 0; i < 16; ++i) agg.push(1, i);
  agg.flush_all();
  const MetricsSnapshot snap = g.metrics().snapshot();
  EXPECT_EQ(snap.counter("agg.flushes"), 2);
  EXPECT_EQ(snap.counter("agg.bytes"),
            16 * static_cast<std::int64_t>(sizeof(std::int64_t)));
  const auto& occ = snap.values.at("agg.occupancy{dir=put}");
  EXPECT_EQ(occ.hist_count, 2);  // two full flushes of 8 elements
  EXPECT_EQ(occ.hist_sum, 16);
}

// ---------------------------------------------------------------------
// The Fig-8 acceptance run: 64 locales, aggregated SpMSpV, full trace
// ---------------------------------------------------------------------

TEST(TraceAcceptance, Fig8RunCoversEveryLocaleTimeline) {
  const Index n = 40000;
  auto g = LocaleGrid::square(64, 4);
  TraceSession session;
  g.set_trace_session(&session);
  auto a = erdos_renyi_dist<double>(g, n, 8.0, 5);
  auto x = random_dist_sparse_vec<double>(g, n, n / 50, 6);
  g.reset();  // trace covers exactly the kernel

  SpmspvOptions opt;
  opt.comm = CommMode::kAggregated;
  auto y = spmspv_dist(a, x, arithmetic_semiring<double>(), opt);
  EXPECT_GT(y.nnz(), 0);

  // One track per locale.
  EXPECT_EQ(session.num_tracks(), 64);

  // Every span closed, simulated time well-formed and monotone per
  // track at every nesting depth.
  std::vector<double> last_end(64, 0.0);
  std::vector<std::vector<const obs::SpanEvent*>> by_track(64);
  for (const auto& sp : session.spans()) {
    ASSERT_GE(sp.track, 0);
    ASSERT_LT(sp.track, 64);
    EXPECT_GE(sp.sim_end, sp.sim_begin);
    EXPECT_GE(sp.wall_end_us, sp.wall_begin_us);
    by_track[static_cast<std::size_t>(sp.track)].push_back(&sp);
  }
  for (int l = 0; l < 64; ++l) {
    EXPECT_EQ(session.open_depth(l), 0);
    ASSERT_FALSE(by_track[static_cast<std::size_t>(l)].empty());
    // Depth-0 spans must not overlap and must advance monotonically.
    double prev_end = 0.0;
    for (const auto* sp : by_track[static_cast<std::size_t>(l)]) {
      if (sp->depth != 0) continue;
      EXPECT_GE(sp->sim_begin, prev_end - 1e-12);
      prev_end = sp->sim_end;
    }
    // The acceptance bar: top-level spans explain >= 95% of the
    // locale's modeled timeline.
    EXPECT_GE(session.track_coverage(l), 0.95)
        << "locale " << l << " timeline has unexplained gaps";
    EXPECT_NEAR(session.track_end(l), g.clock(l).now(), 1e-9);
  }

  // The three kernel phases appear on every track.
  for (const char* phase : {"spmspv.gather", "spmspv.local",
                            "spmspv.scatter"}) {
    int tracks_with = 0;
    for (int l = 0; l < 64; ++l) {
      for (const auto* sp : by_track[static_cast<std::size_t>(l)]) {
        if (sp->name == phase) {
          ++tracks_with;
          break;
        }
      }
    }
    EXPECT_EQ(tracks_with, 64) << phase;
  }
}

}  // namespace
}  // namespace pgb
