// Tests for Matrix Market I/O: parsing of the supported header
// variants, symmetric expansion, pattern matrices, round trips, and
// error handling on malformed input.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/matrix_market.hpp"

namespace pgb {
namespace {

TEST(MatrixMarket, ParsesGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "\n"
      "3 4 3\n"
      "1 1 1.5\n"
      "2 3 -2\n"
      "3 4 0.25\n");
  MatrixMarketInfo info;
  auto m = read_matrix_market(in, &info).to_csr();
  EXPECT_EQ(info.nrows, 3);
  EXPECT_EQ(info.ncols, 4);
  EXPECT_EQ(info.entries, 3);
  EXPECT_FALSE(info.symmetric);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(*m.find(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(*m.find(1, 2), -2.0);
  EXPECT_DOUBLE_EQ(*m.find(2, 3), 0.25);
}

TEST(MatrixMarket, SymmetricMirrorsOffDiagonal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "2 1 5\n"
      "3 1 7\n"
      "2 2 9\n");
  auto m = read_matrix_market(in).to_csr();
  EXPECT_EQ(m.nnz(), 5);  // two mirrored + diagonal kept once
  EXPECT_DOUBLE_EQ(*m.find(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(*m.find(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(*m.find(0, 2), 7.0);
  EXPECT_DOUBLE_EQ(*m.find(1, 1), 9.0);
}

TEST(MatrixMarket, PatternGetsUnitValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  MatrixMarketInfo info;
  auto m = read_matrix_market(in, &info).to_csr();
  EXPECT_TRUE(info.pattern);
  EXPECT_DOUBLE_EQ(*m.find(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(*m.find(1, 0), 1.0);
}

TEST(MatrixMarket, IntegerField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "2 2 42\n");
  auto m = read_matrix_market(in).to_csr();
  EXPECT_DOUBLE_EQ(*m.find(1, 1), 42.0);
}

TEST(MatrixMarket, RejectsMalformedInput) {
  auto expect_throw = [](const std::string& text) {
    std::istringstream in(text);
    EXPECT_THROW(read_matrix_market(in), Error) << text;
  };
  expect_throw("");
  expect_throw("not a banner\n1 1 0\n");
  expect_throw("%%MatrixMarket matrix array real general\n2 2 4\n");
  expect_throw("%%MatrixMarket matrix coordinate complex general\n1 1 1\n");
  expect_throw("%%MatrixMarket matrix coordinate real general\n");
  expect_throw(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
  expect_throw(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
}

TEST(MatrixMarket, FileRoundTrip) {
  Coo<double> coo(5, 7);
  coo.add(0, 6, 1.25);
  coo.add(4, 0, -3.5);
  coo.add(2, 2, 9.0);
  auto m = coo.to_csr();

  const std::string path = "/tmp/pgb_mm_roundtrip.mtx";
  write_matrix_market(path, m);
  auto back = read_matrix_market_csr(path);
  std::remove(path.c_str());

  ASSERT_EQ(back.nnz(), m.nnz());
  EXPECT_EQ(back.nrows(), 5);
  EXPECT_EQ(back.ncols(), 7);
  EXPECT_DOUBLE_EQ(*back.find(0, 6), 1.25);
  EXPECT_DOUBLE_EQ(*back.find(4, 0), -3.5);
  EXPECT_DOUBLE_EQ(*back.find(2, 2), 9.0);
}

TEST(MatrixMarket, DistributedReadMatchesLocal) {
  const std::string path = "/tmp/pgb_mm_dist.mtx";
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n"
        << "10 10 4\n"
        << "1 1 1\n10 10 2\n1 10 3\n10 1 4\n";
  }
  auto grid = LocaleGrid::square(4, 1);
  auto dist = read_matrix_market_dist(grid, path);
  auto local = read_matrix_market_csr(path);
  std::remove(path.c_str());
  EXPECT_EQ(dist.nnz(), local.nnz());
  EXPECT_TRUE(dist.check_invariants());
  // Corners land on the four different blocks.
  EXPECT_EQ(dist.block(0).csr.nnz(), 1);
  EXPECT_EQ(dist.block(1).csr.nnz(), 1);
  EXPECT_EQ(dist.block(2).csr.nnz(), 1);
  EXPECT_EQ(dist.block(3).csr.nnz(), 1);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_csr("/nonexistent/nope.mtx"), Error);
}

}  // namespace
}  // namespace pgb
