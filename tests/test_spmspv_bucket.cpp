// Tests for the bucket (work-efficient) SpMSpV algorithm: exact
// agreement with the SPA+sort algorithm across sizes, densities and
// semirings, sorted output, and the modeled advantage (no sort step).
#include <gtest/gtest.h>

#include <tuple>

#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"

namespace pgb {
namespace {

using Param = std::tuple<Index, double, double>;

class BucketSweep : public ::testing::TestWithParam<Param> {};

TEST_P(BucketSweep, AgreesWithSpaSort) {
  const auto [n, d, f] = GetParam();
  auto a = erdos_renyi_csr<std::int64_t>(n, d, 7);
  auto x = random_sparse_vec<std::int64_t>(
      n, static_cast<Index>(f * static_cast<double>(n)), 8);
  const auto sr = arithmetic_semiring<std::int64_t>();

  auto grid = LocaleGrid::single(4);
  LocaleCtx ctx(grid, 0);
  SpmspvOptions spa_opt;
  auto ref = spmspv_shm(ctx, a, 0, x, 0, n, sr, spa_opt);

  SpmspvOptions bkt_opt;
  bkt_opt.algo = SpmspvAlgo::kBucket;
  auto got = spmspv_shm(ctx, a, 0, x, 0, n, sr, bkt_opt);

  ASSERT_EQ(got.nnz(), ref.nnz());
  EXPECT_TRUE(is_sorted_ascending(got.domain().indices()));
  for (Index p = 0; p < ref.nnz(); ++p) {
    EXPECT_EQ(got.index_at(p), ref.index_at(p));
    EXPECT_EQ(got.value_at(p), ref.value_at(p));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BucketSweep,
    ::testing::Combine(::testing::Values<Index>(100, 4095, 4096, 4097,
                                                20000),
                       ::testing::Values(2.0, 12.0),
                       ::testing::Values(0.02, 0.3)));

TEST(Bucket, MinPlusSemiring) {
  const Index n = 3000;
  auto a = erdos_renyi_csr<std::int64_t>(n, 8.0, 5);
  auto x = random_sparse_vec<std::int64_t>(n, 200, 6);
  const auto sr = min_plus_semiring<std::int64_t>();
  auto grid = LocaleGrid::single(1);
  LocaleCtx ctx(grid, 0);
  SpmspvOptions bkt;
  bkt.algo = SpmspvAlgo::kBucket;
  auto ref = spmspv_shm(ctx, a, 0, x, 0, n, sr);
  auto got = spmspv_shm(ctx, a, 0, x, 0, n, sr, bkt);
  ASSERT_EQ(got.nnz(), ref.nnz());
  for (Index p = 0; p < ref.nnz(); ++p) {
    EXPECT_EQ(got.value_at(p), ref.value_at(p));
  }
}

TEST(Bucket, WorksInsideDistributedSpmspv) {
  const Index n = 600;
  auto grid = LocaleGrid::square(9, 2);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 6.0, 11);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, 80, 12);
  const auto sr = arithmetic_semiring<std::int64_t>();
  SpmspvOptions bkt;
  bkt.algo = SpmspvAlgo::kBucket;
  auto ref = spmspv_dist(a, x, sr);
  auto got = spmspv_dist(a, x, sr, bkt);
  auto r = ref.to_local();
  auto g = got.to_local();
  ASSERT_EQ(g.nnz(), r.nnz());
  for (Index p = 0; p < r.nnz(); ++p) {
    EXPECT_EQ(g.index_at(p), r.index_at(p));
    EXPECT_EQ(g.value_at(p), r.value_at(p));
  }
}

TEST(Bucket, EmptyInput) {
  auto a = erdos_renyi_csr<std::int64_t>(100, 4.0, 1);
  SparseVec<std::int64_t> x(100);
  auto grid = LocaleGrid::single(1);
  LocaleCtx ctx(grid, 0);
  SpmspvOptions bkt;
  bkt.algo = SpmspvAlgo::kBucket;
  auto y = spmspv_shm(ctx, a, 0, x, 0, 100,
                      arithmetic_semiring<std::int64_t>(), bkt);
  EXPECT_EQ(y.nnz(), 0);
}

TEST(BucketModel, NoSortStepAndFasterOverall) {
  const Index n = 1000000;
  auto a = erdos_renyi_csr<std::int64_t>(n, 16.0, 5);
  auto x = random_sparse_vec<std::int64_t>(n, n / 50, 6);
  const auto sr = arithmetic_semiring<std::int64_t>();

  auto grid = LocaleGrid::single(24);
  LocaleCtx ctx(grid, 0);
  Trace spa_trace;
  spmspv_shm(ctx, a, 0, x, 0, n, sr, {}, &spa_trace);
  const double t_spa = grid.time();

  grid.reset();
  LocaleCtx ctx2(grid, 0);
  Trace bkt_trace;
  SpmspvOptions bkt;
  bkt.algo = SpmspvAlgo::kBucket;
  spmspv_shm(ctx2, a, 0, x, 0, n, sr, bkt, &bkt_trace);
  const double t_bkt = grid.time();

  EXPECT_DOUBLE_EQ(bkt_trace.get("sort"), 0.0);
  EXPECT_GT(spa_trace.get("sort"), 0.0);
  EXPECT_LT(t_bkt, t_spa);
}

}  // namespace
}  // namespace pgb
