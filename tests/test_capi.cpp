// Tests for the GraphBLAS-style C bindings: object lifecycle, error
// codes at the boundary, and operation semantics against the C++ core.
#include <gtest/gtest.h>

#include <cfloat>
#include <vector>

#include "capi/pgb_graphblas.h"

namespace {

class CapiTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_EQ(pgb_init(4, 4), GrB_SUCCESS); }
  void TearDown() override { pgb_finalize(); }
};

TEST_F(CapiTest, MatrixLifecycleAndBuild) {
  GrB_Matrix m = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&m, 10, 12), GrB_SUCCESS);
  GrB_Index v = 0;
  EXPECT_EQ(GrB_Matrix_nrows(&v, m), GrB_SUCCESS);
  EXPECT_EQ(v, 10u);
  EXPECT_EQ(GrB_Matrix_ncols(&v, m), GrB_SUCCESS);
  EXPECT_EQ(v, 12u);

  const GrB_Index rows[] = {0, 9, 0};
  const GrB_Index cols[] = {0, 11, 0};
  const double vals[] = {1.5, 2.0, 0.5};
  ASSERT_EQ(GrB_Matrix_build(m, rows, cols, vals, 3), GrB_SUCCESS);
  EXPECT_EQ(GrB_Matrix_nvals(&v, m), GrB_SUCCESS);
  EXPECT_EQ(v, 2u);  // duplicate (0,0) summed
  double x = 0;
  EXPECT_EQ(GrB_Matrix_extractElement(&x, m, 0, 0), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(x, 2.0);
  EXPECT_EQ(GrB_Matrix_extractElement(&x, m, 5, 5), GrB_INVALID_VALUE);
  EXPECT_EQ(GrB_Matrix_extractElement(&x, m, 50, 5),
            GrB_INDEX_OUT_OF_BOUNDS);
  EXPECT_EQ(GrB_Matrix_free(&m), GrB_SUCCESS);
  EXPECT_EQ(m, nullptr);
}

TEST_F(CapiTest, VectorRoundTrip) {
  GrB_Vector u = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, 20), GrB_SUCCESS);
  const GrB_Index idx[] = {3, 17, 8};
  const double vals[] = {3.0, 17.0, 8.0};
  ASSERT_EQ(GrB_Vector_build(u, idx, vals, 3), GrB_SUCCESS);
  GrB_Index n = 0;
  EXPECT_EQ(GrB_Vector_nvals(&n, u), GrB_SUCCESS);
  EXPECT_EQ(n, 3u);

  double x = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&x, u, 17), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(x, 17.0);
  EXPECT_EQ(GrB_Vector_extractElement(&x, u, 4), GrB_INVALID_VALUE);

  ASSERT_EQ(GrB_Vector_setElement(u, 99.0, 4), GrB_SUCCESS);
  EXPECT_EQ(GrB_Vector_extractElement(&x, u, 4), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(x, 99.0);
  ASSERT_EQ(GrB_Vector_setElement(u, 1.0, 17), GrB_SUCCESS);  // overwrite
  EXPECT_EQ(GrB_Vector_extractElement(&x, u, 17), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(x, 1.0);

  GrB_Index out_idx[8];
  double out_vals[8];
  GrB_Index out_n = 8;
  ASSERT_EQ(GrB_Vector_extractTuples(out_idx, out_vals, &out_n, u),
            GrB_SUCCESS);
  EXPECT_EQ(out_n, 4u);
  EXPECT_EQ(out_idx[0], 3u);
  EXPECT_EQ(out_idx[3], 17u);
  GrB_Vector_free(&u);
}

TEST_F(CapiTest, ErrorCodesAtTheBoundary) {
  EXPECT_EQ(GrB_Matrix_new(nullptr, 3, 3), GrB_NULL_POINTER);
  GrB_Vector u = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, 5), GrB_SUCCESS);
  const GrB_Index bad_idx[] = {7};
  const double v[] = {1.0};
  EXPECT_EQ(GrB_Vector_build(u, bad_idx, v, 1), GrB_INDEX_OUT_OF_BOUNDS);
  const GrB_Index dup_idx[] = {1, 1};
  const double dup_v[] = {1.0, 2.0};
  EXPECT_EQ(GrB_Vector_build(u, dup_idx, dup_v, 2), GrB_INVALID_VALUE);
  EXPECT_EQ(GrB_Vector_setElement(u, 1.0, 10), GrB_INDEX_OUT_OF_BOUNDS);

  // Dimension mismatch surfaces as the right code.
  GrB_Vector w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&w, 6), GrB_SUCCESS);
  EXPECT_EQ(GrB_assign(w, u), GrB_DIMENSION_MISMATCH);
  GrB_Vector_free(&u);
  GrB_Vector_free(&w);
}

TEST_F(CapiTest, VxmComputesProduct) {
  // 3x3: path 0->1->2, x = e0 with value 5 on plus-times.
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, 3, 3), GrB_SUCCESS);
  const GrB_Index rows[] = {0, 1};
  const GrB_Index cols[] = {1, 2};
  const double vals[] = {2.0, 3.0};
  ASSERT_EQ(GrB_Matrix_build(a, rows, cols, vals, 2), GrB_SUCCESS);

  GrB_Vector u = nullptr, w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(u, 5.0, 0), GrB_SUCCESS);
  ASSERT_EQ(GrB_vxm(w, nullptr, PGB_MASK_NONE, PGB_PLUS_TIMES, u, a),
            GrB_SUCCESS);
  GrB_Index n = 0;
  EXPECT_EQ(GrB_Vector_nvals(&n, w), GrB_SUCCESS);
  EXPECT_EQ(n, 1u);
  double x = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&x, w, 1), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(x, 10.0);
  GrB_Matrix_free(&a);
  GrB_Vector_free(&u);
  GrB_Vector_free(&w);
}

TEST_F(CapiTest, MaskedVxmFiltersOutput) {
  GrB_Matrix a = nullptr;
  ASSERT_EQ(GrB_Matrix_new(&a, 4, 4), GrB_SUCCESS);
  const GrB_Index rows[] = {0, 0};
  const GrB_Index cols[] = {1, 2};
  const double vals[] = {1.0, 1.0};
  ASSERT_EQ(GrB_Matrix_build(a, rows, cols, vals, 2), GrB_SUCCESS);
  GrB_Vector u = nullptr, w = nullptr, mask = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&mask, 4), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(u, 0.0, 0), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(mask, 1.0, 1), GrB_SUCCESS);

  // Complement mask: index 1 excluded, index 2 kept.
  ASSERT_EQ(GrB_vxm(w, mask, PGB_MASK_COMPLEMENT, PGB_MIN_FIRST, u, a),
            GrB_SUCCESS);
  GrB_Index n = 0;
  EXPECT_EQ(GrB_Vector_nvals(&n, w), GrB_SUCCESS);
  EXPECT_EQ(n, 1u);
  double x = -1;
  EXPECT_EQ(GrB_Vector_extractElement(&x, w, 2), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(x, 0.0);
  GrB_Matrix_free(&a);
  GrB_Vector_free(&u);
  GrB_Vector_free(&w);
  GrB_Vector_free(&mask);
}

TEST_F(CapiTest, EwiseAndReduce) {
  GrB_Vector u = nullptr, v = nullptr, w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, 10), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&v, 10), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, 10), GrB_SUCCESS);
  const GrB_Index ui[] = {1, 4, 7};
  const double uv[] = {1, 4, 7};
  const GrB_Index vi[] = {4, 7, 9};
  const double vv[] = {40, 70, 90};
  ASSERT_EQ(GrB_Vector_build(u, ui, uv, 3), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_build(v, vi, vv, 3), GrB_SUCCESS);

  ASSERT_EQ(GrB_eWiseMult(w, PGB_PLUS, u, v), GrB_SUCCESS);
  GrB_Index n = 0;
  EXPECT_EQ(GrB_Vector_nvals(&n, w), GrB_SUCCESS);
  EXPECT_EQ(n, 2u);  // intersection {4, 7}
  double x = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&x, w, 4), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(x, 44.0);

  ASSERT_EQ(GrB_eWiseAdd(w, PGB_PLUS, u, v), GrB_SUCCESS);
  EXPECT_EQ(GrB_Vector_nvals(&n, w), GrB_SUCCESS);
  EXPECT_EQ(n, 4u);  // union {1, 4, 7, 9}

  double total = 0;
  EXPECT_EQ(GrB_reduce(&total, PGB_PLUS, w), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(total, 1 + 44 + 77 + 90);
  EXPECT_EQ(GrB_reduce(&total, PGB_MAX, w), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(total, 90.0);
  GrB_Vector_free(&u);
  GrB_Vector_free(&v);
  GrB_Vector_free(&w);
}

TEST_F(CapiTest, ApplyAndClock) {
  GrB_Vector u = nullptr, w = nullptr;
  ASSERT_EQ(GrB_Vector_new(&u, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_new(&w, 5), GrB_SUCCESS);
  ASSERT_EQ(GrB_Vector_setElement(u, 3.0, 2), GrB_SUCCESS);
  pgb_reset_clock();
  ASSERT_EQ(GrB_apply(w, PGB_NEGATE, u), GrB_SUCCESS);
  double x = 0;
  EXPECT_EQ(GrB_Vector_extractElement(&x, w, 2), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(x, -3.0);
  EXPECT_GT(pgb_elapsed_seconds(), 0.0);
  GrB_Vector_free(&u);
  GrB_Vector_free(&w);
}

TEST(CapiUninitialized, CallsFailCleanly) {
  // No pgb_init: object creation must refuse, not crash.
  GrB_Matrix m = nullptr;
  EXPECT_EQ(GrB_Matrix_new(&m, 3, 3), GrB_UNINITIALIZED_OBJECT);
  EXPECT_EQ(pgb_elapsed_seconds(), 0.0);
  EXPECT_EQ(pgb_finalize(), GrB_SUCCESS);
}

// ---------------------------------------------------------------------
// Graph service boundary
// ---------------------------------------------------------------------

namespace {

/// A ring matrix: vertex i points to i+1 (mod n), so BFS/SSSP from 0
/// have closed-form answers.
GrB_Matrix ring_matrix(GrB_Index n) {
  GrB_Matrix m = nullptr;
  EXPECT_EQ(GrB_Matrix_new(&m, n, n), GrB_SUCCESS);
  std::vector<GrB_Index> rows(n), cols(n);
  std::vector<double> vals(n, 1.0);
  for (GrB_Index i = 0; i < n; ++i) {
    rows[i] = i;
    cols[i] = (i + 1) % n;
  }
  EXPECT_EQ(GrB_Matrix_build(m, rows.data(), cols.data(), vals.data(), n),
            GrB_SUCCESS);
  return m;
}

}  // namespace

TEST_F(CapiTest, ServiceSubmitDrainPollRoundTrip) {
  ASSERT_EQ(pgb_service_open(8, 4), GrB_SUCCESS);
  GrB_Matrix m = ring_matrix(32);
  pgb_graph_handle_t h = -1;
  ASSERT_EQ(pgb_graph_load(&h, m), GrB_SUCCESS);
  uint64_t epoch = 0;
  EXPECT_EQ(pgb_graph_epoch(&epoch, h), GrB_SUCCESS);
  EXPECT_EQ(epoch, 1u);

  pgb_query_id_t bfs_id = -1, sssp_id = -1;
  ASSERT_EQ(pgb_query_submit(&bfs_id, h, PGB_QUERY_BFS, 0, 0, 0, 0),
            GrB_SUCCESS);
  ASSERT_EQ(pgb_query_submit(&sssp_id, h, PGB_QUERY_SSSP, 0, 0, 1, 0),
            GrB_SUCCESS);
  int done = 1;
  EXPECT_EQ(pgb_query_done(&done, bfs_id), GrB_SUCCESS);
  EXPECT_EQ(done, 0);
  // Result accessors refuse before the drain.
  int64_t parent = 0;
  EXPECT_EQ(pgb_query_bfs_parent(&parent, bfs_id, 2), GrB_INVALID_VALUE);

  ASSERT_EQ(pgb_service_drain(), GrB_SUCCESS);
  EXPECT_EQ(pgb_query_done(&done, bfs_id), GrB_SUCCESS);
  EXPECT_EQ(done, 1);
  EXPECT_EQ(pgb_query_bfs_parent(&parent, bfs_id, 2), GrB_SUCCESS);
  EXPECT_EQ(parent, 1);  // ring: parent of 2 is 1
  double dist = 0;
  EXPECT_EQ(pgb_query_sssp_dist(&dist, sssp_id, 5), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(dist, 5.0);  // five unit hops around the ring
  // Kind-mismatched accessor refuses.
  EXPECT_EQ(pgb_query_sssp_dist(&dist, bfs_id, 5), GrB_INVALID_VALUE);

  GrB_Matrix_free(&m);
  EXPECT_EQ(pgb_service_close(), GrB_SUCCESS);
}

TEST_F(CapiTest, ServiceQueueFullIsOutOfResources) {
  ASSERT_EQ(pgb_service_open(2, 4), GrB_SUCCESS);
  GrB_Matrix m = ring_matrix(16);
  pgb_graph_handle_t h = -1;
  ASSERT_EQ(pgb_graph_load(&h, m), GrB_SUCCESS);
  pgb_query_id_t id = -1;
  EXPECT_EQ(pgb_query_submit(&id, h, PGB_QUERY_BFS, 0, 0, 0, 0),
            GrB_SUCCESS);
  EXPECT_EQ(pgb_query_submit(&id, h, PGB_QUERY_BFS, 1, 0, 0, 0),
            GrB_SUCCESS);
  EXPECT_EQ(pgb_query_submit(&id, h, PGB_QUERY_BFS, 2, 0, 0, 0),
            GrB_OUT_OF_RESOURCES);
  // Draining frees capacity; the retry is admitted.
  ASSERT_EQ(pgb_service_drain(), GrB_SUCCESS);
  EXPECT_EQ(pgb_query_submit(&id, h, PGB_QUERY_BFS, 2, 0, 0, 0),
            GrB_SUCCESS);
  GrB_Matrix_free(&m);
}

TEST_F(CapiTest, ServiceInvalidHandlesAreInvalidObject) {
  ASSERT_EQ(pgb_service_open(8, 4), GrB_SUCCESS);
  GrB_Matrix m = ring_matrix(16);
  pgb_graph_handle_t h = -1;
  ASSERT_EQ(pgb_graph_load(&h, m), GrB_SUCCESS);

  pgb_query_id_t id = -1;
  // Unknown handle.
  EXPECT_EQ(pgb_query_submit(&id, 42, PGB_QUERY_BFS, 0, 0, 0, 0),
            GrB_INVALID_OBJECT);
  // Stale epoch pin: publish bumps to 2, a pin of 1 is stale.
  uint64_t epoch = 0;
  ASSERT_EQ(pgb_graph_publish(h, m, &epoch), GrB_SUCCESS);
  EXPECT_EQ(epoch, 2u);
  EXPECT_EQ(pgb_query_submit(&id, h, PGB_QUERY_BFS, 0, 0, 0, 1),
            GrB_INVALID_OBJECT);
  EXPECT_EQ(pgb_query_submit(&id, h, PGB_QUERY_BFS, 0, 0, 0, 2),
            GrB_SUCCESS);
  // Closed handle.
  ASSERT_EQ(pgb_graph_close(h), GrB_SUCCESS);
  EXPECT_EQ(pgb_query_submit(&id, h, PGB_QUERY_BFS, 0, 0, 0, 0),
            GrB_INVALID_OBJECT);
  EXPECT_EQ(pgb_graph_epoch(&epoch, h), GrB_INVALID_OBJECT);
  // The already-admitted query still drains against its snapshot.
  ASSERT_EQ(pgb_service_drain(), GrB_SUCCESS);
  GrB_Matrix_free(&m);
}

TEST_F(CapiTest, ServiceUnopenedRefusesCleanly) {
  pgb_graph_handle_t h = -1;
  GrB_Matrix m = ring_matrix(8);
  EXPECT_EQ(pgb_graph_load(&h, m), GrB_UNINITIALIZED_OBJECT);
  EXPECT_EQ(pgb_service_drain(), GrB_UNINITIALIZED_OBJECT);
  EXPECT_EQ(pgb_service_open(0, 4), GrB_INVALID_VALUE);
  GrB_Matrix_free(&m);
}

// ---------------------------------------------------------------------
// Resilience surface at the C boundary
// ---------------------------------------------------------------------

TEST_F(CapiTest, ServiceDeadlineExpiredIsTypedAndNeverYieldsResult) {
  ASSERT_EQ(pgb_service_open(8, 4), GrB_SUCCESS);
  GrB_Matrix m = ring_matrix(32);
  pgb_graph_handle_t h = -1;
  ASSERT_EQ(pgb_graph_load(&h, m), GrB_SUCCESS);

  // A deadline no BFS can meet: the query ends expired, not late.
  pgb_query_id_t id = -1;
  ASSERT_EQ(pgb_query_submit_ex(&id, h, PGB_QUERY_BFS, 0, 0, 0, 0, 1e-12,
                                nullptr),
            GrB_SUCCESS);
  int state = -1;
  EXPECT_EQ(pgb_query_state(&state, id), GrB_SUCCESS);
  EXPECT_EQ(state, 0);  // queued
  ASSERT_EQ(pgb_service_drain(), GrB_SUCCESS);
  EXPECT_EQ(pgb_query_state(&state, id), GrB_SUCCESS);
  EXPECT_EQ(state, 2);  // deadline-expired
  int done = -1;
  EXPECT_EQ(pgb_query_done(&done, id), GrB_SUCCESS);
  EXPECT_EQ(done, 0);  // an expired query never reads as done
  int64_t parent = 0;
  EXPECT_EQ(pgb_query_bfs_parent(&parent, id, 2), GrB_DEADLINE_EXPIRED);
  double dist = 0;
  EXPECT_EQ(pgb_query_sssp_dist(&dist, id, 2), GrB_DEADLINE_EXPIRED);

  // Negative deadline is a validation error, not a submit.
  EXPECT_EQ(pgb_query_submit_ex(&id, h, PGB_QUERY_BFS, 0, 0, 0, 0, -1.0,
                                nullptr),
            GrB_INVALID_VALUE);
  GrB_Matrix_free(&m);
}

TEST_F(CapiTest, ServiceQueueFullCarriesRetryAfter) {
  ASSERT_EQ(pgb_service_open(2, 4), GrB_SUCCESS);
  GrB_Matrix m = ring_matrix(16);
  pgb_graph_handle_t h = -1;
  ASSERT_EQ(pgb_graph_load(&h, m), GrB_SUCCESS);
  pgb_query_id_t id = -1;
  ASSERT_EQ(pgb_query_submit_ex(&id, h, PGB_QUERY_BFS, 0, 0, 0, 0, 0.0,
                                nullptr),
            GrB_SUCCESS);
  ASSERT_EQ(pgb_query_submit_ex(&id, h, PGB_QUERY_BFS, 1, 0, 0, 0, 0.0,
                                nullptr),
            GrB_SUCCESS);
  double retry_after = 0.0;
  EXPECT_EQ(pgb_query_submit_ex(&id, h, PGB_QUERY_BFS, 2, 0, 0, 0, 0.0,
                                &retry_after),
            GrB_OUT_OF_RESOURCES);
  EXPECT_GT(retry_after, 0.0);  // at least the floor
  // The hint's out-pointer is optional.
  EXPECT_EQ(pgb_query_submit_ex(&id, h, PGB_QUERY_BFS, 2, 0, 0, 0, 0.0,
                                nullptr),
            GrB_OUT_OF_RESOURCES);
  GrB_Matrix_free(&m);
}

TEST_F(CapiTest, ServiceTenantQuotaIsTenantThrottled) {
  // 10 qps sustained, burst of 1: the second same-instant submit from
  // one tenant is throttled; another tenant is unaffected.
  ASSERT_EQ(pgb_service_open_ex(8, 4, 10.0, 1.0, 0, 0.05), GrB_SUCCESS);
  GrB_Matrix m = ring_matrix(16);
  pgb_graph_handle_t h = -1;
  ASSERT_EQ(pgb_graph_load(&h, m), GrB_SUCCESS);
  pgb_query_id_t id = -1;
  EXPECT_EQ(pgb_query_submit_ex(&id, h, PGB_QUERY_BFS, 0, 0, 3, 0, 0.0,
                                nullptr),
            GrB_SUCCESS);
  EXPECT_EQ(pgb_query_submit_ex(&id, h, PGB_QUERY_BFS, 1, 0, 3, 0, 0.0,
                                nullptr),
            GrB_TENANT_THROTTLED);
  EXPECT_EQ(pgb_query_submit_ex(&id, h, PGB_QUERY_BFS, 1, 0, 4, 0, 0.0,
                                nullptr),
            GrB_SUCCESS);
  GrB_Matrix_free(&m);
}

TEST_F(CapiTest, ServiceBreakerTripsAndHealthReportsIt) {
  // Depth-1 queue, breaker_k=1: one queue-full failure trips tenant 0's
  // breaker; while open its submits are GrB_TENANT_THROTTLED and the
  // health snapshot counts one open breaker.
  ASSERT_EQ(pgb_service_open_ex(1, 4, 0.0, 8.0, 1, 1000.0), GrB_SUCCESS);
  GrB_Matrix m = ring_matrix(16);
  pgb_graph_handle_t h = -1;
  ASSERT_EQ(pgb_graph_load(&h, m), GrB_SUCCESS);
  pgb_query_id_t id = -1;
  ASSERT_EQ(pgb_query_submit_ex(&id, h, PGB_QUERY_BFS, 0, 0, 0, 0, 0.0,
                                nullptr),
            GrB_SUCCESS);
  EXPECT_EQ(pgb_query_submit_ex(&id, h, PGB_QUERY_BFS, 1, 0, 0, 0, 0.0,
                                nullptr),
            GrB_OUT_OF_RESOURCES);  // trips at K=1
  EXPECT_EQ(pgb_query_submit_ex(&id, h, PGB_QUERY_BFS, 1, 0, 0, 0, 0.0,
                                nullptr),
            GrB_TENANT_THROTTLED);
  int degraded = -1, open = -1;
  EXPECT_EQ(pgb_service_health(&degraded, &open), GrB_SUCCESS);
  EXPECT_EQ(degraded, 0);
  EXPECT_EQ(open, 1);
  EXPECT_EQ(pgb_service_health(nullptr, nullptr), GrB_SUCCESS);
  GrB_Matrix_free(&m);
}

TEST_F(CapiTest, ServiceReleaseRetiresRecords) {
  ASSERT_EQ(pgb_service_open(8, 4), GrB_SUCCESS);
  GrB_Matrix m = ring_matrix(16);
  pgb_graph_handle_t h = -1;
  ASSERT_EQ(pgb_graph_load(&h, m), GrB_SUCCESS);
  pgb_query_id_t id = -1;
  ASSERT_EQ(pgb_query_submit(&id, h, PGB_QUERY_BFS, 0, 0, 0, 0),
            GrB_SUCCESS);
  // Still queued: release refuses.
  EXPECT_EQ(pgb_query_release(id), GrB_INVALID_VALUE);
  ASSERT_EQ(pgb_service_drain(), GrB_SUCCESS);
  EXPECT_EQ(pgb_query_release(id), GrB_SUCCESS);
  // Unknown ids refuse cleanly.
  EXPECT_EQ(pgb_query_release(id + 100), GrB_INVALID_VALUE);
  GrB_Matrix_free(&m);
}

TEST_F(CapiTest, IngestStreamMutatesServedGraph) {
  ASSERT_EQ(pgb_service_open(4, 4), GrB_SUCCESS);
  GrB_Matrix m = ring_matrix(32);
  pgb_graph_handle_t h = -1;
  ASSERT_EQ(pgb_graph_load(&h, m), GrB_SUCCESS);

  // Ingest requires an open stream.
  uint64_t epoch = 0;
  EXPECT_EQ(pgb_ingest_publish(&epoch), GrB_UNINITIALIZED_OBJECT);
  EXPECT_EQ(pgb_ingest_open(h, 0), GrB_INVALID_VALUE);  // threshold >= 1
  ASSERT_EQ(pgb_ingest_open(h, 4096), GrB_SUCCESS);

  uint64_t hash_before = 0;
  ASSERT_EQ(pgb_ingest_stats(nullptr, nullptr, nullptr, &hash_before),
            GrB_SUCCESS);

  // Insert a chord and delete one ring edge, then publish.
  const GrB_Index rows[] = {0, 4};
  const GrB_Index cols[] = {16, 5};
  const double vals[] = {2.5, 0.0};
  const int ops[] = {0, 1};
  ASSERT_EQ(pgb_ingest_apply(2, rows, cols, vals, ops), GrB_SUCCESS);
  ASSERT_EQ(pgb_ingest_publish(&epoch), GrB_SUCCESS);
  EXPECT_EQ(epoch, 2u);

  int64_t batches = 0, deltas = 0, replays = 0;
  uint64_t hash_after = 0;
  ASSERT_EQ(pgb_ingest_stats(&batches, &deltas, &replays, &hash_after),
            GrB_SUCCESS);
  EXPECT_EQ(batches, 1);
  EXPECT_EQ(deltas, 2);
  EXPECT_EQ(replays, 0);
  EXPECT_NE(hash_after, hash_before);

  // The served graph reflects the mutation: SSSP from 0 now reaches 16
  // through the 2.5-weight chord, and vertex 5 lost its ring edge.
  pgb_query_id_t id = -1;
  ASSERT_EQ(pgb_query_submit(&id, h, PGB_QUERY_SSSP, 0, 0, 1, 0),
            GrB_SUCCESS);
  ASSERT_EQ(pgb_service_drain(), GrB_SUCCESS);
  double dist = 0;
  ASSERT_EQ(pgb_query_sssp_dist(&dist, id, 16), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(dist, 2.5);
  ASSERT_EQ(pgb_query_sssp_dist(&dist, id, 5), GrB_SUCCESS);
  EXPECT_DOUBLE_EQ(dist, DBL_MAX);  // the 4->5 edge was deleted

  // Bad batches refuse without touching the stream.
  EXPECT_EQ(pgb_ingest_apply(1, nullptr, cols, nullptr, nullptr),
            GrB_NULL_POINTER);
  EXPECT_EQ(pgb_ingest_apply(-1, rows, cols, nullptr, nullptr),
            GrB_INVALID_VALUE);

  EXPECT_EQ(pgb_ingest_close(), GrB_SUCCESS);
  EXPECT_EQ(pgb_ingest_publish(&epoch), GrB_UNINITIALIZED_OBJECT);
  GrB_Matrix_free(&m);
}

TEST_F(CapiTest, ServiceOpenExValidatesRanges) {
  EXPECT_EQ(pgb_service_open_ex(0, 4, 0.0, 8.0, 0, 0.05), GrB_INVALID_VALUE);
  EXPECT_EQ(pgb_service_open_ex(8, 0, 0.0, 8.0, 0, 0.05), GrB_INVALID_VALUE);
  EXPECT_EQ(pgb_service_open_ex(8, 4, -1.0, 8.0, 0, 0.05),
            GrB_INVALID_VALUE);
  EXPECT_EQ(pgb_service_open_ex(8, 4, 0.0, 0.5, 0, 0.05), GrB_INVALID_VALUE);
  EXPECT_EQ(pgb_service_open_ex(8, 4, 0.0, 8.0, -1, 0.05),
            GrB_INVALID_VALUE);
  EXPECT_EQ(pgb_service_open_ex(8, 4, 0.0, 8.0, 0, 0.0), GrB_INVALID_VALUE);
  EXPECT_EQ(pgb_service_open_ex(8, 4, 0.0, 8.0, 0, 0.05), GrB_SUCCESS);
}

}  // namespace
