// Tests for the query-scoped observability layer: per src->dst comm
// matrix conservation across the comm schedules, per-query trace tracks
// (span count, gapless lifecycle coverage, reset epoch guard), the
// structured service event log, and same-seed bit determinism of every
// export.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "algo/bfs.hpp"
#include "gen/erdos_renyi.hpp"
#include "service/service.hpp"

namespace pgb {
namespace {

std::shared_ptr<const DistCsr<double>> make_graph(LocaleGrid& grid, Index n,
                                                  double d,
                                                  std::uint64_t seed) {
  return std::make_shared<DistCsr<double>>(
      erdos_renyi_dist<double>(grid, n, d, seed));
}

/// Matrix totals must equal the comm.messages / comm.bytes counters —
/// the matrix is accumulated at exactly the funnel's two counting sites.
void expect_conserved(LocaleGrid& grid) {
  const CommStats cs = grid.comm_stats();
  EXPECT_EQ(grid.comm_matrix_total_messages(), cs.messages);
  EXPECT_EQ(grid.comm_matrix_total_bytes(), cs.bytes);
}

// ---------------------------------------------------------------------
// Comm matrix
// ---------------------------------------------------------------------

TEST(CommMatrixTest, ConservesAcrossCommSchedules) {
  for (const CommMode mode : {CommMode::kFine, CommMode::kBulk,
                              CommMode::kAggregated, CommMode::kAuto}) {
    auto grid = LocaleGrid::square(16, 4);
    grid.enable_comm_matrix();
    auto g = erdos_renyi_dist<double>(grid, 4000, 8.0, 7);
    SpmspvOptions opt;
    opt.comm = mode;
    (void)bfs(g, 0, opt);
    expect_conserved(grid);
    EXPECT_GT(grid.comm_matrix_total_messages(), 0);
  }
}

TEST(CommMatrixTest, DiagonalIsStructurallyZero) {
  auto grid = LocaleGrid::square(16, 4);
  grid.enable_comm_matrix();
  auto g = erdos_renyi_dist<double>(grid, 4000, 8.0, 7);
  (void)bfs(g, 0);
  for (int l = 0; l < grid.num_locales(); ++l) {
    EXPECT_EQ(grid.comm_matrix_messages(l, l), 0) << "locale " << l;
    EXPECT_EQ(grid.comm_matrix_bytes(l, l), 0) << "locale " << l;
  }
}

TEST(CommMatrixTest, SameSeedExportIsByteIdentical) {
  std::string first;
  for (int run = 0; run < 2; ++run) {
    auto grid = LocaleGrid::square(16, 4);
    grid.enable_comm_matrix();
    auto g = erdos_renyi_dist<double>(grid, 4000, 8.0, 7);
    SpmspvOptions opt;
    opt.comm = CommMode::kAggregated;
    (void)bfs(g, 0, opt);
    const std::string json = grid.comm_matrix_json();
    if (run == 0) {
      first = json;
    } else {
      EXPECT_EQ(json, first);
    }
  }
  EXPECT_NE(first.find("\"schema\":\"pgb.comm_matrix.v1\""),
            std::string::npos);
}

TEST(CommMatrixTest, ResetZeroesButKeepsEnabled) {
  auto grid = LocaleGrid::square(16, 4);
  grid.enable_comm_matrix();
  auto g = erdos_renyi_dist<double>(grid, 4000, 8.0, 7);
  (void)bfs(g, 0);
  ASSERT_GT(grid.comm_matrix_total_messages(), 0);
  grid.reset();
  EXPECT_TRUE(grid.comm_matrix_enabled());
  EXPECT_EQ(grid.comm_matrix_total_messages(), 0);
  EXPECT_EQ(grid.comm_matrix_total_bytes(), 0);
  // Accumulation resumes in the new epoch, still conserved.
  auto g2 = erdos_renyi_dist<double>(grid, 4000, 8.0, 7);
  (void)bfs(g2, 0);
  expect_conserved(grid);
}

TEST(CommMatrixTest, DegradedRemapChargesTheBuddyHostOnly) {
  auto grid = LocaleGrid::square(16, 4);
  auto g = erdos_renyi_dist<double>(grid, 4000, 8.0, 7);
  const int dead = 5;
  grid.remap_locale(dead, dead ^ 1);  // buddy host takes over
  grid.enable_comm_matrix();          // count only post-remap traffic
  auto& mx = grid.metrics();
  const std::int64_t m0 = mx.counter("comm.messages").value;
  const std::int64_t b0 = mx.counter("comm.bytes").value;
  (void)bfs(g, 0);
  // Post-remap delta conservation: the matrix saw exactly the counters'
  // growth, and the dead *host* neither sent nor received a message.
  EXPECT_EQ(grid.comm_matrix_total_messages(),
            mx.counter("comm.messages").value - m0);
  EXPECT_EQ(grid.comm_matrix_total_bytes(),
            mx.counter("comm.bytes").value - b0);
  for (int l = 0; l < grid.num_locales(); ++l) {
    EXPECT_EQ(grid.comm_matrix_messages(dead, l), 0) << "row " << l;
    EXPECT_EQ(grid.comm_matrix_messages(l, dead), 0) << "col " << l;
  }
  grid.restore_membership();
}

// ---------------------------------------------------------------------
// Per-query traces
// ---------------------------------------------------------------------

/// Runs a small served workload with a trace session attached; returns
/// the number of queries submitted.
int serve_traced(LocaleGrid& grid, obs::TraceSession& session,
                 GraphService& svc, GraphStore::HandleId h, int queries,
                 double deadline_s = 0.0) {
  (void)session;
  for (int i = 0; i < queries; ++i) {
    QuerySpec spec;
    spec.kind = QueryKind::kBfs;
    spec.source = static_cast<Index>((i * 37) % 4000);
    spec.tenant = i % 2;
    spec.deadline_s = deadline_s;
    svc.submit(h, spec, grid.time() + 1e-6 * i);
  }
  svc.drain();
  return queries;
}

TEST(QueryTraceTest, OneTrackPerAdmittedQueryAboveTheLocaleTracks) {
  auto grid = LocaleGrid::square(16, 4);
  obs::TraceSession session;
  grid.set_trace_session(&session);
  grid.reset();
  GraphService svc(grid, ServiceConfig{});
  const auto h = svc.store().load(make_graph(grid, 4000, 8.0, 7));
  const int queries = 6;
  serve_traced(grid, session, svc, h, queries);
  // Locale tracks stay reserved below; query tracks sit above them.
  EXPECT_EQ(session.num_tracks(), grid.num_locales() + queries);
  for (int q = 0; q < queries; ++q) {
    const int track = grid.num_locales() + q;
    const std::string* name = session.track_name(track);
    ASSERT_NE(name, nullptr) << "track " << track;
    EXPECT_NE(name->find("query "), std::string::npos);
    EXPECT_GT(session.track_coverage(track), 0.0);
  }
}

TEST(QueryTraceTest, TrackCountIsSubmittedMinusRejected) {
  auto grid = LocaleGrid::square(4, 4);
  obs::TraceSession session;
  grid.set_trace_session(&session);
  grid.reset();
  ServiceConfig cfg;
  cfg.queue_depth = 2;  // force queue-full rejections
  GraphService svc(grid, cfg);
  const auto h = svc.store().load(make_graph(grid, 1000, 4.0, 7));
  int admitted = 0, rejected = 0;
  for (int i = 0; i < 8; ++i) {
    QuerySpec spec;
    spec.source = static_cast<Index>(i * 29 % 1000);
    const auto s = svc.submit(h, spec, 1e-6 * i);
    (s.code == AdmitCode::kAdmitted ? admitted : rejected)++;
  }
  ASSERT_GT(rejected, 0);
  EXPECT_EQ(session.num_tracks(), grid.num_locales() + admitted);
  // Rejections are instants on locale track 0, one per rejection.
  int reject_instants = 0;
  for (const auto& i : session.instants()) {
    reject_instants += i.name == "query.rejected" ? 1 : 0;
  }
  EXPECT_EQ(reject_instants, rejected);
  svc.drain();
}

TEST(QueryTraceTest, LifecycleSpansCoverArrivalToTerminalGapless) {
  auto grid = LocaleGrid::square(16, 4);
  obs::TraceSession session;
  grid.set_trace_session(&session);
  grid.reset();
  GraphService svc(grid, ServiceConfig{});
  const auto h = svc.store().load(make_graph(grid, 4000, 8.0, 7));
  serve_traced(grid, session, svc, h, 4);
  for (int q = 0; q < 4; ++q) {
    const int track = grid.num_locales() + q;
    // Collect the track's depth-0 lifecycle spans in time order.
    std::vector<const obs::SpanEvent*> spans;
    bool saw_level = false, terminal = false;
    for (const auto& s : session.spans()) {
      if (s.track != track) continue;
      if (s.depth == 0) spans.push_back(&s);
      saw_level |= s.name == "query.level";
    }
    for (const auto& i : session.instants()) {
      terminal |= i.track == track &&
                  (i.name == "query.done" || i.name == "query.expired");
    }
    ASSERT_GE(spans.size(), 3u) << "track " << track;
    std::sort(spans.begin(), spans.end(),
              [](const obs::SpanEvent* a, const obs::SpanEvent* b) {
                return a->sim_begin < b->sim_begin;
              });
    EXPECT_EQ(spans.front()->name, "query.queued");
    EXPECT_EQ(spans.back()->name, "query.fused");
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_DOUBLE_EQ(spans[i]->sim_begin, spans[i - 1]->sim_end)
          << "gap on track " << track << " before " << spans[i]->name;
    }
    EXPECT_TRUE(saw_level) << "track " << track;
    EXPECT_TRUE(terminal) << "track " << track;
    // Coverage is measured from t=0; only the pre-arrival sliver is
    // uncovered, so the depth-0 spans must explain nearly all of it.
    EXPECT_GT(session.track_coverage(track), 0.9);
  }
}

TEST(QueryTraceTest, GridResetSilencesStaleContexts) {
  auto grid = LocaleGrid::square(4, 4);
  obs::TraceSession session;
  grid.set_trace_session(&session);
  grid.reset();
  GraphService svc(grid, ServiceConfig{});
  const auto h = svc.store().load(make_graph(grid, 1000, 4.0, 7));
  QuerySpec spec;
  spec.source = 1;
  ASSERT_EQ(svc.submit(h, spec, 0.0).code, AdmitCode::kAdmitted);
  // Reset mid-flight: the session is cleared, the queued context's track
  // died with it. Draining must not write spans into the new epoch.
  grid.reset();
  ASSERT_EQ(session.spans().size(), 0u);
  svc.drain();
  for (const auto& s : session.spans()) {
    EXPECT_LT(s.track, grid.num_locales()) << s.name;
  }
  for (const auto& i : session.instants()) {
    EXPECT_LT(i.track, grid.num_locales()) << i.name;
  }
}

// ---------------------------------------------------------------------
// Event log
// ---------------------------------------------------------------------

TEST(ServiceEventLogTest, RecordsAdmitsExpiriesAndPublishes) {
  auto grid = LocaleGrid::square(16, 4);
  GraphService svc(grid, ServiceConfig{});
  ServiceEventLog elog;
  svc.set_event_log(&elog);
  const auto h = svc.store().load(make_graph(grid, 4000, 8.0, 7));
  EXPECT_EQ(elog.count("load"), 1);
  QuerySpec spec;
  spec.source = 3;
  ASSERT_EQ(svc.submit(h, spec, 0.0).code, AdmitCode::kAdmitted);
  QuerySpec tight = spec;
  tight.deadline_s = 1e-12;  // expires in the queue
  ASSERT_EQ(svc.submit(h, tight, 0.0).code, AdmitCode::kAdmitted);
  svc.store().publish(h, make_graph(grid, 4000, 8.0, 8));
  svc.drain();
  EXPECT_EQ(elog.count("admit"), 2);
  EXPECT_EQ(elog.count("publish"), 1);
  EXPECT_EQ(elog.count("done"), 1);
  EXPECT_EQ(elog.count("expire"), 1);
  // Every line is stamped and typed in the fixed prefix order.
  for (const auto& line : elog.lines()) {
    EXPECT_EQ(line.rfind("{\"t\":", 0), 0u) << line;
    EXPECT_NE(line.find("\"type\":\""), std::string::npos) << line;
  }
}

TEST(ServiceEventLogTest, TypedRejectionsAndBreakerTransitionsLogged) {
  auto grid = LocaleGrid::square(4, 4);
  ServiceConfig cfg;
  cfg.queue_depth = 1;
  cfg.breaker_k = 2;
  cfg.breaker_cooldown_s = 0.05;
  GraphService svc(grid, cfg);
  ServiceEventLog elog;
  svc.set_event_log(&elog);
  const auto h = svc.store().load(make_graph(grid, 1000, 4.0, 7));
  QuerySpec spec;
  spec.source = 1;
  int full = 0, throttled = 0;
  for (int i = 0; i < 6; ++i) {
    const AdmitCode code = svc.submit(h, spec, 1e-7 * i).code;
    full += code == AdmitCode::kQueueFull;
    throttled += code == AdmitCode::kTenantThrottled;
  }
  // K queue-full failures trip the breaker; the remaining submits are
  // throttled rejections — every typed rejection gets a log line.
  ASSERT_GE(full, cfg.breaker_k);
  ASSERT_GT(throttled, 0);
  EXPECT_EQ(elog.count("reject"), full + throttled);
  EXPECT_GE(elog.count("breaker"), 1);
  const std::string text = elog.text();
  EXPECT_NE(text.find("\"reason\":\"queue_full\""), std::string::npos);
  EXPECT_NE(text.find("\"to\":\"open\""), std::string::npos);
  svc.drain();
}

TEST(ServiceEventLogTest, PeriodicHealthSnapshots) {
  auto grid = LocaleGrid::square(4, 4);
  ServiceConfig cfg;
  cfg.health_log_every = 2;
  GraphService svc(grid, cfg);
  ServiceEventLog elog;
  svc.set_event_log(&elog);
  const auto h = svc.store().load(make_graph(grid, 1000, 4.0, 7));
  QuerySpec spec;
  spec.source = 1;
  for (int i = 0; i < 4; ++i) svc.submit(h, spec, 1e-6 * i);
  svc.drain();
  EXPECT_GE(elog.count("health"), 1);
  EXPECT_NE(elog.text().find("\"mode\":\"normal\""), std::string::npos);
}

TEST(ServiceEventLogTest, SameSeedLogAndMatrixAreByteIdentical) {
  std::string log0, matrix0;
  for (int run = 0; run < 2; ++run) {
    auto grid = LocaleGrid::square(16, 4);
    grid.enable_comm_matrix();
    ServiceConfig cfg;
    cfg.health_log_every = 2;
    GraphService svc(grid, cfg);
    ServiceEventLog elog;
    svc.set_event_log(&elog);
    const auto h = svc.store().load(make_graph(grid, 4000, 8.0, 7));
    for (int i = 0; i < 8; ++i) {
      QuerySpec spec;
      spec.kind = i % 2 == 0 ? QueryKind::kBfs : QueryKind::kSssp;
      spec.source = static_cast<Index>(i * 41 % 4000);
      spec.tenant = i % 3;
      svc.submit(h, spec, 1e-6 * i);
    }
    svc.drain();
    if (run == 0) {
      log0 = elog.text();
      matrix0 = grid.comm_matrix_json();
    } else {
      EXPECT_EQ(elog.text(), log0);
      EXPECT_EQ(grid.comm_matrix_json(), matrix0);
    }
  }
  EXPECT_FALSE(log0.empty());
}

// ---------------------------------------------------------------------
// Registry publication
// ---------------------------------------------------------------------

TEST(CommMatrixTest, PublishesCounterFamilyOnlyWhenEnabled) {
  {
    auto grid = LocaleGrid::square(4, 4);
    auto g = erdos_renyi_dist<double>(grid, 1000, 4.0, 7);
    (void)bfs(g, 0);
    const std::string json = grid.metrics().json();
    EXPECT_EQ(json.find("comm.matrix."), std::string::npos);
  }
  auto grid = LocaleGrid::square(4, 4);
  grid.enable_comm_matrix();
  auto g = erdos_renyi_dist<double>(grid, 1000, 4.0, 7);
  (void)bfs(g, 0);
  grid.publish_comm_matrix();
  const std::string json = grid.metrics().json();
  EXPECT_NE(json.find("comm.matrix.messages"), std::string::npos);
  EXPECT_NE(json.find("comm.matrix.bytes"), std::string::npos);
  // Idempotent: publishing twice must not double-count.
  auto& c = grid.metrics().counter(
      "comm.matrix.messages",
      {{"dst", "1"}, {"src", "0"}});
  const std::int64_t v = c.value;
  grid.publish_comm_matrix();
  EXPECT_EQ(c.value, v);
}

}  // namespace
}  // namespace pgb
