// Tests for the machine model: the cost vector algebra and the *relations*
// the parallel and network models must satisfy (monotonicity, saturation,
// serialization) for the paper's figure shapes to be reproducible.
#include <gtest/gtest.h>

#include "machine/cost.hpp"
#include "machine/machine_model.hpp"
#include "machine/network_model.hpp"
#include "machine/parallel_model.hpp"
#include "machine/sim_clock.hpp"

namespace pgb {
namespace {

TEST(CostVector, AddAndScale) {
  CostVector c;
  c.add(CostKind::kCpuOps, 100);
  c.add(CostKind::kCpuOps, 50);
  c.add(CostKind::kStreamBytes, 8);
  EXPECT_DOUBLE_EQ(c.get(CostKind::kCpuOps), 150);
  const CostVector half = c.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.get(CostKind::kCpuOps), 75);
  EXPECT_DOUBLE_EQ(half.get(CostKind::kStreamBytes), 4);
  CostVector sum = c;
  sum += half;
  EXPECT_DOUBLE_EQ(sum.get(CostKind::kCpuOps), 225);
}

TEST(CostVector, EmptyDetection) {
  CostVector c;
  EXPECT_TRUE(c.empty());
  c.add(CostKind::kRandAccess, 1);
  EXPECT_FALSE(c.empty());
}

class ThreadsParam : public ::testing::TestWithParam<int> {};

TEST_P(ThreadsParam, MoreThreadsNeverSlower) {
  const auto node = MachineModel::edison().node;
  const int p = GetParam();
  CostVector c;
  c.add(CostKind::kCpuOps, 1e9);
  c.add(CostKind::kStreamBytes, 1e8);
  c.add(CostKind::kRandAccess, 1e6);
  EXPECT_LE(region_time(node, c, p + 1), region_time(node, c, p));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThreadsParam,
                         ::testing::Values(1, 2, 4, 8, 16, 23, 24, 31));

TEST(ParallelModel, CpuScalesLinearlyWithinCores) {
  const auto node = MachineModel::edison().node;
  CostVector c;
  c.add(CostKind::kCpuOps, 2.4e9);
  EXPECT_NEAR(region_time(node, c, 1), 1.0, 1e-9);
  EXPECT_NEAR(region_time(node, c, 12), 1.0 / 12, 1e-9);
}

TEST(ParallelModel, StreamSaturatesAtNodeBandwidth) {
  const auto node = MachineModel::edison().node;
  CostVector c;
  c.add(CostKind::kStreamBytes, node.bw_node);  // 1 s at full node BW
  const double t24 = region_time(node, c, 24);
  const double t12 = region_time(node, c, 12);
  EXPECT_NEAR(t24, 1.0, 1e-9);           // saturated
  EXPECT_GT(t12 / t24, 1.2);             // not yet saturated at 12
  EXPECT_NEAR(region_time(node, c, 32), t24, 1e-9);  // stays saturated
}

TEST(ParallelModel, ContendedAtomicsDoNotScale) {
  const auto node = MachineModel::edison().node;
  CostVector c;
  c.add(CostKind::kAtomicContended, 1e6);
  EXPECT_DOUBLE_EQ(region_time(node, c, 1), region_time(node, c, 24));
}

TEST(ParallelModel, RandomAccessSaturatesAtNodeMlp) {
  const auto node = MachineModel::edison().node;
  CostVector c;
  c.add(CostKind::kRandAccess, 1e7);
  const double t8 = region_time(node, c, 8);
  const double t16 = region_time(node, c, 16);
  // mlp_node = 80 = 8 threads * mlp_core: saturated by 8 threads.
  EXPECT_NEAR(t8, t16, 1e-12);
  EXPECT_GT(region_time(node, c, 4), t8);
}

TEST(ParallelModel, OversubscriptionGainsLittle) {
  const auto node = MachineModel::edison().node;
  CostVector c;
  c.add(CostKind::kCpuOps, 1e9);
  const double t24 = region_time(node, c, 24);
  const double t32 = region_time(node, c, 32);
  EXPECT_LT(t32, t24);
  EXPECT_GT(t32, t24 * 0.8);  // far from the 32/24 ideal
}

TEST(ParallelModel, TaskSpawnChargedSerially) {
  const auto node = MachineModel::edison().node;
  CostVector c;
  c.add(CostKind::kTaskSpawn, 24);
  EXPECT_DOUBLE_EQ(region_time(node, c, 24), 24 * node.tau_task);
}

TEST(ParallelModel, ColocationSharesBandwidth) {
  const auto node = MachineModel::edison().node;
  CostVector c;
  c.add(CostKind::kStreamBytes, 1e9);
  EXPECT_GT(region_time(node, c, 24, /*colocated=*/4),
            region_time(node, c, 24, /*colocated=*/1) * 2.0);
}

TEST(ParallelModel, EffectiveThreadsCappedByShare) {
  const auto node = MachineModel::edison().node;
  // 4 co-located locales split 24 cores: 6 each.
  EXPECT_NEAR(effective_threads(node, 6, 4), 6.0, 1e-12);
  EXPECT_LT(effective_threads(node, 24, 4), 9.0);
}

TEST(NetworkModel, AlphaBetaComposition) {
  NetworkModel net(MachineModel::edison().net);
  const auto& p = net.params();
  EXPECT_NEAR(net.message(0, false, 1), p.alpha, 1e-12);
  EXPECT_NEAR(net.message(8000, false, 1), p.alpha + 8000 * p.beta, 1e-15);
  EXPECT_LT(net.message(0, true, 1), net.message(0, false, 1));
}

TEST(NetworkModel, DependentChainIsSerial) {
  NetworkModel net(MachineModel::edison().net);
  const double one = net.dependent_chain(1, 3.0, 8, false, 1);
  EXPECT_NEAR(net.dependent_chain(1000, 3.0, 8, false, 1), 1000 * one, 1e-9);
}

TEST(NetworkModel, OverlappedBeatsDependent) {
  NetworkModel net(MachineModel::edison().net);
  EXPECT_LT(net.overlapped_messages(1000, 8, false, 1),
            net.dependent_chain(1000, 1.0, 8, false, 1));
}

TEST(NetworkModel, BulkBeatsFineGrained) {
  NetworkModel net(MachineModel::edison().net);
  // Moving 1000 8-byte elements: one bulk put vs element-wise.
  EXPECT_LT(net.bulk(8000, false, 1) * 50,
            net.overlapped_messages(1000, 8, false, 1));
}

TEST(NetworkModel, ColocationPenalizesLatency) {
  NetworkModel net(MachineModel::edison().net);
  EXPECT_GT(net.message(0, true, 8), net.message(0, true, 1));
  EXPECT_GT(net.fork(true, 8), net.fork(true, 1));
}

TEST(NetworkModel, RemoteForkCostlierThanLocalTask) {
  const auto m = MachineModel::edison();
  NetworkModel net(m.net);
  EXPECT_GT(net.fork(false, 1), m.node.tau_task);
}

TEST(NetworkModel, BarrierGrowsLogarithmically) {
  NetworkModel net(MachineModel::edison().net);
  EXPECT_EQ(net.barrier(1), 0.0);
  EXPECT_LT(net.barrier(4), net.barrier(64));
  EXPECT_NEAR(net.barrier(64) / net.barrier(2), 6.0, 1e-9);
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock c;
  c.advance(1.5);
  c.advance_to(1.0);  // no-op backwards
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.advance_to(2.0);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST(Trace, AccumulatesByPhase) {
  Trace t;
  t.add("spa", 0.1);
  t.add("sort", 0.2);
  t.add("spa", 0.3);
  EXPECT_DOUBLE_EQ(t.get("spa"), 0.4);
  EXPECT_DOUBLE_EQ(t.get("sort"), 0.2);
  EXPECT_DOUBLE_EQ(t.get("missing"), 0.0);
  EXPECT_EQ(t.phases().size(), 2u);
  t.clear();
  EXPECT_TRUE(t.phases().empty());
}

TEST(SortCosts, RadixCheaperThanMergeForLargeN) {
  const auto node = MachineModel::edison().node;
  const auto merge = merge_sort_cost(1 << 20);
  const auto radix = radix_sort_cost(1 << 20, 1 << 20);
  EXPECT_LT(region_time(node, radix, 1), region_time(node, merge, 1));
}

TEST(SortCosts, EmptyAndSingletonAreFree) {
  EXPECT_TRUE(merge_sort_cost(0).empty());
  EXPECT_TRUE(merge_sort_cost(1).empty());
  EXPECT_TRUE(radix_sort_cost(1, 100).empty());
}

}  // namespace
}  // namespace pgb
