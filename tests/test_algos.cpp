// Tests for the graph algorithms built from the GraphBLAS primitives:
// BFS (against a sequential reference), connected components, PageRank,
// and triangle counting.
#include <gtest/gtest.h>

#include <queue>

#include "algo/bfs.hpp"
#include "algo/connected_components.hpp"
#include "algo/pagerank.hpp"
#include "algo/triangle_count.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"

namespace pgb {
namespace {

/// Sequential reference BFS returning levels (-1 = unreached).
std::vector<Index> reference_levels(const Csr<std::int64_t>& a,
                                    Index source) {
  std::vector<Index> level(static_cast<std::size_t>(a.nrows()), -1);
  std::queue<Index> q;
  level[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const Index u = q.front();
    q.pop();
    for (Index v : a.row_colids(u)) {
      if (level[static_cast<std::size_t>(v)] < 0) {
        level[static_cast<std::size_t>(v)] =
            level[static_cast<std::size_t>(u)] + 1;
        q.push(v);
      }
    }
  }
  return level;
}

/// Levels induced by a BFS parent tree.
std::vector<Index> levels_from_parents(const std::vector<Index>& parent,
                                       Index source) {
  std::vector<Index> level(parent.size(), -1);
  level[static_cast<std::size_t>(source)] = 0;
  for (std::size_t v = 0; v < parent.size(); ++v) {
    if (parent[v] < 0 || level[v] >= 0) continue;
    // Walk up to a resolved ancestor.
    std::vector<Index> path;
    Index u = static_cast<Index>(v);
    while (level[static_cast<std::size_t>(u)] < 0) {
      path.push_back(u);
      u = parent[static_cast<std::size_t>(u)];
    }
    Index d = level[static_cast<std::size_t>(u)];
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      level[static_cast<std::size_t>(*it)] = ++d;
    }
  }
  return level;
}

class BfsGrids : public ::testing::TestWithParam<int> {};

TEST_P(BfsGrids, LevelsMatchSequentialReference) {
  const Index n = 400;
  auto grid = LocaleGrid::square(GetParam(), 4);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 4.0, 41);
  auto local = a.to_local();

  auto res = bfs(a, /*source=*/0);
  auto ref = reference_levels(local, 0);
  auto got = levels_from_parents(res.parent, 0);

  for (Index v = 0; v < n; ++v) {
    EXPECT_EQ(got[static_cast<std::size_t>(v)],
              ref[static_cast<std::size_t>(v)])
        << "vertex " << v;
  }
  // Level sizes must agree with the reference histogram.
  std::vector<Index> hist;
  for (Index v = 0; v < n; ++v) {
    const Index lv = ref[static_cast<std::size_t>(v)];
    if (lv >= 0) {
      if (static_cast<std::size_t>(lv) >= hist.size()) {
        hist.resize(static_cast<std::size_t>(lv) + 1, 0);
      }
      ++hist[static_cast<std::size_t>(lv)];
    }
  }
  ASSERT_EQ(res.level_sizes.size(), hist.size());
  for (std::size_t i = 0; i < hist.size(); ++i) {
    EXPECT_EQ(res.level_sizes[i], hist[i]) << "level " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, BfsGrids, ::testing::Values(1, 2, 4, 9));

TEST(Bfs, ParentEdgesExistInGraph) {
  const Index n = 300;
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 6.0, 43);
  auto local = a.to_local();
  auto res = bfs(a, 7);
  for (Index v = 0; v < n; ++v) {
    const Index p = res.parent[static_cast<std::size_t>(v)];
    if (p < 0 || v == 7) continue;
    EXPECT_NE(local.find(p, v), nullptr)
        << "parent edge " << p << "->" << v << " missing";
  }
}

TEST(Bfs, IsolatedSourceTerminatesImmediately) {
  auto grid = LocaleGrid::square(2, 1);
  Coo<std::int64_t> coo(10, 10);
  coo.add(1, 2, 1);  // graph with no edges from vertex 0
  auto a = DistCsr<std::int64_t>::from_coo(grid, coo);
  auto res = bfs(a, 0);
  EXPECT_EQ(res.level_sizes.size(), 1u);
  EXPECT_EQ(res.parent[0], 0);
  EXPECT_EQ(res.parent[5], -1);
}

TEST(Bfs, PathGraphHasOneVertexPerLevel) {
  const Index n = 20;
  auto grid = LocaleGrid::square(4, 1);
  Coo<std::int64_t> coo(n, n);
  for (Index i = 0; i + 1 < n; ++i) coo.add(i, i + 1, 1);
  auto a = DistCsr<std::int64_t>::from_coo(grid, coo);
  auto res = bfs(a, 0);
  ASSERT_EQ(res.level_sizes.size(), static_cast<std::size_t>(n));
  for (auto s : res.level_sizes) EXPECT_EQ(s, 1);
  EXPECT_EQ(res.parent[19], 18);
}

TEST(ConnectedComponents, TwoCliques) {
  const Index n = 10;
  auto grid = LocaleGrid::square(2, 1);
  Coo<std::int64_t> coo(n, n);
  auto clique = [&](Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) {
      for (Index j = lo; j < hi; ++j) {
        if (i != j) coo.add(i, j, 1);
      }
    }
  };
  clique(0, 5);
  clique(5, 10);
  auto a = DistCsr<std::int64_t>::from_coo(grid, coo);
  auto res = connected_components(a);
  EXPECT_EQ(res.num_components, 2);
  for (Index v = 0; v < 5; ++v) EXPECT_EQ(res.label[static_cast<std::size_t>(v)], 0);
  for (Index v = 5; v < 10; ++v) EXPECT_EQ(res.label[static_cast<std::size_t>(v)], 5);
}

TEST(ConnectedComponents, AgreesWithBfsReachability) {
  RmatParams p;
  p.scale = 9;
  p.edge_factor = 3;
  p.seed = 5;
  auto grid = LocaleGrid::square(4, 2);
  auto a = rmat_dist(grid, p);
  auto res = connected_components(a);
  // Vertices in the same BFS tree share a label.
  auto local = a.to_local();
  auto lv = reference_levels(local, res.label[0] >= 0 ? 0 : 0);
  for (Index v = 0; v < local.nrows(); ++v) {
    if (lv[static_cast<std::size_t>(v)] >= 0) {
      EXPECT_EQ(res.label[static_cast<std::size_t>(v)], res.label[0]);
    }
  }
}

TEST(Pagerank, SumsToOneAndConverges) {
  const Index n = 500;
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 8.0, 51);
  auto res = pagerank(a, 0.85, 1e-10, 200);
  double sum = 0;
  for (double r : res.rank) {
    EXPECT_GT(r, 0.0);
    sum += r;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_LT(res.residual, 1e-8);
  EXPECT_LT(res.iterations, 200);
}

TEST(Pagerank, StarGraphCenterRanksHighest) {
  const Index n = 50;
  auto grid = LocaleGrid::square(2, 1);
  Coo<std::int64_t> coo(n, n);
  for (Index v = 1; v < n; ++v) coo.add(v, 0, 1);  // all point to 0
  auto a = DistCsr<std::int64_t>::from_coo(grid, coo);
  auto res = pagerank(a);
  for (Index v = 1; v < n; ++v) {
    EXPECT_GT(res.rank[0], res.rank[static_cast<std::size_t>(v)]);
  }
}

TEST(TriangleCount, KnownSmallGraphs) {
  auto grid = LocaleGrid::single(2);
  LocaleCtx ctx(grid, 0);

  // Triangle 0-1-2 plus a pendant edge 2-3: exactly 1 triangle.
  Coo<std::int64_t> coo(4, 4);
  auto edge = [&](Index u, Index v) {
    coo.add(u, v, 1);
    coo.add(v, u, 1);
  };
  edge(0, 1);
  edge(1, 2);
  edge(0, 2);
  edge(2, 3);
  EXPECT_EQ(triangle_count(ctx, coo.to_csr()), 1);

  // K5: C(5,3) = 10 triangles.
  Coo<std::int64_t> k5(5, 5);
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j < 5; ++j) {
      if (i != j) k5.add(i, j, 1);
    }
  }
  EXPECT_EQ(triangle_count(ctx, k5.to_csr()), 10);
}

TEST(TriangleCount, TriangleFreeGraphIsZero) {
  auto grid = LocaleGrid::single(1);
  LocaleCtx ctx(grid, 0);
  // Bipartite (even->odd edges only) graphs have no triangles.
  const Index n = 20;
  Coo<std::int64_t> coo(n, n);
  for (Index u = 0; u < n; u += 2) {
    for (Index v = 1; v < n; v += 2) {
      coo.add(u, v, 1);
      coo.add(v, u, 1);
    }
  }
  EXPECT_EQ(triangle_count(ctx, coo.to_csr()), 0);
}

}  // namespace
}  // namespace pgb
