// Tests for Assign (paper Listings 4-5): correctness of both versions on
// every grid shape, and the modeled performance relations of Fig 2.
#include <gtest/gtest.h>

#include "core/assign.hpp"
#include "gen/random_vec.hpp"

namespace pgb {
namespace {

class AssignGrids : public ::testing::TestWithParam<int> {};

TEST_P(AssignGrids, V1CopiesDomainAndValues) {
  auto grid = LocaleGrid::square(GetParam(), 4);
  auto b = random_dist_sparse_vec<double>(grid, 3000, 400, 1);
  DistSparseVec<double> a(grid, 3000);
  assign_v1(a, b);
  EXPECT_TRUE(a.check_invariants());
  auto la = a.to_local();
  auto lb = b.to_local();
  ASSERT_EQ(la.nnz(), lb.nnz());
  for (Index p = 0; p < la.nnz(); ++p) {
    EXPECT_EQ(la.index_at(p), lb.index_at(p));
    EXPECT_DOUBLE_EQ(la.value_at(p), lb.value_at(p));
  }
}

TEST_P(AssignGrids, V2CopiesDomainAndValues) {
  auto grid = LocaleGrid::square(GetParam(), 4);
  auto b = random_dist_sparse_vec<double>(grid, 3000, 400, 2);
  DistSparseVec<double> a(grid, 3000);
  assign_v2(a, b);
  EXPECT_TRUE(a.check_invariants());
  auto la = a.to_local();
  auto lb = b.to_local();
  ASSERT_EQ(la.nnz(), lb.nnz());
  for (Index p = 0; p < la.nnz(); ++p) {
    EXPECT_EQ(la.index_at(p), lb.index_at(p));
    EXPECT_DOUBLE_EQ(la.value_at(p), lb.value_at(p));
  }
}

TEST_P(AssignGrids, AssignOverwritesPreviousContent) {
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = random_dist_sparse_vec<double>(grid, 1000, 300, 7);
  auto b = random_dist_sparse_vec<double>(grid, 1000, 50, 8);
  assign_v2(a, b);
  EXPECT_EQ(a.nnz(), 50);
  assign_v1(a, b);
  EXPECT_EQ(a.nnz(), 50);
}

INSTANTIATE_TEST_SUITE_P(Grids, AssignGrids, ::testing::Values(1, 2, 4, 9));

TEST(Assign, EmptySourceClearsDestination) {
  auto grid = LocaleGrid::square(4, 2);
  auto a = random_dist_sparse_vec<double>(grid, 1000, 100, 1);
  DistSparseVec<double> empty(grid, 1000);
  assign_v2(a, empty);
  EXPECT_EQ(a.nnz(), 0);
}

TEST(Assign, CapacityMismatchThrows) {
  auto grid = LocaleGrid::square(4, 2);
  DistSparseVec<double> a(grid, 1000);
  DistSparseVec<double> b(grid, 999);
  EXPECT_THROW(assign_v1(a, b), DimensionMismatch);
  EXPECT_THROW(assign_v2(a, b), DimensionMismatch);
}

// ---- modeled-performance shapes (Fig 2, Fig 10) ----

TEST(AssignModel, SharedMemoryV1AboutTenTimesSlower) {
  // Fig 2 left: the per-element log-time domain search makes Assign1 ~an
  // order of magnitude slower than Assign2 at every thread count.
  const Index nnz = 1000000;
  for (int threads : {1, 24}) {
    auto g = LocaleGrid::single(threads);
    auto b = random_dist_sparse_vec<double>(g, 2 * nnz, nnz, 1);
    DistSparseVec<double> a(g, 2 * nnz);
    g.reset();
    assign_v1(a, b);
    const double t1 = g.time();
    g.reset();
    assign_v2(a, b);
    const double t2 = g.time();
    EXPECT_GT(t1 / t2, 4.0) << threads << " threads";
    EXPECT_LT(t1 / t2, 40.0) << threads << " threads";
  }
}

TEST(AssignModel, SharedMemorySpeedupModest) {
  // Paper: 5-8x on 24 cores (random access / merge bound).
  const Index nnz = 1000000;
  auto run = [&](int threads, auto fn) {
    auto g = LocaleGrid::single(threads);
    auto b = random_dist_sparse_vec<double>(g, 2 * nnz, nnz, 1);
    DistSparseVec<double> a(g, 2 * nnz);
    g.reset();
    fn(a, b);
    return g.time();
  };
  auto v1 = [](auto& a, auto& b) { assign_v1(a, b); };
  const double s1 = run(1, v1) / run(24, v1);
  EXPECT_GT(s1, 4.0);
  EXPECT_LT(s1, 16.0);
}

TEST(AssignModel, DistributedV1CollapsesV2Scales) {
  const Index nnz = 1000000;  // paper size (Fig 2 right)
  auto g1 = LocaleGrid::single(24);
  auto b1 = random_dist_sparse_vec<double>(g1, 2 * nnz, nnz, 1);
  DistSparseVec<double> a1(g1, 2 * nnz);
  g1.reset();
  assign_v2(a1, b1);
  const double t2_single = g1.time();

  auto g = LocaleGrid::square(16, 24);
  auto b = random_dist_sparse_vec<double>(g, 2 * nnz, nnz, 1);
  DistSparseVec<double> a(g, 2 * nnz);
  g.reset();
  assign_v2(a, b);
  const double t2_dist = g.time();
  g.reset();
  assign_v1(a, b);
  const double t1_dist = g.time();

  EXPECT_GT(t1_dist / t2_dist, 100.0);   // Fig 2 right
  EXPECT_LT(t2_dist, t2_single);         // Assign2 benefits from locales
}

TEST(AssignModel, MultiLocalePerNodeDegrades) {
  // Fig 10: same tiny problem, 1 thread per locale, all locales on one
  // node — more locales only add fork/contention overhead.
  const Index nnz = 10000;
  auto time_with = [&](int nloc, auto fn) {
    auto g = LocaleGrid::square(nloc, 1, /*locales_per_node=*/nloc);
    auto b = random_dist_sparse_vec<double>(g, 2 * nnz, nnz, 1);
    DistSparseVec<double> a(g, 2 * nnz);
    g.reset();
    fn(a, b);
    return g.time();
  };
  auto v1 = [](auto& a, auto& b) { assign_v1(a, b); };
  auto v2 = [](auto& a, auto& b) { assign_v2(a, b); };
  EXPECT_GT(time_with(32, v2), time_with(1, v2));
  EXPECT_GT(time_with(32, v1), 10.0 * time_with(32, v2));
}

}  // namespace
}  // namespace pgb
