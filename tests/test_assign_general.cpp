// Tests for the general (index-vector) Assign and Extract — the
// unrestricted primitive the paper's Section III-B leaves out.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "core/assign_general.hpp"
#include "gen/random_vec.hpp"
#include "util/rng.hpp"

namespace pgb {
namespace {

/// A random permutation of [0, n) (an injective index map).
std::vector<Index> random_permutation(Index n, std::uint64_t seed) {
  std::vector<Index> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), Index{0});
  Xoshiro256 rng(seed);
  for (Index i = n - 1; i > 0; --i) {
    const Index j = static_cast<Index>(
        rng.next_below(static_cast<std::uint64_t>(i + 1)));
    std::swap(p[static_cast<std::size_t>(i)],
              p[static_cast<std::size_t>(j)]);
  }
  return p;
}

class GeneralAssignGrids : public ::testing::TestWithParam<int> {};

TEST_P(GeneralAssignGrids, ScatterThroughPermutation) {
  const Index n = 500;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto b = random_dist_sparse_vec<double>(grid, n, 120, 1);
  DistSparseVec<double> a(grid, n);
  auto perm = random_permutation(n, 7);

  assign_indexed(a, perm, b, OutputMode::kReplace);
  EXPECT_TRUE(a.check_invariants());
  EXPECT_EQ(a.nnz(), b.nnz());

  auto la = a.to_local();
  auto lb = b.to_local();
  for (Index p = 0; p < lb.nnz(); ++p) {
    const Index tgt = perm[static_cast<std::size_t>(lb.index_at(p))];
    const double* v = la.find(tgt);
    ASSERT_NE(v, nullptr) << "missing A[" << tgt << "]";
    EXPECT_DOUBLE_EQ(*v, lb.value_at(p));
  }
}

TEST_P(GeneralAssignGrids, MergeKeepsUntouchedEntries) {
  const Index n = 400;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = random_dist_sparse_vec<double>(grid, n, 100, 2);
  auto before = a.to_local();
  // Shifted identity map touching only the low half of A.
  const Index bcap = n / 2;
  auto b = random_dist_sparse_vec<double>(grid, bcap, 50, 3);
  std::vector<Index> map(static_cast<std::size_t>(bcap));
  std::iota(map.begin(), map.end(), Index{0});

  assign_indexed(a, map, b, OutputMode::kMerge);
  auto la = a.to_local();
  auto lb = b.to_local();
  // Every assigned position carries B's value...
  for (Index p = 0; p < lb.nnz(); ++p) {
    const double* v = la.find(lb.index_at(p));
    ASSERT_NE(v, nullptr);
    EXPECT_DOUBLE_EQ(*v, lb.value_at(p));
  }
  // ...and untouched old entries survive.
  for (Index p = 0; p < before.nnz(); ++p) {
    const Index i = before.index_at(p);
    if (i >= bcap || lb.find(i) != nullptr) continue;
    const double* v = la.find(i);
    ASSERT_NE(v, nullptr) << "lost A[" << i << "]";
    EXPECT_DOUBLE_EQ(*v, before.value_at(p));
  }
}

TEST_P(GeneralAssignGrids, ReplaceDropsUntouchedEntries) {
  const Index n = 300;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = random_dist_sparse_vec<double>(grid, n, 80, 4);
  auto b = random_dist_sparse_vec<double>(grid, 50, 20, 5);
  std::vector<Index> map(50);
  std::iota(map.begin(), map.end(), Index{100});  // targets [100, 150)

  assign_indexed(a, map, b, OutputMode::kReplace);
  EXPECT_EQ(a.nnz(), b.nnz());
  auto la = a.to_local();
  for (Index p = 0; p < la.nnz(); ++p) {
    EXPECT_GE(la.index_at(p), 100);
    EXPECT_LT(la.index_at(p), 150);
  }
}

TEST_P(GeneralAssignGrids, ExtractGathersThroughMap) {
  const Index n = 500;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = random_dist_sparse_vec<double>(grid, n, 200, 6);
  auto perm = random_permutation(n, 11);

  auto z = extract_indexed(a, perm);
  EXPECT_TRUE(z.check_invariants());
  auto la = a.to_local();
  auto lz = z.to_local();
  Index expected = 0;
  for (Index k = 0; k < n; ++k) {
    const double* src = la.find(perm[static_cast<std::size_t>(k)]);
    const double* dst = lz.find(k);
    if (src != nullptr) {
      ++expected;
      ASSERT_NE(dst, nullptr) << k;
      EXPECT_DOUBLE_EQ(*dst, *src);
    } else {
      EXPECT_EQ(dst, nullptr) << k;
    }
  }
  EXPECT_EQ(lz.nnz(), expected);
}

TEST_P(GeneralAssignGrids, AssignThenExtractRoundTrips) {
  const Index n = 400;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto b = random_dist_sparse_vec<double>(grid, n, 90, 8);
  DistSparseVec<double> a(grid, n);
  auto perm = random_permutation(n, 13);
  assign_indexed(a, perm, b, OutputMode::kReplace);
  auto back = extract_indexed(a, perm);
  EXPECT_TRUE(back.to_local() == b.to_local());
}

INSTANTIATE_TEST_SUITE_P(Grids, GeneralAssignGrids,
                         ::testing::Values(1, 2, 4, 9));

TEST(GeneralAssign, BadMapThrows) {
  auto grid = LocaleGrid::single(1);
  auto b = DistSparseVec<double>::from_sorted(grid, 4, {0, 2}, {1.0, 2.0});
  DistSparseVec<double> a(grid, 10);
  std::vector<Index> bad{0, 1, 2, 99};  // out of range for A
  EXPECT_THROW(assign_indexed(a, bad, b), InvalidArgument);
  std::vector<Index> short_map{0, 1};
  EXPECT_THROW(assign_indexed(a, short_map, b), InvalidArgument);
  EXPECT_THROW(extract_indexed(a, bad), InvalidArgument);
}

TEST(GeneralAssignModel, CommunicationScalesWithRootP) {
  // [8]: general assign moves O((nnz(A)+nnz(B))/sqrt(p)) per processor —
  // so the per-run modeled time should drop as the grid grows, but
  // slower than 1/p.
  const Index n = 10000000;  // big enough to out-amortize fork overhead
  auto run = [&](int nloc) {
    auto grid = LocaleGrid::square(nloc, 24);
    auto b = random_dist_sparse_vec<double>(grid, n, n / 10, 1);
    DistSparseVec<double> a(grid, n);
    auto perm = random_permutation(n, 3);
    grid.reset();
    assign_indexed(a, perm, b, OutputMode::kReplace);
    return grid.time();
  };
  const double t4 = run(4);
  const double t64 = run(64);
  EXPECT_GT(t4 / t64, 1.5);   // it scales...
  EXPECT_LT(t4 / t64, 16.0);  // ...but sublinearly in p
}

}  // namespace
}  // namespace pgb
