// Tests for degraded-mode recovery: membership remapping, the replica
// store (buddy mirrors, parity folds, incremental dirty-chunk flushes),
// the localized-rebuild driver producing bit-identical results across
// comm schedules, straggler-aware barriers, and the SpMSpV
// work-shedding hook.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "algo/algo_recovery.hpp"
#include "algo/bfs.hpp"
#include "algo/pagerank.hpp"
#include "algo/sssp.hpp"
#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "fault/rebuild.hpp"
#include "fault/replica.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"
#include "runtime/dist.hpp"
#include "sparse/dist_dense_vec.hpp"

namespace pgb {
namespace {

TEST(Membership, IdentityUntilRemapped) {
  Membership m(8);
  EXPECT_EQ(m.size(), 8);
  EXPECT_FALSE(m.remapped());
  EXPECT_EQ(m.active(), 8);
  const std::uint64_t e0 = m.epoch();
  for (int l = 0; l < 8; ++l) EXPECT_EQ(m.host(l), l);

  m.remap(3, 7);
  EXPECT_TRUE(m.remapped());
  EXPECT_EQ(m.host(3), 7);
  EXPECT_EQ(m.active(), 7);  // hosts {0,1,2,4,5,6,7}
  EXPECT_GT(m.epoch(), e0);

  m.reset();
  EXPECT_FALSE(m.remapped());
  EXPECT_EQ(m.host(3), 3);
  EXPECT_EQ(m.active(), 8);
}

TEST(Membership, RemapViewRefreshesWhenEpochMoves) {
  Membership m(4);
  RemapView view(m);
  EXPECT_FALSE(view.remapped());
  EXPECT_EQ(view.host(2), 2);
  m.remap(2, 0);
  // The cached view notices the epoch bump on the next query.
  EXPECT_TRUE(view.remapped());
  EXPECT_EQ(view.host(2), 0);
}

TEST(Membership, GridRemapBumpsEpochAndCounter) {
  auto grid = LocaleGrid::square(4, 1);
  const std::uint64_t e0 = grid.membership_epoch();
  grid.remap_locale(3, 1);
  EXPECT_EQ(grid.host_of(3), 1);
  EXPECT_GT(grid.membership_epoch(), e0);
  EXPECT_EQ(grid.metrics().counter("membership.remaps").value, 1);
  grid.restore_membership();
  EXPECT_EQ(grid.host_of(3), 3);
}

TEST(Membership, CoHostedCommIsFreeAfterRemap) {
  auto grid = LocaleGrid::square(4, 1);
  grid.remap_locale(3, 1);
  const auto msgs0 = grid.hot().messages->value;
  const auto bytes0 = grid.hot().bytes->value;
  const double t0 = grid.time();
  LocaleCtx ctx(grid, 3);
  // Logical 3 now lives on host 1: "remote" traffic between them is a
  // local memory operation — no messages, no bytes, no clock time.
  ctx.remote_bulk(1, 1 << 20);
  ctx.remote_msgs(1, 100, 16);
  ctx.remote_rt(1, 8);
  ctx.remote_chain(1, 50, 2.0, 16);
  EXPECT_EQ(grid.hot().messages->value, msgs0);
  EXPECT_EQ(grid.hot().bytes->value, bytes0);
  EXPECT_DOUBLE_EQ(grid.time(), t0);
  // A genuinely remote peer still pays.
  ctx.remote_bulk(2, 1 << 10);
  EXPECT_GT(grid.hot().messages->value, msgs0);
}

TEST(Replica, BuddyIsNeverSelfAndIsInvolutionForEvenRings) {
  for (int n = 2; n <= 9; ++n) {
    for (int l = 0; l < n; ++l) {
      const int b = replica_buddy_of(l, n);
      EXPECT_NE(b, l) << "n=" << n;
      EXPECT_GE(b, 0);
      EXPECT_LT(b, n);
      if (n % 2 == 0) {
        EXPECT_EQ(replica_buddy_of(b, n), l) << "n=" << n;  // pairs
      }
    }
  }
}

TEST(Replica, ParityHolderLivesOutsideItsGroup) {
  auto grid = LocaleGrid::square(8, 1);
  ReplicaOptions opt;
  opt.scheme = ReplicaScheme::kParity;
  opt.parity_group = 4;
  ReplicaStore store(grid, opt);
  for (int l = 0; l < 8; ++l) {
    const int holder = store.parity_holder(store.group_of(l));
    EXPECT_NE(store.group_of(holder), store.group_of(l)) << "l=" << l;
  }
  // parity_group >= n would force the parity into its own group.
  ReplicaOptions bad;
  bad.scheme = ReplicaScheme::kParity;
  bad.parity_group = 8;
  EXPECT_THROW(ReplicaStore(grid, bad), InvalidArgument);
}

TEST(Replica, SecondIdenticalFlushShipsNothing) {
  auto grid = LocaleGrid::square(4, 1);
  DistDenseVec<double> v(grid, 1000, 1.5);
  ReplicaStore store(grid, {});
  store.staging().put_dense("v", v);
  store.flush(0);
  const std::int64_t first = store.shipped_bytes();
  EXPECT_GT(first, 0);
  EXPECT_EQ(store.protected_round(), 0);

  // Same bytes staged again: the chunk diff finds nothing dirty.
  store.staging().put_dense("v", v);
  store.flush(1);
  EXPECT_EQ(store.shipped_bytes(), first);
  EXPECT_EQ(store.protected_round(), 1);

  // One element changes: only its chunk (plus header) travels, far less
  // than the full vector.
  v.local(0).raw()[3] = 42.0;
  store.staging().put_dense("v", v);
  store.flush(2);
  const std::int64_t delta = store.shipped_bytes() - first;
  EXPECT_GT(delta, 0);
  EXPECT_LT(delta, first / 2);
  EXPECT_EQ(grid.metrics().counter("replica.flushes").value, 3);
  EXPECT_EQ(grid.metrics().counter("replica.bytes").value,
            store.shipped_bytes());
}

TEST(Replica, BuddyRebuildReadsTheMirrorNotThePrimary) {
  auto grid = LocaleGrid::square(4, 1);
  DistDenseVec<double> v(grid, 800, 0.0);
  for (int l = 0; l < 4; ++l) {
    auto raw = v.local(l).raw();
    for (std::size_t i = 0; i < raw.size(); ++i) {
      raw[i] = static_cast<double>(l * 10000 + static_cast<int>(i));
    }
  }
  ReplicaStore store(grid, {});
  store.staging().put_dense("v", v);
  store.flush(0);

  // Locale 2 "dies": trash its primary copy. A rebuild that read the
  // primary would reproduce garbage (and fail the checksum).
  const int dead = 2;
  CheckpointEntry* e = store.primary_for_test().find_mutable("v");
  ASSERT_NE(e, nullptr);
  for (CheckpointBlock& blk : e->blocks) {
    if (blk.locale == dead) std::fill(blk.bytes.begin(), blk.bytes.end(), 0xFF);
  }

  const std::int64_t restored = store.rebuild(dead);
  EXPECT_GT(restored, 0);
  DistDenseVec<double> out(grid, 800, -1.0);
  store.restored().get_dense("v", out);
  for (int l = 0; l < 4; ++l) {
    const auto raw = out.local(l).raw();
    for (std::size_t i = 0; i < raw.size(); ++i) {
      ASSERT_DOUBLE_EQ(raw[i],
                       static_cast<double>(l * 10000 + static_cast<int>(i)))
          << "l=" << l << " i=" << i;
    }
  }
  EXPECT_EQ(grid.metrics().counter("recovery.rebuilds").value, 1);
  EXPECT_GT(grid.metrics().counter("replica.restored_bytes").value, 0);
}

TEST(Replica, ParityReconstructionSurvivesPrimaryLoss) {
  auto grid = LocaleGrid::square(8, 1);
  DistDenseVec<double> v(grid, 1600, 0.0);
  for (int l = 0; l < 8; ++l) {
    auto raw = v.local(l).raw();
    for (std::size_t i = 0; i < raw.size(); ++i) {
      raw[i] = static_cast<double>(l) + 0.25 * static_cast<double>(i);
    }
  }
  ReplicaOptions opt;
  opt.scheme = ReplicaScheme::kParity;
  opt.parity_group = 4;
  ReplicaStore store(grid, opt);
  store.staging().put_dense("v", v);
  store.flush(0);

  const int dead = 5;
  CheckpointEntry* e = store.primary_for_test().find_mutable("v");
  ASSERT_NE(e, nullptr);
  for (CheckpointBlock& blk : e->blocks) {
    if (blk.locale == dead) std::fill(blk.bytes.begin(), blk.bytes.end(), 0);
  }

  store.rebuild(dead);  // parity XOR surviving members, checksum-checked
  DistDenseVec<double> out(grid, 1600, -1.0);
  store.restored().get_dense("v", out);
  const auto raw = out.local(dead).raw();
  for (std::size_t i = 0; i < raw.size(); ++i) {
    ASSERT_DOUBLE_EQ(
        raw[i], static_cast<double>(dead) + 0.25 * static_cast<double>(i));
  }
}

TEST(Replica, ParityTracksIncrementalUpdates) {
  // The fold is maintained as parity ^= old ^ new: after several
  // mutating flushes, reconstruction must still reproduce the *latest*
  // flushed state.
  auto grid = LocaleGrid::square(8, 1);
  DistDenseVec<double> v(grid, 400, 1.0);
  ReplicaOptions opt;
  opt.scheme = ReplicaScheme::kParity;
  opt.parity_group = 4;
  ReplicaStore store(grid, opt);
  for (std::int64_t round = 0; round < 3; ++round) {
    for (int l = 0; l < 8; ++l) {
      auto raw = v.local(l).raw();
      for (std::size_t i = 0; i < raw.size(); ++i) {
        raw[i] += static_cast<double>(l + 1) * static_cast<double>(round);
      }
    }
    store.staging().put_dense("v", v);
    store.flush(round);
  }
  const int dead = 1;
  CheckpointEntry* e = store.primary_for_test().find_mutable("v");
  for (CheckpointBlock& blk : e->blocks) {
    if (blk.locale == dead) std::fill(blk.bytes.begin(), blk.bytes.end(), 0);
  }
  store.rebuild(dead);
  DistDenseVec<double> out(grid, 400, -1.0);
  store.restored().get_dense("v", out);
  const auto want = v.local(dead).raw();
  const auto got = out.local(dead).raw();
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_DOUBLE_EQ(got[i], want[i]);
  }
}

// ---- the chaos-determinism matrix (issue satellite): kill + rebuild is
// bit-identical to fault-free, for both rebuild modes, across all three
// comm schedules, and two same-seed executions are indistinguishable. --

struct RebuildRun {
  BfsResult res;
  double time = 0.0;
  std::int64_t messages = 0;
  RecoveryReport report;
};

RebuildRun run_bfs_rebuild(LocaleGrid& grid, const DistCsr<double>& a,
                           CommMode mode, RebuildMode rmode,
                           const std::string& faults) {
  grid.reset();
  SpmspvOptions opt;
  opt.comm = mode;
  FaultPlan plan(FaultSpec::parse(faults), 21);
  RebuildOptions bopt;
  bopt.mode = rmode;
  RebuildRun out;
  out.res = bfs_with_rebuild(a, 0, opt, &plan, bopt, &out.report);
  out.time = grid.time();
  out.messages = grid.hot().messages->value;
  return out;
}

TEST(Rebuild, KillRebuildBitIdenticalAcrossModesAndDeterministic) {
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<double>(grid, 600, 8.0, 11);
  for (const CommMode mode :
       {CommMode::kFine, CommMode::kBulk, CommMode::kAggregated}) {
    grid.reset();
    SpmspvOptions opt;
    opt.comm = mode;
    const BfsResult base = bfs(a, 0, opt);
    const double total = grid.time();
    ASSERT_GT(total, 0.0);
    const std::string faults =
        "kill:locale=1,at=" + std::to_string(total * 0.4);

    for (const RebuildMode rmode :
         {RebuildMode::kDegraded, RebuildMode::kSpare}) {
      const RebuildRun r1 = run_bfs_rebuild(grid, a, mode, rmode, faults);
      const RebuildRun r2 = run_bfs_rebuild(grid, a, mode, rmode, faults);
      // Bit-identical to the fault-free run...
      EXPECT_EQ(r1.res.parent, base.parent)
          << to_string(mode) << "/" << to_string(rmode);
      EXPECT_EQ(r1.res.level_sizes, base.level_sizes);
      // ...and the two same-seed chaos executions are indistinguishable,
      // result AND modeled time AND traffic.
      EXPECT_EQ(r1.res.parent, r2.res.parent);
      EXPECT_DOUBLE_EQ(r1.time, r2.time);
      EXPECT_EQ(r1.messages, r2.messages);
      EXPECT_GE(r1.report.rebuilds, 1);
      EXPECT_EQ(std::string(r1.report.mode), to_string(rmode));
      // The driver restored the identity mapping on exit.
      EXPECT_FALSE(grid.membership().remapped());
    }
  }
}

TEST(Rebuild, SsspDegradedBitIdentical) {
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<double>(grid, 400, 6.0, 13);
  grid.reset();
  const SsspResult base = sssp(a, 0, {});
  const double total = grid.time();

  grid.reset();
  FaultPlan plan(
      FaultSpec::parse("kill:locale=2,at=" + std::to_string(total * 0.5)), 3);
  RebuildOptions bopt;  // degraded by default
  RecoveryReport report;
  const SsspResult rec = sssp_with_rebuild(a, 0, {}, &plan, bopt, &report);
  EXPECT_EQ(rec.dist, base.dist);  // exact double equality
  EXPECT_EQ(rec.rounds, base.rounds);
  EXPECT_GE(report.rebuilds, 1);
  EXPECT_EQ(report.degraded_locales, 1);
  EXPECT_GT(report.sim_time_lost, 0.0);
  EXPECT_GT(report.bytes_restored, 0);
}

TEST(Rebuild, PagerankParityDegradedBitIdentical) {
  auto grid = LocaleGrid::square(8, 2);
  auto a = erdos_renyi_dist<double>(grid, 600, 6.0, 17);
  grid.reset();
  const PagerankResult base = pagerank(a, 0.85, 1e-8, 40);
  const double total = grid.time();

  grid.reset();
  FaultPlan plan(
      FaultSpec::parse("kill:locale=5,at=" + std::to_string(total * 0.5)), 3);
  RebuildOptions bopt;
  bopt.replica.scheme = ReplicaScheme::kParity;
  bopt.replica.parity_group = 4;
  RecoveryReport report;
  const PagerankResult rec =
      pagerank_with_rebuild(a, &plan, 0.85, 1e-8, 40, bopt, &report);
  EXPECT_EQ(rec.rank, base.rank);  // exact double equality
  EXPECT_EQ(rec.iterations, base.iterations);
  EXPECT_EQ(rec.residual, base.residual);
  EXPECT_GE(report.rebuilds, 1);
}

TEST(Rebuild, FaultFreeRunMatchesPlainAndPricesReplication) {
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<double>(grid, 400, 6.0, 11);
  grid.reset();
  const BfsResult base = bfs(a, 0, {});

  grid.reset();
  RecoveryReport report;
  const BfsResult rec = bfs_with_rebuild(a, 0, {}, nullptr, {}, &report);
  EXPECT_EQ(rec.parent, base.parent);
  EXPECT_EQ(rec.level_sizes, base.level_sizes);
  EXPECT_EQ(report.rebuilds, 0);
  EXPECT_EQ(report.restarts, 0);
  EXPECT_GE(report.checkpoints, 1);   // per-round flush cadence
  EXPECT_GT(report.replica_bytes, 0);  // static + incremental replication
  EXPECT_GT(grid.metrics().counter("replica.flushes").value, 0);
}

TEST(Rebuild, SecondFailureTakingTheBuddyRethrows) {
  // Degraded mode remaps the dead logical onto its buddy; losing that
  // buddy too exceeds the single-fault tolerance and must surface.
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<double>(grid, 400, 6.0, 11);
  grid.reset();
  bfs(a, 0, {});
  const double total = grid.time();

  grid.reset();
  // Locale 1's buddy is 3 (n/2 away); kill both.
  ASSERT_EQ(replica_buddy_of(1, 4), 3);
  FaultPlan plan(FaultSpec::parse(
                     "kill:locale=1,at=" + std::to_string(total * 0.3) +
                     ";kill:locale=3,at=" + std::to_string(total * 0.3)),
                 3);
  RebuildOptions bopt;
  EXPECT_THROW(bfs_with_rebuild(a, 0, {}, &plan, bopt), LocaleFailed);
  // Even on the throwing path, the guard restored the grid.
  EXPECT_FALSE(grid.membership().remapped());
  EXPECT_EQ(grid.fault_plan(), nullptr);
}

// ---- straggler-aware barriers + the SpMSpV shedding hook ---------------

TEST(Straggler, BarrierSkewFlagsStalledLocale) {
  auto grid = LocaleGrid::square(4, 1);
  FaultPlan plan(FaultSpec::parse("stall:locale=2,ms=5"), 1);
  grid.set_fault_plan(&plan);
  grid.set_straggler_threshold(1e-3);
  grid.coforall_locales([&](LocaleCtx& ctx) {
    ctx.remote_msgs((ctx.locale() + 1) % 4, 10, 16);
  });
  grid.barrier_all();
  grid.set_fault_plan(nullptr);
  // Locale 2's sends each stalled 5 ms: it enters the barrier far behind.
  EXPECT_GE(grid.metrics().counter("straggler.detected").value, 1);
  EXPECT_GE(grid.straggler_hits(2), 1);
  EXPECT_EQ(grid.straggler_hits(0), 0);
  EXPECT_GE(grid.metrics().histogram("barrier.skew").count, 1);
}

TEST(Straggler, DetectionIsOffWithoutThresholdOrPlan) {
  auto grid = LocaleGrid::square(4, 1);
  grid.coforall_locales([&](LocaleCtx& ctx) {
    ctx.remote_msgs((ctx.locale() + 1) % 4, 10, 16);
  });
  grid.barrier_all();
  // No threshold, no plan: the skew histogram must not even register —
  // fault-free metric key sets are part of the profile-regression
  // contract.
  EXPECT_EQ(grid.metrics().find_histogram("barrier.skew"), nullptr);
  EXPECT_EQ(grid.metrics().find_counter("straggler.detected"), nullptr);
}

TEST(Straggler, SpmspvShedMovesChargingNotResults) {
  auto grid = LocaleGrid::square(4, 2);
  auto a = erdos_renyi_dist<double>(grid, 2000, 8.0, 7);
  auto x = random_dist_sparse_vec<double>(grid, 2000, 300, 9);
  grid.reset();
  const auto base = spmspv_dist(a, x, arithmetic_semiring<double>(), {});

  grid.reset();
  // Manufacture a straggler record for locale 1's host, then run with
  // shedding enabled and the plan detached.
  {
    FaultPlan plan(FaultSpec::parse("stall:locale=1,ms=5"), 1);
    grid.set_fault_plan(&plan);
    grid.set_straggler_threshold(1e-3);
    grid.coforall_locales([&](LocaleCtx& ctx) {
      ctx.remote_msgs((ctx.locale() + 1) % 4, 10, 16);
    });
    grid.barrier_all();
    grid.set_fault_plan(nullptr);
  }
  ASSERT_GE(grid.straggler_hits(1), 1);
  SpmspvOptions opt;
  opt.straggler_shed = 0.4;
  const auto shed = spmspv_dist(a, x, arithmetic_semiring<double>(), opt);
  EXPECT_GE(grid.metrics().counter("spmspv.rebalanced").value, 1);
  ASSERT_EQ(shed.nnz(), base.nnz());
  for (int l = 0; l < grid.num_locales(); ++l) {
    const auto bi = base.local(l).domain().indices();
    const auto si = shed.local(l).domain().indices();
    EXPECT_TRUE(std::equal(si.begin(), si.end(), bi.begin(), bi.end()))
        << "l=" << l;
    const auto bv = base.local(l).values();
    const auto sv = shed.local(l).values();
    EXPECT_TRUE(std::equal(sv.begin(), sv.end(), bv.begin(), bv.end()))
        << "l=" << l;
  }
}

}  // namespace
}  // namespace pgb
