// Tests for SSSP (vs a Dijkstra reference) and Luby's MIS
// (independence + maximality properties on random and structured
// graphs).
#include <gtest/gtest.h>

#include <queue>

#include "algo/mis.hpp"
#include "algo/sssp.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "util/rng.hpp"

namespace pgb {
namespace {

/// Builds an ER digraph with random positive weights in [1, 10).
Csr<double> weighted_er(Index n, double d, std::uint64_t seed) {
  auto structure = erdos_renyi_csr<double>(n, d, seed);
  Xoshiro256 rng(seed + 99);
  for (auto& v : structure.values()) {
    v = 1.0 + 9.0 * rng.next_double();
  }
  return structure;
}

std::vector<double> dijkstra(const Csr<double>& a, Index source) {
  std::vector<double> dist(static_cast<std::size_t>(a.nrows()),
                           SsspResult::kUnreachable);
  using Item = std::pair<double, Index>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(source)] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    auto [du, u] = pq.top();
    pq.pop();
    if (du > dist[static_cast<std::size_t>(u)]) continue;
    auto cols = a.row_colids(u);
    auto vals = a.row_values(u);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const double nd = du + vals[k];
      if (nd < dist[static_cast<std::size_t>(cols[k])]) {
        dist[static_cast<std::size_t>(cols[k])] = nd;
        pq.emplace(nd, cols[k]);
      }
    }
  }
  return dist;
}

class SsspGrids : public ::testing::TestWithParam<int> {};

TEST_P(SsspGrids, MatchesDijkstra) {
  const Index n = 300;
  auto local = weighted_er(n, 5.0, 11);
  auto grid = LocaleGrid::square(GetParam(), 4);
  Coo<double> coo(n, n);
  for (Index r = 0; r < n; ++r) {
    auto cols = local.row_colids(r);
    auto vals = local.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      coo.add(r, cols[k], vals[k]);
    }
  }
  auto a = DistCsr<double>::from_coo(grid, coo);

  auto res = sssp(a, /*source=*/0);
  auto ref = dijkstra(local, 0);
  for (Index v = 0; v < n; ++v) {
    if (ref[static_cast<std::size_t>(v)] == SsspResult::kUnreachable) {
      EXPECT_EQ(res.dist[static_cast<std::size_t>(v)],
                SsspResult::kUnreachable)
          << v;
    } else {
      EXPECT_NEAR(res.dist[static_cast<std::size_t>(v)],
                  ref[static_cast<std::size_t>(v)], 1e-9)
          << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, SsspGrids, ::testing::Values(1, 4, 9));

TEST(Sssp, PathGraphDistancesAreCumulative) {
  const Index n = 12;
  auto grid = LocaleGrid::square(4, 1);
  Coo<double> coo(n, n);
  for (Index i = 0; i + 1 < n; ++i) {
    coo.add(i, i + 1, static_cast<double>(i + 1));
  }
  auto a = DistCsr<double>::from_coo(grid, coo);
  auto res = sssp(a, 0);
  double acc = 0;
  for (Index v = 0; v < n; ++v) {
    EXPECT_NEAR(res.dist[static_cast<std::size_t>(v)], acc, 1e-12);
    acc += static_cast<double>(v + 1);
  }
  // n-1 relaxation rounds plus the final round that discovers no
  // improvement and empties the frontier.
  EXPECT_EQ(res.rounds, n);
}

TEST(Sssp, UnreachableVerticesStayAtInfinity) {
  auto grid = LocaleGrid::square(2, 1);
  Coo<double> coo(6, 6);
  coo.add(0, 1, 1.0);
  coo.add(4, 5, 1.0);  // separate island
  auto a = DistCsr<double>::from_coo(grid, coo);
  auto res = sssp(a, 0);
  EXPECT_EQ(res.dist[5], SsspResult::kUnreachable);
  EXPECT_EQ(res.dist[4], SsspResult::kUnreachable);
  EXPECT_NEAR(res.dist[1], 1.0, 1e-12);
}

TEST(Sssp, ShorterPathThroughMoreHopsWins) {
  // 0 -> 2 direct costs 10; 0 -> 1 -> 2 costs 3.
  auto grid = LocaleGrid::single(1);
  Coo<double> coo(3, 3);
  coo.add(0, 2, 10.0);
  coo.add(0, 1, 1.0);
  coo.add(1, 2, 2.0);
  auto a = DistCsr<double>::from_coo(grid, coo);
  auto res = sssp(a, 0);
  EXPECT_NEAR(res.dist[2], 3.0, 1e-12);
}

class MisGrids : public ::testing::TestWithParam<int> {};

TEST_P(MisGrids, IndependentAndMaximal) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 6;
  p.seed = 17;
  auto grid = LocaleGrid::square(GetParam(), 4);
  auto a = rmat_dist(grid, p);
  auto local = a.to_local();

  auto res = mis(a, /*seed=*/5);
  EXPECT_GT(res.set_size, 0);

  // Independence: no edge inside the set.
  for (Index u = 0; u < local.nrows(); ++u) {
    if (!res.in_set[static_cast<std::size_t>(u)]) continue;
    for (Index v : local.row_colids(u)) {
      EXPECT_FALSE(res.in_set[static_cast<std::size_t>(v)])
          << "edge " << u << "-" << v << " inside the set";
    }
  }
  // Maximality: every vertex outside the set has a neighbor inside.
  for (Index u = 0; u < local.nrows(); ++u) {
    if (res.in_set[static_cast<std::size_t>(u)]) continue;
    bool covered = false;
    for (Index v : local.row_colids(u)) {
      if (res.in_set[static_cast<std::size_t>(v)]) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "vertex " << u << " is not covered";
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, MisGrids, ::testing::Values(1, 4, 9));

TEST(Mis, EmptyGraphTakesAllVertices) {
  auto grid = LocaleGrid::square(2, 1);
  DistCsr<std::int64_t> a(grid, 20, 20);
  auto res = mis(a);
  EXPECT_EQ(res.set_size, 20);
  EXPECT_EQ(res.rounds, 1);
}

TEST(Mis, CliqueYieldsSingleVertex) {
  const Index n = 15;
  auto grid = LocaleGrid::square(4, 1);
  Coo<std::int64_t> coo(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if (i != j) coo.add(i, j, 1);
    }
  }
  auto a = DistCsr<std::int64_t>::from_coo(grid, coo);
  auto res = mis(a);
  EXPECT_EQ(res.set_size, 1);
}

TEST(Mis, DeterministicForFixedSeed) {
  RmatParams p;
  p.scale = 8;
  auto grid = LocaleGrid::square(4, 1);
  auto a = rmat_dist(grid, p);
  auto r1 = mis(a, 7);
  auto r2 = mis(a, 7);
  EXPECT_EQ(r1.in_set, r2.in_set);
  EXPECT_EQ(r1.rounds, r2.rounds);
}

}  // namespace
}  // namespace pgb
