// Tests for the profile/regression-gate plane: the util/json reader,
// profile construction from a trace session (span-tree folding,
// inclusive/self time, per-locale stats, counter deltas), the stable
// serialization contract (same seed -> byte-identical profile.json in
// every comm mode), the diff semantics pgb_diff builds on (exact counts,
// banded times, improvements are not failures), the Perfetto counter
// tracks (monotone per track, epoch-guarded across grid.reset()), and
// the histogram quantile summaries in the metrics JSON.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "runtime/aggregator.hpp"
#include "runtime/locale_grid.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace pgb {
namespace {

using obs::build_profile;
using obs::diff_profiles;
using obs::MetricsRegistry;
using obs::Profile;
using obs::ProfileDiffOptions;
using obs::ProfileDiffResult;
using obs::ProfileFinding;
using obs::TraceSession;

// ---------------------------------------------------------------------
// util/json reader
// ---------------------------------------------------------------------

TEST(Json, ParsesScalarsAndNesting) {
  const JsonValue v = json_parse(
      R"({"a": 1, "b": -2.5, "c": [true, false, null, "s"], "d": {"e": 9007199254740993}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_TRUE(v.at("a").is_int);
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_FALSE(v.at("b").is_int);
  EXPECT_DOUBLE_EQ(v.at("b").as_double(), -2.5);
  ASSERT_TRUE(v.at("c").is_array());
  ASSERT_EQ(v.at("c").size(), 4u);
  EXPECT_TRUE(v.at("c").at(0).as_bool());
  EXPECT_FALSE(v.at("c").at(1).as_bool());
  EXPECT_TRUE(v.at("c").at(2).is_null());
  EXPECT_EQ(v.at("c").at(3).as_string(), "s");
  // Exact int64 beyond double's 2^53 integer range.
  EXPECT_EQ(v.at("d").at("e").as_int(), 9007199254740993LL);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), InvalidArgument);
}

TEST(Json, DecodesEscapesIncludingSurrogatePairs) {
  const JsonValue v = json_parse(
      "{\"s\": \"q\\\" b\\\\ n\\n t\\t u\\u00e9 p\\ud83d\\ude00\"}");
  // é = é (2 UTF-8 bytes); 😀 = 😀 (4 bytes).
  EXPECT_EQ(v.at("s").as_string(),
            std::string("q\" b\\ n\n t\t u\xc3\xa9 p\xf0\x9f\x98\x80"));
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json_parse(""), InvalidArgument);
  EXPECT_THROW(json_parse("{"), InvalidArgument);
  EXPECT_THROW(json_parse("[1,]"), InvalidArgument);
  EXPECT_THROW(json_parse("{\"a\":1} trailing"), InvalidArgument);
  EXPECT_THROW(json_parse("nul"), InvalidArgument);
  EXPECT_THROW(json_parse("\"unterminated"), InvalidArgument);
}

// ---------------------------------------------------------------------
// Profile construction from a hand-built session
// ---------------------------------------------------------------------

// Two locales; on each, "op" [0,10] with a nested "op.inner". Locale 1
// is slower (inner [2,9] vs [2,6]) so the per-locale stats differ, and
// integer args accumulate into node counters.
TraceSession make_session() {
  TraceSession s;
  for (int loc = 0; loc < 2; ++loc) {
    s.begin_span(loc, "op", 0.0);
    s.begin_span(loc, "op.inner", 2.0, {{"d_messages", "3"}});
    s.end_span(loc, loc == 0 ? 6.0 : 9.0);
    s.end_span(loc, 10.0, {{"d_bytes", "100"}});
  }
  return s;
}

TEST(ProfileBuild, FoldsSpanTreeWithInclusiveAndSelfTime) {
  const TraceSession s = make_session();
  const Profile p = build_profile(s, MetricsRegistry().snapshot());

  ASSERT_EQ(p.spans.size(), 1u);
  const obs::ProfileNode& op = p.spans.at("op");
  EXPECT_EQ(op.count, 2);
  EXPECT_EQ(op.locales, 2);
  EXPECT_DOUBLE_EQ(op.incl, 20.0);       // 10 + 10
  EXPECT_DOUBLE_EQ(op.self, 20.0 - 11.0);  // minus inner 4 + 7
  EXPECT_DOUBLE_EQ(op.incl_min, 10.0);
  EXPECT_DOUBLE_EQ(op.incl_mean, 10.0);
  EXPECT_DOUBLE_EQ(op.incl_max, 10.0);
  EXPECT_EQ(op.counters.at("d_bytes"), 200);

  ASSERT_EQ(op.children.size(), 1u);
  const obs::ProfileNode& inner = op.children.at("op.inner");
  EXPECT_EQ(inner.count, 2);
  EXPECT_DOUBLE_EQ(inner.incl, 11.0);  // 4 + 7
  EXPECT_DOUBLE_EQ(inner.self, 11.0);  // leaf
  EXPECT_DOUBLE_EQ(inner.incl_min, 4.0);
  EXPECT_DOUBLE_EQ(inner.incl_mean, 5.5);
  EXPECT_DOUBLE_EQ(inner.incl_max, 7.0);
  EXPECT_EQ(inner.counters.at("d_messages"), 6);
}

TEST(ProfileBuild, SerializationRoundTripsByteForByte) {
  const TraceSession s = make_session();
  MetricsRegistry reg;
  reg.counter("comm.messages").inc(42);
  reg.histogram("agg.occupancy", {{"dir", "put"}}).observe(7);
  Profile p = build_profile(s, reg.snapshot());
  p.workload = "unit test";
  p.comm = "agg";
  p.seed = 5;
  p.locales = 2;
  p.threads = 24;
  p.machine = "edison";

  const std::string text = p.json();
  const Profile back = Profile::from_json(text);
  // Render -> parse -> render is idempotent: the stable-format contract
  // the byte-identical baseline diffing relies on.
  EXPECT_EQ(back.json(), text);
  EXPECT_EQ(back.workload, "unit test");
  EXPECT_EQ(back.seed, 5u);
  EXPECT_EQ(back.counters.at("comm.messages"), 42);
  EXPECT_EQ(back.histograms.at("agg.occupancy{dir=put}").count, 1);
  EXPECT_EQ(back.spans.at("op").children.at("op.inner").counters.at(
                "d_messages"),
            6);
}

// ---------------------------------------------------------------------
// Trace exporter escaping round-trips through the JSON reader
// ---------------------------------------------------------------------

TEST(TraceExport, HostileNamesRoundTripThroughParser) {
  TraceSession s;
  const std::string hostile = "he said \"hi\"\\\n\ttab\x01";
  s.begin_span(0, hostile, 0.0, {{"arg \"k\"", "v\\\n"}});
  s.end_span(0, 1.0);
  s.instant(0, hostile, 0.5);
  s.counter(hostile, 0.25, 2.0);

  const JsonValue doc = json_parse(s.chrome_trace_json());
  const JsonValue& events = doc.at("traceEvents");
  int seen = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.find("name") != nullptr && e.at("name").as_string() == hostile) {
      ++seen;
      if (e.at("ph").as_string() == "X") {
        EXPECT_EQ(e.at("args").at("arg \"k\"").as_string(), "v\\\n");
      }
    }
  }
  // The span, the instant, and the counter sample all survive intact.
  EXPECT_EQ(seen, 3);
}

TEST(TraceExport, CounterSamplesBecomeWellFormedCEvents) {
  TraceSession s;
  s.counter("comm.messages", 0.0, 0.0);
  s.counter("comm.messages", 1.5, 12.0);
  const JsonValue doc = json_parse(s.chrome_trace_json());
  const JsonValue& events = doc.at("traceEvents");
  std::vector<double> values;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& e = events.at(i);
    if (e.at("ph").as_string() != "C") continue;
    EXPECT_EQ(e.at("name").as_string(), "comm.messages");
    EXPECT_EQ(e.at("pid").as_int(), 0);
    values.push_back(e.at("args").at("value").as_double());
  }
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 0.0);
  EXPECT_DOUBLE_EQ(values[1], 12.0);
}

// ---------------------------------------------------------------------
// Counter tracks on a real kernel run
// ---------------------------------------------------------------------

TEST(CounterTracks, MonotoneNonDecreasingPerTrack) {
  auto grid = LocaleGrid::square(16, 4);
  const Index n = 20000;
  auto a = erdos_renyi_dist<double>(grid, n, 8.0, 5);
  auto x = random_dist_sparse_vec<double>(grid, n, 400, 6);
  TraceSession session;
  grid.set_trace_session(&session);
  grid.reset();
  SpmspvOptions opt;
  opt.comm = CommMode::kAggregated;
  spmspv_dist(a, x, arithmetic_semiring<double>(), opt);

  ASSERT_FALSE(session.counter_samples().empty());
  std::map<std::string, std::pair<double, double>> last;  // name -> ts,val
  int checked = 0;
  for (const auto& c : session.counter_samples()) {
    auto it = last.find(c.name);
    if (it != last.end()) {
      EXPECT_GE(c.sim_ts, it->second.first) << c.name;
      EXPECT_GE(c.value, it->second.second) << c.name;
      ++checked;
    }
    last[c.name] = {c.sim_ts, c.value};
  }
  EXPECT_GT(checked, 0);
  // The standard tracks are present.
  EXPECT_TRUE(last.count("comm.messages"));
  EXPECT_TRUE(last.count("comm.bytes"));
  EXPECT_TRUE(last.count("agg.flushes"));
  grid.set_trace_session(nullptr);
}

TEST(CounterTracks, EpochGuardAcrossGridReset) {
  auto grid = LocaleGrid::square(4, 2);
  TraceSession session;
  grid.set_trace_session(&session);
  grid.reset();

  auto* span = new obs::GridSpan(grid, "stale.phase");
  EXPECT_FALSE(session.counter_samples().empty());  // sampled at open
  grid.reset();  // clears the session and bumps the epoch
  EXPECT_TRUE(session.counter_samples().empty());
  EXPECT_TRUE(session.spans().empty());
  delete span;  // end() must notice the epoch change and stay silent
  EXPECT_TRUE(session.counter_samples().empty());
  EXPECT_TRUE(session.spans().empty());
  grid.set_trace_session(nullptr);
}

// ---------------------------------------------------------------------
// Byte-identical profiles per comm mode (same seed, two runs)
// ---------------------------------------------------------------------

std::string profile_json_for(CommMode mode) {
  auto grid = LocaleGrid::square(16, 4);
  const Index n = 20000;
  auto a = erdos_renyi_dist<double>(grid, n, 8.0, 5);
  auto x = random_dist_sparse_vec<double>(grid, n, 400, 6);
  TraceSession session;
  grid.set_trace_session(&session);
  grid.reset();
  SpmspvOptions opt;
  opt.comm = mode;
  spmspv_dist(a, x, arithmetic_semiring<double>(), opt);
  Profile p = build_profile(session, grid.metrics().snapshot());
  p.workload = "spmspv er n=20000 d=8";
  p.comm = to_string(mode);
  p.seed = 5;
  p.locales = grid.num_locales();
  p.threads = grid.threads();
  p.machine = "edison";
  grid.set_trace_session(nullptr);
  return p.json();
}

TEST(ProfileDeterminism, SameSeedByteIdenticalInEveryCommMode) {
  for (CommMode mode :
       {CommMode::kFine, CommMode::kBulk, CommMode::kAggregated}) {
    const std::string one = profile_json_for(mode);
    const std::string two = profile_json_for(mode);
    EXPECT_EQ(one, two) << "comm mode " << to_string(mode);
    // And the modes are genuinely different runs, not one cached result.
    const Profile p = Profile::from_json(one);
    EXPECT_EQ(p.comm, to_string(mode));
  }
}

// ---------------------------------------------------------------------
// Diff semantics
// ---------------------------------------------------------------------

Profile real_profile() {
  Profile p = Profile::from_json(profile_json_for(CommMode::kAggregated));
  return p;
}

TEST(ProfileDiff, IdenticalProfilesAreClean) {
  const Profile p = real_profile();
  const ProfileDiffResult d = diff_profiles(p, p);
  EXPECT_TRUE(d.clean());
  EXPECT_TRUE(d.findings.empty());
  EXPECT_GT(d.compared, 10);
}

TEST(ProfileDiff, TenPercentGatherSlowdownTripsTheGate) {
  const Profile base = real_profile();
  Profile cand = base;
  obs::scale_span_times(cand, "spmspv.gather", 1.1);
  const ProfileDiffResult d = diff_profiles(base, cand);
  EXPECT_FALSE(d.clean());
  bool saw_gather = false;
  for (const auto& f : d.findings) {
    EXPECT_EQ(f.kind, ProfileFinding::Kind::kRegression);
    if (f.where.find("spmspv.gather") != std::string::npos) {
      saw_gather = true;
    }
  }
  EXPECT_TRUE(saw_gather);
}

TEST(ProfileDiff, WithinBandDriftIsClean) {
  const Profile base = real_profile();
  Profile cand = base;
  obs::scale_span_times(cand, "spmspv.gather", 1.02);  // inside 5% band
  // Counts/counters are untouched, so only banded times moved.
  EXPECT_TRUE(diff_profiles(base, cand).clean());
}

TEST(ProfileDiff, ImprovementIsReportedButNotAFailure) {
  const Profile base = real_profile();
  Profile cand = base;
  obs::scale_span_times(cand, "spmspv.gather", 0.8);
  const ProfileDiffResult d = diff_profiles(base, cand);
  EXPECT_TRUE(d.clean());
  bool saw_improvement = false;
  for (const auto& f : d.findings) {
    if (f.kind == ProfileFinding::Kind::kImprovement) saw_improvement = true;
  }
  EXPECT_TRUE(saw_improvement);
}

TEST(ProfileDiff, CounterDriftFailsExactly) {
  const Profile base = real_profile();
  Profile cand = base;
  ASSERT_FALSE(cand.counters.empty());
  cand.counters.begin()->second += 1;  // one message of drift
  EXPECT_FALSE(diff_profiles(base, cand).clean());
}

TEST(ProfileDiff, MissingSpanIsStructural) {
  const Profile base = real_profile();
  Profile cand = base;
  ASSERT_FALSE(cand.spans.empty());
  cand.spans.erase(cand.spans.begin());
  const ProfileDiffResult d = diff_profiles(base, cand);
  EXPECT_FALSE(d.clean());
  bool structural = false;
  for (const auto& f : d.findings) {
    if (f.kind == ProfileFinding::Kind::kStructural) structural = true;
  }
  EXPECT_TRUE(structural);
}

TEST(ProfileDiff, WorkloadIdentityMismatchIsStructural) {
  const Profile base = real_profile();
  Profile cand = base;
  cand.comm = "fine";
  EXPECT_FALSE(diff_profiles(base, cand).clean());
}

// ---------------------------------------------------------------------
// Metrics JSON histogram summaries
// ---------------------------------------------------------------------

TEST(MetricsJson, HistogramsCarryQuantileSummaries) {
  MetricsRegistry reg;
  auto& h = reg.histogram("agg.occupancy", {{"dir", "put"}});
  for (int i = 1; i <= 100; ++i) h.observe(i);
  const JsonValue doc = json_parse(reg.json());
  const JsonValue& metrics = doc.at("metrics");
  const JsonValue* hist = nullptr;
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    if (metrics.at(i).at("name").as_string() == "agg.occupancy{dir=put}") {
      hist = &metrics.at(i);
    }
  }
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->at("kind").as_string(), "histogram");
  EXPECT_EQ(hist->at("count").as_int(), 100);
  EXPECT_EQ(hist->at("sum").as_int(), 5050);
  EXPECT_DOUBLE_EQ(hist->at("mean").as_double(), 50.5);
  // Power-of-two bucket upper bounds: p50 of 1..100 lands in (31,63],
  // p95 and max in (63,127].
  EXPECT_EQ(hist->at("p50").as_int(), 63);
  EXPECT_EQ(hist->at("p95").as_int(), 127);
  EXPECT_EQ(hist->at("max").as_int(), 127);
  EXPECT_TRUE(hist->at("buckets").is_array());

  // The snapshot-side helper agrees.
  const auto snap = reg.snapshot();
  for (const auto& [key, v] : snap.values) {
    if (v.kind != obs::MetricKind::kHistogram) continue;
    EXPECT_EQ(v.hist_quantile_bound(0.5), 63);
    EXPECT_EQ(v.hist_quantile_bound(1.0), 127);
  }
}

TEST(MetricsJson, FindDoesNotRegister) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  EXPECT_TRUE(reg.snapshot().values.empty());
  reg.counter("yes").inc(2);
  ASSERT_NE(reg.find_counter("yes"), nullptr);
  EXPECT_EQ(reg.find_counter("yes")->value, 2);
}

}  // namespace
}  // namespace pgb
