// Tests for eWiseMult (sparse x dense, both variants; sparse x sparse)
// and eWiseAdd, plus the Fig 4/5 modeled-performance shapes.
#include <gtest/gtest.h>

#include "core/ewise_add.hpp"
#include "core/ewise_mult.hpp"
#include "core/ops.hpp"
#include "gen/random_vec.hpp"

namespace pgb {
namespace {

struct KeepTrue {
  bool operator()(std::uint8_t b) const { return b != 0; }
};

class EwiseGrids : public ::testing::TestWithParam<int> {};

TEST_P(EwiseGrids, SparseDenseKeepsExactlyMaskedEntries) {
  auto grid = LocaleGrid::square(GetParam(), 4);
  const Index n = 4000;
  auto x = random_dist_sparse_vec<double>(grid, n, 600, 1);
  auto y = random_dist_bool_vec(grid, n, 0.5, 2);

  auto z = ewise_mult_sd(x, y, FirstOp{}, KeepTrue{});
  EXPECT_TRUE(z.check_invariants());

  auto lx = x.to_local();
  auto lz = z.to_local();
  Index expected = 0;
  for (Index p = 0; p < lx.nnz(); ++p) {
    const Index i = lx.index_at(p);
    if (y.at(i)) {
      ++expected;
      const double* v = lz.find(i);
      ASSERT_NE(v, nullptr);
      EXPECT_DOUBLE_EQ(*v, lx.value_at(p));
    } else {
      EXPECT_EQ(lz.find(i), nullptr);
    }
  }
  EXPECT_EQ(lz.nnz(), expected);
}

TEST_P(EwiseGrids, AtomicAndScanVariantsAgree) {
  auto grid = LocaleGrid::square(GetParam(), 4);
  const Index n = 3000;
  auto x = random_dist_sparse_vec<double>(grid, n, 500, 3);
  auto y = random_dist_bool_vec(grid, n, 0.4, 4);

  auto za = ewise_mult_sd(x, y, FirstOp{}, KeepTrue{}, EwiseVariant::kAtomic);
  auto zs = ewise_mult_sd(x, y, FirstOp{}, KeepTrue{}, EwiseVariant::kScan);
  auto a = za.to_local();
  auto s = zs.to_local();
  ASSERT_EQ(a.nnz(), s.nnz());
  for (Index p = 0; p < a.nnz(); ++p) {
    EXPECT_EQ(a.index_at(p), s.index_at(p));
    EXPECT_DOUBLE_EQ(a.value_at(p), s.value_at(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, EwiseGrids, ::testing::Values(1, 2, 4, 9));

TEST(Ewise, MultiplyOperatorIsApplied) {
  auto grid = LocaleGrid::single(2);
  auto x = DistSparseVec<double>::from_sorted(grid, 10, {1, 3, 5},
                                              {1.0, 3.0, 5.0});
  DistDenseVec<std::uint8_t> y(grid, 10, 1);  // all true
  auto z = ewise_mult_sd(x, y, TimesOp{}, KeepTrue{});
  auto lz = z.to_local();
  ASSERT_EQ(lz.nnz(), 3);
  // value = x[i] * y[i] with y == 1
  EXPECT_DOUBLE_EQ(lz.value_at(0), 1.0);
  EXPECT_DOUBLE_EQ(lz.value_at(2), 5.0);
}

TEST(Ewise, AllFalseMaskYieldsEmpty) {
  auto grid = LocaleGrid::square(4, 1);
  auto x = random_dist_sparse_vec<double>(grid, 500, 100, 9);
  DistDenseVec<std::uint8_t> y(grid, 500, 0);
  auto z = ewise_mult_sd(x, y, FirstOp{}, KeepTrue{});
  EXPECT_EQ(z.nnz(), 0);
}

TEST(Ewise, ShapeMismatchThrows) {
  auto grid = LocaleGrid::single(1);
  DistSparseVec<double> x(grid, 10);
  DistDenseVec<std::uint8_t> y(grid, 11);
  EXPECT_THROW(ewise_mult_sd(x, y, FirstOp{}, KeepTrue{}),
               DimensionMismatch);
}

TEST(EwiseSparseSparse, IntersectionSemantics) {
  auto grid = LocaleGrid::square(2, 1);
  auto x = DistSparseVec<double>::from_sorted(grid, 12, {1, 4, 7, 10},
                                              {1, 4, 7, 10});
  auto w = DistSparseVec<double>::from_sorted(grid, 12, {2, 4, 10},
                                              {20, 40, 100});
  auto z = ewise_mult_ss(x, w, TimesOp{});
  auto lz = z.to_local();
  ASSERT_EQ(lz.nnz(), 2);
  EXPECT_EQ(lz.index_at(0), 4);
  EXPECT_DOUBLE_EQ(lz.value_at(0), 160.0);
  EXPECT_EQ(lz.index_at(1), 10);
  EXPECT_DOUBLE_EQ(lz.value_at(1), 1000.0);
}

TEST(EwiseAdd, UnionSemantics) {
  auto grid = LocaleGrid::square(2, 1);
  auto x = DistSparseVec<double>::from_sorted(grid, 12, {1, 4, 10},
                                              {1, 4, 10});
  auto w = DistSparseVec<double>::from_sorted(grid, 12, {2, 4, 11},
                                              {2, 40, 11});
  auto z = ewise_add(x, w, PlusOp{});
  auto lz = z.to_local();
  ASSERT_EQ(lz.nnz(), 5);
  EXPECT_DOUBLE_EQ(*lz.find(1), 1.0);
  EXPECT_DOUBLE_EQ(*lz.find(2), 2.0);
  EXPECT_DOUBLE_EQ(*lz.find(4), 44.0);
  EXPECT_DOUBLE_EQ(*lz.find(10), 10.0);
  EXPECT_DOUBLE_EQ(*lz.find(11), 11.0);
}

TEST(EwiseAdd, EmptyOperands) {
  auto grid = LocaleGrid::single(1);
  DistSparseVec<double> x(grid, 10);
  auto w = DistSparseVec<double>::from_sorted(grid, 10, {3}, {3.0});
  auto z = ewise_add(x, w, PlusOp{});
  EXPECT_EQ(z.nnz(), 1);
  auto z2 = ewise_mult_ss(x, w, TimesOp{});
  EXPECT_EQ(z2.nnz(), 0);
}

// ---- modeled-performance shapes (Figs 4-5) ----

TEST(EwiseModel, LargeInputScalesSmallInputDoesNot) {
  auto run = [&](Index nnz, int threads) {
    auto g = LocaleGrid::single(threads);
    auto x = random_dist_sparse_vec<double>(g, 2 * nnz, nnz, 1);
    auto y = random_dist_bool_vec(g, 2 * nnz, 0.5, 2);
    g.reset();
    ewise_mult_sd(x, y, FirstOp{}, KeepTrue{});
    return g.time();
  };
  // Fig 4: 100M scales ~13x at 24 threads; 10K is flat (spawn-bound).
  const double big = run(2000000, 1) / run(2000000, 24);
  const double small = run(10000, 1) / run(10000, 24);
  EXPECT_GT(big, 8.0);
  EXPECT_LT(big, 24.0);  // capped below ideal by the atomic counter
  EXPECT_LT(small, 2.0);
}

TEST(EwiseModel, ScanVariantBeatsAtomicAtScale) {
  const Index nnz = 2000000;
  auto g = LocaleGrid::single(24);
  auto x = random_dist_sparse_vec<double>(g, 2 * nnz, nnz, 1);
  auto y = random_dist_bool_vec(g, 2 * nnz, 0.5, 2);
  g.reset();
  ewise_mult_sd(x, y, FirstOp{}, KeepTrue{}, EwiseVariant::kAtomic);
  const double ta = g.time();
  g.reset();
  ewise_mult_sd(x, y, FirstOp{}, KeepTrue{}, EwiseVariant::kScan);
  const double ts = g.time();
  EXPECT_LT(ts, ta);
}

TEST(EwiseModel, DistributedScalingFlattens) {
  // Fig 5: 100M-scale input gains up to ~32 nodes, then flattens.
  auto run = [&](int nloc, Index nnz) {
    auto g = LocaleGrid::square(nloc, 24);
    auto x = random_dist_sparse_vec<double>(g, 2 * nnz, nnz, 1);
    auto y = random_dist_bool_vec(g, 2 * nnz, 0.5, 2);
    g.reset();
    ewise_mult_sd(x, y, FirstOp{}, KeepTrue{});
    return g.time();
  };
  const Index big = 10000000;
  const double t1 = run(1, big);
  const double t16 = run(16, big);
  const double t64 = run(64, big);
  EXPECT_GT(t1 / t16, 8.0);            // still scaling at 16 nodes
  EXPECT_LT(t16 / t64, 3.0);           // mostly flat beyond
  // Small input: no useful distributed scaling at all.
  EXPECT_LT(run(1, 100000) / run(64, 100000), 3.0);
}

}  // namespace
}  // namespace pgb
