// Tests for the CSC format, CSR<->CSC conversions, and the column-wise
// SpMSpV kernel.
#include <gtest/gtest.h>

#include "core/ops.hpp"
#include "core/spmspv_cw.hpp"
#include "core/transpose.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"
#include "sparse/csc.hpp"

namespace pgb {
namespace {

TEST(Csc, FromCsrPreservesEntries) {
  Coo<double> coo(3, 4);
  coo.add(0, 1, 10);
  coo.add(0, 3, 30);
  coo.add(2, 0, 5);
  coo.add(2, 1, 21);
  auto csr = coo.to_csr();
  auto csc = Csc<double>::from_csr(csr);
  EXPECT_TRUE(csc.check_invariants());
  EXPECT_EQ(csc.nnz(), 4);
  EXPECT_EQ(csc.col_nnz(1), 2);
  auto rows1 = csc.col_rowids(1);
  ASSERT_EQ(rows1.size(), 2u);
  EXPECT_EQ(rows1[0], 0);
  EXPECT_EQ(rows1[1], 2);
  EXPECT_DOUBLE_EQ(csc.col_values(1)[1], 21.0);
  EXPECT_EQ(csc.col_nnz(2), 0);
}

TEST(Csc, RoundTripsThroughCsr) {
  auto csr = erdos_renyi_csr<double>(200, 6.0, 7);
  auto back = Csc<double>::from_csr(csr).to_csr();
  ASSERT_EQ(back.nnz(), csr.nnz());
  for (Index r = 0; r < csr.nrows(); ++r) {
    auto a = csr.row_colids(r);
    auto b = back.row_colids(r);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k], b[k]);
      EXPECT_DOUBLE_EQ(csr.row_values(r)[k], back.row_values(r)[k]);
    }
  }
}

TEST(Csc, EmptyMatrix) {
  Csc<double> m(0, 0);
  EXPECT_TRUE(m.check_invariants());
  auto from_empty = Csc<double>::from_csr(Csr<double>(5, 5));
  EXPECT_EQ(from_empty.nnz(), 0);
  EXPECT_TRUE(from_empty.check_invariants());
}

class ColumnwiseSweep
    : public ::testing::TestWithParam<std::pair<Index, double>> {};

TEST_P(ColumnwiseSweep, ComputesAtimesX) {
  const auto [n, f] = GetParam();
  auto csr = erdos_renyi_csr<std::int64_t>(n, 6.0, 9);
  auto csc = Csc<std::int64_t>::from_csr(csr);
  auto x = random_sparse_vec<std::int64_t>(
      n, std::max<Index>(1, static_cast<Index>(f * static_cast<double>(n))),
      10);
  const auto sr = arithmetic_semiring<std::int64_t>();

  auto grid = LocaleGrid::single(2);
  LocaleCtx ctx(grid, 0);
  auto y = spmspv_columnwise(ctx, csc, 0, x, 0, sr);

  // Reference: y[r] = sum over c of A[r,c] * x[c].
  for (Index r = 0; r < n; ++r) {
    std::int64_t ref = 0;
    auto cols = csr.row_colids(r);
    auto vals = csr.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const std::int64_t* xv = x.find(cols[k]);
      if (xv) ref += *xv * vals[k];
    }
    const std::int64_t* got = y.find(r);
    EXPECT_EQ(got ? *got : 0, ref) << "row " << r;
  }
  EXPECT_TRUE(is_sorted_ascending(y.domain().indices()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ColumnwiseSweep,
    ::testing::Values(std::pair<Index, double>{100, 0.1},
                      std::pair<Index, double>{1000, 0.02},
                      std::pair<Index, double>{1000, 0.5},
                      std::pair<Index, double>{5000, 0.01}));

TEST(Columnwise, EquivalentToRowwiseOnTranspose) {
  // A x computed column-wise == x A^T computed row-wise.
  const Index n = 500;
  auto csr = erdos_renyi_csr<std::int64_t>(n, 8.0, 13);
  auto csc = Csc<std::int64_t>::from_csr(csr);
  auto at = transpose_local(csr);
  auto x = random_sparse_vec<std::int64_t>(n, 60, 14);
  const auto sr = arithmetic_semiring<std::int64_t>();

  auto grid = LocaleGrid::single(1);
  LocaleCtx ctx(grid, 0);
  auto cw = spmspv_columnwise(ctx, csc, 0, x, 0, sr);
  auto rw = spmspv_shm(ctx, at, 0, x, 0, n, sr);
  EXPECT_TRUE(cw == rw);
}

TEST(Columnwise, SameModeledCostAsRowwise) {
  // Fig 6's caption: orientation does not change the complexity. The
  // charges should be identical for the same visit counts.
  const Index n = 100000;
  auto csr = erdos_renyi_csr<std::int64_t>(n, 8.0, 5);
  auto csc = Csc<std::int64_t>::from_csr(csr);
  auto at = transpose_local(csr);
  auto x = random_sparse_vec<std::int64_t>(n, n / 50, 6);
  const auto sr = arithmetic_semiring<std::int64_t>();

  auto g1 = LocaleGrid::single(24);
  LocaleCtx c1(g1, 0);
  spmspv_columnwise(c1, csc, 0, x, 0, sr);
  auto g2 = LocaleGrid::single(24);
  LocaleCtx c2(g2, 0);
  spmspv_shm(c2, at, 0, x, 0, n, sr);
  EXPECT_NEAR(g1.time(), g2.time(), g2.time() * 0.05);
}

}  // namespace
}  // namespace pgb
