// Tests for the fused masked SpMSpV and the direction-optimizing
// (hybrid top-down/bottom-up) BFS extension.
#include <gtest/gtest.h>

#include "algo/bfs.hpp"
#include "algo/bfs_hybrid.hpp"
#include "core/mask.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"
#include "gen/rmat.hpp"

namespace pgb {
namespace {

class MaskedGrids : public ::testing::TestWithParam<int> {};

TEST_P(MaskedGrids, FusedMaskEqualsSeparateMaskPass) {
  const Index n = 500;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 6.0, 3);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, 60, 4);
  DistDenseVec<std::uint8_t> mask(grid, n, 0);
  for (Index i = 0; i < n; i += 3) mask.at(i) = 1;
  const auto sr = arithmetic_semiring<std::int64_t>();

  for (MaskMode mode : {MaskMode::kMask, MaskMode::kComplement}) {
    auto fused = spmspv_dist_masked(a, x, mask, mode, sr);
    auto separate = apply_mask(spmspv_dist(a, x, sr), mask, mode);
    auto f = fused.to_local();
    auto s = separate.to_local();
    ASSERT_EQ(f.nnz(), s.nnz());
    for (Index p = 0; p < f.nnz(); ++p) {
      EXPECT_EQ(f.index_at(p), s.index_at(p));
      EXPECT_EQ(f.value_at(p), s.value_at(p));
    }
  }
}

TEST_P(MaskedGrids, FusedMaskIsCheaperThanSeparatePass) {
  const Index n = 100000;
  auto grid = LocaleGrid::square(GetParam(), 24);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 8.0, 3);
  auto x = random_dist_sparse_vec<std::int64_t>(grid, n, n / 20, 4);
  DistDenseVec<std::uint8_t> mask(grid, n, 0);
  const auto sr = arithmetic_semiring<std::int64_t>();

  grid.reset();
  spmspv_dist_masked(a, x, mask, MaskMode::kMask, sr);
  const double fused = grid.time();
  grid.reset();
  apply_mask(spmspv_dist(a, x, sr), mask, MaskMode::kMask);
  const double separate = grid.time();
  EXPECT_LT(fused, separate);
}

INSTANTIATE_TEST_SUITE_P(Grids, MaskedGrids, ::testing::Values(1, 4, 9));

TEST(MaskedSpmspv, MaskSizeValidated) {
  auto grid = LocaleGrid::single(1);
  DistCsr<std::int64_t> a(grid, 10, 10);
  DistSparseVec<std::int64_t> x(grid, 10);
  DistDenseVec<std::uint8_t> mask(grid, 9);
  EXPECT_THROW(spmspv_dist_masked(a, x, mask, MaskMode::kMask,
                                  arithmetic_semiring<std::int64_t>()),
               DimensionMismatch);
}

class HybridGrids : public ::testing::TestWithParam<int> {};

TEST_P(HybridGrids, MatchesPlainBfsExactly) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 3;
  auto grid = LocaleGrid::square(GetParam(), 4);
  auto a = rmat_dist(grid, p);

  auto plain = bfs(a, /*source=*/0);
  auto hybrid = bfs_hybrid(a, /*source=*/0);

  ASSERT_EQ(hybrid.level_sizes.size(), plain.level_sizes.size());
  for (std::size_t i = 0; i < plain.level_sizes.size(); ++i) {
    EXPECT_EQ(hybrid.level_sizes[i], plain.level_sizes[i]) << "level " << i;
  }
  ASSERT_EQ(hybrid.parent.size(), plain.parent.size());
  for (std::size_t v = 0; v < plain.parent.size(); ++v) {
    EXPECT_EQ(hybrid.parent[v], plain.parent[v]) << "vertex " << v;
  }
}

TEST_P(HybridGrids, BottomUpActuallyTriggers) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 16;  // dense frontier in the middle levels
  p.seed = 9;
  auto grid = LocaleGrid::square(GetParam(), 4);
  auto a = rmat_dist(grid, p);
  auto res = bfs_hybrid(a, 0);
  bool any_bottom_up = false;
  for (bool b : res.level_was_bottom_up) any_bottom_up |= b;
  EXPECT_TRUE(any_bottom_up);
}

INSTANTIATE_TEST_SUITE_P(Grids, HybridGrids, ::testing::Values(1, 4, 9));

TEST(Hybrid, AlphaInfinityNeverGoesBottomUp) {
  RmatParams p;
  p.scale = 9;
  auto grid = LocaleGrid::square(4, 2);
  auto a = rmat_dist(grid, p);
  HybridBfsOptions opt;
  opt.alpha = 0.5;  // threshold = 2n: never reached
  auto res = bfs_hybrid(a, 0, opt);
  for (bool b : res.level_was_bottom_up) EXPECT_FALSE(b);
}

TEST(Hybrid, ModelFavorsBottomUpOnBigFrontiers) {
  // On a graph whose middle levels cover most vertices, hybrid should be
  // modeled faster than pure top-down.
  RmatParams p;
  p.scale = 14;
  p.edge_factor = 16;
  auto grid = LocaleGrid::square(16, 24);
  auto a = rmat_dist(grid, p);

  grid.reset();
  bfs(a, 0);
  const double topdown = grid.time();

  grid.reset();
  bfs_hybrid(a, 0);
  const double hybrid = grid.time();
  EXPECT_LT(hybrid, topdown);
}

}  // namespace
}  // namespace pgb
