// Tests for betweenness centrality (vs a sequential Brandes reference)
// and k-truss (vs known decompositions).
#include <gtest/gtest.h>

#include <queue>

#include "algo/betweenness.hpp"
#include "algo/ktruss.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"

namespace pgb {
namespace {

/// Sequential Brandes reference for unweighted directed graphs.
std::vector<double> brandes_reference(const Csr<std::int64_t>& a,
                                      const std::vector<Index>& sources) {
  const Index n = a.nrows();
  std::vector<double> bc(static_cast<std::size_t>(n), 0.0);
  for (Index s : sources) {
    std::vector<std::vector<Index>> pred(static_cast<std::size_t>(n));
    std::vector<double> sigma(static_cast<std::size_t>(n), 0.0);
    std::vector<Index> dist(static_cast<std::size_t>(n), -1);
    std::vector<Index> order;
    std::queue<Index> q;
    sigma[static_cast<std::size_t>(s)] = 1.0;
    dist[static_cast<std::size_t>(s)] = 0;
    q.push(s);
    while (!q.empty()) {
      const Index v = q.front();
      q.pop();
      order.push_back(v);
      for (Index w : a.row_colids(v)) {
        if (dist[static_cast<std::size_t>(w)] < 0) {
          dist[static_cast<std::size_t>(w)] =
              dist[static_cast<std::size_t>(v)] + 1;
          q.push(w);
        }
        if (dist[static_cast<std::size_t>(w)] ==
            dist[static_cast<std::size_t>(v)] + 1) {
          sigma[static_cast<std::size_t>(w)] +=
              sigma[static_cast<std::size_t>(v)];
          pred[static_cast<std::size_t>(w)].push_back(v);
        }
      }
    }
    std::vector<double> delta(static_cast<std::size_t>(n), 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const Index w = *it;
      for (Index v : pred[static_cast<std::size_t>(w)]) {
        delta[static_cast<std::size_t>(v)] +=
            sigma[static_cast<std::size_t>(v)] /
            sigma[static_cast<std::size_t>(w)] *
            (1.0 + delta[static_cast<std::size_t>(w)]);
      }
      if (w != s) bc[static_cast<std::size_t>(w)] += delta[static_cast<std::size_t>(w)];
    }
  }
  return bc;
}

class BcGrids : public ::testing::TestWithParam<int> {};

TEST_P(BcGrids, MatchesBrandesReference) {
  const Index n = 150;
  auto grid = LocaleGrid::square(GetParam(), 2);
  auto a = erdos_renyi_dist<std::int64_t>(grid, n, 4.0, 5);
  auto local = a.to_local();
  std::vector<Index> sources{0, 3, 77};

  auto got = betweenness(a, sources);
  auto ref = brandes_reference(local, sources);
  ASSERT_EQ(got.size(), ref.size());
  for (Index v = 0; v < n; ++v) {
    EXPECT_NEAR(got[static_cast<std::size_t>(v)],
                ref[static_cast<std::size_t>(v)], 1e-9)
        << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, BcGrids, ::testing::Values(1, 4, 9));

TEST(Betweenness, PathGraphInteriorDominates) {
  // 0-1-2-3-4 undirected path, exact BC: interior vertex 2 is on the
  // most shortest paths.
  const Index n = 5;
  auto grid = LocaleGrid::square(2, 1);
  Coo<std::int64_t> coo(n, n);
  for (Index i = 0; i + 1 < n; ++i) {
    coo.add(i, i + 1, 1);
    coo.add(i + 1, i, 1);
  }
  auto a = DistCsr<std::int64_t>::from_coo(grid, coo);
  std::vector<Index> all{0, 1, 2, 3, 4};
  auto bc = betweenness(a, all);
  // Known values for P5: [0, 3, 4, 3, 0] x 2 directions.
  EXPECT_NEAR(bc[0], 0.0, 1e-12);
  EXPECT_NEAR(bc[1], 6.0, 1e-9);
  EXPECT_NEAR(bc[2], 8.0, 1e-9);
  EXPECT_NEAR(bc[3], 6.0, 1e-9);
  EXPECT_NEAR(bc[4], 0.0, 1e-12);
}

TEST(Betweenness, StarCenterTakesAll) {
  const Index n = 8;
  auto grid = LocaleGrid::square(4, 1);
  Coo<std::int64_t> coo(n, n);
  for (Index v = 1; v < n; ++v) {
    coo.add(0, v, 1);
    coo.add(v, 0, 1);
  }
  auto a = DistCsr<std::int64_t>::from_coo(grid, coo);
  std::vector<Index> all(static_cast<std::size_t>(n));
  for (Index v = 0; v < n; ++v) all[static_cast<std::size_t>(v)] = v;
  auto bc = betweenness(a, all);
  // Every pair of leaves routes through the center: (n-1)(n-2) paths.
  EXPECT_NEAR(bc[0], static_cast<double>((n - 1) * (n - 2)), 1e-9);
  for (Index v = 1; v < n; ++v) EXPECT_NEAR(bc[static_cast<std::size_t>(v)], 0.0, 1e-12);
}

TEST(Ktruss, K5IsAFiveTruss) {
  const Index n = 5;
  Coo<std::int64_t> coo(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if (i != j) coo.add(i, j, 1);
    }
  }
  auto a = coo.to_csr();
  auto grid = LocaleGrid::single(2);
  LocaleCtx ctx(grid, 0);
  // Every edge of K5 sits in 3 triangles: survives k=5, dies at k=6.
  EXPECT_EQ(ktruss(ctx, a, 5).edges, 20);
  EXPECT_EQ(ktruss(ctx, a, 6).edges, 0);
}

TEST(Ktruss, TriangleFreeGraphHasNoThreeTruss) {
  const Index n = 12;
  Coo<std::int64_t> coo(n, n);
  for (Index i = 0; i + 1 < n; ++i) {  // a path: no triangles
    coo.add(i, i + 1, 1);
    coo.add(i + 1, i, 1);
  }
  auto grid = LocaleGrid::single(1);
  LocaleCtx ctx(grid, 0);
  EXPECT_EQ(ktruss(ctx, coo.to_csr(), 3).edges, 0);
}

TEST(Ktruss, PendantTriangleDecomposition) {
  // K4 with a pendant triangle sharing one vertex: the K4 is a 4-truss;
  // the pendant triangle survives only k=3.
  Coo<std::int64_t> coo(6, 6);
  auto edge = [&](Index u, Index v) {
    coo.add(u, v, 1);
    coo.add(v, u, 1);
  };
  for (Index i = 0; i < 4; ++i) {
    for (Index j = i + 1; j < 4; ++j) edge(i, j);
  }
  edge(3, 4);
  edge(4, 5);
  edge(3, 5);
  auto a = coo.to_csr();
  auto grid = LocaleGrid::single(1);
  LocaleCtx ctx(grid, 0);
  auto t3 = ktruss(ctx, a, 3);
  EXPECT_EQ(t3.edges, a.nnz());  // everything is in some triangle
  auto t4 = ktruss(ctx, a, 4);
  EXPECT_EQ(t4.edges, 12);  // only the K4 survives
  for (Index r = 0; r < 4; ++r) {
    for (Index c = 0; c < 4; ++c) {
      if (r != c) EXPECT_NE(t4.truss.find(r, c), nullptr);
    }
  }
  EXPECT_EQ(t4.truss.find(4, 5), nullptr);
}

TEST(Ktruss, MonotoneInK) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 6;
  auto a = rmat_csr(p);
  auto grid = LocaleGrid::single(4);
  LocaleCtx ctx(grid, 0);
  Index prev = a.nnz() + 1;
  for (int k = 3; k <= 7; ++k) {
    const Index edges = ktruss(ctx, a, k).edges;
    EXPECT_LE(edges, prev) << "k=" << k;
    prev = edges;
  }
}

}  // namespace
}  // namespace pgb
