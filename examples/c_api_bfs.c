/* BFS written in plain C against the pgas-graphblas C bindings —
 * demonstrating that the library is usable as a GraphBLAS-style C
 * library, per the C API design the paper targets.
 *
 * Builds a small ring-with-chords graph, then iterates the classic
 * masked vxm frontier loop on the (min, select1st) semiring.
 */
#include <stdio.h>
#include <stdlib.h>

#include "capi/pgb_graphblas.h"

#define N 64

static void die(const char* what, GrB_Info info) {
  fprintf(stderr, "%s failed: %d\n", what, (int)info);
  exit(1);
}

#define CHECK(call)                       \
  do {                                    \
    GrB_Info info_ = (call);              \
    if (info_ != GrB_SUCCESS) {           \
      die(#call, info_);                  \
    }                                     \
  } while (0)

int main(void) {
  CHECK(pgb_init(/*nlocales=*/4, /*threads=*/24));

  /* Ring 0-1-...-63-0 plus chords i -> (i+7) mod N. */
  GrB_Index rows[3 * N];
  GrB_Index cols[3 * N];
  double vals[3 * N];
  GrB_Index nv = 0;
  for (GrB_Index i = 0; i < N; ++i) {
    rows[nv] = i, cols[nv] = (i + 1) % N, vals[nv] = 1.0, ++nv;
    rows[nv] = (i + 1) % N, cols[nv] = i, vals[nv] = 1.0, ++nv;
    rows[nv] = i, cols[nv] = (i + 7) % N, vals[nv] = 1.0, ++nv;
  }
  GrB_Matrix a;
  CHECK(GrB_Matrix_new(&a, N, N));
  CHECK(GrB_Matrix_build(a, rows, cols, vals, nv));

  GrB_Vector frontier, visited, next;
  CHECK(GrB_Vector_new(&frontier, N));
  CHECK(GrB_Vector_new(&visited, N));
  CHECK(GrB_Vector_new(&next, N));
  CHECK(GrB_Vector_setElement(frontier, 0.0, 0)); /* source = 0 */
  CHECK(GrB_Vector_setElement(visited, 1.0, 0));

  pgb_reset_clock();
  int level = 0;
  GrB_Index reached = 1;
  for (;;) {
    GrB_Index fn;
    CHECK(GrB_Vector_nvals(&fn, frontier));
    if (fn == 0) break;
    printf("level %2d: frontier %3llu\n", level,
           (unsigned long long)fn);

    /* next = frontier . A, masked to unvisited vertices. */
    CHECK(GrB_vxm(next, visited, PGB_MASK_COMPLEMENT, PGB_MIN_FIRST,
                  frontier, a));
    /* visited |= next's pattern. */
    GrB_Index idx[N];
    double vv[N];
    GrB_Index nn = N;
    CHECK(GrB_Vector_extractTuples(idx, vv, &nn, next));
    for (GrB_Index k = 0; k < nn; ++k) {
      CHECK(GrB_Vector_setElement(visited, 1.0, idx[k]));
    }
    reached += nn;
    CHECK(GrB_assign(frontier, next));
    ++level;
  }

  printf("\nreached %llu of %d vertices in %d levels\n",
         (unsigned long long)reached, N, level);
  printf("modeled time on the simulated machine: %.3f ms\n",
         pgb_elapsed_seconds() * 1e3);

  CHECK(GrB_Vector_free(&frontier));
  CHECK(GrB_Vector_free(&visited));
  CHECK(GrB_Vector_free(&next));
  CHECK(GrB_Matrix_free(&a));
  CHECK(pgb_finalize());
  return 0;
}
