// Triangle counting demo: masked SpGEMM (sum((L.L) .* L)) on an R-MAT
// graph — exercising mxm, the primitive the paper lists as future work.
//
//   ./build/examples/triangle_demo [--rmat-scale=12]
#include <cstdio>

#include "algo/triangle_count.hpp"
#include "gen/rmat.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pgb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int sc = static_cast<int>(
      cli.get_int("rmat-scale", 12, "R-MAT scale (2^s vertices)"));
  cli.finish();

  RmatParams p;
  p.scale = sc;
  p.edge_factor = 8;
  auto a = rmat_csr(p);
  std::printf("graph: %lld vertices, %lld undirected edges\n",
              static_cast<long long>(a.nrows()),
              static_cast<long long>(a.nnz() / 2));

  auto grid = LocaleGrid::single(24);
  LocaleCtx ctx(grid, 0);
  grid.reset();
  const std::int64_t triangles = triangle_count(ctx, a);
  std::printf("triangles: %lld   (modeled %s on one 24-core node)\n",
              static_cast<long long>(triangles),
              Table::time(grid.time()).c_str());
  return 0;
}
