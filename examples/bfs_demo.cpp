// BFS demo: linear-algebraic breadth-first search — the composition the
// paper's operation subset was designed for — on an R-MAT power-law
// graph, with a per-level breakdown.
//
//   ./build/examples/bfs_demo [--rmat-scale=16] [--nodes=16] [--source=0]
#include <cstdio>

#include "algo/bfs.hpp"
#include "gen/rmat.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pgb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int sc = static_cast<int>(
      cli.get_int("rmat-scale", 16, "R-MAT scale (2^s vertices)"));
  const int nodes = static_cast<int>(cli.get_int("nodes", 16, "locales"));
  const Index source = cli.get_int("source", 0, "BFS source vertex");
  cli.finish();

  RmatParams p;
  p.scale = sc;
  p.edge_factor = 8;
  auto grid = LocaleGrid::square(nodes, 24);
  std::printf("generating R-MAT graph: 2^%d vertices, ef=8, symmetric...\n",
              sc);
  auto a = rmat_dist(grid, p);
  std::printf("graph: %lld vertices, %lld edges; grid %dx%d\n\n",
              static_cast<long long>(a.nrows()),
              static_cast<long long>(a.nnz()), grid.rows(), grid.cols());

  grid.reset();
  auto res = bfs(a, source);
  const double total = grid.time();

  Table t({"level", "frontier size"});
  for (std::size_t lvl = 0; lvl < res.level_sizes.size(); ++lvl) {
    t.row({Table::count(static_cast<std::int64_t>(lvl)),
           Table::count(res.level_sizes[lvl])});
  }
  t.print("BFS levels");

  Index reached = 0;
  for (Index s : res.level_sizes) reached += s;
  std::printf("\nreached %lld of %lld vertices in %zu levels\n",
              static_cast<long long>(reached),
              static_cast<long long>(a.nrows()), res.level_sizes.size());
  std::printf("modeled time: %s  (gather %s | local %s | scatter %s)\n",
              Table::time(total).c_str(),
              Table::time(grid.trace().get("gather")).c_str(),
              Table::time(grid.trace().get("local")).c_str(),
              Table::time(grid.trace().get("scatter")).c_str());
  return 0;
}
