// Single-source shortest paths demo: Bellman-Ford iterations on the
// (min, +) semiring — GraphBLAS beyond Boolean algebra. Builds a
// weighted Erdős–Rényi digraph, runs SSSP, and prints the distance
// distribution plus the modeled cost per communication mode.
//
//   ./build/examples/sssp_demo [--n=100000] [--d=8] [--nodes=16]
#include <cstdio>
#include <vector>

#include "algo/sssp.hpp"
#include "gen/erdos_renyi.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace pgb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const Index n = cli.get_int("n", 100000, "vertices");
  const double d = cli.get_double("d", 8.0, "average out-degree");
  const int nodes = static_cast<int>(cli.get_int("nodes", 16, "locales"));
  const Index source = cli.get_int("source", 0, "source vertex");
  cli.finish();

  auto grid = LocaleGrid::square(nodes, 24);
  // ER structure with uniform random weights in [1, 10).
  auto a = erdos_renyi_dist<double>(grid, n, d, /*seed=*/3);
  for (int l = 0; l < grid.num_locales(); ++l) {
    Xoshiro256 rng(99, static_cast<std::uint64_t>(l));
    for (auto& v : a.block(l).csr.values()) {
      v = 1.0 + 9.0 * rng.next_double();
    }
  }
  std::printf("graph: %lld vertices, %lld weighted edges; grid %dx%d\n\n",
              static_cast<long long>(n), static_cast<long long>(a.nnz()),
              grid.rows(), grid.cols());

  grid.reset();
  auto res = sssp(a, source);
  const double t_fine = grid.time();

  SpmspvOptions bulk;
  bulk.bulk_gather = true;
  bulk.bulk_scatter = true;
  grid.reset();
  auto res2 = sssp(a, source, bulk);
  const double t_bulk = grid.time();
  (void)res2;

  // Distance histogram in weight-units buckets.
  Index reached = 0;
  double dmax = 0;
  for (double dist : res.dist) {
    if (dist != SsspResult::kUnreachable) {
      ++reached;
      dmax = std::max(dmax, dist);
    }
  }
  std::vector<Index> hist(10, 0);
  for (double dist : res.dist) {
    if (dist != SsspResult::kUnreachable) {
      const int b = std::min<int>(9, static_cast<int>(10.0 * dist /
                                                      (dmax + 1e-12)));
      ++hist[static_cast<std::size_t>(b)];
    }
  }
  Table t({"distance bucket", "vertices"});
  for (int b = 0; b < 10; ++b) {
    char label[48];
    std::snprintf(label, sizeof label, "[%.1f, %.1f)", dmax * b / 10.0,
                  dmax * (b + 1) / 10.0);
    t.row({label, Table::count(hist[static_cast<std::size_t>(b)])});
  }
  t.print("shortest-distance distribution");

  std::printf("\nreached %lld of %lld vertices in %d rounds\n",
              static_cast<long long>(reached), static_cast<long long>(n),
              res.rounds);
  std::printf("modeled time: %s fine-grained, %s bulk (%0.1fx)\n",
              Table::time(t_fine).c_str(), Table::time(t_bulk).c_str(),
              t_fine / t_bulk);
  return 0;
}
