// PageRank demo: repeated SpMV on the arithmetic semiring over a
// power-law web-like graph; prints the highest-ranked vertices and their
// in-degrees (they correlate strongly on R-MAT graphs).
//
//   ./build/examples/pagerank_demo [--rmat-scale=14] [--nodes=4]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "algo/pagerank.hpp"
#include "core/transpose.hpp"
#include "gen/rmat.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pgb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int sc = static_cast<int>(
      cli.get_int("rmat-scale", 14, "R-MAT scale (2^s vertices)"));
  const int nodes = static_cast<int>(cli.get_int("nodes", 4, "locales"));
  cli.finish();

  RmatParams p;
  p.scale = sc;
  p.edge_factor = 8;
  p.symmetric = false;  // directed web-style graph
  auto grid = LocaleGrid::square(nodes, 24);
  auto a = rmat_dist(grid, p);
  std::printf("graph: %lld vertices, %lld directed edges\n\n",
              static_cast<long long>(a.nrows()),
              static_cast<long long>(a.nnz()));

  grid.reset();
  auto res = pagerank(a, /*damping=*/0.85, /*tol=*/1e-10, /*max_iters=*/100);
  std::printf("converged after %d iterations (residual %.3g), modeled %s\n",
              res.iterations, res.residual,
              Table::time(grid.time()).c_str());

  // In-degrees for context (rows of the transpose).
  auto local = a.to_local();
  std::vector<Index> indeg(static_cast<std::size_t>(a.nrows()), 0);
  for (Index c : local.colids()) ++indeg[static_cast<std::size_t>(c)];

  std::vector<Index> order(static_cast<std::size_t>(a.nrows()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<Index>(i);
  }
  std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                    [&](Index x, Index y) {
                      return res.rank[static_cast<std::size_t>(x)] >
                             res.rank[static_cast<std::size_t>(y)];
                    });

  Table t({"vertex", "pagerank", "in-degree"});
  for (int i = 0; i < 10; ++i) {
    const Index v = order[static_cast<std::size_t>(i)];
    t.row({Table::count(v),
           Table::num(res.rank[static_cast<std::size_t>(v)]),
           Table::count(indeg[static_cast<std::size_t>(v)])});
  }
  t.print("top 10 vertices");
  return 0;
}
