// Quickstart: a tour of the pgas-graphblas public API.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The library executes every operation for real (results below are
// computed) while per-locale simulated clocks track what the operation
// would cost on the modeled machine (Edison-like nodes + network), so
// you can explore shared- vs distributed-memory behaviour on a laptop.
#include <cstdio>

#include "core/graphblas.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"
#include "util/table.hpp"

using namespace pgb;

int main() {
  // A 2x2 locale grid, 24 threads per locale (one Edison node each).
  LocaleGrid grid = LocaleGrid::square(4, 24);
  std::printf("grid: %dx%d locales, %d threads each\n\n", grid.rows(),
              grid.cols(), grid.threads());

  const Index n = 100000;

  // --- a sparse vector, distributed by 1-D blocks over the locales ---
  auto x = random_dist_sparse_vec<double>(grid, n, /*nnz=*/20000, /*seed=*/1);
  std::printf("x: capacity %lld, nnz %lld\n",
              static_cast<long long>(x.capacity()),
              static_cast<long long>(x.nnz()));

  // --- Apply: the SPMD version (paper Listing 3) ---
  grid.reset();
  apply_v2(x, [](double v) { return 2.0 * v; });
  std::printf("apply_v2 (x *= 2):        modeled %s\n",
              Table::time(grid.time()).c_str());

  // --- Assign: A = B with matching domains (paper Listing 5) ---
  DistSparseVec<double> x2(grid, n);
  grid.reset();
  assign_v2(x2, x);
  std::printf("assign_v2 (x2 = x):       modeled %s\n",
              Table::time(grid.time()).c_str());

  // --- eWiseMult against a dense Boolean vector (paper Listing 6) ---
  auto keep = random_dist_bool_vec(grid, n, 0.5, /*seed=*/2);
  grid.reset();
  auto filtered = ewise_mult_sd(
      x, keep, FirstOp{}, [](std::uint8_t b) { return b != 0; });
  std::printf("eWiseMult (keep ~half):   modeled %s   (nnz %lld -> %lld)\n",
              Table::time(grid.time()).c_str(),
              static_cast<long long>(x.nnz()),
              static_cast<long long>(filtered.nnz()));

  // --- SpMSpV on a semiring: y = x A (paper Listings 7-8) ---
  auto a = erdos_renyi_dist<double>(grid, n, /*d=*/8.0, /*seed=*/3);
  grid.reset();
  auto y = spmspv_dist(a, filtered, arithmetic_semiring<double>());
  std::printf("spmspv (y = x A):         modeled %s   (output nnz %lld)\n",
              Table::time(grid.time()).c_str(),
              static_cast<long long>(y.nnz()));
  std::printf("  gather %s | local %s | scatter %s\n",
              Table::time(grid.trace().get("gather")).c_str(),
              Table::time(grid.trace().get("local")).c_str(),
              Table::time(grid.trace().get("scatter")).c_str());

  // --- reduce on a monoid ---
  const double total = reduce(y, plus_monoid<double>());
  std::printf("reduce(y, +):             %.6g\n", total);

  // --- the same SpMSpV with bulk communication (the paper's suggested
  //     remedy for the fine-grained traffic) ---
  SpmspvOptions bulk;
  bulk.bulk_gather = true;
  bulk.bulk_scatter = true;
  grid.reset();
  auto y2 = spmspv_dist(a, filtered, arithmetic_semiring<double>(), bulk);
  std::printf("spmspv (bulk comm):       modeled %s   (same result: %s)\n",
              Table::time(grid.time()).c_str(),
              y2.to_local() == y.to_local() ? "yes" : "NO");
  return 0;
}
