// Connected components via min-label propagation (SpMV on the
// (min, select1st) semiring), on a deliberately fragmented graph: several
// R-MAT islands that never touch.
//
//   ./build/examples/connected_components_demo [--islands=4] [--nodes=4]
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "algo/connected_components.hpp"
#include "gen/rmat.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pgb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int islands =
      static_cast<int>(cli.get_int("islands", 4, "number of disjoint subgraphs"));
  const int nodes = static_cast<int>(cli.get_int("nodes", 4, "locales"));
  cli.finish();

  // Build `islands` disjoint R-MAT subgraphs in one big matrix.
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 6;
  const Index island_n = Index{1} << p.scale;
  const Index n = island_n * islands;
  Coo<std::int64_t> coo(n, n);
  for (int i = 0; i < islands; ++i) {
    p.seed = 100 + static_cast<std::uint64_t>(i);
    const Index off = island_n * i;
    auto part = rmat_csr(p);
    for (Index r = 0; r < part.nrows(); ++r) {
      for (Index c : part.row_colids(r)) coo.add(off + r, off + c, 1);
    }
  }

  auto grid = LocaleGrid::square(nodes, 24);
  auto a = DistCsr<std::int64_t>::from_coo(grid, coo);
  std::printf("graph: %lld vertices, %lld edges, %d disjoint islands\n\n",
              static_cast<long long>(n), static_cast<long long>(a.nnz()),
              islands);

  grid.reset();
  auto res = connected_components(a);
  std::printf("label propagation converged in %d rounds, modeled %s\n",
              res.rounds, Table::time(grid.time()).c_str());

  std::map<Index, Index> sizes;
  for (Index v = 0; v < n; ++v) ++sizes[res.label[static_cast<std::size_t>(v)]];
  std::vector<std::pair<Index, Index>> by_size(sizes.begin(), sizes.end());
  std::sort(by_size.begin(), by_size.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  Table t({"component (min vertex)", "size"});
  for (std::size_t i = 0; i < by_size.size() && i < 10; ++i) {
    t.row({Table::count(by_size[i].first), Table::count(by_size[i].second)});
  }
  t.print("largest components (top 10)");
  std::printf("\n%lld components total (including isolated vertices)\n",
              static_cast<long long>(res.num_components));
  return 0;
}
