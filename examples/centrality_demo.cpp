// Centrality & cohesion demo: approximate betweenness centrality
// (sampled Brandes) and the k-truss decomposition on an R-MAT graph —
// two LAGraph-style algorithms built entirely from the GraphBLAS layer.
//
//   ./build/examples/centrality_demo [--rmat-scale=11] [--samples=8]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "algo/betweenness.hpp"
#include "algo/ktruss.hpp"
#include "gen/rmat.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pgb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int sc = static_cast<int>(
      cli.get_int("rmat-scale", 11, "R-MAT scale (2^s vertices)"));
  const int samples = static_cast<int>(
      cli.get_int("samples", 8, "BC source samples"));
  cli.finish();

  RmatParams p;
  p.scale = sc;
  p.edge_factor = 8;
  auto grid = LocaleGrid::square(4, 24);
  auto a = rmat_dist(grid, p);
  const Index n = a.nrows();
  std::printf("graph: %lld vertices, %lld edges\n\n",
              static_cast<long long>(n), static_cast<long long>(a.nnz()));

  // --- approximate betweenness from sampled sources ---
  std::vector<Index> sources;
  for (int s = 0; s < samples; ++s) {
    sources.push_back((n / samples) * s);
  }
  grid.reset();
  auto bc = betweenness(a, sources);
  const double t_bc = grid.time();

  std::vector<Index> order(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<Index>(i);
  }
  std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                    [&](Index x, Index y) {
                      return bc[static_cast<std::size_t>(x)] >
                             bc[static_cast<std::size_t>(y)];
                    });
  Table t({"vertex", "betweenness (sampled)"});
  for (int i = 0; i < 10; ++i) {
    const Index v = order[static_cast<std::size_t>(i)];
    t.row({Table::count(v), Table::num(bc[static_cast<std::size_t>(v)])});
  }
  t.print("top 10 central vertices");
  std::printf("modeled BC time (%d sources): %s\n\n", samples,
              Table::time(t_bc).c_str());

  // --- k-truss decomposition of the same graph (local kernel) ---
  auto local = a.to_local();
  auto lgrid = LocaleGrid::single(24);
  LocaleCtx ctx(lgrid, 0);
  Table kt({"k", "surviving edges", "rounds", "modeled time"});
  for (int k = 3; k <= 6; ++k) {
    lgrid.reset();
    auto res = ktruss(ctx, local, k);
    kt.row({Table::count(k), Table::count(res.edges),
            Table::count(res.rounds), Table::time(lgrid.time())});
  }
  kt.print("k-truss decomposition");
  return 0;
}
