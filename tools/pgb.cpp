// pgb — command-line driver for the pgas-graphblas library.
//
// Loads a graph (Matrix Market file, or a generated Erdős–Rényi / R-MAT
// instance), lays it out on a simulated locale grid, runs one of the
// library's algorithms/operations, and reports the result summary plus
// the modeled execution time and its communication breakdown.
//
// Examples:
//   pgb --gen=rmat --rmat-scale=16 --op=bfs --nodes=16
//   pgb --matrix=web.mtx --op=pagerank --machine=modern
//   pgb --gen=er --n=1000000 --d=16 --op=spmspv --f=0.02 --bulk
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <optional>
#include <string>

#include "algo/algo_recovery.hpp"
#include "algo/bfs.hpp"
#include "algo/bfs_hybrid.hpp"
#include "algo/connected_components.hpp"
#include "algo/mis.hpp"
#include "algo/pagerank.hpp"
#include "algo/sssp.hpp"
#include "core/graphblas.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/random_vec.hpp"
#include "gen/rmat.hpp"
#include "io/matrix_market.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pgb;

namespace {

void print_timing(LocaleGrid& grid) {
  std::printf("\nmodeled time: %s\n", Table::time(grid.time()).c_str());
  for (const auto& phase : grid.trace().phases()) {
    std::printf("  %-8s %s\n", phase.c_str(),
                Table::time(grid.trace().get(phase)).c_str());
  }
  const auto& cs = grid.comm_stats();
  std::printf("comm: %lld messages, %lld bulk transfers, "
              "%lld aggregator flushes, %.3g MB\n",
              static_cast<long long>(cs.messages),
              static_cast<long long>(cs.bulks),
              static_cast<long long>(cs.agg_flushes),
              static_cast<double>(cs.bytes) / 1e6);
}

/// Per-site inspector decision dump (--comm=auto). The same numbers are
/// published as `inspector.*` counters, so a --profile capture carries
/// them into pgb_diff, where a silent strategy flip between two runs
/// shows up as a structural diff.
void print_inspector(LocaleGrid& grid) {
  const auto sites = grid.inspector().report();
  if (sites.empty()) return;
  std::printf("\ninspector: %zu sites\n", sites.size());
  for (const auto& s : sites) {
    std::printf(
        "  %-18s calls=%lld last=%-9s fine/bulk/agg/repl=%lld/%lld/%lld/%lld "
        "elems=%lld pairs=%lld fanout=%.0f\n",
        s.site.c_str(), static_cast<long long>(s.calls),
        to_string(s.last_strategy), static_cast<long long>(s.decisions[0]),
        static_cast<long long>(s.decisions[1]),
        static_cast<long long>(s.decisions[2]),
        static_cast<long long>(s.decisions[3]),
        static_cast<long long>(s.last_footprint.elements),
        static_cast<long long>(s.last_footprint.pairs),
        s.last_footprint.fanout);
    if (s.observed_waves > 0 && s.predicted_total > 0.0) {
      // Observed charged time vs the inspector's pre-wave prediction;
      // waves whose own ratio drifts outside the 2x band around this
      // running ratio also bump `inspector.mispriced`.
      std::printf("  %-18s mispricing: observed/predicted=%.2fx over "
                  "%lld waves (%lld drifted outside 2x band)\n",
                  "", s.observed_total / s.predicted_total,
                  static_cast<long long>(s.observed_waves),
                  static_cast<long long>(s.mispriced_waves));
    }
  }
  const auto& mx = grid.metrics();
  auto cnt = [&mx](const char* name) {
    const obs::Counter* c = mx.find_counter(name);
    return static_cast<long long>(c ? c->value : 0);
  };
  std::printf(
      "  replica cache: %lld hits, %lld installs, %lld invalidations, "
      "%.3g MB shipped\n",
      cnt("inspector.cache.hits"), cnt("inspector.cache.installs"),
      cnt("inspector.cache.invalidations"),
      static_cast<double>(cnt("inspector.replicated_bytes")) / 1e6);
}

/// Writes the grid's metrics registry as JSON.
void write_metrics(LocaleGrid& grid, const std::string& path) {
  std::ofstream out(path);
  PGB_REQUIRE(out.good(), "cannot open metrics file: " + path);
  out << grid.metrics().json() << "\n";
}

}  // namespace

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string matrix = cli.get("matrix", "", "Matrix Market file");
  const std::string gen =
      cli.get("gen", "rmat", "generator when no --matrix: er | rmat");
  const Index n = cli.get_int("n", 100000, "ER vertices");
  const double d = cli.get_double("d", 8.0, "ER nonzeros per row");
  const int rmat_scale =
      static_cast<int>(cli.get_int("rmat-scale", 14, "R-MAT scale"));
  const std::string op = cli.get(
      "op", "bfs", "bfs | bfs-hybrid | cc | pagerank | sssp | mis | spmspv");
  const int nodes = static_cast<int>(cli.get_int("nodes", 4, "locales"));
  const int threads =
      static_cast<int>(cli.get_int("threads", 24, "threads per locale"));
  const Index source = cli.get_int("source", 0, "source vertex");
  const double f =
      cli.get_double("f", 0.02, "input-vector density for --op=spmspv");
  const bool bulk =
      cli.get_bool("bulk", false, "bulk-synchronous communication");
  const std::string comm_flag = cli.get(
      "comm", "", "communication schedule: fine | bulk | agg | auto "
                  "(inspector-chosen per site; overrides --bulk)");
  const std::int64_t agg_capacity = cli.get_int(
      "agg-capacity", 2048, "aggregator buffer capacity (--comm=agg)");
  const std::string machine =
      cli.get("machine", "edison", "machine model: edison | modern");
  const std::string trace_file = cli.get(
      "trace", "", "write a Chrome trace (Perfetto-loadable) of the op");
  const bool trace_detail = cli.get_bool(
      "trace-detail", false, "also record per-call comm instants");
  const std::string metrics_file =
      cli.get("metrics", "", "write the metrics registry as JSON");
  const std::string comm_matrix_file = cli.get(
      "comm-matrix", "",
      "write the per src->dst locale comm matrix (messages + bytes) as "
      "JSON, or CSV when the path ends in .csv");
  const std::string profile_file = cli.get(
      "profile", "",
      "write a profile report (span tree + counters) for pgb_diff");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1, "generator seed"));
  const std::string faults = cli.get(
      "faults", "",
      "fault-injection spec, e.g. 'drop:p=0.01;stall:p=0.001,ms=0.5;"
      "kill:locale=3,at=0.002'");
  const std::uint64_t fault_seed = static_cast<std::uint64_t>(
      cli.get_int("fault-seed", 42, "fault plan RNG seed"));
  const int checkpoint_every = static_cast<int>(cli.get_int(
      "checkpoint-every", 0,
      "checkpoint every K rounds under --faults (0 = restart from scratch; "
      "bfs/sssp/pagerank)"));
  const int retry_max = static_cast<int>(cli.get_int(
      "retry-max", 4, "max send attempts per transfer under --faults"));
  const std::string recovery_flag = cli.get(
      "recovery", "rollback",
      "recovery driver under --faults (bfs/sssp/pagerank): rollback "
      "(checkpoint/restart) | rebuild (localized rebuild onto a spare) | "
      "degraded (rebuild onto the surviving locales)");
  const std::string replica_flag = cli.get(
      "replica", "buddy",
      "replication scheme for --recovery=rebuild|degraded: buddy | parity");
  const int parity_group = static_cast<int>(cli.get_int(
      "parity-group", 4, "locales per parity group (--replica=parity)"));
  const std::int64_t replica_chunk = cli.get_int(
      "replica-chunk", 4096, "replica dirty-diff chunk size in bytes");
  const double straggler_ms = cli.get_double(
      "straggler-threshold-ms", 0.0,
      "flag the slowest locale when barrier clock skew exceeds this "
      "(0 disables detection)");
  const double shed = cli.get_double(
      "shed", 0.0,
      "fraction of a flagged straggler's SpMSpV local multiply shed to a "
      "row peer, in [0, 1)");
  cli.finish();

  PGB_REQUIRE(machine == "edison" || machine == "modern",
              "--machine must be edison or modern");
  PGB_REQUIRE(agg_capacity >= 1,
              "--agg-capacity must be a positive element count");
  PGB_REQUIRE(recovery_flag == "rollback" || recovery_flag == "rebuild" ||
                  recovery_flag == "degraded",
              "--recovery must be rollback, rebuild, or degraded");
  PGB_REQUIRE(replica_flag == "buddy" || replica_flag == "parity",
              "--replica must be buddy or parity");
  PGB_REQUIRE(straggler_ms >= 0.0, "--straggler-threshold-ms must be >= 0");
  PGB_REQUIRE(shed >= 0.0 && shed < 1.0, "--shed must be in [0, 1)");
  const MachineModel model =
      machine == "edison" ? MachineModel::edison() : MachineModel::modern();
  auto grid = LocaleGrid::square(nodes, threads, 1, model);

  obs::TraceSession session(trace_detail);
  if (!trace_file.empty() || !profile_file.empty()) {
    grid.set_trace_session(&session);
  }
  if (!comm_matrix_file.empty()) grid.enable_comm_matrix();

  // --- load or generate the matrix (double values throughout) ---
  DistCsr<double> a(grid, 0, 0);
  if (!matrix.empty()) {
    MatrixMarketInfo info;
    a = read_matrix_market_dist(grid, matrix, &info);
    std::printf("loaded %s: %lld x %lld, %lld nonzeros%s\n", matrix.c_str(),
                static_cast<long long>(a.nrows()),
                static_cast<long long>(a.ncols()),
                static_cast<long long>(a.nnz()),
                info.symmetric ? " (symmetric)" : "");
  } else if (gen == "er") {
    a = erdos_renyi_dist<double>(grid, n, d, seed);
    std::printf("generated ER: n=%lld d=%g, %lld nonzeros\n",
                static_cast<long long>(n), d,
                static_cast<long long>(a.nnz()));
  } else if (gen == "rmat") {
    RmatParams p;
    p.scale = rmat_scale;
    p.seed = seed;
    auto m = rmat_csr(p);
    Coo<double> coo(m.nrows(), m.ncols());
    for (Index r = 0; r < m.nrows(); ++r) {
      for (Index c : m.row_colids(r)) coo.add(r, c, 1.0);
    }
    a = DistCsr<double>::from_coo(grid, coo);
    std::printf("generated R-MAT: 2^%d vertices, %lld edges (symmetric)\n",
                rmat_scale, static_cast<long long>(a.nnz()));
  } else {
    throw InvalidArgument("--gen must be er or rmat");
  }
  std::printf("grid: %dx%d locales, %d threads, machine=%s\n\n", grid.rows(),
              grid.cols(), threads, machine.c_str());

  SpmspvOptions comm;
  comm.comm = comm_flag.empty()
                  ? (bulk ? CommMode::kBulk : CommMode::kFine)
                  : parse_comm_mode(comm_flag);
  comm.agg.capacity = agg_capacity;
  comm.straggler_shed = shed;
  if (straggler_ms > 0.0) {
    grid.set_straggler_threshold(straggler_ms * 1e-3);
  }

  // --- fault plan + delivery guarantees ---
  RetryPolicy retry;
  retry.max_attempts = retry_max;
  retry.validate();
  PGB_REQUIRE(checkpoint_every >= 0, "--checkpoint-every must be >= 0");
  std::optional<FaultPlan> plan;
  if (!faults.empty()) {
    plan.emplace(FaultSpec::parse(faults), fault_seed);
    std::printf("faults: %s (seed %llu, retry-max %d)\n",
                plan->spec().to_string().c_str(),
                static_cast<unsigned long long>(fault_seed), retry_max);
  }
  RecoveryOptions ropt;
  ropt.checkpoint_every = checkpoint_every;
  ropt.retry = retry;
  const bool use_rebuild = recovery_flag != "rollback";
  RebuildOptions bopt;
  bopt.mode = recovery_flag == "rebuild" ? RebuildMode::kSpare
                                         : RebuildMode::kDegraded;
  bopt.replica.scheme = replica_flag == "parity" ? ReplicaScheme::kParity
                                                 : ReplicaScheme::kBuddy;
  bopt.replica.parity_group = parity_group;
  bopt.replica.chunk_bytes = replica_chunk;
  bopt.retry = retry;
  RecoveryReport report;

  grid.reset();
  if (plan.has_value()) {
    grid.set_fault_plan(&*plan);
    grid.set_retry_policy(retry);
  }
  if (op == "bfs") {
    // Under a fault plan BFS runs through a recovery driver — checkpoint
    // rollback or localized rebuild per --recovery — which survives
    // locale kills with a bit-identical result.
    const BfsResult res =
        !plan.has_value() ? bfs(a, source, comm)
        : use_rebuild
            ? bfs_with_rebuild(a, source, comm, &*plan, bopt, &report)
            : bfs_with_recovery(a, source, comm, &*plan, ropt, &report);
    Index reached = 0;
    for (Index s : res.level_sizes) reached += s;
    std::printf("bfs: reached %lld vertices in %zu levels\n",
                static_cast<long long>(reached), res.level_sizes.size());
  } else if (op == "bfs-hybrid") {
    HybridBfsOptions h;
    h.spmspv = comm;
    auto res = bfs_hybrid(a, source, h);
    int bu = 0;
    for (bool b : res.level_was_bottom_up) bu += b ? 1 : 0;
    std::printf("bfs-hybrid: %zu levels (%d bottom-up)\n",
                res.level_sizes.size(), bu);
  } else if (op == "cc") {
    auto res = connected_components(a);
    std::printf("cc: %lld components in %d rounds\n",
                static_cast<long long>(res.num_components), res.rounds);
  } else if (op == "pagerank") {
    const PagerankResult res =
        !plan.has_value() ? pagerank(a)
        : use_rebuild
            ? pagerank_with_rebuild(a, &*plan, 0.85, 1e-8, 100, bopt, &report)
            : pagerank_with_recovery(a, &*plan, 0.85, 1e-8, 100, ropt,
                                     &report);
    Index best = 0;
    for (Index v = 1; v < a.nrows(); ++v) {
      if (res.rank[static_cast<std::size_t>(v)] >
          res.rank[static_cast<std::size_t>(best)]) {
        best = v;
      }
    }
    std::printf("pagerank: %d iterations; top vertex %lld (%.3g)\n",
                res.iterations, static_cast<long long>(best),
                res.rank[static_cast<std::size_t>(best)]);
  } else if (op == "sssp") {
    const SsspResult res =
        !plan.has_value() ? sssp(a, source, comm)
        : use_rebuild
            ? sssp_with_rebuild(a, source, comm, &*plan, bopt, &report)
            : sssp_with_recovery(a, source, comm, &*plan, ropt, &report);
    Index reached = 0;
    for (double dv : res.dist) {
      if (dv != SsspResult::kUnreachable) ++reached;
    }
    std::printf("sssp: %lld reachable vertices, %d rounds\n",
                static_cast<long long>(reached), res.rounds);
  } else if (op == "mis") {
    auto res = mis(a, seed);
    std::printf("mis: independent set of %lld vertices in %d rounds\n",
                static_cast<long long>(res.set_size), res.rounds);
  } else if (op == "spmspv") {
    auto x = random_dist_sparse_vec<double>(
        grid, a.nrows(), static_cast<Index>(f * static_cast<double>(a.nrows())),
        seed + 1);
    grid.reset();
    auto y = spmspv_dist(a, x, arithmetic_semiring<double>(), comm);
    // FNV over the output's (index, value-bits) stream: a printed
    // content hash, so CI can diff the result across comm schedules —
    // every schedule must produce byte-identical output.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      for (int byte = 0; byte < 8; ++byte) {
        h = (h ^ ((v >> (8 * byte)) & 0xff)) * 1099511628211ull;
      }
    };
    const auto yl = y.to_local();
    for (Index p = 0; p < yl.nnz(); ++p) {
      mix(static_cast<std::uint64_t>(yl.index_at(p)));
      double dv = yl.value_at(p);
      std::uint64_t bits;
      std::memcpy(&bits, &dv, sizeof(bits));
      mix(bits);
    }
    std::printf("spmspv: nnz(x)=%lld -> nnz(y)=%lld hash=%016llx\n",
                static_cast<long long>(x.nnz()),
                static_cast<long long>(y.nnz()),
                static_cast<unsigned long long>(h));
  } else {
    throw InvalidArgument("unknown --op: " + op);
  }
  print_timing(grid);
  if (comm.comm == CommMode::kAuto) {
    print_inspector(grid);
  }
  if (plan.has_value()) {
    const auto& hot = grid.hot();
    const auto kills =
        grid.metrics().counter("fault.injected", {{"kind", "kill"}}).value;
    std::printf(
        "faults: injected drop=%lld dup=%lld corrupt=%lld stall=%lld "
        "kill=%lld; retries=%lld timeouts=%lld (%lld logical msgs)\n",
        static_cast<long long>(hot.injected_drop->value),
        static_cast<long long>(hot.injected_dup->value),
        static_cast<long long>(hot.injected_corrupt->value),
        static_cast<long long>(hot.injected_stall->value),
        static_cast<long long>(kills),
        static_cast<long long>(hot.retries->value),
        static_cast<long long>(hot.timeouts->value),
        static_cast<long long>(hot.logical_messages->value));
    if (report.restarts > 0 || report.rebuilds > 0 ||
        report.checkpoints > 0) {
      std::printf("recovery: %s\n", report.summary().c_str());
    }
  }
  if (grid.straggler_threshold() > 0.0) {
    std::printf("stragglers: %lld detections (threshold %.3g ms)\n",
                static_cast<long long>(
                    grid.metrics().counter("straggler.detected").value),
                grid.straggler_threshold() * 1e3);
  }
  if (!trace_file.empty()) {
    session.write_chrome_trace(trace_file);
    std::printf("trace: %d tracks, %zu spans, %zu counter samples -> %s\n",
                session.num_tracks(), session.spans().size(),
                session.counter_samples().size(), trace_file.c_str());
  }
  if (!metrics_file.empty()) {
    write_metrics(grid, metrics_file);
    std::printf("metrics -> %s\n", metrics_file.c_str());
  }
  if (!comm_matrix_file.empty()) {
    grid.write_comm_matrix(comm_matrix_file);
    std::printf("comm matrix: %d locales, %lld msgs, %lld B -> %s\n",
                grid.num_locales(),
                static_cast<long long>(grid.comm_matrix_total_messages()),
                static_cast<long long>(grid.comm_matrix_total_bytes()),
                comm_matrix_file.c_str());
  }
  if (!profile_file.empty()) {
    obs::Profile prof =
        obs::build_profile(session, grid.metrics().snapshot());
    // Workload identity: enough detail that diffing two different runs
    // is rejected as a structural mismatch instead of reported as a
    // thousand "regressions".
    std::string workload = op;
    if (!matrix.empty()) {
      workload += " " + matrix;
    } else if (gen == "er") {
      char g[64];
      std::snprintf(g, sizeof g, " er n=%lld d=%g",
                    static_cast<long long>(n), d);
      workload += g;
    } else {
      workload += " rmat scale=" + std::to_string(rmat_scale);
    }
    if (op == "spmspv") {
      char fs[32];
      std::snprintf(fs, sizeof fs, " f=%g", f);
      workload += fs;
    }
    if (op == "bfs" || op == "bfs-hybrid" || op == "sssp") {
      workload += " source=" + std::to_string(static_cast<long long>(source));
    }
    if (!faults.empty()) {
      workload += " faults=" + faults;
      // Recovery driver is part of the workload identity, but keep the
      // legacy string for the default (rollback) so existing committed
      // profiles still diff cleanly.
      if (use_rebuild) workload += " recovery=" + recovery_flag;
    }
    prof.workload = workload;
    prof.comm = to_string(comm.comm);
    prof.seed = seed;
    prof.locales = grid.num_locales();
    prof.threads = grid.threads();
    prof.machine = machine;
    prof.write(profile_file);
    std::printf("profile: %zu root spans -> %s\n", prof.spans.size(),
                profile_file.c_str());
  }
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pgb: error: %s\n", e.what());
    return 2;
  }
}
