// pgb_diff — the profile regression gate.
//
// Compares two profile reports (written by `pgb --profile=FILE` or the
// figure benches' `--profile` flag) and exits non-zero when the
// candidate regressed against the baseline:
//
//   pgb_diff BENCH_profiles/fig8_spmspv_agg.json candidate.json
//
// Deterministic facts (span structure, instance counts, message/byte
// counters, histogram shapes) are compared exactly — any drift is a
// behavioral change and fails the gate. Modeled times are compared
// within a relative band (--time-tol, default 5%) above a noise floor
// (--time-floor, default 1µs); faster-than-band results are reported as
// improvements but do not fail — regenerate the baseline
// (bench/regen_profiles.sh) to lock them in.
//
// --inject-slowdown=NAME:FACTOR multiplies the candidate's modeled
// times for spans named NAME before diffing. CI uses it to prove the
// gate trips: diffing a baseline against itself with
// --inject-slowdown=spmspv.gather:1.1 must exit 1.
//
// --slo=HIST:BOUND (repeatable) additionally gates the *candidate*
// profile's histogram p95 against an absolute bound — the serving SLO
// check: `--slo=service.latency.us{tenant=0}:250000` fails the gate
// when tenant 0's p95 simulated latency exceeds 250ms. The bound is in
// the histogram's own units (latency histograms record microseconds).
//
// Exit codes: 0 clean (improvements allowed), 1 regression, structural
// change, or SLO violation, 2 usage/load error.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/profile.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

using namespace pgb;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s BASELINE.json CANDIDATE.json [options]\n"
      "  --time-tol=F           relative band for modeled times "
      "(default 0.05)\n"
      "  --time-floor=F         seconds below which times are not gated "
      "(default 1e-6)\n"
      "  --report=FILE          also write the report to FILE\n"
      "  --inject-slowdown=NAME:FACTOR\n"
      "                         scale candidate times of spans named NAME "
      "(gate self-test)\n"
      "  --slo=HIST:BOUND       fail when the candidate histogram's p95 "
      "exceeds BOUND (repeatable)\n"
      "  --matrix=BASE:CAND     also diff two comm-matrix JSON exports "
      "(exact message counts,\n"
      "                         --matrix-byte-tol relative byte band); "
      "usable without profiles\n"
      "  --matrix-byte-tol=F    relative band for matrix byte cells "
      "(default 0.05)\n",
      argv0);
  std::exit(2);
}

double parse_double(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    PGB_REQUIRE(pos == s.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument(std::string("bad value for ") + what + ": " + s);
  }
}

JsonValue load_json(const std::string& path) {
  std::ifstream in(path);
  PGB_REQUIRE(in.good(), "cannot open comm matrix file: " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return json_parse(ss.str());
}

/// Diffs two `pgb --comm-matrix` / `pgb_serve --comm-matrix` JSON
/// exports. Message counts are modeled-deterministic facts: any cell
/// drift is a behavioral change and fails. Byte cells get a relative
/// band (`byte_tol`) — payload packing may legitimately shift a few
/// percent under schedule tweaks without the traffic shape changing.
bool diff_matrices(const std::string& base_path, const std::string& cand_path,
                   double byte_tol) {
  const JsonValue base = load_json(base_path);
  const JsonValue cand = load_json(cand_path);
  for (const auto* p : {&base, &cand}) {
    PGB_REQUIRE(p->at("schema").as_string() == "pgb.comm_matrix.v1",
                "comm matrix diff: unknown schema (want pgb.comm_matrix.v1)");
  }
  const std::int64_t n = base.at("locales").as_int();
  if (n != cand.at("locales").as_int()) {
    std::printf("matrix: FAIL — locale count %lld vs %lld\n",
                static_cast<long long>(n),
                static_cast<long long>(cand.at("locales").as_int()));
    return false;
  }
  const JsonValue& bm = base.at("messages");
  const JsonValue& cm = cand.at("messages");
  const JsonValue& bb = base.at("bytes");
  const JsonValue& cb = cand.at("bytes");
  std::int64_t bad_msgs = 0, bad_bytes = 0, shown = 0;
  for (std::size_t r = 0; r < static_cast<std::size_t>(n); ++r) {
    for (std::size_t d = 0; d < static_cast<std::size_t>(n); ++d) {
      const std::int64_t m0 = bm.at(r).at(d).as_int();
      const std::int64_t m1 = cm.at(r).at(d).as_int();
      if (m0 != m1) {
        ++bad_msgs;
        if (shown++ < 8) {
          std::printf("matrix: messages[%zu][%zu] %lld -> %lld\n", r, d,
                      static_cast<long long>(m0), static_cast<long long>(m1));
        }
      }
      const double y0 = bb.at(r).at(d).as_double();
      const double y1 = cb.at(r).at(d).as_double();
      if (std::abs(y1 - y0) > byte_tol * std::max(std::abs(y0), std::abs(y1))) {
        ++bad_bytes;
        if (shown++ < 8) {
          std::printf("matrix: bytes[%zu][%zu] %g -> %g (tol %g)\n", r, d, y0,
                      y1, byte_tol);
        }
      }
    }
  }
  if (bad_msgs == 0 && bad_bytes == 0) {
    std::printf("matrix: ok — %lld locales, totals %lld msgs / %lld B\n",
                static_cast<long long>(n),
                static_cast<long long>(cand.at("total_messages").as_int()),
                static_cast<long long>(cand.at("total_bytes").as_int()));
    return true;
  }
  std::printf("matrix: FAIL — %lld message cells drifted, %lld byte cells "
              "out of band\n",
              static_cast<long long>(bad_msgs),
              static_cast<long long>(bad_bytes));
  return false;
}

}  // namespace

int run(int argc, char** argv) {
  std::vector<std::string> files;
  double time_tol = 0.05;
  double time_floor = 1e-6;
  std::string report_file;
  std::string inject;
  std::vector<std::string> slos;
  std::string matrix_spec;
  double matrix_byte_tol = 0.05;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      files.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--time-tol") {
      time_tol = parse_double(val, "--time-tol");
    } else if (key == "--time-floor") {
      time_floor = parse_double(val, "--time-floor");
    } else if (key == "--report") {
      report_file = val;
    } else if (key == "--inject-slowdown") {
      inject = val;
    } else if (key == "--slo") {
      slos.push_back(val);
    } else if (key == "--matrix") {
      matrix_spec = val;
    } else if (key == "--matrix-byte-tol") {
      matrix_byte_tol = parse_double(val, "--matrix-byte-tol");
    } else if (key == "--help") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "pgb_diff: unknown flag %s\n", key.c_str());
      usage(argv[0]);
    }
  }
  const bool matrix_only = files.empty() && !matrix_spec.empty();
  if (files.size() != 2 && !matrix_only) usage(argv[0]);
  PGB_REQUIRE(time_tol >= 0.0, "--time-tol must be >= 0");
  PGB_REQUIRE(time_floor >= 0.0, "--time-floor must be >= 0");
  PGB_REQUIRE(matrix_byte_tol >= 0.0, "--matrix-byte-tol must be >= 0");

  bool matrix_ok = true;
  if (!matrix_spec.empty()) {
    const auto colon = matrix_spec.find(':');
    PGB_REQUIRE(colon != std::string::npos && colon > 0 &&
                    colon + 1 < matrix_spec.size(),
                "--matrix wants BASE.json:CAND.json");
    matrix_ok = diff_matrices(matrix_spec.substr(0, colon),
                              matrix_spec.substr(colon + 1), matrix_byte_tol);
  }
  if (matrix_only) return matrix_ok ? 0 : 1;

  const obs::Profile base = obs::Profile::load(files[0]);
  obs::Profile cand = obs::Profile::load(files[1]);

  if (!inject.empty()) {
    const auto colon = inject.rfind(':');
    PGB_REQUIRE(colon != std::string::npos && colon > 0,
                "--inject-slowdown wants NAME:FACTOR");
    const std::string name = inject.substr(0, colon);
    const double factor =
        parse_double(inject.substr(colon + 1), "--inject-slowdown factor");
    obs::scale_span_times(cand, name, factor);
    std::printf("injected: %s times x%g in candidate\n", name.c_str(),
                factor);
  }

  obs::ProfileDiffOptions opt;
  opt.time_tol = time_tol;
  opt.time_floor = time_floor;
  const obs::ProfileDiffResult diff = obs::diff_profiles(base, cand, opt);
  const std::string report = diff.report(files[0], files[1]);
  std::fputs(report.c_str(), stdout);
  if (!report_file.empty()) {
    std::ofstream out(report_file);
    PGB_REQUIRE(out.good(), "cannot open report file: " + report_file);
    out << report;
  }

  // SLO legs gate the candidate alone: deterministic p95s from the
  // profile's histogram summaries against absolute bounds.
  bool slo_ok = true;
  for (const std::string& spec : slos) {
    const auto colon = spec.rfind(':');
    PGB_REQUIRE(colon != std::string::npos && colon > 0,
                "--slo wants HIST:BOUND");
    const std::string hist = spec.substr(0, colon);
    const double bound = parse_double(spec.substr(colon + 1), "--slo bound");
    const auto it = cand.histograms.find(hist);
    if (it == cand.histograms.end()) {
      std::printf("slo: FAIL %s — histogram absent from candidate\n",
                  hist.c_str());
      slo_ok = false;
      continue;
    }
    const double p95 = static_cast<double>(it->second.p95);
    const bool ok = p95 <= bound;
    std::printf("slo: %s %s p95=%lld bound=%g (n=%lld)\n",
                ok ? "ok" : "FAIL", hist.c_str(),
                static_cast<long long>(it->second.p95), bound,
                static_cast<long long>(it->second.count));
    slo_ok = slo_ok && ok;
  }

  return diff.clean() && slo_ok && matrix_ok ? 0 : 1;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pgb_diff: error: %s\n", e.what());
    return 2;
  }
}
