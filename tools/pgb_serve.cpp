// pgb_serve — drives the graph-as-a-service front end (src/service/)
// under a seeded multi-tenant workload.
//
// Loads one generated graph as resident state behind an epoch-versioned
// handle, then replays a deterministic open-loop arrival process:
// `--queries` queries drawn from `--mix` across `--tenants` tenants,
// with exponential inter-arrivals of mean `--arrival-ms` simulated
// milliseconds. Arrivals that find the bounded admission queue full are
// shed with a typed rejection; admitted same-kind single-source queries
// are coalesced into fused multi-source waves (up to `--batch-max`
// wide) so one comm schedule is paid per level instead of one per user.
//
// Everything is simulated time on the modeled machine, so two runs with
// the same --seed print byte-identical summaries and metrics — the
// service-smoke CI job diffs exactly that.
//
// Examples:
//   pgb_serve --nodes=64 --tenants=3 --queries=48 --batch-max=16
//   pgb_serve --gen=rmat --rmat-scale=14 --mix=bfs:4,sssp:2,pr:1,ego:1
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "service/service.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pgb;

namespace {

/// splitmix64: the workload's own RNG, so the arrival trace depends on
/// nothing but --seed (std:: distributions are not portable bit-for-bit).
struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform in (0, 1].
  double unit() {
    return (static_cast<double>(next() >> 11) + 1.0) / 9007199254740992.0;
  }
};

struct MixWeights {
  std::int64_t bfs = 0, sssp = 0, pr = 0, ego = 0;
  std::int64_t total() const { return bfs + sssp + pr + ego; }
};

/// Parses "bfs:4,sssp:2,pr:1,ego:1" (any subset; weights >= 0).
MixWeights parse_mix(const std::string& spec) {
  MixWeights w;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    const std::size_t colon = part.find(':');
    PGB_REQUIRE(colon != std::string::npos,
                "--mix entries are KIND:WEIGHT, got '" + part + "'");
    const std::string kind = part.substr(0, colon);
    std::int64_t weight = 0;
    try {
      weight = std::stoll(part.substr(colon + 1));
    } catch (const std::exception&) {
      throw InvalidArgument("--mix weight must be an integer: '" + part + "'");
    }
    PGB_REQUIRE(weight >= 0, "--mix weights must be >= 0");
    if (kind == "bfs") {
      w.bfs = weight;
    } else if (kind == "sssp") {
      w.sssp = weight;
    } else if (kind == "pr") {
      w.pr = weight;
    } else if (kind == "ego") {
      w.ego = weight;
    } else {
      throw InvalidArgument("--mix kind must be bfs, sssp, pr, or ego; got '" +
                            kind + "'");
    }
    pos = comma + 1;
  }
  PGB_REQUIRE(w.total() > 0, "--mix must give positive total weight");
  return w;
}

QueryKind draw_kind(const MixWeights& w, Rng& rng) {
  std::int64_t r =
      static_cast<std::int64_t>(rng.next() % static_cast<std::uint64_t>(
                                                 w.total()));
  if ((r -= w.bfs) < 0) return QueryKind::kBfs;
  if ((r -= w.sssp) < 0) return QueryKind::kSssp;
  if ((r -= w.pr) < 0) return QueryKind::kPagerankSubgraph;
  return QueryKind::kEgoNet;
}

struct Arrival {
  double at = 0.0;
  QuerySpec spec;
};

}  // namespace

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 4, "locales"));
  const int threads =
      static_cast<int>(cli.get_int("threads", 24, "threads per locale"));
  const std::string machine =
      cli.get("machine", "edison", "machine model: edison | modern");
  const std::string gen = cli.get("gen", "er", "graph generator: er | rmat");
  const Index n = cli.get_int("n", 20000, "ER vertices");
  const double d = cli.get_double("d", 8.0, "ER nonzeros per row");
  const int rmat_scale =
      static_cast<int>(cli.get_int("rmat-scale", 14, "R-MAT scale"));
  const int tenants =
      static_cast<int>(cli.get_int("tenants", 3, "number of tenants"));
  const int queries = static_cast<int>(
      cli.get_int("queries", 48, "total queries in the workload"));
  const int batch_max = static_cast<int>(cli.get_int(
      "batch-max", 16, "max queries fused into one multi-source wave"));
  const int queue_depth = static_cast<int>(
      cli.get_int("queue-depth", 64, "admission queue capacity"));
  const double arrival_ms = cli.get_double(
      "arrival-ms", 0.05, "mean inter-arrival gap, simulated milliseconds");
  const std::string mix_flag =
      cli.get("mix", "bfs:6,sssp:3,pr:1,ego:2",
              "query mix weights: bfs:W,sssp:W,pr:W,ego:W");
  const Index depth =
      cli.get_int("depth", 2, "ego radius for the subgraph kinds");
  const std::string comm_flag =
      cli.get("comm", "auto", "communication schedule: fine | bulk | agg | "
                              "auto (inspector-chosen per site)");
  const std::uint64_t seed = static_cast<std::uint64_t>(
      cli.get_int("seed", 1, "graph + workload seed"));
  const std::string metrics_file =
      cli.get("metrics", "", "write the metrics registry as JSON");
  const std::string profile_file = cli.get(
      "profile", "",
      "write a profile report (span tree + counters) for pgb_diff");
  cli.finish();

  // Flag validation per pgb convention: a bad value names the accepted
  // ones and exits 2 (via InvalidArgument -> main's catch).
  PGB_REQUIRE(machine == "edison" || machine == "modern",
              "--machine must be edison or modern");
  PGB_REQUIRE(gen == "er" || gen == "rmat", "--gen must be er or rmat");
  PGB_REQUIRE(tenants >= 1 && tenants <= 64,
              "--tenants must be an integer in [1, 64]");
  PGB_REQUIRE(batch_max >= 1 && batch_max <= 64,
              "--batch-max must be an integer in [1, 64]");
  PGB_REQUIRE(queue_depth >= 1 && queue_depth <= 4096,
              "--queue-depth must be an integer in [1, 4096]");
  PGB_REQUIRE(queries >= 1, "--queries must be >= 1");
  PGB_REQUIRE(arrival_ms > 0.0, "--arrival-ms must be > 0");
  PGB_REQUIRE(depth >= 1, "--depth must be >= 1");
  const MixWeights mix = parse_mix(mix_flag);

  const MachineModel model =
      machine == "edison" ? MachineModel::edison() : MachineModel::modern();
  auto grid = LocaleGrid::square(nodes, threads, 1, model);
  obs::TraceSession session(false);
  if (!profile_file.empty()) grid.set_trace_session(&session);

  DistCsr<double> a(grid, 0, 0);
  if (gen == "er") {
    a = erdos_renyi_dist<double>(grid, n, d, seed);
    std::printf("generated ER: n=%lld d=%g, %lld nonzeros\n",
                static_cast<long long>(n), d, static_cast<long long>(a.nnz()));
  } else {
    RmatParams p;
    p.scale = rmat_scale;
    p.seed = seed;
    auto m = rmat_csr(p);
    Coo<double> coo(m.nrows(), m.ncols());
    for (Index r = 0; r < m.nrows(); ++r) {
      for (Index c : m.row_colids(r)) coo.add(r, c, 1.0);
    }
    a = DistCsr<double>::from_coo(grid, coo);
    std::printf("generated R-MAT: 2^%d vertices, %lld edges (symmetric)\n",
                rmat_scale, static_cast<long long>(a.nnz()));
  }
  std::printf("grid: %dx%d locales, %d threads, machine=%s\n", grid.rows(),
              grid.cols(), threads, machine.c_str());
  std::printf("service: queue-depth=%d batch-max=%d tenants=%d comm=%s\n\n",
              queue_depth, batch_max, tenants, comm_flag.c_str());

  // --- seeded workload: the arrival trace is a pure function of --seed ---
  Rng rng{seed * 0x9e3779b97f4a7c15ull + 0x5851f42d4c957f2dull};
  std::vector<Arrival> work;
  work.reserve(static_cast<std::size_t>(queries));
  double t = 0.0;
  for (int i = 0; i < queries; ++i) {
    t += -(arrival_ms * 1e-3) * std::log(rng.unit());
    Arrival w;
    w.at = t;
    w.spec.kind = draw_kind(mix, rng);
    w.spec.source = static_cast<Index>(rng.next() %
                                       static_cast<std::uint64_t>(a.nrows()));
    w.spec.depth = depth;
    w.spec.tenant = static_cast<int>(rng.next() %
                                     static_cast<std::uint64_t>(tenants));
    work.push_back(w);
  }

  ServiceConfig cfg;
  cfg.queue_depth = queue_depth;
  cfg.batch_max = batch_max;
  cfg.spmspv.comm = parse_comm_mode(comm_flag);
  grid.reset();
  GraphService svc(grid, cfg);
  const GraphStore::HandleId h = svc.store().load(
      std::make_shared<DistCsr<double>>(a));

  // --- serve: admit everything that has arrived, then run one batch;
  // when idle, admit the next future arrival (step() fast-forwards the
  // clocks to it). Arrivals that find the queue full are shed. ---
  std::size_t next = 0;
  while (next < work.size() || svc.queue_size() > 0) {
    const double now = grid.time();
    while (next < work.size() &&
           (work[next].at <= now || svc.queue_size() == 0)) {
      svc.submit(h, work[next].spec, work[next].at);
      ++next;
    }
    svc.step();
  }

  // --- deterministic summary ---
  auto& mx = grid.metrics();
  std::int64_t admitted = 0;
  for (const auto& rec : svc.records()) admitted += rec.done ? 1 : 0;
  const std::int64_t batches = mx.counter("service.batches").value;
  const auto& width = mx.histogram("service.batch.width");
  std::printf("served %lld of %d queries in %lld batches (mean width %.2f, "
              "%lld shed)\n",
              static_cast<long long>(admitted), queries,
              static_cast<long long>(batches), width.mean(),
              static_cast<long long>(queries - admitted));
  for (int tn = 0; tn < tenants; ++tn) {
    const obs::Labels labels = {{"tenant", std::to_string(tn)}};
    const std::int64_t offered = mx.counter("service.submitted", labels).value;
    std::int64_t served = 0;
    for (const auto& rec : svc.records()) {
      served += (rec.tenant == tn && rec.done) ? 1 : 0;
    }
    const auto& lat = mx.histogram("service.latency.us", labels);
    std::printf("  tenant %d: offered=%lld served=%lld rejected=%lld "
                "latency p50<=%lldus p95<=%lldus\n",
                tn, static_cast<long long>(offered),
                static_cast<long long>(served),
                static_cast<long long>(offered - served),
                static_cast<long long>(lat.quantile_bound(0.5)),
                static_cast<long long>(lat.quantile_bound(0.95)));
  }
  std::printf("\nmodeled time: %s\n", Table::time(grid.time()).c_str());
  const auto& cs = grid.comm_stats();
  std::printf("comm: %lld messages, %lld bulk transfers, "
              "%lld aggregator flushes, %.3g MB\n",
              static_cast<long long>(cs.messages),
              static_cast<long long>(cs.bulks),
              static_cast<long long>(cs.agg_flushes),
              static_cast<double>(cs.bytes) / 1e6);

  if (!metrics_file.empty()) {
    std::ofstream out(metrics_file);
    PGB_REQUIRE(out.good(), "cannot open metrics file: " + metrics_file);
    out << mx.json() << "\n";
    std::printf("metrics -> %s\n", metrics_file.c_str());
  }
  if (!profile_file.empty()) {
    obs::Profile prof = obs::build_profile(session, mx.snapshot());
    char wl[160];
    std::snprintf(wl, sizeof wl,
                  "serve %s tenants=%d queries=%d batch-max=%d "
                  "queue-depth=%d arrival-ms=%g mix=%s",
                  gen == "er" ? "er" : "rmat", tenants, queries, batch_max,
                  queue_depth, arrival_ms, mix_flag.c_str());
    prof.workload = wl;
    prof.comm = comm_flag;
    prof.seed = seed;
    prof.locales = grid.num_locales();
    prof.threads = grid.threads();
    prof.machine = machine;
    prof.write(profile_file);
    std::printf("profile: %zu root spans -> %s\n", prof.spans.size(),
                profile_file.c_str());
  }
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pgb_serve: error: %s\n", e.what());
    return 2;
  }
}
