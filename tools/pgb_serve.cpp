// pgb_serve — drives the graph-as-a-service front end (src/service/)
// under a seeded multi-tenant workload.
//
// Loads one generated graph as resident state behind an epoch-versioned
// handle, then replays a deterministic open-loop arrival process:
// `--queries` queries drawn from `--mix` across `--tenants` tenants,
// with exponential inter-arrivals of mean `--arrival-ms` simulated
// milliseconds. Admitted same-kind single-source queries are coalesced
// into fused multi-source waves (up to `--batch-max` wide) so one comm
// schedule is paid per level instead of one per user.
//
// Resilience surface (all simulated time):
//   --deadline-ms        per-query latency budget; a query that cannot
//                        meet it ends deadline_expired, never late
//   queue-full           rejections carry a retry-after hint; the client
//                        here honors it with seeded exponential backoff
//                        + jitter (own RNG stream — the base arrival
//                        trace is untouched), up to --retry-max times
//   --quota/--breaker-k  per-tenant token-bucket quotas and circuit
//                        breakers (kTenantThrottled rejections)
//   --faults             chaos serving: the pgb fault grammar, including
//                        kill:locale=L,at=T mid-traffic; BFS/SSSP
//                        batches recover through the localized-rebuild
//                        path and keep serving on the surviving hosts
//                        (use a bfs/sssp-only --mix with kill faults)
//   --watermark          record-book compaction: terminal records are
//                        harvested and released as the run goes, so
//                        memory stays steady under sustained traffic
//
// Everything is simulated time on the modeled machine, so two runs with
// the same --seed print byte-identical summaries and metrics — the
// service-smoke and overload-smoke CI jobs diff exactly that.
//
// Examples:
//   pgb_serve --nodes=64 --tenants=3 --queries=48 --batch-max=16
//   pgb_serve --deadline-ms=5 --quota=200 --breaker-k=4 --retry-max=3
//   pgb_serve --mix=bfs:4,sssp:2 --faults=kill:locale=3,at=0.002 \
//             --recovery=degraded --replica=buddy
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "ingest/ingest.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "service/service.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pgb;

namespace {

/// splitmix64: the workload's own RNG, so the arrival trace depends on
/// nothing but --seed (std:: distributions are not portable bit-for-bit).
struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform in (0, 1].
  double unit() {
    return (static_cast<double>(next() >> 11) + 1.0) / 9007199254740992.0;
  }
};

struct MixWeights {
  std::int64_t bfs = 0, sssp = 0, pr = 0, ego = 0;
  std::int64_t total() const { return bfs + sssp + pr + ego; }
};

/// Parses "bfs:4,sssp:2,pr:1,ego:1" (any subset; weights >= 0).
MixWeights parse_mix(const std::string& spec) {
  MixWeights w;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    const std::size_t colon = part.find(':');
    PGB_REQUIRE(colon != std::string::npos,
                "--mix entries are KIND:WEIGHT, got '" + part + "'");
    const std::string kind = part.substr(0, colon);
    std::int64_t weight = 0;
    try {
      weight = std::stoll(part.substr(colon + 1));
    } catch (const std::exception&) {
      throw InvalidArgument("--mix weight must be an integer: '" + part + "'");
    }
    PGB_REQUIRE(weight >= 0, "--mix weights must be >= 0");
    if (kind == "bfs") {
      w.bfs = weight;
    } else if (kind == "sssp") {
      w.sssp = weight;
    } else if (kind == "pr") {
      w.pr = weight;
    } else if (kind == "ego") {
      w.ego = weight;
    } else {
      throw InvalidArgument("--mix kind must be bfs, sssp, pr, or ego; got '" +
                            kind + "'");
    }
    pos = comma + 1;
  }
  PGB_REQUIRE(w.total() > 0, "--mix must give positive total weight");
  return w;
}

QueryKind draw_kind(const MixWeights& w, Rng& rng) {
  std::int64_t r =
      static_cast<std::int64_t>(rng.next() % static_cast<std::uint64_t>(
                                                 w.total()));
  if ((r -= w.bfs) < 0) return QueryKind::kBfs;
  if ((r -= w.sssp) < 0) return QueryKind::kSssp;
  if ((r -= w.pr) < 0) return QueryKind::kPagerankSubgraph;
  return QueryKind::kEgoNet;
}

/// Parses "insert:9,delete:1" (any subset; weights >= 0, total > 0).
IngestMix parse_ingest_mix(const std::string& spec) {
  IngestMix w;
  w.insert = 0;
  w.erase = 0;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    const std::size_t colon = part.find(':');
    PGB_REQUIRE(colon != std::string::npos,
                "--ingest-mix entries are KIND:WEIGHT, got '" + part + "'");
    const std::string kind = part.substr(0, colon);
    std::int64_t weight = 0;
    try {
      weight = std::stoll(part.substr(colon + 1));
    } catch (const std::exception&) {
      throw InvalidArgument("--ingest-mix weight must be an integer: '" +
                            part + "'");
    }
    PGB_REQUIRE(weight >= 0, "--ingest-mix weights must be >= 0");
    if (kind == "insert") {
      w.insert = weight;
    } else if (kind == "delete") {
      w.erase = weight;
    } else {
      throw InvalidArgument("--ingest-mix kind must be insert or delete; "
                            "got '" + kind + "'");
    }
    pos = comma + 1;
  }
  PGB_REQUIRE(w.total() > 0, "--ingest-mix must give positive total weight");
  return w;
}

/// One client-side submission event: the original arrival or a backoff
/// resubmission after a queue-full rejection. The heap orders by
/// (at, seq) — seq breaks simulated-time ties deterministically.
struct Event {
  double at = 0.0;
  std::uint64_t seq = 0;
  int attempts = 0;  ///< queue-full retries already spent
  QuerySpec spec;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    return a.at != b.at ? a.at > b.at : a.seq > b.seq;
  }
};

}  // namespace

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const int nodes = static_cast<int>(cli.get_int("nodes", 4, "locales"));
  const int threads =
      static_cast<int>(cli.get_int("threads", 24, "threads per locale"));
  const std::string machine =
      cli.get("machine", "edison", "machine model: edison | modern");
  const std::string gen = cli.get("gen", "er", "graph generator: er | rmat");
  const Index n = cli.get_int("n", 20000, "ER vertices");
  const double d = cli.get_double("d", 8.0, "ER nonzeros per row");
  const int rmat_scale =
      static_cast<int>(cli.get_int("rmat-scale", 14, "R-MAT scale"));
  const int tenants =
      static_cast<int>(cli.get_int("tenants", 3, "number of tenants"));
  const int queries = static_cast<int>(
      cli.get_int("queries", 48, "total queries in the workload"));
  const int batch_max = static_cast<int>(cli.get_int(
      "batch-max", 16, "max queries fused into one multi-source wave"));
  const int queue_depth = static_cast<int>(
      cli.get_int("queue-depth", 64, "admission queue capacity"));
  const double arrival_ms = cli.get_double(
      "arrival-ms", 0.05, "mean inter-arrival gap, simulated milliseconds");
  const std::string mix_flag =
      cli.get("mix", "bfs:6,sssp:3,pr:1,ego:2",
              "query mix weights: bfs:W,sssp:W,pr:W,ego:W");
  const Index depth =
      cli.get_int("depth", 2, "ego radius for the subgraph kinds");
  const std::string comm_flag =
      cli.get("comm", "auto", "communication schedule: fine | bulk | agg | "
                              "auto (inspector-chosen per site)");
  const double deadline_ms = cli.get_double(
      "deadline-ms", 0.0,
      "per-query latency budget, simulated ms (0 = no deadline)");
  const double quota = cli.get_double(
      "quota", 0.0,
      "per-tenant sustained admission rate, queries per simulated second "
      "(0 = no quota)");
  const double quota_burst = cli.get_double(
      "quota-burst", 8.0, "per-tenant token-bucket burst capacity");
  const int breaker_k = static_cast<int>(cli.get_int(
      "breaker-k", 0,
      "consecutive failures that trip a tenant's circuit breaker (0 = off)"));
  const double breaker_cooldown_ms = cli.get_double(
      "breaker-cooldown-ms", 50.0,
      "open-breaker hold before a half-open probe, simulated ms");
  const int retry_max = static_cast<int>(cli.get_int(
      "retry-max", 3,
      "client resubmits after a queue-full rejection (0 = shed at once)"));
  const double retry_floor_ms = cli.get_double(
      "retry-floor-ms", 1.0,
      "floor of the server's suggested retry-after, simulated ms");
  const int watermark = static_cast<int>(cli.get_int(
      "watermark", 256,
      "record-book compaction watermark (released records kept before the "
      "prefix drops)"));
  const std::string faults = cli.get(
      "faults", "",
      "fault spec (pgb grammar), e.g. drop:p=0.01;kill:locale=3,at=0.002 — "
      "kill faults need a bfs/sssp-only --mix");
  const std::uint64_t fault_seed = static_cast<std::uint64_t>(
      cli.get_int("fault-seed", 42, "fault plan RNG seed"));
  const std::string recovery_flag =
      cli.get("recovery", "degraded",
              "recovery driver under --faults: rebuild | degraded");
  const std::string replica_flag = cli.get(
      "replica", "buddy", "replication scheme under --faults: buddy | parity");
  const int parity_group = static_cast<int>(cli.get_int(
      "parity-group", 4, "locales per parity group (--replica=parity)"));
  const std::int64_t replica_chunk = cli.get_int(
      "replica-chunk", 4096, "replica dirty-diff chunk size in bytes");
  const std::uint64_t seed = static_cast<std::uint64_t>(
      cli.get_int("seed", 1, "graph + workload seed"));
  const std::string metrics_file =
      cli.get("metrics", "", "write the metrics registry as JSON");
  const std::string profile_file = cli.get(
      "profile", "",
      "write a profile report (span tree + counters) for pgb_diff");
  const std::string trace_file = cli.get(
      "trace", "",
      "write a Chrome trace (Perfetto-loadable) of the serve run: one "
      "track per locale plus one dedicated track per admitted query");
  const bool trace_detail = cli.get_bool(
      "trace-detail", false, "also record per-call comm instants");
  const std::string comm_matrix_file = cli.get(
      "comm-matrix", "",
      "write the per src->dst locale comm matrix (messages + bytes) as "
      "JSON, or CSV when the path ends in .csv");
  const std::string event_log_file = cli.get(
      "event-log", "",
      "write the structured service event log (JSONL, simulated-time "
      "stamped: admits, rejections, expiries, breaker transitions, "
      "publishes, degrade/rebuild, periodic health)");
  const int health_every = static_cast<int>(cli.get_int(
      "health-log-every", 8,
      "health snapshot cadence in scheduling rounds for --event-log "
      "(0 = off)"));
  const int ingest = static_cast<int>(cli.get_int(
      "ingest", 0,
      "mutation batches streamed during the run through the replicated "
      "delta log (0 = static graph)"));
  const double ingest_rate = cli.get_double(
      "ingest-rate", 100.0, "ingest batches per simulated second");
  const int ingest_batch = static_cast<int>(cli.get_int(
      "ingest-batch", 64, "edge mutations per ingest batch"));
  const std::string ingest_mix_flag =
      cli.get("ingest-mix", "insert:9,delete:1",
              "mutation mix weights: insert:W,delete:W");
  const std::int64_t compact_every = cli.get_int(
      "compact-every", 8192,
      "pending overlay deltas that trigger compaction into a fresh base");
  cli.finish();

  // Flag validation per pgb convention: a bad value names the accepted
  // ones and exits 2 (via InvalidArgument -> main's catch).
  PGB_REQUIRE(machine == "edison" || machine == "modern",
              "--machine must be edison or modern");
  PGB_REQUIRE(gen == "er" || gen == "rmat", "--gen must be er or rmat");
  PGB_REQUIRE(tenants >= 1 && tenants <= 64,
              "--tenants must be an integer in [1, 64]");
  PGB_REQUIRE(batch_max >= 1 && batch_max <= 64,
              "--batch-max must be an integer in [1, 64]");
  PGB_REQUIRE(queue_depth >= 1 && queue_depth <= 4096,
              "--queue-depth must be an integer in [1, 4096]");
  PGB_REQUIRE(queries >= 1, "--queries must be >= 1");
  PGB_REQUIRE(arrival_ms > 0.0, "--arrival-ms must be > 0");
  PGB_REQUIRE(depth >= 1, "--depth must be >= 1");
  PGB_REQUIRE(deadline_ms >= 0.0, "--deadline-ms must be >= 0");
  PGB_REQUIRE(quota >= 0.0, "--quota must be >= 0");
  PGB_REQUIRE(quota_burst >= 1.0 && quota_burst <= 1e6,
              "--quota-burst must be in [1, 1e6]");
  PGB_REQUIRE(breaker_k >= 0 && breaker_k <= 1000,
              "--breaker-k must be an integer in [0, 1000]");
  PGB_REQUIRE(breaker_cooldown_ms > 0.0, "--breaker-cooldown-ms must be > 0");
  PGB_REQUIRE(retry_max >= 0 && retry_max <= 16,
              "--retry-max must be an integer in [0, 16]");
  PGB_REQUIRE(retry_floor_ms > 0.0, "--retry-floor-ms must be > 0");
  PGB_REQUIRE(watermark >= 1 && watermark <= 1048576,
              "--watermark must be an integer in [1, 1048576]");
  PGB_REQUIRE(recovery_flag == "rebuild" || recovery_flag == "degraded",
              "--recovery must be rebuild or degraded");
  PGB_REQUIRE(replica_flag == "buddy" || replica_flag == "parity",
              "--replica must be buddy or parity");
  PGB_REQUIRE(parity_group >= 2 && parity_group <= 64,
              "--parity-group must be an integer in [2, 64]");
  PGB_REQUIRE(replica_chunk >= 1, "--replica-chunk must be >= 1");
  PGB_REQUIRE(health_every >= 0, "--health-log-every must be >= 0");
  PGB_REQUIRE(ingest >= 0 && ingest <= 100000,
              "--ingest must be an integer in [0, 100000]");
  PGB_REQUIRE(ingest_rate > 0.0 && ingest_rate <= 1e9,
              "--ingest-rate must be in (0, 1e9]");
  PGB_REQUIRE(ingest_batch >= 1 && ingest_batch <= 65536,
              "--ingest-batch must be an integer in [1, 65536]");
  PGB_REQUIRE(compact_every >= 1 && compact_every <= 1073741824,
              "--compact-every must be an integer in [1, 1073741824]");
  PGB_REQUIRE(ingest == 0 || nodes >= 2,
              "--ingest needs at least 2 locales for buddy mirroring");
  const MixWeights mix = parse_mix(mix_flag);
  const IngestMix imix = parse_ingest_mix(ingest_mix_flag);

  std::optional<FaultPlan> plan;
  if (!faults.empty()) {
    FaultSpec spec = FaultSpec::parse(faults);
    bool kills = false;
    for (const auto& r : spec.rules) kills |= r.kind == FaultKind::kLocaleFail;
    // Only the frontier kinds run under the rebuild driver; a kill would
    // strand an in-flight subgraph query.
    PGB_REQUIRE(!kills || (mix.pr == 0 && mix.ego == 0),
                "--faults with kill needs a bfs/sssp-only --mix");
    plan.emplace(std::move(spec), fault_seed);
  }

  const MachineModel model =
      machine == "edison" ? MachineModel::edison() : MachineModel::modern();
  auto grid = LocaleGrid::square(nodes, threads, 1, model);
  obs::TraceSession session(trace_detail);
  if (!profile_file.empty() || !trace_file.empty()) {
    grid.set_trace_session(&session);
  }
  if (!comm_matrix_file.empty()) grid.enable_comm_matrix();

  DistCsr<double> a(grid, 0, 0);
  if (gen == "er") {
    a = erdos_renyi_dist<double>(grid, n, d, seed);
    std::printf("generated ER: n=%lld d=%g, %lld nonzeros\n",
                static_cast<long long>(n), d, static_cast<long long>(a.nnz()));
  } else {
    RmatParams p;
    p.scale = rmat_scale;
    p.seed = seed;
    auto m = rmat_csr(p);
    Coo<double> coo(m.nrows(), m.ncols());
    for (Index r = 0; r < m.nrows(); ++r) {
      for (Index c : m.row_colids(r)) coo.add(r, c, 1.0);
    }
    a = DistCsr<double>::from_coo(grid, coo);
    std::printf("generated R-MAT: 2^%d vertices, %lld edges (symmetric)\n",
                rmat_scale, static_cast<long long>(a.nnz()));
  }
  std::printf("grid: %dx%d locales, %d threads, machine=%s\n", grid.rows(),
              grid.cols(), threads, machine.c_str());
  std::printf("service: queue-depth=%d batch-max=%d tenants=%d comm=%s\n",
              queue_depth, batch_max, tenants, comm_flag.c_str());
  std::printf("resilience: deadline=%gms quota=%gq/s burst=%g breaker-k=%d "
              "retry-max=%d watermark=%d\n",
              deadline_ms, quota, quota_burst, breaker_k, retry_max, watermark);
  if (ingest > 0) {
    std::printf("ingest: batches=%d rate=%g/s batch=%d mix=%s "
                "compact-every=%lld\n",
                ingest, ingest_rate, ingest_batch, ingest_mix_flag.c_str(),
                static_cast<long long>(compact_every));
  }
  if (plan.has_value()) {
    std::printf("faults: %s (seed %llu, recovery=%s, replica=%s)\n",
                plan->spec().to_string().c_str(),
                static_cast<unsigned long long>(fault_seed),
                recovery_flag.c_str(), replica_flag.c_str());
  }
  std::printf("\n");

  // --- seeded workload: the arrival trace is a pure function of --seed,
  // and the retry stream is separate so backoff never perturbs it ---
  Rng rng{seed * 0x9e3779b97f4a7c15ull + 0x5851f42d4c957f2dull};
  Rng retry_rng{seed * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull};
  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  std::uint64_t seq = 0;
  double t = 0.0;
  for (int i = 0; i < queries; ++i) {
    t += -(arrival_ms * 1e-3) * std::log(rng.unit());
    Event w;
    w.at = t;
    w.seq = seq++;
    w.spec.kind = draw_kind(mix, rng);
    w.spec.source = static_cast<Index>(rng.next() %
                                       static_cast<std::uint64_t>(a.nrows()));
    w.spec.depth = depth;
    w.spec.tenant = static_cast<int>(rng.next() %
                                     static_cast<std::uint64_t>(tenants));
    w.spec.deadline_s = deadline_ms * 1e-3;
    events.push(w);
  }

  RecoveryReport report;
  ServiceConfig cfg;
  cfg.queue_depth = queue_depth;
  cfg.batch_max = batch_max;
  cfg.spmspv.comm = parse_comm_mode(comm_flag);
  cfg.tenant_quota_qps = quota;
  cfg.tenant_quota_burst = quota_burst;
  cfg.breaker_k = breaker_k;
  cfg.breaker_cooldown_s = breaker_cooldown_ms * 1e-3;
  cfg.retry_floor_s = retry_floor_ms * 1e-3;
  cfg.compact_watermark = watermark;
  if (plan.has_value()) {
    cfg.plan = &*plan;
    cfg.rebuild.mode = recovery_flag == "rebuild" ? RebuildMode::kSpare
                                                  : RebuildMode::kDegraded;
    cfg.rebuild.replica.scheme = replica_flag == "parity"
                                     ? ReplicaScheme::kParity
                                     : ReplicaScheme::kBuddy;
    cfg.rebuild.replica.parity_group = parity_group;
    cfg.rebuild.replica.chunk_bytes = replica_chunk;
    // Serving owns the grid for its whole lifetime: after a kill, keep
    // the degraded remap installed between batches so every later batch
    // starts on the surviving hosts instead of re-failing into a
    // per-batch rebuild.
    cfg.rebuild.keep_membership = true;
    cfg.report = &report;
  }
  if (!event_log_file.empty()) cfg.health_log_every = health_every;
  grid.reset();
  if (plan.has_value()) grid.set_fault_plan(&*plan);
  GraphService svc(grid, cfg);
  ServiceEventLog elog;
  if (!event_log_file.empty()) svc.set_event_log(&elog);
  const GraphStore::HandleId h = svc.store().load(
      std::make_shared<DistCsr<double>>(a));

  // --- ingest stream: seeded mutation batches interleaved with the
  // query traffic. Content and cadence come from their own RNG stream,
  // so --ingest=0 runs are byte-identical to pre-ingest builds. ---
  std::optional<IngestStream> stream;
  MutationRng ingest_rng{seed * 0xa0761d6478bd642full + 0xe7037ed1a0b428dbull};
  std::vector<double> ingest_at(static_cast<std::size_t>(ingest), 0.0);
  for (int k = 0; k < ingest; ++k) {
    ingest_at[static_cast<std::size_t>(k)] =
        static_cast<double>(k + 1) / ingest_rate;
  }
  if (ingest > 0) {
    IngestOptions iopt;
    iopt.compact_every = compact_every;
    stream.emplace(grid, svc.store(), h, a, iopt,
                   event_log_file.empty() ? nullptr : &elog);
    // A kill landing inside a *query* batch restores the delta log and
    // base mirror as part of the same localized rebuild.
    svc.set_rebuild_hook(
        [&](int logical) { stream->recover_after_rebuild(logical); });
  }
  std::int64_t next_ingest = 0;
  const auto ingest_one = [&] {
    const MutationBatch b = make_mutation_batch(
        ingest_rng, a.nrows(), ingest_batch, imix, next_ingest + 1);
    stream->apply(b);
    stream->publish();
    ++next_ingest;
  };

  // --- serve loop: admit every due event, run one scheduling round,
  // harvest + release finished records (memory-steady). A queue-full
  // rejection is resubmitted at now + retry_after * 2^attempt * jitter;
  // a throttled or out-of-retries query is shed. ---
  std::int64_t served = 0, expired = 0, late = 0;
  std::int64_t shed_full = 0, shed_throttled = 0, requeued = 0;
  std::vector<std::int64_t> served_t(static_cast<std::size_t>(tenants), 0);
  std::vector<std::int64_t> expired_t(static_cast<std::size_t>(tenants), 0);
  std::int64_t next_harvest = 0;
  const auto harvest = [&] {
    while (next_harvest < svc.records_retired() + svc.records_live()) {
      const QueryRecord& rec = svc.record(next_harvest);
      if (rec.state == QueryState::kQueued) break;
      if (rec.state == QueryState::kDone) {
        ++served;
        ++served_t[static_cast<std::size_t>(rec.tenant)];
        late += rec.completion > rec.deadline ? 1 : 0;
      } else {
        ++expired;
        ++expired_t[static_cast<std::size_t>(rec.tenant)];
      }
      svc.release(next_harvest);
      ++next_harvest;
    }
  };
  while (!events.empty() || svc.queue_size() > 0 || next_ingest < ingest) {
    const double now = grid.time();
    // Due ingest batches run between scheduling rounds; with the service
    // idle, whichever of (next arrival, next batch) is earlier goes
    // first, so the interleave is a pure function of simulated time.
    if (next_ingest < ingest) {
      const double at = ingest_at[static_cast<std::size_t>(next_ingest)];
      const double next_event_at = events.empty() ? -1.0 : events.top().at;
      if (at <= now ||
          (svc.queue_size() == 0 &&
           (events.empty() || at <= next_event_at))) {
        ingest_one();
        continue;  // recompute `now` — apply/publish advanced the clock
      }
    }
    while (!events.empty() &&
           (events.top().at <= now || svc.queue_size() == 0)) {
      Event ev = events.top();
      events.pop();
      const auto s = svc.submit(h, ev.spec, ev.at);
      if (s.code == AdmitCode::kQueueFull) {
        if (ev.attempts < retry_max) {
          // Exponential backoff on the server's hint, jittered from the
          // dedicated retry stream: factor in (0.75, 1.25].
          const double backoff = s.retry_after_s *
                                 std::pow(2.0, ev.attempts) *
                                 (0.75 + 0.5 * retry_rng.unit());
          ev.at = std::max(ev.at, now) + backoff;
          ev.seq = seq++;
          ++ev.attempts;
          ++requeued;
          events.push(ev);
        } else {
          ++shed_full;
        }
      } else if (s.code == AdmitCode::kTenantThrottled) {
        ++shed_throttled;
      }
    }
    svc.step();
    harvest();
  }
  harvest();

  // --- deterministic summary ---
  auto& mx = grid.metrics();
  const std::int64_t batches = mx.counter("service.batches").value;
  const auto& width = mx.histogram("service.batch.width");
  std::printf("served %lld of %d queries in %lld batches (mean width %.2f, "
              "%lld shed)\n",
              static_cast<long long>(served), queries,
              static_cast<long long>(batches), width.mean(),
              static_cast<long long>(shed_full + shed_throttled));
  std::int64_t exp_queue = 0, exp_admission = 0, exp_post = 0, trips = 0;
  for (int tn = 0; tn < tenants; ++tn) {
    const std::string ts = std::to_string(tn);
    exp_queue +=
        mx.counter("service.expired", {{"tenant", ts}, {"stage", "queue"}})
            .value;
    exp_admission +=
        mx.counter("service.expired", {{"tenant", ts}, {"stage", "admission"}})
            .value;
    exp_post +=
        mx.counter("service.expired", {{"tenant", ts}, {"stage", "post"}})
            .value;
    trips += mx.counter("service.breaker.trips", {{"tenant", ts}}).value;
  }
  std::printf("resilience: expired=%lld (queue=%lld admission=%lld "
              "post=%lld) late=%lld retries=%lld shed_full=%lld "
              "throttled=%lld breaker_trips=%lld\n",
              static_cast<long long>(expired),
              static_cast<long long>(exp_queue),
              static_cast<long long>(exp_admission),
              static_cast<long long>(exp_post), static_cast<long long>(late),
              static_cast<long long>(requeued),
              static_cast<long long>(shed_full),
              static_cast<long long>(shed_throttled),
              static_cast<long long>(trips));
  std::printf("records: live=%lld retired=%lld (watermark %d)\n",
              static_cast<long long>(svc.records_live()),
              static_cast<long long>(svc.records_retired()), watermark);
  for (int tn = 0; tn < tenants; ++tn) {
    const obs::Labels labels = {{"tenant", std::to_string(tn)}};
    const std::int64_t offered = mx.counter("service.submitted", labels).value;
    const auto& lat = mx.histogram("service.latency.us", labels);
    std::printf("  tenant %d: offered=%lld served=%lld expired=%lld "
                "latency p50<=%lldus p95<=%lldus\n",
                tn, static_cast<long long>(offered),
                static_cast<long long>(
                    served_t[static_cast<std::size_t>(tn)]),
                static_cast<long long>(
                    expired_t[static_cast<std::size_t>(tn)]),
                static_cast<long long>(lat.quantile_bound(0.5)),
                static_cast<long long>(lat.quantile_bound(0.95)));
  }
  const ServiceHealth health = svc.health();
  std::printf("health: %s\n", health.summary().c_str());
  if (plan.has_value()) {
    const auto kills =
        mx.counter("fault.injected", {{"kind", "kill"}}).value;
    std::printf("faults: injected kill=%lld; recovery: %s\n",
                static_cast<long long>(kills), report.summary().c_str());
  }
  if (ingest > 0) {
    const IngestStats& is = stream->stats();
    std::printf("ingest: batches=%lld deltas=%lld (insert=%lld delete=%lld) "
                "publishes=%lld compactions=%lld\n",
                static_cast<long long>(is.batches),
                static_cast<long long>(is.deltas),
                static_cast<long long>(is.inserts),
                static_cast<long long>(is.deletes),
                static_cast<long long>(is.publishes),
                static_cast<long long>(is.compactions));
    std::printf("ingest: replays=%lld pages_replayed=%lld "
                "pages_discarded=%lld log_bytes=%lld pinned_versions=%lld\n",
                static_cast<long long>(is.replays),
                static_cast<long long>(is.pages_replayed),
                static_cast<long long>(is.pages_discarded),
                static_cast<long long>(is.log_bytes),
                static_cast<long long>(svc.store().retired_live()));
    const GraphSnapshot snap = svc.store().snapshot(h);
    std::printf("ingest: final epoch=%llu graph hash=%016llx\n",
                static_cast<unsigned long long>(snap.epoch),
                static_cast<unsigned long long>(ingest_graph_hash(*snap.graph)));
  }
  std::printf("\nmodeled time: %s\n", Table::time(grid.time()).c_str());
  const auto& cs = grid.comm_stats();
  std::printf("comm: %lld messages, %lld bulk transfers, "
              "%lld aggregator flushes, %.3g MB\n",
              static_cast<long long>(cs.messages),
              static_cast<long long>(cs.bulks),
              static_cast<long long>(cs.agg_flushes),
              static_cast<double>(cs.bytes) / 1e6);

  if (!trace_file.empty()) {
    session.write_chrome_trace(trace_file);
    std::printf("trace: %d tracks, %zu spans, %zu counter samples -> %s\n",
                session.num_tracks(), session.spans().size(),
                session.counter_samples().size(), trace_file.c_str());
  }
  if (!comm_matrix_file.empty()) {
    // Conservation invariant, also checked degraded (post-kill remap):
    // the matrix is accumulated at exactly the two sites that bump the
    // comm.messages/comm.bytes counters, so the totals must match.
    PGB_REQUIRE(grid.comm_matrix_total_messages() == cs.messages,
                "comm matrix: message total diverged from comm.messages");
    PGB_REQUIRE(grid.comm_matrix_total_bytes() == cs.bytes,
                "comm matrix: byte total diverged from comm.bytes");
    grid.write_comm_matrix(comm_matrix_file);
    std::printf("comm matrix: %d locales, %lld msgs, %lld B -> %s\n",
                grid.num_locales(),
                static_cast<long long>(grid.comm_matrix_total_messages()),
                static_cast<long long>(grid.comm_matrix_total_bytes()),
                comm_matrix_file.c_str());
  }
  if (!event_log_file.empty()) {
    elog.write(event_log_file);
    std::printf("event log: %zu events -> %s\n", elog.size(),
                event_log_file.c_str());
  }
  if (!metrics_file.empty()) {
    std::ofstream out(metrics_file);
    PGB_REQUIRE(out.good(), "cannot open metrics file: " + metrics_file);
    out << mx.json() << "\n";
    std::printf("metrics -> %s\n", metrics_file.c_str());
  }
  if (!profile_file.empty()) {
    obs::Profile prof = obs::build_profile(session, mx.snapshot());
    char wl[200];
    std::snprintf(wl, sizeof wl,
                  "serve %s tenants=%d queries=%d batch-max=%d "
                  "queue-depth=%d arrival-ms=%g mix=%s deadline-ms=%g",
                  gen == "er" ? "er" : "rmat", tenants, queries, batch_max,
                  queue_depth, arrival_ms, mix_flag.c_str(), deadline_ms);
    prof.workload = wl;
    prof.comm = comm_flag;
    prof.seed = seed;
    prof.locales = grid.num_locales();
    prof.threads = grid.threads();
    prof.machine = machine;
    prof.write(profile_file);
    std::printf("profile: %zu root spans -> %s\n", prof.spans.size(),
                profile_file.c_str());
  }
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pgb_serve: error: %s\n", e.what());
    return 2;
  }
}
