// pgb_matrix — terminal renderer for comm-matrix exports.
//
// Reads the JSON written by `pgb --comm-matrix=FILE` / `pgb_serve
// --comm-matrix=FILE` (schema pgb.comm_matrix.v1) and renders an ASCII
// heatmap of the src -> dst locale traffic, with row/column marginals
// and the row imbalance ratio (max row total / mean row total) — the
// quick "is one locale a hotspot" read without leaving the terminal.
//
//   pgb_matrix comm.json             # message counts (default)
//   pgb_matrix comm.json --bytes     # byte volumes
//   pgb_matrix comm.json --path=agg  # one comm path's submatrix
//
// Cells are log-scaled into " .:-=+*#%@" relative to the largest cell,
// so a 64x64 grid reads at a glance. Exit codes: 0 ok, 2 usage/load
// error (pgb convention).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"

using namespace pgb;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s MATRIX.json [options]\n"
               "  --bytes       render byte volumes instead of messages\n"
               "  --path=NAME   render one comm path's submatrix "
               "(agg | bulk | chain | msgs | rt)\n",
               argv0);
  std::exit(2);
}

/// Log-scaled heatmap glyph for `v` relative to the max cell.
char shade(std::int64_t v, std::int64_t max) {
  static const char kRamp[] = " .:-=+*#%@";
  if (v <= 0 || max <= 0) return kRamp[0];
  const double frac = std::log1p(static_cast<double>(v)) /
                      std::log1p(static_cast<double>(max));
  const int levels = static_cast<int>(sizeof kRamp) - 2;  // skip the blank
  const int idx =
      1 + std::min(levels - 1, static_cast<int>(frac * levels));
  return kRamp[idx];
}

}  // namespace

int run(int argc, char** argv) {
  std::string file;
  bool bytes = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bytes") {
      bytes = true;
    } else if (arg.rfind("--path=", 0) == 0) {
      path = arg.substr(7);
    } else if (arg == "--help") {
      usage(argv[0]);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "pgb_matrix: unknown flag %s\n", arg.c_str());
      usage(argv[0]);
    } else if (file.empty()) {
      file = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (file.empty()) usage(argv[0]);

  std::ifstream in(file);
  PGB_REQUIRE(in.good(), "cannot open comm matrix file: " + file);
  std::stringstream ss;
  ss << in.rdbuf();
  const JsonValue doc = json_parse(ss.str());
  PGB_REQUIRE(doc.at("schema").as_string() == "pgb.comm_matrix.v1",
              file + ": unknown schema (want pgb.comm_matrix.v1)");
  const int n = static_cast<int>(doc.at("locales").as_int());
  PGB_REQUIRE(n >= 1, file + ": bad locale count");

  const char* field = bytes ? "bytes" : "messages";
  const JsonValue* m = nullptr;
  if (path.empty()) {
    m = &doc.at(field);
  } else {
    const JsonValue* by_path = doc.find("by_path");
    PGB_REQUIRE(by_path != nullptr, file + ": no by_path section");
    const JsonValue* p = by_path->find(path);
    PGB_REQUIRE(p != nullptr,
                "path '" + path + "' absent (quiet paths are omitted); "
                "present paths are listed in by_path");
    m = &p->at(field);
  }

  std::vector<std::int64_t> cells(static_cast<std::size_t>(n) *
                                  static_cast<std::size_t>(n));
  std::vector<std::int64_t> row(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> col(static_cast<std::size_t>(n), 0);
  std::int64_t max_cell = 0, total = 0;
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const std::int64_t v = m->at(static_cast<std::size_t>(r))
                                 .at(static_cast<std::size_t>(c))
                                 .as_int();
      cells[static_cast<std::size_t>(r * n + c)] = v;
      row[static_cast<std::size_t>(r)] += v;
      col[static_cast<std::size_t>(c)] += v;
      max_cell = std::max(max_cell, v);
      total += v;
    }
  }

  std::printf("%s: %d locales, %s%s, total %lld, max cell %lld\n",
              file.c_str(), n, field,
              path.empty() ? "" : (" path=" + path).c_str(),
              static_cast<long long>(total),
              static_cast<long long>(max_cell));
  std::printf("scale: ' .:-=+*#%%@' log-scaled to the max cell; "
              "rows = src locale, cols = dst\n\n");
  for (int r = 0; r < n; ++r) {
    std::printf("%4d |", r);
    for (int c = 0; c < n; ++c) {
      std::putchar(shade(cells[static_cast<std::size_t>(r * n + c)],
                         max_cell));
    }
    std::printf("| %lld\n", static_cast<long long>(
                                row[static_cast<std::size_t>(r)]));
  }
  std::printf("      ");
  std::int64_t max_col = 0;
  for (int c = 0; c < n; ++c) {
    max_col = std::max(max_col, col[static_cast<std::size_t>(c)]);
  }
  for (int c = 0; c < n; ++c) {
    std::putchar(shade(col[static_cast<std::size_t>(c)], max_col));
  }
  std::printf("  (col marginals, rescaled)\n");

  const double mean_row = static_cast<double>(total) / n;
  const std::int64_t max_row =
      *std::max_element(row.begin(), row.end());
  std::printf("\nrow marginals: max %lld, mean %.1f",
              static_cast<long long>(max_row), mean_row);
  if (mean_row > 0.0) {
    std::printf(", imbalance ratio %.2f",
                static_cast<double>(max_row) / mean_row);
  }
  std::printf("\n");
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pgb_matrix: error: %s\n", e.what());
    return 2;
  }
}
