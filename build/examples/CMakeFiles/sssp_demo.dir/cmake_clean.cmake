file(REMOVE_RECURSE
  "CMakeFiles/sssp_demo.dir/sssp_demo.cpp.o"
  "CMakeFiles/sssp_demo.dir/sssp_demo.cpp.o.d"
  "sssp_demo"
  "sssp_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
