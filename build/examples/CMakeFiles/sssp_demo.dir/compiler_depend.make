# Empty compiler generated dependencies file for sssp_demo.
# This may be replaced when dependencies are built.
