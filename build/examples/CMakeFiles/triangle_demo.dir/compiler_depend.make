# Empty compiler generated dependencies file for triangle_demo.
# This may be replaced when dependencies are built.
