file(REMOVE_RECURSE
  "CMakeFiles/triangle_demo.dir/triangle_demo.cpp.o"
  "CMakeFiles/triangle_demo.dir/triangle_demo.cpp.o.d"
  "triangle_demo"
  "triangle_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triangle_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
