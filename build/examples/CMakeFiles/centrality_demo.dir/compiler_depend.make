# Empty compiler generated dependencies file for centrality_demo.
# This may be replaced when dependencies are built.
