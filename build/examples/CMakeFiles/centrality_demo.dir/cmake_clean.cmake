file(REMOVE_RECURSE
  "CMakeFiles/centrality_demo.dir/centrality_demo.cpp.o"
  "CMakeFiles/centrality_demo.dir/centrality_demo.cpp.o.d"
  "centrality_demo"
  "centrality_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centrality_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
