# Empty dependencies file for c_api_bfs.
# This may be replaced when dependencies are built.
