file(REMOVE_RECURSE
  "CMakeFiles/c_api_bfs.dir/c_api_bfs.c.o"
  "CMakeFiles/c_api_bfs.dir/c_api_bfs.c.o.d"
  "c_api_bfs"
  "c_api_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang C)
  include(CMakeFiles/c_api_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
