file(REMOVE_RECURSE
  "CMakeFiles/pagerank_demo.dir/pagerank_demo.cpp.o"
  "CMakeFiles/pagerank_demo.dir/pagerank_demo.cpp.o.d"
  "pagerank_demo"
  "pagerank_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
