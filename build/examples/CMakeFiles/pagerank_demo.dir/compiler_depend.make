# Empty compiler generated dependencies file for pagerank_demo.
# This may be replaced when dependencies are built.
