# Empty dependencies file for connected_components_demo.
# This may be replaced when dependencies are built.
