file(REMOVE_RECURSE
  "CMakeFiles/connected_components_demo.dir/connected_components_demo.cpp.o"
  "CMakeFiles/connected_components_demo.dir/connected_components_demo.cpp.o.d"
  "connected_components_demo"
  "connected_components_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connected_components_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
