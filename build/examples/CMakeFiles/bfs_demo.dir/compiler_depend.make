# Empty compiler generated dependencies file for bfs_demo.
# This may be replaced when dependencies are built.
