file(REMOVE_RECURSE
  "CMakeFiles/pgb_io.dir/matrix_market.cpp.o"
  "CMakeFiles/pgb_io.dir/matrix_market.cpp.o.d"
  "libpgb_io.a"
  "libpgb_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgb_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
