file(REMOVE_RECURSE
  "libpgb_io.a"
)
