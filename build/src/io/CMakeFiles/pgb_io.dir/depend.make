# Empty dependencies file for pgb_io.
# This may be replaced when dependencies are built.
