file(REMOVE_RECURSE
  "CMakeFiles/pgb_runtime.dir/collectives.cpp.o"
  "CMakeFiles/pgb_runtime.dir/collectives.cpp.o.d"
  "CMakeFiles/pgb_runtime.dir/locale_grid.cpp.o"
  "CMakeFiles/pgb_runtime.dir/locale_grid.cpp.o.d"
  "libpgb_runtime.a"
  "libpgb_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgb_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
