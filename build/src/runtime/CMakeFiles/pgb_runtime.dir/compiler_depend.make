# Empty compiler generated dependencies file for pgb_runtime.
# This may be replaced when dependencies are built.
