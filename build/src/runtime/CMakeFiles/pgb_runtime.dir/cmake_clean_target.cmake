file(REMOVE_RECURSE
  "libpgb_runtime.a"
)
