file(REMOVE_RECURSE
  "CMakeFiles/pgb_gen.dir/erdos_renyi.cpp.o"
  "CMakeFiles/pgb_gen.dir/erdos_renyi.cpp.o.d"
  "CMakeFiles/pgb_gen.dir/random_vec.cpp.o"
  "CMakeFiles/pgb_gen.dir/random_vec.cpp.o.d"
  "CMakeFiles/pgb_gen.dir/rmat.cpp.o"
  "CMakeFiles/pgb_gen.dir/rmat.cpp.o.d"
  "libpgb_gen.a"
  "libpgb_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgb_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
