# Empty compiler generated dependencies file for pgb_gen.
# This may be replaced when dependencies are built.
