file(REMOVE_RECURSE
  "libpgb_gen.a"
)
