file(REMOVE_RECURSE
  "libpgb_core.a"
)
