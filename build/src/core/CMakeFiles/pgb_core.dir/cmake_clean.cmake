file(REMOVE_RECURSE
  "CMakeFiles/pgb_core.dir/kernel_costs.cpp.o"
  "CMakeFiles/pgb_core.dir/kernel_costs.cpp.o.d"
  "libpgb_core.a"
  "libpgb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
