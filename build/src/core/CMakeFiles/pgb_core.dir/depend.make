# Empty dependencies file for pgb_core.
# This may be replaced when dependencies are built.
