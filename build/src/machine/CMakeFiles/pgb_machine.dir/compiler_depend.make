# Empty compiler generated dependencies file for pgb_machine.
# This may be replaced when dependencies are built.
