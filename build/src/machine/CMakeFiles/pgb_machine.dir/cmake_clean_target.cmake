file(REMOVE_RECURSE
  "libpgb_machine.a"
)
