file(REMOVE_RECURSE
  "CMakeFiles/pgb_machine.dir/machine_model.cpp.o"
  "CMakeFiles/pgb_machine.dir/machine_model.cpp.o.d"
  "CMakeFiles/pgb_machine.dir/network_model.cpp.o"
  "CMakeFiles/pgb_machine.dir/network_model.cpp.o.d"
  "CMakeFiles/pgb_machine.dir/parallel_model.cpp.o"
  "CMakeFiles/pgb_machine.dir/parallel_model.cpp.o.d"
  "libpgb_machine.a"
  "libpgb_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgb_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
