file(REMOVE_RECURSE
  "CMakeFiles/pgb_util.dir/cli.cpp.o"
  "CMakeFiles/pgb_util.dir/cli.cpp.o.d"
  "CMakeFiles/pgb_util.dir/error.cpp.o"
  "CMakeFiles/pgb_util.dir/error.cpp.o.d"
  "CMakeFiles/pgb_util.dir/prefix_sum.cpp.o"
  "CMakeFiles/pgb_util.dir/prefix_sum.cpp.o.d"
  "CMakeFiles/pgb_util.dir/sorting.cpp.o"
  "CMakeFiles/pgb_util.dir/sorting.cpp.o.d"
  "CMakeFiles/pgb_util.dir/table.cpp.o"
  "CMakeFiles/pgb_util.dir/table.cpp.o.d"
  "libpgb_util.a"
  "libpgb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
