# Empty compiler generated dependencies file for pgb_util.
# This may be replaced when dependencies are built.
