file(REMOVE_RECURSE
  "libpgb_util.a"
)
