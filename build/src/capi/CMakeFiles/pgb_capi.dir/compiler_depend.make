# Empty compiler generated dependencies file for pgb_capi.
# This may be replaced when dependencies are built.
