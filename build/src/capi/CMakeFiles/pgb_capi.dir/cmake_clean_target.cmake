file(REMOVE_RECURSE
  "libpgb_capi.a"
)
