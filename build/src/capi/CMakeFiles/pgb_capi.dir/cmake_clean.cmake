file(REMOVE_RECURSE
  "CMakeFiles/pgb_capi.dir/pgb_graphblas.cpp.o"
  "CMakeFiles/pgb_capi.dir/pgb_graphblas.cpp.o.d"
  "libpgb_capi.a"
  "libpgb_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgb_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
