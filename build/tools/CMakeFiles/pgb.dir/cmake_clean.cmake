file(REMOVE_RECURSE
  "CMakeFiles/pgb.dir/pgb.cpp.o"
  "CMakeFiles/pgb.dir/pgb.cpp.o.d"
  "pgb"
  "pgb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
