# Empty dependencies file for pgb.
# This may be replaced when dependencies are built.
