file(REMOVE_RECURSE
  "CMakeFiles/test_bfs_hybrid.dir/test_bfs_hybrid.cpp.o"
  "CMakeFiles/test_bfs_hybrid.dir/test_bfs_hybrid.cpp.o.d"
  "test_bfs_hybrid"
  "test_bfs_hybrid.pdb"
  "test_bfs_hybrid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bfs_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
