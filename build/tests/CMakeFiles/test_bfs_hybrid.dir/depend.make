# Empty dependencies file for test_bfs_hybrid.
# This may be replaced when dependencies are built.
