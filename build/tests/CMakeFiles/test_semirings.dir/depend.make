# Empty dependencies file for test_semirings.
# This may be replaced when dependencies are built.
