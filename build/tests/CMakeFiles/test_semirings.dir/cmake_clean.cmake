file(REMOVE_RECURSE
  "CMakeFiles/test_semirings.dir/test_semirings.cpp.o"
  "CMakeFiles/test_semirings.dir/test_semirings.cpp.o.d"
  "test_semirings"
  "test_semirings.pdb"
  "test_semirings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semirings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
