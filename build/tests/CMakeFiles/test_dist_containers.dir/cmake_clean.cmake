file(REMOVE_RECURSE
  "CMakeFiles/test_dist_containers.dir/test_dist_containers.cpp.o"
  "CMakeFiles/test_dist_containers.dir/test_dist_containers.cpp.o.d"
  "test_dist_containers"
  "test_dist_containers.pdb"
  "test_dist_containers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_containers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
