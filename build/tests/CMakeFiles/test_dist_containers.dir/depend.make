# Empty dependencies file for test_dist_containers.
# This may be replaced when dependencies are built.
