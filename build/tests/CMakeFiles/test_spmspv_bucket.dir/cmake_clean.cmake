file(REMOVE_RECURSE
  "CMakeFiles/test_spmspv_bucket.dir/test_spmspv_bucket.cpp.o"
  "CMakeFiles/test_spmspv_bucket.dir/test_spmspv_bucket.cpp.o.d"
  "test_spmspv_bucket"
  "test_spmspv_bucket.pdb"
  "test_spmspv_bucket[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spmspv_bucket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
