# Empty compiler generated dependencies file for test_spmspv_bucket.
# This may be replaced when dependencies are built.
