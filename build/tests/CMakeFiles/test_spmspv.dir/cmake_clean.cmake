file(REMOVE_RECURSE
  "CMakeFiles/test_spmspv.dir/test_spmspv.cpp.o"
  "CMakeFiles/test_spmspv.dir/test_spmspv.cpp.o.d"
  "test_spmspv"
  "test_spmspv.pdb"
  "test_spmspv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spmspv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
