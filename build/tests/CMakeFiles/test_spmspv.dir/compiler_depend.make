# Empty compiler generated dependencies file for test_spmspv.
# This may be replaced when dependencies are built.
