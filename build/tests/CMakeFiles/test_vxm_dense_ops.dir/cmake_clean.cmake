file(REMOVE_RECURSE
  "CMakeFiles/test_vxm_dense_ops.dir/test_vxm_dense_ops.cpp.o"
  "CMakeFiles/test_vxm_dense_ops.dir/test_vxm_dense_ops.cpp.o.d"
  "test_vxm_dense_ops"
  "test_vxm_dense_ops.pdb"
  "test_vxm_dense_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vxm_dense_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
