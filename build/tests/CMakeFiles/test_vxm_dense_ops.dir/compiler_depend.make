# Empty compiler generated dependencies file for test_vxm_dense_ops.
# This may be replaced when dependencies are built.
