file(REMOVE_RECURSE
  "CMakeFiles/test_mxv_direct.dir/test_mxv_direct.cpp.o"
  "CMakeFiles/test_mxv_direct.dir/test_mxv_direct.cpp.o.d"
  "test_mxv_direct"
  "test_mxv_direct.pdb"
  "test_mxv_direct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mxv_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
