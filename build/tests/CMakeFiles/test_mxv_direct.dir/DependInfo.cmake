
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mxv_direct.cpp" "tests/CMakeFiles/test_mxv_direct.dir/test_mxv_direct.cpp.o" "gcc" "tests/CMakeFiles/test_mxv_direct.dir/test_mxv_direct.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pgb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/pgb_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pgb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pgb_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
