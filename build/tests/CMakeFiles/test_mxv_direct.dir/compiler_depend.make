# Empty compiler generated dependencies file for test_mxv_direct.
# This may be replaced when dependencies are built.
