# Empty compiler generated dependencies file for test_assign_general.
# This may be replaced when dependencies are built.
