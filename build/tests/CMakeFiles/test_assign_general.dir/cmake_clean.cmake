file(REMOVE_RECURSE
  "CMakeFiles/test_assign_general.dir/test_assign_general.cpp.o"
  "CMakeFiles/test_assign_general.dir/test_assign_general.cpp.o.d"
  "test_assign_general"
  "test_assign_general.pdb"
  "test_assign_general[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assign_general.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
