file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_ewise.dir/test_matrix_ewise.cpp.o"
  "CMakeFiles/test_matrix_ewise.dir/test_matrix_ewise.cpp.o.d"
  "test_matrix_ewise"
  "test_matrix_ewise.pdb"
  "test_matrix_ewise[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_ewise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
