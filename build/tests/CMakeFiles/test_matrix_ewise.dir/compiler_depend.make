# Empty compiler generated dependencies file for test_matrix_ewise.
# This may be replaced when dependencies are built.
