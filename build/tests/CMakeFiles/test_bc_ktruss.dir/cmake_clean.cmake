file(REMOVE_RECURSE
  "CMakeFiles/test_bc_ktruss.dir/test_bc_ktruss.cpp.o"
  "CMakeFiles/test_bc_ktruss.dir/test_bc_ktruss.cpp.o.d"
  "test_bc_ktruss"
  "test_bc_ktruss.pdb"
  "test_bc_ktruss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bc_ktruss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
