# Empty dependencies file for test_bc_ktruss.
# This may be replaced when dependencies are built.
