# Empty dependencies file for test_sssp_mis.
# This may be replaced when dependencies are built.
