file(REMOVE_RECURSE
  "CMakeFiles/test_sssp_mis.dir/test_sssp_mis.cpp.o"
  "CMakeFiles/test_sssp_mis.dir/test_sssp_mis.cpp.o.d"
  "test_sssp_mis"
  "test_sssp_mis.pdb"
  "test_sssp_mis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sssp_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
