# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_dist_containers[1]_include.cmake")
include("/root/repo/build/tests/test_gen[1]_include.cmake")
include("/root/repo/build/tests/test_apply[1]_include.cmake")
include("/root/repo/build/tests/test_assign[1]_include.cmake")
include("/root/repo/build/tests/test_ewise[1]_include.cmake")
include("/root/repo/build/tests/test_spmspv[1]_include.cmake")
include("/root/repo/build/tests/test_matrix_ops[1]_include.cmake")
include("/root/repo/build/tests/test_algos[1]_include.cmake")
include("/root/repo/build/tests/test_model_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_matrix_ewise[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_sssp_mis[1]_include.cmake")
include("/root/repo/build/tests/test_bfs_hybrid[1]_include.cmake")
include("/root/repo/build/tests/test_semirings[1]_include.cmake")
include("/root/repo/build/tests/test_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_spmspv_bucket[1]_include.cmake")
include("/root/repo/build/tests/test_vxm_dense_ops[1]_include.cmake")
include("/root/repo/build/tests/test_assign_general[1]_include.cmake")
include("/root/repo/build/tests/test_permute[1]_include.cmake")
include("/root/repo/build/tests/test_csc[1]_include.cmake")
include("/root/repo/build/tests/test_capi[1]_include.cmake")
include("/root/repo/build/tests/test_bc_ktruss[1]_include.cmake")
include("/root/repo/build/tests/test_mxv_direct[1]_include.cmake")
include("/root/repo/build/tests/test_matching[1]_include.cmake")
