file(REMOVE_RECURSE
  "../bench/fig08_spmspv_dist_n1m"
  "../bench/fig08_spmspv_dist_n1m.pdb"
  "CMakeFiles/fig08_spmspv_dist_n1m.dir/fig08_spmspv_dist_n1m.cpp.o"
  "CMakeFiles/fig08_spmspv_dist_n1m.dir/fig08_spmspv_dist_n1m.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_spmspv_dist_n1m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
