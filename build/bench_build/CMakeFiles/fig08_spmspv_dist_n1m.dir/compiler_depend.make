# Empty compiler generated dependencies file for fig08_spmspv_dist_n1m.
# This may be replaced when dependencies are built.
