# Empty compiler generated dependencies file for fig09_spmspv_dist_n10m.
# This may be replaced when dependencies are built.
