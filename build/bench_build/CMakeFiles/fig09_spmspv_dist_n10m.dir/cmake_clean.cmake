file(REMOVE_RECURSE
  "../bench/fig09_spmspv_dist_n10m"
  "../bench/fig09_spmspv_dist_n10m.pdb"
  "CMakeFiles/fig09_spmspv_dist_n10m.dir/fig09_spmspv_dist_n10m.cpp.o"
  "CMakeFiles/fig09_spmspv_dist_n10m.dir/fig09_spmspv_dist_n10m.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_spmspv_dist_n10m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
