file(REMOVE_RECURSE
  "../bench/abl_ewisemult_scan"
  "../bench/abl_ewisemult_scan.pdb"
  "CMakeFiles/abl_ewisemult_scan.dir/abl_ewisemult_scan.cpp.o"
  "CMakeFiles/abl_ewisemult_scan.dir/abl_ewisemult_scan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ewisemult_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
