# Empty dependencies file for abl_ewisemult_scan.
# This may be replaced when dependencies are built.
