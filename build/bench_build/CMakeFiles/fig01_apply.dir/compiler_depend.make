# Empty compiler generated dependencies file for fig01_apply.
# This may be replaced when dependencies are built.
