file(REMOVE_RECURSE
  "../bench/fig01_apply"
  "../bench/fig01_apply.pdb"
  "CMakeFiles/fig01_apply.dir/fig01_apply.cpp.o"
  "CMakeFiles/fig01_apply.dir/fig01_apply.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
