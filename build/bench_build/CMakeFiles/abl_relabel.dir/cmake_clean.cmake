file(REMOVE_RECURSE
  "../bench/abl_relabel"
  "../bench/abl_relabel.pdb"
  "CMakeFiles/abl_relabel.dir/abl_relabel.cpp.o"
  "CMakeFiles/abl_relabel.dir/abl_relabel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_relabel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
