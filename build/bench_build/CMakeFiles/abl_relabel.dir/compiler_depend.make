# Empty compiler generated dependencies file for abl_relabel.
# This may be replaced when dependencies are built.
