# Empty dependencies file for fig07_spmspv_shm.
# This may be replaced when dependencies are built.
