file(REMOVE_RECURSE
  "../bench/fig07_spmspv_shm"
  "../bench/fig07_spmspv_shm.pdb"
  "CMakeFiles/fig07_spmspv_shm.dir/fig07_spmspv_shm.cpp.o"
  "CMakeFiles/fig07_spmspv_shm.dir/fig07_spmspv_shm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_spmspv_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
