file(REMOVE_RECURSE
  "../bench/abl_async_paths"
  "../bench/abl_async_paths.pdb"
  "CMakeFiles/abl_async_paths.dir/abl_async_paths.cpp.o"
  "CMakeFiles/abl_async_paths.dir/abl_async_paths.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_async_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
