# Empty compiler generated dependencies file for abl_async_paths.
# This may be replaced when dependencies are built.
