file(REMOVE_RECURSE
  "../bench/sweep_density"
  "../bench/sweep_density.pdb"
  "CMakeFiles/sweep_density.dir/sweep_density.cpp.o"
  "CMakeFiles/sweep_density.dir/sweep_density.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
