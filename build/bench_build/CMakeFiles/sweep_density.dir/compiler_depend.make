# Empty compiler generated dependencies file for sweep_density.
# This may be replaced when dependencies are built.
