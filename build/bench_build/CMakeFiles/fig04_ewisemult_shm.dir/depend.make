# Empty dependencies file for fig04_ewisemult_shm.
# This may be replaced when dependencies are built.
