file(REMOVE_RECURSE
  "../bench/fig04_ewisemult_shm"
  "../bench/fig04_ewisemult_shm.pdb"
  "CMakeFiles/fig04_ewisemult_shm.dir/fig04_ewisemult_shm.cpp.o"
  "CMakeFiles/fig04_ewisemult_shm.dir/fig04_ewisemult_shm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_ewisemult_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
