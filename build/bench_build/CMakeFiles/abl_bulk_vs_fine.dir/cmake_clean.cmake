file(REMOVE_RECURSE
  "../bench/abl_bulk_vs_fine"
  "../bench/abl_bulk_vs_fine.pdb"
  "CMakeFiles/abl_bulk_vs_fine.dir/abl_bulk_vs_fine.cpp.o"
  "CMakeFiles/abl_bulk_vs_fine.dir/abl_bulk_vs_fine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bulk_vs_fine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
