# Empty compiler generated dependencies file for abl_bulk_vs_fine.
# This may be replaced when dependencies are built.
