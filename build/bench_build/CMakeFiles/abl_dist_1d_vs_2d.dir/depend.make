# Empty dependencies file for abl_dist_1d_vs_2d.
# This may be replaced when dependencies are built.
