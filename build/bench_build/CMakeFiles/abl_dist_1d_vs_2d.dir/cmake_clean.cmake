file(REMOVE_RECURSE
  "../bench/abl_dist_1d_vs_2d"
  "../bench/abl_dist_1d_vs_2d.pdb"
  "CMakeFiles/abl_dist_1d_vs_2d.dir/abl_dist_1d_vs_2d.cpp.o"
  "CMakeFiles/abl_dist_1d_vs_2d.dir/abl_dist_1d_vs_2d.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dist_1d_vs_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
