# Empty dependencies file for fig05_ewisemult_dist.
# This may be replaced when dependencies are built.
