file(REMOVE_RECURSE
  "../bench/fig05_ewisemult_dist"
  "../bench/fig05_ewisemult_dist.pdb"
  "CMakeFiles/fig05_ewisemult_dist.dir/fig05_ewisemult_dist.cpp.o"
  "CMakeFiles/fig05_ewisemult_dist.dir/fig05_ewisemult_dist.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ewisemult_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
