# Empty dependencies file for fig10_multilocale_assign.
# This may be replaced when dependencies are built.
