file(REMOVE_RECURSE
  "../bench/fig10_multilocale_assign"
  "../bench/fig10_multilocale_assign.pdb"
  "CMakeFiles/fig10_multilocale_assign.dir/fig10_multilocale_assign.cpp.o"
  "CMakeFiles/fig10_multilocale_assign.dir/fig10_multilocale_assign.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_multilocale_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
