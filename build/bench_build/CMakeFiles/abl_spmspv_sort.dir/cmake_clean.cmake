file(REMOVE_RECURSE
  "../bench/abl_spmspv_sort"
  "../bench/abl_spmspv_sort.pdb"
  "CMakeFiles/abl_spmspv_sort.dir/abl_spmspv_sort.cpp.o"
  "CMakeFiles/abl_spmspv_sort.dir/abl_spmspv_sort.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_spmspv_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
