# Empty dependencies file for abl_spmspv_sort.
# This may be replaced when dependencies are built.
