# Empty compiler generated dependencies file for fig02_assign.
# This may be replaced when dependencies are built.
