file(REMOVE_RECURSE
  "../bench/fig02_assign"
  "../bench/fig02_assign.pdb"
  "CMakeFiles/fig02_assign.dir/fig02_assign.cpp.o"
  "CMakeFiles/fig02_assign.dir/fig02_assign.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
