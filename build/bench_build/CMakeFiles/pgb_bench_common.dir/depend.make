# Empty dependencies file for pgb_bench_common.
# This may be replaced when dependencies are built.
