file(REMOVE_RECURSE
  "CMakeFiles/pgb_bench_common.dir/spmspv_dist_fig.cpp.o"
  "CMakeFiles/pgb_bench_common.dir/spmspv_dist_fig.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgb_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
