file(REMOVE_RECURSE
  "../bench/abl_collectives"
  "../bench/abl_collectives.pdb"
  "CMakeFiles/abl_collectives.dir/abl_collectives.cpp.o"
  "CMakeFiles/abl_collectives.dir/abl_collectives.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
