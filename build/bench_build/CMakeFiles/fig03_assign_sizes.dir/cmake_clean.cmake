file(REMOVE_RECURSE
  "../bench/fig03_assign_sizes"
  "../bench/fig03_assign_sizes.pdb"
  "CMakeFiles/fig03_assign_sizes.dir/fig03_assign_sizes.cpp.o"
  "CMakeFiles/fig03_assign_sizes.dir/fig03_assign_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_assign_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
