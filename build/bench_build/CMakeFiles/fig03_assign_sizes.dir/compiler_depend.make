# Empty compiler generated dependencies file for fig03_assign_sizes.
# This may be replaced when dependencies are built.
