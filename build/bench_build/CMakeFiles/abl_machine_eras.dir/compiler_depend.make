# Empty compiler generated dependencies file for abl_machine_eras.
# This may be replaced when dependencies are built.
