file(REMOVE_RECURSE
  "../bench/abl_machine_eras"
  "../bench/abl_machine_eras.pdb"
  "CMakeFiles/abl_machine_eras.dir/abl_machine_eras.cpp.o"
  "CMakeFiles/abl_machine_eras.dir/abl_machine_eras.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_machine_eras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
