// Per-locale simulated clocks and the phase trace that the figure
// benchmarks read (e.g. SpMSpV's SPA / Sort / Output breakdown in Fig 7).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace pgb {

/// A locale's simulated time line. Monotonic.
class SimClock {
 public:
  double now() const { return t_; }

  void advance(double dt) {
    PGB_ASSERT(dt >= 0.0, "clock can only move forward");
    t_ += dt;
  }

  /// Jump forward to an absolute time (used by barriers).
  void advance_to(double t) {
    if (t > t_) t_ = t;
  }

  void reset() { t_ = 0.0; }

 private:
  double t_ = 0.0;
};

/// Named phase timings accumulated by operations. Benches snapshot the
/// grid time around phases; ops record the deltas here so harnesses can
/// print per-component series exactly like the paper's stacked figures.
class Trace {
 public:
  void add(const std::string& phase, double seconds) {
    auto [it, inserted] = phases_.try_emplace(phase, 0.0);
    if (inserted) order_.push_back(phase);
    it->second += seconds;
  }

  double get(const std::string& phase) const {
    auto it = phases_.find(phase);
    return it == phases_.end() ? 0.0 : it->second;
  }

  const std::vector<std::string>& phases() const { return order_; }

  void clear() {
    phases_.clear();
    order_.clear();
  }

 private:
  std::map<std::string, double> phases_;
  std::vector<std::string> order_;
};

}  // namespace pgb
