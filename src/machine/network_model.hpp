// The network half of the simulator: an alpha-beta (latency-bandwidth)
// model of the Aries interconnect plus the software costs of Chapel/GASNet
// fine-grained remote access, which the paper identifies as the dominant
// distributed-memory bottleneck.
#pragma once

#include <cstdint>

#include "machine/machine_model.hpp"

namespace pgb {

class NetworkModel {
 public:
  explicit NetworkModel(const NetParams& p) : p_(p) {}

  const NetParams& params() const { return p_; }

  /// One-way message carrying `bytes` between two locales.
  /// `intra_node` selects the shared-memory path (co-located locales);
  /// `colocated` scales software latency by AM-handler contention.
  double message(std::int64_t bytes, bool intra_node, int colocated) const;

  /// A blocking round trip (request + reply carrying `bytes` back).
  double round_trip(std::int64_t bytes, bool intra_node, int colocated) const;

  /// `count` *independent* small messages issued by one locale, overlapped
  /// up to max_outstanding (e.g. the distributed SpMSpV scatter of Listing
  /// 8, one element at a time).
  double overlapped_messages(std::int64_t count, std::int64_t bytes_each,
                             bool intra_node, int colocated) const;

  /// `count` *dependent* element accesses, each costing `rts_per_elem`
  /// serialized round trips (e.g. a remote binary search into a sorted
  /// sparse domain: ~log2(nnz) dependent probes). This is the mechanism
  /// behind Apply1/Assign1's distributed-memory collapse.
  double dependent_chain(std::int64_t count, double rts_per_elem,
                         std::int64_t bytes_each, bool intra_node,
                         int colocated) const;

  /// Bulk transfer of `bytes` (one large put/get).
  double bulk(std::int64_t bytes, bool intra_node, int colocated) const;

  /// Spawning a task on a remote locale (coforall ... on). The initiator
  /// pays this per target, serialized (Chapel 1.14's on-statement spawn).
  double fork(bool intra_node, int colocated) const;

  /// Barrier across `locales` participants.
  double barrier(int locales) const;

 private:
  double alpha(bool intra_node, int colocated) const;
  double beta(bool intra_node) const;

  NetParams p_;
};

}  // namespace pgb
