// Parameters of the simulated machine.
//
// The preset MachineModel::edison() models one Cray XC30 node (2x12-core
// 2.4 GHz Ivy Bridge, ~90 GB/s stream bandwidth) and the Aries/Dragonfly
// network, with software overheads calibrated to the magnitudes reported
// in the paper (Chapel 1.14 + GASNet aries + qthreads). Constants are
// deliberately exposed as plain fields: tests assert *relations* between
// them (e.g. remote fork >> local task spawn) and ablation benches vary
// them (e.g. abl_bulk_vs_fine).
#pragma once

namespace pgb {

/// Node-local execution parameters.
struct NodeParams {
  int cores = 24;                  ///< physical cores per node
  double ops_per_sec = 2.4e9;      ///< scalar op issue rate per core
  double bw_core = 5.0e9;          ///< bytes/s streaming, single core
  double bw_node = 90.0e9;         ///< bytes/s streaming, node aggregate
  double mem_latency = 90e-9;      ///< seconds per uncached access
  double mlp_core = 10.0;          ///< outstanding misses one core sustains
  double mlp_node = 80.0;          ///< node-wide effective miss concurrency
  double dep_chain_cap = 8.0;      ///< concurrent dependent-miss chains the
                                   ///< memory system sustains (paper: Assign1
                                   ///< speeds up only 5-8x on 24 cores)
  double atomic_contended = 7e-9;  ///< seconds per same-line RMW (serial)
  double atomic_distinct = 30e-9;  ///< extra seconds per distinct-line RMW
  double tau_task = 20e-6;         ///< seconds to spawn+join one qthread task
  double oversubscribe_gain = 0.1; ///< marginal value of threads > cores
};

/// Network / PGAS-communication parameters.
struct NetParams {
  double alpha = 1.5e-6;        ///< one-way small-message latency (software incl.)
  double beta = 1.0 / 8.0e9;    ///< seconds per byte, inter-node
  double alpha_intra = 0.8e-6;  ///< one-way latency between co-located locales
  double beta_intra = 1.0 / 30.0e9;  ///< seconds per byte, intra-node
  double tau_fork = 25e-6;      ///< spawning a task on a remote locale
  double barrier_hop = 4e-6;    ///< per-log2(L) cost of a barrier
  double fine_grain_overhead = 1.5e-6;  ///< extra per-element software cost of
                                        ///< element-wise remote array access
                                        ///< (wide-pointer deref, AM handler)
  int max_outstanding = 16;     ///< overlap window for independent messages
  /// AM-handler contention: effective latency multiplier grows by this
  /// fraction per additional locale co-located on the same node. High:
  /// co-located locales are separate processes whose progress threads
  /// fight for the same cores (the paper's Fig 10 observes an order of
  /// magnitude degradation at 32 locales/node).
  double colocation_penalty = 0.30;
};

struct MachineModel {
  NodeParams node;
  NetParams net;

  /// The paper's experimental platform (Edison, NERSC).
  static MachineModel edison();

  /// A 2020s HPC node/network (EPYC-class cores, Slingshot-class
  /// interconnect, a leaner tasking runtime). Used by the era ablation
  /// to ask which of the paper's bottlenecks are artifacts of 2017
  /// hardware and which are inherent to the access patterns.
  static MachineModel modern();
};

}  // namespace pgb
