#include "machine/parallel_model.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pgb {

double effective_threads(const NodeParams& node, int threads, int colocated) {
  PGB_REQUIRE(threads >= 1, "threads must be >= 1");
  PGB_REQUIRE(colocated >= 1, "colocated must be >= 1");
  const double cores_avail =
      std::max(1.0, static_cast<double>(node.cores) / colocated);
  const double t = static_cast<double>(threads);
  if (t <= cores_avail) return t;
  return cores_avail + node.oversubscribe_gain * (t - cores_avail);
}

double region_time(const NodeParams& node, const CostVector& cost,
                   int threads, int colocated) {
  const double pe = effective_threads(node, threads, colocated);

  const double t_cpu =
      cost.get(CostKind::kCpuOps) / (node.ops_per_sec * pe);

  const double bw = std::min(pe * node.bw_core,
                             node.bw_node / static_cast<double>(colocated));
  const double t_stream = cost.get(CostKind::kStreamBytes) / bw;

  const double miss_concurrency = std::min(
      pe * node.mlp_core, node.mlp_node / static_cast<double>(colocated));
  const double t_rand = cost.get(CostKind::kRandAccess) * node.mem_latency /
                        std::max(1.0, miss_concurrency);

  const double chain_concurrency =
      std::min(pe, node.dep_chain_cap / static_cast<double>(colocated));
  const double t_dep = cost.get(CostKind::kDependentAccess) *
                       node.mem_latency / std::max(1.0, chain_concurrency);

  const double t_atomic_c =
      cost.get(CostKind::kAtomicContended) * node.atomic_contended;

  // Distinct-line RMWs overlap like misses but at half the concurrency
  // (the RMW holds the line longer).
  const double t_atomic_d =
      cost.get(CostKind::kAtomicDistinct) *
      (node.mem_latency + node.atomic_distinct) /
      std::max(1.0, 0.5 * miss_concurrency);

  const double t_spawn = cost.get(CostKind::kTaskSpawn) * node.tau_task;

  return t_cpu + t_stream + t_rand + t_dep + t_atomic_c + t_atomic_d +
         t_spawn;
}

}  // namespace pgb
