// Converts abstract CostVectors into modeled seconds for a parallel
// region executed by `threads` tasks on a node shared by `colocated`
// locales. This is the node half of the simulator; the network half is
// network_model.hpp.
#pragma once

#include "machine/cost.hpp"
#include "machine/machine_model.hpp"

namespace pgb {

/// Modeled execution time of a region.
///
/// Terms (see CostKind docs):
///  - cpu: scales with effective threads (diminishing past physical cores);
///  - stream: bytes / min(threads * bw_core, bw_node / colocated) — the
///    node's memory bandwidth is shared among co-located locales;
///  - random access: latency-bound, overlapped up to min(threads * mlp_core,
///    mlp_node) outstanding misses — this is why the paper's Assign1 only
///    speeds up 5-8x on 24 cores;
///  - contended atomics: serialized, never scale;
///  - distinct-line atomics: random access with an RMW surcharge;
///  - task spawn: charged serially at the master (burdened parallelism).
///
/// Terms are additive: these kernels are simple enough that phases do not
/// overlap significantly.
double region_time(const NodeParams& node, const CostVector& cost,
                   int threads, int colocated = 1);

/// Effective thread count: threads beyond the physical cores available to
/// this locale contribute only marginally.
double effective_threads(const NodeParams& node, int threads, int colocated);

}  // namespace pgb
