// Abstract cost accounting for node-local work.
//
// Kernels in pgas-graphblas execute their algorithm for real (so results
// are correct and testable) and simultaneously *charge* the work they do
// to a CostVector. The parallel model (parallel_model.hpp) converts a
// CostVector plus a thread count and placement into modeled seconds on the
// target machine. Keeping charges abstract (bytes streamed, random
// accesses, ...) rather than measuring host wall-clock makes the simulated
// times deterministic and independent of the (1-core) host.
#pragma once

#include <array>
#include <cstdint>

namespace pgb {

enum class CostKind : int {
  /// Scalar ALU/branch work, scales ~linearly with threads.
  kCpuOps = 0,
  /// Bytes moved sequentially through the memory system; scales with
  /// threads until the node's memory bandwidth saturates.
  kStreamBytes,
  /// Cache-unfriendly but *independent* accesses (SPA scatter, gather of
  /// values by sorted index list); overlapped up to the node's
  /// memory-level parallelism.
  kRandAccess,
  /// *Dependent* uncached accesses: each probe must finish before the
  /// next issues (binary-search chains into sorted sparse domains — the
  /// paper's "accessing A[i] requires logarithmic time"). One chain per
  /// element; chains of different elements overlap only across threads,
  /// capped by NodeParams::dep_chain_cap.
  kDependentAccess,
  /// Read-modify-writes on a single shared cache line (e.g. the shared
  /// output counter in eWiseMult). Serialized: does not scale.
  kAtomicContended,
  /// Read-modify-writes on distinct lines (SPA isthere flags); behaves
  /// like random access with an RMW surcharge.
  kAtomicDistinct,
  /// Tasks spawned by a parallel construct; charged serially at the
  /// spawning task ("burdened parallelism", He et al. [4] in the paper).
  kTaskSpawn,
  kNumKinds,
};

inline constexpr int kNumCostKinds = static_cast<int>(CostKind::kNumKinds);

/// Accumulated abstract work of one parallel (or serial) region.
class CostVector {
 public:
  constexpr CostVector() : v_{} {}

  void add(CostKind k, double amount) { v_[static_cast<int>(k)] += amount; }
  double get(CostKind k) const { return v_[static_cast<int>(k)]; }

  CostVector& operator+=(const CostVector& o) {
    for (int i = 0; i < kNumCostKinds; ++i) v_[i] += o.v_[i];
    return *this;
  }

  /// Scaled copy (used to split a cost into parallel/serial fractions).
  CostVector scaled(double f) const {
    CostVector c;
    for (int i = 0; i < kNumCostKinds; ++i) c.v_[i] = v_[i] * f;
    return c;
  }

  bool empty() const {
    for (double x : v_) {
      if (x != 0.0) return false;
    }
    return true;
  }

 private:
  std::array<double, kNumCostKinds> v_;
};

// ---- composite charge helpers for common kernels ----

/// Cost of a bottom-up merge sort of n 8-byte keys (Chapel's mergeSort in
/// the paper's Listing 7). ~log2(n) passes, each streaming the data and
/// doing a compare/branch per element. `cmp_ops` is deliberately high
/// (Chapel iterator overhead); see machine_model.cpp for calibration.
CostVector merge_sort_cost(std::int64_t n);

/// Cost of an LSD radix sort of n 8-byte keys with values < max_value.
/// Fewer, cheaper passes than merge sort — the paper's suggested
/// improvement (citing Azad & Buluç, IPDPS 2017 [9]).
CostVector radix_sort_cost(std::int64_t n, std::int64_t max_value);

}  // namespace pgb
