#include "machine/machine_model.hpp"

#include "machine/cost.hpp"

#include <bit>
#include <cmath>

namespace pgb {

MachineModel MachineModel::edison() {
  // Defaults in the struct definitions *are* the Edison calibration:
  //  - 24 cores @ 2.4 GHz, ~90 GB/s node stream bandwidth (2-socket IvB);
  //  - qthreads task spawn ~20 us as observed through Chapel's forall
  //    (matches the flat 10K-nonzero curves in the paper's Fig 4);
  //  - GASNet-aries one-way small-message latency ~1.5 us and ~8 GB/s
  //    per-link bandwidth;
  //  - remote fork ~25 us (coforall+on), the "burdened parallelism" cost
  //    the paper blames for SPMD-vs-forall differences.
  return MachineModel{};
}

MachineModel MachineModel::modern() {
  MachineModel m;
  // Node: 64 cores @ ~2.5 GHz effective scalar rate, HBM-less DDR5
  // (~350 GB/s node stream, deeper miss concurrency), cheaper tasking.
  m.node.cores = 64;
  m.node.ops_per_sec = 3.0e9;
  m.node.bw_core = 12.0e9;
  m.node.bw_node = 350.0e9;
  m.node.mem_latency = 80e-9;
  m.node.mlp_core = 16.0;
  m.node.mlp_node = 400.0;
  m.node.dep_chain_cap = 24.0;
  m.node.atomic_contended = 5e-9;
  m.node.tau_task = 4e-6;
  // Network: Slingshot-class. Note the asymmetry vs compute: bandwidth
  // improved ~3x and latency less than 2x while per-node compute grew
  // ~8x — fine-grained communication hurts *more* relative to compute
  // than it did on Edison.
  m.net.alpha = 0.9e-6;
  m.net.beta = 1.0 / 25.0e9;
  m.net.alpha_intra = 0.4e-6;
  m.net.beta_intra = 1.0 / 80.0e9;
  m.net.tau_fork = 8e-6;
  m.net.barrier_hop = 2e-6;
  m.net.fine_grain_overhead = 0.8e-6;
  m.net.max_outstanding = 64;
  return m;
}

CostVector merge_sort_cost(std::int64_t n) {
  CostVector c;
  if (n <= 1) return c;
  const double passes = std::ceil(std::log2(static_cast<double>(n)));
  // Per pass: read + write each 8-byte key, plus compare/advance logic.
  // The 120-op per-element charge reflects Chapel 1.14's generic-iterator
  // merge sort (first-class comparator, zippered moves), which the paper
  // observes dominating SpMSpV (Fig 7); a tuned C++ sort would charge ~8.
  c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(n) * passes);
  c.add(CostKind::kCpuOps, 120.0 * static_cast<double>(n) * passes);
  return c;
}

CostVector radix_sort_cost(std::int64_t n, std::int64_t max_value) {
  CostVector c;
  if (n <= 1) return c;
  const int bits = std::max<int>(
      1, 64 - std::countl_zero(static_cast<unsigned long long>(
               max_value > 0 ? max_value : 1)));
  const double passes = std::ceil(bits / 11.0);
  // Count pass streams the keys; permute pass streams reads and does a
  // bucketed (mostly-cache-resident) scatter.
  c.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(n) * passes);
  c.add(CostKind::kCpuOps, 10.0 * static_cast<double>(n) * passes);
  c.add(CostKind::kRandAccess, 0.25 * static_cast<double>(n) * passes);
  return c;
}

}  // namespace pgb
