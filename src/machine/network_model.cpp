#include "machine/network_model.hpp"

#include <algorithm>
#include <cmath>

namespace pgb {

double NetworkModel::alpha(bool intra_node, int colocated) const {
  const double base = intra_node ? p_.alpha_intra : p_.alpha;
  // AM handlers of co-located locales contend for the same cores.
  return base * (1.0 + p_.colocation_penalty * std::max(0, colocated - 1));
}

double NetworkModel::beta(bool intra_node) const {
  return intra_node ? p_.beta_intra : p_.beta;
}

double NetworkModel::message(std::int64_t bytes, bool intra_node,
                             int colocated) const {
  return alpha(intra_node, colocated) +
         static_cast<double>(bytes) * beta(intra_node);
}

double NetworkModel::round_trip(std::int64_t bytes, bool intra_node,
                                int colocated) const {
  return 2.0 * alpha(intra_node, colocated) +
         static_cast<double>(bytes) * beta(intra_node);
}

double NetworkModel::overlapped_messages(std::int64_t count,
                                         std::int64_t bytes_each,
                                         bool intra_node,
                                         int colocated) const {
  if (count <= 0) return 0.0;
  const double per_msg =
      message(bytes_each, intra_node, colocated) + p_.fine_grain_overhead;
  const double window = static_cast<double>(std::max(1, p_.max_outstanding));
  // First message pays full latency; the rest stream through the window.
  return per_msg + (static_cast<double>(count) - 1.0) * per_msg / window;
}

double NetworkModel::dependent_chain(std::int64_t count, double rts_per_elem,
                                     std::int64_t bytes_each, bool intra_node,
                                     int colocated) const {
  if (count <= 0) return 0.0;
  const double per_elem =
      rts_per_elem * round_trip(0, intra_node, colocated) +
      message(bytes_each, intra_node, colocated) + p_.fine_grain_overhead;
  return static_cast<double>(count) * per_elem;
}

double NetworkModel::bulk(std::int64_t bytes, bool intra_node,
                          int colocated) const {
  return alpha(intra_node, colocated) +
         static_cast<double>(bytes) * beta(intra_node);
}

double NetworkModel::fork(bool intra_node, int colocated) const {
  // Remote forks ride active messages and pay the same contention.
  const double contention =
      1.0 + p_.colocation_penalty * std::max(0, colocated - 1);
  return p_.tau_fork * (intra_node ? 0.6 : 1.0) * contention;
}

double NetworkModel::barrier(int locales) const {
  if (locales <= 1) return 0.0;
  return p_.barrier_hop * std::ceil(std::log2(static_cast<double>(locales)));
}

}  // namespace pgb
