// Implementation of the C bindings. Exceptions are caught at the
// boundary and mapped to GrB_Info codes; object handles own their C++
// counterparts.
#include "capi/pgb_graphblas.h"

#include <memory>
#include <vector>

#include "core/graphblas.hpp"
#include "ingest/ingest.hpp"
#include "runtime/locale_grid.hpp"
#include "service/service.hpp"
#include "util/error.hpp"

struct pgb_matrix_opaque {
  pgb::DistCsr<double> m;
};

struct pgb_vector_opaque {
  pgb::DistSparseVec<double> v;
};

namespace {

std::unique_ptr<pgb::LocaleGrid> g_grid;
std::unique_ptr<pgb::GraphService> g_service;
std::unique_ptr<pgb::IngestStream> g_ingest;
pgb::GraphStore::HandleId g_ingest_handle = -1;

GrB_Info map_exception() {
  try {
    throw;
  } catch (const pgb::ServiceOverloaded&) {
    return GrB_OUT_OF_RESOURCES;
  } catch (const pgb::InvalidHandleError&) {
    return GrB_INVALID_OBJECT;
  } catch (const pgb::TenantThrottled&) {
    return GrB_TENANT_THROTTLED;
  } catch (const pgb::DeadlineExpired&) {
    return GrB_DEADLINE_EXPIRED;
  } catch (const pgb::DimensionMismatch&) {
    return GrB_DIMENSION_MISMATCH;
  } catch (const pgb::InvalidArgument&) {
    return GrB_INVALID_VALUE;
  } catch (const std::bad_alloc&) {
    return GrB_PANIC;
  } catch (...) {
    return GrB_PANIC;
  }
}

#define PGB_C_GUARD(body)            \
  if (g_grid == nullptr) {           \
    return GrB_UNINITIALIZED_OBJECT; \
  }                                  \
  try {                              \
    body;                            \
    return GrB_SUCCESS;              \
  } catch (...) {                    \
    return map_exception();          \
  }

pgb::MaskMode to_mask_mode(pgb_mask_t m) {
  switch (m) {
    case PGB_MASK:
      return pgb::MaskMode::kMask;
    case PGB_MASK_COMPLEMENT:
      return pgb::MaskMode::kComplement;
    default:
      return pgb::MaskMode::kNone;
  }
}

/// Applies the selected built-in binary op.
double apply_binop(pgb_binary_op_t op, double a, double b) {
  switch (op) {
    case PGB_PLUS:
      return a + b;
    case PGB_TIMES:
      return a * b;
    case PGB_MIN:
      return a < b ? a : b;
    case PGB_MAX:
      return a > b ? a : b;
    case PGB_FIRST:
      return a;
    case PGB_SECOND:
      return b;
  }
  return a;
}

bool to_query_kind(pgb_query_kind_t kind, pgb::QueryKind* out) {
  switch (kind) {
    case PGB_QUERY_BFS:
      *out = pgb::QueryKind::kBfs;
      return true;
    case PGB_QUERY_SSSP:
      *out = pgb::QueryKind::kSssp;
      return true;
    case PGB_QUERY_PAGERANK_SUBGRAPH:
      *out = pgb::QueryKind::kPagerankSubgraph;
      return true;
    case PGB_QUERY_EGO_NET:
      *out = pgb::QueryKind::kEgoNet;
      return true;
  }
  return false;
}

}  // namespace

extern "C" {

GrB_Info pgb_init(int nlocales, int threads_per_locale) {
  try {
    g_grid = std::make_unique<pgb::LocaleGrid>(
        pgb::LocaleGrid::square(nlocales, threads_per_locale));
    return GrB_SUCCESS;
  } catch (...) {
    return map_exception();
  }
}

GrB_Info pgb_finalize(void) {
  g_ingest.reset();  // the stream borrows the service's store: first out
  g_ingest_handle = -1;
  g_service.reset();  // the service borrows the grid: tear it down first
  g_grid.reset();
  return GrB_SUCCESS;
}

double pgb_elapsed_seconds(void) {
  return g_grid ? g_grid->time() : 0.0;
}

void pgb_reset_clock(void) {
  if (g_grid) g_grid->reset();
}

// ---- matrices ----

GrB_Info GrB_Matrix_new(GrB_Matrix* m, GrB_Index nrows, GrB_Index ncols) {
  if (m == nullptr) return GrB_NULL_POINTER;
  PGB_C_GUARD(*m = new pgb_matrix_opaque{
                  pgb::DistCsr<double>(*g_grid, static_cast<pgb::Index>(nrows),
                                       static_cast<pgb::Index>(ncols))});
}

GrB_Info GrB_Matrix_free(GrB_Matrix* m) {
  if (m == nullptr) return GrB_NULL_POINTER;
  delete *m;
  *m = nullptr;
  return GrB_SUCCESS;
}

GrB_Info GrB_Matrix_nrows(GrB_Index* out, GrB_Matrix m) {
  if (out == nullptr || m == nullptr) return GrB_NULL_POINTER;
  *out = static_cast<GrB_Index>(m->m.nrows());
  return GrB_SUCCESS;
}

GrB_Info GrB_Matrix_ncols(GrB_Index* out, GrB_Matrix m) {
  if (out == nullptr || m == nullptr) return GrB_NULL_POINTER;
  *out = static_cast<GrB_Index>(m->m.ncols());
  return GrB_SUCCESS;
}

GrB_Info GrB_Matrix_nvals(GrB_Index* out, GrB_Matrix m) {
  if (out == nullptr || m == nullptr) return GrB_NULL_POINTER;
  *out = static_cast<GrB_Index>(m->m.nnz());
  return GrB_SUCCESS;
}

GrB_Info GrB_Matrix_build(GrB_Matrix m, const GrB_Index* rows,
                          const GrB_Index* cols, const double* vals,
                          GrB_Index nvals) {
  if (m == nullptr || (nvals > 0 && (rows == nullptr || cols == nullptr ||
                                     vals == nullptr))) {
    return GrB_NULL_POINTER;
  }
  PGB_C_GUARD({
    pgb::Coo<double> coo(m->m.nrows(), m->m.ncols());
    coo.reserve(static_cast<std::size_t>(nvals));
    for (GrB_Index k = 0; k < nvals; ++k) {
      if (rows[k] >= static_cast<GrB_Index>(m->m.nrows()) ||
          cols[k] >= static_cast<GrB_Index>(m->m.ncols())) {
        return GrB_INDEX_OUT_OF_BOUNDS;
      }
      coo.add(static_cast<pgb::Index>(rows[k]),
              static_cast<pgb::Index>(cols[k]), vals[k]);
    }
    m->m = pgb::DistCsr<double>::from_coo(
        *g_grid, coo, [](double a, double b) { return a + b; });
  });
}

GrB_Info GrB_Matrix_extractElement(double* out, GrB_Matrix m, GrB_Index r,
                                   GrB_Index c) {
  if (out == nullptr || m == nullptr) return GrB_NULL_POINTER;
  if (r >= static_cast<GrB_Index>(m->m.nrows()) ||
      c >= static_cast<GrB_Index>(m->m.ncols())) {
    return GrB_INDEX_OUT_OF_BOUNDS;
  }
  const int l = m->m.dist().locale_of(static_cast<pgb::Index>(r),
                                      static_cast<pgb::Index>(c));
  const auto& blk = m->m.block(l);
  const double* v = blk.csr.find(static_cast<pgb::Index>(r) - blk.rlo,
                                 static_cast<pgb::Index>(c));
  if (v == nullptr) return GrB_INVALID_VALUE;  // no entry stored
  *out = *v;
  return GrB_SUCCESS;
}

// ---- vectors ----

GrB_Info GrB_Vector_new(GrB_Vector* v, GrB_Index size) {
  if (v == nullptr) return GrB_NULL_POINTER;
  PGB_C_GUARD(*v = new pgb_vector_opaque{pgb::DistSparseVec<double>(
                  *g_grid, static_cast<pgb::Index>(size))});
}

GrB_Info GrB_Vector_free(GrB_Vector* v) {
  if (v == nullptr) return GrB_NULL_POINTER;
  delete *v;
  *v = nullptr;
  return GrB_SUCCESS;
}

GrB_Info GrB_Vector_size(GrB_Index* out, GrB_Vector v) {
  if (out == nullptr || v == nullptr) return GrB_NULL_POINTER;
  *out = static_cast<GrB_Index>(v->v.capacity());
  return GrB_SUCCESS;
}

GrB_Info GrB_Vector_nvals(GrB_Index* out, GrB_Vector v) {
  if (out == nullptr || v == nullptr) return GrB_NULL_POINTER;
  *out = static_cast<GrB_Index>(v->v.nnz());
  return GrB_SUCCESS;
}

GrB_Info GrB_Vector_build(GrB_Vector v, const GrB_Index* idx,
                          const double* vals, GrB_Index nvals) {
  if (v == nullptr || (nvals > 0 && (idx == nullptr || vals == nullptr))) {
    return GrB_NULL_POINTER;
  }
  PGB_C_GUARD({
    std::vector<pgb::Index> is;
    std::vector<double> vs;
    is.reserve(static_cast<std::size_t>(nvals));
    vs.reserve(static_cast<std::size_t>(nvals));
    for (GrB_Index k = 0; k < nvals; ++k) {
      if (idx[k] >= static_cast<GrB_Index>(v->v.capacity())) {
        return GrB_INDEX_OUT_OF_BOUNDS;
      }
      is.push_back(static_cast<pgb::Index>(idx[k]));
      vs.push_back(vals[k]);
    }
    pgb::sort_pairs_by_index(is, vs);
    for (std::size_t k = 1; k < is.size(); ++k) {
      if (is[k - 1] == is[k]) return GrB_INVALID_VALUE;  // duplicates
    }
    v->v = pgb::DistSparseVec<double>::from_sorted(*g_grid, v->v.capacity(),
                                                   is, vs);
  });
}

GrB_Info GrB_Vector_setElement(GrB_Vector v, double val, GrB_Index i) {
  if (v == nullptr) return GrB_NULL_POINTER;
  if (i >= static_cast<GrB_Index>(v->v.capacity())) {
    return GrB_INDEX_OUT_OF_BOUNDS;
  }
  PGB_C_GUARD({
    // Merge one element (rebuilds the owner's local block).
    auto local = v->v.to_local();
    std::vector<pgb::Index> is(local.domain().indices().begin(),
                               local.domain().indices().end());
    std::vector<double> vs(local.values().begin(), local.values().end());
    const auto pos = local.domain().find(static_cast<pgb::Index>(i));
    if (pos >= 0) {
      vs[static_cast<std::size_t>(pos)] = val;
    } else {
      is.push_back(static_cast<pgb::Index>(i));
      vs.push_back(val);
      pgb::sort_pairs_by_index(is, vs);
    }
    v->v = pgb::DistSparseVec<double>::from_sorted(*g_grid, v->v.capacity(),
                                                   is, vs);
  });
}

GrB_Info GrB_Vector_extractElement(double* out, GrB_Vector v, GrB_Index i) {
  if (out == nullptr || v == nullptr) return GrB_NULL_POINTER;
  if (i >= static_cast<GrB_Index>(v->v.capacity())) {
    return GrB_INDEX_OUT_OF_BOUNDS;
  }
  const int owner = v->v.owner(static_cast<pgb::Index>(i));
  const double* p = v->v.local(owner).find(static_cast<pgb::Index>(i));
  if (p == nullptr) return GrB_INVALID_VALUE;
  *out = *p;
  return GrB_SUCCESS;
}

GrB_Info GrB_Vector_extractTuples(GrB_Index* idx, double* vals,
                                  GrB_Index* nvals, GrB_Vector v) {
  if (idx == nullptr || vals == nullptr || nvals == nullptr || v == nullptr) {
    return GrB_NULL_POINTER;
  }
  const GrB_Index have = static_cast<GrB_Index>(v->v.nnz());
  if (*nvals < have) return GrB_INVALID_VALUE;
  auto local = v->v.to_local();
  for (pgb::Index p = 0; p < local.nnz(); ++p) {
    idx[p] = static_cast<GrB_Index>(local.index_at(p));
    vals[p] = local.value_at(p);
  }
  *nvals = have;
  return GrB_SUCCESS;
}

// ---- operations ----

GrB_Info GrB_vxm(GrB_Vector w, GrB_Vector mask, pgb_mask_t mask_mode,
                 pgb_semiring_t semiring, GrB_Vector u, GrB_Matrix a) {
  if (w == nullptr || u == nullptr || a == nullptr) return GrB_NULL_POINTER;
  PGB_C_GUARD({
    auto run = [&](const auto& sr) {
      if (mask != nullptr && mask_mode != PGB_MASK_NONE) {
        // Densify the mask's pattern.
        pgb::DistDenseVec<std::uint8_t> dm(*g_grid, mask->v.capacity(), 0);
        for (int l = 0; l < g_grid->num_locales(); ++l) {
          const auto& lm = mask->v.local(l);
          for (pgb::Index p = 0; p < lm.nnz(); ++p) {
            dm.local(l)[lm.index_at(p)] = 1;
          }
        }
        return pgb::spmspv_dist_masked(a->m, u->v, dm,
                                       to_mask_mode(mask_mode), sr);
      }
      return pgb::spmspv_dist(a->m, u->v, sr);
    };
    switch (semiring) {
      case PGB_PLUS_TIMES:
        w->v = run(pgb::arithmetic_semiring<double>());
        break;
      case PGB_MIN_PLUS:
        w->v = run(pgb::min_plus_semiring<double>());
        break;
      case PGB_MIN_FIRST:
        w->v = run(pgb::min_first_semiring<double>());
        break;
      case PGB_LOR_LAND:
        w->v = run(pgb::boolean_semiring<double>());
        break;
      default:
        return GrB_INVALID_VALUE;
    }
  });
}

GrB_Info GrB_eWiseMult(GrB_Vector w, pgb_binary_op_t op, GrB_Vector u,
                       GrB_Vector v) {
  if (w == nullptr || u == nullptr || v == nullptr) return GrB_NULL_POINTER;
  PGB_C_GUARD(w->v = pgb::ewise_mult_ss(
                  u->v, v->v,
                  [op](double a, double b) { return apply_binop(op, a, b); }));
}

GrB_Info GrB_eWiseAdd(GrB_Vector w, pgb_binary_op_t op, GrB_Vector u,
                      GrB_Vector v) {
  if (w == nullptr || u == nullptr || v == nullptr) return GrB_NULL_POINTER;
  PGB_C_GUARD(w->v = pgb::ewise_add(
                  u->v, v->v,
                  [op](double a, double b) { return apply_binop(op, a, b); }));
}

GrB_Info GrB_apply(GrB_Vector w, pgb_unary_op_t op, GrB_Vector u) {
  if (w == nullptr || u == nullptr) return GrB_NULL_POINTER;
  PGB_C_GUARD({
    pgb::assign_v2(w->v, u->v);
    switch (op) {
      case PGB_IDENTITY:
        break;
      case PGB_NEGATE:
        pgb::apply_v2(w->v, pgb::NegateOp{});
        break;
      default:
        return GrB_INVALID_VALUE;
    }
  });
}

GrB_Info GrB_assign(GrB_Vector w, GrB_Vector u) {
  if (w == nullptr || u == nullptr) return GrB_NULL_POINTER;
  PGB_C_GUARD(pgb::assign_v2(w->v, u->v));
}

// ---- graph service ----

GrB_Info pgb_service_open(int queue_depth, int batch_max) {
  return pgb_service_open_ex(queue_depth, batch_max, 0.0, 8.0, 0, 0.05);
}

GrB_Info pgb_service_open_ex(int queue_depth, int batch_max,
                             double tenant_quota_qps, double tenant_quota_burst,
                             int breaker_k, double breaker_cooldown_s) {
  if (queue_depth < 1 || batch_max < 1 || tenant_quota_qps < 0.0 ||
      tenant_quota_burst < 1.0 || breaker_k < 0 || breaker_cooldown_s <= 0.0) {
    return GrB_INVALID_VALUE;
  }
  PGB_C_GUARD({
    pgb::ServiceConfig cfg;
    cfg.queue_depth = queue_depth;
    cfg.batch_max = batch_max;
    cfg.tenant_quota_qps = tenant_quota_qps;
    cfg.tenant_quota_burst = tenant_quota_burst;
    cfg.breaker_k = breaker_k;
    cfg.breaker_cooldown_s = breaker_cooldown_s;
    g_service = std::make_unique<pgb::GraphService>(*g_grid, cfg);
  });
}

GrB_Info pgb_service_close(void) {
  g_ingest.reset();
  g_ingest_handle = -1;
  g_service.reset();
  return GrB_SUCCESS;
}

GrB_Info pgb_graph_load(pgb_graph_handle_t* out, GrB_Matrix m) {
  if (out == nullptr || m == nullptr) return GrB_NULL_POINTER;
  if (g_service == nullptr) return GrB_UNINITIALIZED_OBJECT;
  PGB_C_GUARD(*out = static_cast<pgb_graph_handle_t>(g_service->store().load(
                  std::make_shared<pgb::DistCsr<double>>(m->m))));
}

GrB_Info pgb_graph_publish(pgb_graph_handle_t h, GrB_Matrix m,
                           uint64_t* epoch_out) {
  if (m == nullptr) return GrB_NULL_POINTER;
  if (g_service == nullptr) return GrB_UNINITIALIZED_OBJECT;
  PGB_C_GUARD({
    const std::uint64_t e = g_service->store().publish(
        h, std::make_shared<pgb::DistCsr<double>>(m->m));
    if (epoch_out != nullptr) *epoch_out = e;
  });
}

GrB_Info pgb_graph_epoch(uint64_t* out, pgb_graph_handle_t h) {
  if (out == nullptr) return GrB_NULL_POINTER;
  if (g_service == nullptr) return GrB_UNINITIALIZED_OBJECT;
  PGB_C_GUARD(*out = g_service->store().epoch(h));
}

GrB_Info pgb_graph_close(pgb_graph_handle_t h) {
  if (g_service == nullptr) return GrB_UNINITIALIZED_OBJECT;
  PGB_C_GUARD(g_service->store().close(h));
}

GrB_Info pgb_query_submit(pgb_query_id_t* out, pgb_graph_handle_t h,
                          pgb_query_kind_t kind, GrB_Index source,
                          GrB_Index depth, int tenant,
                          uint64_t expected_epoch) {
  return pgb_query_submit_ex(out, h, kind, source, depth, tenant,
                             expected_epoch, 0.0, nullptr);
}

GrB_Info pgb_query_submit_ex(pgb_query_id_t* out, pgb_graph_handle_t h,
                             pgb_query_kind_t kind, GrB_Index source,
                             GrB_Index depth, int tenant,
                             uint64_t expected_epoch, double deadline_s,
                             double* retry_after_s_out) {
  if (out == nullptr) return GrB_NULL_POINTER;
  if (g_service == nullptr) return GrB_UNINITIALIZED_OBJECT;
  if (deadline_s < 0.0) return GrB_INVALID_VALUE;
  PGB_C_GUARD({
    pgb::QuerySpec spec;
    if (!to_query_kind(kind, &spec.kind)) return GrB_INVALID_VALUE;
    spec.source = static_cast<pgb::Index>(source);
    spec.depth = static_cast<pgb::Index>(depth);
    spec.tenant = tenant;
    spec.deadline_s = deadline_s;
    // The non-strict submit path, so a queue-full rejection can hand its
    // retry-after hint out; snapshot() still throws InvalidHandleError
    // (-> GrB_INVALID_OBJECT) for closed/unknown handles.
    const auto s = g_service->submit(h, spec, g_grid->time(), expected_epoch);
    switch (s.code) {
      case pgb::AdmitCode::kAdmitted:
        *out = static_cast<pgb_query_id_t>(s.id);
        break;
      case pgb::AdmitCode::kQueueFull:
        if (retry_after_s_out != nullptr) *retry_after_s_out = s.retry_after_s;
        return GrB_OUT_OF_RESOURCES;
      case pgb::AdmitCode::kTenantThrottled:
        return GrB_TENANT_THROTTLED;
      case pgb::AdmitCode::kStaleHandle:
        return GrB_INVALID_OBJECT;
      case pgb::AdmitCode::kBadQuery:
        return GrB_INVALID_VALUE;
    }
  });
}

GrB_Info pgb_service_drain(void) {
  if (g_service == nullptr) return GrB_UNINITIALIZED_OBJECT;
  PGB_C_GUARD(g_service->drain());
}

GrB_Info pgb_query_done(int* out, pgb_query_id_t id) {
  if (out == nullptr) return GrB_NULL_POINTER;
  if (g_service == nullptr) return GrB_UNINITIALIZED_OBJECT;
  PGB_C_GUARD(*out = g_service->record(id).done ? 1 : 0);
}

GrB_Info pgb_query_state(int* out, pgb_query_id_t id) {
  if (out == nullptr) return GrB_NULL_POINTER;
  if (g_service == nullptr) return GrB_UNINITIALIZED_OBJECT;
  PGB_C_GUARD({
    switch (g_service->record(id).state) {
      case pgb::QueryState::kQueued:
        *out = 0;
        break;
      case pgb::QueryState::kDone:
        *out = 1;
        break;
      case pgb::QueryState::kDeadlineExpired:
        *out = 2;
        break;
    }
  });
}

GrB_Info pgb_query_release(pgb_query_id_t id) {
  if (g_service == nullptr) return GrB_UNINITIALIZED_OBJECT;
  PGB_C_GUARD(g_service->release(id));
}

GrB_Info pgb_service_health(int* degraded_locales, int* open_breakers) {
  if (g_service == nullptr) return GrB_UNINITIALIZED_OBJECT;
  PGB_C_GUARD({
    pgb::ServiceHealth h = g_service->health();
    if (degraded_locales != nullptr) *degraded_locales = h.degraded_locales;
    if (open_breakers != nullptr) *open_breakers = h.open_breakers();
  });
}

GrB_Info pgb_query_bfs_parent(int64_t* out, pgb_query_id_t id, GrB_Index v) {
  if (out == nullptr) return GrB_NULL_POINTER;
  if (g_service == nullptr) return GrB_UNINITIALIZED_OBJECT;
  PGB_C_GUARD({
    const auto& rec = g_service->record(id);
    if (rec.state == pgb::QueryState::kDeadlineExpired) {
      return GrB_DEADLINE_EXPIRED;
    }
    if (!rec.done || rec.kind != pgb::QueryKind::kBfs) {
      return GrB_INVALID_VALUE;
    }
    if (v >= rec.result.bfs.parent.size()) return GrB_INDEX_OUT_OF_BOUNDS;
    *out = static_cast<int64_t>(rec.result.bfs.parent[v]);
  });
}

GrB_Info pgb_query_sssp_dist(double* out, pgb_query_id_t id, GrB_Index v) {
  if (out == nullptr) return GrB_NULL_POINTER;
  if (g_service == nullptr) return GrB_UNINITIALIZED_OBJECT;
  PGB_C_GUARD({
    const auto& rec = g_service->record(id);
    if (rec.state == pgb::QueryState::kDeadlineExpired) {
      return GrB_DEADLINE_EXPIRED;
    }
    if (!rec.done || rec.kind != pgb::QueryKind::kSssp) {
      return GrB_INVALID_VALUE;
    }
    if (v >= rec.result.sssp.dist.size()) return GrB_INDEX_OUT_OF_BOUNDS;
    *out = rec.result.sssp.dist[v];
  });
}

GrB_Info pgb_ingest_open(pgb_graph_handle_t h, int64_t compact_every) {
  if (g_service == nullptr) return GrB_UNINITIALIZED_OBJECT;
  if (compact_every < 1) return GrB_INVALID_VALUE;
  PGB_C_GUARD({
    const auto snap = g_service->store().snapshot(h);
    pgb::IngestOptions opt;
    opt.compact_every = compact_every;
    g_ingest = std::make_unique<pgb::IngestStream>(
        *g_grid, g_service->store(), h, *snap.graph, opt,
        g_service->event_log());
    g_ingest_handle = h;
  });
}

GrB_Info pgb_ingest_apply(int64_t n, const GrB_Index* rows,
                          const GrB_Index* cols, const double* vals,
                          const int* ops) {
  if (g_ingest == nullptr) return GrB_UNINITIALIZED_OBJECT;
  if (n < 0) return GrB_INVALID_VALUE;
  if (n > 0 && (rows == nullptr || cols == nullptr)) return GrB_NULL_POINTER;
  PGB_C_GUARD({
    pgb::MutationBatch batch;
    batch.seq = g_ingest->acked_seq() + 1;
    batch.deltas.reserve(static_cast<std::size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      pgb::EdgeDelta d;
      d.row = static_cast<pgb::Index>(rows[i]);
      d.col = static_cast<pgb::Index>(cols[i]);
      d.val = vals != nullptr ? vals[i] : 1.0;
      d.op = (ops != nullptr && ops[i] != 0) ? pgb::DeltaOp::kDelete
                                             : pgb::DeltaOp::kInsert;
      batch.deltas.push_back(d);
    }
    batch.stamp();
    g_ingest->apply(batch);
  });
}

GrB_Info pgb_ingest_publish(uint64_t* epoch_out) {
  if (g_ingest == nullptr) return GrB_UNINITIALIZED_OBJECT;
  PGB_C_GUARD({
    const std::uint64_t e = g_ingest->publish();
    if (epoch_out != nullptr) *epoch_out = e;
  });
}

GrB_Info pgb_ingest_stats(int64_t* batches, int64_t* deltas,
                          int64_t* replays, uint64_t* graph_hash) {
  if (g_ingest == nullptr) return GrB_UNINITIALIZED_OBJECT;
  PGB_C_GUARD({
    const pgb::IngestStats& s = g_ingest->stats();
    if (batches != nullptr) *batches = s.batches;
    if (deltas != nullptr) *deltas = s.deltas;
    if (replays != nullptr) *replays = s.replays;
    if (graph_hash != nullptr) {
      const auto snap = g_service->store().snapshot(g_ingest_handle);
      *graph_hash = pgb::ingest_graph_hash(*snap.graph);
    }
  });
}

GrB_Info pgb_ingest_close(void) {
  g_ingest.reset();
  g_ingest_handle = -1;
  return GrB_SUCCESS;
}

GrB_Info GrB_reduce(double* out, pgb_binary_op_t op, GrB_Vector u) {
  if (out == nullptr || u == nullptr) return GrB_NULL_POINTER;
  PGB_C_GUARD({
    switch (op) {
      case PGB_PLUS:
        *out = pgb::reduce(u->v, pgb::plus_monoid<double>());
        break;
      case PGB_MIN:
        *out = pgb::reduce(u->v, pgb::min_monoid<double>());
        break;
      case PGB_MAX:
        *out = pgb::reduce(u->v, pgb::max_monoid<double>());
        break;
      default:
        return GrB_INVALID_VALUE;
    }
  });
}

}  // extern "C"
