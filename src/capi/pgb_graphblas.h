/* pgb_graphblas.h — C bindings for pgas-graphblas.
 *
 * A pragmatic subset of the GraphBLAS C API design the paper cites
 * (Buluç, Mattson, McMillan, Moreira, Yang: "Design of the GraphBLAS
 * API for C", IPDPSW 2017): opaque matrix/vector objects over double
 * values, build/extract, the core operations (vxm with optional
 * structural mask, eWiseMult/eWiseAdd, apply, assign, reduce), and a
 * handful of built-in semirings/operators selected by enum. Every call
 * returns a GrB_Info status; C++ exceptions never cross this boundary.
 *
 * The simulated machine is configured once with pgb_init(); modeled
 * elapsed time is read with pgb_elapsed_seconds().
 */
#ifndef PGB_GRAPHBLAS_H_
#define PGB_GRAPHBLAS_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef uint64_t GrB_Index;

typedef enum {
  GrB_SUCCESS = 0,
  GrB_NULL_POINTER,
  GrB_UNINITIALIZED_OBJECT,
  GrB_INVALID_VALUE,
  GrB_INDEX_OUT_OF_BOUNDS,
  GrB_DIMENSION_MISMATCH,
  GrB_OUT_OF_RESOURCES,  /* admission queue full: back off and retry */
  GrB_INVALID_OBJECT,    /* unknown/closed graph handle, or stale epoch */
  GrB_DEADLINE_EXPIRED,  /* query's deadline passed; no result was kept */
  GrB_TENANT_THROTTLED,  /* tenant over quota or its breaker is open */
  GrB_PANIC
} GrB_Info;

/* Built-in algebra selectors (all over double). */
typedef enum {
  PGB_PLUS_TIMES = 0, /* arithmetic semiring */
  PGB_MIN_PLUS,       /* tropical: shortest paths */
  PGB_MIN_FIRST,      /* BFS parent propagation */
  PGB_LOR_LAND        /* Boolean reachability */
} pgb_semiring_t;

typedef enum {
  PGB_PLUS = 0,
  PGB_TIMES,
  PGB_MIN,
  PGB_MAX,
  PGB_FIRST,
  PGB_SECOND
} pgb_binary_op_t;

typedef enum {
  PGB_IDENTITY = 0,
  PGB_NEGATE,
  PGB_AINV = PGB_NEGATE
} pgb_unary_op_t;

typedef enum { PGB_MASK_NONE = 0, PGB_MASK, PGB_MASK_COMPLEMENT } pgb_mask_t;

typedef struct pgb_matrix_opaque* GrB_Matrix;
typedef struct pgb_vector_opaque* GrB_Vector;

/* ---- context ---- */

/* Initializes the simulated locale grid (nlocales near-square, threads
 * per locale). Must be called before any other function. */
GrB_Info pgb_init(int nlocales, int threads_per_locale);
GrB_Info pgb_finalize(void);
/* Modeled seconds elapsed on the simulated machine since pgb_init /
 * the last pgb_reset_clock. */
double pgb_elapsed_seconds(void);
void pgb_reset_clock(void);

/* ---- matrices ---- */

GrB_Info GrB_Matrix_new(GrB_Matrix* m, GrB_Index nrows, GrB_Index ncols);
GrB_Info GrB_Matrix_free(GrB_Matrix* m);
GrB_Info GrB_Matrix_nrows(GrB_Index* out, GrB_Matrix m);
GrB_Info GrB_Matrix_ncols(GrB_Index* out, GrB_Matrix m);
GrB_Info GrB_Matrix_nvals(GrB_Index* out, GrB_Matrix m);
/* Builds from COO triples; duplicates are summed. Replaces content. */
GrB_Info GrB_Matrix_build(GrB_Matrix m, const GrB_Index* rows,
                          const GrB_Index* cols, const double* vals,
                          GrB_Index nvals);
GrB_Info GrB_Matrix_extractElement(double* out, GrB_Matrix m, GrB_Index r,
                                   GrB_Index c);

/* ---- vectors ---- */

GrB_Info GrB_Vector_new(GrB_Vector* v, GrB_Index size);
GrB_Info GrB_Vector_free(GrB_Vector* v);
GrB_Info GrB_Vector_size(GrB_Index* out, GrB_Vector v);
GrB_Info GrB_Vector_nvals(GrB_Index* out, GrB_Vector v);
GrB_Info GrB_Vector_build(GrB_Vector v, const GrB_Index* idx,
                          const double* vals, GrB_Index nvals);
GrB_Info GrB_Vector_setElement(GrB_Vector v, double val, GrB_Index i);
GrB_Info GrB_Vector_extractElement(double* out, GrB_Vector v, GrB_Index i);
/* Copies up to *nvals tuples into idx/vals; *nvals updated to the count. */
GrB_Info GrB_Vector_extractTuples(GrB_Index* idx, double* vals,
                                  GrB_Index* nvals, GrB_Vector v);

/* ---- operations ---- */

/* w = u A on the selected semiring. mask (nullable) filters the output
 * by the *pattern* of the mask vector, per mask_mode. */
GrB_Info GrB_vxm(GrB_Vector w, GrB_Vector mask, pgb_mask_t mask_mode,
                 pgb_semiring_t semiring, GrB_Vector u, GrB_Matrix a);

/* w = u (.op) v on the pattern intersection / union. */
GrB_Info GrB_eWiseMult(GrB_Vector w, pgb_binary_op_t op, GrB_Vector u,
                       GrB_Vector v);
GrB_Info GrB_eWiseAdd(GrB_Vector w, pgb_binary_op_t op, GrB_Vector u,
                      GrB_Vector v);

/* w = f(u) element-wise on the nonzeros. */
GrB_Info GrB_apply(GrB_Vector w, pgb_unary_op_t op, GrB_Vector u);

/* w = u (the paper's restricted assign: same size, bulk copy). */
GrB_Info GrB_assign(GrB_Vector w, GrB_Vector u);

/* out = reduction of u's nonzeros with the binary op (PLUS/MIN/MAX). */
GrB_Info GrB_reduce(double* out, pgb_binary_op_t op, GrB_Vector u);

/* ---- graph service: resident handles + submit/poll ----
 *
 * The serving front end (src/service/) behind a C boundary: load a
 * matrix once as resident distributed state, submit queries against the
 * handle, drain, poll results. Admission control answers a full queue
 * with GrB_OUT_OF_RESOURCES; unknown/closed handles and stale epoch
 * pins answer GrB_INVALID_OBJECT. */

typedef int64_t pgb_graph_handle_t;
typedef int64_t pgb_query_id_t;

typedef enum {
  PGB_QUERY_BFS = 0,
  PGB_QUERY_SSSP,
  PGB_QUERY_PAGERANK_SUBGRAPH,
  PGB_QUERY_EGO_NET
} pgb_query_kind_t;

/* Opens the service: bounded admission queue of `queue_depth`, fused
 * batches of up to `batch_max` compatible queries. One service per
 * grid; reopening replaces it. */
GrB_Info pgb_service_open(int queue_depth, int batch_max);
/* pgb_service_open with the resilience knobs: per-tenant token-bucket
 * quota (`tenant_quota_qps` sustained rate, `tenant_quota_burst` bucket
 * capacity; qps 0 disables) and circuit breaker (`breaker_k` consecutive
 * failures trip it, 0 disables; an open breaker holds
 * `breaker_cooldown_s` simulated seconds before a half-open probe). */
GrB_Info pgb_service_open_ex(int queue_depth, int batch_max,
                             double tenant_quota_qps, double tenant_quota_burst,
                             int breaker_k, double breaker_cooldown_s);
GrB_Info pgb_service_close(void);

/* Copies the matrix in as a resident graph; the handle starts at
 * epoch 1. Queries pin the version current at submit time, so a later
 * publish/close never disturbs queued work. */
GrB_Info pgb_graph_load(pgb_graph_handle_t* out, GrB_Matrix m);
/* Installs a new version under the handle; *epoch_out (nullable)
 * receives the bumped epoch. */
GrB_Info pgb_graph_publish(pgb_graph_handle_t h, GrB_Matrix m,
                           uint64_t* epoch_out);
GrB_Info pgb_graph_epoch(uint64_t* out, pgb_graph_handle_t h);
GrB_Info pgb_graph_close(pgb_graph_handle_t h);

/* Submits a query at the current simulated time. `expected_epoch` of 0
 * means "whatever is current"; nonzero pins an epoch and a mismatch
 * returns GrB_INVALID_OBJECT. A full queue returns
 * GrB_OUT_OF_RESOURCES. `depth` only matters for the subgraph kinds. */
GrB_Info pgb_query_submit(pgb_query_id_t* out, pgb_graph_handle_t h,
                          pgb_query_kind_t kind, GrB_Index source,
                          GrB_Index depth, int tenant,
                          uint64_t expected_epoch);

/* pgb_query_submit with the resilience surface. `deadline_s` is the
 * latency budget in simulated seconds from submission (0 = none): a
 * query that cannot complete inside it ends GrB_DEADLINE_EXPIRED and
 * never yields a late result. On GrB_OUT_OF_RESOURCES,
 * `retry_after_s_out` (nullable) receives the suggested simulated
 * backoff before resubmitting; a throttled tenant (quota or open
 * breaker) gets GrB_TENANT_THROTTLED. */
GrB_Info pgb_query_submit_ex(pgb_query_id_t* out, pgb_graph_handle_t h,
                             pgb_query_kind_t kind, GrB_Index source,
                             GrB_Index depth, int tenant,
                             uint64_t expected_epoch, double deadline_s,
                             double* retry_after_s_out);

/* Serves queued queries (fused batches) until the queue drains. */
GrB_Info pgb_service_drain(void);

/* *out = 1 once the query has been served, else 0. A deadline-expired
 * query never reads as done. */
GrB_Info pgb_query_done(int* out, pgb_query_id_t id);

/* Terminal-state poll: *out = 0 queued, 1 done, 2 deadline-expired. */
GrB_Info pgb_query_state(int* out, pgb_query_id_t id);

/* Releases a terminal query's record for compaction (the service's
 * record book stays memory-steady under sustained traffic). The id is
 * invalid afterwards; releasing a queued query is GrB_INVALID_VALUE. */
GrB_Info pgb_query_release(pgb_query_id_t id);

/* Snapshot of the service health surface: logical locales living away
 * from their home host after a degraded-mode remap, and tenants with an
 * open circuit breaker. Either out pointer may be NULL. */
GrB_Info pgb_service_health(int* degraded_locales, int* open_breakers);
/* BFS parent of v (-1 if unreached). Query must be a completed BFS;
 * polling an expired query returns GrB_DEADLINE_EXPIRED. */
GrB_Info pgb_query_bfs_parent(int64_t* out, pgb_query_id_t id, GrB_Index v);
/* SSSP distance of v (DBL_MAX if unreachable). Completed SSSP only;
 * polling an expired query returns GrB_DEADLINE_EXPIRED. */
GrB_Info pgb_query_sssp_dist(double* out, pgb_query_id_t id, GrB_Index v);

/* ---- Streaming ingestion (src/ingest/): crash-consistent batched
 * mutation of an open graph handle through the replicated delta log.
 * One stream per service; mutations are durable (buddy-mirrored) once
 * pgb_ingest_apply returns, visible to queries once pgb_ingest_publish
 * installs the next epoch. ---- */

/* Opens the ingest stream over handle h. `compact_every` is the pending
 * delta threshold (>= 1) that triggers compaction into a fresh base at
 * the next publish. Requires an open service and >= 2 locales. */
GrB_Info pgb_ingest_open(pgb_graph_handle_t h, int64_t compact_every);

/* Applies one mutation batch of n edges. ops[i] is 0 = insert/overwrite,
 * 1 = delete (NULL = all inserts); vals may be NULL (1.0). The batch is
 * sequence-numbered, checksummed, routed to owner locales, logged, and
 * mirrored before the call returns. */
GrB_Info pgb_ingest_apply(int64_t n, const GrB_Index* rows,
                          const GrB_Index* cols, const double* vals,
                          const int* ops);

/* Folds every acknowledged batch into the next epoch and publishes it
 * under the stream's handle. Queries pinned to prior epochs are
 * unaffected. `epoch_out` (nullable) receives the new epoch. */
GrB_Info pgb_ingest_publish(uint64_t* epoch_out);

/* Stream observability. Any out pointer may be NULL. `graph_hash`
 * receives the deterministic content hash of the handle's current
 * version (the kill-vs-fault-free equality witness). */
GrB_Info pgb_ingest_stats(int64_t* batches, int64_t* deltas,
                          int64_t* replays, uint64_t* graph_hash);

/* Tears the stream down (the handle stays open). */
GrB_Info pgb_ingest_close(void);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* PGB_GRAPHBLAS_H_ */
