// IngestStream: crash-consistent streaming ingestion against an
// epoch-versioned GraphStore handle.
//
// The write path composes three existing pieces into one loop:
//
//   route    a MutationBatch's deltas travel to their owner locales
//            through the aggregation layer (runtime/aggregator.hpp) —
//            batched conveyor flushes, never fine-grained RPCs;
//   log      each owner appends its slice as one checksummed page to a
//            per-locale DeltaLog, and mirrors the page frame to its
//            PR-5 buddy (fault/replica.hpp's placement) *before* the
//            batch is acknowledged — the write-ahead contract: an acked
//            batch is replayable from the surviving mirror;
//   publish  queries keep reading their pinned snapshot until publish()
//            folds the acked pages into per-block overlays
//            (sparse/csr_overlay.hpp read-through) and installs the
//            materialized result as the handle's next epoch. Once the
//            pending overlay reaches `compact_every` entries, the
//            published matrix becomes the new base: logs truncate and
//            the base re-replicates to the buddies.
//
// A locale kill mid-batch (LocaleFailed from the fault plane) triggers
// degraded rebuild: the dead logical locale is remapped onto its
// buddy's host, its base block is restored from the buddy's checksummed
// copy, and the buddy's mirrored log pages are replayed past the last
// durable (acknowledged) sequence number — torn or corrupt tail frames
// are detected by checksum and exactly the unacknowledged suffix is
// discarded, then the interrupted batch re-applies. Both the replayed
// pages and the re-applied batch are bit-identical to the fault-free
// run, so the post-recovery published graph hashes equal.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fault/checkpoint.hpp"
#include "fault/fault.hpp"
#include "fault/replica.hpp"
#include "ingest/delta_log.hpp"
#include "obs/span.hpp"
#include "runtime/aggregator.hpp"
#include "runtime/locale_grid.hpp"
#include "service/event_log.hpp"
#include "service/handle.hpp"
#include "sparse/csr_overlay.hpp"
#include "sparse/dist_csr.hpp"

namespace pgb {

/// Serializes one CSR block to bytes (the base-replica wire format):
/// [nrows][ncols][nnz][rowptr][colids][vals], all host-layout int64 /
/// double.
inline void serialize_csr(const Csr<double>& m,
                          std::vector<unsigned char>* out) {
  const auto put = [out](const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    out->insert(out->end(), b, b + n);
  };
  const Index nr = m.nrows(), nc = m.ncols(), nnz = m.nnz();
  put(&nr, sizeof(nr));
  put(&nc, sizeof(nc));
  put(&nnz, sizeof(nnz));
  put(m.rowptr().data(), m.rowptr().size() * sizeof(Index));
  put(m.colids().data(), m.colids().size() * sizeof(Index));
  put(m.values().data(), m.values().size() * sizeof(double));
}

inline Csr<double> deserialize_csr(const unsigned char* p, std::size_t n) {
  std::size_t off = 0;
  const auto get = [&](void* out, std::size_t len) {
    PGB_REQUIRE(off + len <= n, "ingest: truncated base-replica block");
    std::memcpy(out, p + off, len);
    off += len;
  };
  Index nr = 0, nc = 0, nnz = 0;
  get(&nr, sizeof(nr));
  get(&nc, sizeof(nc));
  get(&nnz, sizeof(nnz));
  std::vector<Index> rowptr(static_cast<std::size_t>(nr) + 1);
  std::vector<Index> colids(static_cast<std::size_t>(nnz));
  std::vector<double> vals(static_cast<std::size_t>(nnz));
  get(rowptr.data(), rowptr.size() * sizeof(Index));
  get(colids.data(), colids.size() * sizeof(Index));
  get(vals.data(), vals.size() * sizeof(double));
  return Csr<double>::from_parts(nr, nc, std::move(rowptr), std::move(colids),
                                 std::move(vals));
}

/// Deterministic content hash of a distributed matrix (FNV-1a over
/// shape + every block's arrays, in locale order). Two graphs hash
/// equal iff their distributed representations are bit-identical — the
/// CI gate for kill-run vs fault-free-run equality.
inline std::uint64_t ingest_graph_hash(const DistCsr<double>& g) {
  std::uint64_t h = 1469598103934665603ull;
  const Index nr = g.nrows(), nc = g.ncols();
  h = fnv1a_extend(h, &nr, sizeof(nr));
  h = fnv1a_extend(h, &nc, sizeof(nc));
  for (int l = 0; l < g.grid().num_locales(); ++l) {
    const auto& csr = g.block(l).csr;
    h = fnv1a_extend(h, csr.rowptr().data(),
                     csr.rowptr().size() * sizeof(Index));
    h = fnv1a_extend(h, csr.colids().data(),
                     csr.colids().size() * sizeof(Index));
    h = fnv1a_extend(h, csr.values().data(),
                     csr.values().size() * sizeof(double));
  }
  return h;
}

struct IngestOptions {
  /// Pending overlay entries (summed over locales) that trigger
  /// compaction into a fresh base at the next publish.
  std::int64_t compact_every = 8192;
  /// Aggregation knobs for the delta routing path.
  AggConfig agg;
  /// Give up (rethrow LocaleFailed) after this many kills in one apply.
  int max_failures = 4;
};

struct IngestStats {
  std::int64_t batches = 0;      ///< acknowledged batches
  std::int64_t deltas = 0;       ///< mutations applied (routed + logged)
  std::int64_t inserts = 0;
  std::int64_t deletes = 0;
  std::int64_t publishes = 0;
  std::int64_t compactions = 0;
  std::int64_t replays = 0;          ///< recoveries that replayed a mirror
  std::int64_t pages_replayed = 0;   ///< durable pages restored from mirrors
  std::int64_t pages_discarded = 0;  ///< unacked/torn frames dropped
  std::int64_t log_bytes = 0;        ///< page frame bytes shipped to buddies
  std::int64_t base_bytes = 0;       ///< base-replica bytes shipped
};

class IngestStream {
 public:
  /// Wraps handle `h` of `store` (already loaded with `base`). The
  /// constructor replicates the base blocks to the buddy locales —
  /// a comm phase charged like ReplicaStore's static setup.
  IngestStream(LocaleGrid& grid, GraphStore& store, GraphStore::HandleId h,
               const DistCsr<double>& base, IngestOptions opt = {},
               ServiceEventLog* elog = nullptr)
      : grid_(grid), store_(store), h_(h), base_(base), opt_(opt),
        elog_(elog) {
    PGB_REQUIRE(grid.num_locales() >= 2,
                "ingest: need at least two locales for buddy mirroring");
    PGB_REQUIRE(opt_.compact_every >= 1,
                "ingest: compact_every must be >= 1");
    PGB_REQUIRE(opt_.max_failures >= 0,
                "ingest: max_failures must be >= 0");
    const int n = grid_.num_locales();
    logs_.resize(static_cast<std::size_t>(n));
    mirror_.resize(static_cast<std::size_t>(n));
    base_mirror_.resize(static_cast<std::size_t>(n));
    overlays_.reserve(static_cast<std::size_t>(n));
    for (int l = 0; l < n; ++l) {
      overlays_.emplace_back(&base_.block(l).csr);
    }
    replicate_base();
  }

  IngestStream(const IngestStream&) = delete;
  IngestStream& operator=(const IngestStream&) = delete;

  /// Applies one batch end to end: verify, route to owners through the
  /// aggregation layer, append one page per locale, mirror each page to
  /// the buddy, then acknowledge. A kill mid-batch recovers in place
  /// (degraded remap + base restore + mirror replay) and the batch
  /// re-applies — ack only ever covers fully mirrored pages.
  void apply(const MutationBatch& batch) {
    PGB_REQUIRE(batch.valid(), "ingest: mutation batch failed its checksum");
    PGB_REQUIRE(batch.seq == acked_seq_ + 1,
                "ingest: batch " + std::to_string(batch.seq) +
                    " out of order (acked " + std::to_string(acked_seq_) +
                    ")");
    PGB_TRACE_SPAN(grid_, "ingest.apply",
                   {{"seq", std::to_string(batch.seq)},
                    {"deltas", std::to_string(batch.deltas.size())}});
    run_protected([&] { route_and_append(batch); });
    acked_seq_ = batch.seq;
    ++stats_.batches;
    std::int64_t ins = 0, del = 0;
    for (const EdgeDelta& d : batch.deltas) {
      (d.op == DeltaOp::kInsert ? ins : del) += 1;
    }
    stats_.deltas += static_cast<std::int64_t>(batch.deltas.size());
    stats_.inserts += ins;
    stats_.deletes += del;
    auto& mx = grid_.metrics();
    mx.counter("ingest.batches").inc();
    mx.counter("ingest.deltas")
        .inc(static_cast<std::int64_t>(batch.deltas.size()));
    if (elog_ != nullptr) {
      elog_->emit(grid_.time(), "ingest.batch",
                  {{"seq", ev_int(batch.seq)},
                   {"deltas",
                    ev_int(static_cast<std::int64_t>(batch.deltas.size()))},
                   {"inserts", ev_int(ins)},
                   {"deletes", ev_int(del)},
                   {"log_bytes", ev_int(stats_.log_bytes)}});
    }
  }

  /// Atomic epoch publish: folds the acked-but-unapplied pages into the
  /// per-block overlays, materializes base + overlay into a fresh
  /// DistCsr (clean blocks copied straight through, dirty blocks merged
  /// by read-through), and installs it under the handle. Snapshots
  /// taken before the publish keep the prior version — readers never
  /// observe a torn batch. Compacts once the pending overlay crosses
  /// the threshold.
  std::uint64_t publish() {
    PGB_TRACE_SPAN(grid_, "ingest.publish",
                   {{"seq", std::to_string(acked_seq_)}});
    // Every stage below is individually idempotent (folds are last-write-
    // wins over already-identical prefixes; materialize overwrites), so a
    // kill inside any of them recovers and re-runs just that stage.
    run_protected([&] {
      grid_.coforall_locales([&](LocaleCtx& ctx) {
        const int l = ctx.locale();
        std::int64_t folded = 0;
        for (const DeltaLogPage& p :
             logs_[static_cast<std::size_t>(l)].pages()) {
          if (p.seq <= applied_seq_ || p.seq > acked_seq_) continue;
          for (const EdgeDelta& d : p.decode()) {
            overlays_[static_cast<std::size_t>(l)].apply(
                d.row - base_.block(l).rlo, d.col, d.val,
                d.op == DeltaOp::kInsert);
            ++folded;
          }
        }
        CostVector c;
        c.add(CostKind::kCpuOps, 24.0 * static_cast<double>(folded));
        c.add(CostKind::kRandAccess, static_cast<double>(folded));
        ctx.parallel_region(c);
      });
    });
    applied_seq_ = acked_seq_;

    auto g = std::make_shared<DistCsr<double>>(grid_, base_.nrows(),
                                               base_.ncols());
    std::int64_t pending = 0;
    run_protected([&] {
      pending = 0;  // a retried stage recounts from scratch
      grid_.coforall_locales([&](LocaleCtx& ctx) {
        const int l = ctx.locale();
        auto& ov = overlays_[static_cast<std::size_t>(l)];
        pending += ov.pending();
        std::int64_t touched = 0;
        if (ov.pending() == 0) {
          // Clean block: the new epoch shares the base bytes (modeled
          // zero-copy — no merge, no charge beyond the copy itself).
          g->block(l).csr = base_.block(l).csr;
        } else {
          g->block(l).csr = ov.materialize(&touched);
          CostVector c;
          c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(touched));
          c.add(CostKind::kCpuOps, 8.0 * static_cast<double>(touched));
          ctx.parallel_region(c);
        }
      });
    });
    const std::uint64_t epoch = store_.publish(h_, g);
    ++stats_.publishes;
    grid_.metrics().counter("ingest.publishes").inc();
    bool compacted = false;
    if (pending >= opt_.compact_every) {
      run_protected([&] { compact(*g); });
      compacted = true;
    }
    if (elog_ != nullptr) {
      elog_->emit(grid_.time(), "ingest.publish",
                  {{"epoch", ev_int(static_cast<std::int64_t>(epoch))},
                   {"seq", ev_int(acked_seq_)},
                   {"pending", ev_int(pending)},
                   {"compacted", ev_int(compacted ? 1 : 0)}});
    }
    return epoch;
  }

  /// Recovery entry point for kills that land *outside* an ingest apply
  /// (a query batch under run_with_rebuild): the rebuild driver has
  /// already remapped the logical locale; this restores the ingest
  /// state it carried — base block from the buddy's checksummed copy,
  /// log pages from the buddy's mirror. Wire it through
  /// GraphService::set_rebuild_hook.
  void recover_after_rebuild(int logical) { recover(logical); }

  const IngestStats& stats() const { return stats_; }
  std::int64_t acked_seq() const { return acked_seq_; }
  std::int64_t applied_seq() const { return applied_seq_; }
  std::int64_t log_bytes() const {
    std::int64_t b = 0;
    for (const auto& l : logs_) b += l.bytes();
    return b;
  }
  std::int64_t pending_deltas() const {
    std::int64_t p = 0;
    for (const auto& ov : overlays_) p += ov.pending();
    return p;
  }
  const DeltaLog& log(int l) const {
    return logs_[static_cast<std::size_t>(l)];
  }

  /// Test hooks: the primary copies a kill "loses". Corrupting these and
  /// proving recovery still bit-matches shows rebuilds read replica
  /// bytes, not the primaries (same convention as ReplicaStore).
  Csr<double>& base_block_for_test(int l) { return base_.block(l).csr; }
  std::vector<unsigned char>& mirror_bytes_for_test(int l) {
    return mirror_[static_cast<std::size_t>(l)];
  }

 private:
  /// A delta tagged with its index in the batch: owners re-sort by it,
  /// so within-batch application order is the global batch order no
  /// matter how routing interleaved the shards.
  struct RoutedDelta {
    std::int64_t idx = 0;
    EdgeDelta d;
  };

  /// Runs one idempotent stage to completion, surviving locale kills:
  /// on LocaleFailed the dead logical locale is remapped onto its
  /// buddy's host (degraded mode), its ingest state is restored from
  /// the buddy (recover), and the stage re-runs from scratch. Rethrows
  /// past the failure budget, without a fault plan, or when the buddy
  /// is dead too (a second overlapping failure exceeds the replica
  /// scheme's single-fault tolerance).
  template <typename Fn>
  void run_protected(Fn&& fn) {
    int failures = 0;
    for (;;) {
      try {
        fn();
        return;
      } catch (const LocaleFailed& lf) {
        ++failures;
        if (grid_.fault_plan() == nullptr || failures > opt_.max_failures) {
          throw;
        }
        const int logical = lf.locale();
        const int dead_host = grid_.host_of(logical);
        const int new_host =
            grid_.host_of(replica_buddy_of(logical, grid_.num_locales()));
        if (new_host == dead_host ||
            grid_.fault_plan()->is_down(new_host, grid_.time())) {
          throw;
        }
        grid_.remap_locale(logical, new_host);
        grid_.metrics().counter("recovery.restarts").inc();
        recover(logical);
      }
    }
  }

  void replicate_base() {
    const int n = grid_.num_locales();
    std::int64_t shipped = 0;
    std::vector<std::int64_t> ship(static_cast<std::size_t>(n), 0);
    for (int l = 0; l < n; ++l) {
      std::vector<unsigned char> bytes;
      serialize_csr(base_.block(l).csr, &bytes);
      CheckpointBlock blk{l, std::move(bytes), 0};
      blk.stamp();
      auto& cur = base_mirror_[static_cast<std::size_t>(l)];
      if (cur.bytes.empty() || cur.checksum != blk.checksum) {
        // Dirty block (first replication, or changed by compaction):
        // reship to the buddy.
        ship[static_cast<std::size_t>(l)] =
            static_cast<std::int64_t>(blk.bytes.size());
        shipped += ship[static_cast<std::size_t>(l)];
        cur = std::move(blk);
      }
    }
    if (shipped == 0) return;
    PGB_TRACE_SPAN(grid_, "ingest.replicate_base",
                   {{"bytes", std::to_string(shipped)}});
    const double bw = grid_.model().node.bw_core;
    grid_.coforall_locales([&](LocaleCtx& ctx) {
      const int l = ctx.locale();
      const std::int64_t b = ship[static_cast<std::size_t>(l)];
      if (b == 0) return;
      ctx.clock().advance(static_cast<double>(b) / bw);  // serialize
      ctx.remote_bulk(replica_buddy_of(l, grid_.num_locales()), b);
    });
    stats_.base_bytes += shipped;
    grid_.metrics().counter("ingest.base_bytes").inc(shipped);
  }

  void route_and_append(const MutationBatch& batch) {
    const int n = grid_.num_locales();
    staged_.assign(static_cast<std::size_t>(n), {});
    // Phase 1 — route: each locale takes a round-robin shard of the
    // batch and pushes every delta to its owner through a conveyor
    // aggregator (capacity-triggered bulk flushes, charged to the
    // simulated clocks). Delivery appends into the owner's staging.
    grid_.coforall_locales([&](LocaleCtx& ctx) {
      const int l = ctx.locale();
      DstAggregator<RoutedDelta> agg(
          ctx,
          [&](int peer, std::vector<RoutedDelta>& b) {
            auto& s = staged_[static_cast<std::size_t>(peer)];
            s.insert(s.end(), b.begin(), b.end());
          },
          opt_.agg);
      std::int64_t mine = 0;
      for (std::size_t i = static_cast<std::size_t>(l);
           i < batch.deltas.size(); i += static_cast<std::size_t>(n)) {
        const EdgeDelta& d = batch.deltas[i];
        PGB_REQUIRE(d.row >= 0 && d.row < base_.nrows() && d.col >= 0 &&
                        d.col < base_.ncols(),
                    "ingest: delta coordinate out of range");
        agg.push(base_.dist().locale_of(d.row, d.col),
                 RoutedDelta{static_cast<std::int64_t>(i), d});
        ++mine;
      }
      agg.flush_all();
      CostVector c;
      c.add(CostKind::kCpuOps, 8.0 * static_cast<double>(mine));
      c.add(CostKind::kStreamBytes,
            static_cast<double>(kEdgeDeltaBytes) *
                static_cast<double>(mine));
      ctx.parallel_region(c);
    });
    // Phase 2 — log + mirror (the write-ahead step): each owner cuts
    // one page from its staged slice and ships the frame to its buddy
    // before anything is acknowledged. A kill at locale k's dispatch
    // leaves locales < k mirrored and >= k absent — exactly the torn
    // tail the replay path is built to discard.
    grid_.coforall_locales([&](LocaleCtx& ctx) {
      const int l = ctx.locale();
      auto& s = staged_[static_cast<std::size_t>(l)];
      std::sort(s.begin(), s.end(),
                [](const RoutedDelta& a, const RoutedDelta& b) {
                  return a.idx < b.idx;
                });
      std::vector<EdgeDelta> ds;
      ds.reserve(s.size());
      for (const RoutedDelta& rd : s) ds.push_back(rd.d);
      DeltaLogPage p = DeltaLogPage::encode(batch.seq, ds);
      const std::int64_t fb = p.frame_bytes();
      frame_append(mirror_[static_cast<std::size_t>(l)], p);
      ctx.remote_bulk(replica_buddy_of(l, grid_.num_locales()), fb);
      logs_[static_cast<std::size_t>(l)].append(std::move(p));
      stats_.log_bytes += fb;
      grid_.metrics().counter("ingest.log_bytes").inc(fb);
      CostVector c;
      c.add(CostKind::kStreamBytes, 2.0 * static_cast<double>(fb));
      ctx.parallel_region(c);
    });
  }

  /// Restores the dead locale's ingest state from its buddy and rolls
  /// every locale's log back to the durable (acked) boundary.
  void recover(int logical) {
    const int n = grid_.num_locales();
    const int buddy = replica_buddy_of(logical, n);
    // 1. Base block: the buddy's checksummed copy replaces the lost
    //    primary. A corrupt copy fails closed — better no recovery than
    //    a silently wrong graph.
    const CheckpointBlock& mb = base_mirror_[static_cast<std::size_t>(logical)];
    if (!mb.valid()) {
      throw Error("ingest: base replica of locale " +
                  std::to_string(logical) + " failed its checksum");
    }
    base_.block(logical).csr = deserialize_csr(mb.bytes.data(),
                                               mb.bytes.size());
    // 2. Delta log: replay the buddy's mirror up to the durable
    //    sequence number; torn/corrupt tail frames and intact-but-
    //    unacked frames are the discarded suffix.
    auto& mbytes = mirror_[static_cast<std::size_t>(logical)];
    ReplayResult rr =
        replay_log_bytes(mbytes.data(), mbytes.size(), acked_seq_);
    auto& dead_log = logs_[static_cast<std::size_t>(logical)];
    dead_log.clear();
    std::int64_t replayed_bytes = 0;
    for (DeltaLogPage& p : rr.pages) {
      replayed_bytes += p.frame_bytes();
      dead_log.append(std::move(p));
    }
    mbytes.resize(static_cast<std::size_t>(rr.bytes_consumed));
    // 3. Survivors roll back their own unacked suffix: those pages were
    //    never acknowledged, and the re-apply will regenerate them.
    for (int l = 0; l < n; ++l) {
      if (l == logical) continue;
      auto& lg = logs_[static_cast<std::size_t>(l)];
      if (lg.last_seq() > acked_seq_) {
        lg.truncate_after(acked_seq_);
        mirror_[static_cast<std::size_t>(l)] = lg.serialize();
      }
    }
    // 4. The dead locale's overlay died with it: refold the already-
    //    applied prefix of the restored log over the restored base.
    overlays_[static_cast<std::size_t>(logical)]
        .rebase(&base_.block(logical).csr);
    std::int64_t refolded = 0;
    for (const DeltaLogPage& p : dead_log.pages()) {
      if (p.seq > applied_seq_) break;
      for (const EdgeDelta& d : p.decode()) {
        overlays_[static_cast<std::size_t>(logical)].apply(
            d.row - base_.block(logical).rlo, d.col, d.val,
            d.op == DeltaOp::kInsert);
        ++refolded;
      }
    }
    // 5. Charge the restore: the adopted host pulls the base block and
    //    the mirror bytes from the buddy (a local read after a degraded
    //    remap — the point of degrading onto the buddy) and streams the
    //    refold.
    const std::int64_t pulled =
        static_cast<std::int64_t>(mb.bytes.size()) + replayed_bytes;
    PGB_TRACE_SPAN(grid_, "ingest.replay",
                   {{"locale", std::to_string(logical)},
                    {"pages", std::to_string(rr.pages.size())},
                    {"bytes", std::to_string(pulled)}});
    grid_.coforall_locales([&](LocaleCtx& ctx) {
      if (ctx.locale() != logical) return;
      ctx.remote_bulk(buddy, pulled);
      CostVector c;
      c.add(CostKind::kStreamBytes, static_cast<double>(pulled));
      c.add(CostKind::kCpuOps, 24.0 * static_cast<double>(refolded));
      ctx.parallel_region(c);
    });
    ++stats_.replays;
    stats_.pages_replayed += static_cast<std::int64_t>(rr.pages.size());
    stats_.pages_discarded += rr.pages_discarded;
    auto& mx = grid_.metrics();
    mx.counter("ingest.replays").inc();
    mx.counter("ingest.pages_replayed")
        .inc(static_cast<std::int64_t>(rr.pages.size()));
    mx.counter("ingest.pages_discarded").inc(rr.pages_discarded);
    if (elog_ != nullptr) {
      elog_->emit(grid_.time(), "ingest.replay",
                  {{"locale", ev_int(logical)},
                   {"pages", ev_int(static_cast<std::int64_t>(rr.pages.size()))},
                   {"discarded_pages", ev_int(rr.pages_discarded)},
                   {"discarded_bytes", ev_int(rr.bytes_discarded)},
                   {"torn", ev_int(rr.torn_tail ? 1 : 0)},
                   {"durable_seq", ev_int(acked_seq_)}});
    }
  }

  /// Swaps the base to the just-published matrix, truncates the folded
  /// log prefix (and the mirrors with it), and re-replicates the
  /// changed base blocks to the buddies.
  void compact(const DistCsr<double>& g) {
    const int n = grid_.num_locales();
    PGB_TRACE_SPAN(grid_, "ingest.compact",
                   {{"seq", std::to_string(acked_seq_)}});
    base_ = g;
    for (int l = 0; l < n; ++l) {
      overlays_[static_cast<std::size_t>(l)].rebase(&base_.block(l).csr);
      logs_[static_cast<std::size_t>(l)].truncate_through(acked_seq_);
      mirror_[static_cast<std::size_t>(l)] =
          logs_[static_cast<std::size_t>(l)].serialize();
    }
    replicate_base();
    ++stats_.compactions;
    grid_.metrics().counter("ingest.compactions").inc();
  }

  LocaleGrid& grid_;
  GraphStore& store_;
  GraphStore::HandleId h_;
  DistCsr<double> base_;  ///< last compacted base (the primary copy)
  IngestOptions opt_;
  ServiceEventLog* elog_ = nullptr;

  std::vector<CsrOverlay<double>> overlays_;  ///< pending deltas per block
  std::vector<DeltaLog> logs_;                ///< primary per-locale logs
  /// Buddy-held mirror of each locale's log (flat frame bytes,
  /// physically distinct from the primary pages — replay parses these).
  std::vector<std::vector<unsigned char>> mirror_;
  /// Buddy-held checksummed copy of each locale's base block.
  std::vector<CheckpointBlock> base_mirror_;
  std::vector<std::vector<RoutedDelta>> staged_;  ///< per-apply scratch

  std::int64_t acked_seq_ = 0;    ///< last durable (acknowledged) batch
  std::int64_t applied_seq_ = 0;  ///< last batch folded into the overlays
  IngestStats stats_;
};

}  // namespace pgb
