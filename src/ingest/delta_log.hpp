// Replicated, checksummed delta log for streaming graph ingestion.
//
// A MutationBatch is a sequence-numbered block of edge inserts/deletes
// guarded by an FNV-1a checksum (fault/checkpoint.hpp's hash). Owner
// locales append their slice of each batch to a per-locale DeltaLog as
// one *page* — a framed, self-checksummed record — and mirror the frame
// bytes to the PR-5 buddy locale before the batch is acknowledged.
// The write-ahead contract: once a batch is acked, every page it wrote
// is replayable from the buddy's mirror; before the ack, a kill may
// leave a torn tail, and replay must detect it by checksum and discard
// exactly the unacknowledged suffix.
//
// Frame format (little-endian host layout, 32-byte header):
//   [seq:i64][count:i64][len:i64][checksum:u64][payload: len bytes]
// The checksum covers seq, count, and the payload, so a frame spliced
// from two writes (torn mid-page) or bit-flipped in flight fails closed.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "fault/checkpoint.hpp"
#include "runtime/dist.hpp"
#include "util/error.hpp"

namespace pgb {

/// Extends an FNV-1a hash over another byte range (same constants as
/// fnv1a in fault/checkpoint.hpp, resumable).
inline std::uint64_t fnv1a_extend(std::uint64_t h, const void* data,
                                  std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

enum class DeltaOp : std::int32_t {
  kInsert = 0,  ///< insert or overwrite the edge's value
  kDelete = 1,  ///< remove the edge (no-op when absent)
};

/// One edge mutation against the global graph.
struct EdgeDelta {
  Index row = 0;
  Index col = 0;
  double val = 0.0;
  DeltaOp op = DeltaOp::kInsert;
};

/// Serialized size of one delta (explicit per-field layout: no struct
/// padding leaks into checksums or mirrors).
inline constexpr std::int64_t kEdgeDeltaBytes = 8 + 8 + 8 + 4;

inline void delta_append(std::vector<unsigned char>& out, const EdgeDelta& d) {
  const auto put = [&out](const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    out.insert(out.end(), b, b + n);
  };
  put(&d.row, sizeof(d.row));
  put(&d.col, sizeof(d.col));
  put(&d.val, sizeof(d.val));
  const std::int32_t op = static_cast<std::int32_t>(d.op);
  put(&op, sizeof(op));
}

inline EdgeDelta delta_read(const unsigned char* p) {
  EdgeDelta d;
  std::memcpy(&d.row, p, 8);
  std::memcpy(&d.col, p + 8, 8);
  std::memcpy(&d.val, p + 16, 8);
  std::int32_t op = 0;
  std::memcpy(&op, p + 24, 4);
  d.op = static_cast<DeltaOp>(op);
  return d;
}

/// A sequence-numbered batch of mutations with a whole-batch checksum.
/// The producer stamps it; routing re-verifies before any page is cut.
struct MutationBatch {
  std::int64_t seq = 0;
  std::vector<EdgeDelta> deltas;
  std::uint64_t checksum = 0;

  std::uint64_t compute_checksum() const {
    std::uint64_t h = 1469598103934665603ull;
    h = fnv1a_extend(h, &seq, sizeof(seq));
    std::vector<unsigned char> buf;
    buf.reserve(static_cast<std::size_t>(kEdgeDeltaBytes));
    for (const EdgeDelta& d : deltas) {
      buf.clear();
      delta_append(buf, d);
      h = fnv1a_extend(h, buf.data(), buf.size());
    }
    return h;
  }
  void stamp() { checksum = compute_checksum(); }
  bool valid() const { return checksum == compute_checksum(); }
};

/// One framed page of a per-locale delta log: the slice of one batch
/// owned by one locale. Pages are what travel to the buddy mirror and
/// what replay verifies.
struct DeltaLogPage {
  std::int64_t seq = -1;
  std::int64_t count = 0;
  std::vector<unsigned char> payload;  ///< count serialized EdgeDeltas
  std::uint64_t checksum = 0;

  static DeltaLogPage encode(std::int64_t seq,
                             const std::vector<EdgeDelta>& deltas) {
    DeltaLogPage p;
    p.seq = seq;
    p.count = static_cast<std::int64_t>(deltas.size());
    p.payload.reserve(deltas.size() *
                      static_cast<std::size_t>(kEdgeDeltaBytes));
    for (const EdgeDelta& d : deltas) delta_append(p.payload, d);
    p.stamp();
    return p;
  }

  std::uint64_t compute_checksum() const {
    std::uint64_t h = 1469598103934665603ull;
    h = fnv1a_extend(h, &seq, sizeof(seq));
    h = fnv1a_extend(h, &count, sizeof(count));
    h = fnv1a_extend(h, payload.data(), payload.size());
    return h;
  }
  void stamp() { checksum = compute_checksum(); }
  bool valid() const {
    return checksum == compute_checksum() &&
           static_cast<std::int64_t>(payload.size()) ==
               count * kEdgeDeltaBytes;
  }

  std::vector<EdgeDelta> decode() const {
    PGB_REQUIRE(valid(), "delta log: decode of an invalid page");
    std::vector<EdgeDelta> out;
    out.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
      out.push_back(delta_read(payload.data() + i * kEdgeDeltaBytes));
    }
    return out;
  }

  /// Bytes of the page as framed on the wire / in the mirror.
  std::int64_t frame_bytes() const {
    return 32 + static_cast<std::int64_t>(payload.size());
  }
};

inline constexpr std::int64_t kPageHeaderBytes = 32;

/// Appends a page's frame to a flat byte stream (the mirror format).
inline void frame_append(std::vector<unsigned char>& out,
                         const DeltaLogPage& p) {
  const auto put = [&out](const void* q, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(q);
    out.insert(out.end(), b, b + n);
  };
  const std::int64_t len = static_cast<std::int64_t>(p.payload.size());
  put(&p.seq, sizeof(p.seq));
  put(&p.count, sizeof(p.count));
  put(&len, sizeof(len));
  put(&p.checksum, sizeof(p.checksum));
  out.insert(out.end(), p.payload.begin(), p.payload.end());
}

/// One locale's delta log: pages in ascending batch-sequence order.
class DeltaLog {
 public:
  void append(DeltaLogPage p) {
    PGB_REQUIRE(pages_.empty() || p.seq > pages_.back().seq,
                "delta log: page sequence numbers must increase");
    bytes_ += p.frame_bytes();
    pages_.push_back(std::move(p));
  }

  /// Drops every page with seq > `seq` (rollback of an unacked suffix).
  void truncate_after(std::int64_t seq) {
    while (!pages_.empty() && pages_.back().seq > seq) {
      bytes_ -= pages_.back().frame_bytes();
      pages_.pop_back();
    }
  }

  /// Drops every page with seq <= `seq` (compaction of the folded
  /// prefix).
  void truncate_through(std::int64_t seq) {
    std::size_t n = 0;
    while (n < pages_.size() && pages_[n].seq <= seq) {
      bytes_ -= pages_[n].frame_bytes();
      ++n;
    }
    pages_.erase(pages_.begin(), pages_.begin() + static_cast<std::ptrdiff_t>(n));
  }

  void clear() {
    pages_.clear();
    bytes_ = 0;
  }

  const std::vector<DeltaLogPage>& pages() const { return pages_; }
  std::int64_t size() const { return static_cast<std::int64_t>(pages_.size()); }
  std::int64_t bytes() const { return bytes_; }
  std::int64_t last_seq() const {
    return pages_.empty() ? -1 : pages_.back().seq;
  }

  /// The mirror wire format: every page's frame, concatenated.
  std::vector<unsigned char> serialize() const {
    std::vector<unsigned char> out;
    out.reserve(static_cast<std::size_t>(bytes_));
    for (const DeltaLogPage& p : pages_) frame_append(out, p);
    return out;
  }

 private:
  std::vector<DeltaLogPage> pages_;
  std::int64_t bytes_ = 0;
};

/// Outcome of replaying a mirrored log byte stream.
struct ReplayResult {
  std::vector<DeltaLogPage> pages;    ///< intact, durable pages in order
  std::int64_t bytes_consumed = 0;    ///< prefix accepted
  std::int64_t bytes_discarded = 0;   ///< torn/corrupt/unacked suffix dropped
  std::int64_t pages_discarded = 0;   ///< parseable frames dropped (unacked)
  std::int64_t last_seq = -1;         ///< highest replayed sequence number
  bool torn_tail = false;  ///< stopped on a truncated or corrupt frame
                           ///< (vs a clean stop at the durable boundary)
};

/// Walks a mirrored log byte stream and returns the replayable prefix:
/// frames are accepted in order while (a) the frame is complete, (b) its
/// checksum verifies, and (c) its sequence number is <= `durable_seq`
/// (the last acknowledged batch). The first violation stops the walk —
/// everything after is the discarded suffix. Never throws: a torn or
/// corrupt tail is an expected artifact of a kill mid-batch, not a
/// programming error.
inline ReplayResult replay_log_bytes(const unsigned char* data, std::size_t n,
                                     std::int64_t durable_seq) {
  ReplayResult r;
  std::size_t off = 0;
  bool stopped = false;
  while (off + static_cast<std::size_t>(kPageHeaderBytes) <= n) {
    DeltaLogPage p;
    std::int64_t len = 0;
    std::memcpy(&p.seq, data + off, 8);
    std::memcpy(&p.count, data + off + 8, 8);
    std::memcpy(&len, data + off + 16, 8);
    std::memcpy(&p.checksum, data + off + 24, 8);
    if (len < 0 || p.count < 0 ||
        off + static_cast<std::size_t>(kPageHeaderBytes) +
                static_cast<std::size_t>(len) > n) {
      r.torn_tail = true;  // truncated frame: a torn tail write
      stopped = true;
      break;
    }
    p.payload.assign(data + off + kPageHeaderBytes,
                     data + off + kPageHeaderBytes + len);
    if (!p.valid()) {
      r.torn_tail = true;  // checksum mismatch: corrupt frame
      stopped = true;
      break;
    }
    if (p.seq > durable_seq) {
      // Intact but never acknowledged: the write-ahead contract only
      // covers acked batches, so the suffix is dropped wholesale.
      ++r.pages_discarded;
      stopped = true;
      break;
    }
    off += static_cast<std::size_t>(p.frame_bytes());
    r.last_seq = p.seq;
    r.pages.push_back(std::move(p));
  }
  // Trailing bytes too short to even hold a frame header are a torn
  // partial write, same as a frame cut mid-payload.
  if (!stopped && off < n) r.torn_tail = true;
  r.bytes_consumed = static_cast<std::int64_t>(off);
  r.bytes_discarded = static_cast<std::int64_t>(n - off);
  return r;
}

/// Seeded mutation-stream generator (splitmix64, same convention as the
/// pgb_serve workload RNG): the batch stream is a pure function of the
/// seed, so fault-free and kill runs ingest identical deltas.
struct IngestMix {
  std::int64_t insert = 1;
  std::int64_t erase = 0;
  std::int64_t total() const { return insert + erase; }
};

struct MutationRng {
  std::uint64_t s;
  std::uint64_t next() {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

/// Draws one batch of `count` mutations over an n-vertex graph. With
/// `symmetric`, each drawn edge contributes both (r, c) and (c, r) —
/// the undirected update model the incremental CC path needs.
inline MutationBatch make_mutation_batch(MutationRng& rng, Index n, int count,
                                         const IngestMix& mix,
                                         std::int64_t seq,
                                         bool symmetric = false) {
  PGB_REQUIRE(n > 0, "ingest: mutation stream needs a non-empty graph");
  PGB_REQUIRE(count >= 1, "ingest: batch size must be >= 1");
  PGB_REQUIRE(mix.insert >= 0 && mix.erase >= 0 && mix.total() > 0,
              "ingest: mix weights must be >= 0 with positive total");
  MutationBatch b;
  b.seq = seq;
  b.deltas.reserve(static_cast<std::size_t>(count) * (symmetric ? 2 : 1));
  for (int i = 0; i < count; ++i) {
    EdgeDelta d;
    d.row = static_cast<Index>(rng.next() % static_cast<std::uint64_t>(n));
    d.col = static_cast<Index>(rng.next() % static_cast<std::uint64_t>(n));
    const std::int64_t w = static_cast<std::int64_t>(
        rng.next() % static_cast<std::uint64_t>(mix.total()));
    d.op = w < mix.insert ? DeltaOp::kInsert : DeltaOp::kDelete;
    // Quantized weight in (0, 1]: bit-stable across platforms.
    d.val = static_cast<double>(1 + rng.next() % 1000) / 1000.0;
    b.deltas.push_back(d);
    if (symmetric && d.row != d.col) {
      EdgeDelta m = d;
      m.row = d.col;
      m.col = d.row;
      b.deltas.push_back(m);
    }
  }
  b.stamp();
  return b;
}

}  // namespace pgb
