// Betweenness centrality (Brandes' algorithm) in the language of linear
// algebra — the flagship "non-trivial algorithm on a non-Boolean
// semiring" of the GraphBLAS canon (cf. LAGraph's batched BC):
//
//   forward:  BFS waves with path counting — sigma accumulates the
//             number of shortest paths per vertex, one masked vxm on the
//             (plus, times) semiring per level;
//   backward: dependency accumulation — delta flows one level at a time
//             through A^T, scaled by sigma.
//
// Exact per-source; `betweenness` sums contributions over a set of
// source vertices (all n sources = exact BC; a sample = the standard
// approximation).
#pragma once

#include <vector>

#include "core/ops.hpp"
#include "core/spmv.hpp"
#include "core/transpose.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/dist_dense_vec.hpp"

namespace pgb {

namespace detail {

/// Adds source s's Brandes dependencies into `bc`. `at` is A^T.
template <typename T>
void bc_accumulate_source(const DistCsr<T>& a, const DistCsr<T>& at,
                          Index s, std::vector<double>& bc) {
  auto& grid = a.grid();
  const Index n = a.nrows();

  // Forward phase: levels + path counts, dense-vector formulation (one
  // frontier indicator and one sigma accumulator; waves saved per level).
  std::vector<double> sigma(static_cast<std::size_t>(n), 0.0);
  std::vector<Index> level(static_cast<std::size_t>(n), -1);
  sigma[static_cast<std::size_t>(s)] = 1.0;
  level[static_cast<std::size_t>(s)] = 0;

  std::vector<std::vector<Index>> waves{{s}};
  DistDenseVec<double> frontier(grid, n, 0.0);
  frontier.at(s) = 1.0;

  const auto sr = arithmetic_semiring<double>();
  for (Index depth = 1;; ++depth) {
    // paths[c] = sum over frontier rows r of sigma-weighted edges.
    DistDenseVec<double> paths = spmv(a, frontier, sr);
    std::vector<Index> wave;
    frontier.fill(0.0);
    for (int l = 0; l < grid.num_locales(); ++l) {
      const auto& lp = paths.local(l);
      for (Index v = lp.lo(); v < lp.hi(); ++v) {
        if (lp[v] != 0.0 && level[static_cast<std::size_t>(v)] < 0) {
          level[static_cast<std::size_t>(v)] = depth;
          sigma[static_cast<std::size_t>(v)] = lp[v];
          frontier.at(v) = lp[v];
          wave.push_back(v);
        }
      }
    }
    if (wave.empty()) break;
    waves.push_back(std::move(wave));
  }

  // Backward phase: delta[v] = sum over successors w on shortest paths
  // of sigma[v]/sigma[w] * (1 + delta[w]), one SpMV through A^T per
  // level, deepest first.
  std::vector<double> delta(static_cast<std::size_t>(n), 0.0);
  DistDenseVec<double> carry(grid, n, 0.0);
  for (std::size_t t = waves.size(); t-- > 1;) {
    // carry[w] = (1 + delta[w]) / sigma[w] for wave-t vertices.
    carry.fill(0.0);
    for (Index w : waves[t]) {
      carry.at(w) = (1.0 + delta[static_cast<std::size_t>(w)]) /
                    sigma[static_cast<std::size_t>(w)];
    }
    DistDenseVec<double> pulled = spmv(at, carry, sr);
    for (Index v : waves[t - 1]) {
      delta[static_cast<std::size_t>(v)] +=
          sigma[static_cast<std::size_t>(v)] *
          pulled.at(v);
    }
  }
  for (Index v = 0; v < n; ++v) {
    if (v != s) bc[static_cast<std::size_t>(v)] += delta[static_cast<std::size_t>(v)];
  }
}

}  // namespace detail

/// Betweenness centrality accumulated over the given sources. For exact
/// BC pass every vertex; for the standard approximation pass a sample.
template <typename T>
std::vector<double> betweenness(const DistCsr<T>& a,
                                const std::vector<Index>& sources) {
  PGB_REQUIRE_SHAPE(a.nrows() == a.ncols(), "bc: matrix must be square");
  std::vector<double> bc(static_cast<std::size_t>(a.nrows()), 0.0);
  const DistCsr<T> at = transpose_dist(a);
  for (Index s : sources) {
    PGB_REQUIRE(s >= 0 && s < a.nrows(), "bc: bad source vertex");
    detail::bc_accumulate_source(a, at, s, bc);
  }
  return bc;
}

}  // namespace pgb
