// Breadth-first search in the language of linear algebra — "often the
// 'hello world' example of GraphBLAS" (paper Section III). The paper's
// four operations were chosen precisely so they compose into this:
//
//   per level:
//     frontier values <- their own vertex ids        (Apply-style pass)
//     y  <- frontier . A  on the (min, select1st) semiring   (SpMSpV)
//     y  <- y filtered by NOT visited                (mask / eWiseMult)
//     parents[y's indices] <- y's values             (Assign-style pass)
//     visited |= y's pattern; frontier <- y
#pragma once

#include <string>
#include <vector>

#include "core/descriptor.hpp"
#include "core/kernel_costs.hpp"
#include "core/mask.hpp"
#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "core/spmspv_multi.hpp"
#include "obs/span.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/dist_dense_vec.hpp"
#include "sparse/dist_sparse_vec.hpp"

namespace pgb {

struct BfsResult {
  /// parent[v] = BFS-tree parent of v (source's parent is itself);
  /// -1 for unreached vertices.
  std::vector<Index> parent;
  /// Number of vertices discovered at each level (level 0 = source).
  std::vector<Index> level_sizes;
};

/// The loop state of one BFS traversal, exposed so the recovery driver
/// (fault/recovery.hpp via algo/algo_recovery.hpp) can snapshot it
/// between levels and rebuild it after a locale failure. `bfs()` below
/// is exactly bfs_init + bfs_step-until-done.
template <typename T>
struct BfsState {
  DistDenseVec<std::uint8_t> visited;
  DistSparseVec<T> frontier;
  BfsResult res;
  Index level = 0;
  bool done = false;
};

template <typename T>
BfsState<T> bfs_init(const DistCsr<T>& a, Index source) {
  PGB_REQUIRE_SHAPE(a.nrows() == a.ncols(), "bfs: matrix must be square");
  PGB_REQUIRE(source >= 0 && source < a.nrows(), "bfs: bad source vertex");
  auto& grid = a.grid();
  const Index n = a.nrows();

  BfsState<T> st{DistDenseVec<std::uint8_t>(grid, n, 0),
                 DistSparseVec<T>::from_sorted(grid, n, {source},
                                               {static_cast<T>(source)}),
                 {}, 0, false};
  st.res.parent.assign(static_cast<std::size_t>(n), Index{-1});
  st.res.parent[static_cast<std::size_t>(source)] = source;
  st.visited.at(source) = 1;
  st.res.level_sizes.push_back(1);

  grid.metrics().counter("algo.calls", {{"algo", "bfs"}}).inc();
  return st;
}

/// Advances one BFS level; sets st.done when the traversal is finished.
template <typename T>
void bfs_step(const DistCsr<T>& a, BfsState<T>& st,
              const SpmspvOptions& opt = {}) {
  auto& grid = a.grid();
  if (st.frontier.nnz() == 0) {
    st.done = true;
    return;
  }
  ++st.level;
  PGB_TRACE_SPAN(grid, "bfs.level",
                 {{"level", std::to_string(st.level)},
                  {"frontier", std::to_string(st.frontier.nnz())}});
  grid.metrics().counter("algo.iterations", {{"algo", "bfs"}}).inc();
  // Frontier values carry the discovering vertex: x[r] = r.
  grid.coforall_locales([&](LocaleCtx& ctx) {
    auto& lf = st.frontier.local(ctx.locale());
    for (Index p = 0; p < lf.nnz(); ++p) {
      lf.value_at(p) = static_cast<T>(lf.index_at(p));
    }
    CostVector c;
    c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(lf.nnz()));
    c.add(CostKind::kCpuOps,
          kApplyOpsPerElem * static_cast<double>(lf.nnz()));
    ctx.parallel_region(c);
  });

  // Fused masked vxm: unvisited-only outputs are built directly at
  // their owners (the paper's future-work "masks in distributed
  // memory").
  const auto sr = min_first_semiring<T>();
  DistSparseVec<T> fresh = spmspv_dist_masked(
      a, st.frontier, st.visited, MaskMode::kComplement, sr, opt);
  if (fresh.nnz() == 0) {
    st.done = true;
    return;
  }

  // Record parents and extend the visited set.
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const auto& lf = fresh.local(ctx.locale());
    for (Index p = 0; p < lf.nnz(); ++p) {
      st.res.parent[static_cast<std::size_t>(lf.index_at(p))] =
          static_cast<Index>(lf.value_at(p));
    }
    CostVector c;
    c.add(CostKind::kRandAccess, static_cast<double>(lf.nnz()));
    c.add(CostKind::kCpuOps, 20.0 * static_cast<double>(lf.nnz()));
    ctx.parallel_region(c);
  });
  mask_union(st.visited, fresh);

  st.res.level_sizes.push_back(fresh.nnz());
  st.frontier = std::move(fresh);
}

/// Direction note: edges are matrix entries A[r, c] = edge r -> c; BFS
/// explores along edge direction (use a symmetric matrix for undirected
/// graphs).
///
/// The per-level frontier exchange is the masked SpMSpV below; its
/// gather/scatter schedule follows opt.comm, so
/// `opt.comm = CommMode::kAggregated` runs every level's frontier
/// exchange through the conveyor-style aggregators. Results are
/// identical across schedules.
template <typename T>
BfsResult bfs(const DistCsr<T>& a, Index source,
              const SpmspvOptions& opt = {}) {
  BfsState<T> st = bfs_init(a, source);
  while (!st.done) bfs_step(a, st, opt);
  return std::move(st.res);
}

// ---- Batched multi-source BFS (the service front end's fused wave) ----
//
// k independent traversals stepped in lockstep: each level's frontier
// exchange for every still-active lane rides ONE fused multi-frontier
// SpMSpV (core/spmspv_multi.hpp), so the comm schedule is priced and
// paid once per level instead of once per lane. Each lane's state
// evolves through exactly the solo bfs_init/bfs_step transformations —
// same frontier values, same mask, same per-owner finalize — so every
// lane's BfsResult is byte-identical to a solo bfs() from its source.

/// k lane states plus a batch-level done flag. A lane finishes on its
/// own schedule (its frontier drains); the batch finishes when every
/// lane has.
template <typename T>
struct BfsBatchState {
  std::vector<BfsState<T>> lanes;
  bool done = false;
};

template <typename T>
BfsBatchState<T> bfs_batch_init(const DistCsr<T>& a,
                                const std::vector<Index>& sources) {
  PGB_REQUIRE(!sources.empty(), "bfs_batch: need at least one source");
  BfsBatchState<T> st;
  st.lanes.reserve(sources.size());
  for (Index s : sources) st.lanes.push_back(bfs_init(a, s));
  a.grid().metrics().counter("algo.calls", {{"algo", "bfs.batch"}}).inc();
  return st;
}

/// Advances every still-active lane one level through one fused wave.
template <typename T>
void bfs_batch_step(const DistCsr<T>& a, BfsBatchState<T>& st,
                    const SpmspvOptions& opt = {}) {
  auto& grid = a.grid();
  std::vector<int> act;
  for (int q = 0; q < static_cast<int>(st.lanes.size()); ++q) {
    auto& ln = st.lanes[static_cast<std::size_t>(q)];
    if (ln.done) continue;
    if (ln.frontier.nnz() == 0) {
      ln.done = true;
      continue;
    }
    act.push_back(q);
  }
  if (act.empty()) {
    st.done = true;
    return;
  }
  PGB_TRACE_SPAN(grid, "bfs.batch.level",
                 {{"width", std::to_string(act.size())}});
  grid.metrics().counter("algo.iterations", {{"algo", "bfs.batch"}}).inc();
  // Per-query level spans: when the service executor bound the batch
  // lanes to query trace tracks, each active lane gets one "query.level"
  // span covering this fused wave, tagged with the lane's own frontier
  // and the wave's comm delta.
  obs::TraceSession* qtrace = grid.trace_session();
  const bool lane_trace = qtrace != nullptr && qtrace->has_lane_tracks();
  double q_t0 = 0.0;
  std::int64_t q_m0 = 0, q_b0 = 0;
  std::vector<Index> q_frontier;
  if (lane_trace) {
    q_t0 = grid.time();
    const CommStats cs = grid.comm_stats();
    q_m0 = cs.messages;
    q_b0 = cs.bytes;
    for (int q : act) {
      q_frontier.push_back(
          st.lanes[static_cast<std::size_t>(q)].frontier.nnz());
    }
  }
  // Per lane: the solo value-write pass (frontier values carry the
  // discovering vertex), charged per lane inside one locale loop.
  grid.coforall_locales([&](LocaleCtx& ctx) {
    for (int q : act) {
      auto& lf = st.lanes[static_cast<std::size_t>(q)].frontier.local(
          ctx.locale());
      for (Index p = 0; p < lf.nnz(); ++p) {
        lf.value_at(p) = static_cast<T>(lf.index_at(p));
      }
      CostVector c;
      c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(lf.nnz()));
      c.add(CostKind::kCpuOps,
            kApplyOpsPerElem * static_cast<double>(lf.nnz()));
      ctx.parallel_region(c);
    }
  });

  const auto sr = min_first_semiring<T>();
  std::vector<const DistSparseVec<T>*> xs;
  std::vector<const DistDenseVec<std::uint8_t>*> masks;
  xs.reserve(act.size());
  masks.reserve(act.size());
  for (int q : act) {
    auto& ln = st.lanes[static_cast<std::size_t>(q)];
    ++ln.level;
    xs.push_back(&ln.frontier);
    masks.push_back(&ln.visited);
  }
  std::vector<DistSparseVec<T>> fresh =
      spmspv_dist_multi(a, xs, masks, MaskMode::kComplement, sr, opt);

  std::vector<int> live;  // positions in act whose lane found new vertices
  for (int i = 0; i < static_cast<int>(act.size()); ++i) {
    if (fresh[static_cast<std::size_t>(i)].nnz() == 0) {
      st.lanes[static_cast<std::size_t>(act[static_cast<std::size_t>(i)])]
          .done = true;
    } else {
      live.push_back(i);
    }
  }
  if (!live.empty()) {
    grid.coforall_locales([&](LocaleCtx& ctx) {
      for (int i : live) {
        auto& ln = st.lanes[static_cast<std::size_t>(
            act[static_cast<std::size_t>(i)])];
        const auto& lf =
            fresh[static_cast<std::size_t>(i)].local(ctx.locale());
        for (Index p = 0; p < lf.nnz(); ++p) {
          ln.res.parent[static_cast<std::size_t>(lf.index_at(p))] =
              static_cast<Index>(lf.value_at(p));
        }
        CostVector c;
        c.add(CostKind::kRandAccess, static_cast<double>(lf.nnz()));
        c.add(CostKind::kCpuOps, 20.0 * static_cast<double>(lf.nnz()));
        ctx.parallel_region(c);
      }
    });
    for (int i : live) {
      auto& ln =
          st.lanes[static_cast<std::size_t>(act[static_cast<std::size_t>(i)])];
      auto& fr = fresh[static_cast<std::size_t>(i)];
      mask_union(ln.visited, fr);
      ln.res.level_sizes.push_back(fr.nnz());
      ln.frontier = std::move(fr);
    }
  }
  if (lane_trace) {
    const double q_t1 = grid.time();
    const CommStats cs = grid.comm_stats();
    const std::string d_msgs = std::to_string(cs.messages - q_m0);
    const std::string d_bytes = std::to_string(cs.bytes - q_b0);
    const std::string width = std::to_string(act.size());
    for (std::size_t i = 0; i < act.size(); ++i) {
      const int tr = qtrace->lane_track(act[i]);
      if (tr < 0) continue;
      const auto& ln = st.lanes[static_cast<std::size_t>(act[i])];
      qtrace->begin_span(tr, "query.level", q_t0,
                         {{"level", std::to_string(ln.level)},
                          {"frontier", std::to_string(q_frontier[i])},
                          {"width", width}});
      qtrace->end_span(tr, q_t1,
                       {{"d_messages", d_msgs}, {"d_bytes", d_bytes}});
    }
  }
}

/// Runs k BFS traversals through the fused per-level wave; out[i] is
/// byte-identical to bfs(a, sources[i], opt).
template <typename T>
std::vector<BfsResult> bfs_batch(const DistCsr<T>& a,
                                 const std::vector<Index>& sources,
                                 const SpmspvOptions& opt = {}) {
  BfsBatchState<T> st = bfs_batch_init(a, sources);
  while (!st.done) bfs_batch_step(a, st, opt);
  std::vector<BfsResult> out;
  out.reserve(st.lanes.size());
  for (auto& ln : st.lanes) out.push_back(std::move(ln.res));
  return out;
}

}  // namespace pgb
