// Recovery wrappers for the round-structured algorithms: BFS, SSSP, and
// pagerank expressed as RecoverableLoops over their *_init/*_step state
// machines (bfs.hpp, sssp.hpp, pagerank.hpp).
//
// Each algorithm has one loop *builder* (the serialization contract:
// which blocks make up its state) shared by two drivers:
//
//   *_with_recovery  checkpoint rollback to a stable store
//                    (fault/recovery.hpp) — restores everyone, replays
//                    up to checkpoint_every rounds;
//   *_with_rebuild   localized rebuild from in-memory replicas
//                    (fault/rebuild.hpp) — rebuilds only the dead
//                    locale's blocks onto a spare or, degraded, onto
//                    its buddy host, replaying at most one round.
//
// A wrapper run with a null plan (or a plan whose kills never fire) is
// the plain algorithm plus periodic checkpoint/replication charges; when
// a locale is killed mid-run, the driver restores and re-executes the
// lost rounds over bit-identical inputs, so the recovered result is
// bit-for-bit the fault-free result.
#pragma once

#include "algo/bfs.hpp"
#include "algo/pagerank.hpp"
#include "algo/sssp.hpp"
#include "fault/rebuild.hpp"
#include "fault/recovery.hpp"

namespace pgb {

/// Serialized size of the matrix's distributed blocks: what a
/// replacement locale must re-ship from the stable store on restore
/// (the matrix is static state, written once, never checkpointed again).
template <typename T>
std::int64_t matrix_static_bytes(const DistCsr<T>& a) {
  return a.nnz() * static_cast<std::int64_t>(sizeof(Index) + sizeof(T)) +
         (a.nrows() + 1) * static_cast<std::int64_t>(sizeof(Index));
}

// -- loop builders (the per-algorithm snapshot contracts) ----------------
// The matrix is captured by pointer: it must outlive the returned loop
// (every caller runs the loop inside the scope that owns the matrix).

template <typename T>
RecoverableLoop<BfsState<T>> bfs_recovery_loop(const DistCsr<T>& a,
                                               Index source,
                                               const SpmspvOptions& opt) {
  auto* ap = &a;
  auto& grid = a.grid();
  const Index n = a.nrows();
  RecoverableLoop<BfsState<T>> loop;
  loop.init = [ap, source] { return bfs_init(*ap, source); };
  loop.step = [ap, opt](BfsState<T>& st) { bfs_step(*ap, st, opt); };
  loop.done = [](const BfsState<T>& st) { return st.done; };
  loop.save = [](const BfsState<T>& st, Checkpoint& c) {
    c.put_dense("bfs.visited", st.visited);
    c.put_sparse("bfs.frontier", st.frontier);
    c.put_host("bfs.parent", st.res.parent);
    c.put_host("bfs.level_sizes", st.res.level_sizes);
    c.put_scalar("bfs.level", st.level);
    c.put_scalar("bfs.done", st.done);
  };
  loop.load = [&grid, n](const Checkpoint& c) {
    BfsState<T> st{DistDenseVec<std::uint8_t>(grid, n, 0),
                   DistSparseVec<T>(grid, n), {}, 0, false};
    c.get_dense("bfs.visited", st.visited);
    c.get_sparse("bfs.frontier", st.frontier);
    st.res.parent = c.get_host<Index>("bfs.parent");
    st.res.level_sizes = c.get_host<Index>("bfs.level_sizes");
    st.level = c.get_scalar<Index>("bfs.level");
    st.done = c.get_scalar<bool>("bfs.done");
    return st;
  };
  return loop;
}

/// Batched-BFS snapshot contract: the per-lane blocks under lane-indexed
/// keys ("bfsb.<q>.visited", ...) plus the batch width, so a rebuild
/// mid-batch restores every lane and the fused wave replays bit-identical
/// to the fault-free batch.
template <typename T>
RecoverableLoop<BfsBatchState<T>> bfs_batch_recovery_loop(
    const DistCsr<T>& a, const std::vector<Index>& sources,
    const SpmspvOptions& opt) {
  auto* ap = &a;
  auto& grid = a.grid();
  const Index n = a.nrows();
  RecoverableLoop<BfsBatchState<T>> loop;
  loop.init = [ap, sources] { return bfs_batch_init(*ap, sources); };
  loop.step = [ap, opt](BfsBatchState<T>& st) { bfs_batch_step(*ap, st, opt); };
  loop.done = [](const BfsBatchState<T>& st) { return st.done; };
  loop.save = [](const BfsBatchState<T>& st, Checkpoint& c) {
    c.put_scalar("bfsb.width",
                 static_cast<Index>(st.lanes.size()));
    c.put_scalar("bfsb.done", st.done);
    for (std::size_t q = 0; q < st.lanes.size(); ++q) {
      const auto& ln = st.lanes[q];
      const std::string p = "bfsb." + std::to_string(q) + ".";
      c.put_dense(p + "visited", ln.visited);
      c.put_sparse(p + "frontier", ln.frontier);
      c.put_host(p + "parent", ln.res.parent);
      c.put_host(p + "level_sizes", ln.res.level_sizes);
      c.put_scalar(p + "level", ln.level);
      c.put_scalar(p + "done", ln.done);
    }
  };
  loop.load = [&grid, n](const Checkpoint& c) {
    BfsBatchState<T> st;
    const auto width = c.get_scalar<Index>("bfsb.width");
    st.done = c.get_scalar<bool>("bfsb.done");
    st.lanes.reserve(static_cast<std::size_t>(width));
    for (Index q = 0; q < width; ++q) {
      const std::string p = "bfsb." + std::to_string(q) + ".";
      BfsState<T> ln{DistDenseVec<std::uint8_t>(grid, n, 0),
                     DistSparseVec<T>(grid, n), {}, 0, false};
      c.get_dense(p + "visited", ln.visited);
      c.get_sparse(p + "frontier", ln.frontier);
      ln.res.parent = c.get_host<Index>(p + "parent");
      ln.res.level_sizes = c.get_host<Index>(p + "level_sizes");
      ln.level = c.get_scalar<Index>(p + "level");
      ln.done = c.get_scalar<bool>(p + "done");
      st.lanes.push_back(std::move(ln));
    }
    return st;
  };
  return loop;
}

/// Batched-SSSP snapshot contract, mirroring bfs_batch_recovery_loop:
/// per-lane blocks under "ssspb.<q>." keys plus the batch width, so a
/// kill mid-batch rebuilds every lane and the fused relaxation wave
/// replays bit-identical to the fault-free batch.
template <typename T>
RecoverableLoop<SsspBatchState> sssp_batch_recovery_loop(
    const DistCsr<T>& a, const std::vector<Index>& sources,
    const SpmspvOptions& opt) {
  auto* ap = &a;
  auto& grid = a.grid();
  const Index n = a.nrows();
  RecoverableLoop<SsspBatchState> loop;
  loop.init = [ap, sources] { return sssp_batch_init(*ap, sources); };
  loop.step = [ap, opt](SsspBatchState& st) { sssp_batch_step(*ap, st, opt); };
  loop.done = [](const SsspBatchState& st) { return st.done; };
  loop.save = [](const SsspBatchState& st, Checkpoint& c) {
    c.put_scalar("ssspb.width", static_cast<Index>(st.lanes.size()));
    c.put_scalar("ssspb.done", st.done);
    for (std::size_t q = 0; q < st.lanes.size(); ++q) {
      const auto& ln = st.lanes[q];
      const std::string p = "ssspb." + std::to_string(q) + ".";
      c.put_dense(p + "dist", ln.dist);
      c.put_sparse(p + "frontier", ln.frontier);
      c.put_scalar(p + "rounds", ln.res.rounds);
      c.put_scalar(p + "done", ln.done);
    }
  };
  loop.load = [&grid, n](const Checkpoint& c) {
    SsspBatchState st;
    const auto width = c.get_scalar<Index>("ssspb.width");
    st.done = c.get_scalar<bool>("ssspb.done");
    st.lanes.reserve(static_cast<std::size_t>(width));
    for (Index q = 0; q < width; ++q) {
      const std::string p = "ssspb." + std::to_string(q) + ".";
      SsspState ln{DistDenseVec<double>(grid, n, SsspResult::kUnreachable),
                   DistSparseVec<double>(grid, n), {}, false};
      c.get_dense(p + "dist", ln.dist);
      c.get_sparse(p + "frontier", ln.frontier);
      ln.res.rounds = c.get_scalar<int>(p + "rounds");
      ln.done = c.get_scalar<bool>(p + "done");
      st.lanes.push_back(std::move(ln));
    }
    return st;
  };
  return loop;
}

template <typename T>
RecoverableLoop<SsspState> sssp_recovery_loop(const DistCsr<T>& a,
                                              Index source,
                                              const SpmspvOptions& opt) {
  auto* ap = &a;
  auto& grid = a.grid();
  const Index n = a.nrows();
  RecoverableLoop<SsspState> loop;
  loop.init = [ap, source] { return sssp_init(*ap, source); };
  loop.step = [ap, opt](SsspState& st) { sssp_step(*ap, st, opt); };
  loop.done = [](const SsspState& st) { return st.done; };
  loop.save = [](const SsspState& st, Checkpoint& c) {
    c.put_dense("sssp.dist", st.dist);
    c.put_sparse("sssp.frontier", st.frontier);
    c.put_scalar("sssp.rounds", st.res.rounds);
    c.put_scalar("sssp.done", st.done);
  };
  loop.load = [&grid, n](const Checkpoint& c) {
    SsspState st{DistDenseVec<double>(grid, n, SsspResult::kUnreachable),
                 DistSparseVec<double>(grid, n), {}, false};
    c.get_dense("sssp.dist", st.dist);
    c.get_sparse("sssp.frontier", st.frontier);
    st.res.rounds = c.get_scalar<int>("sssp.rounds");
    st.done = c.get_scalar<bool>("sssp.done");
    return st;
  };
  return loop;
}

template <typename T>
RecoverableLoop<PagerankState<T>> pagerank_recovery_loop(const DistCsr<T>& a,
                                                         double damping,
                                                         double tol,
                                                         int max_iters) {
  auto* ap = &a;
  auto& grid = a.grid();
  const Index n = a.nrows();
  RecoverableLoop<PagerankState<T>> loop;
  loop.init = [ap] { return pagerank_init(*ap); };
  loop.step = [ap, damping, tol, max_iters](PagerankState<T>& st) {
    pagerank_step(*ap, st, damping, tol, max_iters);
  };
  loop.done = [](const PagerankState<T>& st) { return st.done; };
  loop.save = [](const PagerankState<T>& st, Checkpoint& c) {
    c.put_dense("pagerank.deg", st.deg);
    c.put_dense("pagerank.rank", st.rank);
    c.put_scalar("pagerank.iterations", st.res.iterations);
    c.put_scalar("pagerank.residual", st.res.residual);
    c.put_scalar("pagerank.done", st.done);
  };
  loop.load = [&grid, n](const Checkpoint& c) {
    PagerankState<T> st{DistDenseVec<T>(grid, n, T{}),
                        DistDenseVec<double>(grid, n, 0.0), {}, false};
    c.get_dense("pagerank.deg", st.deg);
    c.get_dense("pagerank.rank", st.rank);
    st.res.iterations = c.get_scalar<int>("pagerank.iterations");
    st.res.residual = c.get_scalar<double>("pagerank.residual");
    st.done = c.get_scalar<bool>("pagerank.done");
    return st;
  };
  return loop;
}

// -- checkpoint-rollback drivers -----------------------------------------

template <typename T>
BfsResult bfs_with_recovery(const DistCsr<T>& a, Index source,
                            const SpmspvOptions& opt, FaultPlan* plan,
                            RecoveryOptions ropt = {},
                            RecoveryReport* report = nullptr) {
  if (ropt.static_bytes == 0) ropt.static_bytes = matrix_static_bytes(a);
  BfsState<T> st = run_with_recovery(
      a.grid(), plan, bfs_recovery_loop(a, source, opt), ropt, report);
  return std::move(st.res);
}

template <typename T>
SsspResult sssp_with_recovery(const DistCsr<T>& a, Index source,
                              const SpmspvOptions& opt, FaultPlan* plan,
                              RecoveryOptions ropt = {},
                              RecoveryReport* report = nullptr) {
  if (ropt.static_bytes == 0) ropt.static_bytes = matrix_static_bytes(a);
  SsspState st = run_with_recovery(
      a.grid(), plan, sssp_recovery_loop(a, source, opt), ropt, report);
  return sssp_finalize(st);
}

template <typename T>
PagerankResult pagerank_with_recovery(const DistCsr<T>& a, FaultPlan* plan,
                                      double damping = 0.85, double tol = 1e-8,
                                      int max_iters = 100,
                                      RecoveryOptions ropt = {},
                                      RecoveryReport* report = nullptr) {
  if (ropt.static_bytes == 0) ropt.static_bytes = matrix_static_bytes(a);
  PagerankState<T> st = run_with_recovery(
      a.grid(), plan, pagerank_recovery_loop<T>(a, damping, tol, max_iters),
      ropt, report);
  return pagerank_finalize(st);
}

// -- localized-rebuild drivers -------------------------------------------

template <typename T>
BfsResult bfs_with_rebuild(const DistCsr<T>& a, Index source,
                           const SpmspvOptions& opt, FaultPlan* plan,
                           RebuildOptions ropt = {},
                           RecoveryReport* report = nullptr) {
  if (ropt.replica.static_bytes == 0) {
    ropt.replica.static_bytes = matrix_static_bytes(a);
  }
  BfsState<T> st = run_with_rebuild(
      a.grid(), plan, bfs_recovery_loop(a, source, opt), ropt, report);
  return std::move(st.res);
}

/// Kill-mid-batch recovery for the service executor's fused BFS batch:
/// the whole batch state (every lane) is replicated/rebuilt as one loop,
/// and the recovered per-lane results are bit-for-bit the fault-free
/// batch's (which are themselves byte-identical to solo runs).
template <typename T>
std::vector<BfsResult> bfs_batch_with_rebuild(
    const DistCsr<T>& a, const std::vector<Index>& sources,
    const SpmspvOptions& opt, FaultPlan* plan, RebuildOptions ropt = {},
    RecoveryReport* report = nullptr) {
  if (ropt.replica.static_bytes == 0) {
    ropt.replica.static_bytes = matrix_static_bytes(a);
  }
  BfsBatchState<T> st = run_with_rebuild(
      a.grid(), plan, bfs_batch_recovery_loop(a, sources, opt), ropt, report);
  std::vector<BfsResult> out;
  out.reserve(st.lanes.size());
  for (auto& ln : st.lanes) out.push_back(std::move(ln.res));
  return out;
}

/// Kill-mid-batch recovery for the service executor's fused SSSP batch
/// (same contract as bfs_batch_with_rebuild: the whole batch rebuilds as
/// one loop, recovered lane distances are byte-identical to fault-free).
template <typename T>
std::vector<SsspResult> sssp_batch_with_rebuild(
    const DistCsr<T>& a, const std::vector<Index>& sources,
    const SpmspvOptions& opt, FaultPlan* plan, RebuildOptions ropt = {},
    RecoveryReport* report = nullptr) {
  if (ropt.replica.static_bytes == 0) {
    ropt.replica.static_bytes = matrix_static_bytes(a);
  }
  SsspBatchState st = run_with_rebuild(
      a.grid(), plan, sssp_batch_recovery_loop(a, sources, opt), ropt, report);
  std::vector<SsspResult> out;
  out.reserve(st.lanes.size());
  for (auto& ln : st.lanes) out.push_back(sssp_finalize(ln));
  return out;
}

template <typename T>
SsspResult sssp_with_rebuild(const DistCsr<T>& a, Index source,
                             const SpmspvOptions& opt, FaultPlan* plan,
                             RebuildOptions ropt = {},
                             RecoveryReport* report = nullptr) {
  if (ropt.replica.static_bytes == 0) {
    ropt.replica.static_bytes = matrix_static_bytes(a);
  }
  SsspState st = run_with_rebuild(
      a.grid(), plan, sssp_recovery_loop(a, source, opt), ropt, report);
  return sssp_finalize(st);
}

template <typename T>
PagerankResult pagerank_with_rebuild(const DistCsr<T>& a, FaultPlan* plan,
                                     double damping = 0.85, double tol = 1e-8,
                                     int max_iters = 100,
                                     RebuildOptions ropt = {},
                                     RecoveryReport* report = nullptr) {
  if (ropt.replica.static_bytes == 0) {
    ropt.replica.static_bytes = matrix_static_bytes(a);
  }
  PagerankState<T> st = run_with_rebuild(
      a.grid(), plan, pagerank_recovery_loop<T>(a, damping, tol, max_iters),
      ropt, report);
  return pagerank_finalize(st);
}

}  // namespace pgb
