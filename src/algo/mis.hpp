// Maximal independent set via Luby's algorithm in linear algebra: each
// round, every candidate vertex draws a random score; vertices whose
// score beats all candidate neighbors' scores (a neighbor-min SpMV on
// the (min, select1st) semiring) join the set, and they and their
// neighbors leave the candidate pool. Expected O(log n) rounds.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "core/ops.hpp"
#include "core/spmv.hpp"
#include "obs/span.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/dist_dense_vec.hpp"
#include "util/rng.hpp"

namespace pgb {

struct MisResult {
  std::vector<bool> in_set;
  int rounds = 0;
  Index set_size = 0;
};

/// Requires a symmetric adjacency matrix (undirected graph).
template <typename T>
MisResult mis(const DistCsr<T>& a, std::uint64_t seed = 1,
              int max_rounds = 200) {
  PGB_REQUIRE_SHAPE(a.nrows() == a.ncols(), "mis: matrix must be square");
  auto& grid = a.grid();
  const Index n = a.nrows();
  constexpr double kOut = std::numeric_limits<double>::max();

  // 0 = candidate, 1 = in set, 2 = excluded (neighbor of the set).
  DistDenseVec<std::uint8_t> state(grid, n, 0);
  MisResult res;

  grid.metrics().counter("algo.calls", {{"algo", "mis"}}).inc();
  Index candidates = n;
  while (candidates > 0 && res.rounds < max_rounds) {
    ++res.rounds;
    PGB_TRACE_SPAN(grid, "mis.round",
                   {{"round", std::to_string(res.rounds)},
                    {"candidates", std::to_string(candidates)}});
    grid.metrics().counter("algo.iterations", {{"algo", "mis"}}).inc();
    // Candidates draw scores; settled vertices sit at +inf.
    DistDenseVec<double> score(grid, n, kOut);
    grid.coforall_locales([&](LocaleCtx& ctx) {
      const int l = ctx.locale();
      auto& ls = score.local(l);
      const auto& lst = state.local(l);
      for (Index v = ls.lo(); v < ls.hi(); ++v) {
        if (lst[v] == 0) {
          Xoshiro256 rng(Xoshiro256::mix(
              seed, static_cast<std::uint64_t>(v) * 1000003u +
                        static_cast<std::uint64_t>(res.rounds)));
          // Tie-break by vertex id: strictly distinct scores.
          ls[v] = rng.next_double() + 1e-12 * static_cast<double>(v);
        }
      }
      CostVector c;
      c.add(CostKind::kCpuOps, 40.0 * static_cast<double>(ls.size()));
      c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(ls.size()));
      ctx.parallel_region(c);
    });

    // Minimum candidate-neighbor score per vertex.
    DistDenseVec<double> nbr_min = spmv(a, score, min_first_semiring<double>());

    // Winners join the set; their neighbors will see a settled vertex
    // next round (we mark neighbors via a second pass over rows — in
    // GraphBLAS terms a Boolean SpMV with the winner indicator).
    DistDenseVec<std::uint8_t> winner(grid, n, 0);
    grid.coforall_locales([&](LocaleCtx& ctx) {
      const int l = ctx.locale();
      const auto& ls = score.local(l);
      const auto& lm = nbr_min.local(l);
      auto& lst = state.local(l);
      auto& lw = winner.local(l);
      for (Index v = ls.lo(); v < ls.hi(); ++v) {
        if (lst[v] == 0 && ls[v] < lm[v]) {
          lst[v] = 1;
          lw[v] = 1;
        }
      }
      CostVector c;
      c.add(CostKind::kCpuOps, 12.0 * static_cast<double>(ls.size()));
      c.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(ls.size()));
      ctx.parallel_region(c);
    });

    // Exclude neighbors of winners: reach[v] = OR over winner rows.
    DistDenseVec<double> win_d(grid, n, 0.0);
    grid.coforall_locales([&](LocaleCtx& ctx) {
      const int l = ctx.locale();
      const auto& lw = winner.local(l);
      auto& ld = win_d.local(l);
      for (Index v = ld.lo(); v < ld.hi(); ++v) {
        ld[v] = lw[v] ? 1.0 : 0.0;
      }
      CostVector c;
      c.add(CostKind::kStreamBytes, 9.0 * static_cast<double>(ld.size()));
      ctx.parallel_region(c);
    });
    DistDenseVec<double> reach = spmv(a, win_d, boolean_semiring<double>());

    candidates = 0;
    Index tally = 0;
    grid.coforall_locales([&](LocaleCtx& ctx) {
      const int l = ctx.locale();
      const auto& lr = reach.local(l);
      auto& lst = state.local(l);
      for (Index v = lr.lo(); v < lr.hi(); ++v) {
        if (lst[v] == 0 && lr[v] != 0.0) lst[v] = 2;
        if (lst[v] == 0) ++candidates;
        if (lst[v] == 1) ++tally;
      }
      CostVector c;
      c.add(CostKind::kCpuOps, 10.0 * static_cast<double>(lr.size()));
      c.add(CostKind::kStreamBytes, 10.0 * static_cast<double>(lr.size()));
      ctx.parallel_region(c);
    });
    res.set_size = tally;
  }

  res.in_set.assign(static_cast<std::size_t>(n), false);
  for (int l = 0; l < grid.num_locales(); ++l) {
    const auto& lst = state.local(l);
    for (Index v = lst.lo(); v < lst.hi(); ++v) {
      res.in_set[static_cast<std::size_t>(v)] = lst[v] == 1;
    }
  }
  return res;
}

}  // namespace pgb
