// Connected components by min-label propagation in the (min, select1st)
// semiring: every vertex starts with its own id as label; each round
// pulls the minimum neighbor label through SpMV; converged when no label
// changes. For an undirected (symmetric) graph the labels converge to the
// minimum vertex id of each component within O(diameter) rounds.
#pragma once

#include <string>
#include <vector>

#include "core/ops.hpp"
#include "core/spmv.hpp"
#include "obs/span.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/dist_dense_vec.hpp"

namespace pgb {

struct CcResult {
  std::vector<Index> label;  ///< component id (min vertex id in component)
  int rounds = 0;
  Index num_components = 0;
};

template <typename T>
CcResult connected_components(const DistCsr<T>& a, int max_rounds = 1000) {
  PGB_REQUIRE_SHAPE(a.nrows() == a.ncols(), "cc: matrix must be square");
  auto& grid = a.grid();
  const Index n = a.nrows();

  DistDenseVec<T> labels(grid, n);
  for (int l = 0; l < grid.num_locales(); ++l) {
    auto& lv = labels.local(l);
    for (Index i = lv.lo(); i < lv.hi(); ++i) lv[i] = static_cast<T>(i);
  }

  const auto sr = min_first_semiring<T>();
  CcResult res;
  grid.metrics().counter("algo.calls", {{"algo", "cc"}}).inc();
  for (res.rounds = 0; res.rounds < max_rounds; ++res.rounds) {
    PGB_TRACE_SPAN(grid, "cc.round",
                   {{"round", std::to_string(res.rounds + 1)}});
    grid.metrics().counter("algo.iterations", {{"algo", "cc"}}).inc();
    DistDenseVec<T> pulled = spmv(a, labels, sr);
    bool changed = false;
    grid.coforall_locales([&](LocaleCtx& ctx) {
      auto& ll = labels.local(ctx.locale());
      const auto& lp = pulled.local(ctx.locale());
      for (Index i = ll.lo(); i < ll.hi(); ++i) {
        if (lp[i] < ll[i]) {
          ll[i] = lp[i];
          changed = true;
        }
      }
      CostVector c;
      c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(ll.size()));
      c.add(CostKind::kCpuOps, 8.0 * static_cast<double>(ll.size()));
      ctx.parallel_region(c);
    });
    if (!changed) break;
  }

  res.label.resize(static_cast<std::size_t>(n));
  for (int l = 0; l < grid.num_locales(); ++l) {
    const auto& lv = labels.local(l);
    for (Index i = lv.lo(); i < lv.hi(); ++i) {
      res.label[static_cast<std::size_t>(i)] = static_cast<Index>(lv[i]);
    }
  }
  for (Index i = 0; i < n; ++i) {
    if (res.label[static_cast<std::size_t>(i)] == i) ++res.num_components;
  }
  return res;
}

}  // namespace pgb
