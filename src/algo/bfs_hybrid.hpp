// Direction-optimizing BFS (Beamer-style hybrid; cf. the paper's
// reference [11], Buluç & Madduri's distributed BFS).
//
// Top-down levels are the standard masked SpMSpV (bfs.hpp). When the
// frontier grows past a threshold fraction of the graph, the level
// switches to *bottom-up*: every unvisited vertex scans its own
// adjacency row for any frontier member and claims it as parent —
// short-circuiting on the first hit, which makes huge frontiers cheap.
// Bottom-up needs the frontier as a dense bitmap available along each
// locale's *column* range, gathered in bulk along processor columns.
//
// Requires a symmetric adjacency matrix (row scan == in-neighbor scan).
#pragma once

#include <vector>
#include <limits>

#include "algo/bfs.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/dist_dense_vec.hpp"
#include "util/bitvector.hpp"

namespace pgb {

struct HybridBfsResult {
  std::vector<Index> parent;
  std::vector<Index> level_sizes;
  std::vector<bool> level_was_bottom_up;
};

struct HybridBfsOptions {
  /// Switch to bottom-up when frontier nnz exceeds n / alpha.
  double alpha = 20.0;
  SpmspvOptions spmspv;
};

template <typename T>
HybridBfsResult bfs_hybrid(const DistCsr<T>& a, Index source,
                           const HybridBfsOptions& hopt = {}) {
  PGB_REQUIRE_SHAPE(a.nrows() == a.ncols(),
                    "bfs_hybrid: matrix must be square");
  PGB_REQUIRE(source >= 0 && source < a.nrows(), "bfs_hybrid: bad source");
  auto& grid = a.grid();
  const Index n = a.nrows();
  const int pc = grid.cols();

  HybridBfsResult res;
  res.parent.assign(static_cast<std::size_t>(n), Index{-1});
  res.parent[static_cast<std::size_t>(source)] = source;
  res.level_sizes.push_back(1);
  res.level_was_bottom_up.push_back(false);

  DistDenseVec<std::uint8_t> visited(grid, n, 0);
  visited.at(source) = 1;

  DistSparseVec<T> frontier = DistSparseVec<T>::from_sorted(
      grid, n, {source}, {static_cast<T>(source)});
  const auto sr = min_first_semiring<T>();

  while (frontier.nnz() > 0) {
    const bool bottom_up =
        static_cast<double>(frontier.nnz()) >
        static_cast<double>(n) / hopt.alpha;

    DistSparseVec<T> fresh(grid, n);
    if (!bottom_up) {
      // ---- top-down: masked SpMSpV, frontier values = vertex ids ----
      grid.coforall_locales([&](LocaleCtx& ctx) {
        auto& lf = frontier.local(ctx.locale());
        for (Index p = 0; p < lf.nnz(); ++p) {
          lf.value_at(p) = static_cast<T>(lf.index_at(p));
        }
        CostVector c;
        c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(lf.nnz()));
        c.add(CostKind::kCpuOps,
              kApplyOpsPerElem * static_cast<double>(lf.nnz()));
        ctx.parallel_region(c);
      });
      fresh = spmspv_dist_masked(a, frontier, visited,
                                 MaskMode::kComplement, sr, hopt.spmspv);
    } else {
      // ---- bottom-up ----
      // Frontier bitmap over [0, n), gathered per locale for its column
      // range in bulk along the processor column.
      BitVector fbits(n);
      for (int l = 0; l < grid.num_locales(); ++l) {
        const auto& lf = frontier.local(l);
        for (Index p = 0; p < lf.nnz(); ++p) fbits.set(lf.index_at(p));
      }
      // Each locale claims parents for its unvisited local rows.
      std::vector<std::vector<Index>> claim_idx(grid.num_locales());
      std::vector<std::vector<T>> claim_val(grid.num_locales());
      grid.coforall_locales([&](LocaleCtx& ctx) {
        const int l = ctx.locale();
        const auto& blk = a.block(l);
        // Bulk gather of the frontier bitmap slice [clo, chi) from its
        // 1-D owners (bitmap bytes).
        const Index slice_bytes = (blk.chi - blk.clo) / 8 + 1;
        for (int piece = 0; piece < grid.num_locales() / pc; ++piece) {
          ctx.remote_bulk((piece + l) % grid.num_locales(),
                          slice_bytes / std::max(1, grid.num_locales() / pc));
        }
        double scanned = 0.0;
        Index checked_rows = 0;
        for (Index lr = 0; lr < blk.csr.nrows(); ++lr) {
          const Index v = blk.rlo + lr;
          if (visited.at(v)) continue;
          ++checked_rows;
          auto cols = blk.csr.row_colids(lr);
          for (Index c : cols) {
            scanned += 1.0;
            if (fbits.get(c)) {
              claim_idx[l].push_back(v);
              claim_val[l].push_back(static_cast<T>(c));
              break;  // first frontier neighbor wins in this block
            }
          }
        }
        CostVector cost;
        cost.add(CostKind::kCpuOps,
                 20.0 * static_cast<double>(checked_rows) + 12.0 * scanned);
        cost.add(CostKind::kStreamBytes, 8.0 * scanned);
        cost.add(CostKind::kRandAccess, 0.25 * scanned);
        ctx.parallel_region(cost);
      });
      // Merge block claims: vertex v may be claimed by up to pc blocks;
      // keep the smallest parent (matches the min_first semiring).
      // Claims travel to v's 1-D owner in one bulk message per block.
      std::vector<std::vector<Index>> out_idx(grid.num_locales());
      std::vector<std::vector<T>> out_val(grid.num_locales());
      DistDenseVec<T> best(grid, n, std::numeric_limits<T>::max());
      grid.coforall_locales([&](LocaleCtx& ctx) {
        const int l = ctx.locale();
        if (!claim_idx[l].empty()) {
          const int owner0 = frontier.owner(claim_idx[l].front());
          ctx.remote_bulk(owner0, 16 * static_cast<Index>(
                                           claim_idx[l].size()));
        }
        for (std::size_t k = 0; k < claim_idx[l].size(); ++k) {
          const Index v = claim_idx[l][k];
          auto& slot = best.local(best.owner(v))[v];
          slot = std::min(slot, claim_val[l][k]);
        }
      });
      grid.coforall_locales([&](LocaleCtx& ctx) {
        const int o = ctx.locale();
        const auto& lb = best.local(o);
        for (Index v = lb.lo(); v < lb.hi(); ++v) {
          if (lb[v] != std::numeric_limits<T>::max()) {
            out_idx[o].push_back(v);
            out_val[o].push_back(lb[v]);
          }
        }
        CostVector c;
        c.add(CostKind::kStreamBytes,
              9.0 * static_cast<double>(lb.size()));
        ctx.parallel_region(c);
      });
      for (int l = 0; l < grid.num_locales(); ++l) {
        fresh.local(l) = SparseVec<T>::from_sorted(
            fresh.dist().local_size(l), std::move(out_idx[l]),
            std::move(out_val[l]));
      }
    }

    if (fresh.nnz() == 0) break;
    grid.coforall_locales([&](LocaleCtx& ctx) {
      const int l = ctx.locale();
      const auto& lf = fresh.local(l);
      auto& lv = visited.local(l);
      for (Index p = 0; p < lf.nnz(); ++p) {
        const Index v = lf.index_at(p);
        res.parent[static_cast<std::size_t>(v)] =
            static_cast<Index>(lf.value_at(p));
        lv[v] = 1;
      }
      CostVector c;
      c.add(CostKind::kRandAccess, static_cast<double>(lf.nnz()));
      c.add(CostKind::kCpuOps, 20.0 * static_cast<double>(lf.nnz()));
      ctx.parallel_region(c);
    });
    res.level_sizes.push_back(fresh.nnz());
    res.level_was_bottom_up.push_back(bottom_up);
    frontier = std::move(fresh);
  }
  return res;
}

}  // namespace pgb
