// Greedy maximal bipartite matching in GraphBLAS form.
//
// The paper's Section IV closes its bulk-synchronous advocacy with a
// counter-example from its own reference [12] (Azad & Buluç, distributed
// maximum-cardinality matching): "traversing a small number of long
// paths in a bipartite graph matching algorithm benefits from
// fine-grained asynchronous communication". This module provides the
// GraphBLAS piece — a maximal matching via rounds of propose/accept on
// the (min, select1st) semiring — and bench/abl_async_paths probes the
// path-traversal tradeoff the paper describes.
//
// Matrix convention: A[r, c] != 0 is an edge between row-vertex r and
// column-vertex c of the bipartite graph.
#pragma once

#include <vector>

#include "core/mask.hpp"
#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/dist_dense_vec.hpp"
#include "sparse/dist_sparse_vec.hpp"

namespace pgb {

struct MatchingResult {
  /// match_col[c] = matched row for column c, or -1.
  std::vector<Index> match_col;
  /// match_row[r] = matched column for row r, or -1.
  std::vector<Index> match_row;
  Index size = 0;
  int rounds = 0;
};

template <typename T>
MatchingResult bipartite_matching(const DistCsr<T>& a,
                                  const SpmspvOptions& opt = {}) {
  auto& grid = a.grid();
  const Index nr = a.nrows();
  const Index nc = a.ncols();

  MatchingResult res;
  res.match_row.assign(static_cast<std::size_t>(nr), Index{-1});
  res.match_col.assign(static_cast<std::size_t>(nc), Index{-1});

  // Unmatched rows, carrying their own ids as proposal values.
  std::vector<Index> ridx(static_cast<std::size_t>(nr));
  std::vector<T> rval(static_cast<std::size_t>(nr));
  for (Index r = 0; r < nr; ++r) {
    ridx[static_cast<std::size_t>(r)] = r;
    rval[static_cast<std::size_t>(r)] = static_cast<T>(r);
  }
  auto proposers = DistSparseVec<T>::from_sorted(grid, nr, ridx, rval);
  DistDenseVec<std::uint8_t> col_matched(grid, nc, 0);

  const auto sr = min_first_semiring<T>();
  while (proposers.nnz() > 0) {
    ++res.rounds;
    // Each unmatched column hears the smallest proposing row id.
    DistSparseVec<T> offers = spmspv_dist_masked(
        a, proposers, col_matched, MaskMode::kComplement, sr, opt);
    if (offers.nnz() == 0) break;

    // Accept: every offered column takes its min proposer; a row may win
    // several columns in one round, so keep only its smallest column.
    std::vector<Index> winner_row;
    for (int l = 0; l < grid.num_locales(); ++l) {
      const auto& lo = offers.local(l);
      for (Index p = 0; p < lo.nnz(); ++p) {
        const Index c = lo.index_at(p);
        const Index r = static_cast<Index>(lo.value_at(p));
        if (res.match_row[static_cast<std::size_t>(r)] < 0) {
          res.match_row[static_cast<std::size_t>(r)] = c;
          res.match_col[static_cast<std::size_t>(c)] = r;
          col_matched.at(c) = 1;
          winner_row.push_back(r);
          ++res.size;
        }
      }
    }
    // Charge the accept pass (streaming scan of the offers + updates).
    grid.coforall_locales([&](LocaleCtx& ctx) {
      const auto& lo = offers.local(ctx.locale());
      CostVector c;
      c.add(CostKind::kCpuOps, 20.0 * static_cast<double>(lo.nnz()));
      c.add(CostKind::kRandAccess, 2.0 * static_cast<double>(lo.nnz()));
      c.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(lo.nnz()));
      ctx.parallel_region(c);
    });

    // Remaining proposers: previously unmatched rows that did not win.
    std::vector<Index> nidx;
    std::vector<T> nval;
    auto lp = proposers.to_local();
    for (Index p = 0; p < lp.nnz(); ++p) {
      const Index r = lp.index_at(p);
      if (res.match_row[static_cast<std::size_t>(r)] < 0) {
        nidx.push_back(r);
        nval.push_back(static_cast<T>(r));
      }
    }
    auto next = DistSparseVec<T>::from_sorted(grid, nr, nidx, nval);
    if (next.nnz() == proposers.nnz()) break;  // no progress: maximal
    proposers = std::move(next);
  }
  return res;
}

}  // namespace pgb
