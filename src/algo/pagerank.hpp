// PageRank via repeated SpMV on the arithmetic semiring:
//   r' = (1-d)/n + dangling/n * d + d * (r ./ outdeg) A
// Edges are A[r, c] = r -> c, so pulling along columns with y <- x A
// accumulates each page's incoming rank.
#pragma once

#include <cmath>
#include <vector>

#include "core/ops.hpp"
#include "core/reduce.hpp"
#include "core/spmv.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/dist_dense_vec.hpp"

namespace pgb {

struct PagerankResult {
  std::vector<double> rank;
  int iterations = 0;
  double residual = 0.0;  ///< final L1 change between iterations
};

template <typename T>
PagerankResult pagerank(const DistCsr<T>& a, double damping = 0.85,
                        double tol = 1e-8, int max_iters = 100) {
  PGB_REQUIRE_SHAPE(a.nrows() == a.ncols(), "pagerank: matrix must be square");
  auto& grid = a.grid();
  const Index n = a.nrows();
  PGB_REQUIRE(n > 0, "pagerank: empty matrix");
  const double inv_n = 1.0 / static_cast<double>(n);

  // Out-degrees via row reduction (a GraphBLAS reduce).
  DistDenseVec<T> deg = reduce_rows(a, plus_monoid<T>());
  DistDenseVec<double> rank(grid, n, inv_n);

  PagerankResult res;
  for (res.iterations = 1; res.iterations <= max_iters; ++res.iterations) {
    // scaled[r] = rank[r] / outdeg[r]; dangling mass spread uniformly.
    DistDenseVec<double> scaled(grid, n, 0.0);
    double dangling = 0.0;
    grid.coforall_locales([&](LocaleCtx& ctx) {
      const int l = ctx.locale();
      const auto& lr = rank.local(l);
      const auto& ld = deg.local(l);
      auto& ls = scaled.local(l);
      for (Index i = lr.lo(); i < lr.hi(); ++i) {
        if (ld[i] > T{0}) {
          ls[i] = lr[i] / static_cast<double>(ld[i]);
        } else {
          dangling += lr[i];
        }
      }
      CostVector c;
      c.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(lr.size()));
      c.add(CostKind::kCpuOps, 10.0 * static_cast<double>(lr.size()));
      ctx.parallel_region(c);
    });

    DistDenseVec<double> pulled =
        spmv(a, scaled, arithmetic_semiring<double>());

    const double base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
    double delta = 0.0;
    grid.coforall_locales([&](LocaleCtx& ctx) {
      const int l = ctx.locale();
      auto& lr = rank.local(l);
      const auto& lp = pulled.local(l);
      for (Index i = lr.lo(); i < lr.hi(); ++i) {
        const double next = base + damping * lp[i];
        delta += std::abs(next - lr[i]);
        lr[i] = next;
      }
      CostVector c;
      c.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(lr.size()));
      c.add(CostKind::kCpuOps, 12.0 * static_cast<double>(lr.size()));
      ctx.parallel_region(c);
    });
    res.residual = delta;
    if (delta < tol) break;
  }

  res.rank.resize(static_cast<std::size_t>(n));
  for (int l = 0; l < grid.num_locales(); ++l) {
    const auto& lr = rank.local(l);
    for (Index i = lr.lo(); i < lr.hi(); ++i) {
      res.rank[static_cast<std::size_t>(i)] = lr[i];
    }
  }
  return res;
}

}  // namespace pgb
