// PageRank via repeated SpMV on the arithmetic semiring:
//   r' = (1-d)/n + dangling/n * d + d * (r ./ outdeg) A
// Edges are A[r, c] = r -> c, so pulling along columns with y <- x A
// accumulates each page's incoming rank.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "core/ops.hpp"
#include "core/reduce.hpp"
#include "core/spmv.hpp"
#include "obs/span.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/dist_dense_vec.hpp"

namespace pgb {

struct PagerankResult {
  std::vector<double> rank;
  int iterations = 0;
  double residual = 0.0;  ///< final L1 change between iterations
};

/// The loop state of one pagerank run, exposed for the recovery driver
/// (fault/recovery.hpp via algo/algo_recovery.hpp). `pagerank()` below
/// is exactly pagerank_init + pagerank_step-until-done +
/// pagerank_finalize.
template <typename T>
struct PagerankState {
  DistDenseVec<T> deg;  ///< out-degrees (invariant across iterations)
  DistDenseVec<double> rank;
  PagerankResult res;
  bool done = false;
};

template <typename T>
PagerankState<T> pagerank_init(const DistCsr<T>& a) {
  PGB_REQUIRE_SHAPE(a.nrows() == a.ncols(), "pagerank: matrix must be square");
  auto& grid = a.grid();
  const Index n = a.nrows();
  PGB_REQUIRE(n > 0, "pagerank: empty matrix");

  grid.metrics().counter("algo.calls", {{"algo", "pagerank"}}).inc();
  // Out-degrees via row reduction (a GraphBLAS reduce).
  return PagerankState<T>{
      reduce_rows(a, plus_monoid<T>()),
      DistDenseVec<double>(grid, n, 1.0 / static_cast<double>(n)),
      {}, false};
}

/// One power iteration; sets st.done on convergence or past max_iters.
template <typename T>
void pagerank_step(const DistCsr<T>& a, PagerankState<T>& st,
                   double damping, double tol, int max_iters) {
  auto& grid = a.grid();
  const Index n = a.nrows();
  const double inv_n = 1.0 / static_cast<double>(n);
  ++st.res.iterations;
  if (st.res.iterations > max_iters) {
    st.done = true;
    return;
  }
  PGB_TRACE_SPAN(grid, "pagerank.iter",
                 {{"iteration", std::to_string(st.res.iterations)}});
  grid.metrics().counter("algo.iterations", {{"algo", "pagerank"}}).inc();

  // scaled[r] = rank[r] / outdeg[r]; dangling mass spread uniformly.
  DistDenseVec<double> scaled(grid, n, 0.0);
  double dangling = 0.0;
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& lr = st.rank.local(l);
    const auto& ld = st.deg.local(l);
    auto& ls = scaled.local(l);
    for (Index i = lr.lo(); i < lr.hi(); ++i) {
      if (ld[i] > T{0}) {
        ls[i] = lr[i] / static_cast<double>(ld[i]);
      } else {
        dangling += lr[i];
      }
    }
    CostVector c;
    c.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(lr.size()));
    c.add(CostKind::kCpuOps, 10.0 * static_cast<double>(lr.size()));
    ctx.parallel_region(c);
  });

  DistDenseVec<double> pulled =
      spmv(a, scaled, arithmetic_semiring<double>());

  const double base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
  double delta = 0.0;
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    auto& lr = st.rank.local(l);
    const auto& lp = pulled.local(l);
    for (Index i = lr.lo(); i < lr.hi(); ++i) {
      const double next = base + damping * lp[i];
      delta += std::abs(next - lr[i]);
      lr[i] = next;
    }
    CostVector c;
    c.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(lr.size()));
    c.add(CostKind::kCpuOps, 12.0 * static_cast<double>(lr.size()));
    ctx.parallel_region(c);
  });
  st.res.residual = delta;
  if (delta < tol) st.done = true;
}

/// Gathers the distributed ranks into the result.
template <typename T>
PagerankResult pagerank_finalize(PagerankState<T>& st) {
  const Index n = st.rank.size();
  st.res.rank.resize(static_cast<std::size_t>(n));
  for (int l = 0; l < st.rank.grid().num_locales(); ++l) {
    const auto& lr = st.rank.local(l);
    for (Index i = lr.lo(); i < lr.hi(); ++i) {
      st.res.rank[static_cast<std::size_t>(i)] = lr[i];
    }
  }
  return std::move(st.res);
}

template <typename T>
PagerankResult pagerank(const DistCsr<T>& a, double damping = 0.85,
                        double tol = 1e-8, int max_iters = 100) {
  PagerankState<T> st = pagerank_init(a);
  while (!st.done) pagerank_step(a, st, damping, tol, max_iters);
  return pagerank_finalize(st);
}

/// Warm-restart init: like pagerank_init, but the iteration starts from
/// `prev` (the previous epoch's converged vector, renormalized to sum 1)
/// instead of uniform 1/n. After a small-delta publish the old vector is
/// already near the new fixed point, so convergence takes a fraction of
/// the cold iterations — the other half of the abl_ingest ablation.
template <typename T>
PagerankState<T> pagerank_init_from(const DistCsr<T>& a,
                                    const std::vector<double>& prev) {
  PagerankState<T> st = pagerank_init(a);
  auto& grid = a.grid();
  const Index n = a.nrows();
  PGB_REQUIRE(prev.size() == static_cast<std::size_t>(n),
              "pagerank: warm-restart vector size mismatch");
  double sum = 0.0;
  for (double v : prev) sum += v;
  PGB_REQUIRE(sum > 0.0, "pagerank: warm-restart vector has no mass");
  grid.coforall_locales([&](LocaleCtx& ctx) {
    auto& lr = st.rank.local(ctx.locale());
    for (Index i = lr.lo(); i < lr.hi(); ++i) {
      lr[i] = prev[static_cast<std::size_t>(i)] / sum;
    }
    CostVector c;
    c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(lr.size()));
    ctx.parallel_region(c);
  });
  return st;
}

template <typename T>
PagerankResult pagerank_warm(const DistCsr<T>& a,
                             const std::vector<double>& prev,
                             double damping = 0.85, double tol = 1e-8,
                             int max_iters = 100) {
  PagerankState<T> st = pagerank_init_from(a, prev);
  while (!st.done) pagerank_step(a, st, damping, tol, max_iters);
  return pagerank_finalize(st);
}

}  // namespace pgb
