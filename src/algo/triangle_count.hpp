// Triangle counting with masked SpGEMM: with L the strictly-lower
// triangle of a symmetric adjacency matrix, the triangle count is
// sum((L . L) .* L) — each triangle i > j > k counted exactly once.
// Exercises mxm (the paper's future-work primitive) plus an element-wise
// mask and a reduction.
#pragma once

#include "core/mxm.hpp"
#include "core/ops.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/csr.hpp"

namespace pgb {

/// Strictly-lower-triangular part of a local CSR.
template <typename T>
Csr<T> lower_triangle(const Csr<T>& a) {
  std::vector<Index> rowptr(static_cast<std::size_t>(a.nrows()) + 1, 0);
  std::vector<Index> colids;
  std::vector<T> vals;
  for (Index r = 0; r < a.nrows(); ++r) {
    auto cols = a.row_colids(r);
    auto rvals = a.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] < r) {
        colids.push_back(cols[k]);
        vals.push_back(rvals[k]);
      }
    }
    rowptr[static_cast<std::size_t>(r) + 1] =
        static_cast<Index>(colids.size());
  }
  return Csr<T>::from_parts(a.nrows(), a.ncols(), std::move(rowptr),
                            std::move(colids), std::move(vals));
}

/// Counts triangles of a symmetric 0/1 adjacency matrix (local).
template <typename T>
std::int64_t triangle_count(LocaleCtx& ctx, const Csr<T>& a) {
  PGB_REQUIRE_SHAPE(a.nrows() == a.ncols(),
                    "triangle_count: matrix must be square");
  const Csr<T> l = lower_triangle(a);
  const Csr<T> c = mxm_local(ctx, l, l, arithmetic_semiring<T>());
  // Masked reduction: sum C over L's pattern (sorted-row merge).
  std::int64_t total = 0;
  for (Index r = 0; r < l.nrows(); ++r) {
    auto lcols = l.row_colids(r);
    auto ccols = c.row_colids(r);
    auto cvals = c.row_values(r);
    std::size_t i = 0, j = 0;
    while (i < lcols.size() && j < ccols.size()) {
      if (lcols[i] < ccols[j]) {
        ++i;
      } else if (ccols[j] < lcols[i]) {
        ++j;
      } else {
        total += static_cast<std::int64_t>(cvals[j]);
        ++i;
        ++j;
      }
    }
  }
  CostVector cost;
  cost.add(CostKind::kStreamBytes,
           16.0 * static_cast<double>(l.nnz() + c.nnz()));
  cost.add(CostKind::kCpuOps, 12.0 * static_cast<double>(l.nnz() + c.nnz()));
  ctx.parallel_region(cost);
  return total;
}

}  // namespace pgb
