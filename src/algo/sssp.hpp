// Single-source shortest paths via Bellman-Ford iterations on the
// (min, +) semiring — the classic non-Boolean semiring showcase of
// GraphBLAS: each round relaxes the edges leaving the vertices whose
// distance improved, exactly a masked SpMSpV on min-plus.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "core/spmspv_multi.hpp"
#include "obs/span.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/dist_dense_vec.hpp"
#include "sparse/dist_sparse_vec.hpp"

namespace pgb {

struct SsspResult {
  /// dist[v] = shortest distance from the source; "unreachable" marker
  /// (max double) if no path exists.
  std::vector<double> dist;
  int rounds = 0;

  static constexpr double kUnreachable =
      std::numeric_limits<double>::max();
};

/// The loop state of one SSSP run, exposed for the recovery driver
/// (fault/recovery.hpp via algo/algo_recovery.hpp): snapshot between
/// rounds, rebuild after a locale failure. `sssp()` below is exactly
/// sssp_init + sssp_step-until-done + sssp_finalize.
struct SsspState {
  DistDenseVec<double> dist;
  DistSparseVec<double> frontier;  ///< vertices improved last round
  SsspResult res;                  ///< rounds only; dist filled at finalize
  bool done = false;
};

template <typename T>
SsspState sssp_init(const DistCsr<T>& a, Index source) {
  PGB_REQUIRE_SHAPE(a.nrows() == a.ncols(), "sssp: matrix must be square");
  PGB_REQUIRE(source >= 0 && source < a.nrows(), "sssp: bad source");
  auto& grid = a.grid();
  const Index n = a.nrows();

  SsspState st{DistDenseVec<double>(grid, n, SsspResult::kUnreachable),
               DistSparseVec<double>::from_sorted(grid, n, {source}, {0.0}),
               {}, false};
  st.dist.at(source) = 0.0;
  grid.metrics().counter("algo.calls", {{"algo", "sssp"}}).inc();
  return st;
}

/// One Bellman-Ford relaxation round; sets st.done at the fixed point
/// (or at the n-round cap).
template <typename T>
void sssp_step(const DistCsr<T>& a, SsspState& st,
               const SpmspvOptions& opt = {}) {
  auto& grid = a.grid();
  const Index n = a.nrows();
  if (st.frontier.nnz() == 0 || st.res.rounds >= n) {
    st.done = true;
    return;
  }
  ++st.res.rounds;
  PGB_TRACE_SPAN(grid, "sssp.round",
                 {{"round", std::to_string(st.res.rounds)},
                  {"frontier", std::to_string(st.frontier.nnz())}});
  grid.metrics().counter("algo.iterations", {{"algo", "sssp"}}).inc();
  // candidate[c] = min over frontier rows r of (dist-candidate of r +
  // weight(r, c)).
  const auto sr = min_plus_semiring<double>();
  DistSparseVec<double> cand = [&] {
    // Cast matrix values to double lazily through the semiring: build
    // a double view by multiplying with the frontier values.
    return spmspv_dist(a, st.frontier, sr, opt);
  }();

  // Keep the candidates that actually improve; update dist.
  std::vector<std::vector<Index>> imp_idx(grid.num_locales());
  std::vector<std::vector<double>> imp_val(grid.num_locales());
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& lc = cand.local(l);
    auto& ld = st.dist.local(l);
    for (Index p = 0; p < lc.nnz(); ++p) {
      const Index v = lc.index_at(p);
      if (lc.value_at(p) < ld[v]) {
        ld[v] = lc.value_at(p);
        imp_idx[l].push_back(v);
        imp_val[l].push_back(lc.value_at(p));
      }
    }
    CostVector c;
    c.add(CostKind::kCpuOps, 20.0 * static_cast<double>(lc.nnz()));
    c.add(CostKind::kRandAccess, static_cast<double>(lc.nnz()));
    c.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(lc.nnz()));
    ctx.parallel_region(c);
  });

  DistSparseVec<double> next(grid, n);
  for (int l = 0; l < grid.num_locales(); ++l) {
    next.local(l) = SparseVec<double>::from_sorted(
        next.dist().local_size(l), std::move(imp_idx[l]),
        std::move(imp_val[l]));
  }
  st.frontier = std::move(next);
}

/// Gathers the distributed distances into the result (no charging; same
/// convention as the other algos' result extraction).
inline SsspResult sssp_finalize(SsspState& st) {
  const Index n = st.dist.size();
  st.res.dist.resize(static_cast<std::size_t>(n));
  for (int l = 0; l < st.dist.grid().num_locales(); ++l) {
    const auto& ld = st.dist.local(l);
    for (Index i = ld.lo(); i < ld.hi(); ++i) {
      st.res.dist[static_cast<std::size_t>(i)] = ld[i];
    }
  }
  return std::move(st.res);
}

/// Edge weights are the matrix values (must be non-negative for the
/// result to be meaningful in bounded rounds; negative cycles are not
/// detected — rounds are capped at n).
///
/// Each relaxation round's frontier exchange is the SpMSpV below; set
/// `opt.comm = CommMode::kAggregated` to run it through the
/// conveyor-style aggregation layer (identical distances, far fewer
/// modeled messages).
template <typename T>
SsspResult sssp(const DistCsr<T>& a, Index source,
                const SpmspvOptions& opt = {}) {
  SsspState st = sssp_init(a, source);
  while (!st.done) sssp_step(a, st, opt);
  return sssp_finalize(st);
}

// ---- Batched multi-source SSSP (the service front end's fused wave) ----
//
// Same lockstep structure as BfsBatchState: every active lane's
// relaxation round rides one fused multi-frontier SpMSpV, while each
// lane's improvement filter and next-frontier build are the solo
// sssp_step code over that lane's data alone — lane distances are
// byte-identical to solo sssp() runs.

struct SsspBatchState {
  std::vector<SsspState> lanes;
  bool done = false;
};

template <typename T>
SsspBatchState sssp_batch_init(const DistCsr<T>& a,
                               const std::vector<Index>& sources) {
  PGB_REQUIRE(!sources.empty(), "sssp_batch: need at least one source");
  SsspBatchState st;
  st.lanes.reserve(sources.size());
  for (Index s : sources) st.lanes.push_back(sssp_init(a, s));
  a.grid().metrics().counter("algo.calls", {{"algo", "sssp.batch"}}).inc();
  return st;
}

/// One fused Bellman-Ford relaxation round across all active lanes.
template <typename T>
void sssp_batch_step(const DistCsr<T>& a, SsspBatchState& st,
                     const SpmspvOptions& opt = {}) {
  auto& grid = a.grid();
  const Index n = a.nrows();
  std::vector<int> act;
  for (int q = 0; q < static_cast<int>(st.lanes.size()); ++q) {
    auto& ln = st.lanes[static_cast<std::size_t>(q)];
    if (ln.done) continue;
    if (ln.frontier.nnz() == 0 || ln.res.rounds >= n) {
      ln.done = true;
      continue;
    }
    act.push_back(q);
  }
  if (act.empty()) {
    st.done = true;
    return;
  }
  PGB_TRACE_SPAN(grid, "sssp.batch.round",
                 {{"width", std::to_string(act.size())}});
  grid.metrics().counter("algo.iterations", {{"algo", "sssp.batch"}}).inc();

  // Per-query trace capture: when the executor bound lane tracks on the
  // session, every active lane gets a query.level span for this round,
  // tagged with the lane's own frontier size and the wave's comm delta.
  obs::TraceSession* qtrace = grid.trace_session();
  const bool lane_trace = qtrace != nullptr && qtrace->has_lane_tracks();
  double q_t0 = 0.0;
  std::int64_t q_m0 = 0, q_b0 = 0;
  std::vector<Index> q_frontier;
  if (lane_trace) {
    q_t0 = grid.time();
    const CommStats cs = grid.comm_stats();
    q_m0 = cs.messages;
    q_b0 = cs.bytes;
    for (int q : act) {
      q_frontier.push_back(st.lanes[static_cast<std::size_t>(q)].frontier.nnz());
    }
  }

  const auto sr = min_plus_semiring<double>();
  std::vector<const DistSparseVec<double>*> xs;
  xs.reserve(act.size());
  for (int q : act) {
    auto& ln = st.lanes[static_cast<std::size_t>(q)];
    ++ln.res.rounds;
    xs.push_back(&ln.frontier);
  }
  std::vector<DistSparseVec<double>> cand =
      spmspv_dist_multi(a, xs, {}, MaskMode::kNone, sr, opt);

  // Per lane: keep the candidates that improve, update dist, and build
  // the next frontier — the solo filter, charged per lane.
  const int nloc = grid.num_locales();
  for (int i = 0; i < static_cast<int>(act.size()); ++i) {
    auto& ln =
        st.lanes[static_cast<std::size_t>(act[static_cast<std::size_t>(i)])];
    auto& lc_all = cand[static_cast<std::size_t>(i)];
    std::vector<std::vector<Index>> imp_idx(
        static_cast<std::size_t>(nloc));
    std::vector<std::vector<double>> imp_val(
        static_cast<std::size_t>(nloc));
    grid.coforall_locales([&](LocaleCtx& ctx) {
      const int l = ctx.locale();
      const auto& lc = lc_all.local(l);
      auto& ld = ln.dist.local(l);
      for (Index p = 0; p < lc.nnz(); ++p) {
        const Index v = lc.index_at(p);
        if (lc.value_at(p) < ld[v]) {
          ld[v] = lc.value_at(p);
          imp_idx[static_cast<std::size_t>(l)].push_back(v);
          imp_val[static_cast<std::size_t>(l)].push_back(lc.value_at(p));
        }
      }
      CostVector c;
      c.add(CostKind::kCpuOps, 20.0 * static_cast<double>(lc.nnz()));
      c.add(CostKind::kRandAccess, static_cast<double>(lc.nnz()));
      c.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(lc.nnz()));
      ctx.parallel_region(c);
    });
    DistSparseVec<double> next(grid, n);
    for (int l = 0; l < nloc; ++l) {
      next.local(l) = SparseVec<double>::from_sorted(
          next.dist().local_size(l),
          std::move(imp_idx[static_cast<std::size_t>(l)]),
          std::move(imp_val[static_cast<std::size_t>(l)]));
    }
    ln.frontier = std::move(next);
  }
  if (lane_trace) {
    const double q_t1 = grid.time();
    const CommStats cs = grid.comm_stats();
    const std::string d_msgs = std::to_string(cs.messages - q_m0);
    const std::string d_bytes = std::to_string(cs.bytes - q_b0);
    const std::string width = std::to_string(act.size());
    for (std::size_t i = 0; i < act.size(); ++i) {
      const int tr = qtrace->lane_track(act[i]);
      if (tr < 0) continue;
      const auto& ln = st.lanes[static_cast<std::size_t>(act[i])];
      qtrace->begin_span(tr, "query.level", q_t0,
                         {{"level", std::to_string(ln.res.rounds)},
                          {"frontier", std::to_string(q_frontier[i])},
                          {"width", width}});
      qtrace->end_span(tr, q_t1,
                       {{"d_messages", d_msgs}, {"d_bytes", d_bytes}});
    }
  }
}

/// Runs k SSSP queries through the fused per-round wave; out[i] is
/// byte-identical to sssp(a, sources[i], opt).
template <typename T>
std::vector<SsspResult> sssp_batch(const DistCsr<T>& a,
                                   const std::vector<Index>& sources,
                                   const SpmspvOptions& opt = {}) {
  SsspBatchState st = sssp_batch_init(a, sources);
  while (!st.done) sssp_batch_step(a, st, opt);
  std::vector<SsspResult> out;
  out.reserve(st.lanes.size());
  for (auto& ln : st.lanes) out.push_back(sssp_finalize(ln));
  return out;
}

}  // namespace pgb
