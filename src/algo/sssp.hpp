// Single-source shortest paths via Bellman-Ford iterations on the
// (min, +) semiring — the classic non-Boolean semiring showcase of
// GraphBLAS: each round relaxes the edges leaving the vertices whose
// distance improved, exactly a masked SpMSpV on min-plus.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "core/ops.hpp"
#include "core/spmspv.hpp"
#include "obs/span.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/dist_dense_vec.hpp"
#include "sparse/dist_sparse_vec.hpp"

namespace pgb {

struct SsspResult {
  /// dist[v] = shortest distance from the source; "unreachable" marker
  /// (max double) if no path exists.
  std::vector<double> dist;
  int rounds = 0;

  static constexpr double kUnreachable =
      std::numeric_limits<double>::max();
};

/// Edge weights are the matrix values (must be non-negative for the
/// result to be meaningful in bounded rounds; negative cycles are not
/// detected — rounds are capped at n).
///
/// Each relaxation round's frontier exchange is the SpMSpV below; set
/// `opt.comm = CommMode::kAggregated` to run it through the
/// conveyor-style aggregation layer (identical distances, far fewer
/// modeled messages).
template <typename T>
SsspResult sssp(const DistCsr<T>& a, Index source,
                const SpmspvOptions& opt = {}) {
  PGB_REQUIRE_SHAPE(a.nrows() == a.ncols(), "sssp: matrix must be square");
  PGB_REQUIRE(source >= 0 && source < a.nrows(), "sssp: bad source");
  auto& grid = a.grid();
  const Index n = a.nrows();

  DistDenseVec<double> dist(grid, n, SsspResult::kUnreachable);
  dist.at(source) = 0.0;

  // Frontier: vertices whose distance improved last round.
  auto frontier = DistSparseVec<double>::from_sorted(grid, n, {source}, {0.0});
  const auto sr = min_plus_semiring<double>();

  SsspResult res;
  grid.metrics().counter("algo.calls", {{"algo", "sssp"}}).inc();
  while (frontier.nnz() > 0 && res.rounds < n) {
    ++res.rounds;
    PGB_TRACE_SPAN(grid, "sssp.round",
                   {{"round", std::to_string(res.rounds)},
                    {"frontier", std::to_string(frontier.nnz())}});
    grid.metrics().counter("algo.iterations", {{"algo", "sssp"}}).inc();
    // candidate[c] = min over frontier rows r of (dist-candidate of r +
    // weight(r, c)).
    DistSparseVec<double> cand = [&] {
      // Cast matrix values to double lazily through the semiring: build
      // a double view by multiplying with the frontier values.
      return spmspv_dist(a, frontier, sr, opt);
    }();

    // Keep the candidates that actually improve; update dist.
    std::vector<std::vector<Index>> imp_idx(grid.num_locales());
    std::vector<std::vector<double>> imp_val(grid.num_locales());
    grid.coforall_locales([&](LocaleCtx& ctx) {
      const int l = ctx.locale();
      const auto& lc = cand.local(l);
      auto& ld = dist.local(l);
      for (Index p = 0; p < lc.nnz(); ++p) {
        const Index v = lc.index_at(p);
        if (lc.value_at(p) < ld[v]) {
          ld[v] = lc.value_at(p);
          imp_idx[l].push_back(v);
          imp_val[l].push_back(lc.value_at(p));
        }
      }
      CostVector c;
      c.add(CostKind::kCpuOps, 20.0 * static_cast<double>(lc.nnz()));
      c.add(CostKind::kRandAccess, static_cast<double>(lc.nnz()));
      c.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(lc.nnz()));
      ctx.parallel_region(c);
    });

    DistSparseVec<double> next(grid, n);
    for (int l = 0; l < grid.num_locales(); ++l) {
      next.local(l) = SparseVec<double>::from_sorted(
          next.dist().local_size(l), std::move(imp_idx[l]),
          std::move(imp_val[l]));
    }
    frontier = std::move(next);
  }

  res.dist.resize(static_cast<std::size_t>(n));
  for (int l = 0; l < grid.num_locales(); ++l) {
    const auto& ld = dist.local(l);
    for (Index i = ld.lo(); i < ld.hi(); ++i) {
      res.dist[static_cast<std::size_t>(i)] = ld[i];
    }
  }
  return res;
}

}  // namespace pgb
