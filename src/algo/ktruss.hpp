// k-truss: the maximal subgraph in which every edge participates in at
// least k-2 triangles. The GraphBLAS formulation (LAGraph-style)
// iterates support counting via masked SpGEMM — S = (A . A) .* A gives
// each edge its triangle count — and drops under-supported edges until a
// fixed point.
#pragma once

#include <string>

#include "core/mxm.hpp"
#include "core/ops.hpp"
#include "obs/span.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/csr.hpp"

namespace pgb {

struct KtrussResult {
  Csr<std::int64_t> truss;  ///< surviving edges (symmetric 0/1)
  int rounds = 0;
  Index edges = 0;  ///< directed edge count (2x undirected)
};

/// Requires a symmetric 0/1 adjacency matrix without self-loops.
inline KtrussResult ktruss(LocaleCtx& ctx, const Csr<std::int64_t>& a,
                           int k) {
  PGB_REQUIRE(k >= 3, "ktruss: k must be >= 3");
  PGB_REQUIRE_SHAPE(a.nrows() == a.ncols(), "ktruss: matrix must be square");
  const std::int64_t min_support = k - 2;

  KtrussResult res;
  res.truss = a;
  ctx.grid().metrics().counter("algo.calls", {{"algo", "ktruss"}}).inc();
  for (;;) {
    ++res.rounds;
    PGB_TRACE_CTX_SPAN(ctx, "ktruss.round",
                       {{"round", std::to_string(res.rounds)},
                        {"edges", std::to_string(res.truss.nnz())}});
    ctx.grid().metrics().counter("algo.iterations", {{"algo", "ktruss"}}).inc();
    // Support per edge: S = (C .* A) with C = A.A counting wedges.
    const Csr<std::int64_t> c =
        mxm_local(ctx, res.truss, res.truss, arithmetic_semiring<std::int64_t>());
    // Keep edges whose wedge count meets the threshold.
    std::vector<Index> rowptr(static_cast<std::size_t>(a.nrows()) + 1, 0);
    std::vector<Index> colids;
    std::vector<std::int64_t> vals;
    bool changed = false;
    for (Index r = 0; r < res.truss.nrows(); ++r) {
      auto tcols = res.truss.row_colids(r);
      for (std::size_t i = 0; i < tcols.size(); ++i) {
        const std::int64_t* support = c.find(r, tcols[i]);
        if (support != nullptr && *support >= min_support) {
          colids.push_back(tcols[i]);
          vals.push_back(1);
        } else {
          changed = true;
        }
      }
      rowptr[static_cast<std::size_t>(r) + 1] =
          static_cast<Index>(colids.size());
    }
    CostVector cost;
    cost.add(CostKind::kCpuOps,
             30.0 * static_cast<double>(res.truss.nnz()));
    cost.add(CostKind::kDependentAccess,
             8.0 * static_cast<double>(res.truss.nnz()));
    cost.add(CostKind::kStreamBytes,
             32.0 * static_cast<double>(res.truss.nnz()));
    ctx.parallel_region(cost);

    res.truss = Csr<std::int64_t>::from_parts(
        a.nrows(), a.ncols(), std::move(rowptr), std::move(colids),
        std::move(vals));
    if (!changed) break;
  }
  res.edges = res.truss.nnz();
  return res;
}

}  // namespace pgb
