// Incrementally maintained connected components: the streaming-ingest
// counterpart of algo/connected_components.hpp.
//
// The full min-label SpMV run costs O(diameter) rounds of whole-graph
// traffic; an edge *insertion* only ever merges two components, so a
// union-find forest seeded from the last full result absorbs insert
// batches at O(alpha) per edge with no matrix traversal at all. Unions
// keep the *minimum* root, so labels stay exactly the min-vertex-id
// convention of the full algorithm — labels() is bit-identical to
// rerunning connected_components on the updated (symmetric) graph.
//
// Deletions can split a component, which union-find cannot undo: any
// delete invalidates the structure (valid() goes false) and the caller
// falls back to a full recompute, reseeding from its result. That
// asymmetry is the point of the abl_ingest ablation: insert-heavy
// streams amortize to near-zero, delete-heavy streams price the
// fallback.
#pragma once

#include <utility>
#include <vector>

#include "algo/connected_components.hpp"
#include "runtime/locale_grid.hpp"

namespace pgb {

class IncrementalCc {
 public:
  /// Seeds the forest from a full result: every vertex's parent is its
  /// component label (a depth-1 forest rooted at the min vertex ids).
  explicit IncrementalCc(const CcResult& full)
      : parent_(full.label.begin(), full.label.end()) {}

  /// False once a deletion was observed: answers may be stale, rerun the
  /// full algorithm and reseed.
  bool valid() const { return valid_; }
  void invalidate() { valid_ = false; }

  Index find(Index v) {
    while (parent_[static_cast<std::size_t>(v)] != v) {
      // Path halving: point at the grandparent while walking up.
      auto& p = parent_[static_cast<std::size_t>(v)];
      p = parent_[static_cast<std::size_t>(p)];
      v = p;
    }
    return v;
  }

  /// Merges the endpoints' components; the smaller root id wins, which
  /// preserves the min-vertex-id labeling of the full algorithm.
  void insert_edge(Index u, Index v) {
    Index ru = find(u), rv = find(v);
    if (ru == rv) return;
    if (rv < ru) std::swap(ru, rv);
    parent_[static_cast<std::size_t>(rv)] = ru;
  }

  /// Materializes labels (and the component count) from the forest.
  CcResult labels() {
    CcResult r;
    const std::size_t n = parent_.size();
    r.label.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      r.label[v] = find(static_cast<Index>(v));
      if (r.label[v] == static_cast<Index>(v)) ++r.num_components;
    }
    return r;
  }

 private:
  std::vector<Index> parent_;
  bool valid_ = true;
};

/// Charged batch update: applies one batch's inserted (undirected)
/// endpoint pairs to the forest and invalidates on any delete. The
/// forest is replicated bookkeeping, so each locale charges for its
/// round-robin shard of the unions and the coforall's barrier models
/// the agreement point. Returns valid() — false tells the caller to
/// fall back to a full recompute.
inline bool cc_incremental_apply(
    LocaleGrid& grid, IncrementalCc* cc,
    const std::vector<std::pair<Index, Index>>& inserts,
    std::int64_t deletes) {
  if (deletes > 0) cc->invalidate();
  if (cc->valid()) {
    for (const auto& [u, v] : inserts) cc->insert_edge(u, v);
  }
  const int n = grid.num_locales();
  const double shard = static_cast<double>(inserts.size() + deletes) /
                       static_cast<double>(n);
  grid.metrics().counter("algo.calls", {{"algo", "cc_incremental"}}).inc();
  grid.coforall_locales([&](LocaleCtx& ctx) {
    CostVector c;
    c.add(CostKind::kCpuOps, 6.0 * shard);
    c.add(CostKind::kRandAccess, 2.0 * shard);
    ctx.parallel_region(c);
  });
  return cc->valid();
}

}  // namespace pgb
