#include "util/sorting.hpp"

#include <algorithm>
#include <array>

namespace pgb {

void merge_sort(std::span<std::int64_t> v) {
  const std::size_t n = v.size();
  if (n < 2) return;
  std::vector<std::int64_t> buf(n);
  std::int64_t* src = v.data();
  std::int64_t* dst = buf.data();
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t lo = 0; lo < n; lo += 2 * width) {
      const std::size_t mid = std::min(lo + width, n);
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::size_t i = lo, j = mid, k = lo;
      while (i < mid && j < hi) dst[k++] = (src[j] < src[i]) ? src[j++] : src[i++];
      while (i < mid) dst[k++] = src[i++];
      while (j < hi) dst[k++] = src[j++];
    }
    std::swap(src, dst);
  }
  if (src != v.data()) std::copy(src, src + n, v.data());
}

void radix_sort(std::span<std::int64_t> v) {
  const std::size_t n = v.size();
  if (n < 2) return;
  constexpr int kBits = 11;
  constexpr std::size_t kBuckets = std::size_t{1} << kBits;
  constexpr std::uint64_t kMask = kBuckets - 1;

  std::uint64_t maxv = 0;
  for (auto x : v) maxv |= static_cast<std::uint64_t>(x);
  std::vector<std::int64_t> buf(n);
  std::int64_t* src = v.data();
  std::int64_t* dst = buf.data();
  std::array<std::size_t, kBuckets + 1> cnt{};
  for (int shift = 0; (maxv >> shift) != 0; shift += kBits) {
    cnt.fill(0);
    for (std::size_t i = 0; i < n; ++i) {
      ++cnt[((static_cast<std::uint64_t>(src[i]) >> shift) & kMask) + 1];
    }
    for (std::size_t b = 0; b < kBuckets; ++b) cnt[b + 1] += cnt[b];
    for (std::size_t i = 0; i < n; ++i) {
      dst[cnt[(static_cast<std::uint64_t>(src[i]) >> shift) & kMask]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != v.data()) std::copy(src, src + n, v.data());
}

bool is_sorted_ascending(std::span<const std::int64_t> v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1] > v[i]) return false;
  }
  return true;
}

std::vector<std::int64_t> sorted_union(std::span<const std::int64_t> a,
                                       std::span<const std::int64_t> b) {
  std::vector<std::int64_t> out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      out.push_back(a[i++]);
    } else if (b[j] < a[i]) {
      out.push_back(b[j++]);
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  while (i < a.size()) out.push_back(a[i++]);
  while (j < b.size()) out.push_back(b[j++]);
  return out;
}

std::vector<std::int64_t> sorted_intersection(
    std::span<const std::int64_t> a, std::span<const std::int64_t> b) {
  std::vector<std::int64_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace pgb
