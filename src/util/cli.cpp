#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace pgb {

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    PGB_REQUIRE(arg.rfind("--", 0) == 0, "expected --flag, got: " + arg);
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

std::optional<std::string> Cli::raw(const std::string& name) {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  consumed_[name] = true;
  return it->second;
}

std::string Cli::get(const std::string& name, const std::string& def,
                     const std::string& help) {
  help_lines_.push_back("  --" + name + " (default: " + def + ")  " + help);
  return raw(name).value_or(def);
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def,
                          const std::string& help) {
  help_lines_.push_back("  --" + name + " (default: " + std::to_string(def) +
                        ")  " + help);
  auto v = raw(name);
  if (!v) return def;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw InvalidArgument("--" + name + " expects an integer, got: " + *v);
  }
}

double Cli::get_double(const std::string& name, double def,
                       const std::string& help) {
  help_lines_.push_back("  --" + name + " (default: " + std::to_string(def) +
                        ")  " + help);
  auto v = raw(name);
  if (!v) return def;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw InvalidArgument("--" + name + " expects a number, got: " + *v);
  }
}

bool Cli::get_bool(const std::string& name, bool def,
                   const std::string& help) {
  help_lines_.push_back("  --" + name +
                        " (default: " + (def ? "true" : "false") + ")  " +
                        help);
  auto v = raw(name);
  if (!v) return def;
  return *v == "true" || *v == "1" || *v == "yes";
}

void Cli::finish() {
  if (help_requested_) {
    std::printf("usage: %s [flags]\n", program_.c_str());
    for (const auto& line : help_lines_) std::printf("%s\n", line.c_str());
    std::exit(0);
  }
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!consumed_[name]) {
      throw InvalidArgument("unknown flag: --" + name);
    }
  }
}

}  // namespace pgb
