#include "util/prefix_sum.hpp"

#include "util/error.hpp"

namespace pgb {

std::int64_t exclusive_scan(std::span<const std::int64_t> v,
                            std::span<std::int64_t> out) {
  PGB_REQUIRE(out.size() >= v.size(), "exclusive_scan: output too small");
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const std::int64_t x = v[i];
    out[i] = acc;
    acc += x;
  }
  return acc;
}

std::int64_t inclusive_scan_inplace(std::span<std::int64_t> v) {
  std::int64_t acc = 0;
  for (auto& x : v) {
    acc += x;
    x = acc;
  }
  return acc;
}

}  // namespace pgb
