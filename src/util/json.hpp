// Minimal JSON reader for the tools that consume our own exporters'
// output (profile.json, metrics.json, Chrome traces).
//
// This is deliberately a *reader*, not a serializer: every JSON file in
// this repo is emitted by hand-rolled, stable-format writers (the
// exporters control key order and float formatting so baselines diff
// byte-for-byte), and the consumers — `pgb_diff`, tests that round-trip
// the trace exporter — only need faithful parsing. Full RFC 8259 input
// grammar: objects, arrays, strings with escapes (incl. \uXXXX, encoded
// back to UTF-8), numbers, true/false/null. Parse errors throw
// InvalidArgument with a byte offset.
//
// Numbers keep both views: `num` (double) always, and `i64` when the
// token was an integer literal that fits std::int64_t — the profile
// gate needs exact integer comparison for message/byte counts, which a
// double round-trip would only guarantee up to 2^53.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pgb {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// std::map keeps members sorted; our writers emit sorted keys anyway,
/// and the consumers look members up by name rather than by position.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double num = 0.0;
  bool is_int = false;       ///< numeric token was an integer in range
  std::int64_t i64 = 0;      ///< exact value when `is_int`
  std::string str;
  std::shared_ptr<JsonArray> arr;
  std::shared_ptr<JsonObject> obj;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member access; throws InvalidArgument when this is not an
  /// object or the key is absent (`find` for the optional variant).
  const JsonValue& at(const std::string& key) const;
  const JsonValue* find(const std::string& key) const;

  /// Array element access with bounds checking.
  const JsonValue& at(std::size_t i) const;
  std::size_t size() const;

  /// Checked scalar accessors (throw on kind mismatch).
  const std::string& as_string() const;
  double as_double() const;
  std::int64_t as_int() const;
  bool as_bool() const;
};

/// Parses one JSON document (surrounding whitespace allowed; trailing
/// non-whitespace is an error). Throws InvalidArgument on malformed
/// input, with the byte offset in the message.
JsonValue json_parse(const std::string& text);

}  // namespace pgb
