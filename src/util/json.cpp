#include "util/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "util/error.hpp"

namespace pgb {

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw InvalidArgument("json: missing member \"" + key + "\"");
  return *v;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) throw InvalidArgument("json: not an object");
  auto it = obj->find(key);
  return it == obj->end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  if (kind != Kind::kArray) throw InvalidArgument("json: not an array");
  if (i >= arr->size()) throw InvalidArgument("json: index out of range");
  return (*arr)[i];
}

std::size_t JsonValue::size() const {
  if (kind == Kind::kArray) return arr->size();
  if (kind == Kind::kObject) return obj->size();
  throw InvalidArgument("json: size() on a scalar");
}

const std::string& JsonValue::as_string() const {
  if (kind != Kind::kString) throw InvalidArgument("json: not a string");
  return str;
}

double JsonValue::as_double() const {
  if (kind != Kind::kNumber) throw InvalidArgument("json: not a number");
  return num;
}

std::int64_t JsonValue::as_int() const {
  if (kind != Kind::kNumber || !is_int) {
    throw InvalidArgument("json: not an integer");
  }
  return i64;
}

bool JsonValue::as_bool() const {
  if (kind != Kind::kBool) throw InvalidArgument("json: not a boolean");
  return boolean;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw InvalidArgument("json: " + why + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= s_.size()) {
      throw InvalidArgument("json: unexpected end of input at byte " +
                            std::to_string(pos_));
    }
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.str = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    v.obj = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      (*v.obj)[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    v.arr = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      v.arr->push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  /// Appends `cp` to `out` as UTF-8.
  static void encode_utf8(unsigned cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // surrogate pair
            if (peek() != '\\') fail("unpaired surrogate");
            ++pos_;
            if (peek() != 'u') fail("unpaired surrogate");
            ++pos_;
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          encode_utf8(cp, out);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    bool integral = true;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    const std::string tok = s_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    errno = 0;
    char* end = nullptr;
    v.num = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("bad number");
    if (integral) {
      errno = 0;
      const long long ll = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end == tok.c_str() + tok.size()) {
        v.is_int = true;
        v.i64 = static_cast<std::int64_t>(ll);
      }
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace pgb
