// Prefix sums (scans). The prefix-sum eWiseMult variant and CSR
// construction use these.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pgb {

/// Exclusive scan: out[i] = sum of v[0..i); returns total sum.
/// `out` may alias `v`.
std::int64_t exclusive_scan(std::span<const std::int64_t> v,
                            std::span<std::int64_t> out);

/// Inclusive scan in place; returns total.
std::int64_t inclusive_scan_inplace(std::span<std::int64_t> v);

}  // namespace pgb
