// Sorting kernels used by the GraphBLAS layer.
//
// The paper's SpMSpV sorts the SPA's nonzero index list with Chapel's
// parallel merge sort and observes that sorting dominates; it suggests an
// integer radix sort would be cheaper. Both are implemented here so the
// ablation bench (abl_spmspv_sort) can compare them. These routines do the
// real work; the *parallel time* each would take on the modeled machine is
// charged by the caller via pgb::machine cost formulas, keeping algorithm
// and performance model in one place per kernel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pgb {

/// Bottom-up merge sort (stable). Sorts `v` in place using a scratch
/// buffer. This mirrors Chapel's mergeSort used in Listing 7.
void merge_sort(std::span<std::int64_t> v);

/// LSD radix sort on non-negative 64-bit integers, 11-bit digits.
/// Values must be >= 0 (sparse indices always are).
void radix_sort(std::span<std::int64_t> v);

/// True if v is sorted ascending.
bool is_sorted_ascending(std::span<const std::int64_t> v);

/// Sorts parallel arrays (idx, val) by idx, stable. Used when building
/// sparse vectors from unordered (index, value) pairs.
template <typename T>
void sort_pairs_by_index(std::vector<std::int64_t>& idx, std::vector<T>& val);

/// Merges two sorted index lists into a sorted union (no duplicates).
std::vector<std::int64_t> sorted_union(std::span<const std::int64_t> a,
                                       std::span<const std::int64_t> b);

/// Intersection of two sorted index lists.
std::vector<std::int64_t> sorted_intersection(std::span<const std::int64_t> a,
                                              std::span<const std::int64_t> b);

// ---- implementation of templates ----

template <typename T>
void sort_pairs_by_index(std::vector<std::int64_t>& idx, std::vector<T>& val) {
  const std::size_t n = idx.size();
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  // Stable sort of the permutation by key; then apply to both arrays.
  std::vector<std::size_t> tmp(n);
  // bottom-up merge on perm
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t lo = 0; lo < n; lo += 2 * width) {
      const std::size_t mid = std::min(lo + width, n);
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::size_t i = lo, j = mid, k = lo;
      while (i < mid && j < hi) {
        tmp[k++] = (idx[perm[j]] < idx[perm[i]]) ? perm[j++] : perm[i++];
      }
      while (i < mid) tmp[k++] = perm[i++];
      while (j < hi) tmp[k++] = perm[j++];
      for (std::size_t t = lo; t < hi; ++t) perm[t] = tmp[t];
    }
  }
  std::vector<std::int64_t> idx2(n);
  std::vector<T> val2(n);
  for (std::size_t i = 0; i < n; ++i) {
    idx2[i] = idx[perm[i]];
    val2[i] = std::move(val[perm[i]]);
  }
  idx = std::move(idx2);
  val = std::move(val2);
}

}  // namespace pgb
