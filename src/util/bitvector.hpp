// Compact bit vector used for SPA "isthere" flags and visited sets.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace pgb {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::int64_t n) : n_(n), words_((n + 63) / 64, 0) {}

  std::int64_t size() const { return n_; }

  bool get(std::int64_t i) const {
    return (words_[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1u;
  }

  void set(std::int64_t i) {
    words_[static_cast<std::size_t>(i >> 6)] |= (std::uint64_t{1} << (i & 63));
  }

  void clear(std::int64_t i) {
    words_[static_cast<std::size_t>(i >> 6)] &= ~(std::uint64_t{1} << (i & 63));
  }

  /// Sets bit i; returns true if it was previously clear (test-and-set).
  bool test_and_set(std::int64_t i) {
    auto& w = words_[static_cast<std::size_t>(i >> 6)];
    const std::uint64_t m = std::uint64_t{1} << (i & 63);
    const bool was_clear = (w & m) == 0;
    w |= m;
    return was_clear;
  }

  void reset_all() { std::fill(words_.begin(), words_.end(), 0); }

  std::int64_t popcount() const {
    std::int64_t c = 0;
    for (auto w : words_) c += __builtin_popcountll(w);
    return c;
  }

 private:
  std::int64_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace pgb
