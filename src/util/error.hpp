// Error handling primitives for pgas-graphblas.
//
// The library throws pgb::Error for recoverable/user-facing failures
// (dimension mismatch, bad arguments) and uses PGB_ASSERT for internal
// invariants that indicate a library bug.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace pgb {

/// Base exception for all pgas-graphblas errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when operand shapes/domains are incompatible
/// (e.g. eWiseMult of vectors with different capacity).
class DimensionMismatch : public Error {
 public:
  explicit DimensionMismatch(const std::string& what) : Error(what) {}
};

/// Thrown for invalid user-supplied arguments (bad grid shape, negative
/// sizes, out-of-range indices in debug-checked paths).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

/// Internal invariant check: always on (cheap checks only in hot paths).
#define PGB_ASSERT(expr, msg)                                        \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::pgb::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                \
  } while (0)

/// User-facing argument validation: throws pgb::InvalidArgument.
#define PGB_REQUIRE(expr, msg)                        \
  do {                                                \
    if (!(expr)) {                                    \
      throw ::pgb::InvalidArgument(std::string(msg)); \
    }                                                 \
  } while (0)

/// Shape validation: throws pgb::DimensionMismatch.
#define PGB_REQUIRE_SHAPE(expr, msg)                    \
  do {                                                  \
    if (!(expr)) {                                      \
      throw ::pgb::DimensionMismatch(std::string(msg)); \
    }                                                   \
  } while (0)

}  // namespace pgb
