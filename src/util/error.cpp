#include "util/error.hpp"

namespace pgb::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "PGB_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg.c_str());
  std::abort();
}

}  // namespace pgb::detail
