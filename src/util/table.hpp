// Aligned table printer used by the benchmark harnesses to emit the
// rows/series corresponding to the paper's figures, plus a CSV mode for
// downstream plotting.
#pragma once

#include <string>
#include <vector>

namespace pgb {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; cells are preformatted strings.
  void row(std::vector<std::string> cells);

  /// Formats a time in seconds with engineering-friendly units (as the
  /// paper's axes do: ms below 1s, µs below 1ms).
  static std::string time(double seconds);
  static std::string num(double v);
  static std::string count(std::int64_t v);

  /// Prints an aligned human-readable table to stdout.
  void print(const std::string& title = "") const;

  /// Prints comma-separated values (header + rows) to stdout.
  void print_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pgb
