// Deterministic random number generation.
//
// All workload generators in pgas-graphblas derive their streams from
// SplitMix64 / Xoshiro256** seeded explicitly, so every experiment is
// reproducible bit-for-bit across runs and platforms, and generation can
// be sharded per row / per locale without coordination (each shard seeds
// its own stream from (seed, shard_id)).
#pragma once

#include <cstdint>

namespace pgb {

/// SplitMix64: tiny, fast, passes BigCrush; used to expand seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the main generator for bulk sampling.
class Xoshiro256 {
 public:
  /// Seeds the four words from SplitMix64(seed), as recommended by the
  /// generator's authors.
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  /// Convenience: derive an independent stream for a shard (row, locale...).
  Xoshiro256(std::uint64_t seed, std::uint64_t shard)
      : Xoshiro256(mix(seed, shard)) {}

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Uses Lemire's multiply-shift reduction
  /// (negligible modulo bias for bound << 2^64, fine for workload gen).
  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool next_bernoulli(double p) { return next_double() < p; }

  static std::uint64_t mix(std::uint64_t seed, std::uint64_t shard) {
    SplitMix64 sm(seed ^ (0x9E3779B97F4A7C15ULL * (shard + 1)));
    return sm.next();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace pgb
