#include "util/table.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/error.hpp"

namespace pgb {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::row(std::vector<std::string> cells) {
  PGB_REQUIRE(cells.size() == header_.size(),
              "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::time(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3f ms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.3f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f ns", seconds * 1e9);
  }
  return buf;
}

std::string Table::num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

std::string Table::count(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

void Table::print(const std::string& title) const {
  if (!title.empty()) std::printf("\n== %s ==\n", title.c_str());
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (r[c].size() > width[c]) width[c] = r[c].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(width[c]), r[c].c_str(),
                  c + 1 == r.size() ? "\n" : "  ");
    }
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& r : rows_) print_row(r);
}

void Table::print_csv() const {
  auto print_row = [](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      std::printf("%s%s", r[c].c_str(), c + 1 == r.size() ? "\n" : ",");
    }
  };
  print_row(header_);
  for (const auto& r : rows_) print_row(r);
}

}  // namespace pgb
