// Minimal command-line flag parser for benches and examples.
//
// Supports `--name=value`, `--name value`, and bare boolean `--name`.
// Unknown flags are an error (catches typos in sweep scripts).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pgb {

class Cli {
 public:
  /// Parses argv. Throws pgb::InvalidArgument on malformed input.
  Cli(int argc, char** argv);

  /// Declares a flag (for --help and unknown-flag detection) and returns
  /// its value or the default.
  std::string get(const std::string& name, const std::string& def,
                  const std::string& help = "");
  std::int64_t get_int(const std::string& name, std::int64_t def,
                       const std::string& help = "");
  double get_double(const std::string& name, double def,
                    const std::string& help = "");
  bool get_bool(const std::string& name, bool def,
                const std::string& help = "");

  /// Call after all get()s: exits with usage on --help, throws on flags
  /// that were passed but never declared.
  void finish();

  const std::string& program() const { return program_; }

 private:
  std::optional<std::string> raw(const std::string& name);

  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> help_lines_;
  bool help_requested_ = false;
};

}  // namespace pgb
