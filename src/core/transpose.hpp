// Matrix transpose. Local CSR transpose is a counting sort over columns;
// the distributed version transposes each block locally and exchanges
// blocks across the grid diagonal in bulk messages.
#pragma once

#include <vector>

#include "machine/cost.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/dist_csr.hpp"

namespace pgb {

/// Local CSR transpose (counting sort; output columns sorted per row).
template <typename T>
Csr<T> transpose_local(const Csr<T>& a) {
  const Index nr = a.nrows();
  const Index nc = a.ncols();
  std::vector<Index> rowptr(static_cast<std::size_t>(nc) + 1, 0);
  for (Index c : a.colids()) ++rowptr[static_cast<std::size_t>(c) + 1];
  for (Index c = 0; c < nc; ++c) {
    rowptr[static_cast<std::size_t>(c) + 1] +=
        rowptr[static_cast<std::size_t>(c)];
  }
  std::vector<Index> colids(static_cast<std::size_t>(a.nnz()));
  std::vector<T> vals(static_cast<std::size_t>(a.nnz()));
  std::vector<Index> cursor(rowptr.begin(), rowptr.end() - 1);
  for (Index r = 0; r < nr; ++r) {
    auto cols = a.row_colids(r);
    auto rvals = a.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Index pos = cursor[static_cast<std::size_t>(cols[k])]++;
      colids[static_cast<std::size_t>(pos)] = r;
      vals[static_cast<std::size_t>(pos)] = rvals[k];
    }
  }
  return Csr<T>::from_parts(nc, nr, std::move(rowptr), std::move(colids),
                            std::move(vals));
}

/// Distributed transpose: block (R, C) becomes block (C, R) of the result.
template <typename T>
DistCsr<T> transpose_dist(const DistCsr<T>& a) {
  auto& grid = a.grid();
  Coo<T> coo(a.ncols(), a.nrows());
  coo.reserve(static_cast<std::size_t>(a.nnz()));

  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& blk = a.block(l);
    for (Index lr = 0; lr < blk.csr.nrows(); ++lr) {
      auto cols = blk.csr.row_colids(lr);
      auto vals = blk.csr.row_values(lr);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        coo.add(cols[k], blk.rlo + lr, vals[k]);
      }
    }
    // Local block transpose (counting sort) ...
    CostVector c;
    c.add(CostKind::kStreamBytes, 32.0 * static_cast<double>(blk.csr.nnz()));
    c.add(CostKind::kRandAccess, static_cast<double>(blk.csr.nnz()));
    c.add(CostKind::kCpuOps, 16.0 * static_cast<double>(blk.csr.nnz()));
    ctx.parallel_region(c);
    // ... then one bulk exchange with the diagonal partner.
    const int partner =
        grid.locale(l).col * grid.cols() + grid.locale(l).row;
    if (partner != l && partner < grid.num_locales()) {
      ctx.remote_bulk(partner, 16 * blk.csr.nnz());
    }
  });
  return DistCsr<T>::from_coo(grid, coo);
}

}  // namespace pgb
