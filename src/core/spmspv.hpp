// Sparse matrix - sparse vector multiplication, y <- x A, on a semiring
// (paper Section III-D, Listings 7 and 8).
//
// Shared memory (spmspv_shm): the SPA algorithm of Gilbert-Moler-Schreiber:
//   1. SPA:    for every nonzero x[r], merge row A[r,:] into the sparse
//              accumulator (dense values + isthere flags + nzinds list);
//   2. Sort:   sort the accumulated output indices (Chapel merge sort by
//              default — the step the paper finds dominant — or the radix
//              sort it suggests as future work);
//   3. Output: build the sorted output vector from the SPA.
//
// Distributed memory (spmspv_dist), on the 2-D block distribution:
//   1. Gather:  every locale (R, C) assembles the x entries for row-block
//               R from the pc owners along its processor row. The paper's
//               Listing 8 copies these *element by element* — the
//               fine-grained traffic that ends up dominating (Figs 8-9).
//               opts.bulk_gather switches to one bulk get per piece
//               (the paper's suggested bulk-synchronous remedy).
//   2. Local:   spmspv_shm on the local block.
//   3. Scatter: partial outputs are accumulated into the 1-D distributed
//               result; the paper writes one element at a time into a
//               global atomic "isthere" array. opts.bulk_scatter batches
//               per destination instead.
#pragma once

#include <vector>

#include "core/descriptor.hpp"
#include "core/kernel_costs.hpp"
#include "machine/cost.hpp"
#include "obs/span.hpp"
#include "runtime/aggregator.hpp"
#include "runtime/collectives.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/dist_dense_vec.hpp"
#include "sparse/dist_sparse_vec.hpp"
#include "sparse/spa.hpp"
#include "util/sorting.hpp"

namespace pgb {

enum class SortAlgo {
  kMerge,  ///< Chapel's parallel merge sort (paper default)
  kRadix,  ///< LSD radix sort (paper's suggested improvement [9])
};

enum class SpmspvAlgo {
  /// The paper's Listing 7: one SPA over the whole column range, then
  /// sort the touched indices.
  kSpaSort,
  /// The work-efficient algorithm of the paper's reference [9] (Azad &
  /// Buluç, IPDPS 2017): route nonzeros into cache-resident column
  /// buckets, accumulate per bucket, and emit bucket-by-bucket — output
  /// comes out sorted with *no* global sort step.
  kBucket,
};

struct SpmspvOptions {
  SpmspvAlgo algo = SpmspvAlgo::kSpaSort;
  SortAlgo sort = SortAlgo::kMerge;  ///< sort used by kSpaSort
  /// Communication schedule for gather and scatter: fine-grained
  /// element-by-element (the paper's Listing 8), one hand-rolled bulk
  /// transfer per peer, or conveyor-style aggregation (per-peer buffers
  /// flushed as capacity-sized bulks; see runtime/aggregator.hpp).
  CommMode comm = CommMode::kFine;
  /// Buffering parameters when comm == CommMode::kAggregated.
  AggConfig agg;
  bool bulk_gather = false;   ///< legacy flag: batch the gather
  bool bulk_scatter = false;  ///< legacy flag: batch the scatter
  /// Use tree collectives (allgather along processor rows for the input,
  /// reduce-scatter along processor columns for the output) instead of
  /// point-to-point transfers — the facility the paper's Section IV asks
  /// Chapel to provide. Overrides every other comm setting.
  bool use_collectives = false;
  /// Straggler work-shedding (opt-in, 0 disables): when a locale's host
  /// has been flagged a barrier straggler (LocaleGrid straggler
  /// detection), this fraction of its local-multiply time is shed to the
  /// fastest non-straggler locale in the same processor row. The helper
  /// pays the shed compute time *and* pulls the shed share of the
  /// gathered inputs (thief-pays work stealing). Results are unchanged —
  /// only modeled charging moves between clocks.
  double straggler_shed = 0.0;

  bool aggregated() const { return comm == CommMode::kAggregated; }
  bool gather_is_bulk() const {
    return bulk_gather || comm == CommMode::kBulk;
  }
  bool scatter_is_bulk() const {
    return bulk_scatter || comm == CommMode::kBulk;
  }

  /// Convenience for sweeps: this options set with another schedule.
  SpmspvOptions with_comm(CommMode m) const {
    SpmspvOptions o = *this;
    o.comm = m;
    return o;
  }
};


namespace detail {

/// Bucket SpMSpV (SpmspvAlgo::kBucket). Buckets are sized to stay
/// cache-resident (~4K columns each); routing is a streaming pass and
/// per-bucket accumulation is a dense scan of a small slice, so the
/// global sort of the SPA algorithm disappears entirely.
template <typename TA, typename T, typename SR>
SparseVec<T> spmspv_shm_bucket(LocaleCtx& ctx, const Csr<TA>& a,
                               Index row_lo, const SparseVec<T>& x,
                               Index col_lo, Index col_hi, const SR& sr,
                               Trace* trace) {
  constexpr Index kBucketWidth = 4096;
  const Index ncols = col_hi - col_lo;
  const Index nbuckets = std::max<Index>(1, (ncols + kBucketWidth - 1) /
                                                kBucketWidth);

  // ---- Step 1: route (column, value) pairs into buckets ----
  obs::LocaleSpan route_span(ctx, "spmspv.route");
  double t0 = ctx.clock().now();
  std::vector<std::vector<std::pair<Index, T>>> buckets(
      static_cast<std::size_t>(nbuckets));
  Index visited = 0;
  for (Index p = 0; p < x.nnz(); ++p) {
    const Index r = x.index_at(p) - row_lo;
    PGB_ASSERT(r >= 0 && r < a.nrows(), "spmspv: x index out of row range");
    const T& xv = x.value_at(p);
    auto cols = a.row_colids(r);
    auto vals = a.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Index b = (cols[k] - col_lo) / kBucketWidth;
      buckets[static_cast<std::size_t>(b)].emplace_back(
          cols[k], sr.multiply(xv, static_cast<T>(vals[k])));
    }
    visited += static_cast<Index>(cols.size());
  }
  {
    CostVector c;
    // Streaming read of the selected rows plus a mostly-sequential append
    // per nonzero (per-thread sub-buckets: no atomics). Routing touches
    // nbuckets append cursors — cache-resident.
    c.add(CostKind::kRandAccess, 2.0 * static_cast<double>(x.nnz()));
    c.add(CostKind::kCpuOps, kSpaOpsPerRow * static_cast<double>(x.nnz()));
    c.add(CostKind::kStreamBytes, 32.0 * static_cast<double>(visited));
    c.add(CostKind::kCpuOps, 25.0 * static_cast<double>(visited));
    ctx.parallel_region(c);
  }
  route_span.end();
  if (trace) trace->add("spa", ctx.clock().now() - t0);
  if (trace) trace->add("sort", 0.0);  // there is no sort step

  // ---- Step 2: per-bucket dense accumulation, emitted in order ----
  obs::LocaleSpan emit_span(ctx, "spmspv.emit");
  t0 = ctx.clock().now();
  std::vector<Index> idx;
  std::vector<T> val;
  std::vector<T> slot(static_cast<std::size_t>(
      std::min<Index>(kBucketWidth, ncols)));
  BitVector there(std::min<Index>(kBucketWidth, ncols));
  double scanned_bytes = 0.0;
  for (Index b = 0; b < nbuckets; ++b) {
    auto& bucket = buckets[static_cast<std::size_t>(b)];
    if (bucket.empty()) continue;
    const Index blo = col_lo + b * kBucketWidth;
    const Index bhi = std::min(col_hi, blo + kBucketWidth);
    for (const auto& [j, v] : bucket) {
      const Index off = j - blo;
      if (there.test_and_set(off)) {
        slot[static_cast<std::size_t>(off)] = v;
      } else {
        slot[static_cast<std::size_t>(off)] =
            sr.combine(slot[static_cast<std::size_t>(off)], v);
      }
    }
    for (Index j = blo; j < bhi; ++j) {
      if (there.get(j - blo)) {
        idx.push_back(j);
        val.push_back(slot[static_cast<std::size_t>(j - blo)]);
        there.clear(j - blo);
      }
    }
    scanned_bytes += static_cast<double>(bhi - blo);
  }
  {
    CostVector c;
    // Accumulation hits a cache-resident slice (cheap "random" access)
    // and the emit pass streams each touched bucket's range once.
    c.add(CostKind::kCpuOps, 14.0 * static_cast<double>(visited));
    c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(visited) +
                                      scanned_bytes +
                                      24.0 * static_cast<double>(idx.size()));
    c.add(CostKind::kCpuOps, 6.0 * static_cast<double>(idx.size()));
    ctx.parallel_region(c);
  }
  if (trace) trace->add("output", ctx.clock().now() - t0);

  return SparseVec<T>::from_sorted(col_hi - col_lo, std::move(idx),
                                   std::move(val));
}

}  // namespace detail

/// Shared-memory SpMSpV over one CSR block.
///
/// x's indices are global row ids in [row_lo, row_lo + a.nrows()); a's
/// column ids are global within [col_lo, col_hi). The result's indices
/// are global column ids; its capacity is col_hi - col_lo.
///
/// If `trace` is given, phase times are recorded under "spa", "sort",
/// "output" (Fig 7's components).
template <typename TA, typename T, typename SR>
SparseVec<T> spmspv_shm(LocaleCtx& ctx, const Csr<TA>& a, Index row_lo,
                        const SparseVec<T>& x, Index col_lo, Index col_hi,
                        const SR& sr, const SpmspvOptions& opt = {},
                        Trace* trace = nullptr) {
  PGB_REQUIRE_SHAPE(x.capacity() >= a.nrows(),
                    "spmspv: x capacity must cover the matrix rows");
  if (opt.algo == SpmspvAlgo::kBucket) {
    return detail::spmspv_shm_bucket(ctx, a, row_lo, x, col_lo, col_hi, sr,
                                     trace);
  }
  // ---- Step 1: SPA merge of the selected rows ----
  obs::LocaleSpan spa_span(ctx, "spmspv.spa");
  double t0 = ctx.clock().now();
  Spa<T> spa(col_lo, col_hi);
  Index visited = 0;
  for (Index p = 0; p < x.nnz(); ++p) {
    const Index r = x.index_at(p) - row_lo;
    PGB_ASSERT(r >= 0 && r < a.nrows(), "spmspv: x index out of row range");
    const T& xv = x.value_at(p);
    auto cols = a.row_colids(r);
    auto vals = a.row_values(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      spa.accumulate(cols[k], sr.multiply(xv, static_cast<T>(vals[k])),
                     sr.add);
    }
    visited += static_cast<Index>(cols.size());
  }
  const Index out_nnz = spa.nnz();
  {
    CostVector c;
    // SPA allocation/first touch (Chapel allocates isthere/localy per
    // call), row-pointer fetches, then per visited nonzero: colid+value
    // stream, isthere test-and-set, k.fetchAdd per fresh index.
    c.add(CostKind::kStreamBytes,
          9.0 * static_cast<double>(col_hi - col_lo));
    c.add(CostKind::kRandAccess, 2.0 * static_cast<double>(x.nnz()));
    c.add(CostKind::kCpuOps, kSpaOpsPerRow * static_cast<double>(x.nnz()));
    c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(visited));
    c.add(CostKind::kCpuOps, kSpaOpsPerNnz * static_cast<double>(visited));
    c.add(CostKind::kAtomicDistinct, static_cast<double>(visited));
    c.add(CostKind::kAtomicContended, static_cast<double>(out_nnz));
    c.add(CostKind::kStreamBytes, 8.0 * static_cast<double>(out_nnz));
    ctx.parallel_region(c);
  }
  spa_span.end();
  if (trace) trace->add("spa", ctx.clock().now() - t0);

  // ---- Step 2: sort the output indices ----
  obs::LocaleSpan sort_span(ctx, "spmspv.sort");
  t0 = ctx.clock().now();
  std::vector<Index>& nzinds = spa.nzinds();
  const CostVector sc = opt.sort == SortAlgo::kMerge
                            ? merge_sort_cost(out_nnz)
                            : radix_sort_cost(out_nnz, col_hi);
  if (opt.sort == SortAlgo::kMerge) {
    merge_sort(nzinds);
  } else {
    radix_sort(nzinds);
  }
  // Final merge passes limit parallelism: ~8% of the sort is serial.
  ctx.parallel_region(sc.scaled(0.92));
  ctx.serial_region(sc.scaled(0.08));
  sort_span.end();
  if (trace) trace->add("sort", ctx.clock().now() - t0);

  // ---- Step 3: populate the output vector ----
  obs::LocaleSpan output_span(ctx, "spmspv.output");
  t0 = ctx.clock().now();
  std::vector<Index> idx(nzinds.begin(), nzinds.end());
  std::vector<T> val;
  val.reserve(idx.size());
  for (Index j : idx) val.push_back(spa.value(j));
  {
    CostVector c;
    c.add(CostKind::kCpuOps, kSpmspvOutputOps * static_cast<double>(out_nnz));
    c.add(CostKind::kRandAccess, static_cast<double>(out_nnz));
    c.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(out_nnz));
    ctx.parallel_region(c);
  }
  if (trace) trace->add("output", ctx.clock().now() - t0);

  return SparseVec<T>::from_sorted(col_hi - col_lo, std::move(idx),
                                   std::move(val));
}

/// Distributed SpMSpV: y <- x A over the 2-D block distribution.
/// Phase times are recorded in the grid's trace under "gather", "local",
/// "scatter" (Figs 8-9's components).
/// TA (matrix) and T (vector) may differ; matrix values are cast to T
/// before the semiring multiply.
///
/// `mask` (optional) filters the output *inside* the owner-side finalize
/// step — the fused masked vxm of the GraphBLAS spec, which the paper's
/// conclusion singles out as unexplored in distributed memory. Fusing
/// saves materializing the unmasked result and a full extra pass
/// (compare apply_mask).
namespace detail {

/// Picks the helper locale for straggler shedding: the processor-row
/// peer with the smallest clock whose host has a clean straggler record.
/// Returns -1 (no shedding) when shedding is off, this locale's host was
/// never flagged, or no clean peer exists. Deterministic: ties resolve
/// to the lowest locale id, and the decision depends only on simulated
/// clocks, so two same-seed runs shed identically.
inline int shed_helper(LocaleGrid& grid, int l, int pc, double shed,
                       const RemapView& remap) {
  if (shed <= 0.0) return -1;
  PGB_REQUIRE(shed < 1.0, "spmspv: straggler_shed must be in [0, 1)");
  const int h = remap.host(l);
  if (grid.straggler_hits(h) <= 0) return -1;
  const int prow = grid.locale(l).row;
  int best = -1;
  double best_t = 0.0;
  for (int i = 0; i < pc; ++i) {
    const int cand = prow * pc + i;
    const int ch = remap.host(cand);
    if (ch == h || grid.straggler_hits(ch) > 0) continue;
    const double t = grid.clock(ch).now();
    if (best < 0 || t < best_t) {
      best = cand;
      best_t = t;
    }
  }
  return best;
}

template <typename TA, typename T, typename SR>
DistSparseVec<T> spmspv_dist_impl(const DistCsr<TA>& a,
                                  const DistSparseVec<T>& x, const SR& sr,
                                  const SpmspvOptions& opt,
                                  const DistDenseVec<std::uint8_t>* mask,
                                  MaskMode mask_mode) {
  PGB_REQUIRE_SHAPE(x.capacity() == a.nrows(),
                    "spmspv: x capacity must equal matrix rows");
  PGB_REQUIRE_SHAPE(&x.grid() == &a.grid(),
                    "spmspv: operands live on different grids");
  auto& grid = a.grid();
  const int pc = grid.cols();
  const int pr = grid.rows();
  const int nloc = grid.num_locales();
  grid.metrics().counter("kernel.calls", {{"kernel", "spmspv_dist"}}).inc();

  // Logical->physical host view: after a degraded-mode remap a peer may
  // be co-hosted with us, turning its "remote" pieces into local memory
  // reads. Under the identity mapping remapped() is false and every
  // branch below reduces to the original formulas bit-for-bit.
  RemapView remap(grid.membership());

  // Inspector–executor (CommMode::kAuto): each comm site records its
  // wave's remote footprint up front and is bound to the cheapest
  // predicted schedule; manual modes keep their hardcoded schedule
  // (insp stays null). Collectives override every schedule, auto
  // included. Data movement is identical either way — only charging
  // differs — so auto's outputs are byte-identical to every manual mode.
  Inspector* insp = (opt.comm == CommMode::kAuto && !opt.use_collectives)
                        ? &grid.inspector()
                        : nullptr;
  SiteDecision gather_dec;
  if (insp != nullptr) {
    SiteFootprint fp;
    fp.bytes_each = 16;
    fp.fanout = static_cast<double>(pc);  // pc readers hit each source
    fp.chain_rts = kRemoteElemRts + 1.0;
    fp.read_only = true;  // x is immutable for the whole wave
    fp.gather = true;
    for (int l = 0; l < nloc; ++l) {
      const int prow = grid.locale(l).row;
      std::int64_t elems = 0;
      std::int64_t pairs = 0;
      for (int i = 0; i < pc; ++i) {
        const int src = prow * pc + i;
        if (src == l) continue;
        ++pairs;
        elems += x.local(src).nnz();
      }
      fp.pairs += pairs;
      fp.elements += elems;
      if (elems > fp.max_initiator_elements) {
        fp.max_initiator_elements = elems;
        fp.max_initiator_pairs = pairs;
      }
    }
    fp.block_bytes = 16 * fp.max_initiator_elements;
    gather_dec = insp->decide("spmspv.gather", fp);
  }
  const SiteStrategy gather_strat =
      insp != nullptr          ? gather_dec.strategy
      : opt.aggregated()       ? SiteStrategy::kAggregated
      : opt.gather_is_bulk()   ? SiteStrategy::kBulk
                               : SiteStrategy::kFine;

  // ---- Step 1: gather x along each processor row ----
  obs::GridSpan gather_span(grid, "spmspv.gather");
  CommStats cs0 = grid.comm_stats();
  double t0 = grid.time();
  std::vector<SparseVec<T>> xr(nloc);
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& blk = a.block(l);
    const int prow = grid.locale(l).row;
    std::vector<Index> idx;
    std::vector<T> val;
    // Aggregated mode: the known-size remote pieces are pulled as
    // capacity-sized chunks through a double-buffered channel, so chunk
    // transfers from the pc sources overlap one another.
    AggConfig gather_cfg = opt.agg;
    gather_cfg.contention = static_cast<double>(pc);
    if (insp != nullptr) gather_cfg.capacity = gather_dec.agg_capacity;
    AggChannel chan(ctx, gather_cfg);
    // Per-wave cached host view: this locale's host is resolved once
    // here, and per-source hosts go through the RemapView's cached
    // table — no per-element grid.host_of() walks.
    const int self_host = remap.host(l);
    for (int i = 0; i < pc; ++i) {
      const int src = prow * pc + i;
      const auto& piece = x.local(src);
      idx.insert(idx.end(), piece.domain().indices().begin(),
                 piece.domain().indices().end());
      val.insert(val.end(), piece.values().begin(), piece.values().end());
      const bool co_hosted = remap.remapped() && remap.host(src) == self_host;
      if (src != l && !co_hosted && !opt.use_collectives) {
        if (gather_strat == SiteStrategy::kReplicate) {
          // Selective read-only replication: the source piece is shipped
          // once per reader host through a binomial broadcast tree
          // (depth ceil(log2(pc)) instead of pc serialized serves) and
          // stays resident; while its content fingerprint and the
          // membership epoch both hold, later waves read the replica for
          // free (inspector.cache.hits). A remap flushes every replica.
          const std::uint64_t tag = piece.fingerprint();
          if (!insp->cache_lookup("spmspv.gather", src, self_host, tag)) {
            const std::int64_t bytes = 16 * piece.nnz();
            ctx.remote_rt(src, 8);
            ctx.remote_bulk(src, bytes);
            const int depth =
                replication_tree_depth(static_cast<double>(pc));
            if (depth > 1) {
              const bool intra =
                  grid.same_node(self_host, remap.host(src));
              ctx.clock().advance(
                  static_cast<double>(depth - 1) *
                  grid.net().bulk(bytes, intra, grid.colocated()));
            }
            insp->cache_install("spmspv.gather", src, self_host, tag,
                                bytes);
          }
          continue;
        }
        // Domain-size query, then the element copies. Every locale in
        // this processor row pulls from the same pc sources at once, so
        // each source's AM handler serves pc requesters (contention).
        ctx.remote_rt(src, 8);
        if (gather_strat == SiteStrategy::kAggregated) {
          chan.get_elems(src, piece.nnz(), 16);
        } else if (gather_strat == SiteStrategy::kBulk) {
          // The source serves one bulk copy to each of the pc locales in
          // this processor row, serially (no broadcast tree in the
          // paper's runtime): receiver-side contention scales the
          // effective transfer.
          ctx.remote_bulk(src, 16 * piece.nnz() * pc);
        } else {
          ctx.remote_chain(src, piece.nnz(), kRemoteElemRts + 1.0, 16,
                           /*contention=*/static_cast<double>(pc));
        }
      }
    }
    chan.drain();
    xr[l] = SparseVec<T>::from_sorted(blk.rhi - blk.rlo, std::move(idx),
                                      std::move(val));
  });
  if (opt.use_collectives) {
    for (int r = 0; r < pr; ++r) {
      std::int64_t max_piece = 0;
      for (int m : row_members(grid, r)) {
        max_piece = std::max(max_piece, 16 * x.local(m).nnz());
      }
      allgather(grid, row_members(grid, r), max_piece,
                CollectiveAlgo::kTree);
    }
    grid.barrier_all();
  }
  gather_span.end();
  {
    const CommStats cs1 = grid.comm_stats();
    grid.metrics()
        .counter("spmspv.messages", {{"phase", "gather"}})
        .inc(cs1.messages - cs0.messages);
    grid.metrics()
        .counter("spmspv.bytes", {{"phase", "gather"}})
        .inc(cs1.bytes - cs0.bytes);
  }
  if (insp != nullptr) insp->observe("spmspv.gather", grid.time() - t0);
  grid.trace().add("gather", grid.time() - t0);

  // ---- Step 2: local multiply ----
  obs::GridSpan local_span(grid, "spmspv.local");
  t0 = grid.time();
  std::vector<SparseVec<T>> ly(nloc);
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& blk = a.block(l);
    // Straggler shedding (opt-in): if barrier detection flagged this
    // locale's host, move opt.straggler_shed of the multiply's modeled
    // time to the fastest clean locale in this processor row. The real
    // compute still runs here (results are untouched); the helper's
    // clock pays the shed fraction plus the thief-pays input pull.
    const int helper =
        detail::shed_helper(grid, l, pc, opt.straggler_shed, remap);
    if (helper < 0) {
      ly[l] = spmspv_shm(ctx, blk.csr, blk.rlo, xr[l], blk.clo, blk.chi, sr,
                         opt);
      return;
    }
    const double shed = opt.straggler_shed;
    const double before = ctx.clock().now();
    ctx.set_charge_scale(1.0 - shed);
    ly[l] = spmspv_shm(ctx, blk.csr, blk.rlo, xr[l], blk.clo, blk.chi, sr,
                       opt);
    ctx.set_charge_scale(1.0);
    const double charged = ctx.clock().now() - before;
    // The helper executes the shed share: it re-pays the time the
    // straggler saved (charged is (1-shed) of the full cost) and pulls
    // its share of the gathered input.
    LocaleCtx hctx(grid, helper);
    hctx.remote_bulk(l, static_cast<std::int64_t>(
                            16.0 * static_cast<double>(xr[l].nnz()) * shed));
    grid.clock(remap.host(helper)).advance(charged / (1.0 - shed) * shed);
    grid.metrics().counter("spmspv.rebalanced").inc();
    auto* session = grid.trace_session();
    if (session != nullptr) {
      session->instant(remap.host(l), "spmspv.shed", ctx.clock().now(),
                       {{"helper", std::to_string(helper)},
                        {"fraction", std::to_string(shed)}});
    }
  });
  local_span.end();
  grid.trace().add("local", grid.time() - t0);

  // Scatter-site inspection: the partial outputs are known after the
  // local phase; each initiator sprays its elements across ~pr owners
  // (the owners of its column range), so pr is both the pair estimate
  // per initiator and the receiver-side fan-in. Writes can't replicate.
  SiteDecision scatter_dec;
  if (insp != nullptr) {
    SiteFootprint fp;
    fp.bytes_each = 16;
    fp.fanout = static_cast<double>(pr);
    fp.gather = false;
    // The bulk branch below spawns one packing region per destination;
    // that task-spawn floor is what it costs over fine/agg per pair.
    fp.bulk_pair_overhead = grid.region_floor();
    for (int l = 0; l < nloc; ++l) {
      const std::int64_t elems = ly[l].nnz();
      const std::int64_t pairs =
          std::min<std::int64_t>(nloc > 1 ? nloc - 1 : 0, pr);
      fp.pairs += pairs;
      fp.elements += elems;
      if (elems > fp.max_initiator_elements) {
        fp.max_initiator_elements = elems;
        fp.max_initiator_pairs = pairs;
      }
    }
    scatter_dec = insp->decide("spmspv.scatter", fp);
  }
  const SiteStrategy scatter_strat =
      insp != nullptr          ? scatter_dec.strategy
      : opt.aggregated()       ? SiteStrategy::kAggregated
      : opt.scatter_is_bulk()  ? SiteStrategy::kBulk
                               : SiteStrategy::kFine;

  // ---- Step 3: scatter/accumulate into the 1-D distributed output ----
  obs::GridSpan scatter_span(grid, "spmspv.scatter");
  cs0 = grid.comm_stats();
  t0 = grid.time();
  DistSparseVec<T> y(grid, a.ncols());
  std::vector<Spa<T>> yspa;
  yspa.reserve(nloc);
  for (int o = 0; o < nloc; ++o) {
    yspa.emplace_back(y.dist().lo(o), y.dist().hi(o));
  }
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& part = ly[l];
    // Per-wave cached host view (same hoist as the gather).
    const int self_host = remap.host(l);
    std::vector<std::int64_t> count_to(static_cast<std::size_t>(nloc), 0);
    if (scatter_strat == SiteStrategy::kAggregated && !opt.use_collectives) {
      // Conveyor schedule: accumulate-at-owner requests ride per-peer
      // buffers; every flush is one bulk (plus header) instead of a
      // message per element. Per-peer FIFO delivery keeps the per-slot
      // accumulation order of the fine-grained path, so results are
      // bit-identical.
      struct Update {
        Index j;
        T v;
      };
      AggConfig cfg = opt.agg;
      cfg.contention = static_cast<double>(pr);
      if (insp != nullptr) cfg.capacity = scatter_dec.agg_capacity;
      DstAggregator<Update> agg(
          ctx,
          [&](int peer, std::vector<Update>& batch) {
            for (const auto& u : batch) {
              yspa[peer].accumulate(u.j, u.v, sr.add);
            }
          },
          cfg);
      for (Index p = 0; p < part.nnz(); ++p) {
        const Index j = part.index_at(p);
        const int o = y.dist().owner(j);
        agg.push(o, Update{j, part.value_at(p)});
        ++count_to[o];
      }
      agg.flush_all();
      CostVector c;  // local accumulation + packing of the remote batches
      c.add(CostKind::kRandAccess, static_cast<double>(count_to[l]));
      c.add(CostKind::kCpuOps, 20.0 * static_cast<double>(count_to[l]));
      for (int o = 0; o < nloc; ++o) {
        if (o == l || count_to[o] == 0) continue;
        if (remap.remapped() && remap.host(o) == self_host) {
          // Co-hosted owner after a degraded remap: straight local
          // accumulation, nothing to pack.
          c.add(CostKind::kRandAccess, static_cast<double>(count_to[o]));
          c.add(CostKind::kCpuOps, 20.0 * static_cast<double>(count_to[o]));
          continue;
        }
        c.add(CostKind::kCpuOps, 10.0 * static_cast<double>(count_to[o]));
        c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(count_to[o]));
      }
      ctx.parallel_region(c);
      return;
    }
    for (Index p = 0; p < part.nnz(); ++p) {
      const Index j = part.index_at(p);
      const int o = y.dist().owner(j);
      yspa[o].accumulate(j, part.value_at(p), sr.add);
      ++count_to[o];
    }
    for (int o = 0; o < nloc; ++o) {
      if (count_to[o] == 0) continue;
      if (opt.use_collectives && o != l) {
        continue;  // charged below as a reduce-scatter per column
      }
      // Co-hosted owners (degraded remap) accumulate locally; identity
      // mapping reduces this to the plain o == l test.
      const bool local_dst =
          o == l || (remap.remapped() && remap.host(o) == self_host);
      if (local_dst) {
        CostVector c;
        c.add(CostKind::kRandAccess, static_cast<double>(count_to[o]));
        c.add(CostKind::kCpuOps, 20.0 * static_cast<double>(count_to[o]));
        ctx.parallel_region(c);
      } else if (scatter_strat == SiteStrategy::kBulk) {
        CostVector c;  // pack the destination's batch
        c.add(CostKind::kCpuOps, 10.0 * static_cast<double>(count_to[o]));
        c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(count_to[o]));
        ctx.parallel_region(c);
        // Every destination drains batches from the pr locales of one
        // processor column, serially: receiver-side contention.
        ctx.remote_bulk(o, 16 * count_to[o] * pr);
      } else {
        // One remote atomic write per element (paper Listing 8 step 3);
        // each destination is hammered by the pr locales of one
        // processor column at once.
        ctx.remote_msgs(o, count_to[o], 16,
                        /*contention=*/static_cast<double>(pr));
      }
    }
  });
  if (opt.use_collectives) {
    for (int c = 0; c < pc; ++c) {
      std::int64_t volume = 0;
      for (int m : col_members(grid, c)) volume += 16 * ly[m].nnz();
      reduce_scatter(grid, col_members(grid, c), volume,
                     CollectiveAlgo::kTree);
    }
    grid.barrier_all();
  }
  // Finalize: every output owner converts its dense accumulator to the
  // sparse result (the paper's denseToSparse scan).
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int o = ctx.locale();
    auto& spa = yspa[o];
    std::vector<Index>& nz = spa.nzinds();
    merge_sort(nz);
    std::vector<Index> idx;
    std::vector<T> val;
    idx.reserve(nz.size());
    val.reserve(nz.size());
    for (Index j : nz) {
      if (mask != nullptr && mask_mode != MaskMode::kNone) {
        const bool set = mask->local(o)[j] != 0;
        if (mask_mode == MaskMode::kMask ? !set : set) continue;
      }
      idx.push_back(j);
      val.push_back(spa.value(j));
    }
    CostVector c;
    if (mask != nullptr) {
      c.add(CostKind::kRandAccess, 0.25 * static_cast<double>(nz.size()));
    }
    c.add(CostKind::kStreamBytes,
          1.0 * static_cast<double>(y.dist().local_size(o)));
    c.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(idx.size()));
    c.add(CostKind::kCpuOps, 8.0 * static_cast<double>(idx.size()));
    ctx.parallel_region(c);
    y.local(o) = SparseVec<T>::from_sorted(y.dist().local_size(o),
                                           std::move(idx), std::move(val));
  });
  scatter_span.end();
  {
    const CommStats cs1 = grid.comm_stats();
    grid.metrics()
        .counter("spmspv.messages", {{"phase", "scatter"}})
        .inc(cs1.messages - cs0.messages);
    grid.metrics()
        .counter("spmspv.bytes", {{"phase", "scatter"}})
        .inc(cs1.bytes - cs0.bytes);
  }
  if (insp != nullptr) insp->observe("spmspv.scatter", grid.time() - t0);
  grid.trace().add("scatter", grid.time() - t0);
  return y;
}

}  // namespace detail

/// Distributed SpMSpV, unmasked.
template <typename TA, typename T, typename SR>
DistSparseVec<T> spmspv_dist(const DistCsr<TA>& a,
                             const DistSparseVec<T>& x, const SR& sr,
                             const SpmspvOptions& opt = {}) {
  return detail::spmspv_dist_impl(a, x, sr, opt, nullptr, MaskMode::kNone);
}

/// Distributed SpMSpV with a fused dense Boolean mask (optionally
/// complemented): output entries failing the mask are dropped at their
/// owner before the result vector is built.
template <typename TA, typename T, typename SR>
DistSparseVec<T> spmspv_dist_masked(const DistCsr<TA>& a,
                                    const DistSparseVec<T>& x,
                                    const DistDenseVec<std::uint8_t>& mask,
                                    MaskMode mode, const SR& sr,
                                    const SpmspvOptions& opt = {}) {
  PGB_REQUIRE_SHAPE(mask.size() == a.ncols(),
                    "spmspv: mask size must equal matrix columns");
  return detail::spmspv_dist_impl(a, x, sr, opt, &mask, mode);
}

}  // namespace pgb
