#include "core/kernel_costs.hpp"

#include <cmath>

namespace pgb {

double remote_search_rts(double local_nnz) {
  const double probes =
      local_nnz > 1.0 ? std::ceil(std::log2(local_nnz)) : 1.0;
  // binary-search probes + descriptor fetch + final element access
  return probes + 2.0;
}

}  // namespace pgb
