// General GraphBLAS Assign and Extract with index vectors.
//
// The paper implements only the restricted Assign whose domains match
// ("In general, assign is a very powerful primitive that can require
// O((nnz(A)+nnz(B))/sqrt(p)) communication [8]"). This header implements
// the general form for vectors:
//
//   assign_indexed:  A[I[k]] = B[k]   for every nonzero B[k]
//   extract_indexed: Z[k]    = A[I[k]]
//
// I is a global index map (|I| = capacity of B / Z). In distributed
// memory every B entry is routed to the owner of its target index — the
// communication pattern [8] analyzes. The schedule is selectable
// (CommMode): per-element messages, one bulk batch per destination
// (default, the historical behaviour), or conveyor-style aggregation.
// Entries of A at assigned positions are overwritten; other entries are
// kept (merge semantics) or dropped (replace semantics) per descriptor.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/descriptor.hpp"
#include "core/kernel_costs.hpp"
#include "machine/cost.hpp"
#include "obs/span.hpp"
#include "runtime/aggregator.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/dist_sparse_vec.hpp"

namespace pgb {

/// A[I[k]] = B[k] for every nonzero B[k]. `index_map` must be a
/// duplicate-free mapping into [0, A.capacity()).
template <typename T>
void assign_indexed(DistSparseVec<T>& a, const std::vector<Index>& index_map,
                    const DistSparseVec<T>& b,
                    OutputMode mode = OutputMode::kMerge,
                    CommMode comm = CommMode::kBulk,
                    const AggConfig& agg_cfg = {}) {
  PGB_REQUIRE_SHAPE(&a.grid() == &b.grid(),
                    "assign_indexed: operands on different grids");
  PGB_REQUIRE(static_cast<Index>(index_map.size()) == b.capacity(),
              "assign_indexed: index map must cover B's capacity");
  for (Index tgt : index_map) {
    PGB_REQUIRE(tgt >= 0 && tgt < a.capacity(),
                "assign_indexed: index map out of range");
  }
  auto& grid = a.grid();
  const int nloc = grid.num_locales();
  grid.metrics().counter("kernel.calls", {{"kernel", "assign_indexed"}}).inc();
  PGB_TRACE_SPAN(grid, "assign.indexed");

  // Inspector–executor (kAuto): a write-routing site — fine/bulk/agg
  // only (writes can't replicate). Destinations are index-map dependent,
  // so the pair estimate is the worst case (every other locale).
  SiteStrategy strat = comm == CommMode::kFine     ? SiteStrategy::kFine
                       : comm == CommMode::kBulk   ? SiteStrategy::kBulk
                                                   : SiteStrategy::kAggregated;
  AggConfig cfg_resolved = agg_cfg;
  if (comm == CommMode::kAuto) {
    SiteFootprint fp;
    fp.bytes_each = 16;
    fp.gather = false;
    for (int l = 0; l < nloc; ++l) {
      const std::int64_t elems = b.local(l).nnz();
      const std::int64_t pairs = nloc > 1 ? nloc - 1 : 0;
      fp.pairs += pairs;
      fp.elements += elems;
      if (elems > fp.max_initiator_elements) {
        fp.max_initiator_elements = elems;
        fp.max_initiator_pairs = pairs;
      }
    }
    const SiteDecision dec = grid.inspector().decide("assign.indexed", fp);
    strat = dec.strategy;
    cfg_resolved.capacity = dec.agg_capacity;
  }

  // Route (target index, value) pairs to their owner locale.
  std::vector<std::vector<Index>> out_idx(static_cast<std::size_t>(nloc));
  std::vector<std::vector<T>> out_val(static_cast<std::size_t>(nloc));
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& lb = b.local(l);
    std::vector<std::int64_t> count_to(static_cast<std::size_t>(nloc), 0);
    if (strat == SiteStrategy::kAggregated) {
      // Route (target, value) records through per-destination buffers;
      // each flush lands one batch at the owner as a single bulk.
      struct Entry {
        Index tgt;
        T v;
      };
      DstAggregator<Entry> agg(
          ctx,
          [&](int peer, std::vector<Entry>& batch) {
            for (const auto& e : batch) {
              out_idx[static_cast<std::size_t>(peer)].push_back(e.tgt);
              out_val[static_cast<std::size_t>(peer)].push_back(e.v);
            }
          },
          cfg_resolved);
      for (Index p = 0; p < lb.nnz(); ++p) {
        const Index tgt =
            index_map[static_cast<std::size_t>(lb.index_at(p))];
        PGB_REQUIRE(tgt >= 0 && tgt < a.capacity(),
                    "assign_indexed: index map out of range");
        agg.push(a.owner(tgt), Entry{tgt, lb.value_at(p)});
      }
      agg.flush_all();
    } else {
      for (Index p = 0; p < lb.nnz(); ++p) {
        const Index tgt =
            index_map[static_cast<std::size_t>(lb.index_at(p))];
        PGB_REQUIRE(tgt >= 0 && tgt < a.capacity(),
                    "assign_indexed: index map out of range");
        const int o = a.owner(tgt);
        out_idx[static_cast<std::size_t>(o)].push_back(tgt);
        out_val[static_cast<std::size_t>(o)].push_back(lb.value_at(p));
        ++count_to[static_cast<std::size_t>(o)];
      }
    }
    CostVector c;
    c.add(CostKind::kCpuOps, kEwiseOpsPerElem * static_cast<double>(lb.nnz()));
    c.add(CostKind::kRandAccess, static_cast<double>(lb.nnz()));
    c.add(CostKind::kStreamBytes, 32.0 * static_cast<double>(lb.nnz()));
    ctx.parallel_region(c);
    for (int o = 0; o < nloc; ++o) {
      if (o == l || count_to[static_cast<std::size_t>(o)] == 0) continue;
      if (strat == SiteStrategy::kFine) {
        // One small message per routed element (Listing-8-style).
        ctx.remote_msgs(o, count_to[static_cast<std::size_t>(o)], 16);
      } else if (strat == SiteStrategy::kBulk) {
        ctx.remote_bulk(o, 16 * count_to[static_cast<std::size_t>(o)]);
      }
    }
  });
  grid.barrier_all();

  // Each owner merges its batch into the local block.
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    auto& idx = out_idx[static_cast<std::size_t>(l)];
    auto& val = out_val[static_cast<std::size_t>(l)];
    sort_pairs_by_index(idx, val);
    auto& la = a.local(l);

    std::vector<Index> merged_idx;
    std::vector<T> merged_val;
    const Index old_nnz = la.nnz();
    std::size_t i = 0;  // old entries
    std::size_t j = 0;  // incoming entries
    while (i < static_cast<std::size_t>(old_nnz) || j < idx.size()) {
      const bool take_new =
          i >= static_cast<std::size_t>(old_nnz) ||
          (j < idx.size() && idx[j] <= la.index_at(static_cast<Index>(i)));
      if (take_new && j < idx.size()) {
        if (i < static_cast<std::size_t>(old_nnz) &&
            la.index_at(static_cast<Index>(i)) == idx[j]) {
          ++i;  // overwritten
        }
        merged_idx.push_back(idx[j]);
        merged_val.push_back(val[j]);
        ++j;
      } else {
        if (mode == OutputMode::kMerge) {
          merged_idx.push_back(la.index_at(static_cast<Index>(i)));
          merged_val.push_back(la.value_at(static_cast<Index>(i)));
        }
        ++i;
      }
    }
    CostVector c;
    const double work =
        static_cast<double>(old_nnz) + static_cast<double>(idx.size()) +
        merge_sort_cost(static_cast<Index>(idx.size())).get(
            CostKind::kCpuOps) /
            120.0;  // sort of the incoming batch, tight-loop variant
    c.add(CostKind::kCpuOps, kAssignBulkOps * work);
    c.add(CostKind::kStreamBytes, 32.0 * work);
    ctx.parallel_region(c);

    la = SparseVec<T>::from_sorted(la.capacity(), std::move(merged_idx),
                                   std::move(merged_val));
  });
  grid.barrier_all();
}

/// Z[k] = A[I[k]] for every k where A has an entry at I[k]; Z has
/// capacity |I|. The dual routing pattern: each requested index is pulled
/// from its owner — per-element round trips (kFine), one request/response
/// batch per source (kBulk, default), or capacity-sized SrcAggregator
/// flushes (kAggregated).
template <typename T>
DistSparseVec<T> extract_indexed(const DistSparseVec<T>& a,
                                 const std::vector<Index>& index_map,
                                 CommMode comm = CommMode::kBulk,
                                 const AggConfig& agg_cfg = {}) {
  auto& grid = a.grid();
  const int nloc = grid.num_locales();
  grid.metrics().counter("kernel.calls", {{"kernel", "extract_indexed"}}).inc();
  PGB_TRACE_SPAN(grid, "extract.indexed");
  const Index zcap = static_cast<Index>(index_map.size());
  DistSparseVec<T> z(grid, zcap);

  // Inspector–executor (kAuto): a read-only pull site — the natural home
  // of kReplicate: ship each pulled-from block once per reader host,
  // serve every pull as a local binary search, and let repeated extracts
  // against an unchanged A hit the replica cache outright. The content
  // fingerprint evicts a replica when A changes; a membership remap
  // flushes them all.
  SiteStrategy strat = comm == CommMode::kFine     ? SiteStrategy::kFine
                       : comm == CommMode::kBulk   ? SiteStrategy::kBulk
                                                   : SiteStrategy::kAggregated;
  AggConfig cfg_resolved = agg_cfg;
  Inspector* insp = nullptr;
  if (comm == CommMode::kAuto) {
    insp = &grid.inspector();
    SiteFootprint fp;
    fp.bytes_each = 24;  // 8 request + 16 response per pull
    fp.read_only = true;
    fp.gather = true;
    std::int64_t a_nnz = 0;
    for (int o = 0; o < nloc; ++o) a_nnz += a.local(o).nnz();
    fp.chain_rts =
        remote_search_rts(static_cast<double>(a_nnz) / std::max(1, nloc));
    for (int l = 0; l < nloc; ++l) {
      const std::int64_t elems = z.dist().local_size(l);
      const std::int64_t pairs = nloc > 1 ? nloc - 1 : 0;
      fp.pairs += pairs;
      fp.elements += elems;
      if (elems > fp.max_initiator_elements) {
        fp.max_initiator_elements = elems;
        fp.max_initiator_pairs = pairs;
      }
    }
    // Replicating ships whole blocks the pulls only probe.
    fp.block_bytes = 24 * a_nnz;
    const SiteDecision dec = insp->decide("extract.indexed", fp);
    strat = dec.strategy;
    cfg_resolved.capacity = dec.agg_capacity;
  }

  // For each output position k (owned by Z's distribution), look up
  // A[I[k]] at its owner.
  std::vector<std::vector<Index>> z_idx(static_cast<std::size_t>(nloc));
  std::vector<std::vector<T>> z_val(static_cast<std::size_t>(nloc));
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    std::vector<std::int64_t> pulls_from(static_cast<std::size_t>(nloc), 0);
    if (strat == SiteStrategy::kAggregated) {
      // Buffered gets: a request records the output slot and the remote
      // index; a flush ships the request batch and pulls the response
      // batch. Results arrive per-peer batched, so sort at the end.
      struct Req {
        Index k;
        Index src;
      };
      AggConfig cfg = cfg_resolved;
      cfg.resp_bytes_each = 16;  // (found flag + value) per request
      SrcAggregator<Req> agg(
          ctx,
          [&](int peer, std::vector<Req>& batch) {
            for (const auto& r : batch) {
              const T* v = a.local(peer).find(r.src);
              if (v != nullptr) {
                z_idx[static_cast<std::size_t>(l)].push_back(r.k);
                z_val[static_cast<std::size_t>(l)].push_back(*v);
              }
            }
          },
          cfg);
      for (Index k = z.dist().lo(l); k < z.dist().hi(l); ++k) {
        const Index src = index_map[static_cast<std::size_t>(k)];
        PGB_REQUIRE(src >= 0 && src < a.capacity(),
                    "extract_indexed: index map out of range");
        const int o = a.owner(src);
        ++pulls_from[static_cast<std::size_t>(o)];
        agg.get(o, Req{k, src});
      }
      agg.flush_all();
      sort_pairs_by_index(z_idx[static_cast<std::size_t>(l)],
                          z_val[static_cast<std::size_t>(l)]);
    } else {
      for (Index k = z.dist().lo(l); k < z.dist().hi(l); ++k) {
        const Index src = index_map[static_cast<std::size_t>(k)];
        PGB_REQUIRE(src >= 0 && src < a.capacity(),
                    "extract_indexed: index map out of range");
        const int o = a.owner(src);
        ++pulls_from[static_cast<std::size_t>(o)];
        const T* v = a.local(o).find(src);
        if (v != nullptr) {
          z_idx[static_cast<std::size_t>(l)].push_back(k);
          z_val[static_cast<std::size_t>(l)].push_back(*v);
        }
      }
    }
    const Index span = z.dist().local_size(l);
    CostVector c;
    c.add(CostKind::kCpuOps, kAssignLookupOps * static_cast<double>(span));
    // Local binary searches for the local fraction...
    const double local_pulls =
        static_cast<double>(pulls_from[static_cast<std::size_t>(l)]);
    const double lognnz = a.local(l).nnz() > 1
                              ? std::ceil(std::log2(static_cast<double>(
                                    a.local(l).nnz())))
                              : 1.0;
    c.add(CostKind::kDependentAccess, lognnz * local_pulls);
    c.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(span));
    // ...and the selected schedule for the remote fraction (the
    // aggregated schedule charged itself during the loop above). The
    // replicate branch folds its local searches into the shared region
    // `c` — a region per owner would pay the task-spawn floor per pair.
    for (int o = 0; o < nloc; ++o) {
      if (o == l || pulls_from[static_cast<std::size_t>(o)] == 0) continue;
      if (strat == SiteStrategy::kReplicate) {
        // Ship the whole block once (first pull from this owner on this
        // host), then charge every pull as a local binary search into
        // the replica. Cache hits charge only the searches.
        const std::uint64_t tag = a.local(o).fingerprint();
        if (!insp->cache_lookup("extract.indexed", o, ctx.host(), tag)) {
          const std::int64_t bytes = 24 * a.local(o).nnz();
          ctx.remote_rt(o, 8);
          ctx.remote_bulk(o, bytes);
          insp->cache_install("extract.indexed", o, ctx.host(), tag, bytes);
        }
        const double onnz = static_cast<double>(a.local(o).nnz());
        const double olog = onnz > 1.0 ? std::ceil(std::log2(onnz)) : 1.0;
        c.add(CostKind::kDependentAccess,
              olog *
                  static_cast<double>(pulls_from[static_cast<std::size_t>(o)]));
      } else if (strat == SiteStrategy::kFine) {
        // Each remote pull is a dependent binary search into the owner's
        // sorted sparse domain (Assign1's distributed collapse).
        ctx.remote_chain(o, pulls_from[static_cast<std::size_t>(o)],
                         remote_search_rts(static_cast<double>(
                             a.local(o).nnz())),
                         16);
      } else if (strat == SiteStrategy::kBulk) {
        ctx.remote_bulk(o, 8 * pulls_from[static_cast<std::size_t>(o)]);
        ctx.remote_bulk(o, 16 * pulls_from[static_cast<std::size_t>(o)]);
      }
    }
    ctx.parallel_region(c);
  });
  grid.barrier_all();

  for (int l = 0; l < nloc; ++l) {
    z.local(l) = SparseVec<T>::from_sorted(
        z.dist().local_size(l), std::move(z_idx[static_cast<std::size_t>(l)]),
        std::move(z_val[static_cast<std::size_t>(l)]));
  }
  return z;
}

}  // namespace pgb
