// Sparse matrix - sparse matrix multiplication (SpGEMM) on a semiring,
// Gustavson's row-wise algorithm with a SPA. The paper lists mxm among
// the remaining GraphBLAS primitives for future work; a shared-memory
// implementation is provided here (used by the triangle-counting example).
#pragma once

#include <vector>

#include "machine/cost.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/csr.hpp"
#include "sparse/spa.hpp"
#include "util/sorting.hpp"

namespace pgb {

/// c = a . b  (local CSR operands) on the semiring.
template <typename T, typename SR>
Csr<T> mxm_local(LocaleCtx& ctx, const Csr<T>& a, const Csr<T>& b,
                 const SR& sr) {
  PGB_REQUIRE_SHAPE(a.ncols() == b.nrows(), "mxm: inner dimension mismatch");
  const Index nr = a.nrows();
  const Index nc = b.ncols();

  std::vector<Index> rowptr(static_cast<std::size_t>(nr) + 1, 0);
  std::vector<Index> colids;
  std::vector<T> vals;
  Spa<T> spa(0, nc);
  double flops = 0.0;

  for (Index i = 0; i < nr; ++i) {
    auto acols = a.row_colids(i);
    auto avals = a.row_values(i);
    for (std::size_t ka = 0; ka < acols.size(); ++ka) {
      const Index k = acols[ka];
      auto bcols = b.row_colids(k);
      auto bvals = b.row_values(k);
      for (std::size_t kb = 0; kb < bcols.size(); ++kb) {
        spa.accumulate(bcols[kb], sr.multiply(avals[ka], bvals[kb]), sr.add);
      }
      flops += static_cast<double>(bcols.size());
    }
    std::vector<Index>& nz = spa.nzinds();
    merge_sort(nz);
    for (Index j : nz) {
      colids.push_back(j);
      vals.push_back(spa.value(j));
    }
    rowptr[static_cast<std::size_t>(i) + 1] =
        static_cast<Index>(colids.size());
    spa.reset();
  }

  CostVector c;
  c.add(CostKind::kStreamBytes, 16.0 * flops);
  c.add(CostKind::kRandAccess, flops);
  c.add(CostKind::kCpuOps, 30.0 * flops +
                               20.0 * static_cast<double>(colids.size()));
  c.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(colids.size()));
  ctx.parallel_region(c);

  return Csr<T>::from_parts(nr, nc, std::move(rowptr), std::move(colids),
                            std::move(vals));
}

}  // namespace pgb
