// GraphBLAS Assign, restricted as in the paper (Section III-B): the
// destination takes on the source's domain and values; both vectors must
// share the same capacity and distribution (every index maps to the same
// locale in both).
//
// Two implementations, mirroring Listings 4 and 5:
//
//  - assign_v1: domain assignment followed by `forall i in DA do
//    A[i] = B[i]`. Sparse arrays cannot be zippered in Chapel 1.14, so
//    every element is accessed *by index*, paying a logarithmic binary
//    search into the sorted sparse domain — and, across locales, that
//    search becomes a chain of dependent remote probes.
//
//  - assign_v2: SPMD. Each locale bulk-copies its local domain block and
//    then zips the local *dense* backing arrays (allowed), eliminating
//    the per-element searches.
#pragma once

#include <cmath>

#include "core/kernel_costs.hpp"
#include "machine/cost.hpp"
#include "runtime/aggregator.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/dist_sparse_vec.hpp"

namespace pgb {

namespace detail {

template <typename T>
void require_same_shape(const DistSparseVec<T>& a, const DistSparseVec<T>& b) {
  PGB_REQUIRE_SHAPE(a.capacity() == b.capacity(),
                    "assign: capacity mismatch");
  PGB_REQUIRE_SHAPE(&a.grid() == &b.grid(),
                    "assign: operands live on different grids");
}

}  // namespace detail

/// Paper Listing 4 — indexed data-parallel assignment.
template <typename T>
void assign_v1(DistSparseVec<T>& a, const DistSparseVec<T>& b) {
  detail::require_same_shape(a, b);
  auto& grid = a.grid();
  LocaleCtx master(grid, 0);

  for (int l = 0; l < grid.num_locales(); ++l) {
    const auto& src = b.local(l);
    // ---- domain phase: DA.clear(); DA += DB ----
    // Bulk index transfer; cheap relative to the value phase.
    a.local(l).clear();
    a.local(l).domain().add_sorted(src.domain().indices());
    const Index nnz = src.nnz();
    a.local(l).set_values(std::vector<T>(static_cast<std::size_t>(nnz)));
    if (l == master.locale()) {
      CostVector dc;
      dc.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(nnz));
      dc.add(CostKind::kCpuOps,
             kAssignBulkOps * static_cast<double>(nnz));
      master.serial_region(dc);
    } else {
      master.remote_rt(l, 8);
      master.remote_bulk(l, 8 * nnz);
    }
  }

  // ---- value phase: forall i in DA do A[i] = B[i] ----
  for (int l = 0; l < grid.num_locales(); ++l) {
    const auto& src = b.local(l);
    auto& dst = a.local(l);
    const Index nnz = src.nnz();
    // Real work: indexed copy (the find exercises the same binary search
    // the model charges for).
    for (Index p = 0; p < nnz; ++p) {
      const Index i = src.index_at(p);
      const Index pos = dst.domain().find(i);
      PGB_ASSERT(pos >= 0, "assign_v1: destination domain missing index");
      dst.values()[static_cast<std::size_t>(pos)] = src.value_at(p);
    }
    if (nnz == 0) continue;
    const double lognnz =
        nnz > 1 ? std::ceil(std::log2(static_cast<double>(nnz))) : 1.0;
    if (l == master.locale()) {
      CostVector vc;
      // Two indexed accesses per element (read B[i], write A[i]): each is
      // a *dependent* binary-search chain. Upper search levels stay
      // cache-resident, hence the 1.2x log factor rather than 2x.
      vc.add(CostKind::kDependentAccess,
             1.2 * lognnz * static_cast<double>(nnz));
      vc.add(CostKind::kCpuOps,
             kAssignLookupOps * static_cast<double>(nnz));
      vc.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(nnz));
      master.parallel_region(vc);
    } else {
      // Each iteration binary-searches the remote domain: dependent
      // round-trip chain per element.
      master.remote_chain(
          l, nnz, remote_search_rts(static_cast<double>(nnz)) + 1.0, 8);
    }
  }
  grid.barrier_all();
}

/// Paper Listing 5 — SPMD bulk assignment.
template <typename T>
void assign_v2(DistSparseVec<T>& a, const DistSparseVec<T>& b) {
  detail::require_same_shape(a, b);
  auto& grid = a.grid();

  grid.coforall_locales([&](LocaleCtx& ctx) {
    const auto& src = b.local(ctx.locale());
    auto& dst = a.local(ctx.locale());
    const Index nnz = src.nnz();

    // ---- domain phase: locDA.mySparseBlock += locDB.mySparseBlock ----
    dst.clear();
    dst.domain().add_sorted(src.domain().indices());
    CostVector dc;
    dc.add(CostKind::kDependentAccess, static_cast<double>(nnz));
    dc.add(CostKind::kCpuOps, kAssignBulkOps * static_cast<double>(nnz));
    dc.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(nnz));
    ctx.parallel_region(dc);

    // ---- value phase: zippered copy of the dense backing arrays ----
    dst.set_values(std::vector<T>(src.values().begin(), src.values().end()));
    CostVector vc;
    vc.add(CostKind::kCpuOps, kAssignBulkOps * static_cast<double>(nnz));
    vc.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(nnz));
    ctx.parallel_region(vc);
  });

  // "update global nnz of DA": a small reduction over locales.
  LocaleCtx master(grid, 0);
  if (grid.num_locales() > 1) {
    master.remote_rt(1, 8);  // representative leaf of the reduction tree
    grid.clock(0).advance(grid.net().barrier(grid.num_locales()));
  }
  grid.barrier_all();
}

/// Schedule-dispatching entry point. The two listings above are kept
/// verbatim as paper reproductions; this wrapper picks between them.
/// CommMode::kFine forces the indexed Listing-4 path, any other fixed
/// mode the SPMD Listing-5 path, and CommMode::kAuto asks the inspector:
/// the master-driven indexed copy is a single initiator issuing one
/// dependent binary-search chain per remote element, so the site's
/// footprint prices that chain against one bulk block copy per locale.
template <typename T>
void assign(DistSparseVec<T>& a, const DistSparseVec<T>& b,
            CommMode comm = CommMode::kBulk) {
  if (comm == CommMode::kAuto) {
    detail::require_same_shape(a, b);
    auto& grid = a.grid();
    const int nloc = grid.num_locales();
    SiteFootprint fp;
    fp.bytes_each = 8;
    fp.gather = false;
    fp.pairs = nloc > 1 ? nloc - 1 : 0;
    fp.max_initiator_pairs = fp.pairs;  // master drives every transfer
    std::int64_t remote_nnz = 0;
    for (int l = 1; l < nloc; ++l) remote_nnz += b.local(l).nnz();
    fp.elements = remote_nnz;
    fp.max_initiator_elements = remote_nnz;
    const double avg =
        fp.pairs > 0
            ? static_cast<double>(remote_nnz) / static_cast<double>(fp.pairs)
            : 0.0;
    fp.chain_rts = remote_search_rts(avg) + 1.0;
    fp.fanout = static_cast<double>(std::max<std::int64_t>(fp.pairs, 1));
    const SiteDecision dec = grid.inspector().decide("assign.same_shape", fp);
    if (dec.strategy == SiteStrategy::kFine) {
      assign_v1(a, b);
    } else {
      assign_v2(a, b);
    }
    return;
  }
  if (comm == CommMode::kFine) {
    assign_v1(a, b);
  } else {
    assign_v2(a, b);
  }
}

}  // namespace pgb
