// Umbrella header: the public GraphBLAS surface of pgas-graphblas.
//
// Quick tour (see README.md for a walkthrough):
//
//   LocaleGrid grid = LocaleGrid::square(16, 24);   // 4x4 locales, 24 thr
//   auto a = erdos_renyi_dist<double>(grid, n, d, seed);
//   auto x = random_dist_sparse_vec<double>(grid, n, nnz, seed);
//   auto y = spmspv_dist(a, x, arithmetic_semiring<double>());
//   double t = grid.time();                         // modeled seconds
#pragma once

#include "core/apply.hpp"        // IWYU pragma: export
#include "core/assign.hpp"       // IWYU pragma: export
#include "core/assign_general.hpp"  // IWYU pragma: export
#include "core/descriptor.hpp"   // IWYU pragma: export
#include "core/ewise_add.hpp"    // IWYU pragma: export
#include "core/ewise_mult.hpp"   // IWYU pragma: export
#include "core/extract.hpp"      // IWYU pragma: export
#include "core/mask.hpp"         // IWYU pragma: export
#include "core/matrix_ewise.hpp"  // IWYU pragma: export
#include "core/mxm.hpp"          // IWYU pragma: export
#include "core/mxm_dist.hpp"     // IWYU pragma: export
#include "core/mxv_direct.hpp"   // IWYU pragma: export
#include "core/ops.hpp"          // IWYU pragma: export
#include "core/permute.hpp"      // IWYU pragma: export
#include "core/reduce.hpp"       // IWYU pragma: export
#include "core/spmspv.hpp"       // IWYU pragma: export
#include "core/spmv.hpp"         // IWYU pragma: export
#include "core/transpose.hpp"    // IWYU pragma: export
#include "core/vxm.hpp"          // IWYU pragma: export
#include "core/dense_ops.hpp"    // IWYU pragma: export
