// GraphBLAS function objects: unary operators, binary operators, monoids
// and semirings.
//
// "A powerful aspect of GraphBLAS is its ability to work on arbitrary
// semirings, monoids, and functions" (paper Section III). Operations in
// pgas-graphblas take these as template parameters, so user-defined
// operators compile to the same code as the standard ones below.
#pragma once

#include <algorithm>
#include <limits>

namespace pgb {

// ---- unary operators (for apply) ----

struct IdentityOp {
  template <typename T>
  T operator()(const T& a) const {
    return a;
  }
};

struct NegateOp {
  template <typename T>
  T operator()(const T& a) const {
    return -a;
  }
};

/// Multiply by a fixed scalar.
template <typename T>
struct ScaleOp {
  T factor;
  T operator()(const T& a) const { return a * factor; }
};

/// Add a fixed scalar.
template <typename T>
struct IncrementOp {
  T delta;
  T operator()(const T& a) const { return a + delta; }
};

// ---- binary operators (for eWise*, monoids, semiring multiply) ----

struct PlusOp {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a + b;
  }
};

struct TimesOp {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return a * b;
  }
};

struct MinOp {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return std::min(a, b);
  }
};

struct MaxOp {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return std::max(a, b);
  }
};

/// Returns the first (left) operand: the select1st of the GraphBLAS
/// C API design. With vxm this propagates the x value, which is how BFS
/// carries parent ids through the matrix.
struct FirstOp {
  template <typename T>
  T operator()(const T& a, const T&) const {
    return a;
  }
};

/// Returns the second (right) operand (select2nd).
struct SecondOp {
  template <typename T>
  T operator()(const T&, const T& b) const {
    return b;
  }
};

struct LogicalOrOp {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return (a != T{} || b != T{}) ? T{1} : T{};
  }
};

struct LogicalAndOp {
  template <typename T>
  T operator()(const T& a, const T& b) const {
    return (a != T{} && b != T{}) ? T{1} : T{};
  }
};

// ---- monoids: a binary operator plus its identity ----

template <typename T, typename Op>
struct Monoid {
  using value_type = T;
  Op op{};
  T identity{};

  T operator()(const T& a, const T& b) const { return op(a, b); }
};

template <typename T>
Monoid<T, PlusOp> plus_monoid() {
  return {PlusOp{}, T{0}};
}

template <typename T>
Monoid<T, TimesOp> times_monoid() {
  return {TimesOp{}, T{1}};
}

template <typename T>
Monoid<T, MinOp> min_monoid() {
  return {MinOp{}, std::numeric_limits<T>::max()};
}

template <typename T>
Monoid<T, MaxOp> max_monoid() {
  return {MaxOp{}, std::numeric_limits<T>::lowest()};
}

template <typename T>
Monoid<T, LogicalOrOp> lor_monoid() {
  return {LogicalOrOp{}, T{0}};
}

// ---- semirings: (add monoid, multiply op) ----

template <typename T, typename AddOp, typename MulOp>
struct Semiring {
  using value_type = T;
  Monoid<T, AddOp> add;
  MulOp mul{};

  T zero() const { return add.identity; }
  T multiply(const T& a, const T& b) const { return mul(a, b); }
  T combine(const T& a, const T& b) const { return add(a, b); }
};

/// Ordinary (+, *) arithmetic.
template <typename T>
Semiring<T, PlusOp, TimesOp> arithmetic_semiring() {
  return {plus_monoid<T>(), TimesOp{}};
}

/// Tropical (min, +): shortest paths.
template <typename T>
Semiring<T, MinOp, PlusOp> min_plus_semiring() {
  return {min_monoid<T>(), PlusOp{}};
}

/// (min, select1st): BFS parent propagation — y[c] = min over visiting
/// rows of x[r]; with x[r] = r the result is the smallest parent id.
template <typename T>
Semiring<T, MinOp, FirstOp> min_first_semiring() {
  return {min_monoid<T>(), FirstOp{}};
}

/// Boolean (|, &): reachability.
template <typename T>
Semiring<T, LogicalOrOp, LogicalAndOp> boolean_semiring() {
  return {lor_monoid<T>(), LogicalAndOp{}};
}

}  // namespace pgb
