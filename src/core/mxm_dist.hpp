// Distributed SpGEMM: C = A . B on a square locale grid, using the
// 2-D SUMMA algorithm (Buluç & Gilbert's Sparse SUMMA [8] — the
// matrix-matrix reference the paper cites for Assign's communication
// bound). In stage s, processor column s of A is broadcast along
// processor rows and processor row s of B along processor columns; each
// locale multiplies the received pair locally (Gustavson + SPA) and
// accumulates into its C block.
//
// This is the distributed form of the mxm primitive the paper's
// conclusion defers to future work.
#pragma once

#include <vector>

#include "core/mxm.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/coo.hpp"
#include "sparse/dist_csr.hpp"

namespace pgb {

/// C = A . B on the semiring. Requires a square grid (prows == pcols),
/// the canonical SUMMA layout.
template <typename T, typename SR>
DistCsr<T> mxm_dist(const DistCsr<T>& a, const DistCsr<T>& b,
                    const SR& sr) {
  PGB_REQUIRE_SHAPE(a.ncols() == b.nrows(), "mxm: inner dimension mismatch");
  PGB_REQUIRE_SHAPE(&a.grid() == &b.grid(),
                    "mxm: operands on different grids");
  auto& grid = a.grid();
  PGB_REQUIRE(grid.rows() == grid.cols(),
              "mxm_dist requires a square locale grid (SUMMA)");
  const int p = grid.rows();

  DistCsr<T> c(grid, a.nrows(), b.ncols());
  // Accumulate each locale's C block as triples across stages; combined
  // into CSR at the end (cheaper than per-stage CSR additions).
  std::vector<Coo<T>> acc;
  acc.reserve(grid.num_locales());
  for (int l = 0; l < grid.num_locales(); ++l) {
    const auto& blk = c.block(l);
    acc.emplace_back(blk.rhi - blk.rlo, b.ncols());
  }

  for (int s = 0; s < p; ++s) {
    grid.coforall_locales([&](LocaleCtx& ctx) {
      const int l = ctx.locale();
      const int i = grid.locale(l).row;
      const int j = grid.locale(l).col;

      // Receive A(i, s) from its owner along the processor row and
      // B(s, j) along the processor column (one bulk message each; the
      // broadcast is modeled as the leaf's receive).
      const int a_owner = i * p + s;
      const int b_owner = s * p + j;
      const auto& ablk = a.block(a_owner);
      const auto& bblk = b.block(b_owner);
      if (a_owner != l) ctx.remote_bulk(a_owner, 16 * ablk.csr.nnz());
      if (b_owner != l) ctx.remote_bulk(b_owner, 16 * bblk.csr.nnz());

      // Local multiply-accumulate: for each row of A(i,s), scatter the
      // referenced rows of B(s,j) through a SPA. A's colids are global
      // within [ablk.clo, ablk.chi) = B(s,j)'s global row range.
      Spa<T> spa(bblk.clo, bblk.chi);
      double flops = 0.0;
      auto& out = acc[l];
      for (Index lr = 0; lr < ablk.csr.nrows(); ++lr) {
        auto acols = ablk.csr.row_colids(lr);
        auto avals = ablk.csr.row_values(lr);
        for (std::size_t ka = 0; ka < acols.size(); ++ka) {
          const Index bl_row = acols[ka] - bblk.rlo;
          auto bcols = bblk.csr.row_colids(bl_row);
          auto bvals = bblk.csr.row_values(bl_row);
          for (std::size_t kb = 0; kb < bcols.size(); ++kb) {
            spa.accumulate(bcols[kb], sr.multiply(avals[ka], bvals[kb]),
                           sr.add);
          }
          flops += static_cast<double>(bcols.size());
        }
        for (Index col : spa.nzinds()) {
          out.add(lr, col, spa.value(col));
        }
        spa.reset();
      }
      CostVector cost;
      cost.add(CostKind::kStreamBytes, 16.0 * flops);
      cost.add(CostKind::kRandAccess, flops);
      cost.add(CostKind::kCpuOps, 30.0 * flops);
      ctx.parallel_region(cost);
    });
  }

  // Combine per-stage partial products (duplicates across stages add on
  // the semiring's monoid).
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    c.block(l).csr =
        acc[l].to_csr([&](const T& x, const T& y) { return sr.combine(x, y); });
    CostVector cost;
    const double nnz = static_cast<double>(acc[l].nnz());
    cost.add(CostKind::kCpuOps, 40.0 * nnz);
    cost.add(CostKind::kStreamBytes, 48.0 * nnz);
    ctx.parallel_region(cost);
  });
  return c;
}

}  // namespace pgb
