// GraphBLAS eWiseAdd: element-wise "addition" over the *union* of the
// operands' index sets. Where only one operand has a nonzero, that value
// passes through unchanged; where both do, they are combined with the
// monoid. (Part of the full GraphBLAS surface the paper lists as future
// work beyond its benchmarked subset.)
#pragma once

#include "core/kernel_costs.hpp"
#include "machine/cost.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/dist_sparse_vec.hpp"

namespace pgb {

template <typename T, typename Add>
DistSparseVec<T> ewise_add(const DistSparseVec<T>& x,
                           const DistSparseVec<T>& w, Add add) {
  PGB_REQUIRE_SHAPE(x.capacity() == w.capacity(),
                    "ewise_add: capacity mismatch");
  PGB_REQUIRE_SHAPE(&x.grid() == &w.grid(),
                    "ewise_add: operands live on different grids");
  auto& grid = x.grid();
  DistSparseVec<T> z(grid, x.capacity());

  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& lx = x.local(l);
    const auto& lw = w.local(l);
    std::vector<Index> idx;
    std::vector<T> val;
    idx.reserve(static_cast<std::size_t>(lx.nnz() + lw.nnz()));
    Index p = 0, q = 0;
    while (p < lx.nnz() || q < lw.nnz()) {
      if (q >= lw.nnz() || (p < lx.nnz() && lx.index_at(p) < lw.index_at(q))) {
        idx.push_back(lx.index_at(p));
        val.push_back(lx.value_at(p));
        ++p;
      } else if (p >= lx.nnz() || lw.index_at(q) < lx.index_at(p)) {
        idx.push_back(lw.index_at(q));
        val.push_back(lw.value_at(q));
        ++q;
      } else {
        idx.push_back(lx.index_at(p));
        val.push_back(add(lx.value_at(p), lw.value_at(q)));
        ++p;
        ++q;
      }
    }
    CostVector c;
    const double work = static_cast<double>(lx.nnz() + lw.nnz());
    c.add(CostKind::kCpuOps, kEwiseOpsPerElem * work);
    c.add(CostKind::kStreamBytes, 16.0 * work + 24.0 * idx.size());
    ctx.parallel_region(c);
    z.local(l) = SparseVec<T>::from_sorted(lx.capacity(), std::move(idx),
                                           std::move(val));
  });
  return z;
}

}  // namespace pgb
