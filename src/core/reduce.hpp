// GraphBLAS Reduce: fold a vector's nonzeros (or a matrix's rows) into a
// scalar (or vector) with a monoid.
#pragma once

#include "core/kernel_costs.hpp"
#include "machine/cost.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/dist_dense_vec.hpp"
#include "sparse/dist_sparse_vec.hpp"

namespace pgb {

/// Reduce all nonzeros of a distributed sparse vector to one scalar.
/// Local tree-reduce per locale, then a log-depth combine across locales.
template <typename T, typename M>
T reduce(const DistSparseVec<T>& x, const M& monoid) {
  auto& grid = x.grid();
  T acc = monoid.identity;
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const auto& lx = x.local(ctx.locale());
    T local = monoid.identity;
    for (const T& v : lx.values()) local = monoid(local, v);
    acc = monoid(acc, local);
    CostVector c;
    c.add(CostKind::kCpuOps, 12.0 * static_cast<double>(lx.nnz()));
    c.add(CostKind::kStreamBytes, 8.0 * static_cast<double>(lx.nnz()));
    ctx.parallel_region(c);
  });
  // Cross-locale combine: log2(L) round-trip stages charged to locale 0.
  if (grid.num_locales() > 1) {
    LocaleCtx master(grid, 0);
    int stages = 0;
    for (int l = 1; l < grid.num_locales(); l *= 2) ++stages;
    for (int s = 0; s < stages; ++s) master.remote_rt(1, 8);
    grid.barrier_all();
  }
  return acc;
}

/// Row-reduce of a 2-D distributed matrix into a distributed dense vector:
/// out[r] = monoid over row r's values (e.g. out-degree with plus).
/// Partial reduction per block, then combine along each processor row.
template <typename T, typename M>
DistDenseVec<T> reduce_rows(const DistCsr<T>& a, const M& monoid) {
  auto& grid = a.grid();
  DistDenseVec<T> out(grid, a.nrows(), monoid.identity);

  // Per-block partials.
  std::vector<std::vector<T>> partial(grid.num_locales());
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const auto& b = a.block(ctx.locale());
    auto& p = partial[ctx.locale()];
    p.assign(static_cast<std::size_t>(b.rhi - b.rlo), monoid.identity);
    for (Index lr = 0; lr < b.csr.nrows(); ++lr) {
      for (const T& v : b.csr.row_values(lr)) {
        p[static_cast<std::size_t>(lr)] = monoid(p[static_cast<std::size_t>(lr)], v);
      }
    }
    CostVector c;
    c.add(CostKind::kCpuOps, 12.0 * static_cast<double>(b.csr.nnz()));
    c.add(CostKind::kStreamBytes,
          8.0 * static_cast<double>(b.csr.nnz() + (b.rhi - b.rlo)));
    ctx.parallel_region(c);
  });

  // Combine partials into the 1-D distributed output; each contributing
  // block sends one bulk message to each overlapping output owner.
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& b = a.block(l);
    const auto& p = partial[l];
    for (Index r = b.rlo; r < b.rhi; ++r) {
      const int owner = out.dist().owner(r);
      auto& ov = out.local(owner)[r];
      ov = monoid(ov, p[static_cast<std::size_t>(r - b.rlo)]);
    }
    // Bulk sends to each distinct owner locale of this row range.
    const int first = out.dist().owner(b.rlo);
    const int last = b.rhi > b.rlo ? out.dist().owner(b.rhi - 1) : first;
    for (int o = first; o <= last; ++o) {
      if (o != l) ctx.remote_bulk(o, 8 * (b.rhi - b.rlo) / (last - first + 1));
    }
  });
  return out;
}

}  // namespace pgb
