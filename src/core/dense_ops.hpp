// Element-wise operations on distributed dense vectors: the BLAS-1 style
// helpers the iterative algorithms (PageRank, CC, MIS) are built from.
// Each is one SPMD streaming pass with the obvious charge.
#pragma once

#include <cmath>

#include "machine/cost.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/dist_dense_vec.hpp"

namespace pgb {

namespace detail {

template <typename T>
CostVector stream_pass_cost(Index n, double vectors_touched) {
  CostVector c;
  c.add(CostKind::kStreamBytes, vectors_touched *
                                    static_cast<double>(sizeof(T)) *
                                    static_cast<double>(n));
  c.add(CostKind::kCpuOps, 8.0 * static_cast<double>(n));
  return c;
}

}  // namespace detail

/// y[i] <- f(y[i]) for every element.
template <typename T, typename F>
void transform(DistDenseVec<T>& y, F f) {
  y.grid().coforall_locales([&](LocaleCtx& ctx) {
    auto& ly = y.local(ctx.locale());
    for (Index i = ly.lo(); i < ly.hi(); ++i) ly[i] = f(ly[i]);
    ctx.parallel_region(detail::stream_pass_cost<T>(ly.size(), 2.0));
  });
}

/// y <- alpha * x + y.
template <typename T>
void axpy(T alpha, const DistDenseVec<T>& x, DistDenseVec<T>& y) {
  PGB_REQUIRE_SHAPE(x.size() == y.size(), "axpy: size mismatch");
  y.grid().coforall_locales([&](LocaleCtx& ctx) {
    const auto& lx = x.local(ctx.locale());
    auto& ly = y.local(ctx.locale());
    for (Index i = ly.lo(); i < ly.hi(); ++i) ly[i] += alpha * lx[i];
    ctx.parallel_region(detail::stream_pass_cost<T>(ly.size(), 3.0));
  });
}

/// Dot product with a cross-locale combine.
template <typename T>
T dot(const DistDenseVec<T>& x, const DistDenseVec<T>& y) {
  PGB_REQUIRE_SHAPE(x.size() == y.size(), "dot: size mismatch");
  auto& grid = x.grid();
  T acc{};
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const auto& lx = x.local(ctx.locale());
    const auto& ly = y.local(ctx.locale());
    T local{};
    for (Index i = lx.lo(); i < lx.hi(); ++i) local += lx[i] * ly[i];
    acc += local;
    ctx.parallel_region(detail::stream_pass_cost<T>(lx.size(), 2.0));
  });
  if (grid.num_locales() > 1) {
    LocaleCtx master(grid, 0);
    for (int l = 1; l < grid.num_locales(); l *= 2) master.remote_rt(1, 8);
    grid.barrier_all();
  }
  return acc;
}

/// L1 norm of the element-wise difference (convergence checks).
template <typename T>
double diff_norm1(const DistDenseVec<T>& x, const DistDenseVec<T>& y) {
  PGB_REQUIRE_SHAPE(x.size() == y.size(), "diff_norm1: size mismatch");
  auto& grid = x.grid();
  double acc = 0.0;
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const auto& lx = x.local(ctx.locale());
    const auto& ly = y.local(ctx.locale());
    double local = 0.0;
    for (Index i = lx.lo(); i < lx.hi(); ++i) {
      local += std::abs(static_cast<double>(lx[i] - ly[i]));
    }
    acc += local;
    ctx.parallel_region(detail::stream_pass_cost<T>(lx.size(), 2.0));
  });
  if (grid.num_locales() > 1) {
    LocaleCtx master(grid, 0);
    for (int l = 1; l < grid.num_locales(); l *= 2) master.remote_rt(1, 8);
    grid.barrier_all();
  }
  return acc;
}

/// Sum of all elements.
template <typename T>
T sum(const DistDenseVec<T>& x) {
  auto& grid = x.grid();
  T acc{};
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const auto& lx = x.local(ctx.locale());
    T local{};
    for (Index i = lx.lo(); i < lx.hi(); ++i) local += lx[i];
    acc += local;
    ctx.parallel_region(detail::stream_pass_cost<T>(lx.size(), 1.0));
  });
  if (grid.num_locales() > 1) {
    LocaleCtx master(grid, 0);
    for (int l = 1; l < grid.num_locales(); l *= 2) master.remote_rt(1, 8);
    grid.barrier_all();
  }
  return acc;
}

}  // namespace pgb
