// Fused multi-source SpMSpV: Y <- X A for a column-blocked frontier
// block X of k sparse vectors (n x k, k = batch width), on a semiring.
//
// This is the batching economy of CombBLAS 2.0's fused multi-vector
// traversals (and LAGraph's batched BC) brought to the serving layer:
// when k independent single-source queries traverse the *same* graph
// epoch, their per-level frontier exchanges share one communication
// schedule. The gather pulls every query's frontier piece from a source
// locale in one transfer set (one size round trip per (reader, source)
// pair instead of k), the scatter ships per-destination batches tagged
// with a query lane id (one bulk/flush sequence per destination instead
// of k), and the comm-mode decision — fine/bulk/agg, or the inspector's
// per-site pricing under CommMode::kAuto — is priced and paid once per
// level instead of once per user.
//
// Compute is *not* fused: each lane's local multiply, accumulation, and
// owner-side finalize run exactly the solo spmspv_dist code path over
// that lane's data alone, in the same order. Since data always moves
// in-process and the schedules only differ in modeled charging, every
// lane's output vector is byte-identical to what a solo spmspv_dist of
// that lane would produce — the property the service layer's
// batched-vs-solo equivalence tests pin down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/descriptor.hpp"
#include "core/kernel_costs.hpp"
#include "core/mask.hpp"
#include "core/spmspv.hpp"
#include "obs/span.hpp"
#include "runtime/aggregator.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/dist_dense_vec.hpp"
#include "sparse/dist_sparse_vec.hpp"
#include "sparse/spa.hpp"
#include "util/sorting.hpp"

namespace pgb {

namespace detail {

/// One fused-scatter element: lane `q`'s update of output slot `j`.
/// The lane id rides the wire (it is the column coordinate inside the
/// n x k block), so fused updates are honestly larger than solo ones;
/// the win is amortizing messages/flushes/round-trips, not bytes.
template <typename T>
struct MultiUpdate {
  Index j;
  T v;
  std::int32_t q;
};

}  // namespace detail

/// Fused multi-source SpMSpV over the 2-D block distribution.
///
/// `xs` holds the k frontier lanes (all with capacity == a.nrows(), all
/// on a's grid). `masks` is either empty (no masking) or one entry per
/// lane — individual entries may be null (that lane is unmasked);
/// non-null masks filter that lane's output per `mask_mode` inside the
/// owner-side finalize, exactly like spmspv_dist_masked.
///
/// Returns one output vector per lane, each byte-identical to the solo
/// spmspv_dist[_masked] of that lane under any comm schedule.
template <typename TA, typename T, typename SR>
std::vector<DistSparseVec<T>> spmspv_dist_multi(
    const DistCsr<TA>& a, const std::vector<const DistSparseVec<T>*>& xs,
    const std::vector<const DistDenseVec<std::uint8_t>*>& masks,
    MaskMode mask_mode, const SR& sr, const SpmspvOptions& opt = {}) {
  const int k = static_cast<int>(xs.size());
  PGB_REQUIRE(k >= 1, "spmspv_multi: batch must hold at least one lane");
  PGB_REQUIRE(masks.empty() || masks.size() == xs.size(),
              "spmspv_multi: one mask slot per lane (or none)");
  auto& grid = a.grid();
  for (const auto* x : xs) {
    PGB_REQUIRE(x != nullptr, "spmspv_multi: null frontier lane");
    PGB_REQUIRE_SHAPE(x->capacity() == a.nrows(),
                      "spmspv_multi: x capacity must equal matrix rows");
    PGB_REQUIRE_SHAPE(&x->grid() == &grid,
                      "spmspv_multi: operands live on different grids");
  }
  for (const auto* m : masks) {
    if (m != nullptr) {
      PGB_REQUIRE_SHAPE(m->size() == a.ncols(),
                        "spmspv_multi: mask size must equal matrix columns");
    }
  }
  PGB_REQUIRE(!opt.use_collectives,
              "spmspv_multi: collectives schedule not supported");

  const int pc = grid.cols();
  const int pr = grid.rows();
  const int nloc = grid.num_locales();
  grid.metrics()
      .counter("kernel.calls", {{"kernel", "spmspv_dist_multi"}})
      .inc();
  grid.metrics().histogram("spmspv.multi.width").observe(k);
  RemapView remap(grid.membership());

  using Update = detail::MultiUpdate<T>;
  constexpr std::int64_t kGatherBytes = 16;
  constexpr auto kScatterBytes =
      static_cast<std::int64_t>(sizeof(Update));

  // Inspector (CommMode::kAuto): one footprint — and one decision — for
  // the whole k-wide wave. Frontier content churns every level, so the
  // replicate strategy can never amortize here; the footprint says
  // read_only=false to take it off the candidate list outright instead
  // of letting the hit-rate feedback rediscover that per batch.
  Inspector* insp =
      opt.comm == CommMode::kAuto ? &grid.inspector() : nullptr;
  SiteDecision gather_dec;
  if (insp != nullptr) {
    SiteFootprint fp;
    fp.bytes_each = kGatherBytes;
    fp.fanout = static_cast<double>(pc);
    fp.chain_rts = kRemoteElemRts + 1.0;
    fp.read_only = false;  // churning frontiers: replication never pays
    fp.gather = true;
    for (int l = 0; l < nloc; ++l) {
      const int prow = grid.locale(l).row;
      std::int64_t elems = 0;
      std::int64_t pairs = 0;
      for (int i = 0; i < pc; ++i) {
        const int src = prow * pc + i;
        if (src == l) continue;
        ++pairs;
        for (int q = 0; q < k; ++q) elems += xs[q]->local(src).nnz();
      }
      fp.pairs += pairs;
      fp.elements += elems;
      if (elems > fp.max_initiator_elements) {
        fp.max_initiator_elements = elems;
        fp.max_initiator_pairs = pairs;
      }
    }
    fp.block_bytes = kGatherBytes * fp.max_initiator_elements;
    gather_dec = insp->decide("spmspv.gather", fp);
  }
  const SiteStrategy gather_strat =
      insp != nullptr        ? gather_dec.strategy
      : opt.aggregated()     ? SiteStrategy::kAggregated
      : opt.gather_is_bulk() ? SiteStrategy::kBulk
                             : SiteStrategy::kFine;

  // ---- Step 1: fused gather along each processor row ----
  // Every lane's piece from source `src` rides the same transfer set:
  // one size round trip per (reader, source) pair, then one
  // chain/bulk/chunk stream of the lanes' combined elements.
  obs::GridSpan gather_span(grid, "spmspv.gather");
  CommStats cs0 = grid.comm_stats();
  double t0 = grid.time();
  std::vector<std::vector<SparseVec<T>>> xr(
      static_cast<std::size_t>(k),
      std::vector<SparseVec<T>>(static_cast<std::size_t>(nloc)));
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& blk = a.block(l);
    const int prow = grid.locale(l).row;
    std::vector<std::vector<Index>> idx(static_cast<std::size_t>(k));
    std::vector<std::vector<T>> val(static_cast<std::size_t>(k));
    AggConfig gather_cfg = opt.agg;
    gather_cfg.contention = static_cast<double>(pc);
    if (insp != nullptr) gather_cfg.capacity = gather_dec.agg_capacity;
    AggChannel chan(ctx, gather_cfg);
    const int self_host = remap.host(l);
    for (int i = 0; i < pc; ++i) {
      const int src = prow * pc + i;
      std::int64_t total = 0;
      for (int q = 0; q < k; ++q) {
        const auto& piece = xs[q]->local(src);
        idx[q].insert(idx[q].end(), piece.domain().indices().begin(),
                      piece.domain().indices().end());
        val[q].insert(val[q].end(), piece.values().begin(),
                      piece.values().end());
        total += piece.nnz();
      }
      const bool co_hosted = remap.remapped() && remap.host(src) == self_host;
      if (src != l && !co_hosted) {
        // One domain-size round trip covers all k lanes (the batched
        // sizes ride one reply), then the combined payload moves under
        // the wave's single schedule.
        ctx.remote_rt(src, 8 * k);
        if (gather_strat == SiteStrategy::kAggregated) {
          chan.get_elems(src, total, kGatherBytes);
        } else if (gather_strat == SiteStrategy::kBulk) {
          ctx.remote_bulk(src, kGatherBytes * total * pc);
        } else {
          ctx.remote_chain(src, total, kRemoteElemRts + 1.0, kGatherBytes,
                           /*contention=*/static_cast<double>(pc));
        }
      }
    }
    chan.drain();
    for (int q = 0; q < k; ++q) {
      xr[q][l] = SparseVec<T>::from_sorted(
          blk.rhi - blk.rlo, std::move(idx[q]), std::move(val[q]));
    }
  });
  gather_span.end();
  {
    const CommStats cs1 = grid.comm_stats();
    grid.metrics()
        .counter("spmspv.messages", {{"phase", "gather"}})
        .inc(cs1.messages - cs0.messages);
    grid.metrics()
        .counter("spmspv.bytes", {{"phase", "gather"}})
        .inc(cs1.bytes - cs0.bytes);
  }
  if (insp != nullptr) insp->observe("spmspv.gather", grid.time() - t0);
  grid.trace().add("gather", grid.time() - t0);

  // ---- Step 2: per-lane local multiply ----
  // Not fused: lane q's multiply is the exact solo code path over lane
  // q's gathered piece, so lane outputs can't depend on batch-mates.
  obs::GridSpan local_span(grid, "spmspv.local");
  t0 = grid.time();
  std::vector<std::vector<SparseVec<T>>> ly(
      static_cast<std::size_t>(k),
      std::vector<SparseVec<T>>(static_cast<std::size_t>(nloc)));
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& blk = a.block(l);
    for (int q = 0; q < k; ++q) {
      ly[q][l] = spmspv_shm(ctx, blk.csr, blk.rlo, xr[q][l], blk.clo,
                            blk.chi, sr, opt);
    }
  });
  local_span.end();
  grid.trace().add("local", grid.time() - t0);

  // Fused-scatter footprint: per-destination batches carry every lane's
  // updates, tagged with the lane id (hence the larger element).
  SiteDecision scatter_dec;
  if (insp != nullptr) {
    SiteFootprint fp;
    fp.bytes_each = kScatterBytes;
    fp.fanout = static_cast<double>(pr);
    fp.gather = false;
    fp.bulk_pair_overhead = grid.region_floor();
    for (int l = 0; l < nloc; ++l) {
      std::int64_t elems = 0;
      for (int q = 0; q < k; ++q) elems += ly[q][l].nnz();
      const std::int64_t pairs =
          std::min<std::int64_t>(nloc > 1 ? nloc - 1 : 0, pr);
      fp.pairs += pairs;
      fp.elements += elems;
      if (elems > fp.max_initiator_elements) {
        fp.max_initiator_elements = elems;
        fp.max_initiator_pairs = pairs;
      }
    }
    scatter_dec = insp->decide("spmspv.scatter", fp);
  }
  const SiteStrategy scatter_strat =
      insp != nullptr         ? scatter_dec.strategy
      : opt.aggregated()      ? SiteStrategy::kAggregated
      : opt.scatter_is_bulk() ? SiteStrategy::kBulk
                              : SiteStrategy::kFine;

  // ---- Step 3: fused scatter/accumulate into k 1-D outputs ----
  obs::GridSpan scatter_span(grid, "spmspv.scatter");
  cs0 = grid.comm_stats();
  t0 = grid.time();
  std::vector<DistSparseVec<T>> y;
  y.reserve(static_cast<std::size_t>(k));
  for (int q = 0; q < k; ++q) y.emplace_back(grid, a.ncols());
  // Per-lane accumulators: lane q's per-slot accumulation order is the
  // solo order (lanes never share a SPA slot).
  std::vector<std::vector<Spa<T>>> yspa(static_cast<std::size_t>(k));
  for (int q = 0; q < k; ++q) {
    yspa[static_cast<std::size_t>(q)].reserve(nloc);
    for (int o = 0; o < nloc; ++o) {
      yspa[static_cast<std::size_t>(q)].emplace_back(y[q].dist().lo(o),
                                                     y[q].dist().hi(o));
    }
  }
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const int self_host = remap.host(l);
    std::vector<std::int64_t> count_to(static_cast<std::size_t>(nloc), 0);
    if (scatter_strat == SiteStrategy::kAggregated) {
      // One conveyor channel carries every lane's updates: per-peer FIFO
      // delivery keeps each lane's per-slot order, and a flush amortizes
      // its header across all k lanes.
      AggConfig cfg = opt.agg;
      cfg.contention = static_cast<double>(pr);
      if (insp != nullptr) cfg.capacity = scatter_dec.agg_capacity;
      DstAggregator<Update> agg(
          ctx,
          [&](int peer, std::vector<Update>& batch) {
            for (const auto& u : batch) {
              yspa[u.q][peer].accumulate(u.j, u.v, sr.add);
            }
          },
          cfg);
      for (int q = 0; q < k; ++q) {
        const auto& part = ly[q][l];
        for (Index p = 0; p < part.nnz(); ++p) {
          const Index j = part.index_at(p);
          const int o = y[q].dist().owner(j);
          agg.push(o, Update{j, part.value_at(p),
                             static_cast<std::int32_t>(q)});
          ++count_to[o];
        }
      }
      agg.flush_all();
      CostVector c;
      c.add(CostKind::kRandAccess, static_cast<double>(count_to[l]));
      c.add(CostKind::kCpuOps, 20.0 * static_cast<double>(count_to[l]));
      for (int o = 0; o < nloc; ++o) {
        if (o == l || count_to[o] == 0) continue;
        if (remap.remapped() && remap.host(o) == self_host) {
          c.add(CostKind::kRandAccess, static_cast<double>(count_to[o]));
          c.add(CostKind::kCpuOps, 20.0 * static_cast<double>(count_to[o]));
          continue;
        }
        c.add(CostKind::kCpuOps, 10.0 * static_cast<double>(count_to[o]));
        c.add(CostKind::kStreamBytes,
              static_cast<double>(kScatterBytes * count_to[o]));
      }
      ctx.parallel_region(c);
      return;
    }
    for (int q = 0; q < k; ++q) {
      const auto& part = ly[q][l];
      for (Index p = 0; p < part.nnz(); ++p) {
        const Index j = part.index_at(p);
        const int o = y[q].dist().owner(j);
        yspa[q][o].accumulate(j, part.value_at(p), sr.add);
        ++count_to[o];
      }
    }
    for (int o = 0; o < nloc; ++o) {
      if (count_to[o] == 0) continue;
      const bool local_dst =
          o == l || (remap.remapped() && remap.host(o) == self_host);
      if (local_dst) {
        CostVector c;
        c.add(CostKind::kRandAccess, static_cast<double>(count_to[o]));
        c.add(CostKind::kCpuOps, 20.0 * static_cast<double>(count_to[o]));
        ctx.parallel_region(c);
      } else if (scatter_strat == SiteStrategy::kBulk) {
        CostVector c;  // one packing region covers all k lanes' batch
        c.add(CostKind::kCpuOps, 10.0 * static_cast<double>(count_to[o]));
        c.add(CostKind::kStreamBytes,
              static_cast<double>(kScatterBytes * count_to[o]));
        ctx.parallel_region(c);
        ctx.remote_bulk(o, kScatterBytes * count_to[o] * pr);
      } else {
        ctx.remote_msgs(o, count_to[o], kScatterBytes,
                        /*contention=*/static_cast<double>(pr));
      }
    }
  });
  // Finalize each lane at its owners — the exact solo denseToSparse scan
  // (same sort, same mask filter), hence byte-identical lane outputs.
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int o = ctx.locale();
    for (int q = 0; q < k; ++q) {
      const DistDenseVec<std::uint8_t>* mask =
          masks.empty() ? nullptr : masks[static_cast<std::size_t>(q)];
      auto& spa = yspa[q][o];
      std::vector<Index>& nz = spa.nzinds();
      merge_sort(nz);
      std::vector<Index> idx;
      std::vector<T> val;
      idx.reserve(nz.size());
      val.reserve(nz.size());
      for (Index j : nz) {
        if (mask != nullptr && mask_mode != MaskMode::kNone) {
          const bool set = mask->local(o)[j] != 0;
          if (mask_mode == MaskMode::kMask ? !set : set) continue;
        }
        idx.push_back(j);
        val.push_back(spa.value(j));
      }
      CostVector c;
      if (mask != nullptr) {
        c.add(CostKind::kRandAccess, 0.25 * static_cast<double>(nz.size()));
      }
      c.add(CostKind::kStreamBytes,
            1.0 * static_cast<double>(y[q].dist().local_size(o)));
      c.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(idx.size()));
      c.add(CostKind::kCpuOps, 8.0 * static_cast<double>(idx.size()));
      ctx.parallel_region(c);
      y[q].local(o) = SparseVec<T>::from_sorted(
          y[q].dist().local_size(o), std::move(idx), std::move(val));
    }
  });
  scatter_span.end();
  {
    const CommStats cs1 = grid.comm_stats();
    grid.metrics()
        .counter("spmspv.messages", {{"phase", "scatter"}})
        .inc(cs1.messages - cs0.messages);
    grid.metrics()
        .counter("spmspv.bytes", {{"phase", "scatter"}})
        .inc(cs1.bytes - cs0.bytes);
  }
  if (insp != nullptr) insp->observe("spmspv.scatter", grid.time() - t0);
  grid.trace().add("scatter", grid.time() - t0);
  return y;
}

}  // namespace pgb
