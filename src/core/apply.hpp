// GraphBLAS Apply: apply a unary operator to every nonzero of a vector or
// matrix (paper Section III-A). O(nnz) compute, no communication needed —
// *if* the implementation keeps iteration local.
//
// Two implementations, mirroring the paper's Listings 2 and 3:
//
//  - apply_v1: Chapel's recommended data-parallel style, `forall a in
//    spArr`. On one locale this is a well-scaling parallel loop. But
//    Chapel 1.14 does not localize forall iteration over *sparse*
//    block-distributed arrays, so in distributed runs the loop is driven
//    from the initiating locale with fine-grained remote access per
//    element — the behaviour behind Fig 1 (right).
//
//  - apply_v2: explicit SPMD (`coforall loc do on loc`), each locale
//    updating its local block with a local forall. No communication.
#pragma once

#include "core/kernel_costs.hpp"
#include "machine/cost.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/dist_sparse_vec.hpp"

namespace pgb {

namespace detail {

/// Node-local cost of a forall applying `op` over nnz sparse elements.
inline CostVector apply_local_cost(Index nnz) {
  CostVector c;
  c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(nnz));
  c.add(CostKind::kCpuOps, kApplyOpsPerElem * static_cast<double>(nnz));
  return c;
}

}  // namespace detail

/// Paper Listing 2 — data-parallel forall over the distributed array.
template <typename T, typename Op>
void apply_v1(DistSparseVec<T>& x, Op op) {
  auto& grid = x.grid();
  LocaleCtx master(grid, 0);
  for (int l = 0; l < grid.num_locales(); ++l) {
    for (auto& v : x.local(l).values()) v = op(v);
    const Index nnz = x.local(l).nnz();
    if (l == master.locale()) {
      master.parallel_region(detail::apply_local_cost(nnz));
    } else {
      // Non-localized sparse iteration: the master's follower iterator
      // reads and writes each remote element through a wide pointer,
      // serially (read-modify-write dependence per element).
      master.remote_chain(l, nnz, kRemoteElemRts + 1.0, 16);
    }
  }
  grid.barrier_all();
}

/// Paper Listing 3 — explicit SPMD over locales, local foralls.
template <typename T, typename Op>
void apply_v2(DistSparseVec<T>& x, Op op) {
  x.grid().coforall_locales([&](LocaleCtx& ctx) {
    auto& lv = x.local(ctx.locale());
    for (auto& v : lv.values()) v = op(v);
    ctx.parallel_region(detail::apply_local_cost(lv.nnz()));
  });
}

/// Apply on a 2-D distributed matrix's values (SPMD style; the paper
/// defines Apply for matrices as well).
template <typename T, typename Op>
void apply_matrix(DistCsr<T>& a, Op op) {
  a.grid().coforall_locales([&](LocaleCtx& ctx) {
    auto& b = a.block(ctx.locale());
    for (auto& v : b.csr.values()) v = op(v);
    ctx.parallel_region(detail::apply_local_cost(b.csr.nnz()));
  });
}

}  // namespace pgb
