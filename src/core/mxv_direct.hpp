// Transpose-free distributed mxv using per-block CSC mirrors.
//
// vxm.hpp's mxv materializes A^T — simple but it moves the whole matrix.
// Real GraphBLAS backends keep both orientations of each block instead
// (CSR for vxm, CSC for mxv) and dispatch; this header provides that:
// build the mirror once with make_csc_mirror (paying the conversion),
// then every mxv_direct call runs the column-wise kernel per block with
// the mirrored communication pattern of spmspv_dist:
//
//   gather  x for the block's *column* range,
//   multiply with spmspv_columnwise into the block's *row* range,
//   scatter partial y along processor rows.
#pragma once

#include <vector>

#include "core/spmspv.hpp"
#include "core/spmspv_cw.hpp"
#include "obs/span.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/csc.hpp"
#include "sparse/dist_csr.hpp"

namespace pgb {

/// Per-locale CSC copies of a DistCsr's blocks (column ids local to the
/// block's column range so the CSC is compact).
template <typename T>
struct DistCscMirror {
  std::vector<Csc<T>> blocks;
};

/// Builds (and charges) the CSC mirror: one counting-sort pass per block.
template <typename T>
DistCscMirror<T> make_csc_mirror(const DistCsr<T>& a) {
  auto& grid = a.grid();
  DistCscMirror<T> mirror;
  mirror.blocks.resize(static_cast<std::size_t>(grid.num_locales()));
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& blk = a.block(l);
    // Rebase column ids to the block range so the CSC has chi-clo
    // columns rather than ncols.
    std::vector<Index> rowptr(blk.csr.rowptr().begin(),
                              blk.csr.rowptr().end());
    std::vector<Index> colids(blk.csr.colids().begin(),
                              blk.csr.colids().end());
    for (Index& c : colids) c -= blk.clo;
    std::vector<T> vals(blk.csr.values().begin(), blk.csr.values().end());
    auto rebased = Csr<T>::from_parts(blk.csr.nrows(), blk.chi - blk.clo,
                                      std::move(rowptr), std::move(colids),
                                      std::move(vals));
    mirror.blocks[static_cast<std::size_t>(l)] = Csc<T>::from_csr(rebased);
    CostVector c;
    c.add(CostKind::kStreamBytes, 48.0 * static_cast<double>(blk.csr.nnz()));
    c.add(CostKind::kRandAccess, static_cast<double>(blk.csr.nnz()));
    c.add(CostKind::kCpuOps, 16.0 * static_cast<double>(blk.csr.nnz()));
    ctx.parallel_region(c);
  });
  return mirror;
}

/// y = A x without materializing A^T. TA and T as in spmspv_dist.
template <typename TA, typename T, typename SR>
DistSparseVec<T> mxv_direct(const DistCsr<TA>& a,
                            const DistCscMirror<TA>& mirror,
                            const DistSparseVec<T>& x, const SR& sr,
                            const SpmspvOptions& opt = {}) {
  PGB_REQUIRE_SHAPE(x.capacity() == a.ncols(),
                    "mxv: x capacity must equal matrix columns");
  PGB_REQUIRE_SHAPE(&x.grid() == &a.grid(),
                    "mxv: operands live on different grids");
  auto& grid = a.grid();
  const int pr = grid.rows();
  const int pc = grid.cols();
  const int nloc = grid.num_locales();
  PGB_REQUIRE(static_cast<int>(mirror.blocks.size()) == nloc,
              "mxv: mirror does not match the grid");
  grid.metrics().counter("kernel.calls", {{"kernel", "mxv_direct"}}).inc();

  // Inspector–executor (CommMode::kAuto): same protocol as spmspv_dist,
  // on the mirrored sites. Gather footprints use the unfiltered piece
  // sizes (cheap pre-wave upper bound); since every candidate strategy
  // is priced from the same estimate, only near-tie rankings can flip.
  Inspector* insp = opt.comm == CommMode::kAuto ? &grid.inspector() : nullptr;
  SiteDecision gather_dec;
  if (insp != nullptr) {
    SiteFootprint fp;
    fp.bytes_each = 16;
    fp.fanout = static_cast<double>(pr);  // pr readers per x owner
    fp.chain_rts = kRemoteElemRts + 1.0;
    fp.read_only = true;
    fp.gather = true;
    for (int l = 0; l < nloc; ++l) {
      const auto& blk = a.block(l);
      if (blk.chi <= blk.clo) continue;
      const int first = x.owner(blk.clo);
      const int last = x.owner(blk.chi - 1);
      std::int64_t elems = 0;
      std::int64_t pairs = 0;
      for (int src = first; src <= last; ++src) {
        if (src == l) continue;
        ++pairs;
        elems += x.local(src).nnz();
      }
      fp.pairs += pairs;
      fp.elements += elems;
      if (elems > fp.max_initiator_elements) {
        fp.max_initiator_elements = elems;
        fp.max_initiator_pairs = pairs;
        // Replication ships whole pieces, which the range filter may
        // only partially read.
        fp.block_bytes = 16 * elems;
      }
    }
    gather_dec = insp->decide("mxv.gather", fp);
  }
  const SiteStrategy gather_strat =
      insp != nullptr          ? gather_dec.strategy
      : opt.aggregated()       ? SiteStrategy::kAggregated
      : opt.gather_is_bulk()   ? SiteStrategy::kBulk
                               : SiteStrategy::kFine;

  // ---- gather x for each block's column range ----
  obs::GridSpan gather_span(grid, "mxv.gather");
  double t0 = grid.time();
  std::vector<SparseVec<T>> xc(static_cast<std::size_t>(nloc));
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& blk = a.block(l);
    std::vector<Index> idx;
    std::vector<T> val;
    AggConfig gather_cfg = opt.agg;
    gather_cfg.contention = static_cast<double>(pr);
    if (insp != nullptr) gather_cfg.capacity = gather_dec.agg_capacity;
    AggChannel chan(ctx, gather_cfg);
    // Owners of [clo, chi) under x's 1-D distribution.
    const int first = blk.chi > blk.clo ? x.owner(blk.clo) : 0;
    const int last = blk.chi > blk.clo ? x.owner(blk.chi - 1) : -1;
    for (int src = first; src <= last; ++src) {
      const auto& piece = x.local(src);
      Index piece_cnt = 0;
      for (Index p = 0; p < piece.nnz(); ++p) {
        const Index i = piece.index_at(p);
        if (i >= blk.clo && i < blk.chi) {
          idx.push_back(i);
          val.push_back(piece.value_at(p));
          ++piece_cnt;
        }
      }
      if (src != l) {
        if (gather_strat == SiteStrategy::kReplicate) {
          // Read-only replication of the whole piece (the range filter
          // reads a slice, but the replica serves any slice until the
          // content tag or the membership epoch moves).
          const std::uint64_t tag = piece.fingerprint();
          if (!insp->cache_lookup("mxv.gather", src, ctx.host(), tag)) {
            const std::int64_t bytes = 16 * piece.nnz();
            ctx.remote_rt(src, 8);
            ctx.remote_bulk(src, bytes);
            const int depth =
                replication_tree_depth(static_cast<double>(pr));
            if (depth > 1) {
              const bool intra =
                  grid.same_node(ctx.host(), grid.host_of(src));
              ctx.clock().advance(
                  static_cast<double>(depth - 1) *
                  grid.net().bulk(bytes, intra, grid.colocated()));
            }
            insp->cache_install("mxv.gather", src, ctx.host(), tag, bytes);
          }
          continue;
        }
        ctx.remote_rt(src, 8);
        if (gather_strat == SiteStrategy::kAggregated) {
          chan.get_elems(src, piece_cnt, 16);
        } else if (gather_strat == SiteStrategy::kBulk) {
          // Each x owner serves all pr locales of one processor column.
          ctx.remote_bulk(src, 16 * piece_cnt * pr);
        } else {
          ctx.remote_chain(src, piece_cnt, kRemoteElemRts + 1.0, 16,
                           /*contention=*/static_cast<double>(pr));
        }
      }
    }
    chan.drain();
    xc[static_cast<std::size_t>(l)] = SparseVec<T>::from_sorted(
        blk.chi - blk.clo, std::move(idx), std::move(val));
  });
  gather_span.end();
  grid.trace().add("gather", grid.time() - t0);

  // ---- local column-wise multiply into the block's row range ----
  obs::GridSpan local_span(grid, "mxv.local");
  t0 = grid.time();
  std::vector<SparseVec<T>> ly(static_cast<std::size_t>(nloc));
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& blk = a.block(l);
    ly[static_cast<std::size_t>(l)] = spmspv_columnwise(
        ctx, mirror.blocks[static_cast<std::size_t>(l)], blk.clo,
        xc[static_cast<std::size_t>(l)], blk.rlo, sr, opt);
  });
  local_span.end();
  grid.trace().add("local", grid.time() - t0);

  // Scatter-site inspection (see spmspv_dist): pc senders per
  // destination, writes can't replicate. The bulk branch spawns one
  // packing region per destination — charge that floor per pair.
  SiteDecision scatter_dec;
  if (insp != nullptr) {
    SiteFootprint fp;
    fp.bytes_each = 16;
    fp.fanout = static_cast<double>(pc);
    fp.gather = false;
    fp.bulk_pair_overhead = grid.region_floor();
    for (int l = 0; l < nloc; ++l) {
      const std::int64_t elems = ly[static_cast<std::size_t>(l)].nnz();
      const std::int64_t pairs =
          std::min<std::int64_t>(nloc > 1 ? nloc - 1 : 0, pc);
      fp.pairs += pairs;
      fp.elements += elems;
      if (elems > fp.max_initiator_elements) {
        fp.max_initiator_elements = elems;
        fp.max_initiator_pairs = pairs;
      }
    }
    scatter_dec = insp->decide("mxv.scatter", fp);
  }
  const SiteStrategy scatter_strat =
      insp != nullptr          ? scatter_dec.strategy
      : opt.aggregated()       ? SiteStrategy::kAggregated
      : opt.scatter_is_bulk()  ? SiteStrategy::kBulk
                               : SiteStrategy::kFine;

  // ---- scatter/accumulate into the 1-D result over [0, nrows) ----
  obs::GridSpan scatter_span(grid, "mxv.scatter");
  t0 = grid.time();
  DistSparseVec<T> y(grid, a.nrows());
  std::vector<Spa<T>> yspa;
  yspa.reserve(static_cast<std::size_t>(nloc));
  for (int o = 0; o < nloc; ++o) {
    yspa.emplace_back(y.dist().lo(o), y.dist().hi(o));
  }
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& part = ly[static_cast<std::size_t>(l)];
    std::vector<std::int64_t> count_to(static_cast<std::size_t>(nloc), 0);
    if (scatter_strat == SiteStrategy::kAggregated) {
      // Same conveyor schedule as spmspv_dist's scatter, with row-wise
      // receiver contention (pc senders per destination).
      struct Update {
        Index r;
        T v;
      };
      AggConfig cfg = opt.agg;
      cfg.contention = static_cast<double>(pc);
      if (insp != nullptr) cfg.capacity = scatter_dec.agg_capacity;
      DstAggregator<Update> agg(
          ctx,
          [&](int peer, std::vector<Update>& batch) {
            for (const auto& u : batch) {
              yspa[static_cast<std::size_t>(peer)].accumulate(u.r, u.v,
                                                              sr.add);
            }
          },
          cfg);
      for (Index p = 0; p < part.nnz(); ++p) {
        const Index r = part.index_at(p);
        const int o = y.dist().owner(r);
        agg.push(o, Update{r, part.value_at(p)});
        ++count_to[static_cast<std::size_t>(o)];
      }
      agg.flush_all();
      CostVector c;
      c.add(CostKind::kRandAccess,
            static_cast<double>(count_to[static_cast<std::size_t>(l)]));
      c.add(CostKind::kCpuOps,
            20.0 * static_cast<double>(count_to[static_cast<std::size_t>(l)]));
      for (int o = 0; o < nloc; ++o) {
        const auto cnt = count_to[static_cast<std::size_t>(o)];
        if (o == l || cnt == 0) continue;
        c.add(CostKind::kCpuOps, 10.0 * static_cast<double>(cnt));
        c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(cnt));
      }
      ctx.parallel_region(c);
      return;
    }
    for (Index p = 0; p < part.nnz(); ++p) {
      const Index r = part.index_at(p);
      const int o = y.dist().owner(r);
      yspa[static_cast<std::size_t>(o)].accumulate(r, part.value_at(p),
                                                   sr.add);
      ++count_to[static_cast<std::size_t>(o)];
    }
    for (int o = 0; o < nloc; ++o) {
      const auto cnt = count_to[static_cast<std::size_t>(o)];
      if (cnt == 0) continue;
      if (o == l) {
        CostVector c;
        c.add(CostKind::kRandAccess, static_cast<double>(cnt));
        c.add(CostKind::kCpuOps, 20.0 * static_cast<double>(cnt));
        ctx.parallel_region(c);
      } else if (scatter_strat == SiteStrategy::kBulk) {
        CostVector c;
        c.add(CostKind::kCpuOps, 10.0 * static_cast<double>(cnt));
        c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(cnt));
        ctx.parallel_region(c);
        // Destinations drain batches from the pc locales of one row.
        ctx.remote_bulk(o, 16 * cnt * pc);
      } else {
        ctx.remote_msgs(o, cnt, 16, /*contention=*/static_cast<double>(pc));
      }
    }
  });
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int o = ctx.locale();
    auto& spa = yspa[static_cast<std::size_t>(o)];
    std::vector<Index>& nz = spa.nzinds();
    merge_sort(nz);
    std::vector<Index> idx(nz.begin(), nz.end());
    std::vector<T> val;
    val.reserve(idx.size());
    for (Index j : idx) val.push_back(spa.value(j));
    CostVector c;
    c.add(CostKind::kStreamBytes,
          1.0 * static_cast<double>(y.dist().local_size(o)) +
              24.0 * static_cast<double>(idx.size()));
    c.add(CostKind::kCpuOps, 8.0 * static_cast<double>(idx.size()));
    ctx.parallel_region(c);
    y.local(o) = SparseVec<T>::from_sorted(y.dist().local_size(o),
                                           std::move(idx), std::move(val));
  });
  scatter_span.end();
  grid.trace().add("scatter", grid.time() - t0);
  return y;
}

}  // namespace pgb
