// Masks for vector operations.
//
// The paper's conclusion singles out masks as a GraphBLAS novelty not yet
// attempted in distributed memory; pgas-graphblas implements them for the
// vector operations. A mask is a distributed dense Boolean vector (the
// common case in BFS: the "visited" set); apply_mask filters a sparse
// vector's entries by the mask, honoring MaskMode (normal / complement).
//
// Filtering is local on every locale because the mask shares the
// operand's distribution — masks cost O(nnz/p) and no communication,
// which is exactly why masked SpMSpV is the BFS workhorse.
#pragma once

#include "core/descriptor.hpp"
#include "core/kernel_costs.hpp"
#include "machine/cost.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/dist_dense_vec.hpp"
#include "sparse/dist_sparse_vec.hpp"

namespace pgb {

/// Returns x filtered by the mask: entries kept where mask[i] != 0
/// (kMask) or mask[i] == 0 (kComplement). kNone returns a copy.
template <typename T, typename B>
DistSparseVec<T> apply_mask(const DistSparseVec<T>& x,
                            const DistDenseVec<B>& mask, MaskMode mode) {
  PGB_REQUIRE_SHAPE(x.capacity() == mask.size(),
                    "mask size must equal vector capacity");
  PGB_REQUIRE_SHAPE(&x.grid() == &mask.grid(),
                    "mask lives on a different grid");
  auto& grid = x.grid();
  DistSparseVec<T> z(grid, x.capacity());

  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& lx = x.local(l);
    const auto& lm = mask.local(l);
    std::vector<Index> idx;
    std::vector<T> val;
    for (Index p = 0; p < lx.nnz(); ++p) {
      const Index i = lx.index_at(p);
      const bool set = lm[i] != B{};
      const bool keep = mode == MaskMode::kNone ||
                        (mode == MaskMode::kMask ? set : !set);
      if (keep) {
        idx.push_back(i);
        val.push_back(lx.value_at(p));
      }
    }
    CostVector c;
    c.add(CostKind::kCpuOps,
          kApplyOpsPerElem * static_cast<double>(lx.nnz()));
    c.add(CostKind::kRandAccess, 0.25 * static_cast<double>(lx.nnz()));
    c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(lx.nnz()) +
                                      24.0 * static_cast<double>(idx.size()));
    ctx.parallel_region(c);
    z.local(l) = SparseVec<T>::from_sorted(lx.capacity(), std::move(idx),
                                           std::move(val));
  });
  return z;
}

/// Scatter a sparse vector's pattern into a dense Boolean vector
/// (mask[i] |= 1 for every nonzero x[i]); used to maintain visited sets.
template <typename T, typename B>
void mask_union(DistDenseVec<B>& mask, const DistSparseVec<T>& x) {
  PGB_REQUIRE_SHAPE(x.capacity() == mask.size(),
                    "mask size must equal vector capacity");
  auto& grid = x.grid();
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& lx = x.local(l);
    auto& lm = mask.local(l);
    for (Index p = 0; p < lx.nnz(); ++p) lm[lx.index_at(p)] = B{1};
    CostVector c;
    c.add(CostKind::kCpuOps, 10.0 * static_cast<double>(lx.nnz()));
    c.add(CostKind::kRandAccess, 0.5 * static_cast<double>(lx.nnz()));
    c.add(CostKind::kStreamBytes, 8.0 * static_cast<double>(lx.nnz()));
    ctx.parallel_region(c);
  });
}

}  // namespace pgb
