// Column-wise SpMSpV: y = A x over a CSC matrix.
//
// With CSC, "A times a sparse column vector" visits exactly the columns
// x selects — the transpose-free mxv kernel a dual-format GraphBLAS
// backend dispatches to. Same SPA machinery and charges as the row-wise
// kernel; only the orientation differs (the paper's Fig 6 note: "Neither
// the algorithm nor its complexity is affected by the use of row-wise vs
// column-wise representation").
//
// This kernel is node-local; its distributed driver (mxv_direct.hpp)
// honours SpmspvOptions::comm for the surrounding gather/scatter, so the
// column-wise family supports the fine / bulk / aggregated schedules the
// same way spmspv_dist does.
#pragma once

#include "core/kernel_costs.hpp"
#include "core/spmspv.hpp"
#include "machine/cost.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/csc.hpp"
#include "sparse/spa.hpp"
#include "sparse/sparse_vec.hpp"

namespace pgb {

/// y[r] = add over x's nonzero columns c of mul(x[c], A[r, c]).
/// x indices are global column ids in [col_lo, col_lo + a.ncols()); the
/// result's indices are row ids in [row_lo, row_lo + a.nrows()).
template <typename TA, typename T, typename SR>
SparseVec<T> spmspv_columnwise(LocaleCtx& ctx, const Csc<TA>& a,
                               Index col_lo, const SparseVec<T>& x,
                               Index row_lo, const SR& sr,
                               const SpmspvOptions& opt = {},
                               Trace* trace = nullptr) {
  PGB_REQUIRE_SHAPE(x.capacity() >= a.ncols(),
                    "spmspv_columnwise: x capacity must cover the columns");
  const Index row_hi = row_lo + a.nrows();

  double t0 = ctx.clock().now();
  Spa<T> spa(row_lo, row_hi);
  Index visited = 0;
  for (Index p = 0; p < x.nnz(); ++p) {
    const Index c = x.index_at(p) - col_lo;
    PGB_ASSERT(c >= 0 && c < a.ncols(),
               "spmspv_columnwise: x index out of column range");
    const T& xv = x.value_at(p);
    auto rows = a.col_rowids(c);
    auto vals = a.col_values(c);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      spa.accumulate(row_lo + rows[k],
                     sr.multiply(xv, static_cast<T>(vals[k])), sr.add);
    }
    visited += static_cast<Index>(rows.size());
  }
  const Index out_nnz = spa.nnz();
  {
    CostVector c;
    c.add(CostKind::kStreamBytes, 9.0 * static_cast<double>(row_hi - row_lo));
    c.add(CostKind::kRandAccess, 2.0 * static_cast<double>(x.nnz()));
    c.add(CostKind::kCpuOps, kSpaOpsPerRow * static_cast<double>(x.nnz()));
    c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(visited));
    c.add(CostKind::kCpuOps, kSpaOpsPerNnz * static_cast<double>(visited));
    c.add(CostKind::kAtomicDistinct, static_cast<double>(visited));
    c.add(CostKind::kAtomicContended, static_cast<double>(out_nnz));
    ctx.parallel_region(c);
  }
  if (trace) trace->add("spa", ctx.clock().now() - t0);

  t0 = ctx.clock().now();
  std::vector<Index>& nzinds = spa.nzinds();
  const CostVector sc = opt.sort == SortAlgo::kMerge
                            ? merge_sort_cost(out_nnz)
                            : radix_sort_cost(out_nnz, row_hi);
  if (opt.sort == SortAlgo::kMerge) {
    merge_sort(nzinds);
  } else {
    radix_sort(nzinds);
  }
  ctx.parallel_region(sc.scaled(0.92));
  ctx.serial_region(sc.scaled(0.08));
  if (trace) trace->add("sort", ctx.clock().now() - t0);

  t0 = ctx.clock().now();
  std::vector<Index> idx(nzinds.begin(), nzinds.end());
  std::vector<T> val;
  val.reserve(idx.size());
  for (Index j : idx) val.push_back(spa.value(j));
  {
    CostVector c;
    c.add(CostKind::kCpuOps, kSpmspvOutputOps * static_cast<double>(out_nnz));
    c.add(CostKind::kRandAccess, static_cast<double>(out_nnz));
    c.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(out_nnz));
    ctx.parallel_region(c);
  }
  if (trace) trace->add("output", ctx.clock().now() - t0);

  return SparseVec<T>::from_sorted(row_hi - row_lo, std::move(idx),
                                   std::move(val));
}

}  // namespace pgb
