// Symmetric vertex relabeling and load-balance instrumentation.
//
// 2-D block distributions assign contiguous vertex ranges to locale
// rows/columns, so power-law graphs (R-MAT clusters its hubs at low
// vertex ids) load some blocks far more heavily than others. The classic
// remedy — applied by CombBLAS and the distributed-BFS work the paper
// cites [11] — is to relabel vertices with a random permutation before
// distributing. permute_matrix implements B[p[r], p[c]] = A[r, c] as a
// routed all-to-all, and load_imbalance quantifies the effect.
#pragma once

#include <numeric>
#include <vector>

#include "machine/cost.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/coo.hpp"
#include "sparse/dist_csr.hpp"
#include "util/rng.hpp"

namespace pgb {

/// A deterministic random permutation of [0, n) (Fisher-Yates).
inline std::vector<Index> random_relabeling(Index n, std::uint64_t seed) {
  std::vector<Index> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), Index{0});
  Xoshiro256 rng(seed);
  for (Index i = n - 1; i > 0; --i) {
    const Index j = static_cast<Index>(
        rng.next_below(static_cast<std::uint64_t>(i + 1)));
    std::swap(p[static_cast<std::size_t>(i)], p[static_cast<std::size_t>(j)]);
  }
  return p;
}

/// max/mean of per-locale nonzero counts (1.0 = perfectly balanced).
template <typename T>
double load_imbalance(const DistCsr<T>& a) {
  const int nloc = a.grid().num_locales();
  Index max_nnz = 0;
  Index total = 0;
  for (int l = 0; l < nloc; ++l) {
    max_nnz = std::max(max_nnz, a.block(l).csr.nnz());
    total += a.block(l).csr.nnz();
  }
  if (total == 0) return 1.0;
  return static_cast<double>(max_nnz) * nloc / static_cast<double>(total);
}

/// B[perm[r], perm[c]] = A[r, c]: symmetric relabeling. `perm` must be a
/// permutation of [0, nrows) (and nrows == ncols).
template <typename T>
DistCsr<T> permute_matrix(const DistCsr<T>& a,
                          const std::vector<Index>& perm) {
  PGB_REQUIRE_SHAPE(a.nrows() == a.ncols(),
                    "permute_matrix: matrix must be square");
  PGB_REQUIRE(static_cast<Index>(perm.size()) == a.nrows(),
              "permute_matrix: permutation size mismatch");
  auto& grid = a.grid();
  const int nloc = grid.num_locales();

  Coo<T> coo(a.nrows(), a.ncols());
  coo.reserve(static_cast<std::size_t>(a.nnz()));
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& blk = a.block(l);
    std::vector<std::int64_t> to(static_cast<std::size_t>(nloc), 0);
    for (Index lr = 0; lr < blk.csr.nrows(); ++lr) {
      const Index nr = perm[static_cast<std::size_t>(blk.rlo + lr)];
      auto cols = blk.csr.row_colids(lr);
      auto vals = blk.csr.row_values(lr);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const Index nc = perm[static_cast<std::size_t>(cols[k])];
        coo.add(nr, nc, vals[k]);
        ++to[static_cast<std::size_t>(a.dist().locale_of(nr, nc))];
      }
    }
    CostVector c;
    c.add(CostKind::kCpuOps, 30.0 * static_cast<double>(blk.csr.nnz()));
    c.add(CostKind::kRandAccess, 2.0 * static_cast<double>(blk.csr.nnz()));
    c.add(CostKind::kStreamBytes, 40.0 * static_cast<double>(blk.csr.nnz()));
    ctx.parallel_region(c);
    // One batched message to each destination block owner.
    for (int o = 0; o < nloc; ++o) {
      if (o != l && to[static_cast<std::size_t>(o)] > 0) {
        ctx.remote_bulk(o, 24 * to[static_cast<std::size_t>(o)]);
      }
    }
  });
  grid.barrier_all();

  auto b = DistCsr<T>::from_coo(grid, coo);
  // Receiver-side CSR rebuild.
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const auto& blk = b.block(ctx.locale());
    CostVector c;
    c.add(CostKind::kCpuOps, 40.0 * static_cast<double>(blk.csr.nnz()));
    c.add(CostKind::kStreamBytes, 48.0 * static_cast<double>(blk.csr.nnz()));
    ctx.parallel_region(c);
  });
  return b;
}

}  // namespace pgb
