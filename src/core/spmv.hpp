// Sparse matrix - dense vector multiplication, y <- x A, on a semiring.
// The GraphBLAS MXV/VXM with a dense operand (PageRank's workhorse).
// Dense vectors make both the gather and the reduction bulk operations —
// the contrast with spmspv_dist's fine-grained traffic is instructive.
#pragma once

#include <vector>

#include "machine/cost.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/dist_dense_vec.hpp"

namespace pgb {

/// TA (matrix) and T (vector) may differ; matrix values are cast to T
/// before the semiring multiply (e.g. int adjacency, double ranks).
template <typename TA, typename T, typename SR>
DistDenseVec<T> spmv(const DistCsr<TA>& a, const DistDenseVec<T>& x,
                     const SR& sr) {
  PGB_REQUIRE_SHAPE(x.size() == a.nrows(),
                    "spmv: x size must equal matrix rows");
  PGB_REQUIRE_SHAPE(&x.grid() == &a.grid(),
                    "spmv: operands live on different grids");
  auto& grid = a.grid();
  const int pc = grid.cols();
  const int nloc = grid.num_locales();

  // Per-locale partial results over the block's column range.
  std::vector<std::vector<T>> partial(nloc);

  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& blk = a.block(l);
    const int prow = grid.locale(l).row;

    // Gather the dense x row-block (bulk get per remote piece).
    std::vector<T> xloc;
    xloc.reserve(static_cast<std::size_t>(blk.rhi - blk.rlo));
    for (int i = 0; i < pc; ++i) {
      const int src = prow * pc + i;
      const auto& piece = x.local(src);
      xloc.insert(xloc.end(), piece.raw().begin(), piece.raw().end());
      if (src != l) ctx.remote_bulk(src, 8 * piece.size());
    }

    // Local multiply: accumulate each row's contributions into the
    // column-range partial.
    auto& p = partial[l];
    p.assign(static_cast<std::size_t>(blk.chi - blk.clo), sr.zero());
    for (Index lr = 0; lr < blk.csr.nrows(); ++lr) {
      const T xv = xloc[static_cast<std::size_t>(lr)];
      auto cols = blk.csr.row_colids(lr);
      auto vals = blk.csr.row_values(lr);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        auto& slot = p[static_cast<std::size_t>(cols[k] - blk.clo)];
        slot = sr.combine(slot, sr.multiply(xv, static_cast<T>(vals[k])));
      }
    }
    CostVector c;
    c.add(CostKind::kStreamBytes,
          16.0 * static_cast<double>(blk.csr.nnz()) +
              8.0 * static_cast<double>(blk.rhi - blk.rlo + blk.chi - blk.clo));
    c.add(CostKind::kRandAccess, 0.5 * static_cast<double>(blk.csr.nnz()));
    c.add(CostKind::kCpuOps, 14.0 * static_cast<double>(blk.csr.nnz()));
    ctx.parallel_region(c);
  });

  // Reduce partials into the 1-D distributed output: every locale sends
  // its column-range slice to the overlapping owners in one bulk message.
  DistDenseVec<T> y(grid, a.ncols(), sr.zero());
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& blk = a.block(l);
    const auto& p = partial[l];
    int prev_owner = -1;
    for (Index j = blk.clo; j < blk.chi; ++j) {
      const int o = y.dist().owner(j);
      auto& slot = y.local(o)[j];
      slot = sr.combine(slot, p[static_cast<std::size_t>(j - blk.clo)]);
      if (o != prev_owner && o != l) {
        // First index landing on a new owner: one bulk message covering
        // this owner's overlap with our column range.
        const Index overlap = std::min(blk.chi, y.dist().hi(o)) -
                              std::max(blk.clo, y.dist().lo(o));
        ctx.remote_bulk(o, 8 * overlap);
      }
      prev_owner = o;
    }
    CostVector c;
    c.add(CostKind::kStreamBytes,
          16.0 * static_cast<double>(blk.chi - blk.clo));
    c.add(CostKind::kCpuOps, 6.0 * static_cast<double>(blk.chi - blk.clo));
    ctx.parallel_region(c);
  });
  return y;
}

}  // namespace pgb
