// GraphBLAS-style entry points: vxm (row vector times matrix) and mxv
// (matrix times column vector), with descriptor-controlled transposition
// and optional masks — the naming surface of the C API the paper cites
// [7], layered over spmspv_dist.
//
// The 2-D distribution is row/column symmetric, so mxv(A, x) is computed
// as vxm(x, A^T); the transpose is materialized explicitly (transpose̲dist)
// and that cost is charged, which is exactly what a GraphBLAS runtime
// without a transposed-view kernel would pay. Callers iterating mxv
// should transpose once and use vxm.
#pragma once

#include "core/descriptor.hpp"
#include "core/spmspv.hpp"
#include "core/transpose.hpp"
#include "sparse/dist_csr.hpp"
#include "sparse/dist_dense_vec.hpp"
#include "sparse/dist_sparse_vec.hpp"

namespace pgb {

/// y = x A  (optionally x A^T when transpose is set).
template <typename TA, typename T, typename SR>
DistSparseVec<T> vxm(const DistSparseVec<T>& x, const DistCsr<TA>& a,
                     const SR& sr, bool transpose_a = false,
                     const SpmspvOptions& opt = {}) {
  if (!transpose_a) return spmspv_dist(a, x, sr, opt);
  DistCsr<TA> at = transpose_dist(a);
  return spmspv_dist(at, x, sr, opt);
}

/// Masked vxm (mask over the output's index space).
template <typename TA, typename T, typename SR>
DistSparseVec<T> vxm(const DistSparseVec<T>& x, const DistCsr<TA>& a,
                     const DistDenseVec<std::uint8_t>& mask, MaskMode mode,
                     const SR& sr, bool transpose_a = false,
                     const SpmspvOptions& opt = {}) {
  if (!transpose_a) return spmspv_dist_masked(a, x, mask, mode, sr, opt);
  DistCsr<TA> at = transpose_dist(a);
  return spmspv_dist_masked(at, x, mask, mode, sr, opt);
}

/// y = A x: with A[r,c] an edge r -> c, this accumulates over *incoming*
/// edges of each row index — the transpose orientation of vxm.
template <typename TA, typename T, typename SR>
DistSparseVec<T> mxv(const DistCsr<TA>& a, const DistSparseVec<T>& x,
                     const SR& sr, const SpmspvOptions& opt = {}) {
  return vxm(x, a, sr, /*transpose_a=*/true, opt);
}

}  // namespace pgb
