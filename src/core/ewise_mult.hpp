// GraphBLAS eWiseMult: element-wise multiplication over the intersection
// of the operands' index sets (paper Section III-C).
//
// The paper's benchmarked case is sparse-vector x dense-vector: each
// nonzero x[i] is kept (with value mul(x[i], y[i])) when keep(y[i]) is
// true. Their Listing 6 collects surviving indices through a per-locale
// *atomic counter* (losing order, so the domain insert re-sorts); the
// paper notes the atomic can be avoided with thread-private buffers merged
// by a prefix sum. Both variants are implemented here and compared by
// bench/abl_ewisemult_scan:
//
//  - kAtomic: one fetchAdd per kept element (contended, never scales) and
//    an unordered output needing a sort-merge into the domain;
//  - kScan:  an extra counting pass plus an exclusive scan; writes land
//    in order, so output construction is a straight merge.
//
// A general sparse x sparse eWiseMult (sorted-intersection merge) is also
// provided — the GraphBLAS-standard case the paper defers.
#pragma once

#include "core/kernel_costs.hpp"
#include "machine/cost.hpp"
#include "obs/span.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/dist_dense_vec.hpp"
#include "sparse/dist_sparse_vec.hpp"

namespace pgb {

enum class EwiseVariant {
  kAtomic,  ///< paper Listing 6: atomic counter per kept element
  kScan,    ///< thread-private buffers + prefix-sum merge
};

/// Sparse x dense element-wise multiply.
///   z[i] = mul(x[i], y[i])  for every nonzero x[i] with keep(y[i]) true.
template <typename T, typename B, typename Mul, typename Keep>
DistSparseVec<T> ewise_mult_sd(const DistSparseVec<T>& x,
                               const DistDenseVec<B>& y, Mul mul, Keep keep,
                               EwiseVariant variant = EwiseVariant::kAtomic) {
  PGB_REQUIRE_SHAPE(x.capacity() == y.size(),
                    "ewise_mult: x capacity must equal y size");
  PGB_REQUIRE_SHAPE(&x.grid() == &y.grid(),
                    "ewise_mult: operands live on different grids");
  auto& grid = x.grid();
  grid.metrics().counter("kernel.calls", {{"kernel", "ewise_mult_sd"}}).inc();
  PGB_TRACE_SPAN(grid, "ewise.mult_sd");
  DistSparseVec<T> z(grid, x.capacity());

  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& lx = x.local(l);
    const auto& ly = y.local(l);
    const Index nnz = lx.nnz();

    // Scan pass (kept count / offsets) exists only in the kScan variant;
    // sequential execution already yields sorted output either way, but
    // the charges below model the parallel execution of each variant.
    std::vector<Index> kept_idx;
    std::vector<T> kept_val;
    for (Index p = 0; p < nnz; ++p) {
      const Index i = lx.index_at(p);
      if (keep(ly[i])) {
        kept_idx.push_back(i);
        kept_val.push_back(mul(lx.value_at(p), static_cast<T>(ly[i])));
      }
    }
    const Index kept = static_cast<Index>(kept_idx.size());

    CostVector c;
    // Main pass: zipped iteration over the sparse block, streaming x's
    // indices+values and the dense y block (indices ascend, so y access
    // is effectively streaming).
    c.add(CostKind::kCpuOps, kEwiseOpsPerElem * static_cast<double>(nnz));
    c.add(CostKind::kStreamBytes,
          16.0 * static_cast<double>(nnz) +
              static_cast<double>(sizeof(B)) * static_cast<double>(ly.size()));
    c.add(CostKind::kStreamBytes, 8.0 * static_cast<double>(kept));
    if (variant == EwiseVariant::kAtomic) {
      c.add(CostKind::kAtomicContended, static_cast<double>(kept));
    } else {
      // Counting pass re-streams the indices and re-tests keep().
      c.add(CostKind::kCpuOps,
            kEwiseScanPassOps * static_cast<double>(nnz));
      c.add(CostKind::kStreamBytes, 8.0 * static_cast<double>(nnz));
    }
    ctx.parallel_region(c);

    // Output construction: domain bulk-add + value copy. The atomic
    // variant's keepInd arrives unordered, so the domain insert pays a
    // sort-merge; the scan variant's arrives sorted.
    CostVector oc;
    oc.add(CostKind::kCpuOps, kEwiseOutputOps * static_cast<double>(kept));
    oc.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(kept));
    if (variant == EwiseVariant::kAtomic && kept > 1) {
      // The domain's internal sort-merge of the unordered keepInd array;
      // cheaper than a full Chapel mergeSort (tight loops, no first-class
      // comparator), hence the 0.1 factor — calibrated so the 100M curve
      // lands on Fig 4's ~10 s single-thread intercept.
      oc += merge_sort_cost(kept).scaled(0.1);
    }
    ctx.parallel_region(oc);

    z.local(l) = SparseVec<T>::from_sorted(lx.capacity(),
                                           std::move(kept_idx),
                                           std::move(kept_val));
  });
  return z;
}

/// Sparse x sparse element-wise multiply on the index intersection, SPMD.
///   z[i] = mul(x[i], w[i])  for i present in both x and w.
template <typename T, typename Mul>
DistSparseVec<T> ewise_mult_ss(const DistSparseVec<T>& x,
                               const DistSparseVec<T>& w, Mul mul) {
  PGB_REQUIRE_SHAPE(x.capacity() == w.capacity(),
                    "ewise_mult: capacity mismatch");
  PGB_REQUIRE_SHAPE(&x.grid() == &w.grid(),
                    "ewise_mult: operands live on different grids");
  auto& grid = x.grid();
  grid.metrics().counter("kernel.calls", {{"kernel", "ewise_mult_ss"}}).inc();
  PGB_TRACE_SPAN(grid, "ewise.mult_ss");
  DistSparseVec<T> z(grid, x.capacity());

  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& lx = x.local(l);
    const auto& lw = w.local(l);
    std::vector<Index> idx;
    std::vector<T> val;
    Index p = 0, q = 0;
    while (p < lx.nnz() && q < lw.nnz()) {
      const Index a = lx.index_at(p);
      const Index b = lw.index_at(q);
      if (a < b) {
        ++p;
      } else if (b < a) {
        ++q;
      } else {
        idx.push_back(a);
        val.push_back(mul(lx.value_at(p), lw.value_at(q)));
        ++p;
        ++q;
      }
    }
    CostVector c;
    const double work = static_cast<double>(lx.nnz() + lw.nnz());
    c.add(CostKind::kCpuOps, kEwiseOpsPerElem * work);
    c.add(CostKind::kStreamBytes, 16.0 * work + 24.0 * idx.size());
    ctx.parallel_region(c);
    z.local(l) = SparseVec<T>::from_sorted(lx.capacity(), std::move(idx),
                                           std::move(val));
  });
  return z;
}

}  // namespace pgb
