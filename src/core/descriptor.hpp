// Operation descriptors and masks, following the 2017 GraphBLAS C API
// design the paper cites [7]. Masks in distributed memory are called out
// as novel future work in the paper's conclusions; pgas-graphblas
// implements them for vector operations (apply, assign, vxm).
#pragma once

namespace pgb {

/// What to do with output entries not written by a masked operation.
enum class OutputMode {
  kMerge,    ///< keep previous output entries outside the written set
  kReplace,  ///< clear the output first (GrB_REPLACE)
};

/// Mask interpretation.
enum class MaskMode {
  kNone,        ///< no mask: write everything
  kMask,        ///< keep result entries where the mask is set
  kComplement,  ///< keep result entries where the mask is NOT set
};

struct Descriptor {
  OutputMode output = OutputMode::kReplace;
  MaskMode mask = MaskMode::kNone;
};

inline Descriptor default_desc() { return {}; }

inline Descriptor masked_desc(bool complement = false) {
  return {OutputMode::kReplace,
          complement ? MaskMode::kComplement : MaskMode::kMask};
}

}  // namespace pgb
