// GraphBLAS Extract (restricted like the paper's Assign): pull out the
// sub-vector of x whose indices fall in [lo, hi).
//
// extract_range keeps global indices and the original distribution, so
// entries never move — no communication. extract_compact re-bases the
// range to a vector of capacity hi-lo, which redistributes every entry
// to its new owner; that routing supports the fine / bulk / aggregated
// schedules (CommMode).
#pragma once

#include <cmath>

#include "core/kernel_costs.hpp"
#include "machine/cost.hpp"
#include "obs/span.hpp"
#include "runtime/aggregator.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/dist_sparse_vec.hpp"
#include "util/sorting.hpp"

namespace pgb {

template <typename T>
DistSparseVec<T> extract_range(const DistSparseVec<T>& x, Index lo,
                               Index hi) {
  PGB_REQUIRE(lo >= 0 && hi <= x.capacity() && lo <= hi,
              "extract: bad range");
  auto& grid = x.grid();
  DistSparseVec<T> z(grid, x.capacity());

  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& lx = x.local(l);
    std::vector<Index> idx;
    std::vector<T> val;
    for (Index p = 0; p < lx.nnz(); ++p) {
      const Index i = lx.index_at(p);
      if (i >= lo && i < hi) {
        idx.push_back(i);
        val.push_back(lx.value_at(p));
      }
    }
    CostVector c;
    c.add(CostKind::kCpuOps,
          kApplyOpsPerElem * static_cast<double>(lx.nnz()));
    c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(lx.nnz()) +
                                      24.0 * static_cast<double>(idx.size()));
    ctx.parallel_region(c);
    z.local(l) = SparseVec<T>::from_sorted(lx.capacity(), std::move(idx),
                                           std::move(val));
  });
  return z;
}

/// Z[i - lo] = X[i] for every entry of x in [lo, hi); Z has capacity
/// hi - lo and the standard 1-D block distribution, so each selected
/// entry is routed to its new owner.
template <typename T>
DistSparseVec<T> extract_compact(const DistSparseVec<T>& x, Index lo,
                                 Index hi, CommMode comm = CommMode::kBulk,
                                 const AggConfig& agg_cfg = {}) {
  PGB_REQUIRE(lo >= 0 && hi <= x.capacity() && lo <= hi,
              "extract_compact: bad range");
  auto& grid = x.grid();
  const int nloc = grid.num_locales();
  grid.metrics().counter("kernel.calls", {{"kernel", "extract_compact"}}).inc();
  PGB_TRACE_SPAN(grid, "extract.compact");
  DistSparseVec<T> z(grid, hi - lo);

  // Inspector–executor (kAuto): write-direction routing, so fine/bulk/
  // agg only. Selected counts aren't known before the scan; the range
  // fraction of x's nonzeros is the uniform estimate every candidate is
  // priced from.
  SiteStrategy strat = comm == CommMode::kFine     ? SiteStrategy::kFine
                       : comm == CommMode::kBulk   ? SiteStrategy::kBulk
                                                   : SiteStrategy::kAggregated;
  AggConfig cfg_resolved = agg_cfg;
  if (comm == CommMode::kAuto) {
    SiteFootprint fp;
    fp.bytes_each = 16;
    fp.gather = false;
    std::int64_t x_nnz = 0;
    for (int l = 0; l < nloc; ++l) x_nnz += x.local(l).nnz();
    const double frac =
        x.capacity() > 0
            ? static_cast<double>(hi - lo) / static_cast<double>(x.capacity())
            : 0.0;
    fp.elements = std::llround(static_cast<double>(x_nnz) * frac);
    const std::int64_t pairs_per = nloc > 1 ? nloc - 1 : 0;
    fp.pairs = static_cast<std::int64_t>(nloc) * pairs_per;
    fp.max_initiator_pairs = pairs_per;
    fp.max_initiator_elements =
        (fp.elements + nloc - 1) / std::max(1, nloc);
    const SiteDecision dec = grid.inspector().decide("extract.compact", fp);
    strat = dec.strategy;
    cfg_resolved.capacity = dec.agg_capacity;
  }

  std::vector<std::vector<Index>> z_idx(static_cast<std::size_t>(nloc));
  std::vector<std::vector<T>> z_val(static_cast<std::size_t>(nloc));
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& lx = x.local(l);
    std::vector<std::int64_t> count_to(static_cast<std::size_t>(nloc), 0);
    struct Entry {
      Index j;  ///< re-based index in [0, hi - lo)
      T v;
    };
    auto deliver = [&](int peer, std::vector<Entry>& batch) {
      for (const auto& e : batch) {
        z_idx[static_cast<std::size_t>(peer)].push_back(e.j);
        z_val[static_cast<std::size_t>(peer)].push_back(e.v);
      }
    };
    DstAggregator<Entry> agg(ctx, deliver, cfg_resolved);
    Index selected = 0;
    for (Index p = 0; p < lx.nnz(); ++p) {
      const Index i = lx.index_at(p);
      if (i < lo || i >= hi) continue;
      ++selected;
      const Index j = i - lo;
      const int o = z.dist().owner(j);
      ++count_to[static_cast<std::size_t>(o)];
      if (strat == SiteStrategy::kAggregated) {
        agg.push(o, Entry{j, lx.value_at(p)});
      } else {
        z_idx[static_cast<std::size_t>(o)].push_back(j);
        z_val[static_cast<std::size_t>(o)].push_back(lx.value_at(p));
      }
    }
    agg.flush_all();
    CostVector c;
    c.add(CostKind::kCpuOps, kApplyOpsPerElem * static_cast<double>(lx.nnz()));
    c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(lx.nnz()) +
                                      24.0 * static_cast<double>(selected));
    ctx.parallel_region(c);
    for (int o = 0; o < nloc; ++o) {
      if (o == l || count_to[static_cast<std::size_t>(o)] == 0) continue;
      if (strat == SiteStrategy::kFine) {
        ctx.remote_msgs(o, count_to[static_cast<std::size_t>(o)], 16);
      } else if (strat == SiteStrategy::kBulk) {
        ctx.remote_bulk(o, 16 * count_to[static_cast<std::size_t>(o)]);
      }
    }
  });
  grid.barrier_all();

  // Each new owner sorts and installs its batch (senders are visited in
  // locale order, so per-owner batches arrive nearly sorted).
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int o = ctx.locale();
    auto& idx = z_idx[static_cast<std::size_t>(o)];
    auto& val = z_val[static_cast<std::size_t>(o)];
    sort_pairs_by_index(idx, val);
    CostVector c;
    c.add(CostKind::kCpuOps, 12.0 * static_cast<double>(idx.size()));
    c.add(CostKind::kStreamBytes, 24.0 * static_cast<double>(idx.size()));
    ctx.parallel_region(c);
    z.local(o) = SparseVec<T>::from_sorted(z.dist().local_size(o),
                                           std::move(idx), std::move(val));
  });
  grid.barrier_all();
  return z;
}

}  // namespace pgb
