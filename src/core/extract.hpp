// GraphBLAS Extract (restricted like the paper's Assign): pull out the
// sub-vector of x whose indices fall in [lo, hi), preserving global
// indices, into a vector with the same capacity and distribution.
#pragma once

#include "core/kernel_costs.hpp"
#include "machine/cost.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/dist_sparse_vec.hpp"

namespace pgb {

template <typename T>
DistSparseVec<T> extract_range(const DistSparseVec<T>& x, Index lo,
                               Index hi) {
  PGB_REQUIRE(lo >= 0 && hi <= x.capacity() && lo <= hi,
              "extract: bad range");
  auto& grid = x.grid();
  DistSparseVec<T> z(grid, x.capacity());

  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& lx = x.local(l);
    std::vector<Index> idx;
    std::vector<T> val;
    for (Index p = 0; p < lx.nnz(); ++p) {
      const Index i = lx.index_at(p);
      if (i >= lo && i < hi) {
        idx.push_back(i);
        val.push_back(lx.value_at(p));
      }
    }
    CostVector c;
    c.add(CostKind::kCpuOps,
          kApplyOpsPerElem * static_cast<double>(lx.nnz()));
    c.add(CostKind::kStreamBytes, 16.0 * static_cast<double>(lx.nnz()) +
                                      24.0 * static_cast<double>(idx.size()));
    ctx.parallel_region(c);
    z.local(l) = SparseVec<T>::from_sorted(lx.capacity(), std::move(idx),
                                           std::move(val));
  });
  return z;
}

}  // namespace pgb
