// Matrix-level element-wise operations, Assign, and Extract.
//
// The paper benchmarks the vector forms; the GraphBLAS spec defines all
// of these for matrices too. With both operands on the same grid and
// dimensions, every block pair is co-located, so these are pure SPMD
// row-merge kernels — no communication, exactly like the vector
// eWiseMult/Assign2.
#pragma once

#include <vector>

#include "core/kernel_costs.hpp"
#include "machine/cost.hpp"
#include "runtime/locale_grid.hpp"
#include "sparse/dist_csr.hpp"

namespace pgb {

namespace detail {

template <typename T>
void require_same_shape(const DistCsr<T>& a, const DistCsr<T>& b,
                        const char* what) {
  PGB_REQUIRE_SHAPE(a.nrows() == b.nrows() && a.ncols() == b.ncols(),
                    std::string(what) + ": dimension mismatch");
  PGB_REQUIRE_SHAPE(&a.grid() == &b.grid(),
                    std::string(what) + ": operands on different grids");
}

/// Merges two CSR blocks row by row. Mode selects intersection
/// (eWiseMult) or union (eWiseAdd) semantics.
template <typename T, typename Op, bool kUnion>
Csr<T> merge_rows(const Csr<T>& a, const Csr<T>& b, Op op) {
  std::vector<Index> rowptr(static_cast<std::size_t>(a.nrows()) + 1, 0);
  std::vector<Index> colids;
  std::vector<T> vals;
  for (Index r = 0; r < a.nrows(); ++r) {
    auto ac = a.row_colids(r);
    auto av = a.row_values(r);
    auto bc = b.row_colids(r);
    auto bv = b.row_values(r);
    std::size_t i = 0, j = 0;
    while (i < ac.size() || j < bc.size()) {
      if (j >= bc.size() || (i < ac.size() && ac[i] < bc[j])) {
        if constexpr (kUnion) {
          colids.push_back(ac[i]);
          vals.push_back(av[i]);
        }
        ++i;
      } else if (i >= ac.size() || bc[j] < ac[i]) {
        if constexpr (kUnion) {
          colids.push_back(bc[j]);
          vals.push_back(bv[j]);
        }
        ++j;
      } else {
        colids.push_back(ac[i]);
        vals.push_back(op(av[i], bv[j]));
        ++i;
        ++j;
      }
    }
    rowptr[static_cast<std::size_t>(r) + 1] =
        static_cast<Index>(colids.size());
  }
  return Csr<T>::from_parts(a.nrows(), a.ncols(), std::move(rowptr),
                            std::move(colids), std::move(vals));
}

template <typename T>
CostVector merge_cost(const Csr<T>& a, const Csr<T>& b, Index out_nnz) {
  CostVector c;
  const double work = static_cast<double>(a.nnz() + b.nnz());
  c.add(CostKind::kCpuOps, kEwiseOpsPerElem * work);
  c.add(CostKind::kStreamBytes,
        16.0 * work + 24.0 * static_cast<double>(out_nnz) +
            8.0 * static_cast<double>(a.nrows()));
  return c;
}

}  // namespace detail

/// C = A .* B: element-wise multiply on the pattern intersection.
template <typename T, typename Op>
DistCsr<T> ewise_mult_matrix(const DistCsr<T>& a, const DistCsr<T>& b,
                             Op op) {
  detail::require_same_shape(a, b, "ewise_mult_matrix");
  auto& grid = a.grid();
  DistCsr<T> c(grid, a.nrows(), a.ncols());
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    c.block(l).csr = detail::merge_rows<T, Op, /*kUnion=*/false>(
        a.block(l).csr, b.block(l).csr, op);
    ctx.parallel_region(
        detail::merge_cost(a.block(l).csr, b.block(l).csr,
                           c.block(l).csr.nnz()));
  });
  return c;
}

/// C = A (+) B: element-wise combine on the pattern union.
template <typename T, typename Op>
DistCsr<T> ewise_add_matrix(const DistCsr<T>& a, const DistCsr<T>& b,
                            Op op) {
  detail::require_same_shape(a, b, "ewise_add_matrix");
  auto& grid = a.grid();
  DistCsr<T> c(grid, a.nrows(), a.ncols());
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    c.block(l).csr = detail::merge_rows<T, Op, /*kUnion=*/true>(
        a.block(l).csr, b.block(l).csr, op);
    ctx.parallel_region(
        detail::merge_cost(a.block(l).csr, b.block(l).csr,
                           c.block(l).csr.nnz()));
  });
  return c;
}

/// A = B for matrices with matching distribution (the paper's restricted
/// Assign, lifted to matrices; SPMD bulk copy like Assign2).
template <typename T>
void assign_matrix(DistCsr<T>& a, const DistCsr<T>& b) {
  detail::require_same_shape(a, b, "assign_matrix");
  auto& grid = a.grid();
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    a.block(l).csr = b.block(l).csr;
    CostVector c;
    const double nnz = static_cast<double>(b.block(l).csr.nnz());
    c.add(CostKind::kCpuOps, kAssignBulkOps * nnz);
    c.add(CostKind::kStreamBytes, 32.0 * nnz);
    ctx.parallel_region(c);
  });
}

/// Extract the submatrix with rows in [rlo, rhi) and columns in
/// [clo, chi), preserving global indices and the original dimensions
/// (entries outside the window are dropped) — the matrix analogue of
/// extract_range.
template <typename T>
DistCsr<T> extract_submatrix(const DistCsr<T>& a, Index rlo, Index rhi,
                             Index clo, Index chi) {
  PGB_REQUIRE(rlo >= 0 && rhi <= a.nrows() && rlo <= rhi,
              "extract_submatrix: bad row range");
  PGB_REQUIRE(clo >= 0 && chi <= a.ncols() && clo <= chi,
              "extract_submatrix: bad column range");
  auto& grid = a.grid();
  DistCsr<T> z(grid, a.nrows(), a.ncols());
  grid.coforall_locales([&](LocaleCtx& ctx) {
    const int l = ctx.locale();
    const auto& blk = a.block(l);
    std::vector<Index> rowptr(
        static_cast<std::size_t>(blk.rhi - blk.rlo) + 1, 0);
    std::vector<Index> colids;
    std::vector<T> vals;
    for (Index lr = 0; lr < blk.csr.nrows(); ++lr) {
      const Index gr = blk.rlo + lr;
      if (gr >= rlo && gr < rhi) {
        auto cols = blk.csr.row_colids(lr);
        auto rvals = blk.csr.row_values(lr);
        for (std::size_t k = 0; k < cols.size(); ++k) {
          if (cols[k] >= clo && cols[k] < chi) {
            colids.push_back(cols[k]);
            vals.push_back(rvals[k]);
          }
        }
      }
      rowptr[static_cast<std::size_t>(lr) + 1] =
          static_cast<Index>(colids.size());
    }
    const Index out_nnz = static_cast<Index>(colids.size());
    z.block(l).csr =
        Csr<T>::from_parts(blk.rhi - blk.rlo, a.ncols(), std::move(rowptr),
                           std::move(colids), std::move(vals));
    CostVector c;
    c.add(CostKind::kCpuOps,
          kApplyOpsPerElem * static_cast<double>(blk.csr.nnz()));
    c.add(CostKind::kStreamBytes,
          16.0 * static_cast<double>(blk.csr.nnz()) +
              24.0 * static_cast<double>(out_nnz));
    ctx.parallel_region(c);
  });
  return z;
}

}  // namespace pgb
