// Per-kernel charge constants.
//
// These encode the *software* overhead per element of Chapel 1.14's
// generic/sparse iterators, on top of the hardware terms (stream bytes,
// random accesses, atomics) that each kernel charges. They were calibrated
// once against the single-thread intercepts of the paper's figures:
//   - Fig 1 left:  Apply over 10M nonzeros,   ~0.15-0.25 s at 1 thread
//   - Fig 2 left:  Assign2 over 1M nonzeros,  ~0.15-0.25 s at 1 thread
//   - Fig 4:       eWiseMult over 100M,       ~6-8 s at 1 thread
//   - Fig 7:       SpMSpV sort dominating SPA and output steps
// A hand-tuned C++ kernel would charge ~5-10 ops per element; Chapel's
// zippered sparse iterators cost an order of magnitude more, and that gap
// is part of what the paper measures.
#pragma once

namespace pgb {

/// forall over one local sparse array (Apply's loop body).
inline constexpr double kApplyOpsPerElem = 36.0;

/// Per-element cost of Assign1's indexed access, *excluding* the
/// binary-search probes (those are charged as kRandAccess = log2(nnz)).
inline constexpr double kAssignLookupOps = 40.0;

/// Assign2's zippered local copy loops (domain pass + value pass each).
inline constexpr double kAssignBulkOps = 60.0;

/// eWiseMult's zipped sparse/dense iteration per x nonzero.
inline constexpr double kEwiseOpsPerElem = 110.0;

/// Extra per-element cost of the prefix-sum (two-pass) eWiseMult variant's
/// counting pass.
inline constexpr double kEwiseScanPassOps = 30.0;

/// eWiseMult output construction (domain bulk-add + value copy) per kept
/// element.
inline constexpr double kEwiseOutputOps = 40.0;

/// SpMSpV SPA phase, per visited matrix nonzero.
inline constexpr double kSpaOpsPerNnz = 80.0;

/// SpMSpV SPA phase, per x nonzero (row fetch bookkeeping).
inline constexpr double kSpaOpsPerRow = 60.0;

/// SpMSpV output phase, per output nonzero.
inline constexpr double kSpmspvOutputOps = 60.0;

/// Dependent round trips of one remote *indexed* access into a sparse
/// domain/array of nnz entries: a binary search (log2 nnz probes) plus
/// descriptor dereferences. Used by Assign1 in distributed memory.
double remote_search_rts(double local_nnz);

/// Dependent round trips of one remote element access through a wide
/// pointer (descriptor fetch + data fetch), no search. Used by Apply1's
/// non-localized forall and SpMSpV's element-wise gather.
inline constexpr double kRemoteElemRts = 2.0;

}  // namespace pgb
