// Epoch-versioned graph handles: the resident-state half of the service
// front end.
//
// A handle names a logical graph a tenant can query; each `publish`
// installs a new immutable version and bumps the handle's epoch. Queries
// capture a *snapshot* (shared_ptr to the version + its epoch) at
// admission, so a publish or even a close while they sit in the queue
// cannot pull the graph out from under them — the snapshot pins the old
// version until the last in-flight query drops it. This is the ownership
// contract the later streaming-ingest work needs: swap epochs under live
// traffic, never quiesce.
//
// Epoch semantics: load() starts a handle at epoch 1; publish() bumps by
// one per new version; close() retires the handle id (epoch frozen).
// snapshot() on a closed or unknown handle throws InvalidHandleError —
// the C API maps it to GrB_INVALID_OBJECT.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "service/query.hpp"
#include "sparse/dist_csr.hpp"

namespace pgb {

/// One pinned graph version: what an admitted query computes against.
struct GraphSnapshot {
  std::shared_ptr<const DistCsr<double>> graph;
  std::uint64_t epoch = 0;
};

class GraphStore {
 public:
  using HandleId = std::int64_t;

  /// Resident-state change observer: called after every load / publish /
  /// close with the handle and its (post-bump) epoch. GraphService
  /// installs one that appends "publish"-family events to the service
  /// event log, stamped in simulated time.
  using ChangeHook = std::function<void(const char* op, HandleId h,
                                        std::uint64_t epoch)>;
  void set_change_hook(ChangeHook hook) { on_change_ = std::move(hook); }

  /// Registers a graph as resident state; the returned handle starts at
  /// epoch 1.
  HandleId load(std::shared_ptr<const DistCsr<double>> g) {
    PGB_REQUIRE(g != nullptr, "graph handle: load of null graph");
    entries_.push_back(Entry{std::move(g), 1, true});
    const HandleId h = static_cast<HandleId>(entries_.size() - 1);
    if (on_change_) on_change_("load", h, 1);
    return h;
  }

  /// Installs a new version under an open handle and returns the bumped
  /// epoch. Snapshots taken before the publish keep the old version: the
  /// displaced version moves to the retired registry, where it stays
  /// observable (retired_live) until the last pinning snapshot drops it.
  std::uint64_t publish(HandleId h, std::shared_ptr<const DistCsr<double>> g) {
    Entry& e = open_entry(h, "publish");
    PGB_REQUIRE(g != nullptr, "graph handle: publish of null graph");
    retire(e.graph);
    e.graph = std::move(g);
    const std::uint64_t epoch = ++e.epoch;
    if (on_change_) on_change_("publish", h, epoch);
    return epoch;
  }

  /// Retires the handle. Teardown of the final version is deferred while
  /// snapshots hold it — the store only drops its own reference; the
  /// version lands in the retired registry like any displaced epoch.
  void close(HandleId h) {
    Entry& e = open_entry(h, "close");
    e.open = false;
    retire(e.graph);
    e.graph.reset();
    if (on_change_) on_change_("close", h, e.epoch);
  }

  /// Pins the handle's current version for one query.
  GraphSnapshot snapshot(HandleId h) const {
    const Entry& e = open_entry(h, "snapshot");
    return GraphSnapshot{e.graph, e.epoch};
  }

  /// Current epoch of an open handle.
  std::uint64_t epoch(HandleId h) const { return open_entry(h, "epoch").epoch; }

  bool is_open(HandleId h) const {
    return h >= 0 && h < static_cast<HandleId>(entries_.size()) &&
           entries_[static_cast<std::size_t>(h)].open;
  }

  std::int64_t num_handles() const {
    return static_cast<std::int64_t>(entries_.size());
  }

  /// Retired versions still pinned by at least one live snapshot —
  /// epochs that were published (or closed) over but whose teardown is
  /// deferred until the last in-flight query releases them. Rapid
  /// successive publishes under live traffic keep every pinned
  /// predecessor alive; this is the observable for asserting it.
  std::int64_t retired_live() const {
    std::int64_t live = 0;
    for (const auto& w : retired_) {
      if (!w.expired()) ++live;
    }
    return live;
  }

  /// Drops registry entries whose versions have fully torn down (no
  /// snapshot holds them anymore). Returns how many were reclaimed.
  std::int64_t prune_retired() {
    const std::size_t before = retired_.size();
    retired_.erase(std::remove_if(retired_.begin(), retired_.end(),
                                  [](const VersionRef& w) {
                                    return w.expired();
                                  }),
                   retired_.end());
    return static_cast<std::int64_t>(before - retired_.size());
  }

 private:
  using VersionRef = std::weak_ptr<const DistCsr<double>>;

  struct Entry {
    std::shared_ptr<const DistCsr<double>> graph;
    std::uint64_t epoch = 0;
    bool open = false;
  };

  /// Moves a displaced version into the retired registry (weakly — the
  /// registry observes teardown, it must not delay it) and opportunistically
  /// reclaims entries that already tore down, so the registry stays bounded
  /// by the number of *pinned* versions, not the number of publishes.
  void retire(const std::shared_ptr<const DistCsr<double>>& g) {
    prune_retired();
    if (g != nullptr) retired_.push_back(g);
  }

  const Entry& open_entry(HandleId h, const char* op) const {
    if (h < 0 || h >= static_cast<HandleId>(entries_.size())) {
      throw InvalidHandleError(std::string("graph handle: ") + op +
                               " of unknown handle " + std::to_string(h));
    }
    const Entry& e = entries_[static_cast<std::size_t>(h)];
    if (!e.open) {
      throw InvalidHandleError(std::string("graph handle: ") + op +
                               " of closed handle " + std::to_string(h));
    }
    return e;
  }
  Entry& open_entry(HandleId h, const char* op) {
    return const_cast<Entry&>(
        static_cast<const GraphStore*>(this)->open_entry(h, op));
  }

  std::vector<Entry> entries_;
  std::vector<VersionRef> retired_;
  ChangeHook on_change_;
};

}  // namespace pgb
