// Query vocabulary of the graph-as-a-service front end.
//
// A query is a small value object a tenant submits against a graph
// handle: what to compute (kind + parameters), who is asking (tenant),
// and when it arrived (simulated seconds). Admission control answers
// with a typed code — admitted queries get a query id to poll, rejected
// ones say *why* (queue full, stale epoch, malformed) so clients can
// back off / refresh / fix instead of guessing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algo/bfs.hpp"
#include "algo/sssp.hpp"
#include "util/error.hpp"

namespace pgb {

enum class QueryKind {
  kBfs,               ///< BFS tree from `source`
  kSssp,              ///< shortest distances from `source`
  kPagerankSubgraph,  ///< pagerank on the `depth`-hop ego subgraph
  kEgoNet,            ///< the `depth`-hop ego vertex set itself
};

inline const char* to_string(QueryKind k) {
  switch (k) {
    case QueryKind::kBfs:
      return "bfs";
    case QueryKind::kSssp:
      return "sssp";
    case QueryKind::kPagerankSubgraph:
      return "pagerank_subgraph";
    case QueryKind::kEgoNet:
      return "ego_net";
  }
  return "?";
}

/// What a tenant asks for. `source` seeds every kind; `depth` bounds the
/// ego radius of the subgraph kinds; the pagerank knobs apply only to
/// kPagerankSubgraph. `deadline_s` is the latency budget in simulated
/// seconds from arrival (0 = no deadline): a query that cannot complete
/// inside it ends in the typed kDeadlineExpired terminal state — the
/// service never returns a silent late result.
struct QuerySpec {
  QueryKind kind = QueryKind::kBfs;
  Index source = 0;
  Index depth = 2;
  int tenant = 0;
  double damping = 0.85;
  double tol = 1e-8;
  int max_iters = 20;
  double deadline_s = 0.0;
};

/// Per-query trace context, minted at submit when a trace session is
/// attached to the grid and propagated with the query through the
/// admission queue, the batcher, and the executor into the batched
/// state machines. `track` is the query's dedicated trace track
/// (allocated above the per-locale tracks); its lifecycle spans
/// (query.queued / query.admitted / query.fused / per-level query.level
/// / terminal instants) all land there, tagged with the query id,
/// tenant, and pinned graph epoch. `grid_epoch` guards against a
/// grid.reset() mid-flight: a context minted in an earlier epoch goes
/// silent instead of writing into the cleared session.
struct QueryTraceContext {
  std::int64_t id = -1;
  int tenant = 0;
  std::uint64_t epoch = 0;       ///< graph epoch pinned at admission
  int track = -1;                ///< per-query trace track (-1 = untraced)
  std::uint64_t grid_epoch = 0;  ///< grid epoch at mint (reset guard)

  bool traced() const { return track >= 0; }
};

/// Typed admission verdict.
enum class AdmitCode {
  kAdmitted,
  kQueueFull,         ///< bounded queue at capacity — back off and retry
  kStaleHandle,       ///< caller pinned an epoch the handle has moved past
  kBadQuery,          ///< spec invalid for this graph (source out of range, ...)
  kTenantThrottled,   ///< tenant over quota or its circuit breaker is open
};

inline const char* to_string(AdmitCode c) {
  switch (c) {
    case AdmitCode::kAdmitted:
      return "admitted";
    case AdmitCode::kQueueFull:
      return "queue_full";
    case AdmitCode::kStaleHandle:
      return "stale_handle";
    case AdmitCode::kBadQuery:
      return "bad_query";
    case AdmitCode::kTenantThrottled:
      return "tenant_throttled";
  }
  return "?";
}

/// Lifecycle of one submitted query. Every query ends in exactly one
/// terminal state: kDone (result available) or kDeadlineExpired (no
/// result — the deadline passed in the queue, the admission estimate
/// already blew it, or execution finished late and the result was
/// discarded).
enum class QueryState {
  kQueued,
  kDone,
  kDeadlineExpired,
};

inline const char* to_string(QueryState s) {
  switch (s) {
    case QueryState::kQueued:
      return "queued";
    case QueryState::kDone:
      return "done";
    case QueryState::kDeadlineExpired:
      return "deadline_expired";
  }
  return "?";
}

/// Thrown by the strict submit path when admission control turns a query
/// away at a full queue. The C API maps it to GrB_OUT_OF_RESOURCES.
class ServiceOverloaded : public Error {
 public:
  explicit ServiceOverloaded(const std::string& what) : Error(what) {}
};

/// Thrown when a graph handle is unknown, closed, or pinned to a
/// superseded epoch. The C API maps it to GrB_INVALID_OBJECT.
class InvalidHandleError : public Error {
 public:
  explicit InvalidHandleError(const std::string& what) : Error(what) {}
};

/// Thrown by the strict submit path when a tenant is over its token
/// bucket quota or its circuit breaker is open, and when polling for a
/// result that was discarded because its deadline expired. The C API
/// maps it to GrB_TENANT_THROTTLED.
class TenantThrottled : public Error {
 public:
  explicit TenantThrottled(const std::string& what) : Error(what) {}
};

/// Thrown when a result is requested for a query that ended in the
/// kDeadlineExpired terminal state. The C API maps it to
/// GrB_DEADLINE_EXPIRED.
class DeadlineExpired : public Error {
 public:
  explicit DeadlineExpired(const std::string& what) : Error(what) {}
};

/// One query's answer; `kind` says which member is meaningful.
struct QueryResult {
  QueryKind kind = QueryKind::kBfs;
  BfsResult bfs;                    ///< kBfs
  SsspResult sssp;                  ///< kSssp
  std::vector<Index> ego;           ///< kEgoNet / kPagerankSubgraph vertices
  std::vector<double> rank;         ///< kPagerankSubgraph, aligned to `ego`
};

}  // namespace pgb
