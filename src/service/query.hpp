// Query vocabulary of the graph-as-a-service front end.
//
// A query is a small value object a tenant submits against a graph
// handle: what to compute (kind + parameters), who is asking (tenant),
// and when it arrived (simulated seconds). Admission control answers
// with a typed code — admitted queries get a query id to poll, rejected
// ones say *why* (queue full, stale epoch, malformed) so clients can
// back off / refresh / fix instead of guessing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algo/bfs.hpp"
#include "algo/sssp.hpp"
#include "util/error.hpp"

namespace pgb {

enum class QueryKind {
  kBfs,               ///< BFS tree from `source`
  kSssp,              ///< shortest distances from `source`
  kPagerankSubgraph,  ///< pagerank on the `depth`-hop ego subgraph
  kEgoNet,            ///< the `depth`-hop ego vertex set itself
};

inline const char* to_string(QueryKind k) {
  switch (k) {
    case QueryKind::kBfs:
      return "bfs";
    case QueryKind::kSssp:
      return "sssp";
    case QueryKind::kPagerankSubgraph:
      return "pagerank_subgraph";
    case QueryKind::kEgoNet:
      return "ego_net";
  }
  return "?";
}

/// What a tenant asks for. `source` seeds every kind; `depth` bounds the
/// ego radius of the subgraph kinds; the pagerank knobs apply only to
/// kPagerankSubgraph.
struct QuerySpec {
  QueryKind kind = QueryKind::kBfs;
  Index source = 0;
  Index depth = 2;
  int tenant = 0;
  double damping = 0.85;
  double tol = 1e-8;
  int max_iters = 20;
};

/// Typed admission verdict.
enum class AdmitCode {
  kAdmitted,
  kQueueFull,    ///< bounded queue at capacity — back off and retry
  kStaleHandle,  ///< caller pinned an epoch the handle has moved past
  kBadQuery,     ///< spec invalid for this graph (source out of range, ...)
};

inline const char* to_string(AdmitCode c) {
  switch (c) {
    case AdmitCode::kAdmitted:
      return "admitted";
    case AdmitCode::kQueueFull:
      return "queue_full";
    case AdmitCode::kStaleHandle:
      return "stale_handle";
    case AdmitCode::kBadQuery:
      return "bad_query";
  }
  return "?";
}

/// Thrown by the strict submit path when admission control turns a query
/// away at a full queue. The C API maps it to GrB_OUT_OF_RESOURCES.
class ServiceOverloaded : public Error {
 public:
  explicit ServiceOverloaded(const std::string& what) : Error(what) {}
};

/// Thrown when a graph handle is unknown, closed, or pinned to a
/// superseded epoch. The C API maps it to GrB_INVALID_OBJECT.
class InvalidHandleError : public Error {
 public:
  explicit InvalidHandleError(const std::string& what) : Error(what) {}
};

/// One query's answer; `kind` says which member is meaningful.
struct QueryResult {
  QueryKind kind = QueryKind::kBfs;
  BfsResult bfs;                    ///< kBfs
  SsspResult sssp;                  ///< kSssp
  std::vector<Index> ego;           ///< kEgoNet / kPagerankSubgraph vertices
  std::vector<double> rank;         ///< kPagerankSubgraph, aligned to `ego`
};

}  // namespace pgb
