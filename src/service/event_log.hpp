// Structured service event log: the machine-readable audit trail of one
// serving run, written as JSON Lines.
//
// Every lifecycle decision the service makes — admissions, typed
// rejections, deadline expiries by stage, breaker state transitions,
// handle publishes/epoch bumps, degrade/rebuild events, and periodic
// health() snapshots — appends one line. Lines are stamped in *simulated*
// seconds only (never wall clocks) and formatted with the same %.9g
// float convention as the profile exporter, so two same-seed runs write
// byte-identical logs; the query-trace-smoke CI job diffs exactly that.
//
// Schema: each line is one JSON object whose first two members are
//   {"t": <simulated seconds>, "type": "<event type>", ...}
// followed by type-specific fields in a fixed order (see
// docs/ARCHITECTURE.md "Observability" for the full per-type schema).
// The log is append-only in program order; program order is itself a
// deterministic function of the seed.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace pgb {

/// One pre-rendered JSON field: the key plus its already-JSON value
/// (`ev_num`/`ev_int`/`ev_str` below build the value side).
using EventField = std::pair<const char*, std::string>;

/// %.9g, matching the profile writer — enough digits to round-trip the
/// simulated timestamps bit-for-bit without trailing noise.
inline std::string ev_num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

inline std::string ev_int(std::int64_t v) { return std::to_string(v); }

inline std::string ev_str(const std::string& s) {
  return "\"" + obs::json_escape(s) + "\"";
}

class ServiceEventLog {
 public:
  /// Appends one event at simulated time `t`. Fields render in the
  /// caller's order after the fixed `t`/`type` prefix.
  void emit(double t, const char* type,
            std::initializer_list<EventField> fields = {}) {
    std::string line = "{\"t\":" + ev_num(t) + ",\"type\":\"" + type + "\"";
    for (const auto& [k, v] : fields) {
      line += std::string(",\"") + k + "\":" + v;
    }
    line += "}";
    lines_.push_back(std::move(line));
  }

  std::size_t size() const { return lines_.size(); }
  const std::vector<std::string>& lines() const { return lines_; }

  /// Events of one type (test/assertion hook; types are short, the scan
  /// is fine at audit-log sizes).
  std::int64_t count(const char* type) const {
    const std::string needle = std::string("\"type\":\"") + type + "\"";
    std::int64_t n = 0;
    for (const auto& l : lines_) {
      n += l.find(needle) != std::string::npos ? 1 : 0;
    }
    return n;
  }

  /// The whole log as JSONL text (one "\n"-terminated line per event).
  std::string text() const {
    std::string out;
    for (const auto& l : lines_) {
      out += l;
      out += "\n";
    }
    return out;
  }

  /// Writes the JSONL file; throws (exit 2 in the tools) on an
  /// unwritable path.
  void write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    PGB_REQUIRE(f != nullptr, "event log: cannot open output file: " + path);
    const std::string out = text();
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
  }

  void clear() { lines_.clear(); }

 private:
  std::vector<std::string> lines_;
};

}  // namespace pgb
