// Service-level resilience: the pieces that keep GraphService up, fair,
// and inside its SLO when offered load exceeds capacity or a host dies
// mid-traffic.
//
//   ServiceCostModel   closed-loop batch pricing + observed service rate.
//                      The inspector (PR 6) prices one comm wave from its
//                      footprint; admission needs the *whole batch* price,
//                      so the model folds the executor's observed charged
//                      times (the same simulated clocks the inspector's
//                      Inspector::observe feeds on) into a per-kind EWMA.
//                      The estimate gates fusion: a query whose deadline
//                      the estimate already blows is expired at admission
//                      instead of served late. It also yields the service
//                      rate behind retry-after.
//
//   TenantGovernor     per-tenant token-bucket quotas plus a circuit
//                      breaker. The bucket bounds a tenant's sustained
//                      admission rate beyond what fair dequeue already
//                      bounds; the breaker converts a failing tenant's
//                      traffic (K consecutive expiries / queue-full
//                      rejections) into cheap typed kTenantThrottled
//                      rejections until a half-open probe proves the
//                      tenant can be served again.
//
//   ServiceHealth      the mode / degraded-locales / breaker-state
//                      surface GraphService::health() exports into
//                      metrics and pgb_serve summaries.
//
// Everything here is simulated-time-pure and deterministic: state
// advances only on submit/step events stamped with simulated seconds, so
// two same-seed runs make identical throttle, breaker, and admission
// decisions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "service/query.hpp"

namespace pgb {

/// Closed-loop batch cost model. estimate() is 0 (optimistic: admit)
/// until the first batch of that kind has been observed; after that it
/// is an EWMA of charged batch times. Fused batches amortize the
/// per-level comm schedule across lanes, so batch time is only weakly
/// width-dependent — the per-kind EWMA tracks it well and converges
/// within a couple of batches.
class ServiceCostModel {
 public:
  /// EWMA weight of the newest observation.
  static constexpr double kAlpha = 0.25;

  /// Records one executed batch: its kind, width, and the simulated
  /// seconds the grid charged for it.
  void observe_batch(QueryKind kind, int width, double seconds) {
    Kind& k = kinds_[static_cast<int>(kind)];
    if (k.observed == 0) {
      k.ewma_seconds = seconds;
    } else {
      k.ewma_seconds = (1.0 - kAlpha) * k.ewma_seconds + kAlpha * seconds;
    }
    ++k.observed;
    if (seconds > 0.0 && width > 0) {
      const double inst_rate = static_cast<double>(width) / seconds;
      rate_ = rate_ == 0.0 ? inst_rate
                           : (1.0 - kAlpha) * rate_ + kAlpha * inst_rate;
    }
  }

  /// Estimated simulated seconds to serve one batch of `kind`. Width is
  /// accepted for future refinement; the fused-wave amortization makes
  /// the per-kind EWMA the load-bearing term.
  double estimate(QueryKind kind, int /*width*/) const {
    return kinds_[static_cast<int>(kind)].ewma_seconds;
  }

  /// True once at least one batch of `kind` has been observed (before
  /// that, estimate() is an optimistic 0 and cannot gate admission).
  bool calibrated(QueryKind kind) const {
    return kinds_[static_cast<int>(kind)].observed > 0;
  }

  /// Observed service rate in queries per simulated second (EWMA over
  /// executed batches); 0 until the first batch completes.
  double service_rate() const { return rate_; }

  /// Suggested simulated retry-after for a queue-full rejection: the
  /// time to drain the current backlog at the observed service rate,
  /// floored (a cold service has no rate yet — the floor is the
  /// client's first backoff quantum).
  ///
  ///   retry_after = max(floor_s, queued / service_rate)
  double retry_after(std::size_t queued, double floor_s) const {
    if (rate_ <= 0.0) return floor_s;
    return std::max(floor_s, static_cast<double>(queued) / rate_);
  }

 private:
  struct Kind {
    double ewma_seconds = 0.0;
    std::int64_t observed = 0;
  };
  Kind kinds_[4];
  double rate_ = 0.0;
};

/// Circuit-breaker state for one tenant.
enum class BreakerState {
  kClosed,    ///< normal admission
  kOpen,      ///< tripping failures seen; all traffic throttled
  kHalfOpen,  ///< cooldown elapsed; one probe admitted
};

inline const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

struct TenantGovernorConfig {
  /// Sustained admission rate per tenant in queries per simulated
  /// second (token refill rate); 0 disables quotas.
  double quota_qps = 0.0;
  /// Bucket capacity: the burst a tenant may spend at once.
  double quota_burst = 8.0;
  /// Consecutive failures (deadline expiries + queue-full rejections)
  /// that trip the breaker; 0 disables the breaker.
  int breaker_k = 0;
  /// Simulated seconds an open breaker holds before a half-open probe.
  double breaker_cooldown_s = 0.05;
};

/// Per-tenant admission governor: token-bucket quota + circuit breaker.
/// All transitions are driven by simulated timestamps handed in by the
/// caller, never by wall clocks.
class TenantGovernor {
 public:
  explicit TenantGovernor(TenantGovernorConfig cfg = {}) : cfg_(cfg) {}

  struct Verdict {
    AdmitCode code = AdmitCode::kAdmitted;
    /// Rejection reason for the metrics label: "tenant_quota" or
    /// "breaker_open"; nullptr when admitted.
    const char* why = nullptr;
  };

  /// Admission check at simulated time `now`. Takes one token on
  /// admission. The breaker is consulted first: an open breaker
  /// throttles without spending quota, and the half-open transition
  /// admits exactly one probe per cooldown.
  Verdict admit(int tenant, double now) {
    Lane& ln = lane(tenant, now);
    if (cfg_.breaker_k > 0) {
      if (ln.state == BreakerState::kOpen) {
        if (now < ln.open_until) {
          return Verdict{AdmitCode::kTenantThrottled, "breaker_open"};
        }
        ln.state = BreakerState::kHalfOpen;
        ln.probe_in_flight = false;
      }
      if (ln.state == BreakerState::kHalfOpen) {
        if (ln.probe_in_flight) {
          return Verdict{AdmitCode::kTenantThrottled, "breaker_open"};
        }
        ln.probe_in_flight = true;  // this query is the probe
      }
    }
    if (cfg_.quota_qps > 0.0) {
      refill(ln, now);
      if (ln.tokens < 1.0) {
        // A quota rejection is not a service failure: it neither feeds
        // nor resets the breaker's consecutive-failure count.
        if (ln.state == BreakerState::kHalfOpen) ln.probe_in_flight = false;
        return Verdict{AdmitCode::kTenantThrottled, "tenant_quota"};
      }
      ln.tokens -= 1.0;
    }
    return Verdict{AdmitCode::kAdmitted, nullptr};
  }

  /// A served query completed inside its deadline: resets the failure
  /// streak and closes a half-open breaker (the probe succeeded).
  void on_success(int tenant, double now) {
    Lane& ln = lane(tenant, now);
    ln.consecutive_failures = 0;
    if (ln.state != BreakerState::kClosed) {
      ln.state = BreakerState::kClosed;
      ln.probe_in_flight = false;
    }
  }

  /// A deadline expiry or queue-full rejection for this tenant. K of
  /// these in a row trip the breaker; a failure during half-open
  /// re-opens it immediately (the probe failed).
  /// Returns true when this failure tripped (or re-tripped) the breaker.
  bool on_failure(int tenant, double now) {
    Lane& ln = lane(tenant, now);
    ++ln.consecutive_failures;
    if (cfg_.breaker_k <= 0) return false;
    const bool reprobe_failed =
        ln.state == BreakerState::kHalfOpen && ln.probe_in_flight;
    if (reprobe_failed || (ln.state == BreakerState::kClosed &&
                           ln.consecutive_failures >= cfg_.breaker_k)) {
      ln.state = BreakerState::kOpen;
      ln.open_until = now + cfg_.breaker_cooldown_s;
      ln.probe_in_flight = false;
      ln.consecutive_failures = 0;
      ++ln.trips;
      return true;
    }
    return false;
  }

  /// Breaker state as of `now` (resolves an elapsed cooldown to
  /// half-open so health surfaces report what the next submit would see).
  BreakerState state(int tenant, double now) const {
    auto it = lanes_.find(tenant);
    if (it == lanes_.end()) return BreakerState::kClosed;
    const Lane& ln = it->second;
    if (ln.state == BreakerState::kOpen && now >= ln.open_until) {
      return BreakerState::kHalfOpen;
    }
    return ln.state;
  }

  std::int64_t trips(int tenant) const {
    auto it = lanes_.find(tenant);
    return it == lanes_.end() ? 0 : it->second.trips;
  }

  /// Tenants the governor has seen, ascending.
  std::vector<int> tenants() const {
    std::vector<int> out;
    out.reserve(lanes_.size());
    for (const auto& [t, ln] : lanes_) out.push_back(t);
    return out;
  }

  const TenantGovernorConfig& config() const { return cfg_; }

 private:
  struct Lane {
    double tokens = 0.0;
    double last_refill = 0.0;
    int consecutive_failures = 0;
    BreakerState state = BreakerState::kClosed;
    double open_until = 0.0;
    bool probe_in_flight = false;
    std::int64_t trips = 0;
  };

  Lane& lane(int tenant, double now) {
    auto [it, fresh] = lanes_.try_emplace(tenant);
    if (fresh) {
      it->second.tokens = cfg_.quota_burst;  // buckets start full
      it->second.last_refill = now;
    }
    return it->second;
  }

  void refill(Lane& ln, double now) {
    const double dt = std::max(0.0, now - ln.last_refill);
    ln.tokens = std::min(cfg_.quota_burst, ln.tokens + dt * cfg_.quota_qps);
    ln.last_refill = std::max(ln.last_refill, now);
  }

  TenantGovernorConfig cfg_;
  std::map<int, Lane> lanes_;
};

/// One tenant's slice of the health surface.
struct TenantHealth {
  int tenant = 0;
  BreakerState breaker = BreakerState::kClosed;
  std::int64_t trips = 0;
};

/// The service's liveness/fairness surface: what mode it is serving in,
/// which breakers are open, and how loaded it is. Built by
/// GraphService::health() and exported into metrics gauges so profiles
/// and the pgb_diff gate see mode flips and breaker trips.
struct ServiceHealth {
  const char* mode = "normal";  ///< "normal" | "degraded"
  int degraded_locales = 0;     ///< logical locales co-hosted after remaps
  int active_hosts = 0;         ///< distinct physical hosts still serving
  std::size_t queue_depth = 0;
  std::int64_t records_live = 0;
  double service_rate = 0.0;  ///< queries per simulated second (EWMA)
  std::vector<TenantHealth> tenants;

  int open_breakers() const {
    int n = 0;
    for (const auto& t : tenants) n += t.breaker == BreakerState::kOpen;
    return n;
  }

  std::string summary() const {
    char head[160];
    std::snprintf(head, sizeof head,
                  "mode=%s degraded_locales=%d active_hosts=%d queued=%zu "
                  "live_records=%lld rate=%.3g q/s",
                  mode, degraded_locales, active_hosts, queue_depth,
                  static_cast<long long>(records_live), service_rate);
    std::string out = head;
    out += " breakers{";
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      char b[48];
      std::snprintf(b, sizeof b, "%s%d:%s", i == 0 ? "" : ",",
                    tenants[i].tenant, to_string(tenants[i].breaker));
      out += b;
    }
    out += "}";
    return out;
  }
};

}  // namespace pgb
