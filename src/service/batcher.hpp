// Batching scheduler: coalesces compatible queued queries into one
// fused multi-source wave.
//
// Policy (deterministic): the batch seed is the round-robin fair pop.
// If the seed's kind fuses (BFS, SSSP — the single-source frontier
// kinds), the batcher cycles the tenant lanes in round-robin order
// starting after the seed's tenant and keeps taking lane *heads* that
// are compatible with the seed — same kind, same graph version, same
// epoch — until the batch is full or a full cycle adds nothing. Taking
// only heads preserves each tenant's FIFO order (a tenant's later
// compatible query never jumps an earlier incompatible one), and the
// round-robin cycle spreads a wide batch across tenants instead of
// draining one lane first.
//
// Subgraph kinds (ego-net, pagerank-on-subgraph) run solo: their work
// is not a shared frontier wave, so a "batch" is just the seed.
//
// Deadline-aware fusing: the service may pass a FuseGate that prices
// the candidate batch through the ServiceCostModel and answers whether
// a query's deadline survives the estimate. A query the gate refuses is
// *popped and handed back* through `refused` rather than left queued:
// the estimate says its deadline is already blown, and waiting can only
// make that worse — the service expires it with a typed
// kDeadlineExpired instead of ever serving it late.
#pragma once

#include <functional>
#include <vector>

#include "service/queue.hpp"

namespace pgb {

/// Answers whether `q` should join the batch at the given resulting
/// width (1 for the seed position). False means the query cannot meet
/// its deadline under the current cost estimate.
using FuseGate = std::function<bool(const PendingQuery& q, int width)>;

/// True for kinds whose per-level exchange rides the fused
/// multi-frontier SpMSpV.
inline bool batchable(QueryKind k) {
  return k == QueryKind::kBfs || k == QueryKind::kSssp;
}

inline bool batch_compatible(const PendingQuery& seed, const PendingQuery& q) {
  return q.spec.kind == seed.spec.kind &&
         q.snap.graph == seed.snap.graph && q.snap.epoch == seed.snap.epoch;
}

/// Forms the next batch (size in [0, batch_max]; 0 only when a gate
/// refused every candidate seed). Precondition: the queue is non-empty.
/// With a gate, queries it refuses are popped into `refused` (never
/// served): gate-refused seeds keep the seed search going, and a
/// gate-refused compatible head is removed so it cannot block its
/// lane's later queries from a batch they can still make.
inline std::vector<PendingQuery> form_batch(AdmissionQueue& q, int batch_max,
                                            const FuseGate& gate,
                                            std::vector<PendingQuery>* refused) {
  PGB_ASSERT(!q.empty(), "batcher: form_batch on empty queue");
  PGB_ASSERT(batch_max >= 1, "batcher: batch_max must be at least 1");
  PGB_ASSERT(!gate || refused != nullptr,
             "batcher: a fuse gate needs a refused sink");
  std::vector<PendingQuery> batch;
  batch.reserve(static_cast<std::size_t>(batch_max));  // seed ref stays valid
  while (!q.empty()) {
    PendingQuery seed = q.pop_fair();
    if (gate && !gate(seed, 1)) {
      refused->push_back(std::move(seed));
      continue;
    }
    batch.push_back(std::move(seed));
    break;
  }
  if (batch.empty()) return batch;
  const PendingQuery& seed = batch.front();
  if (!batchable(seed.spec.kind)) return batch;
  int cursor = seed.spec.tenant;
  while (static_cast<int>(batch.size()) < batch_max && !q.empty()) {
    bool took = false;
    const int first = q.next_tenant_after(cursor);
    int t = first;
    do {
      const PendingQuery* h = q.head(t);
      if (h != nullptr && batch_compatible(seed, *h)) {
        if (gate && !gate(*h, static_cast<int>(batch.size()) + 1)) {
          // Refusing mutates the lane map; restart the cycle with a
          // fresh round-robin origin (progress: the queue shrank).
          refused->push_back(q.pop_head(t));
          took = true;
          break;
        }
        batch.push_back(q.pop_head(t));
        cursor = t;
        took = true;
        break;
      }
      if (q.empty()) break;
      t = q.next_tenant_after(t);
    } while (t != first);
    if (!took) break;
  }
  return batch;
}

/// Ungated batch formation (size in [1, batch_max]).
inline std::vector<PendingQuery> form_batch(AdmissionQueue& q, int batch_max) {
  return form_batch(q, batch_max, FuseGate{}, nullptr);
}

}  // namespace pgb
