// Batching scheduler: coalesces compatible queued queries into one
// fused multi-source wave.
//
// Policy (deterministic): the batch seed is the round-robin fair pop.
// If the seed's kind fuses (BFS, SSSP — the single-source frontier
// kinds), the batcher cycles the tenant lanes in round-robin order
// starting after the seed's tenant and keeps taking lane *heads* that
// are compatible with the seed — same kind, same graph version, same
// epoch — until the batch is full or a full cycle adds nothing. Taking
// only heads preserves each tenant's FIFO order (a tenant's later
// compatible query never jumps an earlier incompatible one), and the
// round-robin cycle spreads a wide batch across tenants instead of
// draining one lane first.
//
// Subgraph kinds (ego-net, pagerank-on-subgraph) run solo: their work
// is not a shared frontier wave, so a "batch" is just the seed.
#pragma once

#include <vector>

#include "service/queue.hpp"

namespace pgb {

/// True for kinds whose per-level exchange rides the fused
/// multi-frontier SpMSpV.
inline bool batchable(QueryKind k) {
  return k == QueryKind::kBfs || k == QueryKind::kSssp;
}

inline bool batch_compatible(const PendingQuery& seed, const PendingQuery& q) {
  return q.spec.kind == seed.spec.kind &&
         q.snap.graph == seed.snap.graph && q.snap.epoch == seed.snap.epoch;
}

/// Forms the next batch (size in [1, batch_max]). Precondition: the
/// queue is non-empty.
inline std::vector<PendingQuery> form_batch(AdmissionQueue& q, int batch_max) {
  PGB_ASSERT(!q.empty(), "batcher: form_batch on empty queue");
  PGB_ASSERT(batch_max >= 1, "batcher: batch_max must be at least 1");
  std::vector<PendingQuery> batch;
  batch.reserve(static_cast<std::size_t>(batch_max));  // seed ref stays valid
  batch.push_back(q.pop_fair());
  const PendingQuery& seed = batch.front();
  if (!batchable(seed.spec.kind)) return batch;
  int cursor = seed.spec.tenant;
  while (static_cast<int>(batch.size()) < batch_max && !q.empty()) {
    bool took = false;
    const int first = q.next_tenant_after(cursor);
    int t = first;
    do {
      const PendingQuery* h = q.head(t);
      if (h != nullptr && batch_compatible(seed, *h)) {
        batch.push_back(q.pop_head(t));
        cursor = t;
        took = true;
        break;
      }
      if (q.empty()) break;
      t = q.next_tenant_after(t);
    } while (t != first);
    if (!took) break;
  }
  return batch;
}

}  // namespace pgb
